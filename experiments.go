package terp

// The experiment drivers: every table and figure of the paper's
// evaluation is enumerated as a list of independent runner.Cell specs,
// executed on the internal/runner worker pool, and assembled into typed
// rows in enumeration order — so results are bit-identical at any
// worker count. The public entry point is Run (run.go); the per-table
// helpers below are thin wrappers over it.

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/semantics"
	"repro/internal/sim"
	"repro/internal/speckit"
	"repro/internal/stats"
	"repro/internal/terpc"
	"repro/internal/whisper"
)

// ExpOpts scales the experiment runners. The defaults reproduce the
// paper's settings; tests and benchmarks shrink Ops/Scale for speed.
type ExpOpts struct {
	// Ops is the WHISPER operation count (paper: 100000).
	Ops int `json:"ops"`
	// Scale multiplies the SPEC kernel sizes (paper-equivalent: 4+).
	Scale int `json:"scale"`
	// Seed seeds every run.
	Seed int64 `json:"seed"`
}

func (o ExpOpts) withDefaults() ExpOpts {
	if o.Ops == 0 {
		o.Ops = whisper.DefaultOps
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// --- cell enumeration helpers -----------------------------------------------

// expConfig names one (scheme, EW target) configuration of a figure.
type expConfig struct {
	label  string
	scheme Scheme
	ew     float64
}

// overheadConfigs are the Figure 9/10 configurations.
var overheadConfigs = []expConfig{
	{"MM(40us)", MM, 40},
	{"TM(40us)", TM, 40},
	{"TT(40us)", TT, 40},
	{"TT(80us)", TT, 80},
	{"TT(160us)", TT, 160},
}

// ablationConfigs are the Figure 11 configurations.
var ablationConfigs = []expConfig{
	{"Basic(40us)", BasicSem, 40},
	{"+Cond(40us)", PlusCond, 40},
	{"+CB(40us)", PlusCB, 40},
	{"TT(80us)", TT, 80},
	{"TT(160us)", TT, 160},
}

func whisperCell(exp, label, workload string, s Scheme, ew float64, o ExpOpts) runner.Cell {
	return runner.Cell{
		Exp: exp, Label: label, Kind: runner.Whisper, Workload: workload,
		Scheme: s, EWMicros: ew, Seed: o.Seed, Ops: o.Ops,
	}
}

func specCell(exp, label, kernel string, s Scheme, ew float64, threads int, o ExpOpts) runner.Cell {
	return runner.Cell{
		Exp: exp, Label: label, Kind: runner.Spec, Workload: kernel,
		Scheme: s, EWMicros: ew, Seed: o.Seed, Scale: o.Scale, Threads: threads,
	}
}

// --- Table III --------------------------------------------------------------

// WhisperRow is one Table III row: exposure measurements for one WHISPER
// workload under MM and TT at the 40 us EW / 2 us TEW targets.
type WhisperRow struct {
	// Prog is the workload name.
	Prog string `json:"prog"`
	// MMEWAvg, MMEWMax, MMER are MERR's exposure figures (us, us, frac).
	MMEWAvg, MMEWMax, MMER float64
	// Silent is TT's share of conditional ops lowered to thread
	// permission changes (percent).
	Silent float64
	// TTEWAvg, TTEWMax, TTER are TT's process-level exposure figures.
	TTEWAvg, TTEWMax, TTER float64
	// TEW and TER are TT's thread-level exposure figures (us, frac).
	TEW, TER float64
	// CondFreq is TT's conditional ops per second.
	CondFreq float64
}

// table3Cells enumerates each workload under MM then TT.
func table3Cells(exp string, o ExpOpts) []runner.Cell {
	var cells []runner.Cell
	for _, mk := range whisper.All() {
		name := mk().Name()
		cells = append(cells,
			whisperCell(exp, "MM(40us)", name, MM, 40, o),
			whisperCell(exp, "TT(40us)", name, TT, 40, o))
	}
	return cells
}

// table3Rows folds (MM, TT) cell pairs into rows.
func table3Rows(res []runner.CellResult) []WhisperRow {
	var rows []WhisperRow
	for i := 0; i+1 < len(res); i += 2 {
		mm, tt := res[i].Result, res[i+1].Result
		rows = append(rows, WhisperRow{
			Prog:     res[i].Cell.Workload,
			MMEWAvg:  params.ToMicros(uint64(mm.Exposure.AvgEW)),
			MMEWMax:  params.ToMicros(uint64(mm.Exposure.MaxEW)),
			MMER:     mm.Exposure.ER,
			Silent:   tt.Counts.SilentPercent(),
			TTEWAvg:  params.ToMicros(uint64(tt.Exposure.AvgEW)),
			TTEWMax:  params.ToMicros(uint64(tt.Exposure.MaxEW)),
			TTER:     tt.Exposure.ER,
			TEW:      params.ToMicros(uint64(tt.Exposure.AvgTEW)),
			TER:      tt.Exposure.TER,
			CondFreq: tt.CondFreqPerSec(),
		})
	}
	return rows
}

func assembleTable3(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	g.Whisper = table3Rows(res)
	return nil
}

// Table3 reproduces Table III: WHISPER exposure under MM vs TT.
func Table3(o ExpOpts) ([]WhisperRow, error) {
	g, err := Run(ExperimentSpec{Name: "table3", Opts: o})
	if err != nil {
		return nil, err
	}
	return g.Whisper, nil
}

// FormatTable3 renders Table III.
func FormatTable3(rows []WhisperRow) string {
	t := stats.NewTable("Prog", "MM EW avg/max(us)", "MM ER%", "Silent%",
		"TT EW avg/max(us)", "TT ER%", "TEW(us)", "TER%")
	var avg WhisperRow
	for _, r := range rows {
		t.AddRow(r.Prog,
			fmt.Sprintf("%.1f/%.1f", r.MMEWAvg, r.MMEWMax), 100*r.MMER,
			r.Silent,
			fmt.Sprintf("%.1f/%.1f", r.TTEWAvg, r.TTEWMax), 100*r.TTER,
			fmt.Sprintf("%.2f", r.TEW), 100*r.TER)
		avg.MMEWAvg += r.MMEWAvg
		avg.MMER += r.MMER
		avg.Silent += r.Silent
		avg.TTEWAvg += r.TTEWAvg
		avg.TTER += r.TTER
		avg.TEW += r.TEW
		avg.TER += r.TER
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddRow("Avg.",
			fmt.Sprintf("%.1f/-", avg.MMEWAvg/n), 100*avg.MMER/n,
			avg.Silent/n,
			fmt.Sprintf("%.1f/-", avg.TTEWAvg/n), 100*avg.TTER/n,
			fmt.Sprintf("%.2f", avg.TEW/n), 100*avg.TER/n)
	}
	return "Table III: WHISPER results with target EW 40us, TEW 2us\n" + t.String()
}

// --- Figures 9/10/11: overhead breakdowns -----------------------------------

// OverheadBar is one stacked bar of an overhead figure.
type OverheadBar struct {
	// Prog is the workload or kernel name.
	Prog string `json:"prog"`
	// Label names the configuration (e.g. "MM(40us)" or "TT(80us)").
	Label string `json:"label"`
	// Total is the relative execution-time overhead vs unprotected.
	Total float64
	// Attach, Detach, Rand, Cond, Other are the stacked components as
	// fractions of baseline time.
	Attach, Detach, Rand, Cond, Other float64
}

func bar(prog, label string, prot, base core.Result) OverheadBar {
	b := float64(base.Cycles)
	if b == 0 {
		// A zero-cycle baseline (an errored or empty cell) would make
		// every ratio below NaN/Inf, which encoding/json refuses to
		// marshal; emit an all-zero bar instead of poisoning the Grid.
		return OverheadBar{Prog: prog, Label: label}
	}
	ov := float64(prot.Cycles)/b - 1
	out := OverheadBar{
		Prog: prog, Label: label, Total: ov,
		Attach: float64(prot.Costs[sim.Attach]) / b,
		Detach: float64(prot.Costs[sim.Detach]) / b,
		Rand:   float64(prot.Costs[sim.Rand]) / b,
		Cond:   float64(prot.Costs[sim.Cond]) / b,
	}
	out.Other = ov - out.Attach - out.Detach - out.Rand - out.Cond
	if out.Other < 0 {
		out.Other = 0
	}
	return out
}

// figure9Cells enumerates each workload's unprotected baseline followed
// by the five protected configurations.
func figure9Cells(o ExpOpts) []runner.Cell {
	var cells []runner.Cell
	for _, mk := range whisper.All() {
		name := mk().Name()
		cells = append(cells, whisperCell("fig9", "base", name, Unprotected, 40, o))
		for _, c := range overheadConfigs {
			cells = append(cells, whisperCell("fig9", c.label, name, c.scheme, c.ew, o))
		}
	}
	return cells
}

// specOverheadCells enumerates each kernel's baseline plus configs.
func specOverheadCells(exp string, threads int, configs []expConfig, o ExpOpts) []runner.Cell {
	var cells []runner.Cell
	for _, k := range speckit.Kernels() {
		cells = append(cells, specCell(exp, "base", k.Name, Unprotected, 40, threads, o))
		for _, c := range configs {
			cells = append(cells, specCell(exp, c.label, k.Name, c.scheme, c.ew, threads, o))
		}
	}
	return cells
}

func figure10Cells(o ExpOpts) []runner.Cell {
	return specOverheadCells("fig10", 1, overheadConfigs, o)
}

func figure11Cells(o ExpOpts) []runner.Cell {
	return specOverheadCells("fig11", params.Cores, ablationConfigs, o)
}

// assembleBars folds baseline-then-configs cell groups into stacked bars:
// each Unprotected cell opens a new group and every following protected
// cell is measured against it.
func assembleBars(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	var base core.Result
	for _, r := range res {
		if r.Cell.Scheme == Unprotected {
			base = r.Result
			continue
		}
		g.Bars = append(g.Bars, bar(r.Cell.Workload, r.Cell.Label, r.Result, base))
	}
	return nil
}

// Figure9 reproduces the WHISPER overhead breakdown.
func Figure9(o ExpOpts) ([]OverheadBar, error) {
	g, err := Run(ExperimentSpec{Name: "fig9", Opts: o})
	if err != nil {
		return nil, err
	}
	return g.Bars, nil
}

// Figure10 reproduces the single-thread SPEC overhead breakdown.
func Figure10(o ExpOpts) ([]OverheadBar, error) {
	g, err := Run(ExperimentSpec{Name: "fig10", Opts: o})
	if err != nil {
		return nil, err
	}
	return g.Bars, nil
}

// Figure11 reproduces the 4-thread ablation: Basic semantics, +Cond, and
// the full design (+CB) at 40/80/160 us EWs.
func Figure11(o ExpOpts) ([]OverheadBar, error) {
	g, err := Run(ExperimentSpec{Name: "fig11", Opts: o})
	if err != nil {
		return nil, err
	}
	return g.Bars, nil
}

// FormatOverheads renders an overhead figure as grouped ASCII bars.
func FormatOverheads(title string, bars []OverheadBar) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	var max float64
	for _, x := range bars {
		if x.Total > max {
			max = x.Total
		}
	}
	if max == 0 {
		max = 1
	}
	prog := ""
	for _, x := range bars {
		if x.Prog != prog {
			prog = x.Prog
			fmt.Fprintf(&b, "%s:\n", prog)
		}
		fmt.Fprintf(&b, "  %s\n", stats.Bar(x.Label, x.Total, max, 50))
		fmt.Fprintf(&b, "    attach %.2f%% detach %.2f%% rand %.2f%% cond %.2f%% other %.2f%%\n",
			100*x.Attach, 100*x.Detach, 100*x.Rand, 100*x.Cond, 100*x.Other)
	}
	return b.String()
}

// --- Table IV ---------------------------------------------------------------

// Table4Row is one Table IV row: SPEC exposure under MM and TT.
type Table4Row struct {
	// Prog is the kernel name; PMOs its persistent array count.
	Prog string `json:"prog"`
	PMOs int
	// Exposure figures as in WhisperRow.
	MMEWAvg, MMEWMax, MMER float64
	Silent                 float64
	TTEWAvg, TTEWMax, TTER float64
	TEW, TER               float64
}

// table4Cells enumerates each kernel under MM then TT (single thread).
func table4Cells(exp string, o ExpOpts) []runner.Cell {
	var cells []runner.Cell
	for _, k := range speckit.Kernels() {
		cells = append(cells,
			specCell(exp, "MM(40us)", k.Name, MM, 40, 1, o),
			specCell(exp, "TT(40us)", k.Name, TT, 40, 1, o))
	}
	return cells
}

// table4Rows folds (MM, TT) cell pairs into rows.
func table4Rows(res []runner.CellResult) []Table4Row {
	pmos := map[string]int{}
	for _, k := range speckit.Kernels() {
		pmos[k.Name] = k.PMOs
	}
	var rows []Table4Row
	for i := 0; i+1 < len(res); i += 2 {
		mm, tt := res[i].Result, res[i+1].Result
		rows = append(rows, Table4Row{
			Prog: res[i].Cell.Workload, PMOs: pmos[res[i].Cell.Workload],
			MMEWAvg: params.ToMicros(uint64(mm.Exposure.AvgEW)),
			MMEWMax: params.ToMicros(uint64(mm.Exposure.MaxEW)),
			MMER:    mm.Exposure.ER,
			Silent:  tt.Counts.SilentPercent(),
			TTEWAvg: params.ToMicros(uint64(tt.Exposure.AvgEW)),
			TTEWMax: params.ToMicros(uint64(tt.Exposure.MaxEW)),
			TTER:    tt.Exposure.ER,
			TEW:     params.ToMicros(uint64(tt.Exposure.AvgTEW)),
			TER:     tt.Exposure.TER,
		})
	}
	return rows
}

func assembleTable4(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	g.Spec = table4Rows(res)
	return nil
}

// Table4 reproduces Table IV (single-thread, multi-PMO SPEC kernels).
func Table4(o ExpOpts) ([]Table4Row, error) {
	g, err := Run(ExperimentSpec{Name: "table4", Opts: o})
	if err != nil {
		return nil, err
	}
	return g.Spec, nil
}

// FormatTable4 renders Table IV.
func FormatTable4(rows []Table4Row) string {
	t := stats.NewTable("Prog", "#PMOs", "MM EW avg/max(us)", "MM ER%",
		"Silent%", "TT EW avg/max(us)", "TT ER%", "TEW(us)", "TER%")
	for _, r := range rows {
		t.AddRow(r.Prog, r.PMOs,
			fmt.Sprintf("%.1f/%.1f", r.MMEWAvg, r.MMEWMax), 100*r.MMER,
			r.Silent,
			fmt.Sprintf("%.1f/%.1f", r.TTEWAvg, r.TTEWMax), 100*r.TTER,
			fmt.Sprintf("%.2f", r.TEW), 100*r.TER)
	}
	return "Table IV: SPEC results on 40us EW (single thread, multi-PMO)\n" + t.String()
}

// --- Table V ----------------------------------------------------------------

// Table5Row is one quantitative-comparison row.
type Table5Row struct {
	// AttackMicros is the per-probe attack time x.
	AttackMicros float64
	// MERRPct and TERPPct are success probabilities in percent.
	MERRPct, TERPPct float64
}

// Table5 reproduces the Table V analysis. terpAccessFraction is the
// measured TERP thread exposure rate; pass 0 to use the paper's 3.4%.
func Table5(terpAccessFraction float64) []Table5Row {
	if terpAccessFraction == 0 {
		terpAccessFraction = attack.DefaultTERPAccessFraction
	}
	var rows []Table5Row
	for _, x := range attack.AttackTimes() {
		m, t := attack.TableVRow(x, terpAccessFraction)
		rows = append(rows, Table5Row{AttackMicros: x, MERRPct: m, TERPPct: t})
	}
	return rows
}

// table5ProbeTrials and table5Probes size the Monte-Carlo validation an
// instrumented table5 run records for the report layer: 64 windows of 40
// probes each — enough hits to correlate, cheap enough for CI.
const (
	table5ProbeTrials = 64
	table5Probes      = 40
)

func assembleTable5(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	g.Attack = Table5(0)
	if spec.Obs.Enabled() {
		var rec *obs.Recorder
		if spec.Obs.Trace {
			rec = obs.NewRecorder(spec.Obs.TraceCap)
		}
		frac, err := attack.MonteCarloProbeObs(table5ProbeTrials, table5Probes, spec.Opts.Seed, rec)
		if err != nil {
			return err
		}
		attachAnalysisObs(spec, g, "table5/probe/mc", rec, func(s *obs.Snapshot) {
			s.Add("attack/probe/trials", table5ProbeTrials)
			s.Add("attack/probe/hits", uint64(frac*table5ProbeTrials+0.5))
		})
	}
	return nil
}

// FormatTable5 renders Table V.
func FormatTable5(rows []Table5Row) string {
	t := stats.NewTable("Attack time x(us)", "MERR succ.%", "TERP succ.%", "Reduction")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.1f", r.AttackMicros),
			fmt.Sprintf("%.5f", r.MERRPct),
			fmt.Sprintf("%.5f", r.TERPPct),
			fmt.Sprintf("%.0fx", r.MERRPct/r.TERPPct))
	}
	return "Table V: probe-attack success probability per window (1GB PMO, 40us EW, 2us TEW)\n" + t.String()
}

// --- Table VI ---------------------------------------------------------------

// Table6Result is the attack-scenario analysis: time-weighted gadget
// disarm rates derived from measured exposure, per suite.
type Table6Result struct {
	// Rows holds one entry per suite.
	Rows []attack.ScenarioRow
	// SpecCensus is the static gadget census over the instrumented
	// SPEC kernels (every PMO access gadget must be window-covered).
	SpecCensus attack.GadgetCensus
}

// table6Cells reuses the Table III enumeration (at a quarter of the ops)
// followed by the Table IV enumeration, exactly as the serial driver
// composed them.
func table6Cells(o ExpOpts) []runner.Cell {
	cells := table3Cells("table6", ExpOpts{Ops: o.Ops / 4, Seed: o.Seed}.withDefaults())
	return append(cells, table4Cells("table6", ExpOpts{Scale: o.Scale, Seed: o.Seed}.withDefaults())...)
}

func assembleTable6(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	split := 0
	for split < len(res) && res[split].Cell.Kind == runner.Whisper {
		split++
	}
	var out Table6Result

	// WHISPER row: average MM ER vs TT TER.
	wr := table3Rows(res[:split])
	var er, ter float64
	for _, r := range wr {
		er += r.MMER
		ter += r.TER
	}
	n := float64(len(wr))
	out.Rows = append(out.Rows, attack.BuildScenarioRow("WHISPER", er/n, ter/n))

	// SPEC row.
	sr := table4Rows(res[split:])
	er, ter = 0, 0
	for _, r := range sr {
		er += r.MMER
		ter += r.TER
	}
	n = float64(len(sr))
	out.Rows = append(out.Rows, attack.BuildScenarioRow("SPEC", er/n, ter/n))

	// Static census over instrumented kernels.
	census, err := specGadgetCensus(spec.Opts)
	if err != nil {
		return err
	}
	out.SpecCensus = census
	g.Scenarios = &out
	return nil
}

// Table6 reproduces Table VI by measuring exposure rates of both suites
// and scanning the instrumented kernels for gadget coverage.
func Table6(o ExpOpts) (Table6Result, error) {
	g, err := Run(ExperimentSpec{Name: "table6", Opts: o})
	if err != nil {
		return Table6Result{}, err
	}
	return *g.Scenarios, nil
}

// FormatTable6 renders Table VI, including the full scenario matrix
// (gadget/window relationship x attacker capability).
func FormatTable6(r Table6Result) string {
	t := stats.NewTable("Suite", "MERR keeps usable", "TERP keeps usable", "TERP disarms")
	for _, row := range r.Rows {
		t.AddRow(row.Suite,
			fmt.Sprintf("%.1f%%", 100*row.MERRUsable),
			fmt.Sprintf("%.2f%%", 100*row.TERPUsable),
			fmt.Sprintf("%.2f%%", 100*row.DisarmedTERP()))
	}
	s := "Table VI: gadget capability under the attack scenarios\n" + t.String()
	s += fmt.Sprintf("Static census (SPEC kernels): %d PMO gadgets, %.1f%% inside attach-detach windows\n",
		r.SpecCensus.Total, 100*r.SpecCensus.CoveredFraction())
	if len(r.Rows) == 2 {
		m := attack.BuildScenarioMatrix(r.Rows[0].DisarmedTERP(), r.Rows[1].DisarmedTERP(), params.DefaultEWMicros)
		s += "\nScenario matrix:\n" + m.String()
	}
	return s
}

// specGadgetCensus instruments every SPEC kernel (via the shared program
// cache, so `-exp all` reuses the Table IV compiles) and scans the result
// for gadget coverage.
func specGadgetCensus(o ExpOpts) (attack.GadgetCensus, error) {
	var total attack.GadgetCensus
	opt := terpc.Options{
		EWThreshold:  params.Micros(params.DefaultEWMicros),
		TEWThreshold: params.Micros(params.DefaultTEWMicros),
	}
	for _, k := range speckit.Kernels() {
		prog, err := runner.DefaultCache.Program(k, o.Scale, true, opt)
		if err != nil {
			return total, err
		}
		c := attack.ScanProgram(prog)
		total.Total += c.Total
		total.Covered += c.Covered
		total.Gadgets = append(total.Gadgets, c.Gadgets...)
	}
	return total, nil
}

// --- Figure 8 ---------------------------------------------------------------

// Figure8Result is the dead-time study outcome.
type Figure8Result struct {
	// Hist is the dead-time distribution in microseconds.
	Hist *stats.Histogram
	// AtLeastTEW is the fraction of dead times >= the 2 us TEW target
	// (the attack-surface reduction of choosing TEW = 2 us).
	AtLeastTEW float64
}

func assembleFigure8(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	var rec *obs.Recorder
	if spec.Obs.Trace {
		rec = obs.NewRecorder(spec.Obs.TraceCap)
	}
	h, frac, err := attack.DeadTimeStudyObs(spec.Opts.Seed, rec)
	if err != nil {
		return err
	}
	g.DeadTime = &Figure8Result{Hist: h, AtLeastTEW: frac}
	attachAnalysisObs(spec, g, "fig8/deadtime/scan", rec, func(s *obs.Snapshot) {
		s.Add("attack/deadtime/samples", h.N)
	})
	return nil
}

// attachAnalysisObs surfaces an analysis-only experiment's recorder and
// counters as a single synthetic obs cell — the same shape runner cells
// produce — so the report layer sees attack instants without re-running
// the scans. No-op when the spec collects nothing.
func attachAnalysisObs(spec ExperimentSpec, g *Grid, cell string, rec *obs.Recorder, fill func(*obs.Snapshot)) {
	if !spec.Obs.Enabled() {
		return
	}
	c := &obs.CellObs{Cell: cell}
	og := &ObsGrid{Cells: []*obs.CellObs{c}}
	if spec.Obs.Metrics {
		c.Metrics = obs.NewSnapshot()
		if fill != nil {
			fill(c.Metrics)
		}
		og.Totals = obs.NewSnapshot()
		og.Totals.Merge(c.Metrics)
	}
	if rec != nil {
		c.TraceEvents = rec.Total()
		c.TraceDropped = rec.Dropped()
		c.Events = rec.Events()
	}
	g.Obs = og
}

// Figure8 reproduces the dead-time distribution study.
func Figure8(o ExpOpts) (Figure8Result, error) {
	g, err := Run(ExperimentSpec{Name: "fig8", Opts: o})
	if err != nil {
		return Figure8Result{}, err
	}
	return *g.DeadTime, nil
}

// FormatFigure8 renders the distribution.
func FormatFigure8(r Figure8Result) string {
	var b strings.Builder
	b.WriteString("Figure 8: time from last write to deallocation (attack surface)\n")
	for i := range r.Hist.Counts {
		frac := r.Hist.Fraction(i)
		fmt.Fprintf(&b, "  %12s us  %5.1f%% |%s\n", r.Hist.BucketLabel(i), 100*frac,
			strings.Repeat("#", int(frac*120)))
	}
	fmt.Fprintf(&b, "P(dead time >= 2us) = %.1f%% -> a 2us TEW removes %.1f%% of the surface\n",
		100*r.AtLeastTEW, 100*r.AtLeastTEW)
	return b.String()
}

// --- Semantics-space exploration (Section IV) --------------------------------

// SemanticsStudyResult compares the four attach/detach semantics of
// Section IV on two traces: the nested-library trace (Figure 3) and the
// overlapping-threads trace (Figure 4).
type SemanticsStudyResult struct {
	// Nested holds the per-policy results for the nesting trace.
	Nested []semantics.StudyResult
	// Parallel holds the per-policy results for the concurrency trace.
	Parallel []semantics.StudyResult
}

// SemanticsStudy runs the exploration with a 2us EW-conscious holdoff.
func SemanticsStudy() SemanticsStudyResult {
	var out SemanticsStudyResult
	l := params.Micros(params.DefaultTEWMicros)
	nested := semantics.NestedTrace(50, 3, 200)
	par := semantics.ParallelTrace(4, 50, 100)
	for _, p := range semantics.AllPolicies(l) {
		out.Nested = append(out.Nested, semantics.RunStudy(p, nested))
		out.Parallel = append(out.Parallel, semantics.RunStudy(p, par))
	}
	return out
}

func assembleSemantics(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	r := SemanticsStudy()
	g.Semantics = &r
	return nil
}

// FormatSemanticsStudy renders the exploration as two tables.
func FormatSemanticsStudy(r SemanticsStudyResult) string {
	var b strings.Builder
	render := func(title string, rows []semantics.StudyResult) {
		b.WriteString(title + "\n")
		t := stats.NewTable("semantics", "errors", "real ops", "lowered", "silent", "denied acc.", "EW avg/max (us)")
		for _, row := range rows {
			t.AddRow(row.Policy, row.Errors, row.RealOps, row.Lowered, row.Silent,
				row.DeniedAccesses,
				fmt.Sprintf("%.1f/%.1f", params.ToMicros(uint64(row.AvgEW)), params.ToMicros(uint64(row.MaxEW))))
		}
		b.WriteString(t.String())
	}
	render("Semantics exploration — nested library calls (Figure 3 situation):", r.Nested)
	b.WriteString("\n")
	render("Semantics exploration — overlapping threads (Figure 4 situation):", r.Parallel)
	b.WriteString(`
Reading: Basic rejects nesting and concurrent windows outright (every
rejected call is a crash or a lost protection in a real program). FCFS
accepts them but performs the first detach it sees, then denies the
program's own remaining accesses — it cannot tell benign late accesses
from an attacker's. Outermost silences inner pairs, so its window always
spans the whole outermost nest, however long that runs. EW-conscious is
the only semantics with zero errors and zero denied accesses; its windows
may combine (they exceed the others here by design), which is exactly
what the TERP hardware's timer then bounds to the EW target — the
division of labor of Section IV-C plus Section V-B.
`)
	return b.String()
}

// --- EW security/performance frontier (extension of Section VII-A) ----------

// EWSweepRow is one point of the exposure-window frontier: the overhead a
// target costs and the probe-attack success probability it concedes.
type EWSweepRow struct {
	// EWMicros is the exposure window target.
	EWMicros float64
	// OverheadPct is the measured WHISPER-average overhead (percent).
	OverheadPct float64
	// MERRSuccPct and TERPSuccPct are per-window probe success
	// probabilities (percent, 1 us attack time, 1 GB PMO).
	MERRSuccPct, TERPSuccPct float64
}

// ewSweepCells enumerates (baseline, TT) pairs per workload at each
// sweep point.
func ewSweepCells(o ExpOpts, ews []float64) []runner.Cell {
	var cells []runner.Cell
	for _, ew := range ews {
		for _, mk := range whisper.All() {
			name := mk().Name()
			cells = append(cells,
				whisperCell("ewsweep", "base", name, Unprotected, ew, o),
				whisperCell("ewsweep", fmt.Sprintf("TT(%.0fus)", ew), name, TT, ew, o))
		}
	}
	return cells
}

func assembleEWSweep(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	ews := spec.sweepPoints()
	n := len(whisper.All())
	per := 2 * n
	for i, ew := range ews {
		grp := res[i*per : (i+1)*per]
		var ovSum, terSum float64
		for j := 0; j+1 < len(grp); j += 2 {
			base, prot := grp[j].Result, grp[j+1].Result
			ovSum += float64(prot.Cycles)/float64(base.Cycles) - 1
			terSum += prot.Exposure.TER
		}
		merr := attack.ProbeModel{PMOBytes: 1 << 30, EWMicros: ew, AttackMicros: 1, AccessFraction: 1}
		terp := merr
		terp.AccessFraction = terSum / float64(n)
		g.Frontier = append(g.Frontier, EWSweepRow{
			EWMicros:    ew,
			OverheadPct: 100 * ovSum / float64(n),
			MERRSuccPct: merr.SuccessPercent(),
			TERPSuccPct: terp.SuccessPercent(),
		})
	}
	return nil
}

// EWSweep measures the security/performance frontier across EW targets,
// extending the paper's 40/80/160 us evaluation with the analytic attack
// model at each point. The TERP probability uses each run's measured
// thread exposure rate rather than the paper's fixed 3.4%.
func EWSweep(o ExpOpts, ewMicros []float64) ([]EWSweepRow, error) {
	g, err := Run(ExperimentSpec{Name: "ewsweep", Opts: o, EWMicros: ewMicros})
	if err != nil {
		return nil, err
	}
	return g.Frontier, nil
}

// FormatEWSweep renders the frontier.
func FormatEWSweep(rows []EWSweepRow) string {
	t := stats.NewTable("EW target (us)", "TT overhead %", "MERR succ.%/win", "TERP succ.%/win")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f", r.EWMicros),
			fmt.Sprintf("%.1f", r.OverheadPct),
			fmt.Sprintf("%.5f", r.MERRSuccPct),
			fmt.Sprintf("%.5f", r.TERPSuccPct))
	}
	return "EW frontier: protection cost vs probe-attack success (extension)\n" + t.String()
}

// --- Crash matrix (extension): fault injection + recovery verification ------

// CrashRow summarizes one fault-injection cell: a workload driven over
// the persist-buffer model with crashes injected under one enumeration
// policy, every post-crash image verified through recovery.
type CrashRow struct {
	// Prog is the workload; Policy and Adversarial name the injection
	// configuration.
	Prog        string `json:"prog"`
	Policy      string `json:"policy"`
	Adversarial bool   `json:"adversarial"`
	// Ops is the instrumented run length; Events and Fences count its
	// persist events; Candidates is the policy's full enumeration.
	Ops        int    `json:"ops"`
	Events     uint64 `json:"events"`
	Fences     uint64 `json:"fences"`
	Candidates int    `json:"candidates"`
	// Points is how many crash images were materialized and verified;
	// Undone sums the undo records recovery rolled back; Dropped sums
	// the flushed-but-unfenced lines the adversary discarded.
	Points  int `json:"points"`
	Undone  int `json:"undone"`
	Dropped int `json:"dropped"`
	// Checked counts images cross-checked against the exhaustive
	// crash-state enumerator (txnpairs cells; see internal/litmus).
	Checked int `json:"checked,omitempty"`
	// Failures counts images that failed recovery verification (the
	// experiment's pass criterion is zero).
	Failures int `json:"failures"`
}

// crashOps derives the instrumented run length from the experiment op
// count: every cell replays the workload twice and verifies each point
// against a fresh device, so full-length runs buy nothing.
func crashOps(ops int) int {
	n := ops / 250
	if n < 120 {
		n = 120
	}
	if n > 1500 {
		n = 1500
	}
	return n
}

// crashPointsPerCell is the injection budget per cell; with the txnpairs
// micro-workload plus the six WHISPER workloads under two policies each,
// the matrix injects up to 7*2*8 = 112 crash points.
const crashPointsPerCell = 8

// crashCells enumerates the matrix: per workload, a strict-ordering cell
// crashing at every 23rd fence (spreading points across the run) and an
// adversarial cell crashing at a seeded-random sample of persist events
// with flushed-but-unfenced lines dropped from each image.
func crashCells(exp string, o ExpOpts) []runner.Cell {
	names := []string{"txnpairs"}
	for _, mk := range whisper.All() {
		names = append(names, mk().Name())
	}
	ops := crashOps(o.Ops)
	var cells []runner.Cell
	for _, name := range names {
		// txnpairs keeps few writebacks in flight, so its sampled images
		// are additionally cross-checked against the exhaustive litmus
		// enumeration; WHISPER working sets exceed the enumeration cap.
		check := name == "txnpairs"
		cells = append(cells,
			runner.Cell{
				Exp: exp, Label: "fence/strict", Kind: runner.Crash, Workload: name,
				Seed: o.Seed, Ops: ops,
				Policy: string(crash.FencePolicy), Every: 23, PointCount: crashPointsPerCell,
				CrossCheck: check,
			},
			runner.Cell{
				Exp: exp, Label: "random/adv", Kind: runner.Crash, Workload: name,
				Seed: o.Seed, Ops: ops,
				Policy: string(crash.RandomPolicy), PointCount: crashPointsPerCell,
				Adversarial: true, CrossCheck: check,
			})
	}
	return cells
}

// crashRows folds one report per cell into rows.
func crashRows(res []runner.CellResult) []CrashRow {
	var rows []CrashRow
	for _, r := range res {
		rep := r.Crash
		if rep == nil {
			continue
		}
		row := CrashRow{
			Prog:        rep.Workload,
			Policy:      string(rep.Policy),
			Adversarial: rep.Adversarial,
			Ops:         rep.Ops,
			Events:      rep.Events,
			Fences:      rep.Fences,
			Candidates:  rep.Candidates,
			Points:      len(rep.Points),
			Undone:      rep.Undone,
			Checked:     rep.CrossChecked,
			Failures:    rep.Failures,
		}
		for _, p := range rep.Points {
			row.Dropped += p.Dropped
		}
		rows = append(rows, row)
	}
	return rows
}

func assembleCrash(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	g.Crash = crashRows(res)
	return nil
}

// Crash runs the crash-consistency matrix (extension): deterministic
// fault injection over the persist-buffer model with full recovery
// verification at every point.
func Crash(o ExpOpts) ([]CrashRow, error) {
	g, err := Run(ExperimentSpec{Name: "crash", Opts: o})
	if err != nil {
		return nil, err
	}
	return g.Crash, nil
}

// FormatCrash renders the matrix.
func FormatCrash(rows []CrashRow) string {
	t := stats.NewTable("Prog", "Policy", "Adv", "Ops", "Events", "Fences",
		"Cand", "Points", "Undone", "Dropped", "Fail")
	points, failures := 0, 0
	for _, r := range rows {
		adv := "-"
		if r.Adversarial {
			adv = "yes"
		}
		t.AddRow(r.Prog, r.Policy, adv, r.Ops, r.Events, r.Fences,
			r.Candidates, r.Points, r.Undone, r.Dropped, r.Failures)
		points += r.Points
		failures += r.Failures
	}
	verdict := "all recovered"
	if failures > 0 {
		verdict = fmt.Sprintf("%d FAILED", failures)
	}
	return fmt.Sprintf("Crash matrix: %d injected crash points, %s (extension)\n%s",
		points, verdict, t.String())
}

// --- Litmus matrix (extension): persistency-model verification ---------------

// LitmusRow summarizes one litmus suite cell: exhaustive crash-state
// enumeration over the persist-buffer model diffed against the Px86
// oracle (see internal/litmus).
type LitmusRow struct {
	// Suite names the program source ("named" or "gen/<seed>").
	Suite string `json:"suite"`
	// Seed seeds the generator (0 for the named suite).
	Seed int64 `json:"seed"`
	// Programs and Events count litmus programs and their persist events.
	Programs int `json:"programs"`
	Events   int `json:"events"`
	// ModelStates and SpecStates sum the exact enumerated image counts.
	ModelStates int `json:"modelStates"`
	SpecStates  int `json:"specStates"`
	// ModelOnly counts spec-forbidden model states (model bugs);
	// Eviction and WbReplace count the allowlisted spec-only classes.
	ModelOnly int `json:"modelOnly"`
	Eviction  int `json:"eviction"`
	WbReplace int `json:"wbReplace"`
	// Violations counts non-allowlisted divergences plus expected-count
	// mismatches (the experiment's pass criterion is zero).
	Violations int `json:"violations"`
}

// litmusGenCells is the number of generated-suite cells; each runs
// litmusProgs(ops) programs under its own seed.
const litmusGenCells = 4

// litmusProgs derives the generated-program count per cell from the
// experiment op count: enumeration is exhaustive per program, so depth
// comes from program variety, not run length.
func litmusProgs(ops int) int {
	n := ops / 4000
	if n < 6 {
		n = 6
	}
	if n > 50 {
		n = 50
	}
	return n
}

// litmusCells enumerates the matrix: the hand-written named suite, then
// litmusGenCells generated suites under consecutive seeds.
func litmusCells(exp string, o ExpOpts) []runner.Cell {
	cells := []runner.Cell{{
		Exp: exp, Label: "named", Kind: runner.Litmus, Workload: "named", Seed: o.Seed,
	}}
	for i := 0; i < litmusGenCells; i++ {
		seed := o.Seed + int64(i)
		cells = append(cells, runner.Cell{
			Exp: exp, Label: fmt.Sprintf("gen/%d", seed), Kind: runner.Litmus,
			Workload: "gen", Seed: seed, Ops: litmusProgs(o.Ops),
		})
	}
	return cells
}

// litmusRows folds one report per cell into rows.
func litmusRows(res []runner.CellResult) []LitmusRow {
	var rows []LitmusRow
	for _, r := range res {
		rep := r.Litmus
		if rep == nil {
			continue
		}
		row := LitmusRow{
			Suite:       rep.Suite,
			Programs:    rep.Programs,
			Events:      rep.Events,
			ModelStates: rep.ModelStates,
			SpecStates:  rep.SpecStates,
			ModelOnly:   rep.ModelOnly,
			Eviction:    rep.Eviction,
			WbReplace:   rep.WbReplace,
			Violations:  rep.Violations,
		}
		if r.Cell.Workload == "gen" {
			row.Seed = r.Cell.Seed
		}
		rows = append(rows, row)
	}
	return rows
}

func assembleLitmus(spec ExperimentSpec, res []runner.CellResult, g *Grid) error {
	g.Litmus = litmusRows(res)
	return nil
}

// Litmus runs the persistency-litmus matrix (extension): exhaustive
// crash-state enumeration of the persist-buffer model cross-checked
// against the declarative Px86-style oracle.
func Litmus(o ExpOpts) ([]LitmusRow, error) {
	g, err := Run(ExperimentSpec{Name: "litmus", Opts: o})
	if err != nil {
		return nil, err
	}
	return g.Litmus, nil
}

// FormatLitmus renders the matrix.
func FormatLitmus(rows []LitmusRow) string {
	t := stats.NewTable("Suite", "Progs", "Events", "Model", "Spec",
		"ModelOnly", "Evict", "WbRepl", "Viol")
	programs, states, violations := 0, 0, 0
	for _, r := range rows {
		t.AddRow(r.Suite, r.Programs, r.Events, r.ModelStates, r.SpecStates,
			r.ModelOnly, r.Eviction, r.WbReplace, r.Violations)
		programs += r.Programs
		states += r.ModelStates
		violations += r.Violations
	}
	verdict := "model within spec"
	if violations > 0 {
		verdict = fmt.Sprintf("%d VIOLATIONS", violations)
	}
	return fmt.Sprintf("Litmus matrix: %d programs, %d enumerated crash states, %s (extension)\n%s",
		programs, states, verdict, t.String())
}
