package terp

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/params"
	"repro/internal/semantics"
	"repro/internal/sim"
	"repro/internal/speckit"
	"repro/internal/stats"
	"repro/internal/terpc"
	"repro/internal/whisper"
)

// ExpOpts scales the experiment runners. The defaults reproduce the
// paper's settings; tests and benchmarks shrink Ops/Scale for speed.
type ExpOpts struct {
	// Ops is the WHISPER operation count (paper: 100000).
	Ops int
	// Scale multiplies the SPEC kernel sizes (paper-equivalent: 4+).
	Scale int
	// Seed seeds every run.
	Seed int64
}

func (o ExpOpts) withDefaults() ExpOpts {
	if o.Ops == 0 {
		o.Ops = whisper.DefaultOps
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o ExpOpts) cfg(s Scheme, ew float64) params.Config {
	c := params.NewConfig(s, ew)
	c.Seed = o.Seed
	return c
}

// --- Table III --------------------------------------------------------------

// WhisperRow is one Table III row: exposure measurements for one WHISPER
// workload under MM and TT at the 40 us EW / 2 us TEW targets.
type WhisperRow struct {
	// Prog is the workload name.
	Prog string
	// MMEWAvg, MMEWMax, MMER are MERR's exposure figures (us, us, frac).
	MMEWAvg, MMEWMax, MMER float64
	// Silent is TT's share of conditional ops lowered to thread
	// permission changes (percent).
	Silent float64
	// TTEWAvg, TTEWMax, TTER are TT's process-level exposure figures.
	TTEWAvg, TTEWMax, TTER float64
	// TEW and TER are TT's thread-level exposure figures (us, frac).
	TEW, TER float64
	// CondFreq is TT's conditional ops per second.
	CondFreq float64
}

// Table3 reproduces Table III: WHISPER exposure under MM vs TT.
func Table3(o ExpOpts) ([]WhisperRow, error) {
	o = o.withDefaults()
	var rows []WhisperRow
	for _, mk := range whisper.All() {
		name := mk().Name()
		mm, err := whisper.Run(o.cfg(MM, 40), mk, whisper.RunOpts{Ops: o.Ops})
		if err != nil {
			return nil, fmt.Errorf("table3 %s MM: %w", name, err)
		}
		tt, err := whisper.Run(o.cfg(TT, 40), mk, whisper.RunOpts{Ops: o.Ops})
		if err != nil {
			return nil, fmt.Errorf("table3 %s TT: %w", name, err)
		}
		rows = append(rows, WhisperRow{
			Prog:     name,
			MMEWAvg:  params.ToMicros(uint64(mm.Exposure.AvgEW)),
			MMEWMax:  params.ToMicros(uint64(mm.Exposure.MaxEW)),
			MMER:     mm.Exposure.ER,
			Silent:   tt.Counts.SilentPercent(),
			TTEWAvg:  params.ToMicros(uint64(tt.Exposure.AvgEW)),
			TTEWMax:  params.ToMicros(uint64(tt.Exposure.MaxEW)),
			TTER:     tt.Exposure.ER,
			TEW:      params.ToMicros(uint64(tt.Exposure.AvgTEW)),
			TER:      tt.Exposure.TER,
			CondFreq: tt.CondFreqPerSec(),
		})
	}
	return rows, nil
}

// FormatTable3 renders Table III.
func FormatTable3(rows []WhisperRow) string {
	t := stats.NewTable("Prog", "MM EW avg/max(us)", "MM ER%", "Silent%",
		"TT EW avg/max(us)", "TT ER%", "TEW(us)", "TER%")
	var avg WhisperRow
	for _, r := range rows {
		t.AddRow(r.Prog,
			fmt.Sprintf("%.1f/%.1f", r.MMEWAvg, r.MMEWMax), 100*r.MMER,
			r.Silent,
			fmt.Sprintf("%.1f/%.1f", r.TTEWAvg, r.TTEWMax), 100*r.TTER,
			fmt.Sprintf("%.2f", r.TEW), 100*r.TER)
		avg.MMEWAvg += r.MMEWAvg
		avg.MMER += r.MMER
		avg.Silent += r.Silent
		avg.TTEWAvg += r.TTEWAvg
		avg.TTER += r.TTER
		avg.TEW += r.TEW
		avg.TER += r.TER
	}
	n := float64(len(rows))
	if n > 0 {
		t.AddRow("Avg.",
			fmt.Sprintf("%.1f/-", avg.MMEWAvg/n), 100*avg.MMER/n,
			avg.Silent/n,
			fmt.Sprintf("%.1f/-", avg.TTEWAvg/n), 100*avg.TTER/n,
			fmt.Sprintf("%.2f", avg.TEW/n), 100*avg.TER/n)
	}
	return "Table III: WHISPER results with target EW 40us, TEW 2us\n" + t.String()
}

// --- Figures 9/10/11: overhead breakdowns -----------------------------------

// OverheadBar is one stacked bar of an overhead figure.
type OverheadBar struct {
	// Prog is the workload or kernel name.
	Prog string
	// Label names the configuration (e.g. "MM(40us)" or "TT(80us)").
	Label string
	// Total is the relative execution-time overhead vs unprotected.
	Total float64
	// Attach, Detach, Rand, Cond, Other are the stacked components as
	// fractions of baseline time.
	Attach, Detach, Rand, Cond, Other float64
}

func bar(prog, label string, prot, base core.Result) OverheadBar {
	b := float64(base.Cycles)
	ov := float64(prot.Cycles)/b - 1
	out := OverheadBar{
		Prog: prog, Label: label, Total: ov,
		Attach: float64(prot.Costs[sim.Attach]) / b,
		Detach: float64(prot.Costs[sim.Detach]) / b,
		Rand:   float64(prot.Costs[sim.Rand]) / b,
		Cond:   float64(prot.Costs[sim.Cond]) / b,
	}
	out.Other = ov - out.Attach - out.Detach - out.Rand - out.Cond
	if out.Other < 0 {
		out.Other = 0
	}
	return out
}

// whisperConfigs are the Figure 9 configurations.
func figure9Configs(o ExpOpts) []struct {
	label string
	cfg   params.Config
} {
	return []struct {
		label string
		cfg   params.Config
	}{
		{"MM(40us)", o.cfg(MM, 40)},
		{"TM(40us)", o.cfg(TM, 40)},
		{"TT(40us)", o.cfg(TT, 40)},
		{"TT(80us)", o.cfg(TT, 80)},
		{"TT(160us)", o.cfg(TT, 160)},
	}
}

// Figure9 reproduces the WHISPER overhead breakdown.
func Figure9(o ExpOpts) ([]OverheadBar, error) {
	o = o.withDefaults()
	var bars []OverheadBar
	for _, mk := range whisper.All() {
		name := mk().Name()
		base, err := whisper.Run(o.cfg(Unprotected, 40), mk, whisper.RunOpts{Ops: o.Ops})
		if err != nil {
			return nil, err
		}
		for _, c := range figure9Configs(o) {
			prot, err := whisper.Run(c.cfg, mk, whisper.RunOpts{Ops: o.Ops})
			if err != nil {
				return nil, fmt.Errorf("figure9 %s %s: %w", name, c.label, err)
			}
			bars = append(bars, bar(name, c.label, prot, base))
		}
	}
	return bars, nil
}

// Table4Row is one Table IV row: SPEC exposure under MM and TT.
type Table4Row struct {
	// Prog is the kernel name; PMOs its persistent array count.
	Prog string
	PMOs int
	// Exposure figures as in WhisperRow.
	MMEWAvg, MMEWMax, MMER float64
	Silent                 float64
	TTEWAvg, TTEWMax, TTER float64
	TEW, TER               float64
}

// Table4 reproduces Table IV (single-thread, multi-PMO SPEC kernels).
func Table4(o ExpOpts) ([]Table4Row, error) {
	o = o.withDefaults()
	var rows []Table4Row
	for _, k := range speckit.Kernels() {
		run := speckit.RunOpts{Threads: 1, Scale: o.Scale}
		mm, err := speckit.Run(o.cfg(MM, 40), k, run)
		if err != nil {
			return nil, fmt.Errorf("table4 %s MM: %w", k.Name, err)
		}
		tt, err := speckit.Run(o.cfg(TT, 40), k, run)
		if err != nil {
			return nil, fmt.Errorf("table4 %s TT: %w", k.Name, err)
		}
		rows = append(rows, Table4Row{
			Prog: k.Name, PMOs: k.PMOs,
			MMEWAvg: params.ToMicros(uint64(mm.Exposure.AvgEW)),
			MMEWMax: params.ToMicros(uint64(mm.Exposure.MaxEW)),
			MMER:    mm.Exposure.ER,
			Silent:  tt.Counts.SilentPercent(),
			TTEWAvg: params.ToMicros(uint64(tt.Exposure.AvgEW)),
			TTEWMax: params.ToMicros(uint64(tt.Exposure.MaxEW)),
			TTER:    tt.Exposure.ER,
			TEW:     params.ToMicros(uint64(tt.Exposure.AvgTEW)),
			TER:     tt.Exposure.TER,
		})
	}
	return rows, nil
}

// FormatTable4 renders Table IV.
func FormatTable4(rows []Table4Row) string {
	t := stats.NewTable("Prog", "#PMOs", "MM EW avg/max(us)", "MM ER%",
		"Silent%", "TT EW avg/max(us)", "TT ER%", "TEW(us)", "TER%")
	for _, r := range rows {
		t.AddRow(r.Prog, r.PMOs,
			fmt.Sprintf("%.1f/%.1f", r.MMEWAvg, r.MMEWMax), 100*r.MMER,
			r.Silent,
			fmt.Sprintf("%.1f/%.1f", r.TTEWAvg, r.TTEWMax), 100*r.TTER,
			fmt.Sprintf("%.2f", r.TEW), 100*r.TER)
	}
	return "Table IV: SPEC results on 40us EW (single thread, multi-PMO)\n" + t.String()
}

// Figure10 reproduces the single-thread SPEC overhead breakdown.
func Figure10(o ExpOpts) ([]OverheadBar, error) {
	return specOverheads(o, 1, figure9Configs(o.withDefaults()))
}

// Figure11 reproduces the 4-thread ablation: Basic semantics, +Cond, and
// the full design (+CB) at 40/80/160 us EWs.
func Figure11(o ExpOpts) ([]OverheadBar, error) {
	o = o.withDefaults()
	cfgs := []struct {
		label string
		cfg   params.Config
	}{
		{"Basic(40us)", o.cfg(BasicSem, 40)},
		{"+Cond(40us)", o.cfg(PlusCond, 40)},
		{"+CB(40us)", o.cfg(PlusCB, 40)},
		{"TT(80us)", o.cfg(TT, 80)},
		{"TT(160us)", o.cfg(TT, 160)},
	}
	return specOverheads(o, params.Cores, cfgs)
}

func specOverheads(o ExpOpts, threads int, cfgs []struct {
	label string
	cfg   params.Config
}) ([]OverheadBar, error) {
	o = o.withDefaults()
	var bars []OverheadBar
	for _, k := range speckit.Kernels() {
		run := speckit.RunOpts{Threads: threads, Scale: o.Scale}
		baseCfg := o.cfg(Unprotected, 40)
		base, err := speckit.Run(baseCfg, k, run)
		if err != nil {
			return nil, err
		}
		for _, c := range cfgs {
			prot, err := speckit.Run(c.cfg, k, run)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", k.Name, c.label, err)
			}
			bars = append(bars, bar(k.Name, c.label, prot, base))
		}
	}
	return bars, nil
}

// FormatOverheads renders an overhead figure as grouped ASCII bars.
func FormatOverheads(title string, bars []OverheadBar) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	var max float64
	for _, x := range bars {
		if x.Total > max {
			max = x.Total
		}
	}
	if max == 0 {
		max = 1
	}
	prog := ""
	for _, x := range bars {
		if x.Prog != prog {
			prog = x.Prog
			fmt.Fprintf(&b, "%s:\n", prog)
		}
		fmt.Fprintf(&b, "  %s\n", stats.Bar(x.Label, x.Total, max, 50))
		fmt.Fprintf(&b, "    attach %.2f%% detach %.2f%% rand %.2f%% cond %.2f%% other %.2f%%\n",
			100*x.Attach, 100*x.Detach, 100*x.Rand, 100*x.Cond, 100*x.Other)
	}
	return b.String()
}

// --- Table V ----------------------------------------------------------------

// Table5Row is one quantitative-comparison row.
type Table5Row struct {
	// AttackMicros is the per-probe attack time x.
	AttackMicros float64
	// MERRPct and TERPPct are success probabilities in percent.
	MERRPct, TERPPct float64
}

// Table5 reproduces the Table V analysis. terpAccessFraction is the
// measured TERP thread exposure rate; pass 0 to use the paper's 3.4%.
func Table5(terpAccessFraction float64) []Table5Row {
	if terpAccessFraction == 0 {
		terpAccessFraction = attack.DefaultTERPAccessFraction
	}
	var rows []Table5Row
	for _, x := range attack.AttackTimes() {
		m, t := attack.TableVRow(x, terpAccessFraction)
		rows = append(rows, Table5Row{AttackMicros: x, MERRPct: m, TERPPct: t})
	}
	return rows
}

// FormatTable5 renders Table V.
func FormatTable5(rows []Table5Row) string {
	t := stats.NewTable("Attack time x(us)", "MERR succ.%", "TERP succ.%", "Reduction")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.1f", r.AttackMicros),
			fmt.Sprintf("%.5f", r.MERRPct),
			fmt.Sprintf("%.5f", r.TERPPct),
			fmt.Sprintf("%.0fx", r.MERRPct/r.TERPPct))
	}
	return "Table V: probe-attack success probability per window (1GB PMO, 40us EW, 2us TEW)\n" + t.String()
}

// --- Table VI ---------------------------------------------------------------

// Table6Result is the attack-scenario analysis: time-weighted gadget
// disarm rates derived from measured exposure, per suite.
type Table6Result struct {
	// Rows holds one entry per suite.
	Rows []attack.ScenarioRow
	// SpecCensus is the static gadget census over the instrumented
	// SPEC kernels (every PMO access gadget must be window-covered).
	SpecCensus attack.GadgetCensus
}

// Table6 reproduces Table VI by measuring exposure rates of both suites
// and scanning the instrumented kernels for gadget coverage.
func Table6(o ExpOpts) (Table6Result, error) {
	o = o.withDefaults()
	var out Table6Result

	// WHISPER row: average MM ER vs TT TER.
	wr, err := Table3(ExpOpts{Ops: o.Ops / 4, Seed: o.Seed})
	if err != nil {
		return out, err
	}
	var er, ter float64
	for _, r := range wr {
		er += r.MMER
		ter += r.TER
	}
	n := float64(len(wr))
	out.Rows = append(out.Rows, attack.BuildScenarioRow("WHISPER", er/n, ter/n))

	// SPEC row.
	sr, err := Table4(ExpOpts{Scale: o.Scale, Seed: o.Seed})
	if err != nil {
		return out, err
	}
	er, ter = 0, 0
	for _, r := range sr {
		er += r.MMER
		ter += r.TER
	}
	n = float64(len(sr))
	out.Rows = append(out.Rows, attack.BuildScenarioRow("SPEC", er/n, ter/n))

	// Static census over instrumented kernels.
	census, err := specGadgetCensus(o)
	if err != nil {
		return out, err
	}
	out.SpecCensus = census
	return out, nil
}

// FormatTable6 renders Table VI, including the full scenario matrix
// (gadget/window relationship x attacker capability).
func FormatTable6(r Table6Result) string {
	t := stats.NewTable("Suite", "MERR keeps usable", "TERP keeps usable", "TERP disarms")
	for _, row := range r.Rows {
		t.AddRow(row.Suite,
			fmt.Sprintf("%.1f%%", 100*row.MERRUsable),
			fmt.Sprintf("%.2f%%", 100*row.TERPUsable),
			fmt.Sprintf("%.2f%%", 100*row.DisarmedTERP()))
	}
	s := "Table VI: gadget capability under the attack scenarios\n" + t.String()
	s += fmt.Sprintf("Static census (SPEC kernels): %d PMO gadgets, %.1f%% inside attach-detach windows\n",
		r.SpecCensus.Total, 100*r.SpecCensus.CoveredFraction())
	if len(r.Rows) == 2 {
		m := attack.BuildScenarioMatrix(r.Rows[0].DisarmedTERP(), r.Rows[1].DisarmedTERP(), params.DefaultEWMicros)
		s += "\nScenario matrix:\n" + m.String()
	}
	return s
}

// --- Figure 8 ---------------------------------------------------------------

// Figure8Result is the dead-time study outcome.
type Figure8Result struct {
	// Hist is the dead-time distribution in microseconds.
	Hist *stats.Histogram
	// AtLeastTEW is the fraction of dead times >= the 2 us TEW target
	// (the attack-surface reduction of choosing TEW = 2 us).
	AtLeastTEW float64
}

// Figure8 reproduces the dead-time distribution study.
func Figure8(o ExpOpts) (Figure8Result, error) {
	o = o.withDefaults()
	h, frac, err := attack.DeadTimeStudy(o.Seed)
	return Figure8Result{Hist: h, AtLeastTEW: frac}, err
}

// FormatFigure8 renders the distribution.
func FormatFigure8(r Figure8Result) string {
	var b strings.Builder
	b.WriteString("Figure 8: time from last write to deallocation (attack surface)\n")
	for i := range r.Hist.Counts {
		frac := r.Hist.Fraction(i)
		fmt.Fprintf(&b, "  %12s us  %5.1f%% |%s\n", r.Hist.BucketLabel(i), 100*frac,
			strings.Repeat("#", int(frac*120)))
	}
	fmt.Fprintf(&b, "P(dead time >= 2us) = %.1f%% -> a 2us TEW removes %.1f%% of the surface\n",
		100*r.AtLeastTEW, 100*r.AtLeastTEW)
	return b.String()
}

// specGadgetCensus compiles and instruments every SPEC kernel and scans
// the result for gadget coverage.
func specGadgetCensus(o ExpOpts) (attack.GadgetCensus, error) {
	var total attack.GadgetCensus
	for _, k := range speckit.Kernels() {
		prog, err := lang.Compile(k.Source(o.Scale))
		if err != nil {
			return total, err
		}
		if _, err := terpc.Insert(prog, terpc.Options{
			EWThreshold:  params.Micros(params.DefaultEWMicros),
			TEWThreshold: params.Micros(params.DefaultTEWMicros),
		}); err != nil {
			return total, err
		}
		c := attack.ScanProgram(prog)
		total.Total += c.Total
		total.Covered += c.Covered
		total.Gadgets = append(total.Gadgets, c.Gadgets...)
	}
	return total, nil
}

// --- Semantics-space exploration (Section IV) --------------------------------

// SemanticsStudyResult compares the four attach/detach semantics of
// Section IV on two traces: the nested-library trace (Figure 3) and the
// overlapping-threads trace (Figure 4).
type SemanticsStudyResult struct {
	// Nested holds the per-policy results for the nesting trace.
	Nested []semantics.StudyResult
	// Parallel holds the per-policy results for the concurrency trace.
	Parallel []semantics.StudyResult
}

// SemanticsStudy runs the exploration with a 2us EW-conscious holdoff.
func SemanticsStudy() SemanticsStudyResult {
	var out SemanticsStudyResult
	l := params.Micros(params.DefaultTEWMicros)
	nested := semantics.NestedTrace(50, 3, 200)
	par := semantics.ParallelTrace(4, 50, 100)
	for _, p := range semantics.AllPolicies(l) {
		out.Nested = append(out.Nested, semantics.RunStudy(p, nested))
		out.Parallel = append(out.Parallel, semantics.RunStudy(p, par))
	}
	return out
}

// FormatSemanticsStudy renders the exploration as two tables.
func FormatSemanticsStudy(r SemanticsStudyResult) string {
	var b strings.Builder
	render := func(title string, rows []semantics.StudyResult) {
		b.WriteString(title + "\n")
		t := stats.NewTable("semantics", "errors", "real ops", "lowered", "silent", "denied acc.", "EW avg/max (us)")
		for _, row := range rows {
			t.AddRow(row.Policy, row.Errors, row.RealOps, row.Lowered, row.Silent,
				row.DeniedAccesses,
				fmt.Sprintf("%.1f/%.1f", params.ToMicros(uint64(row.AvgEW)), params.ToMicros(uint64(row.MaxEW))))
		}
		b.WriteString(t.String())
	}
	render("Semantics exploration — nested library calls (Figure 3 situation):", r.Nested)
	b.WriteString("\n")
	render("Semantics exploration — overlapping threads (Figure 4 situation):", r.Parallel)
	b.WriteString(`
Reading: Basic rejects nesting and concurrent windows outright (every
rejected call is a crash or a lost protection in a real program). FCFS
accepts them but performs the first detach it sees, then denies the
program's own remaining accesses — it cannot tell benign late accesses
from an attacker's. Outermost silences inner pairs, so its window always
spans the whole outermost nest, however long that runs. EW-conscious is
the only semantics with zero errors and zero denied accesses; its windows
may combine (they exceed the others here by design), which is exactly
what the TERP hardware's timer then bounds to the EW target — the
division of labor of Section IV-C plus Section V-B.
`)
	return b.String()
}

// --- EW security/performance frontier (extension of Section VII-A) ----------

// EWSweepRow is one point of the exposure-window frontier: the overhead a
// target costs and the probe-attack success probability it concedes.
type EWSweepRow struct {
	// EWMicros is the exposure window target.
	EWMicros float64
	// OverheadPct is the measured WHISPER-average overhead (percent).
	OverheadPct float64
	// MERRSuccPct and TERPSuccPct are per-window probe success
	// probabilities (percent, 1 us attack time, 1 GB PMO).
	MERRSuccPct, TERPSuccPct float64
}

// EWSweep measures the security/performance frontier across EW targets,
// extending the paper's 40/80/160 us evaluation with the analytic attack
// model at each point. The TERP probability uses each run's measured
// thread exposure rate rather than the paper's fixed 3.4%.
func EWSweep(o ExpOpts, ewMicros []float64) ([]EWSweepRow, error) {
	o = o.withDefaults()
	if len(ewMicros) == 0 {
		ewMicros = []float64{40, 80, 160, 320}
	}
	var rows []EWSweepRow
	for _, ew := range ewMicros {
		var ovSum, terSum float64
		n := 0
		for _, mk := range whisper.All() {
			ov, prot, _, err := whisper.Overhead(o.cfg(TT, ew), mk, whisper.RunOpts{Ops: o.Ops})
			if err != nil {
				return nil, fmt.Errorf("ewsweep %.0fus: %w", ew, err)
			}
			ovSum += ov
			terSum += prot.Exposure.TER
			n++
		}
		merr := attack.ProbeModel{PMOBytes: 1 << 30, EWMicros: ew, AttackMicros: 1, AccessFraction: 1}
		terp := merr
		terp.AccessFraction = terSum / float64(n)
		rows = append(rows, EWSweepRow{
			EWMicros:    ew,
			OverheadPct: 100 * ovSum / float64(n),
			MERRSuccPct: merr.SuccessPercent(),
			TERPSuccPct: terp.SuccessPercent(),
		})
	}
	return rows, nil
}

// FormatEWSweep renders the frontier.
func FormatEWSweep(rows []EWSweepRow) string {
	t := stats.NewTable("EW target (us)", "TT overhead %", "MERR succ.%/win", "TERP succ.%/win")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%.0f", r.EWMicros),
			fmt.Sprintf("%.1f", r.OverheadPct),
			fmt.Sprintf("%.5f", r.MERRSuccPct),
			fmt.Sprintf("%.5f", r.TERPSuccPct))
	}
	return "EW frontier: protection cost vs probe-attack success (extension)\n" + t.String()
}
