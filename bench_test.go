package terp

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its experiment on
// the simulated machine and reports the headline values as custom
// metrics, so `go test -bench=. -benchmem` reproduces the whole
// evaluation section. The per-iteration sizes are reduced from the
// paper's (100K ops, full-size inputs) to keep bench time reasonable;
// cmd/terpbench runs the paper-scale versions.

import (
	"fmt"
	"testing"
)

// benchOpts are the reduced sizes used per benchmark iteration.
var benchOpts = ExpOpts{Ops: 3000, Scale: 1, Seed: 1}

// BenchmarkFigure8 regenerates the dead-time distribution study: the
// attack-surface fraction removed by a 2us TEW.
func BenchmarkFigure8(b *testing.B) {
	var last Figure8Result
	for i := 0; i < b.N; i++ {
		var err error
		last, err = Figure8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*last.AtLeastTEW, "%dead>=2us")
}

// BenchmarkTable3 regenerates the WHISPER exposure table: MM vs TT EW,
// exposure rates, TEW and silent fraction.
func BenchmarkTable3(b *testing.B) {
	var rows []WhisperRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Table3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	var mmEW, ttEW, tew, silent, ter float64
	for _, r := range rows {
		mmEW += r.MMEWAvg
		ttEW += r.TTEWAvg
		tew += r.TEW
		silent += r.Silent
		ter += r.TER
	}
	n := float64(len(rows))
	b.ReportMetric(mmEW/n, "MM-EW-us")
	b.ReportMetric(ttEW/n, "TT-EW-us")
	b.ReportMetric(tew/n, "TT-TEW-us")
	b.ReportMetric(silent/n, "silent-%")
	b.ReportMetric(100*ter/n, "TER-%")
}

// BenchmarkFigure9 regenerates the WHISPER overhead breakdown and reports
// the suite-average overheads of the three schemes at the 40us EW.
func BenchmarkFigure9(b *testing.B) {
	var bars []OverheadBar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = Figure9(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSchemeAverages(b, bars)
}

// BenchmarkTable4 regenerates the SPEC exposure table.
func BenchmarkTable4(b *testing.B) {
	var rows []Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = Table4(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	var silent, ter, er float64
	for _, r := range rows {
		silent += r.Silent
		ter += r.TER
		er += r.TTER
	}
	n := float64(len(rows))
	b.ReportMetric(silent/n, "silent-%")
	b.ReportMetric(100*er/n, "ER-%")
	b.ReportMetric(100*ter/n, "TER-%")
}

// BenchmarkFigure10 regenerates the single-thread SPEC overheads.
func BenchmarkFigure10(b *testing.B) {
	var bars []OverheadBar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = Figure10(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSchemeAverages(b, bars)
}

// BenchmarkFigure11 regenerates the 4-thread ablation: Basic semantics vs
// +Cond vs the full design.
func BenchmarkFigure11(b *testing.B) {
	var bars []OverheadBar
	for i := 0; i < b.N; i++ {
		var err error
		bars, err = Figure11(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := map[string]float64{}
	cnt := map[string]int{}
	for _, x := range bars {
		avg[x.Label] += x.Total
		cnt[x.Label]++
	}
	for _, label := range []string{"Basic(40us)", "+Cond(40us)", "+CB(40us)"} {
		if cnt[label] > 0 {
			b.ReportMetric(100*avg[label]/float64(cnt[label]), label+"-ov%")
		}
	}
}

// BenchmarkTable5 regenerates the quantitative probe-attack comparison.
func BenchmarkTable5(b *testing.B) {
	var rows []Table5Row
	for i := 0; i < b.N; i++ {
		rows = Table5(0)
	}
	b.ReportMetric(rows[0].MERRPct, "MERR-%@1us")
	b.ReportMetric(rows[0].TERPPct, "TERP-%@1us")
	b.ReportMetric(rows[0].MERRPct/rows[0].TERPPct, "reduction-x")
}

// BenchmarkTable6 regenerates the gadget-scenario analysis.
func BenchmarkTable6(b *testing.B) {
	var res Table6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Table6(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res.Rows {
		b.ReportMetric(100*r.DisarmedTERP(), r.Suite+"-disarm-%")
	}
	b.ReportMetric(100*res.SpecCensus.CoveredFraction(), "gadgets-covered-%")
}

func reportSchemeAverages(b *testing.B, bars []OverheadBar) {
	b.Helper()
	avg := map[string]float64{}
	cnt := map[string]int{}
	for _, x := range bars {
		avg[x.Label] += x.Total
		cnt[x.Label]++
	}
	for _, label := range []string{"MM(40us)", "TM(40us)", "TT(40us)", "TT(160us)"} {
		if cnt[label] > 0 {
			b.ReportMetric(100*avg[label]/float64(cnt[label]), label+"-ov%")
		}
	}
}

// --- component microbenchmarks ----------------------------------------------

// BenchmarkCondAttachDetachTT measures the simulator-side cost of one
// conditional attach/detach pair under TT (the hot path of the runtime).
func BenchmarkCondAttachDetachTT(b *testing.B) {
	sys, err := NewSystem(Options{Scheme: TT})
	if err != nil {
		b.Fatal(err)
	}
	p, err := sys.Create("bench", 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Attach(p, ReadWrite); err != nil {
			b.Fatal(err)
		}
		if err := sys.Detach(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtectedStore measures one protected 8-byte store (TLB +
// permission matrix + thread permission + caches + NVM model).
func BenchmarkProtectedStore(b *testing.B) {
	sys, err := NewSystem(Options{Scheme: TT})
	if err != nil {
		b.Fatal(err)
	}
	p, _ := sys.Create("bench", 1<<20)
	if err := sys.Attach(p, ReadWrite); err != nil {
		b.Fatal(err)
	}
	o, _ := p.Alloc(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Store(o, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemanticsStudy regenerates the Section IV semantics-space
// exploration and reports each semantics' error count on the nested trace.
func BenchmarkSemanticsStudy(b *testing.B) {
	var r SemanticsStudyResult
	for i := 0; i < b.N; i++ {
		r = SemanticsStudy()
	}
	for _, row := range r.Nested {
		b.ReportMetric(float64(row.Errors), row.Policy+"-errors")
	}
}

// BenchmarkEWSweep regenerates the security/performance frontier.
func BenchmarkEWSweep(b *testing.B) {
	var rows []EWSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = EWSweep(ExpOpts{Ops: 1500}, []float64{40, 160})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.OverheadPct, fmt.Sprintf("ov%%@%.0fus", r.EWMicros))
		b.ReportMetric(r.TERPSuccPct, fmt.Sprintf("succ%%@%.0fus", r.EWMicros))
	}
}
