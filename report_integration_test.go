package terp

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

// runReport runs the experiments instrumented at the given worker count
// and renders every report artifact.
func runReport(t *testing.T, names []string, parallel int) (grids []*Grid, html, text []byte) {
	t.Helper()
	for _, name := range names {
		g, err := Run(ExperimentSpec{
			Name:     name,
			Opts:     ExpOpts{Ops: 300, Scale: 1, Seed: 7},
			Parallel: parallel,
			Obs:      obs.Config{Trace: true, Metrics: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		grids = append(grids, g)
	}
	r := report.Build(ReportInput("determinism check", grids), report.Options{})
	return grids, report.HTML(r), []byte(report.Text(r))
}

// TestReportByteIdenticalAcrossParallel extends the determinism contract
// to the analysis layer: the full HTML report, its text rendering and
// the regression verdict JSON are byte-identical at -parallel 1 and 8.
func TestReportByteIdenticalAcrossParallel(t *testing.T) {
	names := []string{"table3", "table5", "fig8"}
	grids1, html1, text1 := runReport(t, names, 1)
	grids8, html8, text8 := runReport(t, names, 8)

	if !bytes.Equal(html1, html8) {
		t.Error("HTML report differs between -parallel 1 and 8")
	}
	if !bytes.Equal(text1, text8) {
		t.Error("text report differs between -parallel 1 and 8")
	}
	if len(html1) == 0 || !bytes.Contains(html1, []byte("<svg")) {
		t.Fatal("HTML report is empty or chartless")
	}

	// The regression verdict from comparing the two sides must be a clean
	// pass — and its JSON must render identically built from either side.
	verdict := func(cur, base []*Grid) []byte {
		t.Helper()
		cb, err := json.Marshal(cur)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := json.Marshal(base)
		if err != nil {
			t.Fatal(err)
		}
		curG, err := report.ParseBench(cb)
		if err != nil {
			t.Fatal(err)
		}
		baseG, err := report.ParseBench(bb)
		if err != nil {
			t.Fatal(err)
		}
		reg := report.Compare(curG, baseG, report.RegressOpts{})
		if reg == nil {
			t.Fatal("no comparable experiments")
		}
		if reg.Verdict != report.Pass || reg.ExitCode() != 0 {
			t.Fatalf("identical runs produced verdict %s", reg.Verdict)
		}
		buf, err := reg.VerdictJSON()
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	if !bytes.Equal(verdict(grids1, grids8), verdict(grids8, grids1)) {
		t.Error("verdict JSON differs by comparison direction despite identical runs")
	}
}

// TestFormatRollupByteIdenticalAcrossParallel pins the terminal metric
// renders: the cycle-account rollup and the merged counter table are
// byte-identical at -parallel 1 and 8.
func TestFormatRollupByteIdenticalAcrossParallel(t *testing.T) {
	render := func(parallel int) (rollup, table string) {
		g, err := Run(ExperimentSpec{
			Name:     "table3",
			Opts:     ExpOpts{Ops: 300, Scale: 1, Seed: 7},
			Parallel: parallel,
			Obs:      obs.Config{Metrics: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return obs.FormatRollup(g.Obs.Totals, "sim/cycles"), obs.FormatMetrics(g.Obs.Totals)
	}
	r1, m1 := render(1)
	r8, m8 := render(8)
	if r1 != r8 {
		t.Error("FormatRollup differs between -parallel 1 and 8")
	}
	if m1 != m8 {
		t.Error("FormatMetrics differs between -parallel 1 and 8")
	}
	if len(r1) == 0 || len(m1) == 0 {
		t.Fatal("empty rollup or metrics render")
	}
}

// TestAnalysisExperimentsCarryObs: fig8 and table5 are analysis-only
// (no runner cells) but still attach an observability payload the report
// layer consumes — dead-time instants for fig8, probe windows for table5.
func TestAnalysisExperimentsCarryObs(t *testing.T) {
	for _, tc := range []struct {
		name, counter string
	}{
		{"fig8", "attack/deadtime/samples"},
		{"table5", "attack/probe/trials"},
	} {
		g, err := Run(ExperimentSpec{
			Name:     tc.name,
			Opts:     ExpOpts{Ops: 300, Seed: 7},
			Parallel: 2,
			Obs:      obs.Config{Trace: true, Metrics: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		if g.Obs == nil || len(g.Obs.Cells) != 1 {
			t.Fatalf("%s: obs payload = %+v, want one analysis cell", tc.name, g.Obs)
		}
		c := g.Obs.Cells[0]
		if c.Metrics.Get(tc.counter) == 0 {
			t.Errorf("%s: counter %s missing", tc.name, tc.counter)
		}
		if len(c.Events) == 0 {
			t.Errorf("%s: no trace events attached", tc.name)
		}
		e := g.ReportExperiment()
		if e == nil || len(e.Cells) != 1 {
			t.Fatalf("%s: ReportExperiment = %+v", tc.name, e)
		}
	}
}

// TestReportExperimentNilWithoutObs: grids from uninstrumented runs are
// skipped by ReportInput.
func TestReportExperimentNilWithoutObs(t *testing.T) {
	g, err := Run(ExperimentSpec{Name: "table5", Opts: ExpOpts{Ops: 300, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if e := g.ReportExperiment(); e != nil {
		t.Fatalf("uninstrumented grid produced %+v", e)
	}
	in := ReportInput("t", []*Grid{g})
	if len(in.Experiments) != 0 {
		t.Fatalf("ReportInput kept %d experiments, want 0", len(in.Experiments))
	}
}

// TestBarZeroBaselineMarshals pins the NaN guard in bar(): a zero-cycle
// baseline cell must yield a marshalable all-zero bar, not the NaN that
// encoding/json rejects.
func TestBarZeroBaselineMarshals(t *testing.T) {
	b := bar("prog", "TT", core.Result{Cycles: 100}, core.Result{})
	if b.Total != 0 || b.Attach != 0 {
		t.Fatalf("zero-baseline bar = %+v, want all zero", b)
	}
	if _, err := json.Marshal(Grid{Name: "fig9", Bars: []OverheadBar{b}}); err != nil {
		t.Fatalf("zero-baseline bar failed to marshal: %v", err)
	}
}
