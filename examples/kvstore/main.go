// kvstore: a crash-consistent persistent key-value store protected by
// TERP. It writes entries under undo-log transactions, crashes the
// machine mid-transaction, reboots, recovers, and shows that committed
// data survived while the torn transaction rolled back.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	terp "repro"
)

// The store: a fixed-size open-addressing hash table of (key, value)
// word pairs inside one PMO, with the undo log's OID stored as the root.
const slots = 1 << 10

func slotOID(p *terp.PMO, table terp.OID, i uint64) terp.OID {
	// Each slot is 16 bytes: [key | value].
	return terp.OID(uint64(table) + (i%slots)*16)
}

func hash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	return k ^ k>>33
}

func main() {
	sys, err := terp.NewSystem(terp.Options{Scheme: terp.TT})
	if err != nil {
		log.Fatal(err)
	}
	p, err := sys.Create("kvstore", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Attach(p, terp.ReadWrite); err != nil {
		log.Fatal(err)
	}
	table, err := p.Alloc(slots * 16)
	if err != nil {
		log.Fatal(err)
	}
	logHandle, logOID, err := sys.NewTxn(p, 64)
	if err != nil {
		log.Fatal(err)
	}
	// Remember where everything lives across reboots: root points to a
	// small directory [table | log].
	dir, _ := p.Alloc(16)
	sys.Store(dir, uint64(table))
	sys.Store(terp.OID(uint64(dir)+8), uint64(logOID))
	p.SetRoot(dir)

	put := func(key, val uint64) error {
		i := hash(key)
		for ; ; i++ {
			s := slotOID(p, table, i)
			k, err := sys.Load(s)
			if err != nil {
				return err
			}
			if k == 0 || k == key {
				if err := logHandle.Begin(); err != nil {
					return err
				}
				if err := logHandle.Write(s, key); err != nil {
					return err
				}
				if err := logHandle.Write(terp.OID(uint64(s)+8), val); err != nil {
					return err
				}
				return logHandle.Commit()
			}
		}
	}

	// Commit some entries.
	for k := uint64(1); k <= 10; k++ {
		if err := put(k, k*100); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("committed 10 entries")

	// Start one more transaction and crash before commit.
	logHandle.Begin()
	logHandle.Write(slotOID(p, table, hash(99)), 99)
	fmt.Println("started a transaction for key 99... and the machine crashes")

	sys2, err := sys.Reboot()
	if err != nil {
		log.Fatal(err)
	}
	p2, err := sys2.Open("kvstore")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys2.Attach(p2, terp.ReadWrite); err != nil {
		log.Fatal(err)
	}
	dir2 := p2.Root()
	tableRaw, _ := sys2.Load(dir2)
	logRaw, _ := sys2.Load(terp.OID(uint64(dir2) + 8))
	table2 := terp.OID(tableRaw)

	log2, err := sys2.OpenTxn(p2, terp.OID(logRaw), 64)
	if err != nil {
		log.Fatal(err)
	}
	undone, err := log2.Recover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reboot: recovery rolled back %d torn write(s)\n", undone)

	get := func(key uint64) (uint64, bool) {
		for i := hash(key); ; i++ {
			s := slotOID(p2, table2, i)
			k, err := sys2.Load(s)
			if err != nil || k == 0 {
				return 0, false
			}
			if k == key {
				v, _ := sys2.Load(terp.OID(uint64(s) + 8))
				return v, true
			}
		}
	}
	for k := uint64(1); k <= 10; k++ {
		v, ok := get(k)
		if !ok || v != k*100 {
			log.Fatalf("lost committed key %d (got %d, %v)", k, v, ok)
		}
	}
	fmt.Println("all 10 committed entries intact")
	if _, ok := get(99); ok {
		log.Fatal("torn key 99 survived!")
	}
	fmt.Println("torn key 99 correctly absent")

	st := sys2.Stats()
	fmt.Printf("\nexposure after recovery run: %s\n", st.Exposure)
}
