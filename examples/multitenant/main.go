// multitenant: the namespace-permission layer (the upper levels of the
// TERP poset) working together with the temporal protection. Two tenants
// share one machine: alice owns a private ledger and publishes a
// world-readable price feed; bob can read the feed but can neither write
// it nor see the ledger — and even where access is granted, TERP bounds
// the exposure windows.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	terp "repro"
	"repro/internal/pmo"
)

func main() {
	sys, err := terp.NewSystem(terp.Options{Scheme: terp.TT})
	if err != nil {
		log.Fatal(err)
	}

	// Alice provisions her PMOs.
	ledger, err := sys.CreateAs("alice", "alice.ledger", 1<<20,
		pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		log.Fatal(err)
	}
	feed, err := sys.CreateAs("alice", "alice.feed", 1<<20,
		pmo.ModeRead|pmo.ModeWrite|pmo.ModeOtherRead)
	if err != nil {
		log.Fatal(err)
	}

	// Alice writes both under temporal protection.
	sys.SetUser("alice")
	must(sys.Attach(ledger, terp.ReadWrite))
	balance, _ := ledger.Alloc(8)
	must(sys.Store(balance, 1_000_000))
	must(sys.Detach(ledger))

	must(sys.Attach(feed, terp.ReadWrite))
	price, _ := feed.Alloc(8)
	feed.SetRoot(price)
	must(sys.Store(price, 420))
	must(sys.Detach(feed))
	fmt.Println("alice: wrote ledger and published feed")

	// Bob reads the feed.
	sys.SetUser("bob")
	bobFeed, err := sys.OpenAs("bob", "alice.feed")
	if err != nil {
		log.Fatal(err)
	}
	must(sys.Attach(bobFeed, terp.Read))
	v, err := sys.Load(bobFeed.Root())
	if err != nil {
		log.Fatal(err)
	}
	must(sys.Detach(bobFeed))
	fmt.Printf("bob: read price %d from alice's feed\n", v)

	// Bob cannot write the feed...
	if err := sys.Attach(bobFeed, terp.ReadWrite); err != nil {
		fmt.Printf("bob: write attach denied as expected: %v\n", err)
	}
	// ...and cannot even open the ledger.
	if _, err := sys.OpenAs("bob", "alice.ledger"); err != nil {
		fmt.Printf("bob: ledger open denied as expected: %v\n", err)
	}
	// Even with a raw attach attempt on the handle, the namespace layer
	// refuses before any window opens.
	if err := sys.Attach(ledger, terp.Read); err != nil {
		fmt.Printf("bob: ledger attach denied as expected: %v\n", err)
	}

	// Meanwhile the temporal layer kept every granted window short.
	st := sys.Stats()
	fmt.Printf("\nexposure: %s\n", st.Exposure)
	fmt.Printf("faults recorded: %d\n", st.Counts.Faults)

	// Alice retires the ledger: contents are shredded, the name is freed.
	sys.SetUser("alice")
	if err := sys.Destroy("alice", "alice.ledger"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice: ledger destroyed (contents shredded)")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
