// attacklab: runs the paper's security analyses — the data-only attack
// case study of Figure 12 against each protection scheme, the Table V
// probe model, and a Monte-Carlo validation of the randomization entropy.
//
//	go run ./examples/attacklab
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/params"
)

func main() {
	fmt.Println("=== Data-only attack (Figure 12 case study) ===")
	fmt.Println("\nGadget in request-parsing code (outside the PM section):")
	runDOP(attack.DOPOpts{Nodes: 12, Rounds: 500, Seed: 1, GadgetInParse: true})
	fmt.Println("\nGadget inside the PM update section:")
	runDOP(attack.DOPOpts{Nodes: 12, Rounds: 500, Seed: 1, GadgetInParse: false})

	fmt.Println("\n=== Probe-attack success probability (Table V) ===")
	for _, x := range attack.AttackTimes() {
		merr, terp := attack.TableVRow(x, attack.DefaultTERPAccessFraction)
		fmt.Printf("  attack time %.1fus: MERR %.5f%%  TERP %.5f%%  (%.0fx reduction)\n",
			x, merr, terp, merr/terp)
	}

	fmt.Println("\n=== Monte-Carlo randomization check ===")
	probes := 8192
	got, err := attack.MonteCarloProbe(2000, probes, 42)
	if err != nil {
		log.Fatal(err)
	}
	want := float64(probes) / float64(1<<17)
	fmt.Printf("  %d probes/window: measured hit rate %.4f vs analytic %.4f\n",
		probes, got, want)
}

func runDOP(opt attack.DOPOpts) {
	fmt.Printf("  %-12s %-10s %-8s %-10s %-12s\n",
		"scheme", "corrupted", "faults", "stale-addr", "disclosures")
	for _, s := range []params.Scheme{params.Unprotected, params.MM, params.TT} {
		res, err := attack.RunDOP(params.NewConfig(s, 40), opt)
		if err != nil {
			log.Fatal(err)
		}
		status := ""
		if res.Succeeded(opt.Nodes) {
			status = "  <- attacker reached its goal"
		}
		fmt.Printf("  %-12s %-10d %-8d %-10d %-12d%s\n",
			res.Scheme, res.Corrupted, res.Faults, res.StaleAddr, res.Disclosures, status)
	}
}
