// Quickstart: create a persistent memory object, protect it with TERP,
// store and load data, and inspect the exposure measurements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	terp "repro"
)

func main() {
	// A System is one simulated protected process plus its NVM device.
	// TT is the full TERP design: EW-conscious semantics, thread
	// exposure windows, and hardware window combining.
	sys, err := terp.NewSystem(terp.Options{Scheme: terp.TT, EWMicros: 40})
	if err != nil {
		log.Fatal(err)
	}

	// Create a PMO and attach it. Under TT this executes a conditional
	// attach (CONDAT): the first one really maps the PMO at a random
	// address; later ones lower to thread permission grants.
	p, err := sys.Create("quickstart.data", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Attach(p, terp.ReadWrite); err != nil {
		log.Fatal(err)
	}

	// Allocate persistent objects and store data. OIDs are relocatable
	// (pool, offset) pairs, so randomization never invalidates them.
	greeting, err := p.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.StoreBytes(greeting, []byte("hello, persistent world")); err != nil {
		log.Fatal(err)
	}
	counter, err := p.Alloc(8)
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(1); i <= 5; i++ {
		if err := sys.Store(counter, i); err != nil {
			log.Fatal(err)
		}
		sys.Compute(5000) // some application work
	}
	p.SetRoot(greeting) // so a future run can find the data

	// Detach. Under TT this is a conditional detach: the window is
	// delayed (DD bit) so a quick re-attach would be silent, and the
	// hardware sweep detaches for real once the 40us EW expires.
	if err := sys.Detach(p); err != nil {
		log.Fatal(err)
	}

	// Accessing the PMO now faults: the thread's exposure window is
	// closed even though the mapping may still linger briefly.
	if _, err := sys.Load(counter); err != nil {
		fmt.Printf("access after detach correctly fails: %v\n", err)
	}

	st := sys.Stats()
	fmt.Printf("\nsimulated time: %.1f us\n", sys.NowMicros())
	fmt.Printf("exposure:       %s\n", st.Exposure)
	fmt.Printf("conditional ops: %d (%.0f%% silent)\n",
		st.Counts.CondOps, st.Counts.SilentPercent())
	fmt.Printf("attach/detach syscalls: %d/%d\n",
		st.Counts.AttachSyscalls, st.Counts.DetachSyscalls)
}
