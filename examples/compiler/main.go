// compiler: the full TERP compiler pipeline end to end — parse a TPL
// program, run the region-based attach/detach insertion (Algorithm 1),
// show what was inserted, and execute the instrumented program on the
// protected runtime.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/lang"
	"repro/internal/nvm"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/terpc"
)

// A small image-smoothing program: one persistent grid (its own PMO), a
// short preparation loop that fits in a single window, and a long main
// loop that needs per-iteration windows.
const source = `
pmo grid[2048];

func prepare() {
  var i;
  for (i = 0; i < 2048; i = i + 1) {
    grid[i] = (i * 31) % 255;
  }
  return 0;
}

func smooth(rounds) {
  var r; var i; var acc;
  for (r = 0; r < rounds; r = r + 1) {
    for (i = 1; i < 2047; i = i + 1) {
      acc = grid[i - 1] + grid[i] + grid[i + 1];
      grid[i] = acc / 3;
      compute(40);
    }
    // non-persistent work between rounds
    compute(200000);
  }
  return grid[1024];
}

func main() {
  prepare();
  return smooth(4);
}
`

func main() {
	prog, err := lang.Compile(source)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := terpc.Insert(prog, terpc.Options{
		EWThreshold:  params.Micros(40),
		TEWThreshold: params.Micros(2),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== insertion report ===")
	for name, let := range rep.FuncLET {
		fmt.Printf("  %-10s estimated LET %.2f us\n", name, params.ToMicros(let))
	}
	for _, fr := range rep.Funcs {
		fmt.Printf("  %-10s %d graph(s), %d attach + %d detach inserted\n",
			fr.Func, fr.Graphs, fr.Attaches, fr.Detaches)
	}

	fmt.Println("\n=== instrumented IR for smooth ===")
	fmt.Print(prog.Funcs["smooth"].String())

	// Execute on the protected runtime under TT.
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
	rt := core.NewRuntime(params.NewConfig(params.TT, 40), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	m, err := interp.New(prog, ctx)
	if err != nil {
		log.Fatal(err)
	}
	v, err := m.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	res := rt.Finish(ctx.Now())

	fmt.Println("\n=== run ===")
	fmt.Printf("  result grid[1024] = %d\n", v)
	fmt.Printf("  simulated time    = %.2f ms\n", params.ToMicros(res.Cycles)/1000)
	fmt.Printf("  exposure          = %s\n", res.Exposure)
	fmt.Printf("  cond ops          = %d (%.1f%% silent)\n",
		res.Counts.CondOps, res.Counts.SilentPercent())
	fmt.Printf("  real syscalls     = %d attach, %d detach\n",
		res.Counts.AttachSyscalls, res.Counts.DetachSyscalls)
}
