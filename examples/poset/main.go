// poset: the formal TERP framework of Section III made executable — it
// builds the Figure 2 poset of protection mechanisms, verifies the
// partial-order laws, prints the Hasse diagram, and demonstrates the
// "implicit lowering" the EW-conscious semantics performs, followed by
// the Section IV semantics-space exploration.
//
//	go run ./examples/poset
package main

import (
	"fmt"

	terp "repro"
	"repro/internal/semantics"
)

func main() {
	perm := semantics.NewPermissionSet([]string{"pmo1"}, semantics.Read, semantics.Write)
	mk := func(name string, overhead uint64, entities ...string) *semantics.Mechanism {
		return &semantics.Mechanism{
			Name:           name,
			Group:          semantics.NewGroup(name, perm, entities...),
			OverheadCycles: overhead,
		}
	}
	// The Figure 2 mechanisms: thread permission controls at the bottom
	// (cheap, narrow), process attach/detach in the middle, user- and
	// group-level permissions on top (costly, broad).
	t1 := mk("thread-perm{t1}", 27, "t1")
	t2 := mk("thread-perm{t2}", 27, "t2")
	t3 := mk("thread-perm{t3}", 27, "t3")
	p1 := mk("attach-detach{t1,t2}", 7480, "t1", "t2")
	p2 := mk("attach-detach{t2,t3}", 7480, "t2", "t3")
	uA := mk("user-perm{A}", 100000, "t1", "t2", "t3")
	uB := mk("user-perm{B}", 100000, "t2", "t3", "t4")
	g := mk("group-perm{G1,G2}", 1000000, "t1", "t2", "t3", "t4")

	poset := semantics.NewPoset(t1, t2, t3, p1, p2, uA, uB, g)
	if err := poset.Verify(); err != nil {
		fmt.Println("poset laws violated:", err)
		return
	}
	fmt.Println("poset laws verified: reflexive, antisymmetric, transitive")

	fmt.Println("\nHasse diagram (covering relations, weaker -> stronger):")
	for _, e := range poset.HasseEdges() {
		lo, hi := poset.At(e[0]), poset.At(e[1])
		fmt.Printf("  %-22s -> %-22s (cost %d -> %d cycles)\n",
			lo.Name, hi.Name, lo.OverheadCycles, hi.OverheadCycles)
	}

	fmt.Println("\nminimal elements (finest, cheapest):")
	for _, i := range poset.Minimal() {
		fmt.Printf("  %s\n", poset.At(i).Name)
	}
	fmt.Println("maximal elements (strongest, costliest):")
	for _, i := range poset.Maximal() {
		fmt.Printf("  %s\n", poset.At(i).Name)
	}

	fmt.Println("\nimplicit lowering (the EW-conscious move):")
	for _, m := range []*semantics.Mechanism{g, uA, p1} {
		if low := poset.Lower(m); low != nil {
			fmt.Printf("  %-22s lowers to %-22s (saves %d cycles per op)\n",
				m.Name, low.Name, m.OverheadCycles-low.OverheadCycles)
		}
	}

	fmt.Println()
	fmt.Println(terp.FormatSemanticsStudy(terp.SemanticsStudy()))
}
