package terp

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestRunParallelGridIsByteIdenticalToSerial is the engine's determinism
// contract: the structured Grid of a parallel run marshals to exactly
// the bytes of a serial run, per experiment and per seed.
func TestRunParallelGridIsByteIdenticalToSerial(t *testing.T) {
	for _, name := range []string{"table3", "table4"} {
		for _, seed := range []int64{1, 7} {
			opts := ExpOpts{Ops: 300, Scale: 1, Seed: seed}
			serial, err := Run(ExperimentSpec{Name: name, Opts: opts, Parallel: 1})
			if err != nil {
				t.Fatalf("%s seed %d serial: %v", name, seed, err)
			}
			par, err := Run(ExperimentSpec{Name: name, Opts: opts, Parallel: 4})
			if err != nil {
				t.Fatalf("%s seed %d parallel: %v", name, seed, err)
			}
			sj, err := serial.JSON()
			if err != nil {
				t.Fatal(err)
			}
			pj, err := par.JSON()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sj, pj) {
				t.Fatalf("%s seed %d: parallel grid differs from serial:\n--- serial\n%s\n--- parallel\n%s",
					name, seed, sj, pj)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	_, err := Run(ExperimentSpec{Name: "table99"})
	if err == nil || !strings.Contains(err.Error(), "table99") {
		t.Fatalf("err = %v", err)
	}
}

func TestExperimentsListsEveryRegisteredName(t *testing.T) {
	names := Experiments()
	want := []string{"fig8", "table3", "fig9", "table4", "fig10", "fig11",
		"table5", "semantics", "ewsweep", "table6", "crash", "litmus"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestRunProgressCoversEveryCell(t *testing.T) {
	var mu sync.Mutex
	var last, total int
	calls := 0
	_, err := Run(ExperimentSpec{
		Name: "table3",
		Opts: ExpOpts{Ops: 200},
		Progress: func(done, tot int, cell string) {
			mu.Lock()
			defer mu.Unlock()
			calls++
			last, total = done, tot
			if cell == "" {
				t.Error("empty cell label")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// table3 = 6 workloads x 2 schemes.
	if calls != 12 || last != 12 || total != 12 {
		t.Fatalf("calls/last/total = %d/%d/%d, want 12/12/12", calls, last, total)
	}
}

func TestRunGridFormatMatchesWrapperFormat(t *testing.T) {
	o := ExpOpts{Ops: 200}
	g, err := Run(ExperimentSpec{Name: "table3", Opts: o})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table3(o)
	if err != nil {
		t.Fatal(err)
	}
	if g.Format() != FormatTable3(rows) {
		t.Fatal("Grid.Format differs from the wrapper's rendering")
	}
}

// --- Options.Validate -------------------------------------------------------

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{EWMicros: -1},
		{EWMicros: nan()},
		{TEWMicros: -2},
		{TEWMicros: nan()},
		{TEWMicros: 80},               // above the 40us EW default
		{EWMicros: 10, TEWMicros: 20}, // TEW above explicit EW
		{NVMBytes: 1 << 10},           // undersized device
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("bad[%d] (%+v): Validate accepted", i, o)
		}
		if _, err := NewSystem(o); err == nil {
			t.Errorf("bad[%d] (%+v): NewSystem accepted", i, o)
		}
	}
	good := []Options{
		{},
		{Scheme: MM},
		{EWMicros: 80, TEWMicros: 4},
		{NVMBytes: MinNVMBytes},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestParallelQuantumOptionAndJoinedErrors(t *testing.T) {
	// A custom quantum is honored (the run still completes and advances
	// time deterministically).
	sys, err := NewSystem(Options{Scheme: TT, QuantumCycles: 50})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := sys.Create("q", 1<<20)
	o, _ := p.Alloc(8)
	end, err := sys.Parallel(2, func(tid int, ctx *core.ThreadCtx) error {
		if err := ctx.Attach(p, ReadWrite); err != nil {
			return err
		}
		if err := ctx.Store(o, uint64(tid)); err != nil {
			return err
		}
		return ctx.Detach(p)
	})
	if err != nil || end == 0 {
		t.Fatalf("end=%d err=%v", end, err)
	}

	// Every failing thread is reported, not just the first.
	sys2, _ := NewSystem(Options{Scheme: TT})
	_, err = sys2.Parallel(3, func(tid int, ctx *core.ThreadCtx) error {
		if tid == 0 {
			return nil
		}
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("want error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "thread 1") || !strings.Contains(msg, "thread 2") {
		t.Fatalf("joined error lost a thread: %v", msg)
	}
}

// TestCrashMatrixRecoversAndIsDeterministic runs the crash-consistency
// experiment at test scale and checks its contract: every cell injects
// points, every image recovers, and the parallel grid marshals to
// exactly the serial bytes.
func TestCrashMatrixRecoversAndIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("whisper setups are heavy; covered by the crash package's short tests")
	}
	opts := ExpOpts{Ops: 300, Seed: 3} // crashOps clamps this to its floor
	serial, err := Run(ExperimentSpec{Name: "crash", Opts: opts, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ExperimentSpec{Name: "crash", Opts: opts, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := serial.JSON()
	pj, _ := par.JSON()
	if !bytes.Equal(sj, pj) {
		t.Fatalf("parallel crash grid differs from serial:\n--- serial\n%s\n--- parallel\n%s", sj, pj)
	}
	if len(serial.Crash) != 14 { // (txnpairs + 6 WHISPER) x 2 policies
		t.Fatalf("rows = %d, want 14", len(serial.Crash))
	}
	for _, r := range serial.Crash {
		if r.Points == 0 {
			t.Errorf("%s/%s: no crash points injected", r.Prog, r.Policy)
		}
		if r.Failures != 0 {
			t.Errorf("%s/%s: %d of %d images failed recovery", r.Prog, r.Policy, r.Failures, r.Points)
		}
	}
	if !strings.Contains(serial.Format(), "Crash matrix") {
		t.Fatal("Format did not render the crash table")
	}
}

// TestLitmusMatrixIsCleanAndDeterministic runs the litmus experiment at
// test scale and checks its contract: exhaustive enumeration finds
// states in every suite, the oracle diff reports zero violations, and
// the parallel grid marshals to exactly the serial bytes.
func TestLitmusMatrixIsCleanAndDeterministic(t *testing.T) {
	opts := ExpOpts{Ops: 300, Seed: 5} // litmusProgs clamps this to its floor
	serial, err := Run(ExperimentSpec{Name: "litmus", Opts: opts, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ExperimentSpec{Name: "litmus", Opts: opts, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := serial.JSON()
	pj, _ := par.JSON()
	if !bytes.Equal(sj, pj) {
		t.Fatalf("parallel litmus grid differs from serial:\n--- serial\n%s\n--- parallel\n%s", sj, pj)
	}
	if len(serial.Litmus) != 1+litmusGenCells {
		t.Fatalf("rows = %d, want %d", len(serial.Litmus), 1+litmusGenCells)
	}
	for _, r := range serial.Litmus {
		if r.Programs == 0 || r.ModelStates == 0 {
			t.Errorf("%s: empty suite (%d programs, %d states)", r.Suite, r.Programs, r.ModelStates)
		}
		if r.ModelOnly != 0 {
			t.Errorf("%s: %d spec-forbidden model states", r.Suite, r.ModelOnly)
		}
		if r.Violations != 0 {
			t.Errorf("%s: %d non-allowlisted divergences", r.Suite, r.Violations)
		}
	}
	if !strings.Contains(serial.Format(), "Litmus matrix") {
		t.Fatal("Format did not render the litmus table")
	}
}
