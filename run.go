package terp

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
)

// ExperimentSpec selects and scales one experiment for Run. The zero
// Opts reproduce the paper's settings; Parallel <= 0 uses every core.
type ExperimentSpec struct {
	// Name is the experiment: one of Experiments().
	Name string
	// Opts scales the runs (ops, kernel scale, seed).
	Opts ExpOpts
	// Parallel is the worker-pool size for the experiment's cells:
	// 1 forces a serial run, 0 (or negative) uses GOMAXPROCS. Results
	// are bit-identical at every worker count.
	Parallel int
	// EWMicros lists the sweep points for the "ewsweep" experiment;
	// nil selects the default 40/80/160/320 us. Other experiments
	// ignore it.
	EWMicros []float64
	// Progress, when set, receives live cell-completion events: done
	// cells out of total, plus the finished cell's display name.
	Progress func(done, total int, cell string)
	// Obs selects per-cell tracing/metrics collection; the zero value
	// (everything off) leaves the Grid byte-identical to an
	// uninstrumented build.
	Obs obs.Config
}

// Grid is one experiment's structured results. Exactly one payload field
// is populated, named after the shape of the experiment's data; the JSON
// encoding omits the rest, so a Grid marshals to a compact, stable
// document for the bench trajectory. Two runs with the same spec marshal
// to identical bytes regardless of worker count.
type Grid struct {
	// Name is the experiment that ran; Opts the effective options.
	Name string  `json:"name"`
	Opts ExpOpts `json:"opts"`

	// Whisper holds Table III rows.
	Whisper []WhisperRow `json:"whisper,omitempty"`
	// Spec holds Table IV rows.
	Spec []Table4Row `json:"spec,omitempty"`
	// Bars holds the stacked overhead bars of Figures 9-11.
	Bars []OverheadBar `json:"bars,omitempty"`
	// Attack holds Table V rows.
	Attack []Table5Row `json:"attack,omitempty"`
	// Scenarios holds the Table VI analysis.
	Scenarios *Table6Result `json:"scenarios,omitempty"`
	// DeadTime holds the Figure 8 study.
	DeadTime *Figure8Result `json:"deadTime,omitempty"`
	// Semantics holds the Section IV exploration.
	Semantics *SemanticsStudyResult `json:"semantics,omitempty"`
	// Frontier holds the EW sweep rows.
	Frontier []EWSweepRow `json:"frontier,omitempty"`
	// Crash holds the crash-consistency fault-injection matrix.
	Crash []CrashRow `json:"crash,omitempty"`

	// Obs holds per-cell metrics and trace summaries when the spec
	// enabled collection; nil (and absent from the JSON) otherwise, so
	// disabled runs marshal exactly as before.
	Obs *ObsGrid `json:"obs,omitempty"`
}

// ObsGrid is the experiment-level observability payload: one entry per
// simulated cell in enumeration order, plus the deterministic merge of
// every cell's metrics.
type ObsGrid struct {
	// Cells holds each cell's snapshot in enumeration order.
	Cells []*obs.CellObs `json:"cells"`
	// Totals merges all cell metrics (nil when metrics were off).
	Totals *obs.Snapshot `json:"totals,omitempty"`
}

// Traces returns the named per-cell event streams for the trace
// exporters (empty when tracing was off).
func (g *Grid) Traces() []obs.CellTrace {
	if g.Obs == nil {
		return nil
	}
	var out []obs.CellTrace
	for _, c := range g.Obs.Cells {
		if len(c.Events) > 0 {
			out = append(out, obs.CellTrace{Name: c.Cell, Events: c.Events})
		}
	}
	return out
}

// JSON renders the grid as indented JSON.
func (g *Grid) JSON() ([]byte, error) { return json.MarshalIndent(g, "", "  ") }

// ReportExperiment converts the grid's observability payload into the
// report layer's input — the hook `terpreport` and `terpbench -report`
// build run reports from. It returns nil when the run collected nothing.
func (g *Grid) ReportExperiment() *report.Experiment {
	if g.Obs == nil {
		return nil
	}
	e := &report.Experiment{
		Name: g.Name,
		Opts: fmt.Sprintf("ops=%d scale=%d seed=%d", g.Opts.Ops, g.Opts.Scale, g.Opts.Seed),
	}
	e.Totals = g.Obs.Totals
	for _, c := range g.Obs.Cells {
		e.Cells = append(e.Cells, report.Cell{
			Name:         c.Cell,
			Metrics:      c.Metrics,
			Events:       c.Events,
			TraceEvents:  c.TraceEvents,
			TraceDropped: c.TraceDropped,
		})
	}
	return e
}

// ReportInput assembles the report input for a set of finished grids
// (grids without observability payloads are skipped).
func ReportInput(title string, grids []*Grid) report.Input {
	in := report.Input{Title: title}
	for _, g := range grids {
		if e := g.ReportExperiment(); e != nil {
			in.Experiments = append(in.Experiments, *e)
		}
	}
	return in
}

// Format renders the grid in the experiment's table or figure layout.
func (g *Grid) Format() string {
	e, ok := findExperiment(g.Name)
	if !ok {
		return fmt.Sprintf("unknown experiment %q", g.Name)
	}
	return e.format(g)
}

// experiment wires one name to its cell enumeration, result assembly and
// text rendering. Experiments that are pure analysis (no simulation
// cells) leave cells nil.
type experiment struct {
	name     string
	cells    func(spec ExperimentSpec) []runner.Cell
	assemble func(spec ExperimentSpec, res []runner.CellResult, g *Grid) error
	format   func(g *Grid) string
}

// experimentTable lists every experiment in the order `-exp all` runs
// them.
var experimentTable = []experiment{
	{
		name:     "fig8",
		assemble: assembleFigure8,
		format:   func(g *Grid) string { return FormatFigure8(*g.DeadTime) },
	},
	{
		name:     "table3",
		cells:    func(s ExperimentSpec) []runner.Cell { return table3Cells("table3", s.Opts) },
		assemble: assembleTable3,
		format:   func(g *Grid) string { return FormatTable3(g.Whisper) },
	},
	{
		name:     "fig9",
		cells:    func(s ExperimentSpec) []runner.Cell { return figure9Cells(s.Opts) },
		assemble: assembleBars,
		format: func(g *Grid) string {
			return FormatOverheads("Figure 9: WHISPER execution-time overheads", g.Bars)
		},
	},
	{
		name:     "table4",
		cells:    func(s ExperimentSpec) []runner.Cell { return table4Cells("table4", s.Opts) },
		assemble: assembleTable4,
		format:   func(g *Grid) string { return FormatTable4(g.Spec) },
	},
	{
		name:     "fig10",
		cells:    func(s ExperimentSpec) []runner.Cell { return figure10Cells(s.Opts) },
		assemble: assembleBars,
		format: func(g *Grid) string {
			return FormatOverheads("Figure 10: SPEC single-thread overheads", g.Bars)
		},
	},
	{
		name:     "fig11",
		cells:    func(s ExperimentSpec) []runner.Cell { return figure11Cells(s.Opts) },
		assemble: assembleBars,
		format: func(g *Grid) string {
			return FormatOverheads("Figure 11: SPEC 4-thread ablation", g.Bars)
		},
	},
	{
		name:     "table5",
		assemble: assembleTable5,
		format:   func(g *Grid) string { return FormatTable5(g.Attack) },
	},
	{
		name:     "semantics",
		assemble: assembleSemantics,
		format:   func(g *Grid) string { return FormatSemanticsStudy(*g.Semantics) },
	},
	{
		name:     "ewsweep",
		cells:    func(s ExperimentSpec) []runner.Cell { return ewSweepCells(s.Opts, s.sweepPoints()) },
		assemble: assembleEWSweep,
		format:   func(g *Grid) string { return FormatEWSweep(g.Frontier) },
	},
	{
		name:     "table6",
		cells:    func(s ExperimentSpec) []runner.Cell { return table6Cells(s.Opts) },
		assemble: assembleTable6,
		format:   func(g *Grid) string { return FormatTable6(*g.Scenarios) },
	},
	{
		name:     "crash",
		cells:    func(s ExperimentSpec) []runner.Cell { return crashCells("crash", s.Opts) },
		assemble: assembleCrash,
		format:   func(g *Grid) string { return FormatCrash(g.Crash) },
	},
}

// sweepPoints resolves the ewsweep sweep list.
func (s ExperimentSpec) sweepPoints() []float64 {
	if len(s.EWMicros) != 0 {
		return s.EWMicros
	}
	return []float64{40, 80, 160, 320}
}

func findExperiment(name string) (experiment, bool) {
	for _, e := range experimentTable {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

// Experiments returns every experiment name in `-exp all` order.
func Experiments() []string {
	names := make([]string, len(experimentTable))
	for i, e := range experimentTable {
		names[i] = e.name
	}
	return names
}

// Run executes one experiment: it enumerates the experiment's cells,
// executes them across the worker pool (see ExperimentSpec.Parallel) and
// assembles the structured Grid. The per-experiment helpers (Table3,
// Figure9, ...) are thin wrappers over Run.
func Run(spec ExperimentSpec) (*Grid, error) {
	e, ok := findExperiment(spec.Name)
	if !ok {
		return nil, fmt.Errorf("terp: unknown experiment %q (valid: %s)",
			spec.Name, strings.Join(Experiments(), ", "))
	}
	spec.Opts = spec.Opts.withDefaults()

	var res []runner.CellResult
	if e.cells != nil {
		var progress runner.Progress
		if spec.Progress != nil {
			p := spec.Progress
			progress = func(done, total int, last runner.Cell) { p(done, total, last.Name()) }
		}
		var err error
		res, err = runner.Execute(e.cells(spec), runner.Options{
			Workers:  spec.Parallel,
			Progress: progress,
			Obs:      spec.Obs,
		})
		if err != nil {
			return nil, err
		}
	}

	g := &Grid{Name: e.name, Opts: spec.Opts}
	if err := e.assemble(spec, res, g); err != nil {
		return nil, err
	}
	if spec.Obs.Enabled() && len(res) > 0 {
		og := &ObsGrid{}
		for _, r := range res {
			if r.Obs != nil {
				og.Cells = append(og.Cells, r.Obs)
			}
		}
		if spec.Obs.Metrics {
			og.Totals = obs.NewSnapshot()
			for _, c := range og.Cells {
				og.Totals.Merge(c.Metrics)
			}
		}
		if len(og.Cells) > 0 {
			g.Obs = og
		}
	}
	return g, nil
}
