package terp

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
)

// ExperimentSpec selects and scales one experiment for Run. The zero
// Opts reproduce the paper's settings; Parallel <= 0 uses every core.
//
// The spec doubles as the versioned wire format shared by terpbench
// (-spec), terpd and its clients: ParseSpec decodes and validates the
// JSON form, and every serializable field carries a lowerCamel JSON
// name. Progress is process-local and never crosses the wire.
type ExperimentSpec struct {
	// Version is the wire-format version (see WireVersion). The zero
	// value means "current" so in-process literals need not set it;
	// ParseSpec rejects anything else it does not speak.
	Version int `json:"version,omitempty"`
	// Name is the experiment: one of Experiments().
	Name string `json:"name"`
	// Opts scales the runs (ops, kernel scale, seed).
	Opts ExpOpts `json:"opts"`
	// Parallel is the worker-pool size for the experiment's cells:
	// 1 forces a serial run, 0 (or negative) uses GOMAXPROCS. Results
	// are bit-identical at every worker count. RunOn ignores it (the
	// shared pool's size governs).
	Parallel int `json:"parallel,omitempty"`
	// EWMicros lists the sweep points for the "ewsweep" experiment;
	// nil selects the default 40/80/160/320 us. Other experiments
	// ignore it.
	EWMicros []float64 `json:"ewMicros,omitempty"`
	// Progress, when set, receives live cell-completion events: done
	// cells out of total, plus the finished cell's display name.
	Progress func(done, total int, cell string) `json:"-"`
	// Obs selects per-cell tracing/metrics collection; the zero value
	// (everything off) leaves the Grid byte-identical to an
	// uninstrumented build.
	Obs obs.Config `json:"obs,omitempty"`
}

// Grid is one experiment's structured results. Exactly one payload field
// is populated, named after the shape of the experiment's data; the JSON
// encoding omits the rest, so a Grid marshals to a compact, stable
// document for the bench trajectory. Two runs with the same spec marshal
// to identical bytes regardless of worker count.
type Grid struct {
	// Version is the wire-format version the grid was produced under
	// (WireVersion for grids built by this package; see ParseGrids).
	Version int `json:"version"`
	// Name is the experiment that ran; Opts the effective options.
	Name string  `json:"name"`
	Opts ExpOpts `json:"opts"`

	// Whisper holds Table III rows.
	Whisper []WhisperRow `json:"whisper,omitempty"`
	// Spec holds Table IV rows.
	Spec []Table4Row `json:"spec,omitempty"`
	// Bars holds the stacked overhead bars of Figures 9-11.
	Bars []OverheadBar `json:"bars,omitempty"`
	// Attack holds Table V rows.
	Attack []Table5Row `json:"attack,omitempty"`
	// Scenarios holds the Table VI analysis.
	Scenarios *Table6Result `json:"scenarios,omitempty"`
	// DeadTime holds the Figure 8 study.
	DeadTime *Figure8Result `json:"deadTime,omitempty"`
	// Semantics holds the Section IV exploration.
	Semantics *SemanticsStudyResult `json:"semantics,omitempty"`
	// Frontier holds the EW sweep rows.
	Frontier []EWSweepRow `json:"frontier,omitempty"`
	// Crash holds the crash-consistency fault-injection matrix.
	Crash []CrashRow `json:"crash,omitempty"`
	// Litmus holds the persistency-model litmus matrix.
	Litmus []LitmusRow `json:"litmus,omitempty"`

	// Obs holds per-cell metrics and trace summaries when the spec
	// enabled collection; nil (and absent from the JSON) otherwise, so
	// disabled runs marshal exactly as before.
	Obs *ObsGrid `json:"obs,omitempty"`
}

// ObsGrid is the experiment-level observability payload: one entry per
// simulated cell in enumeration order, plus the deterministic merge of
// every cell's metrics.
type ObsGrid struct {
	// Cells holds each cell's snapshot in enumeration order.
	Cells []*obs.CellObs `json:"cells"`
	// Totals merges all cell metrics (nil when metrics were off).
	Totals *obs.Snapshot `json:"totals,omitempty"`
}

// Traces returns the named per-cell event streams for the trace
// exporters (empty when tracing was off).
func (g *Grid) Traces() []obs.CellTrace {
	if g.Obs == nil {
		return nil
	}
	var out []obs.CellTrace
	for _, c := range g.Obs.Cells {
		if len(c.Events) > 0 {
			out = append(out, obs.CellTrace{Name: c.Cell, Events: c.Events})
		}
	}
	return out
}

// JSON renders the grid as indented JSON.
func (g *Grid) JSON() ([]byte, error) { return json.MarshalIndent(g, "", "  ") }

// ReportExperiment converts the grid's observability payload into the
// report layer's input — the hook `terpreport` and `terpbench -report`
// build run reports from. It returns nil when the run collected nothing.
func (g *Grid) ReportExperiment() *report.Experiment {
	if g.Obs == nil {
		return nil
	}
	e := &report.Experiment{
		Name: g.Name,
		Opts: fmt.Sprintf("ops=%d scale=%d seed=%d", g.Opts.Ops, g.Opts.Scale, g.Opts.Seed),
	}
	e.Totals = g.Obs.Totals
	for _, c := range g.Obs.Cells {
		e.Cells = append(e.Cells, report.Cell{
			Name:         c.Cell,
			Metrics:      c.Metrics,
			Events:       c.Events,
			TraceEvents:  c.TraceEvents,
			TraceDropped: c.TraceDropped,
		})
	}
	return e
}

// ReportInput assembles the report input for a set of finished grids
// (grids without observability payloads are skipped).
func ReportInput(title string, grids []*Grid) report.Input {
	in := report.Input{Title: title}
	for _, g := range grids {
		if e := g.ReportExperiment(); e != nil {
			in.Experiments = append(in.Experiments, *e)
		}
	}
	return in
}

// Format renders the grid in the experiment's table or figure layout.
func (g *Grid) Format() string {
	e, ok := findExperiment(g.Name)
	if !ok {
		return fmt.Sprintf("unknown experiment %q", g.Name)
	}
	return e.format(g)
}

// experiment wires one name to its cell enumeration, result assembly and
// text rendering. Experiments that are pure analysis (no simulation
// cells) leave cells nil.
type experiment struct {
	name     string
	cells    func(spec ExperimentSpec) []runner.Cell
	assemble func(spec ExperimentSpec, res []runner.CellResult, g *Grid) error
	format   func(g *Grid) string
}

// experimentTable lists every experiment in the order `-exp all` runs
// them.
var experimentTable = []experiment{
	{
		name:     "fig8",
		assemble: assembleFigure8,
		format:   func(g *Grid) string { return FormatFigure8(*g.DeadTime) },
	},
	{
		name:     "table3",
		cells:    func(s ExperimentSpec) []runner.Cell { return table3Cells("table3", s.Opts) },
		assemble: assembleTable3,
		format:   func(g *Grid) string { return FormatTable3(g.Whisper) },
	},
	{
		name:     "fig9",
		cells:    func(s ExperimentSpec) []runner.Cell { return figure9Cells(s.Opts) },
		assemble: assembleBars,
		format: func(g *Grid) string {
			return FormatOverheads("Figure 9: WHISPER execution-time overheads", g.Bars)
		},
	},
	{
		name:     "table4",
		cells:    func(s ExperimentSpec) []runner.Cell { return table4Cells("table4", s.Opts) },
		assemble: assembleTable4,
		format:   func(g *Grid) string { return FormatTable4(g.Spec) },
	},
	{
		name:     "fig10",
		cells:    func(s ExperimentSpec) []runner.Cell { return figure10Cells(s.Opts) },
		assemble: assembleBars,
		format: func(g *Grid) string {
			return FormatOverheads("Figure 10: SPEC single-thread overheads", g.Bars)
		},
	},
	{
		name:     "fig11",
		cells:    func(s ExperimentSpec) []runner.Cell { return figure11Cells(s.Opts) },
		assemble: assembleBars,
		format: func(g *Grid) string {
			return FormatOverheads("Figure 11: SPEC 4-thread ablation", g.Bars)
		},
	},
	{
		name:     "table5",
		assemble: assembleTable5,
		format:   func(g *Grid) string { return FormatTable5(g.Attack) },
	},
	{
		name:     "semantics",
		assemble: assembleSemantics,
		format:   func(g *Grid) string { return FormatSemanticsStudy(*g.Semantics) },
	},
	{
		name:     "ewsweep",
		cells:    func(s ExperimentSpec) []runner.Cell { return ewSweepCells(s.Opts, s.sweepPoints()) },
		assemble: assembleEWSweep,
		format:   func(g *Grid) string { return FormatEWSweep(g.Frontier) },
	},
	{
		name:     "table6",
		cells:    func(s ExperimentSpec) []runner.Cell { return table6Cells(s.Opts) },
		assemble: assembleTable6,
		format:   func(g *Grid) string { return FormatTable6(*g.Scenarios) },
	},
	{
		name:     "crash",
		cells:    func(s ExperimentSpec) []runner.Cell { return crashCells("crash", s.Opts) },
		assemble: assembleCrash,
		format:   func(g *Grid) string { return FormatCrash(g.Crash) },
	},
	{
		name:     "litmus",
		cells:    func(s ExperimentSpec) []runner.Cell { return litmusCells("litmus", s.Opts) },
		assemble: assembleLitmus,
		format:   func(g *Grid) string { return FormatLitmus(g.Litmus) },
	},
}

// Canonical returns the spec in canonical identity form: the wire
// version stamped, Opts defaults applied, the ewsweep sweep list
// resolved (and cleared for experiments that ignore it), and the
// scheduling-only fields (Parallel, Progress) zeroed. Two specs with
// equal Canonical forms produce byte-identical grids, which is what
// lets the run ledger key its history on a hash of this form.
func (s ExperimentSpec) Canonical() ExperimentSpec {
	s.Version = WireVersion
	s.Opts = s.Opts.withDefaults()
	if s.Name == "ewsweep" {
		s.EWMicros = s.sweepPoints()
	} else {
		s.EWMicros = nil
	}
	s.Parallel = 0
	s.Progress = nil
	return s
}

// sweepPoints resolves the ewsweep sweep list.
func (s ExperimentSpec) sweepPoints() []float64 {
	if len(s.EWMicros) != 0 {
		return s.EWMicros
	}
	return []float64{40, 80, 160, 320}
}

func findExperiment(name string) (experiment, bool) {
	for _, e := range experimentTable {
		if e.name == name {
			return e, true
		}
	}
	return experiment{}, false
}

// Experiments returns every experiment name in `-exp all` order.
func Experiments() []string {
	names := make([]string, len(experimentTable))
	for i, e := range experimentTable {
		names[i] = e.name
	}
	return names
}

// Run executes one experiment: it enumerates the experiment's cells,
// executes them across the worker pool (see ExperimentSpec.Parallel) and
// assembles the structured Grid. The per-experiment helpers (Table3,
// Figure9, ...) are thin wrappers over Run, and Run itself is a thin
// wrapper over RunContext with a background context.
func Run(spec ExperimentSpec) (*Grid, error) {
	return RunContext(context.Background(), spec)
}

// RunContext is Run with cancellation: cancelling ctx mid-grid stops
// scheduling cells, interrupts the running ones at operation
// granularity, and returns an error satisfying errors.Is(err,
// ctx.Err()). A run that completes is byte-identical to Run's.
func RunContext(ctx context.Context, spec ExperimentSpec) (*Grid, error) {
	return RunOn(ctx, nil, spec)
}

// RunOn is RunContext on a caller-owned runner.Pool: the experiment's
// cells execute on the shared persistent workers (spec.Parallel is
// ignored — the pool's size governs), interleaved round-robin with any
// other job on the pool. A nil pool falls back to an ephemeral per-call
// pool of spec.Parallel workers. Grids are byte-identical however the
// cells were scheduled, which is what lets terpd serve results
// indistinguishable from offline runs.
func RunOn(ctx context.Context, pool *runner.Pool, spec ExperimentSpec) (*Grid, error) {
	if spec.Version != 0 && spec.Version != WireVersion {
		return nil, fmt.Errorf("terp: unsupported spec version %d (this build speaks version %d)",
			spec.Version, WireVersion)
	}
	e, ok := findExperiment(spec.Name)
	if !ok {
		return nil, fmt.Errorf("terp: unknown experiment %q (valid: %s)",
			spec.Name, strings.Join(Experiments(), ", "))
	}
	spec.Opts = spec.Opts.withDefaults()

	var res []runner.CellResult
	if e.cells != nil {
		var progress runner.Progress
		if spec.Progress != nil {
			p := spec.Progress
			progress = func(done, total int, last runner.Cell) { p(done, total, last.Name()) }
		}
		opt := runner.Options{
			Workers:  spec.Parallel,
			Progress: progress,
			Obs:      spec.Obs,
		}
		var err error
		if pool != nil {
			res, err = pool.Run(ctx, e.cells(spec), opt)
		} else {
			res, err = runner.ExecuteContext(ctx, e.cells(spec), opt)
		}
		if err != nil {
			return nil, err
		}
	} else if err := ctx.Err(); err != nil {
		// Pure-analysis experiments have no cells; still honor ctx.
		return nil, err
	}

	g := &Grid{Version: WireVersion, Name: e.name, Opts: spec.Opts}
	if err := e.assemble(spec, res, g); err != nil {
		return nil, err
	}
	if spec.Obs.Enabled() && len(res) > 0 {
		og := &ObsGrid{}
		for _, r := range res {
			if r.Obs != nil {
				og.Cells = append(og.Cells, r.Obs)
			}
		}
		if spec.Obs.Metrics {
			og.Totals = obs.NewSnapshot()
			for _, c := range og.Cells {
				og.Totals.Merge(c.Metrics)
			}
		}
		if len(og.Cells) > 0 {
			g.Obs = og
		}
	}
	return g, nil
}
