package terp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runner"
)

// runGridJSON executes one experiment with the engines selected by legacy
// and returns the serialized grid.
func runGridJSON(t *testing.T, name string, parallel int, legacy bool) []byte {
	t.Helper()
	core.UseLegacyAccessPath = legacy
	runner.UseLegacyEngine = legacy
	defer func() {
		core.UseLegacyAccessPath = false
		runner.UseLegacyEngine = false
	}()
	g, err := Run(ExperimentSpec{
		Name:     name,
		Opts:     ExpOpts{Ops: 600, Seed: 7},
		Parallel: parallel,
		Obs:      obs.Config{Metrics: true},
	})
	if err != nil {
		t.Fatalf("%s (legacy=%v): %v", name, legacy, err)
	}
	buf, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestEngineEquivalence is the whole-system determinism contract of the
// hot-path engine: the optimized execution path (linked interpreter,
// translation-cached access path) must produce byte-identical result
// grids to the legacy reference path, for whisper and spec experiments,
// serial and parallel. Fresh caches per run keep the engines honest
// (runner.DefaultCache memoizes compiled programs across calls, but cells
// build everything else from scratch).
func TestEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-experiment equivalence is not a -short test")
	}
	for _, exp := range []string{"table3", "table4", "fig11"} {
		for _, parallel := range []int{1, 8} {
			ref := runGridJSON(t, exp, parallel, true)
			opt := runGridJSON(t, exp, parallel, false)
			if string(ref) != string(opt) {
				t.Errorf("%s parallel=%d: optimized grid differs from legacy reference (%d vs %d bytes)",
					exp, parallel, len(ref), len(opt))
			}
		}
	}
}
