package terp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := ExperimentSpec{
		Name:     "table3",
		Opts:     ExpOpts{Ops: 500, Scale: 2, Seed: 7},
		Parallel: 3,
		EWMicros: []float64{40, 80},
		Obs:      obs.Config{Trace: true, Metrics: true},
	}
	buf, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSpec(buf)
	if err != nil {
		t.Fatal(err)
	}
	want := spec
	want.Version = WireVersion // JSON stamps the current version
	if got.Name != want.Name || got.Opts != want.Opts || got.Parallel != want.Parallel ||
		got.Version != want.Version || got.Obs != want.Obs ||
		len(got.EWMicros) != len(want.EWMicros) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseSpecRejectsUnknownVersion(t *testing.T) {
	_, err := ParseSpec([]byte(`{"version": 99, "name": "table3"}`))
	if err == nil || !strings.Contains(err.Error(), "unsupported spec version 99") {
		t.Fatalf("err = %v, want unsupported-version error", err)
	}
}

func TestParseSpecRejectsUnknownExperiment(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name": "tableX"}`))
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "tableX"`) {
		t.Fatalf("err = %v, want unknown-experiment error", err)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name": "table3", "opz": {"ops": 10}}`))
	if err == nil {
		t.Fatal("want error for unknown field, got nil")
	}
}

func TestRunStampsGridVersion(t *testing.T) {
	g, err := Run(ExperimentSpec{Name: "table3", Opts: ExpOpts{Ops: 200}, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.Version != WireVersion {
		t.Fatalf("grid version = %d, want %d", g.Version, WireVersion)
	}
	buf, err := json.Marshal([]*Grid{g})
	if err != nil {
		t.Fatal(err)
	}
	grids, err := ParseGrids(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 1 || grids[0].Version != WireVersion {
		t.Fatalf("ParseGrids round trip lost the version: %+v", grids)
	}

	// A grid from a future schema generation is rejected loudly.
	doctored := bytes.Replace(buf, []byte(`"version":1`), []byte(`"version":42`), 1)
	if bytes.Equal(doctored, buf) {
		t.Fatal("test bug: version field not found in grid JSON")
	}
	if _, err := ParseGrids(doctored); err == nil ||
		!strings.Contains(err.Error(), "unsupported version 42") {
		t.Fatalf("ParseGrids(version 42) err = %v, want unsupported-version error", err)
	}
	single, _ := json.Marshal(g)
	single = bytes.Replace(single, []byte(`"version":1`), []byte(`"version":42`), 1)
	if _, err := ParseGrid(single); err == nil {
		t.Fatalf("ParseGrid(version 42) accepted a future grid")
	}
}

func TestRunRejectsUnknownSpecVersion(t *testing.T) {
	_, err := Run(ExperimentSpec{Version: 9, Name: "table3", Opts: ExpOpts{Ops: 100}})
	if err == nil || !strings.Contains(err.Error(), "unsupported spec version 9") {
		t.Fatalf("err = %v, want unsupported-version error", err)
	}
}

// TestRunContextCancelMidGrid: cancelling after the first completed
// cell aborts the grid with context.Canceled instead of running the
// remaining cells.
func TestRunContextCancelMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen int
	spec := ExperimentSpec{
		Name:     "table3",
		Opts:     ExpOpts{Ops: 20_000},
		Parallel: 2,
		Progress: func(done, total int, cell string) {
			seen = done
			if done == 1 {
				cancel()
			}
		},
	}
	g, err := RunContext(ctx, spec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext error = %v, want context.Canceled", err)
	}
	if g != nil {
		t.Fatal("cancelled RunContext returned a grid")
	}
	if total, _ := spec.CellCount(); seen >= total {
		t.Fatalf("all %d cells ran despite cancellation", total)
	}
}

// TestRunOnPoolByteIdentical: the same spec run offline and on a shared
// pool (the terpd path) marshals to identical bytes.
func TestRunOnPoolByteIdentical(t *testing.T) {
	spec := ExperimentSpec{
		Name: "table3",
		Opts: ExpOpts{Ops: 300},
		Obs:  obs.Config{Trace: true, Metrics: true},
	}
	off := spec
	off.Parallel = 1
	want, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}

	pool := runner.NewPool(4)
	defer pool.Close()
	got, err := RunOn(context.Background(), pool, spec)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatal("pool-run grid differs from offline grid")
	}
}
