package terp

// The versioned wire format. One JSON schema for ExperimentSpec and
// Grid is shared byte-for-byte by every surface that moves specs or
// results between processes: `terpbench -spec`/-json, `terpreport -in`,
// the terpd job API and its loadgen client. Versioning is strict — a
// document from a different schema generation is rejected with a clear
// error instead of being half-understood.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// WireVersion is the wire-format generation this build speaks. Specs
// and grids carry it in their "version" field; bump it whenever the
// JSON schema changes incompatibly (renamed fields, changed units,
// removed payloads), never for purely additive evolution.
const WireVersion = 1

// ParseSpec decodes the JSON wire form of an ExperimentSpec and
// validates it: the version must be absent (meaning current) or
// WireVersion, the experiment must exist, the scaling knobs must be
// sane, and unknown fields are rejected so schema drift surfaces as an
// error rather than as silently ignored settings.
func ParseSpec(data []byte) (ExperimentSpec, error) {
	var spec ExperimentSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return ExperimentSpec{}, fmt.Errorf("terp: parsing spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return ExperimentSpec{}, err
	}
	return spec, nil
}

// Validate reports whether the spec is runnable by this build. The
// zero Version is valid (it means "current").
func (s ExperimentSpec) Validate() error {
	if s.Version != 0 && s.Version != WireVersion {
		return fmt.Errorf("terp: unsupported spec version %d (this build speaks version %d)",
			s.Version, WireVersion)
	}
	if _, ok := findExperiment(s.Name); !ok {
		return fmt.Errorf("terp: unknown experiment %q (valid: %s)",
			s.Name, strings.Join(Experiments(), ", "))
	}
	if s.Opts.Ops < 0 {
		return fmt.Errorf("terp: negative ops %d", s.Opts.Ops)
	}
	if s.Opts.Scale < 0 {
		return fmt.Errorf("terp: negative scale %d", s.Opts.Scale)
	}
	for _, ew := range s.EWMicros {
		if math.IsNaN(ew) || math.IsInf(ew, 0) || ew <= 0 {
			return fmt.Errorf("terp: ewMicros sweep point %v is not a positive finite window", ew)
		}
	}
	return nil
}

// JSON renders the spec in wire form with the current version stamped.
func (s ExperimentSpec) JSON() ([]byte, error) {
	s.Version = WireVersion
	return json.MarshalIndent(s, "", "  ")
}

// CellCount returns the number of simulation cells the spec enumerates
// (0 for pure-analysis experiments). Schedulers use it to size queues
// and progress displays before any cell has run.
func (s ExperimentSpec) CellCount() (int, error) {
	e, ok := findExperiment(s.Name)
	if !ok {
		return 0, fmt.Errorf("terp: unknown experiment %q (valid: %s)",
			s.Name, strings.Join(Experiments(), ", "))
	}
	if e.cells == nil {
		return 0, nil
	}
	s.Opts = s.Opts.withDefaults()
	return len(e.cells(s)), nil
}

// ParseGrids parses a grid document — the `terpbench -json` array form
// that BENCH_*.json baselines, `terpreport -in` inputs and terpd
// result fetches all share — rejecting grids from an unknown wire
// version. Version 0 (absent) is accepted for documents written before
// grids were stamped.
func ParseGrids(data []byte) ([]*Grid, error) {
	var grids []*Grid
	if err := json.Unmarshal(data, &grids); err != nil {
		return nil, fmt.Errorf("terp: parsing grids: %w", err)
	}
	for i, g := range grids {
		if g == nil {
			return nil, fmt.Errorf("terp: grid %d is null", i)
		}
		if g.Version != 0 && g.Version != WireVersion {
			return nil, fmt.Errorf("terp: grid %d (%s): unsupported version %d (this build speaks version %d)",
				i, g.Name, g.Version, WireVersion)
		}
	}
	return grids, nil
}

// ParseGrid parses a single grid in wire form (a terpd result fetch).
func ParseGrid(data []byte) (*Grid, error) {
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("terp: parsing grid: %w", err)
	}
	if g.Version != 0 && g.Version != WireVersion {
		return nil, fmt.Errorf("terp: grid %s: unsupported version %d (this build speaks version %d)",
			g.Name, g.Version, WireVersion)
	}
	return &g, nil
}
