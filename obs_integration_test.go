package terp

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// obsSpec builds a small instrumented table3 spec.
func obsSpec(parallel int, cfg obs.Config) ExperimentSpec {
	return ExperimentSpec{
		Name:     "table3",
		Opts:     ExpOpts{Ops: 300, Scale: 1, Seed: 7},
		Parallel: parallel,
		Obs:      cfg,
	}
}

// TestObsOutputByteIdenticalAcrossParallel is the determinism contract:
// with tracing and metrics on, both the Grid JSON (which embeds every
// cell's metrics) and the exported Chrome trace are byte-identical at
// -parallel 1 and -parallel 8.
func TestObsOutputByteIdenticalAcrossParallel(t *testing.T) {
	cfg := obs.Config{Trace: true, Metrics: true}
	render := func(parallel int) (grid, trace []byte) {
		g, err := Run(obsSpec(parallel, cfg))
		if err != nil {
			t.Fatal(err)
		}
		grid, err = g.JSON()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := obs.WriteChromeTrace(&buf, g.Traces()); err != nil {
			t.Fatal(err)
		}
		return grid, buf.Bytes()
	}
	g1, t1 := render(1)
	g8, t8 := render(8)
	if !bytes.Equal(g1, g8) {
		t.Error("instrumented Grid JSON differs between -parallel 1 and 8")
	}
	if !bytes.Equal(t1, t8) {
		t.Error("Chrome trace differs between -parallel 1 and 8")
	}
	if len(t1) == 0 {
		t.Fatal("empty trace")
	}
}

// TestDisabledObsLeavesGridUntouched: a run with the zero obs.Config
// must marshal without any "obs" key — exactly the pre-observability
// output — and repeat-run identical.
func TestDisabledObsLeavesGridUntouched(t *testing.T) {
	g, err := Run(obsSpec(4, obs.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf, []byte(`"obs"`)) {
		t.Fatal("disabled run marshaled an obs payload")
	}
	g2, err := Run(obsSpec(1, obs.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	buf2, err := g2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, buf2) {
		t.Fatal("disabled runs are not byte-identical")
	}
}

// TestMetricsOnlyGridHasNoTraceEvents: metrics without tracing collects
// counter snapshots but no event streams.
func TestMetricsOnlyGridHasNoTraceEvents(t *testing.T) {
	g, err := Run(obsSpec(2, obs.Config{Metrics: true}))
	if err != nil {
		t.Fatal(err)
	}
	if g.Obs == nil || g.Obs.Totals == nil {
		t.Fatal("metrics run produced no totals")
	}
	if g.Obs.Totals.Get("sim/cycles/base") == 0 {
		t.Error("totals missing base cycles")
	}
	if got := g.Traces(); len(got) != 0 {
		t.Errorf("metrics-only run carried %d trace streams", len(got))
	}
	for _, c := range g.Obs.Cells {
		if c.TraceEvents != 0 {
			t.Errorf("cell %s reports %d trace events", c.Cell, c.TraceEvents)
		}
	}
}
