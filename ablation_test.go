package terp

// Ablation benchmarks for the design choices DESIGN.md calls out beyond
// the Figure 11 sweep: the compiler's conservative cost model, the
// randomization knob, and the TEW target size. Each reports the security
// and performance sides of the trade-off as benchmark metrics.

import (
	"testing"

	"repro/internal/params"
	"repro/internal/speckit"
	"repro/internal/terpc"
	"repro/internal/whisper"
)

// BenchmarkAblationCostModel varies the insertion pass's conservative
// per-memory-access estimate. A lower (more accurate) estimate grows the
// covered regions (fewer, longer windows: cheaper but more exposed); a
// higher one shrinks them.
func BenchmarkAblationCostModel(b *testing.B) {
	k, err := speckit.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, mem := range []uint64{8, 40, 200} {
			cfg := params.NewConfig(params.TT, params.DefaultEWMicros)
			opts := speckit.RunOpts{InsertOverride: &terpc.Options{
				EWThreshold:  cfg.EWTarget,
				TEWThreshold: cfg.TEWTarget,
				MemCost:      mem,
			}}
			ov, prot, _, err := speckit.Overhead(cfg, k, opts)
			if err != nil {
				b.Fatal(err)
			}
			label := map[uint64]string{8: "accurate", 40: "default", 200: "paranoid"}[mem]
			b.ReportMetric(100*ov, label+"-ov%")
			b.ReportMetric(params.ToMicros(uint64(prot.Exposure.AvgTEW)), label+"-TEW-us")
		}
	}
}

// BenchmarkAblationRandomization toggles space-layout randomization: the
// cost it adds and the re-randomizations it buys (the security side of
// Theorem 6's synergy).
func BenchmarkAblationRandomization(b *testing.B) {
	mk := func() whisper.Workload { return whisper.NewRedis() }
	for i := 0; i < b.N; i++ {
		for _, randomize := range []bool{true, false} {
			cfg := params.NewConfig(params.TT, params.DefaultEWMicros)
			cfg.Randomize = randomize
			ov, prot, _, err := whisper.Overhead(cfg, mk, whisper.RunOpts{Ops: 3000})
			if err != nil {
				b.Fatal(err)
			}
			label := "rand-on"
			if !randomize {
				label = "rand-off"
			}
			b.ReportMetric(100*ov, label+"-ov%")
			b.ReportMetric(float64(prot.Counts.Randomizations), label+"-moves")
		}
	}
}

// BenchmarkAblationTEWTarget sweeps the thread exposure window target:
// smaller TEWs mean more conditional operations (cost) and less time a
// compromised thread can touch the PMO (security).
func BenchmarkAblationTEWTarget(b *testing.B) {
	k, err := speckit.ByName("nab")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, tewUS := range []float64{0.5, 2, 8} {
			cfg := params.NewConfig(params.TT, params.DefaultEWMicros)
			cfg.TEWTarget = params.Micros(tewUS)
			ov, prot, _, err := speckit.Overhead(cfg, k, speckit.RunOpts{})
			if err != nil {
				b.Fatal(err)
			}
			label := map[float64]string{0.5: "tew0.5us", 2: "tew2us", 8: "tew8us"}[tewUS]
			b.ReportMetric(100*ov, label+"-ov%")
			b.ReportMetric(100*prot.Exposure.TER, label+"-TER%")
		}
	}
}
