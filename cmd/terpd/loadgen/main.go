// Command loadgen hammers a running terpd with concurrent tenants
// submitting mixed experiment specs, then reports throughput and
// verifies served results against an offline run:
//
//	loadgen -addr http://localhost:8321 -tenants 8 -jobs 4 -ops 500
//	loadgen -tenants 16 -jobs 2 -exp table3,fig8,table5 -verify
//
// Every tenant runs its jobs FIFO: submit (retrying with backoff on
// 429 admission rejections), then poll to completion. The summary
// reports jobs by outcome, total simulated cells, wall-clock cells/sec
// (the number that must scale with terpd -workers), the 429/5xx counts,
// and a per-request latency table (p50/p90/p99/max over the submit
// round-trips, status polls, and whole job submit→done waits). With
// -out, the same summary is written as JSON for trend tracking across
// runs. With -verify, one finished grid is fetched and byte-compared
// against `terp.Run` executed in-process with the same spec — the
// determinism contract over the wire.
//
// Exit status: 0 when every job completed and verification passed;
// 1 on any failed job, any 5xx, or a verification mismatch.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	terp "repro"
	"repro/internal/ledger"
	"repro/internal/service"
	"repro/internal/stats"
)

func main() {
	addr := flag.String("addr", "http://localhost:8321", "terpd base URL")
	tenants := flag.Int("tenants", 8, "concurrent tenants")
	jobs := flag.Int("jobs", 4, "jobs per tenant")
	exps := flag.String("exp", "table3,fig8,table5", "comma-separated experiments to mix across jobs")
	ops := flag.Int("ops", 500, "WHISPER operations per run")
	scale := flag.Int("scale", 1, "SPEC kernel scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	verify := flag.Bool("verify", false, "byte-compare one served grid against an offline in-process run")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline")
	poll := flag.Duration("poll", 25*time.Millisecond, "status poll interval")
	out := flag.String("out", "", "write the run summary (throughput + latency percentiles) as JSON")
	flag.Parse()

	names := strings.Split(*exps, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	client := &http.Client{Timeout: 30 * time.Second}
	lg := &loadgen{
		client: client, base: strings.TrimRight(*addr, "/"),
		poll: *poll, deadline: time.Now().Add(*timeout),
	}

	if err := lg.waitHealthy(10 * time.Second); err != nil {
		fatal(err)
	}

	// Build the mixed spec list: job k of tenant t runs specs[(t*jobs+k) % len].
	specs := make([]terp.ExperimentSpec, len(names))
	for i, name := range names {
		specs[i] = terp.ExperimentSpec{
			Version: terp.WireVersion,
			Name:    name,
			Opts:    terp.ExpOpts{Ops: *ops, Scale: *scale, Seed: *seed},
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	outcomes := make([][]outcome, *tenants)
	for t := 0; t < *tenants; t++ {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%02d", t)
			for k := 0; k < *jobs; k++ {
				spec := specs[(t**jobs+k)%len(specs)]
				outcomes[t] = append(outcomes[t], lg.runJob(tenant, spec))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Summarize.
	var done, failed, cells int
	var firstDone *outcome
	for t := range outcomes {
		for i := range outcomes[t] {
			o := &outcomes[t][i]
			if o.err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "loadgen: %s %s: %v\n", o.tenant, o.spec.Name, o.err)
				continue
			}
			done++
			cells += o.status.Total
			if firstDone == nil {
				firstDone = o
			}
		}
	}
	rate := float64(cells) / elapsed.Seconds()
	fmt.Printf("loadgen: %d tenants x %d jobs: %d done, %d failed in %.2fs\n",
		*tenants, *jobs, done, failed, elapsed.Seconds())
	fmt.Printf("loadgen: %d cells, %.1f cells/sec, %d admission retries (429), %d server errors (5xx)\n",
		cells, rate, lg.retries.Load(), lg.serverErrs.Load())
	lg.lat.printTable(os.Stdout)

	ok := failed == 0 && lg.serverErrs.Load() == 0
	if *out != "" {
		var jobSums []jobSummary
		for t := range outcomes {
			for i := range outcomes[t] {
				o := &outcomes[t][i]
				if o.status.ID == "" {
					continue // never accepted
				}
				jobSums = append(jobSums, jobSummary{
					Tenant: o.tenant, JobID: o.status.ID,
					Experiment: o.spec.Name,
					SpecHash:   ledger.SpecHash(o.spec),
					State:      string(o.status.State),
				})
			}
		}
		doc := summaryDoc{
			GeneratedAt: time.Now().UTC().Format(time.RFC3339),
			Addr:        *addr, Tenants: *tenants, JobsPerTenant: *jobs,
			Experiments: names, Ops: *ops, Scale: *scale, Seed: *seed,
			ElapsedSec: elapsed.Seconds(), JobsDone: done, JobsFailed: failed,
			Cells: cells, CellsPerSec: rate,
			Retries429: lg.retries.Load(), ServerErrs5xx: lg.serverErrs.Load(),
			Latencies: lg.lat.summaries(),
			Jobs:      jobSums,
		}
		if err := writeSummary(*out, &doc); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -out:", err)
			ok = false
		}
	}
	if *verify {
		if firstDone == nil {
			fmt.Fprintln(os.Stderr, "loadgen: -verify: no completed job to verify")
			ok = false
		} else if err := lg.verifyGrid(firstDone); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -verify:", err)
			ok = false
		} else {
			fmt.Printf("loadgen: verify: served grid %s byte-identical to offline run (%s)\n",
				firstDone.status.ID, firstDone.spec.Name)
		}
	}
	if !ok {
		os.Exit(1)
	}
	fmt.Println("loadgen: ok")
}

// outcome is one job's journey.
type outcome struct {
	tenant string
	spec   terp.ExperimentSpec
	status service.Status
	err    error
}

type loadgen struct {
	client     *http.Client
	base       string
	poll       time.Duration
	deadline   time.Time
	retries    counter
	serverErrs counter
	lat        latencies
}

// Latency kinds recorded by the run, in table order.
const (
	latSubmit = "http submit" // accepted POST /v1/jobs round-trip
	latStatus = "http status" // GET /v1/jobs/{id} round-trip
	latJob    = "job e2e"     // submit accepted -> terminal state observed
)

var latKinds = []string{latSubmit, latStatus, latJob}

// latencies collects wall-clock samples per kind.
type latencies struct {
	mu      sync.Mutex
	samples map[string][]float64 // seconds
}

func (l *latencies) add(kind string, d time.Duration) {
	l.mu.Lock()
	if l.samples == nil {
		l.samples = make(map[string][]float64)
	}
	l.samples[kind] = append(l.samples[kind], d.Seconds())
	l.mu.Unlock()
}

// latSummary is one kind's percentile digest (milliseconds, for
// readability in trend JSON).
type latSummary struct {
	Kind  string  `json:"kind"`
	N     int     `json:"n"`
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
}

func (l *latencies) summaries() []latSummary {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []latSummary
	for _, kind := range latKinds {
		xs := l.samples[kind]
		if len(xs) == 0 {
			continue
		}
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		out = append(out, latSummary{
			Kind: kind, N: len(s),
			P50Ms: 1e3 * stats.Percentile(s, 50),
			P90Ms: 1e3 * stats.Percentile(s, 90),
			P99Ms: 1e3 * stats.Percentile(s, 99),
			MaxMs: 1e3 * s[len(s)-1],
		})
	}
	return out
}

func (l *latencies) printTable(w io.Writer) {
	sums := l.summaries()
	if len(sums) == 0 {
		return
	}
	fmt.Fprintf(w, "loadgen: %-12s %8s %10s %10s %10s %10s\n",
		"latency", "n", "p50", "p90", "p99", "max")
	for _, s := range sums {
		fmt.Fprintf(w, "loadgen: %-12s %8d %10s %10s %10s %10s\n",
			s.Kind, s.N, fmtMs(s.P50Ms), fmtMs(s.P90Ms), fmtMs(s.P99Ms), fmtMs(s.MaxMs))
	}
}

func fmtMs(ms float64) string {
	if ms >= 1000 {
		return fmt.Sprintf("%.2fs", ms/1e3)
	}
	return fmt.Sprintf("%.1fms", ms)
}

// summaryDoc is the -out JSON document: enough configuration to compare
// like with like across runs, plus throughput and latency digests.
type summaryDoc struct {
	GeneratedAt   string       `json:"generatedAt"`
	Addr          string       `json:"addr"`
	Tenants       int          `json:"tenants"`
	JobsPerTenant int          `json:"jobsPerTenant"`
	Experiments   []string     `json:"experiments"`
	Ops           int          `json:"ops"`
	Scale         int          `json:"scale"`
	Seed          int64        `json:"seed"`
	ElapsedSec    float64      `json:"elapsedSec"`
	JobsDone      int          `json:"jobsDone"`
	JobsFailed    int          `json:"jobsFailed"`
	Cells         int          `json:"cells"`
	CellsPerSec   float64      `json:"cellsPerSec"`
	Retries429    int          `json:"retries429"`
	ServerErrs5xx int          `json:"serverErrs5xx"`
	Latencies     []latSummary `json:"latencies"`
	// Jobs lists every completed job with its spec identity hash —
	// the same hash terpd writes into ledger records, so load-test
	// summaries join against /v1/history by (specHash, jobId).
	Jobs []jobSummary `json:"jobs"`
}

// jobSummary identifies one completed job for ledger joins.
type jobSummary struct {
	Tenant     string `json:"tenant"`
	JobID      string `json:"jobId"`
	Experiment string `json:"experiment"`
	SpecHash   string `json:"specHash"`
	State      string `json:"state"`
}

func writeSummary(path string, doc *summaryDoc) error {
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// counter is a small atomic counter (avoiding sync/atomic noise at call
// sites).
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) Add(d int) {
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

func (c *counter) Load() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// waitHealthy blocks until /healthz answers or the wait budget runs out.
func (l *loadgen) waitHealthy(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := l.client.Get(l.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: terpd at %s not healthy after %v: %v", l.base, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runJob submits one spec (retrying 429s with linear backoff) and polls
// it to a terminal state.
func (l *loadgen) runJob(tenant string, spec terp.ExperimentSpec) outcome {
	o := outcome{tenant: tenant, spec: spec}
	body, err := spec.JSON()
	if err != nil {
		o.err = err
		return o
	}

	var st service.Status
	for attempt := 0; ; attempt++ {
		if time.Now().After(l.deadline) {
			o.err = fmt.Errorf("deadline exceeded while submitting")
			return o
		}
		req, err := http.NewRequest(http.MethodPost, l.base+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			o.err = err
			return o
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(service.TenantHeader, tenant)
		reqStart := time.Now()
		resp, err := l.client.Do(req)
		if err != nil {
			o.err = err
			return o
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		rtt := time.Since(reqStart)
		if resp.StatusCode == http.StatusTooManyRequests {
			l.retries.Add(1)
			time.Sleep(time.Duration(min(attempt+1, 20)) * 50 * time.Millisecond)
			continue
		}
		if resp.StatusCode >= 500 {
			l.serverErrs.Add(1)
		}
		if resp.StatusCode != http.StatusAccepted {
			o.err = fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, raw)
			return o
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			o.err = fmt.Errorf("submit: parsing status: %w", err)
			return o
		}
		l.lat.add(latSubmit, rtt)
		break
	}

	accepted := time.Now()
	for {
		if time.Now().After(l.deadline) {
			o.err = fmt.Errorf("deadline exceeded waiting for job %s", st.ID)
			return o
		}
		cur, code, err := l.getStatus(st.ID)
		if err != nil {
			o.err = err
			return o
		}
		if code >= 500 {
			l.serverErrs.Add(1)
		}
		if code != http.StatusOK {
			o.err = fmt.Errorf("status %s: HTTP %d", st.ID, code)
			return o
		}
		if cur.State.Terminal() {
			o.status = cur
			l.lat.add(latJob, time.Since(accepted))
			if cur.State != service.StateDone {
				o.err = fmt.Errorf("job %s ended %s: %s", cur.ID, cur.State, cur.Error)
			}
			return o
		}
		time.Sleep(l.poll)
	}
}

func (l *loadgen) getStatus(id string) (service.Status, int, error) {
	reqStart := time.Now()
	resp, err := l.client.Get(l.base + "/v1/jobs/" + id)
	if err != nil {
		return service.Status{}, 0, err
	}
	l.lat.add(latStatus, time.Since(reqStart))
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return service.Status{}, resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.Status{}, resp.StatusCode, nil
	}
	var st service.Status
	if err := json.Unmarshal(raw, &st); err != nil {
		return service.Status{}, resp.StatusCode, err
	}
	return st, resp.StatusCode, nil
}

// verifyGrid fetches the served grid, byte-compares it against an
// in-process offline run of the identical spec, then re-fetches with
// If-None-Match to confirm the server's content-hash caching answers
// 304 with no body.
func (l *loadgen) verifyGrid(o *outcome) error {
	resp, err := l.client.Get(l.base + "/v1/jobs/" + o.status.ID + "/grid")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("grid fetch: HTTP %d: %s", resp.StatusCode, served)
	}
	g, err := terp.Run(o.spec)
	if err != nil {
		return fmt.Errorf("offline run: %w", err)
	}
	offline, err := g.JSON()
	if err != nil {
		return err
	}
	if !bytes.Equal(served, offline) {
		return fmt.Errorf("grid %s differs from offline run (%d vs %d bytes)",
			o.status.ID, len(served), len(offline))
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		return fmt.Errorf("grid %s response carries no ETag", o.status.ID)
	}
	req, err := http.NewRequest(http.MethodGet, l.base+"/v1/jobs/"+o.status.ID+"/grid", nil)
	if err != nil {
		return err
	}
	req.Header.Set("If-None-Match", etag)
	again, err := l.client.Do(req)
	if err != nil {
		return err
	}
	defer again.Body.Close()
	body, _ := io.ReadAll(again.Body)
	if again.StatusCode != http.StatusNotModified || len(body) != 0 {
		return fmt.Errorf("conditional re-fetch of grid %s: HTTP %d with %d body byte(s), want 304 empty",
			o.status.ID, again.StatusCode, len(body))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
