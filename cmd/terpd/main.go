// Command terpd is the TERP simulation service: a long-lived HTTP/JSON
// server that accepts experiment-spec jobs from many concurrent
// tenants, executes their cells on one shared worker pool with
// round-robin fairness across tenants, and serves results from an
// LRU-bounded store.
//
//	terpd                          # serve on :8321 with GOMAXPROCS workers
//	terpd -addr :9000 -workers 8   # explicit bind + pool size
//	terpd -queue-depth 4           # admit at most 4 jobs per tenant (429 beyond)
//	terpd -results 64              # retain the 64 most recent finished jobs
//	terpd -ops-addr 127.0.0.1:8322 # opt-in ops listener with /debug/pprof/
//	terpd -ledger runs.jsonl       # append a run record per completed job
//
// API (specs and grids use the versioned wire format of `terpbench
// -spec`/-json — see terp.WireVersion):
//
//	POST   /v1/jobs            submit a spec (header X-Terp-Tenant names
//	                           the tenant; 202 + job status, 429 when the
//	                           tenant queue is full, 400 on a bad or
//	                           wrong-version spec)
//	GET    /v1/jobs/{id}       job status (state, done/total cells)
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/grid  finished grid JSON — byte-identical to the
//	                           offline `terp.Run` result for the same spec
//	GET    /v1/jobs/{id}/report  self-contained HTML run report
//	GET    /v1/jobs/{id}/trace   Perfetto trace: sim-cycle tracks plus the
//	                             wall-clock job-lifecycle track
//	GET    /v1/jobs/{id}/events  live progress as server-sent events
//	GET    /v1/experiments     experiment names + wire version
//	GET    /v1/history         run-ledger records (?exp=, ?spec=, ?limit=;
//	                           404 without -ledger)
//	GET    /v1/history/trend   trend analysis over the ledger's per-metric
//	                           series (?window=, ?min=, ?metric=)
//	GET    /v1/compare         deterministic diff of two finished jobs
//	                           (?a=<job>&b=<job>, a is the baseline;
//	                           ?format=html for the panel)
//	GET    /v1/stats           scheduler counters, pool occupancy and the
//	                           telemetry registry as JSON
//	GET    /metrics            Prometheus text exposition (host telemetry)
//	GET    /dashboard          live ops dashboard (polls /dashboard/panel)
//	GET    /healthz            liveness
//
// The opt-in ops listener (-ops-addr) additionally mounts Go's
// net/http/pprof profiling handlers under /debug/pprof/, kept off the
// public listener so profiling can bind to localhost only.
//
// The bundled load generator lives at ./loadgen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/ledger"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	opsAddr := flag.String("ops-addr", "", "optional ops listener (pprof, metrics, dashboard); empty disables")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shared simulation worker-pool size")
	queueDepth := flag.Int("queue-depth", service.DefaultQueueDepth, "max queued+running jobs per tenant before 429")
	storeCap := flag.Int("results", service.DefaultStoreCap, "finished jobs retained in the LRU result store")
	ledgerPath := flag.String("ledger", "", "append-only JSONL run ledger; empty disables durable history")
	ledgerMaxMB := flag.Int("ledger-max-mb", 64, "rotate the ledger past this size (0 disables rotation)")
	flag.Parse()

	var led *ledger.Ledger
	if *ledgerPath != "" {
		var err error
		led, err = ledger.Open(*ledgerPath, ledger.Options{MaxBytes: int64(*ledgerMaxMB) << 20})
		if err != nil {
			fmt.Fprintln(os.Stderr, "terpd:", err)
			os.Exit(1)
		}
		defer led.Close()
		fmt.Fprintf(os.Stderr, "terpd: run ledger at %s\n", *ledgerPath)
	}

	srv := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		StoreCap:   *storeCap,
		AccessLog:  accessLog,
		Ledger:     led,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "terpd: serving on %s (%d workers, queue depth %d, %d results retained)\n",
		*addr, *workers, *queueDepth, *storeCap)

	var ops *http.Server
	if *opsAddr != "" {
		ops = &http.Server{Addr: *opsAddr, Handler: opsMux(srv)}
		go func() {
			if err := ops.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "terpd: ops listener:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "terpd: ops listener on %s (/debug/pprof/, /metrics, /dashboard)\n", *opsAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "terpd:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "terpd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		hs.Shutdown(ctx) //nolint:errcheck // best-effort drain
		if ops != nil {
			ops.Shutdown(ctx) //nolint:errcheck
		}
		cancel()
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "terpd: stopped")
}

// accessLog writes one line per request to stderr. It runs inside the
// telemetry middleware, so the duration and status here are exactly the
// values the request histograms observed:
//
//	terpd: alice "POST /v1/jobs" 202 217B 1ms
func accessLog(r *http.Request, route string, status, bytes int, elapsed time.Duration) {
	tenant := r.Header.Get(service.TenantHeader)
	if tenant == "" {
		tenant = service.DefaultTenant
	}
	fmt.Fprintf(os.Stderr, "terpd: %s %q %d %dB %s\n",
		tenant, r.Method+" "+r.URL.Path, status, bytes,
		elapsed.Round(time.Millisecond))
}

// opsMux builds the ops listener: Go's pprof profiling handlers plus
// the telemetry endpoints, so an operator can profile and scrape on a
// localhost-only port while the public listener stays lean.
func opsMux(srv *service.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", srv.Handler())
	mux.Handle("/dashboard", srv.Handler())
	mux.Handle("/dashboard/panel", srv.Handler())
	mux.Handle("/v1/stats", srv.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
