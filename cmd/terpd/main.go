// Command terpd is the TERP simulation service: a long-lived HTTP/JSON
// server that accepts experiment-spec jobs from many concurrent
// tenants, executes their cells on one shared worker pool with
// round-robin fairness across tenants, and serves results from an
// LRU-bounded store.
//
//	terpd                          # serve on :8321 with GOMAXPROCS workers
//	terpd -addr :9000 -workers 8   # explicit bind + pool size
//	terpd -queue-depth 4           # admit at most 4 jobs per tenant (429 beyond)
//	terpd -results 64              # retain the 64 most recent finished jobs
//
// API (specs and grids use the versioned wire format of `terpbench
// -spec`/-json — see terp.WireVersion):
//
//	POST   /v1/jobs            submit a spec (header X-Terp-Tenant names
//	                           the tenant; 202 + job status, 429 when the
//	                           tenant queue is full, 400 on a bad or
//	                           wrong-version spec)
//	GET    /v1/jobs/{id}       job status (state, done/total cells)
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/grid  finished grid JSON — byte-identical to the
//	                           offline `terp.Run` result for the same spec
//	GET    /v1/jobs/{id}/report  self-contained HTML run report
//	GET    /v1/jobs/{id}/trace   Perfetto-loadable Chrome trace JSON
//	GET    /v1/jobs/{id}/events  live progress as server-sent events
//	GET    /v1/experiments     experiment names + wire version
//	GET    /v1/stats           scheduler counters and queue occupancy
//	GET    /healthz            liveness
//
// The bundled load generator lives at ./loadgen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "shared simulation worker-pool size")
	queueDepth := flag.Int("queue-depth", service.DefaultQueueDepth, "max queued+running jobs per tenant before 429")
	storeCap := flag.Int("results", service.DefaultStoreCap, "finished jobs retained in the LRU result store")
	flag.Parse()

	srv := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		StoreCap:   *storeCap,
	})
	hs := &http.Server{Addr: *addr, Handler: accessLog(srv.Handler())}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "terpd: serving on %s (%d workers, queue depth %d, %d results retained)\n",
		*addr, *workers, *queueDepth, *storeCap)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "terpd:", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "terpd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		hs.Shutdown(ctx) //nolint:errcheck // best-effort drain
		cancel()
	}
	srv.Close()
	fmt.Fprintln(os.Stderr, "terpd: stopped")
}

// logWriter records the status and byte count of a response. It keeps a
// Flush method so the SSE events endpoint still sees an http.Flusher
// through the wrapper.
type logWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *logWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *logWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func (w *logWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLog writes one line per request to stderr:
//
//	terpd: alice "POST /v1/jobs" 202 217B 1ms
func accessLog(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		lw := &logWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(lw, r)
		if lw.status == 0 {
			lw.status = http.StatusOK
		}
		tenant := r.Header.Get(service.TenantHeader)
		if tenant == "" {
			tenant = service.DefaultTenant
		}
		fmt.Fprintf(os.Stderr, "terpd: %s %q %d %dB %s\n",
			tenant, r.Method+" "+r.URL.Path, lw.status, lw.bytes,
			time.Since(start).Round(time.Millisecond))
	})
}
