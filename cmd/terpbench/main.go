// Command terpbench regenerates every table and figure of the paper's
// evaluation on the simulated machine:
//
//	terpbench -exp all                      # everything (paper-scale, slow)
//	terpbench -exp all -parallel 8          # same results, 8 workers
//	terpbench -exp table3 -ops 20000        # one experiment, smaller run
//	terpbench -exp fig11 -scale 2           # bigger SPEC kernels
//	terpbench -exp all -json results.json   # structured grids for trending
//
// Each experiment decomposes into independent simulation cells that run
// on a worker pool; output is bit-identical at every -parallel value.
//
// Experiments: fig8, table3, fig9, table4, fig10, fig11, table5,
// semantics, ewsweep, table6, crash.
//
// The crash experiment is the crash-consistency matrix: every workload
// runs over the persist-buffer model while a deterministic injector
// materializes post-crash images (strict fence crashes plus an
// adversarial seeded sample that drops flushed-but-unfenced lines) and
// verifies recovery from each one.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	terp "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all or one of "+strings.Join(terp.Experiments(), ", "))
	ops := flag.Int("ops", 100_000, "WHISPER operations per run")
	scale := flag.Int("scale", 1, "SPEC kernel scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment-cell workers (1 = serial)")
	jsonPath := flag.String("json", "", "also write the structured result grids as JSON to this file")
	progress := flag.Bool("progress", false, "print live cell progress to stderr")
	flag.Parse()

	if *exp != "all" {
		ok := false
		for _, name := range terp.Experiments() {
			if name == *exp {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "terpbench: unknown experiment %q\n", *exp)
			fmt.Fprintln(os.Stderr, "valid: all, "+strings.Join(terp.Experiments(), ", "))
			os.Exit(2)
		}
	}

	var grids []*terp.Grid
	for _, name := range terp.Experiments() {
		if *exp != "all" && *exp != name {
			continue
		}
		spec := terp.ExperimentSpec{
			Name:     name,
			Opts:     terp.ExpOpts{Ops: *ops, Scale: *scale, Seed: *seed},
			Parallel: *parallel,
		}
		if *progress {
			spec.Progress = func(done, total int, cell string) {
				fmt.Fprintf(os.Stderr, "\r%-60s [%d/%d]", cell, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		g, err := terp.Run(spec)
		check(err)
		fmt.Println(g.Format())
		grids = append(grids, g)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(grids, "", "  ")
		check(err)
		check(os.WriteFile(*jsonPath, append(buf, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpbench: wrote %d grid(s) to %s\n", len(grids), *jsonPath)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "terpbench:", err)
		os.Exit(1)
	}
}
