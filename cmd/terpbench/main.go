// Command terpbench regenerates every table and figure of the paper's
// evaluation on the simulated machine:
//
//	terpbench -exp all                  # everything (paper-scale, slow)
//	terpbench -exp table3 -ops 20000    # one experiment, smaller run
//	terpbench -exp fig11 -scale 2       # bigger SPEC kernels
//
// Experiments: fig8, table3, fig9, table4, fig10, fig11, table5, table6.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	terp "repro"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig8, table3, fig9, table4, fig10, fig11, table5, table6, semantics, ewsweep")
	ops := flag.Int("ops", 100_000, "WHISPER operations per run")
	scale := flag.Int("scale", 1, "SPEC kernel scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	o := terp.ExpOpts{Ops: *ops, Scale: *scale, Seed: *seed}
	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("fig8") {
		ran = true
		res, err := terp.Figure8(o)
		check(err)
		fmt.Println(terp.FormatFigure8(res))
	}
	if want("table3") {
		ran = true
		rows, err := terp.Table3(o)
		check(err)
		fmt.Println(terp.FormatTable3(rows))
	}
	if want("fig9") {
		ran = true
		bars, err := terp.Figure9(o)
		check(err)
		fmt.Println(terp.FormatOverheads("Figure 9: WHISPER execution-time overheads", bars))
	}
	if want("table4") {
		ran = true
		rows, err := terp.Table4(o)
		check(err)
		fmt.Println(terp.FormatTable4(rows))
	}
	if want("fig10") {
		ran = true
		bars, err := terp.Figure10(o)
		check(err)
		fmt.Println(terp.FormatOverheads("Figure 10: SPEC single-thread overheads", bars))
	}
	if want("fig11") {
		ran = true
		bars, err := terp.Figure11(o)
		check(err)
		fmt.Println(terp.FormatOverheads("Figure 11: SPEC 4-thread ablation", bars))
	}
	if want("table5") {
		ran = true
		fmt.Println(terp.FormatTable5(terp.Table5(0)))
	}
	if want("semantics") {
		ran = true
		fmt.Println(terp.FormatSemanticsStudy(terp.SemanticsStudy()))
	}
	if want("ewsweep") {
		ran = true
		rows, err := terp.EWSweep(o, nil)
		check(err)
		fmt.Println(terp.FormatEWSweep(rows))
	}
	if want("table6") {
		ran = true
		res, err := terp.Table6(o)
		check(err)
		fmt.Println(terp.FormatTable6(res))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "terpbench: unknown experiment %q\n", *exp)
		fmt.Fprintln(os.Stderr, "valid: all, "+strings.Join([]string{
			"fig8", "table3", "fig9", "table4", "fig10", "fig11", "table5", "table6", "semantics", "ewsweep"}, ", "))
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "terpbench:", err)
		os.Exit(1)
	}
}
