// Command terpbench regenerates every table and figure of the paper's
// evaluation on the simulated machine:
//
//	terpbench -exp all                      # everything (paper-scale, slow)
//	terpbench -exp all -parallel 8          # same results, 8 workers
//	terpbench -exp table3 -ops 20000        # one experiment, smaller run
//	terpbench -exp fig11 -scale 2           # bigger SPEC kernels
//	terpbench -exp all -json results.json   # structured grids for trending
//	terpbench -exp table3 -ledger runs.jsonl # append run records to the ledger
//	terpbench -exp table3 -trace out.json   # Perfetto/Chrome trace export
//	terpbench -exp table3 -metrics          # per-cell counter tables
//	terpbench -exp table3 -report run.html  # self-contained HTML run report
//	terpbench -spec job.json                # run a versioned spec document
//
// -spec reads the same versioned ExperimentSpec wire document that the
// terpd job API accepts (see terp.ParseSpec), so a spec file submitted
// to a server and run locally produce byte-identical grids; it replaces
// -exp/-ops/-scale/-seed, while output flags (-json, -trace, -metrics,
// -report) and an explicit -parallel still apply.
//
// Each experiment decomposes into independent simulation cells that run
// on a worker pool; output is bit-identical at every -parallel value.
// Traces and metrics are keyed by simulated cycles, never wall clock, so
// they are byte-identical at every -parallel value too.
//
// Experiments: fig8, table3, fig9, table4, fig10, fig11, table5,
// semantics, ewsweep, table6, crash, litmus.
//
// The crash experiment is the crash-consistency matrix: every workload
// runs over the persist-buffer model while a deterministic injector
// materializes post-crash images (strict fence crashes plus an
// adversarial seeded sample that drops flushed-but-unfenced lines) and
// verifies recovery from each one.
//
// The litmus experiment is the persistency-model verification matrix:
// small store/flush/fence litmus programs (hand-written shapes plus
// seeded generated suites) run over the persist-buffer model, every
// reachable post-crash image is enumerated exhaustively, and the set is
// diffed against a declarative Px86-style oracle; the pass criterion is
// zero non-allowlisted divergences (see DESIGN.md "Litmus engine").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	terp "repro"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all or one of "+strings.Join(terp.Experiments(), ", "))
	ops := flag.Int("ops", 100_000, "WHISPER operations per run")
	scale := flag.Int("scale", 1, "SPEC kernel scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment-cell workers (1 = serial)")
	jsonPath := flag.String("json", "", "also write the structured result grids as JSON to this file")
	progress := flag.Bool("progress", false, "print live cell progress (with cells/sec and ETA) to stderr")
	tracePath := flag.String("trace", "", "record per-cell event traces and write Chrome trace JSON (Perfetto-loadable) to this file")
	metrics := flag.Bool("metrics", false, "collect per-cell metrics; print tables and an account rollup")
	reportPath := flag.String("report", "", "write a self-contained HTML run report to this file (implies tracing and metrics)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile (after the run) to this file")
	specPath := flag.String("spec", "", "run the versioned spec JSON document in this file (replaces -exp/-ops/-scale/-seed)")
	ledgerPath := flag.String("ledger", "", "append one run record per experiment to this JSONL ledger (see terpreport -trend)")
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			check(f.Close())
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			check(err)
			runtime.GC() // settle allocations so the profile reflects live heap
			check(pprof.WriteHeapProfile(f))
			check(f.Close())
		}()
	}

	if *specPath == "" && *exp != "all" {
		ok := false
		for _, name := range terp.Experiments() {
			if name == *exp {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "terpbench: unknown experiment %q\n", *exp)
			fmt.Fprintln(os.Stderr, "valid: all, "+strings.Join(terp.Experiments(), ", "))
			os.Exit(2)
		}
	}

	ocfg := obs.Config{Trace: *tracePath != "", Metrics: *metrics}
	if *reportPath != "" {
		// The report needs both the event streams (exposure windows,
		// attack instants) and the counters (overhead accounts).
		ocfg.Trace = true
		ocfg.Metrics = true
	}

	// Enumerate the specs to run: either the one wire document from
	// -spec, or the classic flag-built spec per selected experiment.
	var specs []terp.ExperimentSpec
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		check(err)
		spec, err := terp.ParseSpec(raw)
		check(err)
		if explicit["parallel"] {
			spec.Parallel = *parallel
		}
		// Output flags add collection on top of what the spec asks for.
		spec.Obs.Trace = spec.Obs.Trace || ocfg.Trace
		spec.Obs.Metrics = spec.Obs.Metrics || ocfg.Metrics
		specs = append(specs, spec)
	} else {
		for _, name := range terp.Experiments() {
			if *exp != "all" && *exp != name {
				continue
			}
			specs = append(specs, terp.ExperimentSpec{
				Name:     name,
				Opts:     terp.ExpOpts{Ops: *ops, Scale: *scale, Seed: *seed},
				Parallel: *parallel,
				Obs:      ocfg,
			})
		}
	}

	var led *ledger.Ledger
	if *ledgerPath != "" {
		var err error
		led, err = ledger.Open(*ledgerPath, ledger.Options{})
		check(err)
		defer led.Close()
	}

	var grids []*terp.Grid
	var traces []obs.CellTrace
	for _, spec := range specs {
		if *progress {
			// Rate and ETA derive from wall clock, but only ever reach
			// stderr — no persisted output contains wall time.
			start := time.Now()
			spec.Progress = func(done, total int, cell string) {
				elapsed := time.Since(start).Seconds()
				var rate, eta string
				if elapsed > 0 && done > 0 {
					perSec := float64(done) / elapsed
					rate = fmt.Sprintf(" %.1f cells/s", perSec)
					if done < total && perSec > 0 {
						left := time.Duration(float64(total-done) / perSec * float64(time.Second))
						eta = " ETA " + left.Round(time.Second).String()
					}
				}
				fmt.Fprintf(os.Stderr, "\r%-60s [%d/%d]%s%s   ", cell, done, total, rate, eta)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		runStart := time.Now()
		g, err := terp.Run(spec)
		check(err)
		runWall := time.Since(runStart)
		fmt.Println(g.Format())
		if *metrics && g.Obs != nil {
			fmt.Println(formatObs(g))
		}
		grids = append(grids, g)
		traces = append(traces, g.Traces()...)
		if led != nil {
			// Observe-only: the record is derived from the finished grid
			// and never feeds back into the run.
			rec := ledger.FromGrid("terpbench", spec, g)
			rec.WallMS = runWall.Seconds() * 1e3
			check(led.Append(rec))
		}
	}
	if led != nil {
		fmt.Fprintf(os.Stderr, "terpbench: appended %d run record(s) to %s\n", len(grids), *ledgerPath)
	}

	if *jsonPath != "" {
		buf, err := json.MarshalIndent(grids, "", "  ")
		check(err)
		check(os.WriteFile(*jsonPath, append(buf, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpbench: wrote %d grid(s) to %s\n", len(grids), *jsonPath)
	}
	if *reportPath != "" {
		in := terp.ReportInput("TERP run report", grids)
		rep := report.Build(in, report.Options{})
		check(os.WriteFile(*reportPath, report.HTML(rep), 0o644))
		fmt.Fprintf(os.Stderr, "terpbench: wrote HTML report for %d experiment(s) to %s\n",
			len(in.Experiments), *reportPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		check(err)
		check(obs.WriteChromeTrace(f, traces))
		check(f.Close())
		n := 0
		for _, t := range traces {
			n += len(t.Events)
		}
		fmt.Fprintf(os.Stderr, "terpbench: wrote %d trace event(s) from %d cell(s) to %s\n",
			n, len(traces), *tracePath)
	}
}

// formatObs renders an experiment's metrics: the merged totals with a
// cycle-account rollup, then each cell's counter table.
func formatObs(g *terp.Grid) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s metrics\n", g.Name)
	if g.Obs.Totals != nil {
		b.WriteString("cycle rollup (all cells):\n")
		b.WriteString(obs.FormatRollup(g.Obs.Totals, "sim/cycles"))
		b.WriteString("totals:\n")
		b.WriteString(obs.FormatMetrics(g.Obs.Totals))
	}
	for _, c := range g.Obs.Cells {
		fmt.Fprintf(&b, "cell %s:\n", c.Cell)
		b.WriteString(obs.FormatMetrics(c.Metrics))
		if c.TraceEvents > 0 {
			fmt.Fprintf(&b, "  trace: %d events (%d dropped)\n", c.TraceEvents, c.TraceDropped)
		}
	}
	return b.String()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "terpbench:", err)
		os.Exit(1)
	}
}
