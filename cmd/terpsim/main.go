// Command terpsim runs one workload under one protection scheme and
// prints its measurements:
//
//	terpsim -suite whisper -workload redis -scheme TT -ew 40
//	terpsim -suite spec -workload lbm -scheme TM -threads 4
//
// Schemes: base (unprotected), MM, TM, TT, basic, +cond, +cb.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/params"
	"repro/internal/speckit"
	"repro/internal/whisper"
)

func main() {
	suite := flag.String("suite", "whisper", "workload suite: whisper or spec")
	workload := flag.String("workload", "hashmap", "workload name")
	scheme := flag.String("scheme", "TT", "protection scheme: base, MM, TM, TT, basic, +cond, +cb")
	ew := flag.Float64("ew", 40, "exposure window target (us)")
	ops := flag.Int("ops", 100_000, "operations (whisper)")
	threads := flag.Int("threads", 1, "threads (spec)")
	scale := flag.Int("scale", 1, "kernel scale (spec)")
	seed := flag.Int64("seed", 1, "random seed")
	trace := flag.Int("trace", 0, "print the last N protection events")
	flag.Parse()

	s, err := parseScheme(*scheme)
	if err != nil {
		fail(err)
	}
	cfg := params.NewConfig(s, *ew)
	cfg.Seed = *seed

	var res core.Result
	var traced *core.Runtime
	hook := func(rt *core.Runtime) {
		if *trace > 0 {
			rt.EnableTrace(*trace)
			traced = rt
		}
	}
	switch *suite {
	case "whisper":
		mk, err := whisper.ByName(*workload)
		if err != nil {
			fail(err)
		}
		res, err = whisper.Run(cfg, mk, whisper.RunOpts{Ops: *ops, OnRuntime: hook})
		if err != nil {
			fail(err)
		}
	case "spec":
		k, err := speckit.ByName(*workload)
		if err != nil {
			fail(err)
		}
		res, err = speckit.Run(cfg, k, speckit.RunOpts{Threads: *threads, Scale: *scale, OnRuntime: hook})
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown suite %q", *suite))
	}
	printResult(*suite, *workload, cfg, res)
	if traced != nil {
		events, total := traced.TraceEvents()
		fmt.Printf("\nlast %d of %d protection events:\n", len(events), total)
		for _, e := range events {
			fmt.Println("  " + e.String())
		}
	}
}

func parseScheme(s string) (params.Scheme, error) {
	switch s {
	case "base", "unprotected":
		return params.Unprotected, nil
	case "MM", "mm":
		return params.MM, nil
	case "TM", "tm":
		return params.TM, nil
	case "TT", "tt":
		return params.TT, nil
	case "basic":
		return params.BasicSem, nil
	case "+cond", "cond":
		return params.PlusCond, nil
	case "+cb", "cb":
		return params.PlusCB, nil
	}
	return 0, fmt.Errorf("unknown scheme %q", s)
}

func printResult(suite, workload string, cfg params.Config, res core.Result) {
	fmt.Printf("%s/%s under %s (EW %.0fus, TEW %.0fus)\n", suite, workload,
		cfg.Scheme, params.ToMicros(cfg.EWTarget), params.ToMicros(cfg.TEWTarget))
	fmt.Printf("  simulated time      %.2f ms (%d cycles)\n",
		params.ToMicros(res.Cycles)/1000, res.Cycles)
	fmt.Printf("  exposure            %s\n", res.Exposure)
	fmt.Printf("  cond ops            %d (%.1f%% silent, %.0f/s)\n",
		res.Counts.CondOps, res.Counts.SilentPercent(), res.CondFreqPerSec())
	fmt.Printf("  syscalls            %d attach, %d detach\n",
		res.Counts.AttachSyscalls, res.Counts.DetachSyscalls)
	fmt.Printf("  randomizations      %d\n", res.Counts.Randomizations)
	if res.Counts.Blocks > 0 {
		fmt.Printf("  basic-sem blocks    %d\n", res.Counts.Blocks)
	}
	if res.Counts.Faults > 0 {
		fmt.Printf("  protection faults   %d\n", res.Counts.Faults)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "terpsim:", err)
	os.Exit(1)
}
