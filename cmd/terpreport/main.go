// Command terpreport turns instrumented runs into analysis reports:
// per-PMO exposure timelines, exposure-duration CDFs and percentiles for
// MERR vs TERP, attack-event correlation, the paper's cycle-overhead
// component accounts, and a benchmark regression verdict against a
// committed baseline.
//
//	terpreport -exp table3 -ops 2000                 # run + text report
//	terpreport -exp table3,table5 -html run.html     # self-contained HTML
//	terpreport -exp table3 -baseline BENCH_obs.json \
//	           -verdict verdict.json                 # CI regression gate
//	terpreport -in grids.json -html run.html         # from saved grids
//	terpreport -exp table3 -ledger runs.jsonl        # run + append a ledger record
//	terpreport -trend -ledger runs.jsonl             # gate on the run history
//
// Reports derive only from simulated cycles — the same spec produces
// byte-identical HTML, text and verdict output at every -parallel level.
//
// With -baseline, the exit code is the regression verdict: 0 for pass or
// improved, 3 for regressed (1 is reserved for operational errors), so
// CI can gate directly on the process status.
//
// -in reads a `terpbench -json` document. Saved grids carry metrics but
// not raw event streams, so that mode reports overhead accounts and the
// regression verdict; run an experiment directly for exposure timelines
// and attack correlation.
//
// -gobench switches to wall-clock mode: it reads `go test -bench` text
// output instead of running experiments, converts it to the bench-grid
// format (-gobench-out writes the converted document, e.g. as a
// BENCH_perf.json baseline), and with -baseline compares against a prior
// conversion. Wall-clock metrics are informational unless -gate-perf is
// set, because ns/op depends on the machine the benchmarks ran on.
//
// -trend switches to history mode: instead of running anything, it
// reads the JSONL run ledger named by -ledger (appended by terpd,
// `terpbench -ledger` or `terpreport -ledger`), analyzes each
// per-metric series keyed by spec hash, and gates on the trailing
// -trend-window runs against the prior history: exit 0 when the gated
// sim-cycle series hold, 3 on a regression, with -verdict writing the
// machine-readable trend document. Series shorter than -trend-min
// report "insufficient" and never gate. -ledger-compact N rewrites the
// ledger keeping the most recent N records per spec identity.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	terp "repro"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "table3", "experiments to run: comma-separated names, or all (ignored with -in)")
	ops := flag.Int("ops", 100_000, "WHISPER operations per run")
	scale := flag.Int("scale", 1, "SPEC kernel scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment-cell workers (1 = serial)")
	in := flag.String("in", "", "read grids from this `terpbench -json` file instead of running")
	htmlPath := flag.String("html", "", "write the self-contained HTML report to this file")
	baseline := flag.String("baseline", "", "compare against this BENCH_*.json baseline and gate the exit code")
	verdictPath := flag.String("verdict", "", "write the machine-readable regression verdict JSON to this file (requires -baseline)")
	tolerance := flag.Float64("tolerance", 2, "regression tolerance in percent of the baseline total")
	title := flag.String("title", "TERP run report", "report title")
	gobench := flag.String("gobench", "", "read `go test -bench` text output from this file instead of running experiments")
	gobenchOut := flag.String("gobench-out", "", "write the converted go-bench grid JSON to this file (requires -gobench)")
	gatePerf := flag.Bool("gate-perf", false, "gate the verdict on wall-clock perf/* metrics too (use on controlled runner hardware only)")
	ledgerPath := flag.String("ledger", "", "JSONL run ledger: appended after fresh runs, read by -trend")
	trend := flag.Bool("trend", false, "analyze the -ledger run history instead of running; exit 3 on a regressing trend")
	trendWindow := flag.Int("trend-window", 3, "trailing runs compared against the prior history (with -trend)")
	trendMin := flag.Int("trend-min", 5, "minimum runs per series before the trend gate engages (with -trend)")
	ledgerCompact := flag.Int("ledger-compact", 0, "compact the -ledger keeping this many records per spec identity, then exit")
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if (*trend || *ledgerCompact > 0) && *ledgerPath == "" {
		fmt.Fprintln(os.Stderr, "terpreport: -trend and -ledger-compact require -ledger")
		os.Exit(2)
	}
	if *ledgerCompact > 0 {
		led, err := ledger.Open(*ledgerPath, ledger.Options{})
		check(err)
		check(led.Compact(*ledgerCompact))
		check(led.Close())
		fmt.Fprintf(os.Stderr, "terpreport: compacted %s to the most recent %d record(s) per spec\n",
			*ledgerPath, *ledgerCompact)
		return
	}
	if *trend {
		os.Exit(runTrend(*ledgerPath, *verdictPath, trendFilter(explicit, *exp), report.TrendOpts{
			Window: *trendWindow, MinRuns: *trendMin, TolerancePct: *tolerance,
		}))
	}

	if *verdictPath != "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "terpreport: -verdict requires -baseline")
		os.Exit(2)
	}
	if *gobenchOut != "" && *gobench == "" {
		fmt.Fprintln(os.Stderr, "terpreport: -gobench-out requires -gobench")
		os.Exit(2)
	}
	ropts := report.RegressOpts{TolerancePct: *tolerance, GateWallClock: *gatePerf}

	if *gobench != "" {
		os.Exit(runGoBench(*gobench, *gobenchOut, *baseline, *verdictPath, ropts))
	}

	grids, runs, err := loadGrids(*in, *exp, terp.ExpOpts{Ops: *ops, Scale: *scale, Seed: *seed}, *parallel)
	check(err)

	if *ledgerPath != "" {
		// Records only for fresh runs: -in documents carry no spec (and
		// no wall clock), so there is nothing honest to append.
		if len(runs) == 0 {
			fmt.Fprintln(os.Stderr, "terpreport: -ledger ignored with -in (no fresh run to record)")
		} else {
			led, err := ledger.Open(*ledgerPath, ledger.Options{})
			check(err)
			for i, g := range grids {
				rec := ledger.FromGrid("terpreport", runs[i].spec, g)
				rec.WallMS = runs[i].wallMS
				check(led.Append(rec))
			}
			check(led.Close())
			fmt.Fprintf(os.Stderr, "terpreport: appended %d run record(s) to %s\n", len(grids), *ledgerPath)
		}
	}

	rep := report.Build(terp.ReportInput(*title, grids), report.Options{})

	if *baseline != "" {
		base, err := os.ReadFile(*baseline)
		check(err)
		baseGrids, err := report.ParseBench(base)
		check(err)
		// A Grid marshals to exactly the bench format, so the current side
		// round-trips through the same parser.
		curBytes, err := json.Marshal(grids)
		check(err)
		curGrids, err := report.ParseBench(curBytes)
		check(err)
		rep.Regression = report.Compare(curGrids, baseGrids, ropts)
		if rep.Regression == nil {
			fmt.Fprintln(os.Stderr, "terpreport: baseline shares no experiment with the current run; nothing to compare")
			os.Exit(2)
		}
	}

	if *htmlPath != "" {
		check(os.WriteFile(*htmlPath, report.HTML(rep), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote HTML report to %s\n", *htmlPath)
	}
	if *verdictPath != "" {
		buf, err := rep.Regression.VerdictJSON()
		check(err)
		check(os.WriteFile(*verdictPath, append(buf, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote verdict to %s\n", *verdictPath)
	}

	fmt.Print(report.Text(rep))
	if rep.Regression != nil {
		os.Exit(rep.Regression.ExitCode())
	}
}

// runGoBench handles wall-clock mode: parse `go test -bench` output,
// optionally persist the converted grid, optionally compare against a
// baseline. Returns the process exit code.
func runGoBench(inPath, outPath, baselinePath, verdictPath string, ropts report.RegressOpts) int {
	buf, err := os.ReadFile(inPath)
	check(err)
	grids, err := report.ParseGoBench(buf)
	check(err)

	if outPath != "" {
		out, err := json.MarshalIndent(grids, "", "  ")
		check(err)
		check(os.WriteFile(outPath, append(out, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote %d benchmark cells to %s\n", len(grids[0].Obs.Cells), outPath)
	}
	if baselinePath == "" {
		return 0
	}

	base, err := os.ReadFile(baselinePath)
	check(err)
	baseGrids, err := report.ParseBench(base)
	check(err)
	reg := report.Compare(grids, baseGrids, ropts)
	if reg == nil {
		fmt.Fprintln(os.Stderr, "terpreport: baseline shares no experiment with the go-bench input; nothing to compare")
		return 2
	}
	vbuf, err := reg.VerdictJSON()
	check(err)
	if verdictPath != "" {
		check(os.WriteFile(verdictPath, append(vbuf, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote verdict to %s\n", verdictPath)
	}
	fmt.Printf("%s\n", vbuf)
	return reg.ExitCode()
}

// runMeta describes one fresh run (parallel to the grids slice; empty
// for -in documents).
type runMeta struct {
	spec   terp.ExperimentSpec
	wallMS float64
}

// loadGrids either parses a saved grids document or runs the requested
// experiments with tracing and metrics on. Fresh runs also return
// their specs and wall-clock durations for the ledger.
func loadGrids(inPath, exp string, opts terp.ExpOpts, parallel int) ([]*terp.Grid, []runMeta, error) {
	if inPath != "" {
		buf, err := os.ReadFile(inPath)
		if err != nil {
			return nil, nil, err
		}
		// ParseGrids enforces the wire version, so a document from an
		// incompatible build fails loudly instead of mis-reporting.
		grids, err := terp.ParseGrids(buf)
		if err != nil {
			return nil, nil, fmt.Errorf("parsing %s: %w", inPath, err)
		}
		return grids, nil, nil
	}

	names := strings.Split(exp, ",")
	if exp == "all" {
		names = terp.Experiments()
	}
	var grids []*terp.Grid
	var runs []runMeta
	for _, name := range names {
		name = strings.TrimSpace(name)
		spec := terp.ExperimentSpec{
			Name:     name,
			Opts:     opts,
			Parallel: parallel,
			Obs:      obs.Config{Trace: true, Metrics: true},
		}
		start := time.Now()
		g, err := terp.Run(spec)
		if err != nil {
			return nil, nil, err
		}
		grids = append(grids, g)
		runs = append(runs, runMeta{spec: spec, wallMS: time.Since(start).Seconds() * 1e3})
	}
	return grids, runs, nil
}

// trendFilter restricts trend mode to the -exp experiments only when
// the flag was given explicitly; the default runs over the whole
// ledger.
func trendFilter(explicit map[string]bool, exp string) func(string) bool {
	if !explicit["exp"] || exp == "all" {
		return func(string) bool { return true }
	}
	names := map[string]bool{}
	for _, n := range strings.Split(exp, ",") {
		names[strings.TrimSpace(n)] = true
	}
	return func(name string) bool { return names[name] }
}

// runTrend handles history mode: read the ledger, analyze each series,
// print the table, optionally write the verdict document. Returns the
// process exit code (0 pass/improved, 3 regressed).
func runTrend(ledgerPath, verdictPath string, keep func(string) bool, opt report.TrendOpts) int {
	records, skipped, err := ledger.Read(ledgerPath)
	check(err)
	var kept []ledger.Record
	for _, r := range records {
		if keep(r.Experiment) {
			kept = append(kept, r)
		}
	}
	tr := report.Trend(ledger.Series(kept), opt)
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "terpreport: skipped %d unreadable ledger line(s)\n", skipped)
	}
	if verdictPath != "" {
		buf, err := json.MarshalIndent(tr, "", "  ")
		check(err)
		check(os.WriteFile(verdictPath, append(buf, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote trend verdict to %s\n", verdictPath)
	}
	fmt.Print(tr.Text())
	return tr.ExitCode()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "terpreport:", err)
		os.Exit(1)
	}
}
