// Command terpreport turns instrumented runs into analysis reports:
// per-PMO exposure timelines, exposure-duration CDFs and percentiles for
// MERR vs TERP, attack-event correlation, the paper's cycle-overhead
// component accounts, and a benchmark regression verdict against a
// committed baseline.
//
//	terpreport -exp table3 -ops 2000                 # run + text report
//	terpreport -exp table3,table5 -html run.html     # self-contained HTML
//	terpreport -exp table3 -baseline BENCH_obs.json \
//	           -verdict verdict.json                 # CI regression gate
//	terpreport -in grids.json -html run.html         # from saved grids
//
// Reports derive only from simulated cycles — the same spec produces
// byte-identical HTML, text and verdict output at every -parallel level.
//
// With -baseline, the exit code is the regression verdict: 0 for pass or
// improved, 3 for regressed (1 is reserved for operational errors), so
// CI can gate directly on the process status.
//
// -in reads a `terpbench -json` document. Saved grids carry metrics but
// not raw event streams, so that mode reports overhead accounts and the
// regression verdict; run an experiment directly for exposure timelines
// and attack correlation.
//
// -gobench switches to wall-clock mode: it reads `go test -bench` text
// output instead of running experiments, converts it to the bench-grid
// format (-gobench-out writes the converted document, e.g. as a
// BENCH_perf.json baseline), and with -baseline compares against a prior
// conversion. Wall-clock metrics are informational unless -gate-perf is
// set, because ns/op depends on the machine the benchmarks ran on.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	terp "repro"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "table3", "experiments to run: comma-separated names, or all (ignored with -in)")
	ops := flag.Int("ops", 100_000, "WHISPER operations per run")
	scale := flag.Int("scale", 1, "SPEC kernel scale factor")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment-cell workers (1 = serial)")
	in := flag.String("in", "", "read grids from this `terpbench -json` file instead of running")
	htmlPath := flag.String("html", "", "write the self-contained HTML report to this file")
	baseline := flag.String("baseline", "", "compare against this BENCH_*.json baseline and gate the exit code")
	verdictPath := flag.String("verdict", "", "write the machine-readable regression verdict JSON to this file (requires -baseline)")
	tolerance := flag.Float64("tolerance", 2, "regression tolerance in percent of the baseline total")
	title := flag.String("title", "TERP run report", "report title")
	gobench := flag.String("gobench", "", "read `go test -bench` text output from this file instead of running experiments")
	gobenchOut := flag.String("gobench-out", "", "write the converted go-bench grid JSON to this file (requires -gobench)")
	gatePerf := flag.Bool("gate-perf", false, "gate the verdict on wall-clock perf/* metrics too (use on controlled runner hardware only)")
	flag.Parse()

	if *verdictPath != "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "terpreport: -verdict requires -baseline")
		os.Exit(2)
	}
	if *gobenchOut != "" && *gobench == "" {
		fmt.Fprintln(os.Stderr, "terpreport: -gobench-out requires -gobench")
		os.Exit(2)
	}
	ropts := report.RegressOpts{TolerancePct: *tolerance, GateWallClock: *gatePerf}

	if *gobench != "" {
		os.Exit(runGoBench(*gobench, *gobenchOut, *baseline, *verdictPath, ropts))
	}

	grids, err := loadGrids(*in, *exp, terp.ExpOpts{Ops: *ops, Scale: *scale, Seed: *seed}, *parallel)
	check(err)

	rep := report.Build(terp.ReportInput(*title, grids), report.Options{})

	if *baseline != "" {
		base, err := os.ReadFile(*baseline)
		check(err)
		baseGrids, err := report.ParseBench(base)
		check(err)
		// A Grid marshals to exactly the bench format, so the current side
		// round-trips through the same parser.
		curBytes, err := json.Marshal(grids)
		check(err)
		curGrids, err := report.ParseBench(curBytes)
		check(err)
		rep.Regression = report.Compare(curGrids, baseGrids, ropts)
		if rep.Regression == nil {
			fmt.Fprintln(os.Stderr, "terpreport: baseline shares no experiment with the current run; nothing to compare")
			os.Exit(2)
		}
	}

	if *htmlPath != "" {
		check(os.WriteFile(*htmlPath, report.HTML(rep), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote HTML report to %s\n", *htmlPath)
	}
	if *verdictPath != "" {
		buf, err := rep.Regression.VerdictJSON()
		check(err)
		check(os.WriteFile(*verdictPath, append(buf, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote verdict to %s\n", *verdictPath)
	}

	fmt.Print(report.Text(rep))
	if rep.Regression != nil {
		os.Exit(rep.Regression.ExitCode())
	}
}

// runGoBench handles wall-clock mode: parse `go test -bench` output,
// optionally persist the converted grid, optionally compare against a
// baseline. Returns the process exit code.
func runGoBench(inPath, outPath, baselinePath, verdictPath string, ropts report.RegressOpts) int {
	buf, err := os.ReadFile(inPath)
	check(err)
	grids, err := report.ParseGoBench(buf)
	check(err)

	if outPath != "" {
		out, err := json.MarshalIndent(grids, "", "  ")
		check(err)
		check(os.WriteFile(outPath, append(out, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote %d benchmark cells to %s\n", len(grids[0].Obs.Cells), outPath)
	}
	if baselinePath == "" {
		return 0
	}

	base, err := os.ReadFile(baselinePath)
	check(err)
	baseGrids, err := report.ParseBench(base)
	check(err)
	reg := report.Compare(grids, baseGrids, ropts)
	if reg == nil {
		fmt.Fprintln(os.Stderr, "terpreport: baseline shares no experiment with the go-bench input; nothing to compare")
		return 2
	}
	vbuf, err := reg.VerdictJSON()
	check(err)
	if verdictPath != "" {
		check(os.WriteFile(verdictPath, append(vbuf, '\n'), 0o644))
		fmt.Fprintf(os.Stderr, "terpreport: wrote verdict to %s\n", verdictPath)
	}
	fmt.Printf("%s\n", vbuf)
	return reg.ExitCode()
}

// loadGrids either parses a saved grids document or runs the requested
// experiments with tracing and metrics on.
func loadGrids(inPath, exp string, opts terp.ExpOpts, parallel int) ([]*terp.Grid, error) {
	if inPath != "" {
		buf, err := os.ReadFile(inPath)
		if err != nil {
			return nil, err
		}
		// ParseGrids enforces the wire version, so a document from an
		// incompatible build fails loudly instead of mis-reporting.
		grids, err := terp.ParseGrids(buf)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", inPath, err)
		}
		return grids, nil
	}

	names := strings.Split(exp, ",")
	if exp == "all" {
		names = terp.Experiments()
	}
	var grids []*terp.Grid
	for _, name := range names {
		name = strings.TrimSpace(name)
		g, err := terp.Run(terp.ExperimentSpec{
			Name:     name,
			Opts:     opts,
			Parallel: parallel,
			Obs:      obs.Config{Trace: true, Metrics: true},
		})
		if err != nil {
			return nil, err
		}
		grids = append(grids, g)
	}
	return grids, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "terpreport:", err)
		os.Exit(1)
	}
}
