// Command terpc compiles a TPL source file through the TERP compiler
// pipeline and shows what the insertion pass did:
//
//	terpc -ew 40 -tew 2 prog.tpl        # TERP conditional insertion
//	terpc -merr prog.tpl                # MERR single-level insertion
//	terpc -dump prog.tpl                # print the instrumented IR
//
// With no file argument it reads from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/params"
	"repro/internal/terpc"
)

func main() {
	ew := flag.Float64("ew", params.DefaultEWMicros, "exposure window target (us)")
	tew := flag.Float64("tew", params.DefaultTEWMicros, "thread exposure window target (us)")
	merr := flag.Bool("merr", false, "MERR-style single-level insertion (no TEW)")
	dump := flag.Bool("dump", false, "print the instrumented IR")
	dot := flag.Bool("dot", false, "print the instrumented CFGs in Graphviz format")
	opt := flag.Bool("O", false, "run the optimizer (constant folding, dead blocks) before insertion")
	flag.Parse()

	var src []byte
	var err error
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fail(err)
	}

	prog, err := lang.Compile(string(src))
	if err != nil {
		fail(err)
	}
	if *opt {
		for name, fn := range prog.Funcs {
			st := ir.Optimize(fn)
			if st.Folded+st.Branches+st.RemovedBlocks > 0 {
				fmt.Printf("optimized %s: %d folded, %d branches, %d dead blocks\n",
					name, st.Folded, st.Branches, st.RemovedBlocks)
			}
		}
	}
	iopt := terpc.Options{EWThreshold: params.Micros(*ew)}
	if !*merr {
		iopt.TEWThreshold = params.Micros(*tew)
	}
	rep, err := terpc.Insert(prog, iopt)
	if err != nil {
		fail(err)
	}

	fmt.Printf("compiled %d function(s), %d PMO(s), %d volatile array(s)\n",
		len(prog.Funcs), len(prog.PMOs), len(prog.DRAMs))
	names := make([]string, 0, len(rep.FuncLET))
	for n := range rep.FuncLET {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-16s LET %8.2f us\n", n, params.ToMicros(rep.FuncLET[n]))
	}
	fmt.Printf("insertion (EW %.0fus, TEW %s):\n", *ew, tewLabel(*merr, *tew))
	for _, fr := range rep.Funcs {
		fmt.Printf("  %-16s %d graph(s), %d attach, %d detach, max region LET %.2f us\n",
			fr.Func, fr.Graphs, fr.Attaches, fr.Detaches, params.ToMicros(fr.MaxRegionLET))
	}
	if rep.TotalInserted() == 0 {
		fmt.Println("  (no PMO accesses; nothing inserted)")
	}
	if *dump {
		for _, n := range names {
			if f, ok := prog.Funcs[n]; ok {
				fmt.Println(f)
			}
		}
	}
	if *dot {
		for _, n := range names {
			if f, ok := prog.Funcs[n]; ok {
				fmt.Print(f.DOT())
			}
		}
	}
}

func tewLabel(merr bool, tew float64) string {
	if merr {
		return "off (MERR)"
	}
	return fmt.Sprintf("%.0fus", tew)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "terpc:", err)
	os.Exit(1)
}
