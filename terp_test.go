package terp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pmo"
)

// Mode bit aliases for the namespace permission tests.
const (
	pmoModeRead      = pmo.ModeRead
	pmoModeWrite     = pmo.ModeWrite
	pmoModeOtherRead = pmo.ModeOtherRead
)

func TestSystemQuickstart(t *testing.T) {
	sys, err := NewSystem(Options{Scheme: TT})
	if err != nil {
		t.Fatal(err)
	}
	p, err := sys.Create("mydata", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Attach(p, ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Store(o, 42); err != nil {
		t.Fatal(err)
	}
	v, err := sys.Load(o)
	if err != nil || v != 42 {
		t.Fatalf("load = %d, %v", v, err)
	}
	if err := sys.Detach(p); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.Counts.CondOps != 2 {
		t.Fatalf("cond ops = %d", st.Counts.CondOps)
	}
	if sys.NowMicros() <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestSystemRebootPersistsData(t *testing.T) {
	sys, _ := NewSystem(Options{Scheme: TT})
	p, _ := sys.Create("persist", 1<<20)
	sys.Attach(p, ReadWrite)
	o, _ := p.Alloc(8)
	p.SetRoot(o)
	if err := sys.Store(o, 1234); err != nil {
		t.Fatal(err)
	}
	sys.Detach(p)

	sys2, err := sys.Reboot()
	if err != nil {
		t.Fatal(err)
	}
	// The namespace is persisted in the device superblock: the PMO is
	// found again by name after the reboot.
	p2, err := sys2.Open("persist")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.Attach(p2, Read); err != nil {
		t.Fatal(err)
	}
	root := p2.Root()
	if root != o {
		t.Fatalf("root after reboot = %v, want %v", root, o)
	}
	v, err := sys2.Load(root)
	if err != nil || v != 1234 {
		t.Fatalf("persisted value = %d, %v", v, err)
	}
}

func TestSystemCrashRecoveryWithTxn(t *testing.T) {
	sys, _ := NewSystem(Options{Scheme: TT})
	p, _ := sys.Create("bank", 1<<20)
	sys.Attach(p, ReadWrite)
	log, logOID, err := sys.NewTxn(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Alloc(8)
	b, _ := p.Alloc(8)
	sys.Store(a, 100)
	sys.Store(b, 0)
	// Transfer crashes mid-transaction.
	log.Begin()
	log.Write(a, 50)
	// Crash now (no commit).
	sys2, err := sys.Reboot()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := sys2.Open("bank")
	if err != nil {
		t.Fatal(err)
	}
	sys2.Attach(p2, ReadWrite)
	log2, err := sys2.OpenTxn(p2, logOID, 32)
	if err != nil {
		t.Fatal(err)
	}
	undone, err := log2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if undone != 1 {
		t.Fatalf("undone = %d", undone)
	}
	v, err := sys2.Load(a)
	if err != nil || v != 100 {
		t.Fatalf("a = %d after recovery, want 100", v)
	}
}

func TestSystemParallel(t *testing.T) {
	sys, _ := NewSystem(Options{Scheme: TT})
	p, _ := sys.Create("shared", 1<<20)
	o, _ := p.Alloc(64)
	end, err := sys.Parallel(4, func(tid int, ctx *core.ThreadCtx) error {
		for i := 0; i < 10; i++ {
			if err := ctx.Attach(p, ReadWrite); err != nil {
				return err
			}
			if err := ctx.Store(o, uint64(tid)); err != nil {
				return err
			}
			ctx.Compute(2000)
			if err := ctx.Detach(p); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if end == 0 {
		t.Fatal("no time elapsed")
	}
	st := sys.Runtime().Finish(end)
	if st.Counts.SilentOps == 0 {
		t.Fatal("no combining across threads")
	}
}

func TestOptionsDefaults(t *testing.T) {
	cfg := Options{Scheme: MM}.config()
	if cfg.TEWTarget != 0 {
		t.Fatal("MM must have no TEW target")
	}
	cfg = Options{Scheme: TT, TEWMicros: 4}.config()
	if cfg.TEWTarget == 0 {
		t.Fatal("TT lost its TEW target")
	}
}

// --- experiment smoke tests (tiny sizes; full sizes run in benches) ---------

var tiny = ExpOpts{Ops: 400, Scale: 1, Seed: 1}

func TestTable3Shape(t *testing.T) {
	rows, err := Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TTEWAvg < 20 || r.TTEWAvg > 50 {
			t.Fatalf("%s: TT avg EW %.1fus not near 40us target", r.Prog, r.TTEWAvg)
		}
		if r.TEW > 2*2 {
			t.Fatalf("%s: TEW %.2fus far above 2us target", r.Prog, r.TEW)
		}
		if r.TER >= r.TTER {
			t.Fatalf("%s: TER %.3f not below ER %.3f", r.Prog, r.TER, r.TTER)
		}
		if r.Silent < 50 {
			t.Fatalf("%s: silent %.1f%% too low", r.Prog, r.Silent)
		}
		if r.MMEWAvg >= 40 {
			t.Fatalf("%s: MM avg EW %.1f should under-fill target", r.Prog, r.MMEWAvg)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "redis") {
		t.Fatal("format output incomplete")
	}
}

func TestFigure9Shape(t *testing.T) {
	bars, err := Figure9(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 6*5 {
		t.Fatalf("bars = %d", len(bars))
	}
	// Per workload: TM >= MM (paper: TM ~50% above MM) and TT < MM.
	byKey := map[string]OverheadBar{}
	for _, b := range bars {
		byKey[b.Prog+b.Label] = b
	}
	for _, mk := range []string{"echo", "ycsb", "tpcc", "ctree", "hashmap", "redis"} {
		tt := byKey[mk+"TT(40us)"]
		mm := byKey[mk+"MM(40us)"]
		tm := byKey[mk+"TM(40us)"]
		if !(tt.Total < mm.Total && mm.Total < tm.Total) {
			t.Fatalf("%s: ordering TT %.3f < MM %.3f < TM %.3f violated",
				mk, tt.Total, mm.Total, tm.Total)
		}
		t160 := byKey[mk+"TT(160us)"]
		if t160.Total > tt.Total+0.01 {
			t.Fatalf("%s: 160us EW (%.3f) costlier than 40us (%.3f)", mk, t160.Total, tt.Total)
		}
	}
	if s := FormatOverheads("Figure 9", bars); !strings.Contains(s, "attach") {
		t.Fatal("format output incomplete")
	}
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	totalPMOs := 0
	for _, r := range rows {
		totalPMOs += r.PMOs
		if r.Silent < 80 {
			t.Fatalf("%s: silent %.1f%%, paper reports ~97%%", r.Prog, r.Silent)
		}
		if r.TER >= 1 {
			t.Fatalf("%s: TER %.3f out of range", r.Prog, r.TER)
		}
	}
	if totalPMOs != 4+2+3+3+6 {
		t.Fatalf("PMO counts = %d", totalPMOs)
	}
	if s := FormatTable4(rows); !strings.Contains(s, "xz") {
		t.Fatal("format output incomplete")
	}
}

func TestFigure10And11Shape(t *testing.T) {
	f10, err := Figure10(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(f10) != 5*5 {
		t.Fatalf("figure10 bars = %d", len(f10))
	}
	f11, err := Figure11(tiny)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]OverheadBar{}
	for _, b := range f11 {
		byKey[b.Prog+b.Label] = b
	}
	for _, k := range []string{"mcf", "lbm", "imagick", "nab", "xz"} {
		basic := byKey[k+"Basic(40us)"]
		cond := byKey[k+"+Cond(40us)"]
		cb := byKey[k+"+CB(40us)"]
		if !(cb.Total <= cond.Total && cond.Total < basic.Total) {
			t.Fatalf("%s: ablation ordering basic %.2f > +cond %.2f >= +cb %.2f violated",
				k, basic.Total, cond.Total, cb.Total)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rows := Table5(0)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TERPPct >= r.MERRPct {
			t.Fatalf("TERP %.5f not below MERR %.5f", r.TERPPct, r.MERRPct)
		}
		ratio := r.MERRPct / r.TERPPct
		if ratio < 20 || ratio > 40 {
			t.Fatalf("reduction %.1fx, paper reports ~30x", ratio)
		}
	}
	if s := FormatTable5(rows); !strings.Contains(s, "Table V") {
		t.Fatal("format output incomplete")
	}
}

func TestTable6Shape(t *testing.T) {
	res, err := Table6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.DisarmedTERP() < 0.8 {
			t.Fatalf("%s: TERP disarms only %.1f%%", r.Suite, 100*r.DisarmedTERP())
		}
		if r.DisarmedTERP() <= r.DisarmedMERR() {
			t.Fatalf("%s: TERP must disarm more than MERR", r.Suite)
		}
	}
	if res.SpecCensus.CoveredFraction() != 1 {
		t.Fatalf("census coverage = %.2f", res.SpecCensus.CoveredFraction())
	}
	if s := FormatTable6(res); !strings.Contains(s, "WHISPER") {
		t.Fatal("format output incomplete")
	}
}

func TestFigure8Shape(t *testing.T) {
	res, err := Figure8(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.AtLeastTEW < 0.85 {
		t.Fatalf("P(dead>=2us) = %.2f", res.AtLeastTEW)
	}
	if s := FormatFigure8(res); !strings.Contains(s, "Figure 8") {
		t.Fatal("format output incomplete")
	}
}

func TestSemanticsStudyShape(t *testing.T) {
	r := SemanticsStudy()
	if len(r.Nested) != 4 || len(r.Parallel) != 4 {
		t.Fatalf("rows = %d/%d", len(r.Nested), len(r.Parallel))
	}
	byName := map[string]int{}
	for i, row := range r.Nested {
		byName[row.Policy] = i
	}
	// Basic errors on both traces; EW-conscious on neither.
	if r.Nested[byName["basic"]].Errors == 0 {
		t.Fatal("basic accepted nesting")
	}
	if r.Nested[byName["ew-conscious"]].Errors != 0 {
		t.Fatal("ew-conscious errored on nesting")
	}
	if r.Parallel[byName["ew-conscious"]].Errors != 0 {
		t.Fatal("ew-conscious errored on concurrency")
	}
	// FCFS denies the program's own accesses; EW-conscious never does.
	if r.Nested[byName["fcfs"]].DeniedAccesses == 0 {
		t.Fatal("fcfs denied nothing")
	}
	if r.Nested[byName["ew-conscious"]].DeniedAccesses != 0 {
		t.Fatal("ew-conscious denied accesses")
	}
	if s := FormatSemanticsStudy(r); !strings.Contains(s, "ew-conscious") {
		t.Fatal("format output incomplete")
	}
}

func TestNamespacePermissionsEnforcedAtAttach(t *testing.T) {
	sys, _ := NewSystem(Options{Scheme: TT})
	// Alice creates a world-readable PMO.
	p, err := sys.CreateAs("alice", "shared.config", 1<<20,
		pmoModeRead|pmoModeWrite|pmoModeOtherRead)
	if err != nil {
		t.Fatal(err)
	}
	// As alice: full access.
	sys.SetUser("alice")
	if err := sys.Attach(p, ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(8)
	if err := sys.Store(o, 7); err != nil {
		t.Fatal(err)
	}
	if err := sys.Detach(p); err != nil {
		t.Fatal(err)
	}
	// As bob: read-only attach works, write attach is denied at the
	// namespace level (before any window even opens).
	sys.SetUser("bob")
	if err := sys.Attach(p, ReadWrite); err == nil {
		t.Fatal("bob attached rw to a world-read PMO")
	}
	if err := sys.Attach(p, Read); err != nil {
		t.Fatalf("bob read attach: %v", err)
	}
	if v, err := sys.Load(o); err != nil || v != 7 {
		t.Fatalf("bob read = %d, %v", v, err)
	}
	if err := sys.Detach(p); err != nil {
		t.Fatal(err)
	}
	// A world-readable PMO is openable by anyone (eve may read it)...
	if _, err := sys.OpenAs("eve", "shared.config"); err != nil {
		t.Fatalf("eve open world-readable: %v", err)
	}
	// ...but a private PMO is not even visible to others.
	if _, err := sys.CreateAs("alice", "private.keys", 1<<16,
		pmoModeRead|pmoModeWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OpenAs("eve", "private.keys"); err == nil {
		t.Fatal("eve opened alice's private PMO")
	}
	// Alice destroys it; the name is gone.
	if err := sys.Destroy("alice", "shared.config"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Open("shared.config"); err == nil {
		t.Fatal("destroyed PMO still opens")
	}
}

func TestEWSweepFrontier(t *testing.T) {
	rows, err := EWSweep(ExpOpts{Ops: 300}, []float64{40, 160})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Bigger windows cost less and concede more.
	if rows[1].OverheadPct >= rows[0].OverheadPct {
		t.Fatalf("overhead did not fall: %.2f -> %.2f",
			rows[0].OverheadPct, rows[1].OverheadPct)
	}
	if rows[1].MERRSuccPct <= rows[0].MERRSuccPct {
		t.Fatal("attack success did not grow with window size")
	}
	for _, r := range rows {
		if r.TERPSuccPct >= r.MERRSuccPct {
			t.Fatalf("TERP not below MERR at %.0fus", r.EWMicros)
		}
	}
	if s := FormatEWSweep(rows); !strings.Contains(s, "frontier") {
		t.Fatal("format output incomplete")
	}
}
