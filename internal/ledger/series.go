package ledger

import (
	"sort"

	"repro/internal/report"
)

// Series converts a run history into the report layer's trend input:
// one series per (spec hash, metric), points in append order. Records
// with different spec hashes never share a series — a spec change is
// a new trajectory, not a step in an old one.
func Series(records []Record) []report.TrendSeries {
	type group struct {
		runs   int
		series map[string]*report.TrendSeries
	}
	groups := map[string]*group{}
	var order []string
	for _, rec := range records {
		g := groups[rec.SpecHash]
		if g == nil {
			g = &group{series: map[string]*report.TrendSeries{}}
			groups[rec.SpecHash] = g
			order = append(order, rec.SpecHash)
		}
		add := func(metric string, v float64) {
			s := g.series[metric]
			if s == nil {
				s = &report.TrendSeries{
					Experiment: rec.Experiment,
					SpecHash:   rec.SpecHash,
					Metric:     metric,
				}
				g.series[metric] = s
			}
			s.Points = append(s.Points, report.TrendPoint{Run: g.runs, Value: v})
		}
		for k, v := range rec.Metrics {
			add(k, float64(v))
		}
		for k, v := range rec.Values {
			add(k, v)
		}
		if rec.WallMS > 0 {
			add("wall/run_ms", rec.WallMS)
		}
		g.runs++
	}
	var out []report.TrendSeries
	for _, hash := range order {
		g := groups[hash]
		names := make([]string, 0, len(g.series))
		for name := range g.series {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			out = append(out, *g.series[name])
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		if out[i].SpecHash != out[j].SpecHash {
			return out[i].SpecHash < out[j].SpecHash
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}
