package ledger

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	terp "repro"
	"repro/internal/obs"
)

func testRecord(i int) Record {
	return Record{
		Source:     "test",
		SpecHash:   fmt.Sprintf("hash%02d", i%3),
		Experiment: "table3",
		Seed:       int64(i),
		Metrics:    map[string]uint64{"sim/cycles/app": uint64(1000 + i)},
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	recs, skipped, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 5 {
		t.Fatalf("got %d records, %d skipped; want 5, 0", len(recs), skipped)
	}
	for i, r := range recs {
		if r.Seed != int64(i) {
			t.Fatalf("record %d out of append order: seed %d", i, r.Seed)
		}
		if r.Schema != SchemaVersion || r.Time == "" || r.Build == "" {
			t.Fatalf("record %d not stamped: %+v", i, r)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Package-level Read sees the same history after the writer is gone.
	recs2, skipped2, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped2 != 0 || !reflect.DeepEqual(recs, recs2) {
		t.Fatalf("Read disagrees with Records: %d records, %d skipped", len(recs2), skipped2)
	}
}

func TestReadMissingFile(t *testing.T) {
	_, _, err := Read(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err == nil {
		t.Fatal("Read of a missing ledger should error")
	}
}

func TestTornAndMalformedLinesSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	// A torn trailing write (crash mid-append) and a hand-mangled line.
	if _, err := l.f.WriteString("not json at all\n{\"schema\":1,\"trunc"); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || skipped != 2 {
		t.Fatalf("got %d records, %d skipped; want 1 record, 2 skipped", len(recs), skipped)
	}
	l.Close()
}

func TestFutureSchemaSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	future := testRecord(1)
	future.Schema = SchemaVersion + 1
	if err := l.Append(future); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || skipped != 1 {
		t.Fatalf("got %d records, %d skipped; want the future-schema record skipped", len(recs), skipped)
	}
	l.Close()
}

func TestRotationPreservesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := Open(path, Options{MaxBytes: 400})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected a rotated generation: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() > 400 {
		t.Fatalf("active file %d bytes exceeds MaxBytes", st.Size())
	}
	recs, _, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	// One rotated generation is kept, so the tail must be intact and in
	// order even though the oldest records may have aged out.
	if len(recs) == 0 || len(recs) == n {
		t.Fatalf("got %d records; want a rotated subset of %d", len(recs), n)
	}
	last := recs[len(recs)-1]
	if last.Seed != n-1 {
		t.Fatalf("latest record lost: seed %d, want %d", last.Seed, n-1)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seed != recs[i-1].Seed+1 {
			t.Fatalf("append order broken at %d: %d after %d", i, recs[i].Seed, recs[i-1].Seed)
		}
	}
	l.Close()
}

func TestCompactKeepsLastPerSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	// Seed a rotated generation by hand so compaction has one to fold in.
	const n = 12 // spec hashes cycle over 3 keys → 4 records each
	var rotated []byte
	for i := 0; i < n/2; i++ {
		r := testRecord(i)
		r.Schema = SchemaVersion
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		rotated = append(append(rotated, line...), '\n')
	}
	if err := os.WriteFile(path+".1", rotated, 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := n / 2; i < n; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); !os.IsNotExist(err) {
		t.Fatalf("compaction should fold the rotated generation away: %v", err)
	}
	recs, skipped, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(recs) != 6 {
		t.Fatalf("got %d records, %d skipped; want 2 per spec hash = 6", len(recs), skipped)
	}
	perKey := map[string]int{}
	for i, r := range recs {
		perKey[r.SpecHash]++
		if i > 0 && recs[i].Seed < recs[i-1].Seed {
			t.Fatalf("compaction broke append order at %d", i)
		}
	}
	for k, c := range perKey {
		if c != 2 {
			t.Fatalf("spec %s kept %d records, want 2", k, c)
		}
	}
	// The ledger stays appendable after compaction.
	if err := l.Append(testRecord(n)); err != nil {
		t.Fatal(err)
	}
	recs, _, err = l.Records()
	if err != nil || len(recs) != 7 {
		t.Fatalf("append after compact: %d records, err %v", len(recs), err)
	}
	l.Close()
}

func TestSpecHashIdentity(t *testing.T) {
	base := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 500, Scale: 1, Seed: 7}}

	// Defaulted and explicit option spellings of the same run hash equal.
	zeroOpts := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 500, Seed: 7}}
	if SpecHash(base) != SpecHash(zeroOpts) {
		t.Fatal("defaulted Scale should hash like the explicit default")
	}

	// Parallelism and progress callbacks never change results, so they
	// never change the hash.
	par := base
	par.Parallel = 8
	par.Progress = func(done, total int, cell string) {}
	if SpecHash(base) != SpecHash(par) {
		t.Fatal("Parallel/Progress must not perturb the spec hash")
	}

	// Anything that changes the grid changes the hash.
	for _, mut := range []terp.ExperimentSpec{
		{Name: "fig8", Opts: base.Opts},
		{Name: "table3", Opts: terp.ExpOpts{Ops: 501, Seed: 7}},
		{Name: "table3", Opts: terp.ExpOpts{Ops: 500, Seed: 8}},
		{Name: "table3", Opts: terp.ExpOpts{Ops: 500, Scale: 2, Seed: 7}},
	} {
		if SpecHash(base) == SpecHash(mut) {
			t.Fatalf("spec %+v should hash differently from the base", mut)
		}
	}

	// Stable across calls and round-trippable as a hex key.
	h := SpecHash(base)
	if h != SpecHash(base) || len(h) != 16 {
		t.Fatalf("hash %q not stable 16-hex", h)
	}
}

func TestFromGridDeterministic(t *testing.T) {
	spec := terp.ExperimentSpec{
		Name: "table3",
		Opts: terp.ExpOpts{Ops: 300, Seed: 7},
		Obs:  obs.Config{Metrics: true},
	}
	g, err := terp.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	a := FromGrid("terpbench", spec, g)
	b := FromGrid("terpbench", spec, g)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("FromGrid over the same grid must return equal records")
	}
	if a.Time != "" || a.Build != "" || a.WallMS != 0 || a.JobID != "" {
		t.Fatalf("FromGrid must leave host-dependent fields zero: %+v", a)
	}
	if a.SpecHash == "" || a.Experiment != "table3" || a.Cells == 0 {
		t.Fatalf("identity fields missing: %+v", a)
	}
	if len(a.Metrics) == 0 {
		t.Fatal("a metrics-collecting run should roll up obs counters")
	}
	if len(a.Values) == 0 {
		t.Fatal("table3 should roll up exposure values")
	}
	for _, key := range []string{"expo/tt/tew_us/mean", "expo/tt/tew_us/p99", "expo/tt/ter/mean"} {
		if _, ok := a.Values[key]; !ok {
			t.Fatalf("missing exposure rollup %s (have %v)", key, a.MetricNames())
		}
	}
	// The record survives a JSONL round-trip intact.
	line, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Record
	if err := json.Unmarshal(line, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, back) {
		t.Fatal("record changed across a JSON round-trip")
	}
}

func TestSeriesGroupsBySpecHash(t *testing.T) {
	var recs []Record
	for i := 0; i < 6; i++ {
		r := testRecord(i)
		r.SpecHash = fmt.Sprintf("hash%d", i%2)
		r.WallMS = float64(10 + i)
		recs = append(recs, r)
	}
	series := Series(recs)
	if len(series) == 0 {
		t.Fatal("no series built")
	}
	for _, s := range series {
		if s.Metric == "sim/cycles/app" && len(s.Points) != 3 {
			t.Fatalf("series %s/%s has %d points, want 3", s.SpecHash, s.Metric, len(s.Points))
		}
		for i, p := range s.Points {
			if i > 0 && p.Run <= s.Points[i-1].Run {
				t.Fatalf("series %s/%s runs not increasing", s.SpecHash, s.Metric)
			}
		}
	}
	// Wall-clock series appear under wall/run_ms.
	found := false
	for _, s := range series {
		if s.Metric == "wall/run_ms" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing wall/run_ms series")
	}
}
