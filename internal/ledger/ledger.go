package ledger

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// Options tunes a Ledger.
type Options struct {
	// MaxBytes rotates the active file to <path>.1 (replacing any
	// previous rotation) before an append would push it past this
	// size; <= 0 disables rotation.
	MaxBytes int64
}

// Ledger is the append-only JSONL run store. Crash safety comes from
// the format, not from fsync choreography: every record is a single
// buffered line written in one call on an O_APPEND descriptor, and
// readers tolerate a torn or malformed trailing line (a crash mid-
// append loses at most the record being written, never the history
// before it).
type Ledger struct {
	path string
	opt  Options

	mu   sync.Mutex
	f    *os.File
	size int64
}

// Open opens (creating if needed) the ledger at path.
func Open(path string, opt Options) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ledger: stat: %w", err)
	}
	return &Ledger{path: path, opt: opt, f: f, size: st.Size()}, nil
}

// Path returns the active file path.
func (l *Ledger) Path() string { return l.path }

// rotatedPath is the single rotated generation kept next to the
// active file.
func (l *Ledger) rotatedPath() string { return l.path + ".1" }

// buildID is the toolchain stamp Append writes into records that
// carry none.
var buildID = runtime.Version()

// Append stamps and writes one record as a single JSONL line. It
// fills Schema, Time and Build when the caller left them zero; the
// record is otherwise written as given.
func (l *Ledger) Append(r Record) error {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	if r.Time == "" {
		r.Time = time.Now().UTC().Format(time.RFC3339)
	}
	if r.Build == "" {
		r.Build = buildID
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("ledger: encoding record: %w", err)
	}
	line = append(line, '\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("ledger: closed")
	}
	if l.opt.MaxBytes > 0 && l.size > 0 && l.size+int64(len(line)) > l.opt.MaxBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(line)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("ledger: appending record: %w", err)
	}
	return nil
}

// rotateLocked moves the active file to the rotated path and starts a
// fresh one; l.mu held.
func (l *Ledger) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("ledger: rotate close: %w", err)
	}
	if err := os.Rename(l.path, l.rotatedPath()); err != nil {
		return fmt.Errorf("ledger: rotate rename: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: rotate reopen: %w", err)
	}
	l.f, l.size = f, 0
	return nil
}

// Records reads the full history in append order — the rotated
// generation (if any) first, then the active file — and the count of
// lines skipped (torn trailing writes, malformed lines, records from
// a future schema).
func (l *Ledger) Records() ([]Record, int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	skipped := 0
	for _, p := range []string{l.rotatedPath(), l.path} {
		recs, sk, err := readFile(p)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, recs...)
		skipped += sk
	}
	return out, skipped, nil
}

// Read reads a ledger file (and its rotated sibling <path>.1, if
// present) without opening it for appends — the terpreport -trend
// path.
func Read(path string) ([]Record, int, error) {
	var out []Record
	skipped := 0
	for _, p := range []string{path + ".1", path} {
		recs, sk, err := readFile(p)
		if err != nil {
			return nil, 0, err
		}
		out = append(out, recs...)
		skipped += sk
	}
	if out == nil && skipped == 0 {
		if _, err := os.Stat(path); err != nil {
			return nil, 0, fmt.Errorf("ledger: %w", err)
		}
	}
	return out, skipped, nil
}

// readFile parses one JSONL file; a missing file is an empty history.
func readFile(path string) ([]Record, int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("ledger: read open: %w", err)
	}
	defer f.Close()
	var out []Record
	skipped := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil || r.Schema > SchemaVersion || r.Schema <= 0 {
			// Torn trailing write, hand-mangled line, or a record from
			// a newer build: skip rather than fail the whole history.
			skipped++
			continue
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("ledger: scanning %s: %w", path, err)
	}
	return out, skipped, nil
}

// Compact rewrites the history keeping only the most recent keep
// records per spec hash, folds the rotated generation back in, and
// removes it. The rewrite goes through a temp file + rename so a
// crash mid-compaction leaves either the old or the new history,
// never a partial one.
func (l *Ledger) Compact(keep int) error {
	if keep <= 0 {
		return fmt.Errorf("ledger: compact keep must be positive, got %d", keep)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("ledger: closed")
	}
	var all []Record
	for _, p := range []string{l.rotatedPath(), l.path} {
		recs, _, err := readFile(p)
		if err != nil {
			return err
		}
		all = append(all, recs...)
	}
	// Count per key, then emit each record only once its key is within
	// the final keep window — preserving append order.
	total := map[string]int{}
	for _, r := range all {
		total[r.SpecHash]++
	}
	seen := map[string]int{}
	var kept []Record
	for _, r := range all {
		seen[r.SpecHash]++
		if total[r.SpecHash]-seen[r.SpecHash] < keep {
			kept = append(kept, r)
		}
	}

	tmp := l.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: compact open: %w", err)
	}
	w := bufio.NewWriter(f)
	var size int64
	for _, r := range kept {
		line, err := json.Marshal(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("ledger: compact encode: %w", err)
		}
		n, err := w.Write(append(line, '\n'))
		size += int64(n)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("ledger: compact write: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ledger: compact flush: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ledger: compact close: %w", err)
	}
	l.f.Close()
	if err := os.Rename(tmp, l.path); err != nil {
		return fmt.Errorf("ledger: compact rename: %w", err)
	}
	os.Remove(l.rotatedPath())
	nf, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: compact reopen: %w", err)
	}
	l.f, l.size = nf, size
	return nil
}

// Close releases the file; further Appends fail.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
