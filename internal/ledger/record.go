// Package ledger is the durable run history: an append-only,
// crash-safe JSONL store of run records, one per completed job or
// bench run. Records carry the spec identity hash, the experiment's
// cell-metric rollups (sim cycles by account, exposure percentiles,
// crash/litmus counts), wall-clock stats and build info — everything
// the trend analytics in internal/report and the terpd history/compare
// endpoints need to reason about runs long after the producing process
// exited.
//
// The ledger observes and never steers: nothing read from it feeds
// back into scheduling or simulation, so grids stay byte-identical
// with a ledger attached, detached, or being read concurrently.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"math"
	"sort"

	terp "repro"
	"repro/internal/stats"
)

// SchemaVersion is the record-schema generation this build writes.
// Readers skip records from a newer generation instead of
// half-understanding them; bump it for incompatible changes (renamed
// keys, changed units), never for purely additive evolution.
const SchemaVersion = 1

// Record is one completed run. Metrics holds integer rollups (the
// obs totals counters plus crash/litmus counts); Values holds float
// rollups (exposure-window percentiles, sweep means). Keys are stable
// slash-separated names so trend series survive schema growth.
type Record struct {
	// Schema is the record-schema generation (SchemaVersion).
	Schema int `json:"schema"`
	// Time is the append instant, RFC3339 UTC. Informational only —
	// nothing downstream orders or gates on it.
	Time string `json:"time,omitempty"`
	// Source names the producer: "terpd", "terpbench" or "terpreport".
	Source string `json:"source"`
	// JobID and Tenant identify the terpd job (empty for CLI runs).
	JobID  string `json:"jobId,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// SpecHash keys the record's trend series: equal hashes mean the
	// specs produce byte-identical grids (see SpecHash).
	SpecHash string `json:"specHash"`
	// Experiment, Seed, Ops, Scale echo the effective spec.
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Ops        int    `json:"ops"`
	Scale      int    `json:"scale"`
	// Cells is the spec's enumerated cell count (0 for pure analysis).
	Cells int `json:"cells"`
	// Metrics are the integer rollups: every obs totals counter (when
	// the run collected metrics) plus crash/* and litmus/* counts.
	Metrics map[string]uint64 `json:"metrics,omitempty"`
	// Values are the float rollups: exposure-window percentiles from
	// the Table III rows and sweep means from the EW frontier.
	Values map[string]float64 `json:"values,omitempty"`
	// WallMS is the host-side run duration in milliseconds (0 when the
	// producer did not measure it). Machine-dependent, never gated on
	// by default.
	WallMS float64 `json:"wallMs,omitempty"`
	// Build identifies the producing toolchain (go version).
	Build string `json:"build,omitempty"`
}

// SpecHash returns the spec's identity hash: a truncated sha256 over
// the canonical wire form (see terp.ExperimentSpec.Canonical). Two
// specs hash equal exactly when they produce byte-identical grids, so
// the hash is the ledger's trend-series key and the compare
// endpoint's "same experiment?" test.
func SpecHash(spec terp.ExperimentSpec) string {
	buf, err := json.Marshal(spec.Canonical())
	if err != nil {
		// ExperimentSpec has no unmarshalable fields; keep the
		// signature hash-like even if that ever changes.
		return "unhashable"
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:8])
}

// FromGrid builds the deterministic part of a run record from a
// finished grid: identity, spec echo, and the metric/value rollups.
// Time, Build, JobID/Tenant and WallMS are the caller's (or Append's)
// to fill — two calls over the same grid return equal records.
func FromGrid(source string, spec terp.ExperimentSpec, g *terp.Grid) Record {
	canon := spec.Canonical()
	cells, _ := canon.CellCount()
	r := Record{
		Schema:     SchemaVersion,
		Source:     source,
		SpecHash:   SpecHash(spec),
		Experiment: g.Name,
		Seed:       g.Opts.Seed,
		Ops:        g.Opts.Ops,
		Scale:      g.Opts.Scale,
		Cells:      cells,
		Metrics:    map[string]uint64{},
		Values:     map[string]float64{},
	}
	if g.Obs != nil && g.Obs.Totals != nil {
		for _, name := range g.Obs.Totals.Names() {
			r.Metrics[name] = g.Obs.Totals.Get(name)
		}
	}
	rollupWhisper(g.Whisper, r.Values)
	rollupFrontier(g.Frontier, r.Values)
	rollupCrash(g.Crash, r.Metrics)
	rollupLitmus(g.Litmus, r.Metrics)
	if len(r.Metrics) == 0 {
		r.Metrics = nil
	}
	if len(r.Values) == 0 {
		r.Values = nil
	}
	return r
}

// rollupWhisper distills the Table III exposure rows: means and high
// percentiles of the thread-level and process-level windows, and the
// MERR baseline for contrast. Keys follow expo/<scheme>/<figure>/<agg>.
func rollupWhisper(rows []terp.WhisperRow, out map[string]float64) {
	if len(rows) == 0 {
		return
	}
	collect := func(f func(terp.WhisperRow) float64) []float64 {
		xs := make([]float64, len(rows))
		for i, r := range rows {
			xs[i] = f(r)
		}
		return xs
	}
	put := func(key string, xs []float64, agg string) {
		switch agg {
		case "mean":
			out[key+"/mean"] = stats.Mean(xs)
		case "p99":
			out[key+"/p99"] = stats.Percentile(xs, 99)
		case "max":
			m := math.Inf(-1)
			for _, x := range xs {
				m = math.Max(m, x)
			}
			out[key+"/max"] = m
		}
	}
	tew := collect(func(r terp.WhisperRow) float64 { return r.TEW })
	put("expo/tt/tew_us", tew, "mean")
	put("expo/tt/tew_us", tew, "p99")
	ter := collect(func(r terp.WhisperRow) float64 { return r.TER })
	put("expo/tt/ter", ter, "mean")
	put("expo/tt/ter", ter, "p99")
	put("expo/tt/ew_avg_us", collect(func(r terp.WhisperRow) float64 { return r.TTEWAvg }), "mean")
	put("expo/tt/ew_max_us", collect(func(r terp.WhisperRow) float64 { return r.TTEWMax }), "max")
	put("expo/mm/ew_avg_us", collect(func(r terp.WhisperRow) float64 { return r.MMEWAvg }), "mean")
	put("expo/mm/er", collect(func(r terp.WhisperRow) float64 { return r.MMER }), "mean")
}

// rollupFrontier distills the EW sweep: mean overhead and probe
// success across the sweep points.
func rollupFrontier(rows []terp.EWSweepRow, out map[string]float64) {
	if len(rows) == 0 {
		return
	}
	var over, succT, succM []float64
	for _, r := range rows {
		over = append(over, r.OverheadPct)
		succT = append(succT, r.TERPSuccPct)
		succM = append(succM, r.MERRSuccPct)
	}
	out["ewsweep/overhead_pct/mean"] = stats.Mean(over)
	out["ewsweep/terp_succ_pct/mean"] = stats.Mean(succT)
	out["ewsweep/merr_succ_pct/mean"] = stats.Mean(succM)
}

// rollupCrash sums the fault-injection matrix.
func rollupCrash(rows []terp.CrashRow, out map[string]uint64) {
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		out["crash/points"] += uint64(r.Points)
		out["crash/checked"] += uint64(r.Checked)
		out["crash/failures"] += uint64(r.Failures)
	}
}

// rollupLitmus sums the persistency-litmus matrix.
func rollupLitmus(rows []terp.LitmusRow, out map[string]uint64) {
	if len(rows) == 0 {
		return
	}
	for _, r := range rows {
		out["litmus/programs"] += uint64(r.Programs)
		out["litmus/modelStates"] += uint64(r.ModelStates)
		out["litmus/modelOnly"] += uint64(r.ModelOnly)
		out["litmus/violations"] += uint64(r.Violations)
	}
}

// MetricNames returns the record's metric and value keys, sorted, for
// deterministic iteration.
func (r Record) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics)+len(r.Values))
	for k := range r.Metrics {
		names = append(names, k)
	}
	for k := range r.Values {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
