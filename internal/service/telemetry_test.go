package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	terp "repro"
)

// scrape fetches /metrics and parses the exposition into a map of
// "name{labels}" -> value.
func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	series := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		series[line[:i]] = v
	}
	return series
}

// TestMetricsScrapeEndToEnd: boot the server, run a job, and scrape
// /metrics twice — the core series exist, count the work done, and the
// request counters are monotonic between scrapes.
func TestMetricsScrapeEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 200}}
	st, resp := submit(t, hs.URL, "acme", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	end := waitTerminal(t, hs.URL, st.ID)
	if end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}
	if end.Total == 0 {
		t.Fatal("table3 job reported zero cells — cell counters below would be vacuous")
	}

	first := scrape(t, hs.URL)
	for _, name := range []string{
		`terpd_http_requests_total{route="POST /v1/jobs",method="POST",status="202"}`,
		`terpd_http_request_seconds_bucket{route="POST /v1/jobs",le="+Inf"}`,
		`terpd_queue_depth{tenant="acme"}`,
		"terpd_jobs_submitted_total",
		`terpd_jobs_finished_total{state="done"}`,
		`terpd_tenant_cells_total{tenant="acme"}`,
		"terpd_pool_workers",
		"terpd_pool_cells_completed_total",
		"terpd_queue_wait_seconds_count",
		"terpd_job_run_seconds_count",
		"terpd_go_goroutines",
	} {
		if _, ok := first[name]; !ok {
			t.Errorf("scrape missing series %s", name)
		}
	}
	if v := first["terpd_jobs_submitted_total"]; v != 1 {
		t.Errorf("jobs submitted = %v, want 1", v)
	}
	if v := first[`terpd_jobs_finished_total{state="done"}`]; v != 1 {
		t.Errorf("jobs finished done = %v, want 1", v)
	}
	if v := first["terpd_pool_workers"]; v != 2 {
		t.Errorf("pool workers = %v, want 2", v)
	}
	if v := first[`terpd_queue_depth{tenant="acme"}`]; v != 0 {
		t.Errorf("queue depth after completion = %v, want 0", v)
	}
	if v := first[`terpd_tenant_cells_total{tenant="acme"}`]; v != float64(end.Total) {
		t.Errorf("tenant cells = %v, want %d", v, end.Total)
	}
	if first["terpd_pool_cells_completed_total"] != float64(end.Total) {
		t.Errorf("pool completed cells = %v, want %d", first["terpd_pool_cells_completed_total"], end.Total)
	}

	// A second scrape observes the first: counters are monotonic.
	second := scrape(t, hs.URL)
	req := `terpd_http_requests_total{route="GET /metrics",method="GET",status="200"}`
	if second[req] < first[req]+1 {
		t.Errorf("metrics request counter not monotonic: %v then %v", first[req], second[req])
	}
	for name, v := range first {
		if !strings.Contains(name, "_total") {
			continue
		}
		if strings.HasPrefix(name, "terpd_go_") {
			continue // runtime totals can't regress either, but skip timing flake surface
		}
		if second[name] < v {
			t.Errorf("counter %s went backwards: %v -> %v", name, v, second[name])
		}
	}
}

// TestTelemetryDoesNotPerturbResults: a grid served while /metrics is
// being scraped in a tight loop is still byte-identical to the offline
// run — telemetry observes, it never feeds back into simulation.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 300, Seed: 1}}
	spec.Obs.Metrics = true
	g, err := terp.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}

	_, hs := newTestServer(t, Config{Workers: 4})
	st, resp := submit(t, hs.URL, "acme", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	stop := make(chan struct{})
	scraping := make(chan struct{})
	go func() {
		defer close(scraping)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(hs.URL + "/metrics")
			if err != nil {
				return
			}
			resp.Body.Close()
		}
	}()
	end := waitTerminal(t, hs.URL, st.ID)
	close(stop)
	<-scraping
	if end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}
	served, code := fetch(t, hs.URL+"/v1/jobs/"+st.ID+"/grid")
	if code != http.StatusOK {
		t.Fatalf("grid: HTTP %d", code)
	}
	if !bytes.Equal(served, offline) {
		t.Fatalf("served grid differs from offline run under scrape load (%d vs %d bytes)",
			len(served), len(offline))
	}
}

// TestTraceHasWallTrack: a served trace carries both the sim-cycle
// tracks and the wall-clock job-lifecycle track in one document.
func TestTraceHasWallTrack(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 300}}
	spec.Obs.Trace = true
	spec.Obs.Metrics = true
	st, _ := submit(t, hs.URL, "acme", spec)
	if end := waitTerminal(t, hs.URL, st.ID); end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}

	raw, code := fetch(t, hs.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not Chrome-trace JSON: %v", err)
	}
	wallPid := -1
	simEvents := 0
	for _, e := range doc.TraceEvents {
		if e.Name == "process_name" && e.Args["name"] == "wall-clock (host)" {
			wallPid = e.Pid
		}
		if e.Cat != "wall" && e.Cat != "__metadata" {
			simEvents++
		}
	}
	if wallPid < 0 {
		t.Fatal("trace has no wall-clock (host) process")
	}
	if simEvents == 0 {
		t.Fatal("trace lost its sim-cycle events")
	}
	phases := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Pid == wallPid && e.Cat == "wall" {
			phases[e.Name] = true
		}
	}
	for _, want := range []string{"queued", "run", "serve"} {
		if !phases[want] {
			t.Errorf("wall track missing %q phase (got %v)", want, phases)
		}
	}
}

// TestStatsIncludesTelemetry: /v1/stats carries the pool snapshot and
// the full registry as JSON alongside the legacy counters.
func TestStatsIncludesTelemetry(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 200}}
	st, _ := submit(t, hs.URL, "acme", spec)
	if end := waitTerminal(t, hs.URL, st.ID); end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}

	raw, code := fetch(t, hs.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	var body statsBody
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Pool.Workers != 2 {
		t.Errorf("pool workers = %d, want 2", body.Pool.Workers)
	}
	if body.Pool.CompletedCells == 0 {
		t.Error("pool completed cells = 0 after a finished job")
	}
	if body.UptimeSec <= 0 {
		t.Errorf("uptime = %v, want > 0", body.UptimeSec)
	}
	if body.Telemetry == nil || len(body.Telemetry.Families) == 0 {
		t.Fatal("stats missing telemetry snapshot")
	}
	found := false
	for _, f := range body.Telemetry.Families {
		if f.Name == "terpd_jobs_submitted_total" {
			found = true
			if len(f.Metrics) != 1 || f.Metrics[0].Value != 1 {
				t.Errorf("submitted snapshot = %+v, want value 1", f.Metrics)
			}
		}
	}
	if !found {
		t.Error("telemetry snapshot missing terpd_jobs_submitted_total")
	}
}

// TestDashboardServed: the shell is self-contained HTML and the panel
// fragment renders the inline-SVG charts and latency table.
func TestDashboardServed(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 200}}
	st, _ := submit(t, hs.URL, "acme", spec)
	waitTerminal(t, hs.URL, st.ID)

	shell, code := fetch(t, hs.URL+"/dashboard")
	if code != http.StatusOK || !bytes.Contains(shell, []byte("<html")) {
		t.Fatalf("dashboard: HTTP %d, %d bytes", code, len(shell))
	}
	if bytes.Contains(shell, []byte("src=\"http")) || bytes.Contains(shell, []byte("href=\"http")) {
		t.Error("dashboard shell references external assets")
	}
	panel, code := fetch(t, hs.URL+"/dashboard/panel")
	if code != http.StatusOK {
		t.Fatalf("dashboard panel: HTTP %d", code)
	}
	for _, want := range []string{"<svg", "acme", "workers busy", "<table"} {
		if !bytes.Contains(panel, []byte(want)) {
			t.Errorf("dashboard panel missing %q:\n%s", want, panel)
		}
	}
}

// TestSSEGaugeTracksSubscribers: the subscriber gauge rises while a
// stream is open and falls back to zero when it closes.
func TestSSEGaugeTracksSubscribers(t *testing.T) {
	s, hs := newTestServer(t, Config{Workers: 1})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 20_000}}
	st, resp := submit(t, hs.URL, "acme", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	eresp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().SSE.Value() != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if v := s.Metrics().SSE.Value(); v != 1 {
		t.Errorf("SSE gauge with one open stream = %d, want 1", v)
	}
	eresp.Body.Close()
	for s.Metrics().SSE.Value() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if v := s.Metrics().SSE.Value(); v != 0 {
		t.Errorf("SSE gauge after close = %d, want 0", v)
	}
	waitTerminal(t, hs.URL, st.ID)
}
