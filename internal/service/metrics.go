package service

import (
	"time"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

// MetricPrefix namespaces every host-side series the service exports.
const MetricPrefix = "terpd_"

// Metrics is the service's wall-clock telemetry: the shared registry
// plus the handles the scheduler and HTTP layer update on their hot
// paths. It observes only — nothing here feeds back into scheduling or
// simulation, so grids stay byte-identical with telemetry on.
type Metrics struct {
	Registry *telemetry.Registry
	HTTP     *telemetry.HTTPMetrics
	SSE      *telemetry.Gauge // live /events subscribers

	submitted   *telemetry.Counter
	rejected    *telemetry.Counter
	finished    *telemetry.CounterVec // label: state (done/failed/canceled)
	queuedJobs  *telemetry.Gauge
	runningJobs *telemetry.Gauge
	queueDepth  *telemetry.GaugeVec   // label: tenant (queued+running)
	tenantJobs  *telemetry.CounterVec // label: tenant — completed jobs
	tenantCells *telemetry.CounterVec // label: tenant — cells of completed jobs
	queueWait   *telemetry.Histogram
	runSeconds  *telemetry.Histogram

	ledgerRecords *telemetry.Counter
	ledgerErrors  *telemetry.Counter
}

// NewMetrics builds the service metric set on a fresh registry and
// registers the Go runtime gauges.
func NewMetrics() *Metrics {
	r := telemetry.NewRegistry()
	m := &Metrics{
		Registry: r,
		HTTP:     telemetry.NewHTTPMetrics(r, MetricPrefix),
		SSE: r.Gauge(MetricPrefix+"http_sse_subscribers",
			"Live server-sent-event progress subscribers."),
		submitted: r.Counter(MetricPrefix+"jobs_submitted_total",
			"Jobs admitted past validation and admission control."),
		rejected: r.Counter(MetricPrefix+"jobs_rejected_total",
			"Submissions refused by per-tenant admission control (HTTP 429)."),
		finished: r.CounterVec(MetricPrefix+"jobs_finished_total",
			"Jobs retired, by terminal state.", "state"),
		queuedJobs: r.Gauge(MetricPrefix+"jobs_queued",
			"Jobs waiting behind their tenant's running job."),
		runningJobs: r.Gauge(MetricPrefix+"jobs_running",
			"Jobs currently executing on the pool."),
		queueDepth: r.GaugeVec(MetricPrefix+"queue_depth",
			"Queued+running jobs per tenant.", "tenant"),
		tenantJobs: r.CounterVec(MetricPrefix+"tenant_jobs_total",
			"Completed jobs per tenant.", "tenant"),
		tenantCells: r.CounterVec(MetricPrefix+"tenant_cells_total",
			"Simulated cells of completed jobs per tenant.", "tenant"),
		queueWait: r.Histogram(MetricPrefix+"queue_wait_seconds",
			"Wall-clock submit-to-start wait.", nil),
		runSeconds: r.Histogram(MetricPrefix+"job_run_seconds",
			"Wall-clock start-to-finish run duration.", nil),
		ledgerRecords: r.Counter(MetricPrefix+"ledger_records_total",
			"Run records appended to the ledger."),
		ledgerErrors: r.Counter(MetricPrefix+"ledger_errors_total",
			"Ledger appends that failed (the job itself is unaffected)."),
	}
	telemetry.RegisterRuntime(r, MetricPrefix)
	return m
}

// bindPool exports the pool's lock-free occupancy snapshot as gauges
// and monotonic counters, sampled at scrape time.
func (m *Metrics) bindPool(p *runner.Pool) {
	r := m.Registry
	r.GaugeFunc(MetricPrefix+"pool_workers", "Worker goroutines in the shared pool.",
		func() float64 { return float64(p.Stats().Workers) })
	r.GaugeFunc(MetricPrefix+"pool_busy_workers", "Workers currently executing a cell.",
		func() float64 { return float64(p.Stats().BusyWorkers) })
	r.GaugeFunc(MetricPrefix+"pool_active_jobs", "Jobs with unclaimed or in-flight cells.",
		func() float64 { return float64(p.Stats().ActiveJobs) })
	r.GaugeFunc(MetricPrefix+"pool_queued_cells", "Cells submitted and not yet claimed.",
		func() float64 { return float64(p.Stats().QueuedCells) })
	r.GaugeFunc(MetricPrefix+"pool_inflight_cells", "Cells claimed and not yet recorded.",
		func() float64 { return float64(p.Stats().InFlightCells) })
	r.CounterFunc(MetricPrefix+"pool_cells_claimed_total", "Cells ever claimed by a worker.",
		func() float64 { return float64(p.Stats().ClaimedCells) })
	r.CounterFunc(MetricPrefix+"pool_cells_completed_total", "Cells ever finished.",
		func() float64 { return float64(p.Stats().CompletedCells) })
}

// jobFinished accounts one retired job.
func (m *Metrics) jobFinished(j *Job, state State, runDur time.Duration) {
	m.finished.With(string(state)).Inc()
	if runDur > 0 {
		m.runSeconds.Observe(runDur.Seconds())
	}
	if state == StateDone {
		m.tenantJobs.With(j.Tenant).Inc()
		m.tenantCells.With(j.Tenant).Add(uint64(j.Total))
	}
}
