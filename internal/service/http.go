package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	terp "repro"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// TenantHeader names the request header that identifies the submitting
// tenant; absent means DefaultTenant.
const TenantHeader = "X-Terp-Tenant"

// DefaultTenant is the tenant for unlabelled requests.
const DefaultTenant = "default"

// maxSpecBytes bounds a submitted spec document; real specs are a few
// hundred bytes, so anything larger is garbage or abuse.
const maxSpecBytes = 1 << 20

// Config sizes a Server.
type Config struct {
	// Workers is the shared pool size (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds each tenant's queued+running jobs
	// (<= 0 selects DefaultQueueDepth).
	QueueDepth int
	// StoreCap bounds retained finished jobs (<= 0 selects
	// DefaultStoreCap).
	StoreCap int
	// AccessLog, when set, receives one callback per completed request
	// from the telemetry middleware — the same status/duration the
	// request histograms observed.
	AccessLog telemetry.AccessLog
	// Ledger, when set, receives one run record per completed job and
	// backs the /v1/history, /v1/history/trend and dashboard history
	// surfaces. Nil runs the server without durable history (the
	// endpoints answer 404).
	Ledger *ledger.Ledger
}

// Server ties the scheduler, result store, telemetry and HTTP API
// together.
type Server struct {
	sched   *Scheduler
	store   *Store
	metrics *Metrics
	ledger  *ledger.Ledger
	mux     *http.ServeMux
	handler http.Handler
	started time.Time
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	store := NewStore(cfg.StoreCap)
	m := NewMetrics()
	s := &Server{
		sched:   NewScheduler(cfg.Workers, cfg.QueueDepth, store, m, cfg.Ledger),
		store:   store,
		metrics: m,
		ledger:  cfg.Ledger,
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/grid", s.handleGrid)
	s.mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/history", s.handleHistory)
	s.mux.HandleFunc("GET /v1/history/trend", s.handleHistoryTrend)
	s.mux.HandleFunc("GET /v1/compare", s.handleCompare)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	s.mux.HandleFunc("GET /dashboard/panel", s.handleDashboardPanel)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// The middleware resolves the route label from the mux pattern (not
	// the raw URL), so series cardinality is bounded by the route table.
	s.handler = m.HTTP.Middleware(s.mux, func(r *http.Request) string {
		_, pattern := s.mux.Handler(r)
		return pattern
	}, cfg.AccessLog)
	return s
}

// Handler returns the HTTP API, instrumented by the telemetry
// middleware.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the server's telemetry set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Scheduler exposes the scheduler (tests, stats).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Close drains and shuts down the scheduler and its pool.
func (s *Server) Close() { s.sched.Close() }

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// handleSubmit admits one spec for the requesting tenant. The body is
// the versioned ExperimentSpec wire document — exactly what
// `terpbench -spec` reads — so offline and served runs share one
// format.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = DefaultTenant
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: reading spec: %w", err))
		return
	}
	spec, err := terp.ParseSpec(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, err := s.sched.Submit(tenant, spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.Status())
}

// lookup resolves the {id} path segment, writing the 404 itself.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *Job {
	j, err := s.sched.Lookup(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, ErrNotFound):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, ErrTerminal):
		writeJSON(w, http.StatusConflict, j.Status())
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

// finishedGrid fetches the job's grid, writing the conflict/404
// responses itself when the result is not servable.
func (s *Server) finishedGrid(w http.ResponseWriter, r *http.Request) (*Job, *terp.Grid, []byte) {
	j := s.lookup(w, r)
	if j == nil {
		return nil, nil, nil
	}
	grid, gridJSON := j.Grid()
	if grid == nil {
		st := j.Status()
		writeJSON(w, http.StatusConflict, st)
		return nil, nil, nil
	}
	return j, grid, gridJSON
}

// handleGrid serves the finished grid's canonical JSON — byte-identical
// to `terp.Run(spec).JSON()` offline. Finished grids are immutable, so
// the response carries a content-hash ETag and an immutable
// Cache-Control; a matching If-None-Match answers 304 with no body,
// which is what lets history/compare pollers and loadgen -verify
// re-fetches skip the (potentially large) grid payload.
func (s *Server) handleGrid(w http.ResponseWriter, r *http.Request) {
	j, _, gridJSON := s.finishedGrid(w, r)
	if gridJSON == nil {
		return
	}
	etag := j.GridETag()
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(gridJSON) //nolint:errcheck
}

// etagMatch reports whether an If-None-Match header matches the tag
// (comma-separated candidates, weak validators compared by content,
// "*" matches anything).
func etagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || strings.TrimPrefix(cand, "W/") == etag {
			return true
		}
	}
	return false
}

// handleReport serves the self-contained HTML run report built from the
// job's observability payload (informative but sparse when the spec ran
// without obs collection).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, grid, _ := s.finishedGrid(w, r)
	if grid == nil {
		return
	}
	title := fmt.Sprintf("terpd job %s (%s, tenant %s)", j.ID, grid.Name, j.Tenant)
	rep := report.Build(terp.ReportInput(title, []*terp.Grid{grid}), report.Options{})
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(report.HTML(rep)) //nolint:errcheck
}

// handleTrace serves the job's Perfetto-loadable Chrome trace: the
// deterministic sim-cycle tracks (empty when the spec ran without
// tracing) plus one wall-clock track carrying the host-side job
// lifecycle (queued, run, and the serve instant), so one view shows
// simulated and real time side by side.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, grid, _ := s.finishedGrid(w, r)
	if grid == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", "attachment; filename=trace.json")
	obs.WriteChromeTraceWall(w, grid.Traces(), "wall-clock (host)", j.wallSpans()) //nolint:errcheck
}

// wallSpans builds the wall-clock lifecycle track, origin at submit.
func (j *Job) wallSpans() []obs.WallSpan {
	submitted, started, finished := j.WallTimes()
	var spans []obs.WallSpan
	if !started.IsZero() {
		spans = append(spans, obs.WallSpan{Name: "queued", Start: 0, End: started.Sub(submitted)})
		if !finished.IsZero() {
			spans = append(spans, obs.WallSpan{Name: "run",
				Start: started.Sub(submitted), End: finished.Sub(submitted)})
		}
	}
	serve := time.Since(submitted)
	return append(spans, obs.WallSpan{Name: "serve", Start: serve, End: serve})
}

// handleEvents streams job progress as server-sent events: one `data:`
// line per Event, ending with the terminal state. The stream re-sends
// the final Status after the subscription closes so a slow reader never
// misses the outcome.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("service: streaming unsupported"))
		return
	}
	s.metrics.SSE.Inc()
	defer s.metrics.SSE.Dec()
	ch, cancel := j.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(ev Event) bool {
		buf, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", buf); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				st := j.Status()
				send(Event{Job: j.ID, State: st.State, Done: st.Done, Total: st.Total, Error: st.Error})
				return
			}
			if !send(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// experimentsBody is the GET /v1/experiments response.
type experimentsBody struct {
	Version     int      `json:"version"`
	Experiments []string `json:"experiments"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, experimentsBody{
		Version:     terp.WireVersion,
		Experiments: terp.Experiments(),
	})
}

// statsBody is the GET /v1/stats response: the scheduler counters and
// occupancy as before, plus the pool's lock-free snapshot and the full
// telemetry registry as JSON.
type statsBody struct {
	Counters  Counters            `json:"counters"`
	Queued    int                 `json:"queued"`
	Running   int                 `json:"running"`
	Tenants   int                 `json:"tenants"`
	Stored    int                 `json:"stored"`
	Workers   int                 `json:"workers"`
	UptimeSec float64             `json:"uptimeSec"`
	Pool      runner.PoolStats    `json:"pool"`
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	counters, queued, running, tenants := s.sched.Stats()
	writeJSON(w, http.StatusOK, statsBody{
		Counters:  counters,
		Queued:    queued,
		Running:   running,
		Tenants:   tenants,
		Stored:    s.store.Len(),
		Workers:   s.sched.Pool().Workers(),
		UptimeSec: time.Since(s.started).Seconds(),
		Pool:      s.sched.Pool().Stats(),
		Telemetry: s.metrics.Registry.Snapshot(),
	})
}

// handleMetrics serves the registry in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.Registry.WritePrometheus(w) //nolint:errcheck // the connection owns delivery
}
