package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	terp "repro"
	"repro/internal/ledger"
	"repro/internal/runner"
)

// Admission and lookup errors the HTTP layer maps to status codes.
var (
	// ErrQueueFull rejects a submission whose tenant queue is at depth
	// (HTTP 429).
	ErrQueueFull = errors.New("service: tenant queue full")
	// ErrClosed rejects work on a shut-down scheduler (HTTP 503).
	ErrClosed = errors.New("service: scheduler closed")
	// ErrNotFound reports an unknown (or evicted) job ID (HTTP 404).
	ErrNotFound = errors.New("service: no such job")
	// ErrTerminal rejects cancelling an already-finished job (HTTP 409).
	ErrTerminal = errors.New("service: job already finished")
)

// Counters are the scheduler's monotonic totals (the /v1/stats body).
type Counters struct {
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
}

// Scheduler owns the tenant queues and drives jobs through the shared
// runner pool: per-tenant FIFO order, at most one active job per
// tenant, bounded queue depth, and cancellation of queued or running
// jobs. Fairness across tenants falls out of the pool — each tenant's
// active job is one round-robin participant, so k tenants each get
// ~1/k of the workers at cell granularity regardless of job sizes.
type Scheduler struct {
	pool       *runner.Pool
	queueDepth int
	metrics    *Metrics
	led        *ledger.Ledger // run-record sink; nil disables

	mu       sync.Mutex
	tenants  map[string]*tenant
	active   map[string]*Job // queued + running jobs by ID
	nextID   uint64
	counters Counters
	closed   bool
	wg       sync.WaitGroup

	store *Store
}

// tenant is one client's FIFO queue plus its single running job.
type tenant struct {
	queue   []*Job // waiting, FIFO
	running *Job
}

// NewScheduler builds a scheduler over its own pool of the given size
// (workers <= 0 selects GOMAXPROCS). queueDepth bounds each tenant's
// queued+running jobs; depth <= 0 selects DefaultQueueDepth. Finished
// jobs move into store. Host telemetry lands in m (nil builds a fresh
// metric set), whose pool series are bound here. led, when non-nil,
// receives one run record per job that reaches StateDone — an
// observe-only sink that never influences scheduling or results.
func NewScheduler(workers, queueDepth int, store *Store, m *Metrics, led *ledger.Ledger) *Scheduler {
	if queueDepth <= 0 {
		queueDepth = DefaultQueueDepth
	}
	if m == nil {
		m = NewMetrics()
	}
	s := &Scheduler{
		pool:       runner.NewPool(workers),
		queueDepth: queueDepth,
		metrics:    m,
		led:        led,
		tenants:    make(map[string]*tenant),
		active:     make(map[string]*Job),
		store:      store,
	}
	m.bindPool(s.pool)
	return s
}

// Metrics exposes the scheduler's telemetry set.
func (s *Scheduler) Metrics() *Metrics { return s.metrics }

// depthLocked refreshes the tenant's queue-depth gauge; s.mu held.
func (s *Scheduler) depthLocked(name string, t *tenant) {
	depth := len(t.queue)
	if t.running != nil {
		depth++
	}
	s.metrics.queueDepth.With(name).Set(int64(depth))
}

// DefaultQueueDepth is the per-tenant admission bound when the
// configuration does not set one.
const DefaultQueueDepth = 16

// Pool exposes the shared worker pool (tests and stats).
func (s *Scheduler) Pool() *runner.Pool { return s.pool }

// Submit validates and enqueues a job for the tenant, starting it
// immediately when the tenant is idle. It returns ErrQueueFull when
// the tenant already has queueDepth jobs queued or running.
func (s *Scheduler) Submit(tenantName string, spec terp.ExperimentSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	total, err := spec.CellCount()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	t := s.tenants[tenantName]
	if t == nil {
		t = &tenant{}
		s.tenants[tenantName] = t
	}
	depth := len(t.queue)
	if t.running != nil {
		depth++
	}
	if depth >= s.queueDepth {
		s.counters.Rejected++
		s.metrics.rejected.Inc()
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant %q has %d job(s) pending (depth %d)",
			ErrQueueFull, tenantName, depth, s.queueDepth)
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j%06d", s.nextID), tenantName, spec, total)
	s.active[j.ID] = j
	t.queue = append(t.queue, j)
	s.counters.Submitted++
	s.metrics.submitted.Inc()
	s.metrics.queuedJobs.Inc()
	s.startNextLocked(t)
	s.depthLocked(tenantName, t)
	s.mu.Unlock()
	return j, nil
}

// startNextLocked promotes the tenant's queue head to running when the
// tenant is idle; s.mu held.
func (s *Scheduler) startNextLocked(t *tenant) {
	if s.closed || t.running != nil || len(t.queue) == 0 {
		return
	}
	j := t.queue[0]
	t.queue = t.queue[1:]
	t.running = j
	j.setState(StateRunning)
	s.metrics.queuedJobs.Dec()
	s.metrics.runningJobs.Inc()
	s.metrics.queueWait.ObserveSince(j.submittedAt)
	s.wg.Add(1)
	go s.run(t, j)
}

// run executes one job on the shared pool and retires it.
func (s *Scheduler) run(t *tenant, j *Job) {
	defer s.wg.Done()
	spec := j.Spec
	spec.Progress = j.progress
	grid, err := terp.RunOn(j.ctx, s.pool, spec)

	var (
		state    State
		errMsg   string
		gridJSON []byte
	)
	switch {
	case err == nil:
		if gridJSON, err = grid.JSON(); err == nil {
			state = StateDone
		} else {
			state, errMsg, grid = StateFailed, err.Error(), nil
		}
	case j.ctx.Err() != nil:
		state, errMsg, grid = StateCanceled, j.ctx.Err().Error(), nil
	default:
		state, errMsg, grid = StateFailed, err.Error(), nil
	}
	j.finish(grid, gridJSON, state, errMsg)
	_, started, finished := j.WallTimes()
	var runDur time.Duration
	if !started.IsZero() {
		runDur = finished.Sub(started)
	}

	s.mu.Lock()
	switch state {
	case StateDone:
		s.counters.Completed++
	case StateCanceled:
		s.counters.Canceled++
	default:
		s.counters.Failed++
	}
	s.metrics.runningJobs.Dec()
	s.metrics.jobFinished(j, state, runDur)
	delete(s.active, j.ID)
	s.store.Put(j)
	t.running = nil
	s.startNextLocked(t)
	s.depthLocked(j.Tenant, t)
	s.mu.Unlock()

	// Ledger append happens outside the scheduler lock: file IO must
	// not stall admission, and a failed append only bumps a counter —
	// the job's result is already served from memory.
	if state == StateDone && s.led != nil {
		rec := ledger.FromGrid("terpd", j.Spec, grid)
		rec.JobID, rec.Tenant = j.ID, j.Tenant
		rec.WallMS = runDur.Seconds() * 1e3
		if err := s.led.Append(rec); err != nil {
			s.metrics.ledgerErrors.Inc()
		} else {
			s.metrics.ledgerRecords.Inc()
		}
	}
}

// Lookup finds a job by ID among live jobs and stored results.
func (s *Scheduler) Lookup(id string) (*Job, error) {
	s.mu.Lock()
	j := s.active[id]
	s.mu.Unlock()
	if j != nil {
		return j, nil
	}
	if j := s.store.Get(id); j != nil {
		return j, nil
	}
	return nil, fmt.Errorf("%w: %q (finished results are retained for the most recent %d jobs)",
		ErrNotFound, id, s.store.Cap())
}

// Cancel stops a job: a queued job is retired immediately, a running
// one has its context cancelled and retires when its in-flight cells
// drain. Cancelling a finished job returns ErrTerminal.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	s.mu.Lock()
	j := s.active[id]
	if j == nil {
		s.mu.Unlock()
		if j := s.store.Get(id); j != nil {
			return j, ErrTerminal
		}
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	t := s.tenants[j.Tenant]
	for i, q := range t.queue {
		if q == j {
			// Still queued: retire in place, no runner involvement.
			t.queue = append(t.queue[:i], t.queue[i+1:]...)
			delete(s.active, id)
			s.counters.Canceled++
			s.metrics.queuedJobs.Dec()
			s.metrics.jobFinished(j, StateCanceled, 0)
			s.depthLocked(j.Tenant, t)
			s.mu.Unlock()
			j.finish(nil, nil, StateCanceled, "canceled before start")
			s.store.Put(j)
			return j, nil
		}
	}
	s.mu.Unlock()
	// Running: cancel the context; run() observes it and retires the job.
	j.cancel()
	return j, nil
}

// Stats snapshots the scheduler's counters and queue occupancy.
func (s *Scheduler) Stats() (Counters, int, int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	queued, running := 0, 0
	for _, t := range s.tenants {
		queued += len(t.queue)
		if t.running != nil {
			running++
		}
	}
	return s.counters, queued, running, len(s.tenants)
}

// Close cancels every live job, waits for the runners to drain, and
// shuts the pool down. Submissions after Close fail with ErrClosed.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	var queued, running []*Job
	for name, t := range s.tenants {
		queued = append(queued, t.queue...)
		t.queue = nil
		if t.running != nil {
			running = append(running, t.running)
		}
		s.depthLocked(name, t)
	}
	for _, j := range queued {
		delete(s.active, j.ID)
		s.counters.Canceled++
		s.metrics.queuedJobs.Dec()
		s.metrics.jobFinished(j, StateCanceled, 0)
	}
	s.mu.Unlock()

	for _, j := range queued {
		j.finish(nil, nil, StateCanceled, "server shutting down")
		s.store.Put(j)
	}
	for _, j := range running {
		j.cancel()
	}
	s.wg.Wait()
	s.pool.Close()
}
