// Package service is the multi-tenant simulation service behind
// cmd/terpd: a job scheduler that executes terp.ExperimentSpec jobs for
// many concurrent tenants on one shared runner.Pool, an LRU-bounded
// store of finished results, and the HTTP/JSON API that exposes both.
//
// The scheduling contract is fairness at cell granularity: every tenant
// has a FIFO queue of jobs with at most one job active at a time, the
// active jobs share the pool's workers round-robin (runner.Pool claims
// cells across jobs in rotation), and a tenant whose queue is full is
// refused at admission (HTTP 429) instead of degrading everyone else.
// Results are byte-identical to offline terp.Run output for the same
// spec — scheduling never leaks into grids.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"time"

	terp "repro"
)

// State is a job's lifecycle phase.
type State string

// Job states. Queued and Running are live; the rest are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one progress notification on a job's event stream. The
// terminal event repeats the final state and, for failures, the error.
type Event struct {
	Job   string `json:"job"`
	State State  `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Cell  string `json:"cell,omitempty"`
	Error string `json:"error,omitempty"`
}

// Status is a job's externally visible snapshot (the GET /v1/jobs/{id}
// body).
type Status struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant"`
	Experiment string `json:"experiment"`
	State      State  `json:"state"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Error      string `json:"error,omitempty"`
}

// Job is one submitted experiment: its spec, execution state, progress
// stream and (once finished) its result payloads.
type Job struct {
	// Immutable after creation.
	ID     string
	Tenant string
	Spec   terp.ExperimentSpec
	Total  int // enumerated cell count

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	done     int
	lastCell string
	errMsg   string
	grid     *terp.Grid
	gridJSON []byte
	etag     string // lazy content hash of gridJSON
	subs     []chan Event

	// Wall-clock lifecycle instants (host telemetry + the wall-clock
	// Perfetto track). submittedAt is immutable; startedAt/finishedAt
	// are zero until the phase is reached. They never influence
	// execution — grids stay byte-identical whatever the clock says.
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time
}

// subBuffer is each subscriber channel's capacity; a subscriber that
// falls further behind misses intermediate progress events (terminal
// events are never dropped — the channel drains before close).
const subBuffer = 64

func newJob(id, tenant string, spec terp.ExperimentSpec, total int) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{
		ID: id, Tenant: tenant, Spec: spec, Total: total,
		ctx: ctx, cancel: cancel, state: StateQueued,
		submittedAt: time.Now(),
	}
}

// WallTimes returns the job's wall-clock lifecycle instants; started
// and finished are zero for phases not yet reached.
func (j *Job) WallTimes() (submitted, started, finished time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.submittedAt, j.startedAt, j.finishedAt
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Status{
		ID: j.ID, Tenant: j.Tenant, Experiment: j.Spec.Name,
		State: j.state, Done: j.done, Total: j.Total, Error: j.errMsg,
	}
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Grid returns the finished grid and its canonical JSON encoding (nil
// until the job reaches StateDone).
func (j *Job) Grid() (*terp.Grid, []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.grid, j.gridJSON
}

// GridETag returns the strong entity tag of the finished grid's
// canonical JSON — a quoted content hash, so equal grids share a tag
// across jobs and server restarts. Empty until the job reaches
// StateDone.
func (j *Job) GridETag() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.etag == "" && len(j.gridJSON) > 0 {
		sum := sha256.Sum256(j.gridJSON)
		j.etag = `"` + hex.EncodeToString(sum[:16]) + `"`
	}
	return j.etag
}

// Subscribe attaches a progress listener: the returned channel first
// receives a snapshot of the current state, then live events, and is
// closed after the terminal event. cancel detaches early.
func (j *Job) Subscribe() (<-chan Event, func()) {
	ch := make(chan Event, subBuffer)
	j.mu.Lock()
	ch <- j.eventLocked()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		for i, s := range j.subs {
			if s == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				break
			}
		}
		j.mu.Unlock()
	}
	return ch, cancel
}

// eventLocked builds the current event snapshot; j.mu held.
func (j *Job) eventLocked() Event {
	return Event{
		Job: j.ID, State: j.state, Done: j.done, Total: j.Total,
		Cell: j.lastCell, Error: j.errMsg,
	}
}

// broadcastLocked fans the current snapshot out to subscribers,
// dropping progress events a slow subscriber has no room for; j.mu
// held.
func (j *Job) broadcastLocked() {
	ev := j.eventLocked()
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// setState transitions the job and notifies subscribers; entering
// StateRunning stamps the wall-clock start.
func (j *Job) setState(s State) {
	j.mu.Lock()
	j.state = s
	if s == StateRunning && j.startedAt.IsZero() {
		j.startedAt = time.Now()
	}
	j.broadcastLocked()
	j.mu.Unlock()
}

// progress records one completed cell (wired to spec.Progress).
func (j *Job) progress(done, total int, cell string) {
	j.mu.Lock()
	j.done, j.lastCell = done, cell
	if total > j.Total {
		// Defensive: the runner's total is authoritative.
		j.Total = total
	}
	j.broadcastLocked()
	j.mu.Unlock()
}

// finish records the job's outcome, emits the terminal event and closes
// every subscriber channel. Sends never block (a stalled subscriber
// must not wedge the scheduler); the channel close itself signals
// termination, and readers re-fetch Status after it for the final
// state.
func (j *Job) finish(grid *terp.Grid, gridJSON []byte, state State, errMsg string) {
	j.mu.Lock()
	j.grid, j.gridJSON = grid, gridJSON
	j.state, j.errMsg = state, errMsg
	j.finishedAt = time.Now()
	if state == StateDone {
		j.done = j.Total
	}
	ev := j.eventLocked()
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	j.cancel() // release the context's resources
}
