package service

import (
	"bytes"
	"errors"
	"fmt"
	"html"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	terp "repro"
	"repro/internal/ledger"
	"repro/internal/report"
)

// The run-history surface: GET /v1/history lists the ledger's run
// records, GET /v1/history/trend analyzes them as per-metric time
// series, and GET /v1/compare diffs two finished jobs server-side.
// Everything here reads — the ledger and the job store are never
// written from these handlers — so the surface is safe to poll.

// errNoLedger answers the history endpoints on a server without a
// ledger.
var errNoLedger = errors.New("service: no run ledger configured (start terpd with -ledger)")

// historyBody is the GET /v1/history response.
type historyBody struct {
	// Count is the number of records returned; Skipped counts ledger
	// lines the reader rejected (torn writes, future schemas).
	Count   int             `json:"count"`
	Skipped int             `json:"skipped"`
	Records []ledger.Record `json:"records"`
}

// historyRecords reads and filters the ledger by the shared query
// parameters (exp, spec), most recent last.
func (s *Server) historyRecords(r *http.Request) ([]ledger.Record, int, error) {
	recs, skipped, err := s.ledger.Records()
	if err != nil {
		return nil, 0, err
	}
	exp := r.URL.Query().Get("exp")
	spec := r.URL.Query().Get("spec")
	if exp == "" && spec == "" {
		return recs, skipped, nil
	}
	var out []ledger.Record
	for _, rec := range recs {
		if exp != "" && rec.Experiment != exp {
			continue
		}
		if spec != "" && rec.SpecHash != spec {
			continue
		}
		out = append(out, rec)
	}
	return out, skipped, nil
}

// handleHistory lists run records, optionally filtered by ?exp=,
// ?spec= and bounded by ?limit= (most recent N).
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, errNoLedger)
		return
	}
	recs, skipped, err := s.historyRecords(r)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad limit %q", v))
			return
		}
		if n < len(recs) {
			recs = recs[len(recs)-n:]
		}
	}
	if recs == nil {
		recs = []ledger.Record{}
	}
	writeJSON(w, http.StatusOK, historyBody{Count: len(recs), Skipped: skipped, Records: recs})
}

// handleHistoryTrend runs the trend analysis over the (filtered)
// history. ?metric= restricts series by name prefix; ?window= and
// ?min= override the gate parameters.
func (s *Server) handleHistoryTrend(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeError(w, http.StatusNotFound, errNoLedger)
		return
	}
	recs, _, err := s.historyRecords(r)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	opt := report.TrendOpts{}
	q := r.URL.Query()
	for name, dst := range map[string]*int{"window": &opt.Window, "min": &opt.MinRuns} {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad %s %q", name, v))
				return
			}
			*dst = n
		}
	}
	series := ledger.Series(recs)
	if prefix := q.Get("metric"); prefix != "" {
		var kept []report.TrendSeries
		for _, s := range series {
			if strings.HasPrefix(s.Metric, prefix) {
				kept = append(kept, s)
			}
		}
		series = kept
	}
	writeJSON(w, http.StatusOK, report.Trend(series, opt))
}

// compareBody is the GET /v1/compare response: a deterministic diff
// of two finished jobs. Job a is the baseline, b the candidate. The
// body carries no wall-clock or host state, so comparing the same two
// grids always yields identical bytes.
type compareBody struct {
	A string `json:"a"`
	B string `json:"b"`
	// ExperimentA/B and SpecHashA/B identify each side's spec.
	ExperimentA string `json:"experimentA"`
	ExperimentB string `json:"experimentB"`
	SpecHashA   string `json:"specHashA"`
	SpecHashB   string `json:"specHashB"`
	// IdenticalSpecs: the spec identity hashes match (same experiment,
	// options, seed). IdenticalGrids: the result bytes match.
	IdenticalSpecs bool `json:"identicalSpecs"`
	IdenticalGrids bool `json:"identicalGrids"`
	// Verdict is the regression verdict when metric totals exist on
	// both sides; otherwise "pass" when the grids are byte-identical
	// and "differ" when they are not.
	Verdict string `json:"verdict"`
	// Regression holds the per-metric deltas with CI (nil when either
	// side ran without obs metrics or the experiments differ).
	Regression *report.Regression `json:"regression,omitempty"`
	// Cells holds per-cell total-sim-cycle deltas over the union of
	// both sides' cells.
	Cells []report.CellDelta `json:"cells,omitempty"`
	// Values holds the exposure/analysis rollup deltas (the same
	// rollups ledger records carry).
	Values []valueDelta `json:"values,omitempty"`
}

// valueDelta is one float rollup compared across the two jobs.
type valueDelta struct {
	Name string `json:"name"`
	// A and B are each side's value (null when the side lacks it).
	A report.Ratio `json:"a"`
	B report.Ratio `json:"b"`
	// Delta is B-A (null unless both sides have the value).
	Delta report.Ratio `json:"delta"`
}

// compareJob resolves one side of the comparison, writing the
// 400/404/409 itself. Deliberately strict: comparing an unfinished
// job is a conflict, not an empty diff.
func (s *Server) compareJob(w http.ResponseWriter, param, id string) (*Job, *terp.Grid, []byte) {
	if id == "" {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("service: missing ?%s= job id (usage: /v1/compare?a=<job>&b=<job>)", param))
		return nil, nil, nil
	}
	j, err := s.sched.Lookup(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, nil, nil
	}
	grid, gridJSON := j.Grid()
	if grid == nil {
		writeJSON(w, http.StatusConflict, j.Status())
		return nil, nil, nil
	}
	return j, grid, gridJSON
}

// handleCompare diffs two finished jobs: ?a= is the baseline, ?b= the
// candidate. ?format=html renders the panel instead of JSON.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ja, ga, rawA := s.compareJob(w, "a", q.Get("a"))
	if ja == nil {
		return
	}
	jb, gb, rawB := s.compareJob(w, "b", q.Get("b"))
	if jb == nil {
		return
	}
	body := compareGridPair(ja, ga, rawA, jb, gb, rawB)
	if q.Get("format") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(compareHTML(body)) //nolint:errcheck
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// compareGridPair builds the diff body. Pure function of the two
// grids (plus job identity): no clocks, no maps in the output.
func compareGridPair(ja *Job, ga *terp.Grid, rawA []byte, jb *Job, gb *terp.Grid, rawB []byte) compareBody {
	body := compareBody{
		A: ja.ID, B: jb.ID,
		ExperimentA: ga.Name, ExperimentB: gb.Name,
		SpecHashA: ledger.SpecHash(ja.Spec), SpecHashB: ledger.SpecHash(jb.Spec),
	}
	body.IdenticalSpecs = body.SpecHashA == body.SpecHashB
	body.IdenticalGrids = bytes.Equal(rawA, rawB)

	// Metric deltas ride the existing baseline comparator: round-trip
	// each grid through the bench-grid slice it marshals to.
	benchA, errA := benchOf(ga)
	benchB, errB := benchOf(gb)
	if errA == nil && errB == nil {
		body.Regression = report.Compare(benchB, benchA, report.RegressOpts{})
		var oa, ob *report.BenchObs
		if len(benchA) > 0 {
			oa = benchA[0].Obs
		}
		if len(benchB) > 0 {
			ob = benchB[0].Obs
		}
		if ga.Name == gb.Name {
			body.Cells = report.CellCycleDeltas(ob, oa)
		}
	}
	body.Values = valueDeltas(
		ledger.FromGrid("terpd", ja.Spec, ga).Values,
		ledger.FromGrid("terpd", jb.Spec, gb).Values)

	switch {
	case body.Regression != nil:
		body.Verdict = string(body.Regression.Verdict)
	case body.IdenticalGrids:
		body.Verdict = string(report.Pass)
	default:
		body.Verdict = "differ"
	}
	return body
}

// benchOf converts a grid to the regression tracker's input form.
func benchOf(g *terp.Grid) ([]report.BenchGrid, error) {
	raw, err := g.JSON()
	if err != nil {
		return nil, err
	}
	return report.ParseBench(append([]byte("["), append(raw, ']')...))
}

// valueDeltas pairs the two sides' float rollups over the sorted
// union of keys.
func valueDeltas(a, b map[string]float64) []valueDelta {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	names := make([]string, 0, len(a)+len(b))
	seen := map[string]bool{}
	for k := range a {
		names = append(names, k)
		seen[k] = true
	}
	for k := range b {
		if !seen[k] {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	nan := report.Ratio(math.NaN())
	var out []valueDelta
	for _, name := range names {
		d := valueDelta{Name: name, A: nan, B: nan, Delta: nan}
		va, oka := a[name]
		vb, okb := b[name]
		if oka {
			d.A = report.Ratio(va)
		}
		if okb {
			d.B = report.Ratio(vb)
		}
		if oka && okb {
			d.Delta = report.Ratio(vb - va)
		}
		out = append(out, d)
	}
	return out
}

// compareHTML renders the diff as a small self-contained panel.
func compareHTML(body compareBody) []byte {
	var b strings.Builder
	esc := html.EscapeString
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">")
	fmt.Fprintf(&b, "<title>compare %s vs %s</title>", esc(body.A), esc(body.B))
	b.WriteString(`<style>
  body { font: 14px system-ui, sans-serif; margin: 24px; color: #222; }
  h1 { font-size: 18px; } h2 { font-size: 15px; margin-top: 20px; }
  table { border-collapse: collapse; margin: 8px 0; }
  th, td { border: 1px solid #ddd; padding: 4px 10px; text-align: right; }
  th:first-child, td:first-child { text-align: left; }
  thead th { background: #f5f5f5; }
  .pass { color: #2a7a2a; } .improved { color: #1a6fb4; }
  .regressed { color: #b42318; } .differ { color: #b45309; }
</style></head><body>`)
	fmt.Fprintf(&b, "<h1>%s (baseline) vs %s &mdash; <span class=%q>%s</span></h1>",
		esc(body.A), esc(body.B), esc(body.Verdict), esc(body.Verdict))
	fmt.Fprintf(&b, "<p>experiment %s (spec %s) vs %s (spec %s); identical specs: %t, identical grids: %t</p>",
		esc(body.ExperimentA), esc(body.SpecHashA), esc(body.ExperimentB), esc(body.SpecHashB),
		body.IdenticalSpecs, body.IdenticalGrids)
	if body.Regression != nil {
		b.WriteString("<h2>metric deltas</h2><table><thead><tr><th>metric</th><th>base</th><th>current</th><th>delta%</th><th>ci&plusmn;%</th><th>n</th><th>verdict</th></tr></thead><tbody>")
		for _, m := range body.Regression.Metrics {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%d</td><td class=%q>%s</td></tr>",
				esc(m.Name), m.Base, m.Cur, fmtRatioPct(m.DeltaPct), fmtRatioPct(m.CIHalfPct), m.N,
				esc(m.Verdict), esc(m.Verdict))
		}
		b.WriteString("</tbody></table>")
	}
	if len(body.Cells) > 0 {
		b.WriteString("<h2>per-cell sim cycles</h2><table><thead><tr><th>cell</th><th>base</th><th>current</th><th>delta%</th></tr></thead><tbody>")
		for _, c := range body.Cells {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%s</td></tr>",
				esc(c.Cell), c.Base, c.Cur, fmtRatioPct(c.DeltaPct))
		}
		b.WriteString("</tbody></table>")
	}
	if len(body.Values) > 0 {
		b.WriteString("<h2>exposure rollups</h2><table><thead><tr><th>value</th><th>a</th><th>b</th><th>delta</th></tr></thead><tbody>")
		for _, v := range body.Values {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>",
				esc(v.Name), fmtRatioVal(v.A), fmtRatioVal(v.B), fmtRatioVal(v.Delta))
		}
		b.WriteString("</tbody></table>")
	}
	b.WriteString("</body></html>\n")
	return []byte(b.String())
}

func fmtRatioPct(r report.Ratio) string {
	v := float64(r)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "&mdash;"
	}
	return fmt.Sprintf("%+.3f%%", v)
}

func fmtRatioVal(r report.Ratio) string {
	v := float64(r)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "&mdash;"
	}
	return fmt.Sprintf("%.4g", v)
}
