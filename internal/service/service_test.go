package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	terp "repro"
)

// newTestServer boots a Server over httptest with a small pool.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func submit(t *testing.T, base, tenant string, spec terp.ExperimentSpec) (Status, *http.Response) {
	t.Helper()
	body, err := spec.JSON()
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("parsing submit response %q: %v", raw, err)
		}
	}
	return st, resp
}

func waitTerminal(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s: HTTP %d: %s", id, resp.StatusCode, raw)
		}
		var st Status
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

func fetch(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw, resp.StatusCode
}

// TestWireDeterminism is the service's core contract: a grid fetched
// from terpd is byte-identical to the same spec run offline via
// terp.Run, at -parallel 1 and at -parallel 8, with observability on.
func TestWireDeterminism(t *testing.T) {
	spec := terp.ExperimentSpec{
		Name: "table3",
		Opts: terp.ExpOpts{Ops: 300, Seed: 1},
	}
	spec.Obs.Trace = true
	spec.Obs.Metrics = true

	var offline [][]byte
	for _, parallel := range []int{1, 8} {
		off := spec
		off.Parallel = parallel
		g, err := terp.Run(off)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := g.JSON()
		if err != nil {
			t.Fatal(err)
		}
		offline = append(offline, buf)
	}
	if !bytes.Equal(offline[0], offline[1]) {
		t.Fatal("offline runs differ across -parallel levels (pre-existing determinism bug)")
	}

	for _, workers := range []int{1, 8} {
		_, hs := newTestServer(t, Config{Workers: workers})
		st, resp := submit(t, hs.URL, "acme", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: HTTP %d", resp.StatusCode)
		}
		end := waitTerminal(t, hs.URL, st.ID)
		if end.State != StateDone {
			t.Fatalf("workers=%d: job ended %s: %s", workers, end.State, end.Error)
		}
		served, code := fetch(t, hs.URL+"/v1/jobs/"+st.ID+"/grid")
		if code != http.StatusOK {
			t.Fatalf("grid fetch: HTTP %d", code)
		}
		if !bytes.Equal(served, offline[0]) {
			t.Fatalf("workers=%d: served grid differs from offline run (%d vs %d bytes)",
				workers, len(served), len(offline[0]))
		}
	}
}

// TestAdmissionControl: a tenant beyond its queue depth gets 429 with
// Retry-After while other tenants still get in.
func TestAdmissionControl(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	// Slow-ish jobs so the queue stays occupied.
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 5000}}

	var ids []string
	for i := 0; i < 2; i++ {
		st, resp := submit(t, hs.URL, "greedy", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}
	_, resp := submit(t, hs.URL, "greedy", spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Another tenant is unaffected by the greedy tenant's full queue.
	if _, resp := submit(t, hs.URL, "polite", spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant rejected: HTTP %d", resp.StatusCode)
	}
	for _, id := range ids {
		waitTerminal(t, hs.URL, id)
	}
}

// TestCancelRunningJob: DELETE cancels a running job, the status turns
// canceled, and the grid endpoint answers 409 (no result).
func TestCancelRunningJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 50_000}}
	st, resp := submit(t, hs.URL, "acme", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body) //nolint:errcheck
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", dresp.StatusCode)
	}

	end := waitTerminal(t, hs.URL, st.ID)
	if end.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want %s", end.State, StateCanceled)
	}
	if _, code := fetch(t, hs.URL+"/v1/jobs/"+st.ID+"/grid"); code != http.StatusConflict {
		t.Fatalf("grid of canceled job: HTTP %d, want 409", code)
	}

	// Cancelling a finished job is a 409 conflict.
	dresp2, err := http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp2.Body) //nolint:errcheck
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel: HTTP %d, want 409", dresp2.StatusCode)
	}
}

// TestCancelQueuedJob: a job cancelled while still queued never runs.
func TestCancelQueuedJob(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	slow := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 20_000}}
	first, resp := submit(t, hs.URL, "acme", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	queued, resp := submit(t, hs.URL, "acme", slow)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit queued: HTTP %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body) //nolint:errcheck
	dresp.Body.Close()
	if st := waitTerminal(t, hs.URL, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", st.State)
	}
	if st := waitTerminal(t, hs.URL, first.ID); st.State != StateDone {
		t.Fatalf("first job state = %s, want done (cancel must not bleed)", st.State)
	}
}

// TestBadSpecRejected: malformed, unknown-version and unknown-name
// specs all bounce with 400 before touching the scheduler.
func TestBadSpecRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{not json`,
		`{"version": 7, "name": "table3"}`,
		`{"name": "nope"}`,
		`{"name": "table3", "bogus": 1}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestEventsStream: the SSE endpoint delivers progress and ends with
// the terminal state.
func TestEventsStream(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 500}}
	st, resp := submit(t, hs.URL, "acme", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	eresp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(eresp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("final event state = %s, want done (events: %+v)", last.State, events)
	}
	if last.Done != last.Total || last.Total == 0 {
		t.Fatalf("final event progress %d/%d, want full", last.Done, last.Total)
	}
}

// TestReportAndTraceServed: finished jobs serve a non-empty HTML report
// and a Chrome-trace JSON document when the spec collected obs.
func TestReportAndTraceServed(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 300}}
	spec.Obs.Trace = true
	spec.Obs.Metrics = true
	st, _ := submit(t, hs.URL, "acme", spec)
	if end := waitTerminal(t, hs.URL, st.ID); end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}

	html, code := fetch(t, hs.URL+"/v1/jobs/"+st.ID+"/report")
	if code != http.StatusOK || !bytes.Contains(html, []byte("<html")) {
		t.Fatalf("report: HTTP %d, %d bytes", code, len(html))
	}
	trace, code := fetch(t, hs.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace: HTTP %d", code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatalf("trace is not Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events despite tracing enabled")
	}
}

// TestStoreEviction: the LRU result store retains only the configured
// number of finished jobs; evicted grids 404.
func TestStoreEviction(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, StoreCap: 2, QueueDepth: 8})
	spec := terp.ExperimentSpec{Name: "fig8", Opts: terp.ExpOpts{Ops: 200}}
	var ids []string
	for i := 0; i < 3; i++ {
		st, resp := submit(t, hs.URL, "acme", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		waitTerminal(t, hs.URL, st.ID)
		ids = append(ids, st.ID)
	}
	if _, code := fetch(t, hs.URL+"/v1/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job: HTTP %d, want 404 after eviction", code)
	}
	for _, id := range ids[1:] {
		if _, code := fetch(t, hs.URL+"/v1/jobs/"+id); code != http.StatusOK {
			t.Fatalf("job %s: HTTP %d, want 200", id, code)
		}
	}
}

// TestStatsCounters: the stats endpoint accounts submissions,
// completions and rejections.
func TestStatsCounters(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2, QueueDepth: 1})
	spec := terp.ExperimentSpec{Name: "fig8", Opts: terp.ExpOpts{Ops: 200}}
	st, _ := submit(t, hs.URL, "a", spec)
	waitTerminal(t, hs.URL, st.ID)

	raw, code := fetch(t, hs.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: HTTP %d", code)
	}
	var body statsBody
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Counters.Submitted != 1 || body.Counters.Completed != 1 {
		t.Fatalf("counters = %+v, want 1 submitted / 1 completed", body.Counters)
	}
	if body.Workers != 2 {
		t.Fatalf("workers = %d, want 2", body.Workers)
	}
}

// TestTenantFairness: two tenants submitting equal work to a 1-worker
// server finish in comparable time — neither is starved behind the
// other's whole backlog. We assert via completion interleaving: the
// second tenant's first job finishes before the first tenant's last.
func TestTenantFairness(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 1500}}

	// Tenant A floods four jobs; tenant B then submits one. Round-robin
	// at cell granularity must not make B wait for all of A's backlog.
	var aIDs []string
	for i := 0; i < 4; i++ {
		st, resp := submit(t, hs.URL, "flood", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("flood submit %d: HTTP %d", i, resp.StatusCode)
		}
		aIDs = append(aIDs, st.ID)
	}
	bst, resp := submit(t, hs.URL, "light", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("light submit: HTTP %d", resp.StatusCode)
	}

	waitTerminal(t, hs.URL, bst.ID)
	// When B finished, flood's last job must still be pending (it has 4x
	// the work and only equal shares of the single worker).
	raw, code := fetch(t, hs.URL+"/v1/jobs/"+aIDs[len(aIDs)-1])
	if code != http.StatusOK {
		t.Fatalf("flood tail: HTTP %d", code)
	}
	var tail Status
	if err := json.Unmarshal(raw, &tail); err != nil {
		t.Fatal(err)
	}
	if tail.State.Terminal() {
		t.Fatalf("flood tenant's last job finished before light tenant's only job — no fairness")
	}
	for _, id := range aIDs {
		waitTerminal(t, hs.URL, id)
	}
}
