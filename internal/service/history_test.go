package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	terp "repro"
	"repro/internal/ledger"
	"repro/internal/report"
)

// newLedgerServer boots a test server writing to a fresh ledger file.
func newLedgerServer(t *testing.T, workers int) (*Server, string, *ledger.Ledger) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	led, err := ledger.Open(path, ledger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	s, hs := newTestServer(t, Config{Workers: workers, Ledger: led})
	return s, hs.URL, led
}

func runJob(t *testing.T, base string, spec terp.ExperimentSpec) Status {
	t.Helper()
	st, resp := submit(t, base, "acme", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	end := waitTerminal(t, base, st.ID)
	if end.State != StateDone {
		t.Fatalf("job %s ended %s: %s", st.ID, end.State, end.Error)
	}
	return end
}

// TestLedgerDoesNotPerturbResults is the observe-only contract: grids
// served with a ledger attached and being read concurrently are
// byte-identical to the offline run and to a ledger-less server.
func TestLedgerDoesNotPerturbResults(t *testing.T) {
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 300, Seed: 1}}
	spec.Obs.Metrics = true
	g, err := terp.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	offline, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}

	_, base, _ := newLedgerServer(t, 4)
	st, resp := submit(t, base, "acme", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	// Hammer the history surface while the job runs.
	stop := make(chan struct{})
	polling := make(chan struct{})
	go func() {
		defer close(polling)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, p := range []string{"/v1/history", "/v1/history/trend"} {
				resp, err := http.Get(base + p)
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}
	}()
	end := waitTerminal(t, base, st.ID)
	close(stop)
	<-polling
	if end.State != StateDone {
		t.Fatalf("job ended %s: %s", end.State, end.Error)
	}
	served, code := fetch(t, base+"/v1/jobs/"+st.ID+"/grid")
	if code != http.StatusOK {
		t.Fatalf("grid: HTTP %d", code)
	}
	if !bytes.Equal(served, offline) {
		t.Fatalf("served grid differs from offline run with a ledger attached (%d vs %d bytes)",
			len(served), len(offline))
	}

	// A ledger-less server serves the same bytes.
	_, hs := newTestServer(t, Config{Workers: 4})
	end2 := runJob(t, hs.URL, spec)
	served2, code := fetch(t, hs.URL+"/v1/jobs/"+end2.ID+"/grid")
	if code != http.StatusOK {
		t.Fatalf("grid: HTTP %d", code)
	}
	if !bytes.Equal(served, served2) {
		t.Fatal("grids differ between ledger and ledger-less servers")
	}
}

func TestHistoryEndpoint(t *testing.T) {
	// Without a ledger the surface says so.
	_, hs := newTestServer(t, Config{Workers: 2})
	if _, code := fetch(t, hs.URL+"/v1/history"); code != http.StatusNotFound {
		t.Fatalf("history without ledger: HTTP %d, want 404", code)
	}
	if _, code := fetch(t, hs.URL+"/v1/history/trend"); code != http.StatusNotFound {
		t.Fatalf("trend without ledger: HTTP %d, want 404", code)
	}

	srv, base, _ := newLedgerServer(t, 2)
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 200, Seed: 1}}
	first := runJob(t, base, spec)
	spec2 := spec
	spec2.Opts.Seed = 2
	second := runJob(t, base, spec2)

	raw, code := fetch(t, base+"/v1/history")
	if code != http.StatusOK {
		t.Fatalf("history: HTTP %d: %s", code, raw)
	}
	var body historyBody
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 2 || len(body.Records) != 2 || body.Skipped != 0 {
		t.Fatalf("history = count %d, %d records, %d skipped; want 2, 2, 0", body.Count, len(body.Records), body.Skipped)
	}
	if body.Records[0].JobID != first.ID || body.Records[1].JobID != second.ID {
		t.Fatalf("records out of completion order: %s, %s", body.Records[0].JobID, body.Records[1].JobID)
	}
	for _, rec := range body.Records {
		if rec.Source != "terpd" || rec.Tenant != "acme" || rec.SpecHash == "" || rec.WallMS <= 0 {
			t.Fatalf("record missing identity: %+v", rec)
		}
	}
	if body.Records[0].SpecHash == body.Records[1].SpecHash {
		t.Fatal("different seeds must hash to different spec identities")
	}

	// ?limit keeps the most recent; ?spec filters by identity.
	raw, _ = fetch(t, base+"/v1/history?limit=1")
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 1 || body.Records[0].JobID != second.ID {
		t.Fatalf("limit=1 = %+v, want only the latest", body)
	}
	raw, _ = fetch(t, base+"/v1/history?spec="+ledger.SpecHash(spec))
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 1 || body.Records[0].JobID != first.ID {
		t.Fatalf("spec filter = %+v, want only the first job", body)
	}
	if _, code := fetch(t, base+"/v1/history?limit=x"); code != http.StatusBadRequest {
		t.Fatalf("bad limit: HTTP %d, want 400", code)
	}

	// The trend surface parses its parameters and answers over the
	// 2-run history (insufficient for the gate, but well-formed).
	raw, code = fetch(t, base+"/v1/history/trend?window=1&min=2&metric=sim/")
	if code != http.StatusOK {
		t.Fatalf("trend: HTTP %d: %s", code, raw)
	}
	var tr report.TrendReport
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Window != 1 || tr.MinRuns != 2 {
		t.Fatalf("trend params = %+v, want window 1 min 2", tr)
	}
	for _, s := range tr.Series {
		if !strings.HasPrefix(s.Metric, "sim/") {
			t.Fatalf("metric filter leaked %s", s.Metric)
		}
	}
	if _, code := fetch(t, base+"/v1/history/trend?window=0"); code != http.StatusBadRequest {
		t.Fatalf("bad window: HTTP %d, want 400", code)
	}

	// The dashboard panel gains a history section once records exist.
	panel, code := fetch(t, base+"/dashboard/panel")
	if code != http.StatusOK || !strings.Contains(string(panel), "history") ||
		!strings.Contains(string(panel), "<svg") {
		t.Fatalf("dashboard panel missing history sparklines (HTTP %d)", code)
	}
	_ = srv
}

// TestCompareEndpoint pins the differential contract: two jobs with
// identical specs report zero deltas and verdict pass, and the JSON is
// byte-identical across repeated calls and across worker-pool sizes.
func TestCompareEndpoint(t *testing.T) {
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 200, Seed: 1}}
	spec.Obs.Metrics = true

	bodiesByWorkers := map[int][]byte{}
	for _, workers := range []int{1, 4} {
		_, base, _ := newLedgerServer(t, workers)
		a := runJob(t, base, spec)
		b := runJob(t, base, spec)

		raw, code := fetch(t, base+"/v1/compare?a="+a.ID+"&b="+b.ID)
		if code != http.StatusOK {
			t.Fatalf("compare: HTTP %d: %s", code, raw)
		}
		again, _ := fetch(t, base+"/v1/compare?a="+a.ID+"&b="+b.ID)
		if !bytes.Equal(raw, again) {
			t.Fatal("repeated compare calls must return identical bytes")
		}
		bodiesByWorkers[workers] = raw

		var body compareBody
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatal(err)
		}
		if !body.IdenticalSpecs || !body.IdenticalGrids || body.Verdict != string(report.Pass) {
			t.Fatalf("identical jobs = %+v, want identical specs+grids, verdict pass", body)
		}
		if body.Regression == nil || body.Regression.Verdict != report.Pass {
			t.Fatalf("regression = %+v, want a pass diff over obs metrics", body.Regression)
		}
		for _, m := range body.Regression.Metrics {
			if m.Base != m.Cur {
				t.Fatalf("identical jobs differ on %s: %d vs %d", m.Name, m.Base, m.Cur)
			}
		}
		if len(body.Cells) == 0 {
			t.Fatal("compare should include per-cell deltas for same-experiment jobs")
		}
		for _, c := range body.Cells {
			if c.Base != c.Cur || float64(c.DeltaPct) != 0 {
				t.Fatalf("cell %s delta = %+v, want zero", c.Cell, c)
			}
		}
		for _, v := range body.Values {
			if float64(v.Delta) != 0 {
				t.Fatalf("value %s delta = %v, want 0", v.Name, float64(v.Delta))
			}
		}

		// The HTML panel renders the same verdict.
		html, code := fetch(t, base+"/v1/compare?a="+a.ID+"&b="+b.ID+"&format=html")
		if code != http.StatusOK || !strings.Contains(string(html), "pass") {
			t.Fatalf("html panel (HTTP %d) missing verdict", code)
		}
	}
	if !bytes.Equal(bodiesByWorkers[1], bodiesByWorkers[4]) {
		t.Fatal("compare bytes differ across worker-pool sizes")
	}
}

func TestCompareDetectsDifferingSpecs(t *testing.T) {
	_, base, _ := newLedgerServer(t, 2)
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 200, Seed: 1}}
	spec.Obs.Metrics = true
	a := runJob(t, base, spec)
	spec2 := spec
	spec2.Opts.Ops = 400
	b := runJob(t, base, spec2)

	raw, code := fetch(t, base+"/v1/compare?a="+a.ID+"&b="+b.ID)
	if code != http.StatusOK {
		t.Fatalf("compare: HTTP %d", code)
	}
	var body compareBody
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.IdenticalSpecs || body.IdenticalGrids {
		t.Fatalf("different ops compared identical: %+v", body)
	}
	if body.Verdict == string(report.Pass) {
		t.Fatalf("doubled ops verdict = %s, want a non-pass outcome", body.Verdict)
	}

	// Parameter errors: missing ids and unknown jobs.
	if _, code := fetch(t, base+"/v1/compare?a="+a.ID); code != http.StatusBadRequest {
		t.Fatalf("missing b: HTTP %d, want 400", code)
	}
	if _, code := fetch(t, base+"/v1/compare?a=nope&b="+b.ID); code != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", code)
	}
}

func TestGridETagConditionalFetch(t *testing.T) {
	_, hs := newTestServer(t, Config{Workers: 2})
	spec := terp.ExperimentSpec{Name: "table3", Opts: terp.ExpOpts{Ops: 200, Seed: 1}}
	end := runJob(t, hs.URL, spec)
	url := hs.URL + "/v1/jobs/" + end.ID + "/grid"

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag %q is not a strong quoted validator", etag)
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "immutable") {
		t.Fatalf("Cache-Control %q should mark the grid immutable", cc)
	}

	cond := func(inm string) (int, int) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		return resp.StatusCode, buf.Len()
	}

	if code, n := cond(etag); code != http.StatusNotModified || n != 0 {
		t.Fatalf("matching etag: HTTP %d with %d bytes, want 304 empty", code, n)
	}
	// List and weak-validator forms still match; mismatches serve fresh.
	if code, _ := cond(`"deadbeef", ` + etag); code != http.StatusNotModified {
		t.Fatalf("etag in list: HTTP %d, want 304", code)
	}
	if code, _ := cond("W/" + etag); code != http.StatusNotModified {
		t.Fatalf("weak form: HTTP %d, want 304", code)
	}
	if code, _ := cond("*"); code != http.StatusNotModified {
		t.Fatalf("wildcard: HTTP %d, want 304", code)
	}
	if code, n := cond(`"deadbeef"`); code != http.StatusOK || n == 0 {
		t.Fatalf("stale etag: HTTP %d with %d bytes, want 200 with the grid", code, n)
	}

	// The validator is a pure content hash: a second job with the same
	// spec carries the same ETag.
	end2 := runJob(t, hs.URL, spec)
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + end2.ID + "/grid")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Fatalf("same grid bytes, different ETags: %q vs %q", got, etag)
	}
}
