package service

import (
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/telemetry"
)

// The live ops dashboard: GET /dashboard serves a self-contained HTML
// shell (no external assets) whose only script re-fetches the
// server-rendered /dashboard/panel fragment once a second. All chart
// drawing stays in Go — the panel reuses internal/report's inline-SVG
// helpers — so the browser side is a dumb poller and the page works
// with scripts disabled (it just stops refreshing).

const dashboardShell = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>terpd dashboard</title>
<style>
  body { font: 14px system-ui, sans-serif; margin: 24px; color: #222; }
  h1 { font-size: 18px; }
  h1 small { color: #888; font-weight: normal; }
  .tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 12px 0; }
  .tile { border: 1px solid #ddd; border-radius: 6px; padding: 8px 14px; min-width: 110px; }
  .tile b { display: block; font-size: 20px; }
  .tile span { color: #777; font-size: 12px; }
  table { border-collapse: collapse; margin: 12px 0; }
  th, td { border: 1px solid #ddd; padding: 4px 10px; text-align: right; }
  th:first-child, td:first-child { text-align: left; }
  thead th { background: #f5f5f5; }
  .charts { display: flex; flex-wrap: wrap; gap: 16px; }
</style>
</head>
<body>
<h1>terpd <small>live host telemetry &mdash; polls /dashboard/panel every second; raw series at <a href="/metrics">/metrics</a>, JSON at <a href="/v1/stats">/v1/stats</a></small></h1>
<main id="panel">loading&hellip;</main>
<script>
  const panel = document.getElementById('panel');
  async function refresh() {
    try {
      const resp = await fetch('/dashboard/panel');
      if (resp.ok) panel.innerHTML = await resp.text();
    } catch (e) { /* server restarting; keep the last panel */ }
  }
  refresh();
  setInterval(refresh, 1000);
</script>
</body>
</html>
`

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashboardShell) //nolint:errcheck
}

// handleDashboardPanel renders the dashboard body: stat tiles, queue
// depth and per-tenant throughput bar charts, and the latency
// percentile table — all from the live registry.
func (s *Server) handleDashboardPanel(w http.ResponseWriter, r *http.Request) {
	m := s.metrics
	pool := s.sched.Pool().Stats()
	_, queued, running, tenants := s.sched.Stats()

	var b strings.Builder
	b.WriteString(`<div class="tiles">`)
	tile := func(label string, value string) {
		fmt.Fprintf(&b, `<div class="tile"><b>%s</b><span>%s</span></div>`,
			html.EscapeString(value), html.EscapeString(label))
	}
	tile("uptime", time.Since(s.started).Round(time.Second).String())
	tile("workers busy", fmt.Sprintf("%d / %d", pool.BusyWorkers, pool.Workers))
	tile("jobs running", fmt.Sprintf("%d", running))
	tile("jobs queued", fmt.Sprintf("%d", queued))
	tile("tenants", fmt.Sprintf("%d", tenants))
	tile("cells done", fmt.Sprintf("%d", pool.CompletedCells))
	tile("cells in flight", fmt.Sprintf("%d", pool.InFlightCells))
	tile("stored results", fmt.Sprintf("%d", s.store.Len()))
	tile("SSE subscribers", fmt.Sprintf("%d", m.SSE.Value()))
	b.WriteString("</div>\n")

	b.WriteString(`<div class="charts">`)
	var depthLabels []string
	var depthVals []float64
	m.queueDepth.Each(func(labels []string, g *telemetry.Gauge) {
		depthLabels = append(depthLabels, labels[0])
		depthVals = append(depthVals, float64(g.Value()))
	})
	if svg := report.BarChart("queue depth by tenant (queued+running jobs)", "", depthLabels, depthVals); svg != "" {
		b.WriteString("<div>" + svg + "</div>")
	}
	var cellLabels []string
	var cellVals []float64
	m.tenantCells.Each(func(labels []string, c *telemetry.Counter) {
		cellLabels = append(cellLabels, labels[0])
		cellVals = append(cellVals, float64(c.Value()))
	})
	if svg := report.BarChart("cells served by tenant (completed jobs)", "", cellLabels, cellVals); svg != "" {
		b.WriteString("<div>" + svg + "</div>")
	}
	b.WriteString("</div>\n")

	s.writeHistorySection(&b)

	b.WriteString("<table><thead><tr><th>latency</th><th>n</th><th>p50</th><th>p90</th><th>p99</th></tr></thead><tbody>\n")
	row := func(name string, h *telemetry.Histogram) {
		if h.Count() == 0 {
			return
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			html.EscapeString(name), h.Count(),
			fmtSeconds(h.Quantile(0.50)), fmtSeconds(h.Quantile(0.90)), fmtSeconds(h.Quantile(0.99)))
	}
	m.HTTP.Latency.Each(func(labels []string, h *telemetry.Histogram) {
		row("http "+labels[0], h)
	})
	row("job queue wait", m.queueWait)
	row("job run", m.runSeconds)
	b.WriteString("</tbody></table>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	fmt.Fprint(w, b.String()) //nolint:errcheck
}

// dashHistoryRuns bounds the records read for the dashboard's history
// section (most recent) and the points per sparkline.
const (
	dashHistoryRuns   = 200
	dashSparkPoints   = 32
	dashSparkMaxLines = 6
)

// writeHistorySection renders the ledger-backed "history" block: a
// record-count line plus one sparkline per spec identity tracing its
// total sim cycles (falling back to wall-clock when the runs carried
// no metrics). Absent entirely when the server runs without a ledger.
func (s *Server) writeHistorySection(b *strings.Builder) {
	if s.ledger == nil {
		return
	}
	recs, _, err := s.ledger.Records()
	if err != nil || len(recs) == 0 {
		return
	}
	if len(recs) > dashHistoryRuns {
		recs = recs[len(recs)-dashHistoryRuns:]
	}
	type line struct {
		label  string
		values []float64
	}
	var lines []line
	index := map[string]int{}
	for _, rec := range recs {
		key := rec.Experiment + " " + rec.SpecHash
		i, ok := index[key]
		if !ok {
			i = len(lines)
			index[key] = i
			lines = append(lines, line{label: key})
		}
		var cycles float64
		for name, v := range rec.Metrics {
			if strings.HasPrefix(name, "sim/cycles/") {
				cycles += float64(v)
			}
		}
		if cycles == 0 {
			cycles = rec.WallMS
		}
		lines[i].values = append(lines[i].values, cycles)
	}
	fmt.Fprintf(b, "<h2 style=\"font-size:15px\">history <small style=\"color:#888;font-weight:normal\">%d ledger record(s); series at <a href=\"/v1/history\">/v1/history</a>, trends at <a href=\"/v1/history/trend\">/v1/history/trend</a></small></h2>\n", len(recs))
	b.WriteString("<table><thead><tr><th>spec</th><th>runs</th><th>sim cycles (last runs)</th><th>last</th></tr></thead><tbody>\n")
	shown := 0
	for _, l := range lines {
		if shown == dashSparkMaxLines {
			fmt.Fprintf(b, "<tr><td colspan=\"4\">&hellip; %d more spec identities</td></tr>\n", len(lines)-shown)
			break
		}
		shown++
		vals := l.values
		if len(vals) > dashSparkPoints {
			vals = vals[len(vals)-dashSparkPoints:]
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%.4g</td></tr>\n",
			html.EscapeString(l.label), len(l.values), report.Sparkline(vals), vals[len(vals)-1])
	}
	b.WriteString("</tbody></table>\n")
}

// fmtSeconds renders a latency in the most readable unit.
func fmtSeconds(v float64) string {
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
