package service

import (
	"container/list"
	"sync"
)

// Store is the LRU-bounded archive of finished jobs. Completed grids
// (and their report/trace renderings, derived on demand) are served
// from here until capacity evicts them; a Get refreshes recency, so a
// client polling one result keeps it alive while idle results age out.
type Store struct {
	mu    sync.Mutex
	cap   int
	order *list.List               // front = most recent
	byID  map[string]*list.Element // value: *Job
}

// DefaultStoreCap is the finished-job retention bound when the
// configuration does not set one.
const DefaultStoreCap = 256

// NewStore builds a store retaining at most capacity finished jobs
// (<= 0 selects DefaultStoreCap).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCap
	}
	return &Store{cap: capacity, order: list.New(), byID: make(map[string]*list.Element)}
}

// Cap returns the retention bound.
func (s *Store) Cap() int { return s.cap }

// Len returns the current number of retained jobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// Put archives a finished job, evicting the least recently used entry
// when over capacity.
func (s *Store) Put(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byID[j.ID]; ok {
		s.order.MoveToFront(e)
		e.Value = j
		return
	}
	s.byID[j.ID] = s.order.PushFront(j)
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byID, oldest.Value.(*Job).ID)
	}
}

// Get returns the job (refreshing its recency) or nil.
func (s *Store) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.byID[id]
	if !ok {
		return nil
	}
	s.order.MoveToFront(e)
	return e.Value.(*Job)
}
