package merr

import (
	"errors"
	"testing"

	"repro/internal/paging"
)

func TestMatrixAddCheckRemove(t *testing.T) {
	m := NewMatrix()
	m.Add(1, 0x1000, 0x1000, paging.ReadWrite)
	if e, ok := m.Check(0x1800, paging.PermWrite); !ok || e.PMOID != 1 {
		t.Fatal("in-range write denied")
	}
	if _, ok := m.Check(0x2000, paging.PermRead); ok {
		t.Fatal("out-of-range access allowed")
	}
	if err := m.Remove(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Check(0x1800, paging.PermRead); ok {
		t.Fatal("access allowed after removal")
	}
	if err := m.Remove(1); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestMatrixPermissionEnforced(t *testing.T) {
	m := NewMatrix()
	m.Add(2, 0x4000, 0x1000, paging.PermRead)
	if _, ok := m.Check(0x4000, paging.PermRead); !ok {
		t.Fatal("read denied on read-only entry")
	}
	if e, ok := m.Check(0x4000, paging.PermWrite); ok || e == nil {
		t.Fatal("write allowed on read-only entry (or entry not reported)")
	}
	if m.Denials == 0 {
		t.Fatal("denial not counted")
	}
}

func TestMatrixRelocate(t *testing.T) {
	m := NewMatrix()
	m.Add(3, 0x8000, 0x1000, paging.ReadWrite)
	if err := m.Relocate(3, 0x20000); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Check(0x8000, paging.PermRead); ok {
		t.Fatal("old range still allowed after relocate")
	}
	if _, ok := m.Check(0x20000, paging.PermRead); !ok {
		t.Fatal("new range denied after relocate")
	}
	if err := m.Relocate(9, 0); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("relocate missing: %v", err)
	}
}

func TestMatrixMultipleEntries(t *testing.T) {
	m := NewMatrix()
	m.Add(1, 0x1000, 0x1000, paging.PermRead)
	m.Add(2, 0x10000, 0x1000, paging.ReadWrite)
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	if e, ok := m.Check(0x10010, paging.PermWrite); !ok || e.PMOID != 2 {
		t.Fatal("wrong entry matched")
	}
	if e, ok := m.Entry(1); !ok || e.Base != 0x1000 {
		t.Fatal("Entry accessor failed")
	}
	if _, ok := m.Entry(7); ok {
		t.Fatal("Entry for missing PMO reported ok")
	}
}

func TestMatrixCheckCounting(t *testing.T) {
	m := NewMatrix()
	m.Add(1, 0, 0x1000, paging.PermRead)
	m.Check(0, paging.PermRead)
	m.Check(0x2000, paging.PermRead)
	if m.Checks != 2 || m.Denials != 1 {
		t.Fatalf("checks=%d denials=%d", m.Checks, m.Denials)
	}
}
