// Package merr models the MERR baseline architecture of ASPLOS'20 that
// TERP builds on (Section II): the process-wide permission matrix checked
// on every load/store after the TLB lookup (Figure 1b), combined with the
// constant-cost attach/detach enabled by the embedded page-table subtree
// and PMO space-layout randomization (both modeled in internal/paging).
package merr

import (
	"errors"
	"fmt"

	"repro/internal/obs"
	"repro/internal/paging"
)

// ErrNoEntry is returned when removing or updating a missing entry.
var ErrNoEntry = errors.New("merr: no permission matrix entry")

// MatrixEntry is one row of the permission matrix: a virtual address range
// mapped to the process-wide permission for one attached PMO.
type MatrixEntry struct {
	// PMOID identifies the PMO the entry protects.
	PMOID uint32
	// Base and Size delimit the VA range of the attached PMO.
	Base, Size uint64
	// Perm is the process-wide permission requested at attach.
	Perm paging.Perm
}

// Matrix is the per-process permission matrix. A ld/st checks its address
// and requested access against the matrix (1 cycle, charged by the
// runtime); attach adds an entry, detach removes it, randomization updates
// the VA range in place.
type Matrix struct {
	entries map[uint32]*MatrixEntry

	// Checks and Denials count permission matrix lookups.
	Checks, Denials uint64

	// Obs, when set, records denials as instant events on the hardware
	// track (nil = off).
	Obs *obs.Track
}

// NewMatrix creates an empty permission matrix.
func NewMatrix() *Matrix {
	return &Matrix{entries: make(map[uint32]*MatrixEntry)}
}

// Add installs the entry for an attached PMO (attach side of Figure 1b).
func (m *Matrix) Add(pmoID uint32, base, size uint64, perm paging.Perm) {
	m.entries[pmoID] = &MatrixEntry{PMOID: pmoID, Base: base, Size: size, Perm: perm}
}

// Remove deletes the PMO's entry (detach side).
func (m *Matrix) Remove(pmoID uint32) error {
	if _, ok := m.entries[pmoID]; !ok {
		return fmt.Errorf("%w: pmo %d", ErrNoEntry, pmoID)
	}
	delete(m.entries, pmoID)
	return nil
}

// Upgrade widens the permission of an existing entry. Conditional
// attaches that lower to thread grants while the PMO stays mapped may
// request wider rights than the original attach; the hardware widens the
// process-wide entry so the matrix never blocks a granted thread.
func (m *Matrix) Upgrade(pmoID uint32, perm paging.Perm) error {
	e, ok := m.entries[pmoID]
	if !ok {
		return fmt.Errorf("%w: pmo %d", ErrNoEntry, pmoID)
	}
	e.Perm |= perm
	return nil
}

// Relocate updates the VA range of a PMO entry after randomization.
func (m *Matrix) Relocate(pmoID uint32, base uint64) error {
	e, ok := m.entries[pmoID]
	if !ok {
		return fmt.Errorf("%w: pmo %d", ErrNoEntry, pmoID)
	}
	e.Base = base
	return nil
}

// Check verifies that the access [va, va+len) with rights want is allowed
// by some matrix entry, returning the matching entry when it is. Denials
// are not timestamped; use CheckAt when an event time is available.
func (m *Matrix) Check(va uint64, want paging.Perm) (*MatrixEntry, bool) {
	return m.CheckAt(va, want, 0)
}

// CheckAt is Check with the current simulated cycle, so denials can be
// recorded as trace events at the right point on the timeline.
func (m *Matrix) CheckAt(va uint64, want paging.Perm, now uint64) (*MatrixEntry, bool) {
	m.Checks++
	for _, e := range m.entries {
		if va >= e.Base && va < e.Base+e.Size {
			if e.Perm.Allows(want) {
				return e, true
			}
			m.Denials++
			m.Obs.Instant(now, obs.CatMERR, "perm-denied", int64(e.PMOID))
			return e, false
		}
	}
	m.Denials++
	m.Obs.Instant(now, obs.CatMERR, "perm-denied", -1)
	return nil, false
}

// CheckFast verifies the access against a single candidate entry (a
// cached translation's matrix row) without searching the matrix. On a hit
// it counts the check — exactly what CheckAt would have counted — and
// returns true. On any miss (nil entry, address outside the entry's
// range, insufficient permission) it counts nothing and returns false so
// the caller can fall back to CheckAt, which then performs the full
// search with identical counter and event effects.
func (m *Matrix) CheckFast(e *MatrixEntry, va uint64, want paging.Perm) bool {
	if e == nil || va < e.Base || va-e.Base >= e.Size || !e.Perm.Allows(want) {
		return false
	}
	m.Checks++
	return true
}

// Entry returns the matrix entry for a PMO, if present.
func (m *Matrix) Entry(pmoID uint32) (*MatrixEntry, bool) {
	e, ok := m.entries[pmoID]
	return e, ok
}

// Len returns the number of installed entries.
func (m *Matrix) Len() int { return len(m.entries) }
