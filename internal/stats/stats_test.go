package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Add(v)
	}
	if h.N != 5 {
		t.Fatalf("N = %d", h.N)
	}
	want := []uint64{1, 2, 1, 1} // <=1, 1-2, 2-4, >4
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Fraction(1) != 0.4 {
		t.Fatalf("fraction = %f", h.Fraction(1))
	}
}

func TestHistogramFractionAtLeast(t *testing.T) {
	h := NewHistogram([]float64{10})
	for _, v := range []float64{1, 2, 5, 10, 20} {
		h.Add(v)
	}
	if got := h.FractionAtLeast(5); got != 0.6 {
		t.Fatalf("P(>=5) = %f", got)
	}
	empty := NewHistogram([]float64{1})
	if empty.FractionAtLeast(0) != 0 || empty.Fraction(0) != 0 {
		t.Fatal("empty histogram fractions must be 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram([]float64{100})
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if p := h.Percentile(50); p != 50 {
		t.Fatalf("p50 = %f", p)
	}
	if p := h.Percentile(95); p != 95 {
		t.Fatalf("p95 = %f", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Fatalf("p0 = %f", p)
	}
	if p := h.Percentile(100); p != 100 {
		t.Fatalf("p100 = %f", p)
	}
	if NewHistogram(nil).Percentile(50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
}

func TestHistogramUnsortedBoundsAccepted(t *testing.T) {
	h := NewHistogram([]float64{4, 1, 2})
	if h.Bounds[0] != 1 || h.Bounds[2] != 4 {
		t.Fatalf("bounds not sorted: %v", h.Bounds)
	}
}

func TestBucketLabels(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	labels := []string{h.BucketLabel(0), h.BucketLabel(1), h.BucketLabel(2)}
	for _, l := range labels {
		if l == "" {
			t.Fatal("empty label")
		}
	}
	if !strings.HasPrefix(labels[0], "<=") || !strings.HasPrefix(labels[2], ">") {
		t.Fatalf("labels = %v", labels)
	}
}

// Property: percentiles are monotone and bracket the samples.
func TestPercentileProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram([]float64{100})
		min, max := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			h.Add(x)
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		p10, p90 := h.Percentile(10), h.Percentile(90)
		return p10 <= p90 && p10 >= min && p90 <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("a", 1)
	tb.AddRow("longer-name", 2.5)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All lines equal length (aligned columns, trailing spaces ok).
	w := len(lines[1])
	for _, l := range lines[1:] {
		if len(strings.TrimRight(l, " ")) > w {
			t.Fatalf("misaligned: %q", l)
		}
	}
	if !strings.Contains(out, "2.5") {
		t.Fatal("float formatting lost")
	}
}

func TestBar(t *testing.T) {
	s := Bar("TT", 0.5, 1.0, 10)
	if !strings.Contains(s, "#####") || strings.Contains(s, "######") {
		t.Fatalf("bar = %q", s)
	}
	if !strings.Contains(s, "50.0%") {
		t.Fatalf("bar = %q", s)
	}
	// Clamping.
	if !strings.Contains(Bar("x", 5, 1, 4), "####") {
		t.Fatal("over-full bar not clamped")
	}
	if strings.Contains(Bar("x", -1, 1, 4), "#") {
		t.Fatal("negative bar drew hashes")
	}
	if Bar("x", 1, 0, 4) == "" {
		t.Fatal("zero full must not panic")
	}
}

func TestMeanGeoMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean = %f", g)
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("degenerate geomean")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5}); got != 0 {
		t.Fatalf("StdDev(one sample) = %v, want 0", got)
	}
	// Known sample: {2,4,4,4,5,5,7,9} has sample sd = sqrt(32/7).
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestMeanCI(t *testing.T) {
	mean, half := MeanCI([]float64{10}, 1.96)
	if mean != 10 || half != 0 {
		t.Fatalf("MeanCI(one sample) = %v ± %v, want 10 ± 0", mean, half)
	}
	xs := []float64{1, 2, 3, 4, 5}
	mean, half = MeanCI(xs, 1.96)
	if mean != 3 {
		t.Fatalf("mean = %v, want 3", mean)
	}
	want := 1.96 * StdDev(xs) / math.Sqrt(5)
	if math.Abs(half-want) > 1e-12 {
		t.Fatalf("half = %v, want %v", half, want)
	}
	// A wider z widens the interval.
	_, half3 := MeanCI(xs, 3)
	if half3 <= half {
		t.Fatalf("z=3 half %v not wider than z=1.96 half %v", half3, half)
	}
}

func TestScalarPercentile(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(empty) = %v, want 0", got)
	}
	xs := []float64{3, 1, 2, 5, 4} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {90, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must stay untouched (sorted on a copy).
	if xs[0] != 3 {
		t.Fatalf("Percentile mutated its input: %v", xs)
	}
}
