// Package stats provides the small statistics and reporting toolkit the
// benchmark harness uses: histograms with percentile queries (Figure 8),
// aligned text tables (Tables III-VI), and ASCII bar charts for the
// overhead figures (Figures 9-11).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bucket histogram over float64 samples.
type Histogram struct {
	// Bounds are the upper bounds of each bucket (ascending); samples
	// above the last bound land in the overflow bucket.
	Bounds []float64
	// Counts has len(Bounds)+1 entries (last is overflow).
	Counts []uint64
	// N is the total sample count.
	N uint64

	samples []float64
}

// NewHistogram creates a histogram with the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{Bounds: b, Counts: make([]uint64, len(b)+1)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.N++
	h.samples = append(h.samples, v)
}

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// FractionAtLeast returns the share of samples >= v.
func (h *Histogram) FractionAtLeast(v float64) float64 {
	if h.N == 0 {
		return 0
	}
	n := 0
	for _, s := range h.samples {
		if s >= v {
			n++
		}
	}
	return float64(n) / float64(h.N)
}

// Percentile returns the p-th percentile (0-100) of the samples.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// BucketLabel renders the label of bucket i ("<=x" style).
func (h *Histogram) BucketLabel(i int) string {
	switch {
	case i == 0:
		return fmt.Sprintf("<=%.3g", h.Bounds[0])
	case i < len(h.Bounds):
		return fmt.Sprintf("%.3g-%.3g", h.Bounds[i-1], h.Bounds[i])
	default:
		return fmt.Sprintf(">%.3g", h.Bounds[len(h.Bounds)-1])
	}
}

// Table is an aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case float32:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(width) {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// Bar renders one labeled ASCII bar scaled so that full is maxWidth runes.
func Bar(label string, value, full float64, maxWidth int) string {
	if full <= 0 {
		full = 1
	}
	n := int(value / full * float64(maxWidth))
	if n < 0 {
		n = 0
	}
	if n > maxWidth {
		n = maxWidth
	}
	return fmt.Sprintf("%-22s %7.1f%% |%s", label, value*100, strings.Repeat("#", n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanCI returns the mean of xs with a symmetric confidence interval
// half-width at the given z score (1.96 for ~95% under the normal
// approximation): mean ± z*sd/sqrt(n). With fewer than two samples the
// half-width is 0 — a single deterministic sample carries no spread.
func MeanCI(xs []float64, z float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = z * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// Percentile returns the p-th percentile (0-100) of xs using the
// nearest-rank method on a sorted copy (0 for empty input).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// GeoMean returns the geometric mean of positive xs (0 if any are <= 0).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
