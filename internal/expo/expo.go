// Package expo measures exposure: the central security metric of TERP
// (Definition 5). It tracks process-level exposure windows (EW — time a
// PMO is mapped at one location) and thread exposure windows (TEW — time
// one thread holds access permission), and computes the statistics the
// paper reports in Tables III and IV: average and maximum EW, exposure
// rate ER = Time(exposed)/Time(all), average TEW and thread exposure rate
// TER. A randomization ends the current EW and starts a new one, because
// the location learned by an attacker becomes useless (Theorem 6).
package expo

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Series accumulates window lengths without storing each one.
type Series struct {
	// Count is the number of closed windows.
	Count uint64
	// Sum is the total of all window lengths in cycles.
	Sum uint64
	// Max is the longest window observed.
	Max uint64
}

func (s *Series) add(n uint64) {
	s.Count++
	s.Sum += n
	if n > s.Max {
		s.Max = n
	}
}

// Avg returns the mean window length in cycles.
func (s *Series) Avg() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// tewKey identifies one thread's hold on one PMO.
type tewKey struct {
	thread int
	pmo    uint32
}

// Tracker records exposure windows for every PMO and thread of one run.
type Tracker struct {
	ews     map[uint32]*Series
	ewOpen  map[uint32]uint64 // PMO -> open time
	tews    map[uint32]*Series
	tewOpen map[tewKey]uint64

	// Obs, when set, records every window transition as async span
	// events: EWs on the hardware track, TEWs on the owning thread's
	// track. Async spans may overlap, which Chrome sync spans cannot.
	Obs *obs.Recorder
}

// tewArg pairs the async begin/end of one thread's hold on one PMO; the
// thread is folded into the id because two threads may hold the same PMO
// concurrently.
func tewArg(th int, pmo uint32) int64 {
	return int64(pmo) | int64(th+1)<<32
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		ews:     make(map[uint32]*Series),
		ewOpen:  make(map[uint32]uint64),
		tews:    make(map[uint32]*Series),
		tewOpen: make(map[tewKey]uint64),
	}
}

// EWOpen records a real attach of the PMO at time now.
func (t *Tracker) EWOpen(pmo uint32, now uint64) {
	if _, open := t.ewOpen[pmo]; open {
		return // already open; idempotent
	}
	t.ewOpen[pmo] = now
	t.Obs.Track(obs.HWThread).AsyncBegin(now, obs.CatExpo, "ew", int64(pmo))
}

// EWClose records a real detach of the PMO at time now.
func (t *Tracker) EWClose(pmo uint32, now uint64) {
	start, open := t.ewOpen[pmo]
	if !open {
		return
	}
	delete(t.ewOpen, pmo)
	t.series(t.ews, pmo).add(now - start)
	t.Obs.Track(obs.HWThread).AsyncEnd(now, obs.CatExpo, "ew", int64(pmo))
}

// EWRandomized records a space-layout randomization of an attached PMO:
// the current window closes (the old location is dead) and a new one
// opens immediately at the new location.
func (t *Tracker) EWRandomized(pmo uint32, now uint64) {
	start, open := t.ewOpen[pmo]
	if !open {
		return
	}
	t.series(t.ews, pmo).add(now - start)
	t.ewOpen[pmo] = now
	// The window restarts at the new location: one async span ends and
	// another begins at the same cycle.
	hw := t.Obs.Track(obs.HWThread)
	hw.AsyncEnd(now, obs.CatExpo, "ew", int64(pmo))
	hw.AsyncBegin(now, obs.CatExpo, "ew", int64(pmo))
}

// TEWOpen records thread th gaining access permission to the PMO.
func (t *Tracker) TEWOpen(th int, pmo uint32, now uint64) {
	k := tewKey{th, pmo}
	if _, open := t.tewOpen[k]; open {
		return
	}
	t.tewOpen[k] = now
	t.Obs.Track(th).AsyncBegin(now, obs.CatExpo, "tew", tewArg(th, pmo))
}

// TEWClose records thread th losing access permission to the PMO.
func (t *Tracker) TEWClose(th int, pmo uint32, now uint64) {
	k := tewKey{th, pmo}
	start, open := t.tewOpen[k]
	if !open {
		return
	}
	delete(t.tewOpen, k)
	t.series(t.tews, pmo).add(now - start)
	t.Obs.Track(th).AsyncEnd(now, obs.CatExpo, "tew", tewArg(th, pmo))
}

// Finish closes every window still open at end-of-run time now. Open
// windows are drained in sorted key order so the emitted close events
// are deterministic (map iteration order is not).
func (t *Tracker) Finish(now uint64) {
	ewKeys := make([]uint32, 0, len(t.ewOpen))
	for pmo := range t.ewOpen {
		ewKeys = append(ewKeys, pmo)
	}
	sort.Slice(ewKeys, func(i, j int) bool { return ewKeys[i] < ewKeys[j] })
	for _, pmo := range ewKeys {
		t.series(t.ews, pmo).add(now - t.ewOpen[pmo])
		delete(t.ewOpen, pmo)
		t.Obs.Track(obs.HWThread).AsyncEnd(now, obs.CatExpo, "ew", int64(pmo))
	}
	tewKeys := make([]tewKey, 0, len(t.tewOpen))
	for k := range t.tewOpen {
		tewKeys = append(tewKeys, k)
	}
	sort.Slice(tewKeys, func(i, j int) bool {
		if tewKeys[i].thread != tewKeys[j].thread {
			return tewKeys[i].thread < tewKeys[j].thread
		}
		return tewKeys[i].pmo < tewKeys[j].pmo
	})
	for _, k := range tewKeys {
		t.series(t.tews, k.pmo).add(now - t.tewOpen[k])
		delete(t.tewOpen, k)
		t.Obs.Track(k.thread).AsyncEnd(now, obs.CatExpo, "tew", tewArg(k.thread, k.pmo))
	}
}

// Counts returns the number of closed EW and TEW windows so far (the
// metrics layer reports them as counters without needing a total time).
func (t *Tracker) Counts() (ew, tew uint64) {
	for _, s := range t.ews {
		ew += s.Count
	}
	for _, s := range t.tews {
		tew += s.Count
	}
	return
}

func (t *Tracker) series(m map[uint32]*Series, pmo uint32) *Series {
	s := m[pmo]
	if s == nil {
		s = &Series{}
		m[pmo] = s
	}
	return s
}

// Stats is the per-run exposure summary reported in Tables III and IV.
type Stats struct {
	// PMOs is the number of PMOs that were ever exposed.
	PMOs int
	// AvgEW and MaxEW are the mean and maximum exposure window lengths
	// in cycles, averaged over PMOs as in the paper.
	AvgEW, MaxEW float64
	// ER is the exposure rate: sum of EWs divided by total time,
	// averaged over PMOs.
	ER float64
	// AvgTEW and MaxTEW are thread exposure window statistics.
	AvgTEW, MaxTEW float64
	// TER is the thread exposure rate.
	TER float64
	// EWCount and TEWCount are the numbers of closed windows.
	EWCount, TEWCount uint64
}

// String renders the stats in a Table III-style row fragment.
func (s Stats) String() string {
	return fmt.Sprintf("EW avg/max %.1f/%.1f ER %.1f%% TEW %.2f TER %.1f%%",
		s.AvgEW, s.MaxEW, s.ER*100, s.AvgTEW, s.TER*100)
}

// Collect computes the exposure summary for a run of the given total
// duration in cycles. Call Finish first. Per the paper, EW/ER values are
// averaged over all PMOs, and ER/TER divide exposed time by total time.
// PMOs are accumulated in id order so the float sums are reproducible
// bit for bit across runs (map iteration order is not).
func (t *Tracker) Collect(total uint64) Stats {
	var st Stats
	if total == 0 {
		return st
	}
	for _, pmo := range sortedKeys(t.ews) {
		s := t.ews[pmo]
		st.PMOs++
		st.AvgEW += s.Avg()
		if float64(s.Max) > st.MaxEW {
			st.MaxEW = float64(s.Max)
		}
		st.ER += float64(s.Sum) / float64(total)
		st.EWCount += s.Count
	}
	if st.PMOs > 0 {
		st.AvgEW /= float64(st.PMOs)
		st.ER /= float64(st.PMOs)
	}
	n := 0
	for _, pmo := range sortedKeys(t.tews) {
		s := t.tews[pmo]
		n++
		st.AvgTEW += s.Avg()
		if float64(s.Max) > st.MaxTEW {
			st.MaxTEW = float64(s.Max)
		}
		st.TER += float64(s.Sum) / float64(total)
		st.TEWCount += s.Count
	}
	if n > 0 {
		st.AvgTEW /= float64(n)
		st.TER /= float64(n)
	}
	return st
}

func sortedKeys(m map[uint32]*Series) []uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// PMOStats returns the per-PMO exposure summary for a run of the given
// total duration — the per-PMO values Tables III/IV average.
func (t *Tracker) PMOStats(total uint64) map[uint32]Stats {
	out := make(map[uint32]Stats, len(t.ews))
	if total == 0 {
		return out
	}
	for pmo, s := range t.ews {
		st := Stats{
			PMOs:    1,
			AvgEW:   s.Avg(),
			MaxEW:   float64(s.Max),
			ER:      float64(s.Sum) / float64(total),
			EWCount: s.Count,
		}
		if ts, ok := t.tews[pmo]; ok {
			st.AvgTEW = ts.Avg()
			st.MaxTEW = float64(ts.Max)
			st.TER = float64(ts.Sum) / float64(total)
			st.TEWCount = ts.Count
		}
		out[pmo] = st
	}
	return out
}
