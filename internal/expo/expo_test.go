package expo

import (
	"testing"
	"testing/quick"
)

func TestSingleWindow(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 100)
	tr.EWClose(1, 400)
	st := tr.Collect(1000)
	if st.PMOs != 1 || st.EWCount != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgEW != 300 || st.MaxEW != 300 {
		t.Fatalf("avg/max = %f/%f", st.AvgEW, st.MaxEW)
	}
	if st.ER != 0.3 {
		t.Fatalf("ER = %f", st.ER)
	}
}

func TestRandomizationSplitsWindow(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 0)
	tr.EWRandomized(1, 250)
	tr.EWClose(1, 400)
	st := tr.Collect(1000)
	if st.EWCount != 2 {
		t.Fatalf("count = %d, want 2 (randomization splits)", st.EWCount)
	}
	if st.MaxEW != 250 {
		t.Fatalf("max = %f", st.MaxEW)
	}
	// Total exposed time unchanged: 400 of 1000.
	if st.ER != 0.4 {
		t.Fatalf("ER = %f", st.ER)
	}
}

func TestTEWPerThread(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 0)
	tr.TEWOpen(0, 1, 0)
	tr.TEWClose(0, 1, 50)
	tr.TEWOpen(1, 1, 100)
	tr.TEWClose(1, 1, 250)
	tr.EWClose(1, 300)
	st := tr.Collect(1000)
	if st.TEWCount != 2 {
		t.Fatalf("tew count = %d", st.TEWCount)
	}
	if st.AvgTEW != 100 {
		t.Fatalf("avg tew = %f", st.AvgTEW)
	}
	if st.MaxTEW != 150 {
		t.Fatalf("max tew = %f", st.MaxTEW)
	}
	if st.TER != 0.2 {
		t.Fatalf("TER = %f", st.TER)
	}
}

func TestFinishClosesOpenWindows(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 0)
	tr.TEWOpen(0, 1, 100)
	tr.Finish(500)
	st := tr.Collect(500)
	if st.EWCount != 1 || st.TEWCount != 1 {
		t.Fatalf("finish missed windows: %+v", st)
	}
	if st.ER != 1.0 {
		t.Fatalf("ER = %f", st.ER)
	}
}

func TestIdempotentOpensAndStrayCloses(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 0)
	tr.EWOpen(1, 50) // ignored: already open
	tr.EWClose(1, 100)
	tr.EWClose(1, 200)      // stray: ignored
	tr.EWRandomized(2, 300) // PMO never opened: ignored
	tr.TEWClose(0, 1, 400)  // never opened: ignored
	st := tr.Collect(1000)
	if st.EWCount != 1 || st.AvgEW != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMultiplePMOsAveraged(t *testing.T) {
	tr := NewTracker()
	// PMO 1 exposed 100/1000; PMO 2 exposed 300/1000.
	tr.EWOpen(1, 0)
	tr.EWClose(1, 100)
	tr.EWOpen(2, 0)
	tr.EWClose(2, 300)
	st := tr.Collect(1000)
	if st.PMOs != 2 {
		t.Fatalf("pmos = %d", st.PMOs)
	}
	// ER averaged over PMOs: (0.1 + 0.3)/2.
	if st.ER != 0.2 {
		t.Fatalf("ER = %f", st.ER)
	}
	if st.AvgEW != 200 {
		t.Fatalf("avg EW = %f", st.AvgEW)
	}
}

func TestCollectZeroTotal(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 0)
	tr.EWClose(1, 10)
	st := tr.Collect(0)
	if st.PMOs != 0 {
		t.Fatalf("zero total must return zero stats, got %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 0)
	tr.EWClose(1, 10)
	if s := tr.Collect(100).String(); s == "" {
		t.Fatal("empty string")
	}
}

// Property: for any sequence of window [open, close] pairs, the exposure
// rate never exceeds the combined fraction and the max is the largest gap.
func TestWindowProperty(t *testing.T) {
	f := func(lens []uint16) bool {
		tr := NewTracker()
		var now, sum, max uint64
		for _, l := range lens {
			d := uint64(l%1000) + 1
			tr.EWOpen(1, now)
			tr.EWClose(1, now+d)
			now += 2 * d
			sum += d
			if d > max {
				max = d
			}
		}
		if now == 0 {
			return true
		}
		st := tr.Collect(now)
		return st.MaxEW == float64(max) &&
			st.ER > 0 && st.ER <= 1 &&
			uint64(st.ER*float64(now)+0.5) == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPerPMOStats(t *testing.T) {
	tr := NewTracker()
	tr.EWOpen(1, 0)
	tr.EWClose(1, 100)
	tr.EWOpen(2, 0)
	tr.TEWOpen(0, 2, 10)
	tr.TEWClose(0, 2, 60)
	tr.EWClose(2, 300)
	per := tr.PMOStats(1000)
	if len(per) != 2 {
		t.Fatalf("pmos = %d", len(per))
	}
	if per[1].ER != 0.1 || per[2].ER != 0.3 {
		t.Fatalf("ERs = %f, %f", per[1].ER, per[2].ER)
	}
	if per[2].TER != 0.05 || per[1].TER != 0 {
		t.Fatalf("TERs = %f, %f", per[2].TER, per[1].TER)
	}
	if len(tr.PMOStats(0)) != 0 {
		t.Fatal("zero total must be empty")
	}
}
