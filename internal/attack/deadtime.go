// Package attack implements the security analysis of Section VII: the
// object dead-time profiler behind the TEW-selection study (Figure 8),
// the probabilistic probe-attack model of the quantitative comparison
// (Table V) with a Monte-Carlo validation against the real randomized
// address space, the gadget scanner of the attack-scenario analysis
// (Table VI), and the data-only attack case study of Figure 12.
package attack

import (
	"math"
	"math/rand"

	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/stats"
)

// DeadTime is one sample: the time from the last write to a heap object
// until its deallocation, in cycles. Corrupting an object inside this
// window persists until the free, making dead time the attack surface the
// TEW target is chosen against (Section VII-A).
type DeadTime struct {
	// Object identifies the allocation.
	Object pmo.OID
	// Cycles is the dead-time length.
	Cycles uint64
}

// AllocProfile parameterizes one allocation-heavy benchmark for the
// profiler: how long objects live and how their writes spread over the
// lifetime. The defaults below model the eight SPEC and five Heap Layers
// programs measured in the paper.
type AllocProfile struct {
	// Name labels the benchmark.
	Name string
	// Objects is the number of allocate-write-free episodes.
	Objects int
	// MinLife and MaxLife bound object lifetimes in cycles
	// (log-uniformly distributed).
	MinLife, MaxLife uint64
	// Writes is the number of writes per object.
	Writes int
	// TailBias in [0,1) biases the last write toward the free point: 0
	// spreads writes uniformly, values near 1 cluster them early
	// (longer dead times).
	TailBias float64
}

// Profiles returns the thirteen benchmark profiles of Figure 8: eight
// SPEC-like programs with mostly long-lived objects and five Heap
// Layers-style allocator stress programs with rapid allocation churn.
func Profiles() []AllocProfile {
	us := uint64(params.CyclesPerMicro)
	var out []AllocProfile
	spec := []string{"mcf", "lbm", "imagick", "nab", "xz", "gcc", "perlbench", "omnetpp"}
	for i, n := range spec {
		out = append(out, AllocProfile{
			Name:     n,
			Objects:  400,
			MinLife:  4 * us,
			MaxLife:  uint64(2000+500*i) * us,
			Writes:   6,
			TailBias: 0.3,
		})
	}
	heap := []string{"cfrac", "espresso", "lindsay", "boxed-sim", "mudlle"}
	for i, n := range heap {
		out = append(out, AllocProfile{
			Name:     n,
			Objects:  800,
			MinLife:  1 * us,
			MaxLife:  uint64(100+60*i) * us,
			Writes:   3,
			TailBias: 0.15,
		})
	}
	return out
}

// ProfileDeadTimes runs one benchmark profile on a real PMO allocator
// with a simulated clock and returns the dead-time samples. Each episode
// allocates an object, writes it Writes times across its lifetime, and
// frees it; the dead time is the gap between the last write and the free.
func ProfileDeadTimes(p AllocProfile, seed int64) ([]DeadTime, error) {
	return ProfileDeadTimesObs(p, seed, nil)
}

// ProfileDeadTimesObs is ProfileDeadTimes with observability: each sample
// is additionally emitted on the track as an "attack/deadtime" instant at
// the last-write time with the dead-time length as its arg, so the report
// layer can rebuild the dead-time distribution from the event stream
// without re-running the scan. A nil track records nothing.
func ProfileDeadTimesObs(p AllocProfile, seed int64, track *obs.Track) ([]DeadTime, error) {
	dev := nvm.NewDevice(nvm.NVM, 1<<28)
	mgr := pmo.NewManager(dev)
	pool, err := mgr.Create("deadtime."+p.Name, 1<<26, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var clock uint64
	out := make([]DeadTime, 0, p.Objects)
	for i := 0; i < p.Objects; i++ {
		o, err := pool.Alloc(uint64(16 + rng.Intn(240)))
		if err != nil {
			return nil, err
		}
		life := logUniform(rng, p.MinLife, p.MaxLife)
		// Writes land in the first (1-TailBias) fraction... the last
		// write position defines the dead time.
		lastFrac := rng.Float64() * (1 - p.TailBias)
		lastWrite := clock + uint64(lastFrac*float64(life))
		for w := 0; w < p.Writes; w++ {
			at := uint64(float64(lastWrite-clock) * float64(w+1) / float64(p.Writes))
			_ = pool.Write8(o.Offset(), uint64(at))
		}
		free := clock + life
		out = append(out, DeadTime{Object: o, Cycles: free - lastWrite})
		track.Instant(lastWrite, obs.CatAttack, "deadtime", int64(free-lastWrite))
		if err := pool.Free(o); err != nil {
			return nil, err
		}
		clock = free + uint64(rng.Intn(2000))
	}
	return out, nil
}

func logUniform(rng *rand.Rand, lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	ratio := float64(hi) / float64(lo)
	return uint64(float64(lo) * math.Pow(ratio, rng.Float64()))
}

// DeadTimeStudy runs all profiles and returns the Figure 8 histogram (in
// microseconds) plus the fraction of dead times at or above the TEW
// target — the attack-surface reduction the paper reports as 95%.
func DeadTimeStudy(seed int64) (*stats.Histogram, float64, error) {
	return DeadTimeStudyObs(seed, nil)
}

// DeadTimeStudyObs is DeadTimeStudy with observability: each profile's
// samples are emitted as "attack/deadtime" instants on its own
// pseudo-thread track (profile index), so one recorder carries all
// thirteen benchmarks as separate tracks. A nil recorder records nothing.
func DeadTimeStudyObs(seed int64, rec *obs.Recorder) (*stats.Histogram, float64, error) {
	bounds := []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	h := stats.NewHistogram(bounds)
	for i, p := range Profiles() {
		samples, err := ProfileDeadTimesObs(p, seed, rec.Track(i))
		if err != nil {
			return nil, 0, err
		}
		for _, s := range samples {
			h.Add(params.ToMicros(s.Cycles))
		}
	}
	return h, h.FractionAtLeast(params.DefaultTEWMicros), nil
}
