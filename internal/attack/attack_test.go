package attack

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/terpc"
)

func TestDeadTimeStudyShape(t *testing.T) {
	h, atLeastTEW, err := DeadTimeStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if h.N == 0 {
		t.Fatal("no samples")
	}
	// The paper reports ~95% of dead times at or above 2us; our
	// synthetic profiles must land in the same regime.
	if atLeastTEW < 0.85 || atLeastTEW > 1.0 {
		t.Fatalf("P(dead >= 2us) = %.3f, want ~0.95", atLeastTEW)
	}
	// There must be a tail in both directions (not all in one bucket).
	nonzero := 0
	for i := range h.Counts {
		if h.Counts[i] > 0 {
			nonzero++
		}
	}
	if nonzero < 5 {
		t.Fatalf("distribution too concentrated: %d buckets", nonzero)
	}
}

func TestDeadTimeDeterministic(t *testing.T) {
	a, fa, err := DeadTimeStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	b, fb, err := DeadTimeStudy(2)
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb || a.N != b.N {
		t.Fatal("study not deterministic")
	}
}

func TestProfilesCoverThirteenBenchmarks(t *testing.T) {
	if got := len(Profiles()); got != 13 {
		t.Fatalf("profiles = %d, want 8 SPEC + 5 Heap Layers", got)
	}
}

func TestProbeModelTableV(t *testing.T) {
	// Paper Table V: MERR 0.015/x %, TERP 0.0005/x % for 1 GB, 40us EW.
	merr, terp := TableVRow(1.0, DefaultTERPAccessFraction)
	if math.Abs(merr-0.01526) > 0.002 {
		t.Fatalf("MERR @1us = %f, want ~0.015", merr)
	}
	if math.Abs(terp-0.000519) > 0.0002 {
		t.Fatalf("TERP @1us = %f, want ~0.0005", terp)
	}
	// x = 0.1us scales both 10x.
	merr01, terp01 := TableVRow(0.1, DefaultTERPAccessFraction)
	if math.Abs(merr01/merr-10) > 0.01 || math.Abs(terp01/terp-10) > 0.01 {
		t.Fatalf("0.1us row does not scale 10x: %f %f", merr01, terp01)
	}
	// TERP ~30x below MERR.
	if ratio := merr / terp; ratio < 20 || ratio > 40 {
		t.Fatalf("MERR/TERP ratio = %.1f, want ~30", ratio)
	}
}

func TestEntropyBits(t *testing.T) {
	m := ProbeModel{PMOBytes: 1 << 30}
	if m.EntropyBits() != 18 {
		t.Fatalf("1GB entropy = %d bits, want 18", m.EntropyBits())
	}
	m4 := ProbeModel{PMOBytes: 4 << 30}
	if m4.EntropyBits() >= m.EntropyBits() {
		t.Fatal("larger PMOs must have less placement entropy")
	}
}

func TestSuccessProbabilityCapped(t *testing.T) {
	m := ProbeModel{PMOBytes: 1 << 30, EWMicros: 1e12, AttackMicros: 0.001, AccessFraction: 1}
	if m.SuccessPercent() > 100 {
		t.Fatal("probability above 100%")
	}
	if (ProbeModel{}).SuccessPercent() != 0 {
		t.Fatal("zero attack time must be 0")
	}
}

func TestMonteCarloMatchesAnalytic(t *testing.T) {
	// probes per window chosen so the analytic probability is ~6%:
	// p = probes / 2^17 slots.
	probes := 8192
	want := float64(probes) / float64(1<<17)
	got, err := MonteCarloProbe(3000, probes, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.025 {
		t.Fatalf("monte carlo %.4f vs analytic %.4f", got, want)
	}
}

func TestMinEWForProbability(t *testing.T) {
	// Section VII-A: EWs of 40-160us keep success below 0.01% for a
	// 1 GB PMO probed at 1us per probe. 0.01% of 2^18 positions is
	// ~26us... the paper rounds; verify the ordering relation instead.
	ew := MinEWForProbability(0.1, 1<<30)
	if ew < 160 {
		t.Fatalf("0.1%% bound should allow EWs beyond 160us, got %.1f", ew)
	}
	if MinEWForProbability(0.01, 1<<30) >= ew {
		t.Fatal("tighter bound must allow smaller EWs")
	}
}

func TestGadgetScanner(t *testing.T) {
	prog, err := lang.Compile(`
pmo sensitive[64];
func handler() {
  var i;
  for (i = 0; i < 64; i = i + 1) {
    sensitive[i] = sensitive[i] + 1;
  }
  return 0;
}
func main() { handler(); return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	// Before insertion every gadget is uncovered.
	before := ScanProgram(prog)
	if before.Total == 0 {
		t.Fatal("no gadgets found")
	}
	if before.Covered != 0 {
		t.Fatalf("uninstrumented program has %d covered gadgets", before.Covered)
	}
	// After insertion all PMO gadgets are inside windows.
	if _, err := terpc.Insert(prog, terpc.Options{
		EWThreshold:  params.Micros(40),
		TEWThreshold: params.Micros(2),
	}); err != nil {
		t.Fatal(err)
	}
	after := ScanProgram(prog)
	if after.Total != before.Total {
		t.Fatalf("gadget count changed: %d -> %d", before.Total, after.Total)
	}
	if after.CoveredFraction() != 1.0 {
		t.Fatalf("covered fraction = %.2f, want 1.0", after.CoveredFraction())
	}
	// Store and load gadgets are both classified.
	stores := 0
	for _, g := range after.Gadgets {
		if g.Store {
			stores++
		}
	}
	if stores == 0 || stores == after.Total {
		t.Fatalf("expected a mix of loads and stores, got %d/%d", stores, after.Total)
	}
}

func TestScenarioRow(t *testing.T) {
	r := BuildScenarioRow("WHISPER", 0.245, 0.034)
	if math.Abs(r.DisarmedTERP()-0.966) > 1e-9 {
		t.Fatalf("TERP disarmed = %f", r.DisarmedTERP())
	}
	if math.Abs(r.DisarmedMERR()-0.755) > 1e-9 {
		t.Fatalf("MERR disarmed = %f", r.DisarmedMERR())
	}
}

func TestGadgetScanHandlesLoops(t *testing.T) {
	f := ir.NewFunc("loop")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	r := f.NewReg()
	b0.Emit(ir.Instr{Op: ir.Attach, Sym: "x", Imm: 3})
	b0.Term, b0.Succs = ir.Jmp, []int{b1.ID}
	b1.Emit(ir.Instr{Op: ir.LoadPM, Dst: r, A: r, Sym: "x"})
	b1.Emit(ir.Instr{Op: ir.Const, Dst: r, Imm: 1})
	b1.Term, b1.Cond, b1.Succs = ir.Br, r, []int{b1.ID, b2.ID}
	b2.Emit(ir.Instr{Op: ir.Detach, Sym: "x"})
	b2.Term, b2.Cond = ir.Ret, -1
	p := ir.NewProgram()
	p.Funcs["loop"] = f
	c := ScanProgram(p)
	if c.Total != 1 || c.Covered != 1 {
		t.Fatalf("census = %+v", c)
	}
}

func TestDOPParseGadgetDisarmedByTERP(t *testing.T) {
	opt := DOPOpts{Nodes: 8, Rounds: 300, Seed: 3, GadgetInParse: true}
	unprot, err := RunDOP(params.NewConfig(params.Unprotected, 40), opt)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := RunDOP(params.NewConfig(params.MM, 40), opt)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := RunDOP(params.NewConfig(params.TT, 40), opt)
	if err != nil {
		t.Fatal(err)
	}
	if !unprot.Succeeded(opt.Nodes) {
		t.Fatalf("unprotected attack failed: %+v", unprot)
	}
	if mm.Corrupted == 0 {
		t.Fatalf("MM should leave the in-window parse gadget usable: %+v", mm)
	}
	// The parse-site gadget fires outside any TEW: every attempt
	// faults on thread permission and nothing is corrupted.
	if tt.Corrupted != 0 {
		t.Fatalf("TERP parse gadget corrupted %d nodes", tt.Corrupted)
	}
	if tt.Faults == 0 {
		t.Fatal("TERP recorded no faults")
	}
}

func TestDOPPMGadgetHinderedByRandomization(t *testing.T) {
	opt := DOPOpts{Nodes: 8, Rounds: 300, Seed: 4, GadgetInParse: false}
	unprot, err := RunDOP(params.NewConfig(params.Unprotected, 40), opt)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := RunDOP(params.NewConfig(params.TT, 40), opt)
	if err != nil {
		t.Fatal(err)
	}
	if unprot.StaleAddr != 0 {
		t.Fatalf("unprotected run randomized: %+v", unprot)
	}
	if tt.StaleAddr == 0 {
		t.Fatalf("TERP never invalidated the attacker's address: %+v", tt)
	}
	// Randomization forces repeated re-disclosure, throttling progress.
	if tt.Corrupted >= unprot.Corrupted {
		t.Fatalf("TERP (%d) should corrupt fewer nodes than unprotected (%d)",
			tt.Corrupted, unprot.Corrupted)
	}
	if tt.Disclosures <= unprot.Disclosures {
		t.Fatalf("TERP should force more disclosures: %d vs %d",
			tt.Disclosures, unprot.Disclosures)
	}
}

func TestScenarioMatrix(t *testing.T) {
	m := BuildScenarioMatrix(0.966, 0.8998, 40)
	if len(m.Capabilities) != 2 || len(m.Relations) != 3 {
		t.Fatalf("matrix shape %dx%d", len(m.Capabilities), len(m.Relations))
	}
	// No-overlap gadgets are always prevented.
	for i := range m.Capabilities {
		if m.Cells[i][0].Verdict != "prevented" {
			t.Fatalf("no-overlap cell = %q", m.Cells[i][0].Verdict)
		}
	}
	// In-window single gadgets carry the probe bound (~0.015% at 40us).
	if p := m.Cells[0][1].SuccessPct; p < 0.01 || p > 0.02 {
		t.Fatalf("probe bound = %f", p)
	}
	if m.String() == "" {
		t.Fatal("empty render")
	}
}

func TestDeadTimeObsInstantsMatchSamples(t *testing.T) {
	p := Profiles()[0]
	rec := obs.NewRecorder(1 << 16)
	samples, err := ProfileDeadTimesObs(p, 1, rec.Track(0))
	if err != nil {
		t.Fatal(err)
	}
	ins := obs.FilterInstants(obs.Instants(rec.Events()), obs.CatAttack, "deadtime")
	if len(ins) != len(samples) {
		t.Fatalf("got %d deadtime instants, want %d (one per sample)", len(ins), len(samples))
	}
	for i, s := range samples {
		if uint64(ins[i].Arg) != s.Cycles {
			t.Fatalf("instant %d arg = %d, want dead time %d", i, ins[i].Arg, s.Cycles)
		}
	}
	// The obs variant must not perturb the base result.
	plain, err := ProfileDeadTimes(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(samples) || plain[0] != samples[0] {
		t.Fatalf("instrumented run diverged from plain run")
	}
}

func TestDeadTimeStudyObsTracksPerProfile(t *testing.T) {
	rec := obs.NewRecorder(1 << 16)
	_, frac, err := DeadTimeStudyObs(1, rec)
	if err != nil {
		t.Fatal(err)
	}
	_, plainFrac, err := DeadTimeStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	if frac != plainFrac {
		t.Fatalf("instrumented fraction %v != plain %v", frac, plainFrac)
	}
	threads := map[int]bool{}
	for _, e := range rec.Events() {
		threads[e.Thread] = true
	}
	if len(threads) != len(Profiles()) {
		t.Fatalf("events span %d tracks, want one per profile (%d)", len(threads), len(Profiles()))
	}
}

func TestMonteCarloProbeObsEvents(t *testing.T) {
	const trials, probes = 8, 5
	rec := obs.NewRecorder(1 << 12)
	frac, err := MonteCarloProbeObs(trials, probes, 1, rec)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := MonteCarloProbe(trials, probes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if frac != plain {
		t.Fatalf("instrumented fraction %v != plain %v", frac, plain)
	}
	ws := obs.FilterWindows(obs.Windows(rec.Events()), obs.CatExpo, "ew")
	if len(ws) != trials {
		t.Fatalf("got %d ew windows, want one per trial (%d)", len(ws), trials)
	}
	ins := obs.Instants(rec.Events())
	probeEvents := obs.FilterInstants(ins, obs.CatAttack, "probe")
	if len(probeEvents) == 0 || len(probeEvents) > trials*probes {
		t.Fatalf("got %d probe instants, want in (0, %d]", len(probeEvents), trials*probes)
	}
	hits := obs.FilterInstants(ins, obs.CatAttack, "probe-hit")
	if want := int(frac*trials + 0.5); len(hits) != want {
		t.Fatalf("got %d probe-hit instants, want %d", len(hits), want)
	}
	// Every probe must land inside its trial's window.
	for _, p := range probeEvents {
		inside := false
		for _, w := range ws {
			if p.TS >= w.Start && p.TS < w.End {
				inside = true
				break
			}
		}
		if !inside {
			t.Fatalf("probe at %d outside every exposure window", p.TS)
		}
	}
}
