package attack

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
)

// DOPOpts configures the Figure 12 data-only attack case study.
type DOPOpts struct {
	// Nodes is the length of the victim's persistent linked list (the
	// attack goal is to corrupt every node's prop field).
	Nodes int
	// Rounds is the number of request-processing rounds simulated.
	Rounds int
	// Seed seeds the simulation.
	Seed int64
	// GadgetInParse places the exploited gadget in the request-parsing
	// code (outside the PM section). TERP disarms such gadgets
	// entirely — the thread holds no permission there. When false the
	// gadget sits inside the PM update section, where only address
	// randomization hinders it.
	GadgetInParse bool
}

// DOPResult reports the case-study outcome.
type DOPResult struct {
	// Scheme is the protection configuration.
	Scheme params.Scheme
	// Corrupted is the number of successful gadget writes.
	Corrupted int
	// Faults counts gadget attempts stopped by a protection fault.
	Faults int
	// StaleAddr counts gadget attempts that targeted an address made
	// useless by randomization (the write landed nowhere or faulted).
	StaleAddr int
	// Disclosures counts times the attacker re-learned the base.
	Disclosures int
}

// Succeeded reports whether the attacker corrupted the whole list.
func (r DOPResult) Succeeded(nodes int) bool { return r.Corrupted >= nodes }

// RunDOP simulates the FTP-server data-only attack of Figure 12 under
// one protection configuration. The victim processes rounds of requests:
// parse (no PM permission needed), then a PM section that walks its
// persistent linked list inside an attach-detach pair. The attacker has
// corrupted the request buffer and controls the victim's locals, giving
// it one arbitrary-write gadget per round at the configured code site,
// plus a memory-disclosure gadget it uses to learn the list's current
// virtual address. Randomization between windows makes learned addresses
// stale; thread exposure windows disarm gadget sites outside PM sections.
func RunDOP(cfg params.Config, opt DOPOpts) (DOPResult, error) {
	if opt.Nodes == 0 {
		opt.Nodes = 16
	}
	if opt.Rounds == 0 {
		opt.Rounds = 400
	}
	res := DOPResult{Scheme: cfg.Scheme}

	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
	rt := core.NewRuntime(cfg, mgr)
	ctx := rt.NewThread(sim.SingleThread())
	p, err := mgr.Create("victim.list", 1<<26, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		return res, err
	}
	// Build the linked list: node = [prop | next], head stored first.
	nodes := make([]pmo.OID, opt.Nodes)
	for i := range nodes {
		if nodes[i], err = p.Alloc(16); err != nil {
			return res, err
		}
	}
	for i, n := range nodes {
		if err := p.Write8(n.Offset(), 100); err != nil { // prop
			return res, err
		}
		next := uint64(0)
		if i+1 < len(nodes) {
			next = uint64(nodes[i+1])
		}
		if err := p.Write8(n.Offset()+8, next); err != nil {
			return res, err
		}
	}

	rng := rand.New(rand.NewSource(opt.Seed + 7))
	var attackerBase uint64
	var haveAddr bool
	var attackerEpoch uint64 // placement epoch when the address was learned

	// epoch advances whenever the PMO's placement changes: every real
	// attach picks a fresh random base and every sweep randomization
	// moves it in place.
	epoch := func() uint64 {
		return rt.Counts.Randomizations + rt.Counts.AttachSyscalls
	}

	attach := func() error {
		if cfg.Scheme == params.Unprotected {
			return ctx.Attach(p, paging.ReadWrite)
		}
		return ctx.Attach(p, paging.ReadWrite)
	}
	detach := func() error {
		if cfg.Scheme == params.Unprotected {
			return nil
		}
		return ctx.Detach(p)
	}

	target := 0
	gadget := func() {
		// One arbitrary write via the corrupted locals: the attacker
		// aims at node[target].prop using its learned base address.
		if !haveAddr {
			return
		}
		if epoch() != attackerEpoch {
			// The address was learned before a randomization; the
			// write goes to a dead location.
			res.StaleAddr++
			haveAddr = false
			if err := ctx.StoreVA(attackerBase+nodes[target].Offset(), 999); err != nil {
				res.Faults++
			}
			return
		}
		if err := ctx.StoreVA(attackerBase+nodes[target].Offset(), 999); err != nil {
			res.Faults++
			haveAddr = false
			return
		}
		res.Corrupted++
		target = (target + 1) % opt.Nodes
	}
	disclose := func() {
		// The disclosure gadget leaks a pointer to the list; it also
		// needs access permission at its site.
		if base, ok := rt.MappingBase(p.ID); ok {
			if _, err := ctx.LoadVA(base + nodes[0].Offset()); err == nil {
				attackerBase = base
				haveAddr = true
				attackerEpoch = epoch()
				res.Disclosures++
			} else {
				res.Faults++
			}
		}
	}

	// mmBatch is how many rounds one manual MM bracket spans.
	const mmBatch = 8
	for round := 0; round < opt.Rounds; round++ {
		// Parse phase. Under TERP insertion it runs outside any PM
		// window; the manual MM bracket wraps whole handler batches,
		// and the unprotected baseline maps the PMO once up front.
		switch cfg.Scheme {
		case params.Unprotected:
			if round == 0 {
				if err := attach(); err != nil {
					return res, err
				}
			}
		case params.MM:
			if round%mmBatch == 0 {
				if err := attach(); err != nil {
					return res, err
				}
			}
		}
		ctx.Compute(1500) // parse
		if opt.GadgetInParse && cfg.Scheme != params.MM && cfg.Scheme != params.Unprotected {
			// TERP: the parse-site gadget fires with no window open.
			if !haveAddr {
				disclose()
			} else {
				gadget()
			}
		}

		// PM section.
		if cfg.Scheme != params.MM && cfg.Scheme != params.Unprotected {
			if err := attach(); err != nil {
				return res, err
			}
		}
		// Legitimate work: walk a random node.
		n := nodes[rng.Intn(len(nodes))]
		if _, err := ctx.Load(n); err != nil {
			return res, fmt.Errorf("victim load: %w", err)
		}
		if opt.GadgetInParse && (cfg.Scheme == params.MM || cfg.Scheme == params.Unprotected) {
			// Under MM the manual bracket covers the parse code too,
			// so the same gadget fires inside the window.
			if !haveAddr {
				disclose()
			} else {
				gadget()
			}
		}
		if !opt.GadgetInParse {
			if !haveAddr {
				disclose()
			} else {
				gadget()
			}
		}
		if cfg.Scheme != params.MM && cfg.Scheme != params.Unprotected {
			if err := detach(); err != nil {
				return res, err
			}
		}
		if cfg.Scheme == params.MM && round%mmBatch == mmBatch-1 {
			if err := detach(); err != nil {
				return res, err
			}
		}
		ctx.Compute(12_000) // think time between requests
		// Let the hardware sweep run between rounds.
		rt.Sweep(ctx)
	}
	return res, nil
}
