package attack

import (
	"math/rand"

	"repro/internal/obs"
	"repro/internal/paging"
	"repro/internal/params"
)

// ProbeModel is the analytic attack model behind Table V: an attacker
// holding an arbitrary-read/write primitive probes for the base address
// of a randomized PMO. Each probe takes AttackMicros; the PMO moves (or
// disappears) at the end of every exposure window, so the attacker gets
// EW/attack probes against EntropyBits of placement entropy per window.
// Under TERP the attacker's own thread additionally needs thread
// permission, which it only holds for AccessFraction of the window.
type ProbeModel struct {
	// PMOBytes is the PMO size (1 GB in the paper).
	PMOBytes uint64
	// EWMicros is the exposure window in microseconds.
	EWMicros float64
	// AttackMicros is the duration of one probe (x in Table V).
	AttackMicros float64
	// AccessFraction is the fraction of the window during which the
	// attacking thread holds access (1.0 for MERR; the measured thread
	// exposure rate under TERP).
	AccessFraction float64
}

// EntropyBits returns the placement entropy for the PMO: the number of
// distinct attachAlign-aligned positions a PMO of this size can occupy in
// the 47-bit user space (2^18 for 1 GB, as Table V assumes).
func (m ProbeModel) EntropyBits() int {
	// 47-bit space, 1 GB alignment slots, half usable after masking the
	// PMO's own footprint: 2^(47-30) / ceil(size/1GB).
	slots := uint64(1) << 17
	per := (m.PMOBytes + (1 << 30) - 1) >> 30
	if per == 0 {
		per = 1
	}
	slots /= per
	bits := 0
	for s := slots; s > 1; s >>= 1 {
		bits++
	}
	return bits + 1 // table uses 18-bit entropy for 1 GB
}

// SuccessPercent returns the probability (in percent) that the attacker
// finds the PMO base within one exposure window — the Table V entries.
func (m ProbeModel) SuccessPercent() float64 {
	if m.AttackMicros <= 0 {
		return 0
	}
	probes := m.EWMicros / m.AttackMicros * m.AccessFraction
	positions := float64(uint64(1) << m.EntropyBits())
	p := probes / positions
	if p > 1 {
		p = 1
	}
	return p * 100
}

// TableVRow computes the MERR and TERP success percentages for one attack
// time, using the paper's parameters (1 GB PMO, 40 us EW) and the
// measured TERP thread-access fraction.
func TableVRow(attackMicros, terpAccessFraction float64) (merrPct, terpPct float64) {
	merr := ProbeModel{PMOBytes: 1 << 30, EWMicros: 40, AttackMicros: attackMicros, AccessFraction: 1}
	terp := merr
	terp.AccessFraction = terpAccessFraction
	return merr.SuccessPercent(), terp.SuccessPercent()
}

// MonteCarloProbe validates the analytic model empirically against the
// real randomized address space: for each trial a PMO is attached at a
// randomized base and the attacker issues `probes` guesses at 1
// GB-aligned user addresses; the trial succeeds if any guess hits the
// mapping. It returns the measured success fraction.
func MonteCarloProbe(trials int, probes int, seed int64) (float64, error) {
	return MonteCarloProbeObs(trials, probes, seed, nil)
}

// MonteCarloProbeObs is MonteCarloProbe with observability. Each trial is
// modeled as one exposure window of the paper's default EW length on the
// recorder's hardware track ("expo/ew" async span, arg = trial), the
// attacker's guesses inside it as "attack/probe" instants on thread 0
// (arg = probe ordinal), and a success as an "attack/probe-hit" instant
// at the same timestamp — so the report layer can correlate probe hits
// with exposure windows straight from the event stream, without
// re-running the scan. A nil recorder records nothing.
func MonteCarloProbeObs(trials int, probes int, seed int64, rec *obs.Recorder) (float64, error) {
	rng := rand.New(rand.NewSource(seed))
	hits := 0
	window := params.Micros(params.DefaultEWMicros)
	probeStep := params.Micros(1) // state-of-the-art probe rate: 1 us each
	hw := rec.Track(obs.HWThread)
	att := rec.Track(0)
	for t := 0; t < trials; t++ {
		start := uint64(t) * window
		hw.AsyncBegin(start, obs.CatExpo, "ew", int64(t))
		as := paging.NewAddressSpace(rand.New(rand.NewSource(rng.Int63())))
		m, err := as.Attach(1, 1<<30, nil, 0, paging.ReadWrite)
		if err != nil {
			return 0, err
		}
		for p := 0; p < probes; p++ {
			at := start + uint64(p)*probeStep
			if at >= start+window {
				at = start + window - 1 // clamp: probes stay inside the window
			}
			att.Instant(at, obs.CatAttack, "probe", int64(p))
			guess := (rng.Uint64() % (1 << 17)) << 30
			if guess == m.Base {
				att.Instant(at, obs.CatAttack, "probe-hit", int64(p))
				hits++
				break
			}
		}
		hw.AsyncEnd(start+window, obs.CatExpo, "ew", int64(t))
	}
	return float64(hits) / float64(trials), nil
}

// AttackTimes returns the attack durations evaluated in Table V.
func AttackTimes() []float64 { return []float64{1.0, 0.1} }

// DefaultTERPAccessFraction is the thread exposure rate the paper's
// Table V analysis uses (3.4%, the measured WHISPER TER).
const DefaultTERPAccessFraction = 0.034

// MinEWForProbability returns the largest exposure window (in
// microseconds) that keeps the probe success probability below the given
// bound for the state-of-the-art probe rate (1 us per probe) — the
// Section VII-A rationale for evaluating 40/80/160 us windows.
func MinEWForProbability(bound float64, pmoBytes uint64) float64 {
	m := ProbeModel{PMOBytes: pmoBytes, AttackMicros: 1, AccessFraction: 1}
	positions := float64(uint64(1) << m.EntropyBits())
	// bound (in percent) = EW/positions * 100.
	return bound / 100 * positions
}
