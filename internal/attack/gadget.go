package attack

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Gadget is one data-only gadget: a load or store instruction an attacker
// with control over the surrounding locals could abuse as an arbitrary
// read/write primitive (Section VII-D: assignment, dereference and
// addition operations on attacker-controlled operands).
type Gadget struct {
	// Func and Block locate the instruction.
	Func  string
	Block int
	// Index is the instruction index within the block.
	Index int
	// Store distinguishes write gadgets from read gadgets.
	Store bool
	// PMO names the PMO the gadget touches.
	PMO string
	// Covered reports whether the gadget sits inside an attach-detach
	// pair (it can reach the PMO only while the thread holds
	// permission); uncovered gadgets touching a PMO are always-on.
	Covered bool
}

// GadgetCensus summarizes a program scan (the static side of Table VI).
type GadgetCensus struct {
	// Total is the number of PMO read/write gadgets found.
	Total int
	// Covered is how many sit inside attach-detach windows.
	Covered int
	// Gadgets lists them all.
	Gadgets []Gadget
}

// CoveredFraction returns the share of gadgets that require thread
// permission to fire.
func (c GadgetCensus) CoveredFraction() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Covered) / float64(c.Total)
}

// ScanProgram walks an instrumented IR program and classifies every PMO
// access gadget by whether it executes inside an attach-detach window.
// The walk tracks attach state along paths exactly like terpc.Verify.
func ScanProgram(p *ir.Program) GadgetCensus {
	var census GadgetCensus
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		scanFunc(name, p.Funcs[name], &census)
	}
	return census
}

func scanFunc(name string, f *ir.Func, census *GadgetCensus) {
	seen := map[int]bool{}
	var dfs func(b int, attached map[string]bool)
	dfs = func(b int, attached map[string]bool) {
		if seen[b] {
			return
		}
		seen[b] = true
		cur := map[string]bool{}
		for k := range attached {
			cur[k] = true
		}
		blk := f.Blocks[b]
		for i, in := range blk.Instrs {
			switch in.Op {
			case ir.Attach:
				cur[in.Sym] = true
			case ir.Detach:
				delete(cur, in.Sym)
			case ir.LoadPM, ir.StorePM:
				census.Total++
				g := Gadget{
					Func: name, Block: b, Index: i,
					Store:   in.Op == ir.StorePM,
					PMO:     in.Sym,
					Covered: cur[in.Sym],
				}
				if g.Covered {
					census.Covered++
				}
				census.Gadgets = append(census.Gadgets, g)
			}
		}
		for _, s := range blk.Succs {
			dfs(s, cur)
		}
	}
	dfs(f.Entry, map[string]bool{})
}

// ScenarioRow is one row of Table VI: for a given gadget/window
// relationship, the time-weighted fraction of gadget opportunities the
// scheme disarms. Following Section VII-D, a gadget is only usable while
// its thread holds access, so the disarmed fraction under TERP is
// 1 - TER, while MERR leaves the full exposure rate usable (1 - ER
// disarmed).
type ScenarioRow struct {
	// Suite names the workload suite ("WHISPER" or "SPEC").
	Suite string
	// MERRUsable and TERPUsable are time fractions during which an
	// in-window gadget can fire (the paper quotes MERR keeping 24.5% /
	// 27.2% and TERP disarming 96.6% / 89.98%).
	MERRUsable, TERPUsable float64
}

// DisarmedTERP returns the TERP-disarmed fraction.
func (r ScenarioRow) DisarmedTERP() float64 { return 1 - r.TERPUsable }

// DisarmedMERR returns the MERR-disarmed fraction.
func (r ScenarioRow) DisarmedMERR() float64 { return 1 - r.MERRUsable }

// BuildScenarioRow derives the Table VI row from measured exposure rates:
// er is the MERR process exposure rate and ter the TERP thread exposure
// rate of the same suite.
func BuildScenarioRow(suite string, er, ter float64) ScenarioRow {
	return ScenarioRow{Suite: suite, MERRUsable: er, TERPUsable: ter}
}

// ScenarioCell is one cell of the full Table VI matrix: what protection a
// gadget class gets under TERP, with the quantitative bound when one
// applies.
type ScenarioCell struct {
	// Verdict is the qualitative outcome ("prevented", "hindered",
	// "accumulates").
	Verdict string
	// Detail explains the mechanism in the paper's terms.
	Detail string
	// SuccessPct, when non-negative, is the per-window success bound
	// (percent).
	SuccessPct float64
}

// ScenarioMatrix is the full Table VI analysis: rows are attacker
// capabilities, columns are the gadget/window relationships.
type ScenarioMatrix struct {
	// Capabilities name the rows.
	Capabilities []string
	// Relations name the columns.
	Relations []string
	// Cells is indexed [capability][relation].
	Cells [][]ScenarioCell
	// DisarmedWHISPER and DisarmedSPEC are the measured disarm rates
	// quoted in the "no overlap" column.
	DisarmedWHISPER, DisarmedSPEC float64
}

// BuildScenarioMatrix assembles the Table VI matrix from the measured
// disarm rates and the probe model at the given EW (microseconds).
func BuildScenarioMatrix(disarmWhisper, disarmSpec, ewMicros float64) ScenarioMatrix {
	probe := ProbeModel{PMOBytes: 1 << 30, EWMicros: ewMicros, AttackMicros: 1, AccessFraction: 1}
	p := probe.SuccessPercent()
	m := ScenarioMatrix{
		Capabilities: []string{
			"one arbitrary read or write",
			"infinite loop of arbitrary reads/writes",
		},
		Relations: []string{
			"no overlap with windows",
			"gadget inside an attach-detach pair",
			"gadget includes an attach-detach pair",
		},
		DisarmedWHISPER: disarmWhisper,
		DisarmedSPEC:    disarmSpec,
	}
	m.Cells = [][]ScenarioCell{
		{
			{Verdict: "prevented", Detail: "no thread permission at the gadget site", SuccessPct: 0},
			{Verdict: "hindered", Detail: "must find the randomized base within one EW", SuccessPct: p},
			{Verdict: "hindered", Detail: "same bound; the window closes at the EW target", SuccessPct: p},
		},
		{
			{Verdict: "prevented", Detail: fmt.Sprintf("%.1f%%/%.1f%% of gadget time disarmed (WHISPER/SPEC)",
				100*disarmWhisper, 100*disarmSpec), SuccessPct: 0},
			{Verdict: "hindered", Detail: "interactive probing is impossible (network RTT >> EW); non-interactive probing is bounded per window", SuccessPct: p},
			{Verdict: "accumulates", Detail: "probability accumulates across windows but each session is EW-bounded and re-randomized", SuccessPct: -1},
		},
	}
	return m
}

// String renders the matrix in a compact table form.
func (m ScenarioMatrix) String() string {
	out := ""
	for i, cap := range m.Capabilities {
		out += cap + ":\n"
		for j, rel := range m.Relations {
			c := m.Cells[i][j]
			out += fmt.Sprintf("  %-38s %-10s %s", rel, c.Verdict, c.Detail)
			if c.SuccessPct > 0 {
				out += fmt.Sprintf(" (p=%.4f%%/window)", c.SuccessPct)
			}
			out += "\n"
		}
	}
	return out
}
