// Package crash is the fault-injection subsystem: it drives a workload
// over the persist-buffer model of internal/nvm, enumerates crash points
// at persist events (fences, every Nth persist, or a seeded-random
// sample), materializes the durable image a power failure at each point
// would leave — optionally dropping an adversarial subset of
// flushed-but-unfenced lines to model relaxed persist ordering — and
// verifies that recovery from every image restores all invariants: the
// undo log truncates, the PMO allocator stays consistent, and the
// workload's own durable structures audit clean.
//
// Everything is deterministic: crash points are chosen from the seeded
// event stream, adversarial drops are seeded per (run seed, event index),
// and no wall-clock time is consulted, so a spec always yields the same
// report.
package crash

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/whisper"
)

// Policy selects which persist events become crash points.
type Policy string

// Crash-point enumeration policies.
const (
	// FencePolicy crashes at fence events (power fails just before the
	// drain takes effect).
	FencePolicy Policy = "fence"
	// NthPolicy crashes at every Nth persist event (flushes and fences).
	NthPolicy Policy = "nth"
	// RandomPolicy crashes at a seeded-random sample of persist events.
	RandomPolicy Policy = "random"
)

// Spec describes one deterministic fault-injection run.
type Spec struct {
	// Workload names a WHISPER workload or "txnpairs".
	Workload string
	// Ops is the number of operations the instrumented run executes.
	Ops int
	// Seed seeds the workload stream, the random crash-point sample, and
	// the adversarial line drops.
	Seed int64
	// Policy selects candidate events; Every thins fence/nth candidates
	// to every Every-th one (0 means every one).
	Policy Policy
	Every  int
	// PointStart skips that many candidates and Points caps how many are
	// injected (0 means all remaining) — together they let a runner fan
	// one enumeration out over several cells.
	PointStart int
	Points     int
	// Adversarial also drops a seeded subset of flushed-but-unfenced
	// lines from each image (relaxed persist ordering).
	Adversarial bool
	// CrossCheck verifies every sampled image against the exhaustive
	// crash-state enumerator: whatever the policy and the adversary
	// choose, the image must be one nvm.ForEachCrashImage materializes
	// at the same instant. Points whose in-flight writeback set exceeds
	// the enumeration cap are skipped (and counted), not failed.
	CrossCheck bool
	// LineSize overrides the persist-buffer line size (0 = default).
	LineSize uint64
}

// PointResult records one injected crash and its verification.
type PointResult struct {
	// Event is the global persist-event ordinal the crash hit, of Kind
	// "flush" or "fence".
	Event uint64 `json:"event"`
	Kind  string `json:"kind"`
	// Dropped is how many flushed-but-unfenced lines the adversary
	// discarded from the image.
	Dropped int `json:"dropped"`
	// Undone is the number of undo records recovery rolled back.
	Undone int `json:"undone"`
	// Checked reports that the image's membership in the exhaustive
	// enumeration was verified (CrossCheck specs only; false when the
	// point was skipped at the enumeration cap).
	Checked bool `json:"checked,omitempty"`
	// Err is the verification failure, empty when the image recovered
	// cleanly with all invariants intact.
	Err string `json:"err,omitempty"`
}

// Report is the outcome of a fault-injection run.
type Report struct {
	Workload    string `json:"workload"`
	Policy      Policy `json:"policy"`
	Adversarial bool   `json:"adversarial"`
	Ops         int    `json:"ops"`
	// Events and Fences count the full instrumented run's persist
	// events; Candidates is how many matched the policy before the
	// PointStart/Points window was applied.
	Events     uint64        `json:"events"`
	Fences     uint64        `json:"fences"`
	Candidates int           `json:"candidates"`
	Points     []PointResult `json:"points"`
	// Failures counts points whose verification failed.
	Failures int `json:"failures"`
	// Undone sums rolled-back records over all points.
	Undone int `json:"undone"`
	// CrossChecked and CrossSkipped count points whose image was checked
	// against the exhaustive enumeration, and points skipped because the
	// in-flight writeback set exceeded the enumeration cap.
	CrossChecked int `json:"crossChecked,omitempty"`
	CrossSkipped int `json:"crossSkipped,omitempty"`
}

// makeWorkload builds the named workload; every one must be Recoverable.
func makeWorkload(name string) (whisper.Recoverable, int, uint64, error) {
	if name == "txnpairs" {
		return NewTxnPairs(), 16, 1 << 24, nil
	}
	mk, err := whisper.ByName(name)
	if err != nil {
		return nil, 0, 0, err
	}
	w, ok := mk().(whisper.Recoverable)
	if !ok {
		return nil, 0, 0, fmt.Errorf("crash: workload %q is not recoverable", name)
	}
	return w, whisper.LogCapacity, 2 << 30, nil
}

// instrumented runs the spec's workload over a persist buffer, invoking
// hook at every persist event, and returns the machine pieces. The run is
// fully determined by the spec, so calling it twice replays the same
// event stream.
func (s Spec) instrumented(hook func(dev *nvm.Device, buf *nvm.PersistBuffer, w whisper.Recoverable, e nvm.Event)) (*nvm.PersistBuffer, whisper.Recoverable, error) {
	w, _, devSize, err := makeWorkload(s.Workload)
	if err != nil {
		return nil, nil, err
	}
	dev := nvm.NewDevice(nvm.NVM, devSize)
	mgr := pmo.NewManager(dev)
	rt := core.NewRuntime(params.NewConfig(params.Unprotected, params.DefaultEWMicros), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	rng := rand.New(rand.NewSource(s.Seed))
	if err := w.Setup(mgr, ctx, rng); err != nil {
		return nil, nil, fmt.Errorf("crash: %s setup: %w", s.Workload, err)
	}
	if err := ctx.Attach(w.PMO(), paging.ReadWrite); err != nil {
		return nil, nil, err
	}
	// Enable the buffer only now: the load phase is durable ground truth,
	// and every measured op's persistence flows through the buffer.
	buf := dev.EnablePersistBuffer(s.LineSize)
	if hook != nil {
		buf.SetEventHook(func(e nvm.Event) { hook(dev, buf, w, e) })
	}
	for i := 0; i < s.Ops; i++ {
		if err := w.Op(ctx, rng); err != nil {
			return nil, nil, fmt.Errorf("crash: %s op %d: %w", s.Workload, i, err)
		}
	}
	return buf, w, nil
}

// dropper returns the adversarial line filter for a crash at event e: a
// deterministic coin per flushed-but-unfenced line, seeded by (run seed,
// event index). CrashImage consults it in ascending line order, so the
// decisions replay identically. Returns nil (strict ordering: every
// issued writeback survives) for non-adversarial specs.
func (s Spec) dropper(e nvm.Event, dropped *int) func(uint64) bool {
	if !s.Adversarial {
		return nil
	}
	r := rand.New(rand.NewSource(s.Seed ^ int64(e.Index)*0x9e3779b9))
	return func(uint64) bool {
		if r.Intn(2) == 1 {
			*dropped++
			return true
		}
		return false
	}
}

// imageInEnumeration reports whether img is one of the images the
// exhaustive enumerator materializes at the current instant — the
// cross-check that the sampling injector (dropper included) can never
// produce a state outside the litmus engine's state space. The walk
// stops at the first hash match; the error is the enumeration cap.
func imageInEnumeration(buf *nvm.PersistBuffer, img map[uint64][]byte) (bool, error) {
	want := nvm.ImageHash(img)
	found := false
	err := buf.ForEachCrashImage(func(cand map[uint64][]byte) bool {
		if nvm.ImageHash(cand) == want {
			found = true
			return false
		}
		return true
	})
	return found, err
}

// verify reopens the PMO from a post-crash image and checks every
// recovery invariant, returning the rolled-back record count.
func verify(img map[uint64][]byte, devSize uint64, w whisper.Recoverable, logCap int) (int, error) {
	dev := nvm.NewDevice(nvm.NVM, devSize)
	dev.Restore(img)
	mgr := pmo.NewManager(dev)
	p, err := mgr.Open(w.PMO().Name)
	if err != nil {
		return 0, fmt.Errorf("reopen: %w", err)
	}
	l, err := txn.OpenLog(p, w.LogOID(), logCap)
	if err != nil {
		return 0, fmt.Errorf("open log: %w", err)
	}
	undone, err := l.Recover()
	if err != nil {
		return 0, fmt.Errorf("recover: %w", err)
	}
	if n, err := l.Pending(); err != nil {
		return undone, err
	} else if n != 0 {
		return undone, fmt.Errorf("log not truncated: %d records pending", n)
	}
	if err := p.CheckConsistency(); err != nil {
		return undone, fmt.Errorf("allocator: %w", err)
	}
	if err := w.CheckInvariants(p); err != nil {
		return undone, fmt.Errorf("invariants: %w", err)
	}
	return undone, nil
}

// Run executes the spec: an enumeration pass collects the candidate
// events, then a replay pass captures a post-crash image at each selected
// point and verifies recovery from it on the spot (images are never all
// held at once).
func Run(s Spec) (*Report, error) {
	if s.Ops <= 0 {
		return nil, fmt.Errorf("crash: ops must be positive")
	}
	every := uint64(1)
	if s.Every > 1 {
		every = uint64(s.Every)
	}

	// Pass 1: enumerate candidate events under the policy.
	var candidates []uint64
	var fenceSeen uint64
	_, _, err := s.instrumented(func(_ *nvm.Device, _ *nvm.PersistBuffer, _ whisper.Recoverable, e nvm.Event) {
		switch s.Policy {
		case FencePolicy:
			if e.Kind == nvm.FenceEvent {
				if fenceSeen%every == 0 {
					candidates = append(candidates, e.Index)
				}
				fenceSeen++
			}
		case NthPolicy:
			if e.Index%every == 0 {
				candidates = append(candidates, e.Index)
			}
		case RandomPolicy:
			candidates = append(candidates, e.Index) // sampled below
		default:
		}
	})
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("crash: policy %q matched no events", s.Policy)
	}
	if s.Policy == RandomPolicy {
		// Seeded sample without replacement, kept in event order.
		r := rand.New(rand.NewSource(s.Seed ^ 0x726e64))
		want := s.Points + s.PointStart
		if want <= 0 || want > len(candidates) {
			want = len(candidates)
		}
		picked := r.Perm(len(candidates))[:want]
		sort.Ints(picked)
		sample := make([]uint64, len(picked))
		for i, idx := range picked {
			sample[i] = candidates[idx]
		}
		candidates = sample
	}
	total := len(candidates)

	// Apply the cell window.
	if s.PointStart >= len(candidates) {
		return nil, fmt.Errorf("crash: point start %d beyond %d candidates", s.PointStart, len(candidates))
	}
	candidates = candidates[s.PointStart:]
	if s.Points > 0 && s.Points < len(candidates) {
		candidates = candidates[:s.Points]
	}

	// Pass 2: replay, capture and verify each selected point in stream
	// order.
	rep := &Report{
		Workload:    s.Workload,
		Policy:      s.Policy,
		Adversarial: s.Adversarial,
		Ops:         s.Ops,
		Candidates:  total,
	}
	_, logCap, devSize, err := makeWorkload(s.Workload)
	if err != nil {
		return nil, err
	}
	next := 0
	buf, _, err := s.instrumented(func(dev *nvm.Device, buf *nvm.PersistBuffer, w whisper.Recoverable, e nvm.Event) {
		if next >= len(candidates) || e.Index != candidates[next] {
			return
		}
		next++
		pr := PointResult{Event: e.Index, Kind: e.Kind.String()}
		img := dev.CrashImage(s.dropper(e, &pr.Dropped))
		undone, verr := verify(img, devSize, w, logCap)
		pr.Undone = undone
		if verr != nil {
			pr.Err = verr.Error()
		}
		if s.CrossCheck {
			if found, cerr := imageInEnumeration(buf, img); cerr != nil {
				rep.CrossSkipped++
			} else {
				pr.Checked = true
				rep.CrossChecked++
				if !found {
					if pr.Err != "" {
						pr.Err += "; "
					}
					pr.Err += "sampled image not in exhaustive enumeration"
				}
			}
		}
		if pr.Err != "" {
			rep.Failures++
		}
		rep.Undone += undone
		rep.Points = append(rep.Points, pr)
	})
	if err != nil {
		return nil, err
	}
	if next != len(candidates) {
		return nil, fmt.Errorf("crash: replay visited %d of %d points", next, len(candidates))
	}
	rep.Events = buf.Events()
	rep.Fences = buf.Fences()
	return rep, nil
}
