package crash

import (
	"reflect"
	"testing"
)

func TestFencePolicyTxnPairsAllPointsRecover(t *testing.T) {
	rep, err := Run(Spec{Workload: "txnpairs", Ops: 40, Seed: 1, Policy: FencePolicy})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates == 0 || len(rep.Points) != rep.Candidates {
		t.Fatalf("candidates=%d points=%d", rep.Candidates, len(rep.Points))
	}
	if rep.Failures != 0 {
		for _, p := range rep.Points {
			if p.Err != "" {
				t.Errorf("event %d (%s): %s", p.Event, p.Kind, p.Err)
			}
		}
		t.Fatalf("%d of %d points failed verification", rep.Failures, len(rep.Points))
	}
	if rep.Undone == 0 {
		t.Fatal("no crash point ever rolled back a record — injection hit nothing mid-transaction")
	}
	if rep.Events == 0 || rep.Fences == 0 {
		t.Fatalf("stats: events=%d fences=%d", rep.Events, rep.Fences)
	}
}

func TestAdversarialRandomTxnPairsRecovers(t *testing.T) {
	rep, err := Run(Spec{Workload: "txnpairs", Ops: 60, Seed: 7, Policy: RandomPolicy, Points: 12, Adversarial: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 12 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	if rep.Failures != 0 {
		for _, p := range rep.Points {
			if p.Err != "" {
				t.Errorf("event %d: %s", p.Event, p.Err)
			}
		}
		t.Fatal("adversarial images failed verification")
	}
	dropped := 0
	for _, p := range rep.Points {
		dropped += p.Dropped
	}
	if dropped == 0 {
		t.Fatal("adversary never dropped a line — the relaxed-ordering path is untested")
	}
}

// TestCrossCheckSampledImagesAreEnumerable is the property tying the
// sampling injector to the exhaustive enumerator: whatever policy picks
// the crash point and whatever subset the adversary drops, the
// materialized image must be one the litmus engine's ForEachCrashImage
// walk produces at the same instant. Both go through the same
// CrashImage path, so a divergence would mean the two materializations
// have drifted apart.
func TestCrossCheckSampledImagesAreEnumerable(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"fence", Spec{Workload: "txnpairs", Ops: 40, Seed: 1, Policy: FencePolicy, CrossCheck: true}},
		{"fence/adv", Spec{Workload: "txnpairs", Ops: 40, Seed: 3, Policy: FencePolicy, Adversarial: true, CrossCheck: true}},
		{"nth", Spec{Workload: "txnpairs", Ops: 40, Seed: 5, Policy: NthPolicy, Every: 7, CrossCheck: true}},
		{"nth/adv", Spec{Workload: "txnpairs", Ops: 40, Seed: 5, Policy: NthPolicy, Every: 7, Adversarial: true, CrossCheck: true}},
		{"random", Spec{Workload: "txnpairs", Ops: 40, Seed: 9, Policy: RandomPolicy, Points: 10, CrossCheck: true}},
		{"random/adv", Spec{Workload: "txnpairs", Ops: 40, Seed: 9, Policy: RandomPolicy, Points: 10, Adversarial: true, CrossCheck: true}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failures != 0 {
				for _, p := range rep.Points {
					if p.Err != "" {
						t.Errorf("event %d (%s): %s", p.Event, p.Kind, p.Err)
					}
				}
				t.Fatalf("%d of %d points failed", rep.Failures, len(rep.Points))
			}
			if rep.CrossChecked == 0 {
				t.Fatalf("no point was cross-checked (%d skipped at the cap)", rep.CrossSkipped)
			}
			if rep.CrossChecked+rep.CrossSkipped != len(rep.Points) {
				t.Fatalf("checked %d + skipped %d != points %d",
					rep.CrossChecked, rep.CrossSkipped, len(rep.Points))
			}
		})
	}
}

func TestNthPolicyCountsEvents(t *testing.T) {
	rep, err := Run(Spec{Workload: "txnpairs", Ops: 10, Seed: 3, Policy: NthPolicy, Every: 25})
	if err != nil {
		t.Fatal(err)
	}
	want := int((rep.Events + 24) / 25)
	if rep.Candidates != want {
		t.Fatalf("candidates = %d, want every 25th of %d events = %d", rep.Candidates, rep.Events, want)
	}
	if rep.Failures != 0 {
		t.Fatalf("%d failures", rep.Failures)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	spec := Spec{Workload: "txnpairs", Ops: 30, Seed: 11, Policy: RandomPolicy, Points: 6, Adversarial: true}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reports differ:\n%+v\n%+v", a, b)
	}
}

func TestPointWindowSlicesTheEnumeration(t *testing.T) {
	full, err := Run(Spec{Workload: "txnpairs", Ops: 20, Seed: 5, Policy: FencePolicy})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Run(Spec{Workload: "txnpairs", Ops: 20, Seed: 5, Policy: FencePolicy, PointStart: 2, Points: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Points) != 3 {
		t.Fatalf("window points = %d", len(part.Points))
	}
	if !reflect.DeepEqual(part.Points, full.Points[2:5]) {
		t.Fatalf("window %+v is not the slice of the full enumeration %+v", part.Points, full.Points[2:5])
	}
}

func TestUnknownWorkloadAndBadSpec(t *testing.T) {
	if _, err := Run(Spec{Workload: "nope", Ops: 5, Policy: FencePolicy}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Run(Spec{Workload: "txnpairs", Policy: FencePolicy}); err == nil {
		t.Fatal("zero ops accepted")
	}
	if _, err := Run(Spec{Workload: "txnpairs", Ops: 5, Policy: Policy("bogus")}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestWhisperWorkloadsUnderInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("whisper setups are heavy; covered by the full run")
	}
	for _, tc := range []struct {
		workload string
		spec     Spec
	}{
		{"hashmap", Spec{Workload: "hashmap", Ops: 60, Seed: 2, Policy: FencePolicy, Every: 40, Points: 3, Adversarial: true}},
		{"ctree", Spec{Workload: "ctree", Ops: 60, Seed: 2, Policy: RandomPolicy, Points: 3, Adversarial: true}},
		{"tpcc", Spec{Workload: "tpcc", Ops: 40, Seed: 2, Policy: FencePolicy, Every: 60, Points: 3, Adversarial: true}},
		{"echo", Spec{Workload: "echo", Ops: 40, Seed: 2, Policy: RandomPolicy, Points: 3, Adversarial: true}},
	} {
		tc := tc
		t.Run(tc.workload, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range rep.Points {
				if p.Err != "" {
					t.Errorf("event %d (%s): %s", p.Event, p.Kind, p.Err)
				}
			}
		})
	}
}
