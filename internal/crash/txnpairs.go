package crash

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/pmo"
	"repro/internal/txn"
	"repro/internal/whisper"
)

// pairMagic ties the two halves of a pair together: the invariant
// B[i] == A[i]^pairMagic holds after every committed transaction, so a
// torn update — one half durable without the other and without a log
// record to undo it — is immediately visible.
const pairMagic = 0x5a5a5a5a5a5a5a5a

// pairCount is the number of pairs; small enough that crash points hit
// the same lines repeatedly, large enough for A and B to span many lines.
const pairCount = 64

// TxnPairs is a micro-workload built for fault injection: each operation
// transactionally rewrites one pair (A[i], B[i]) kept in two separate
// allocations (so the halves live on different cache lines and a relaxed
// crash can genuinely tear them). It implements whisper.Recoverable and
// complements the WHISPER workloads with the smallest possible invariant.
type TxnPairs struct {
	p      *pmo.PMO
	log    *txn.Log
	logOID pmo.OID
	a, b   pmo.OID
}

// NewTxnPairs returns the workload.
func NewTxnPairs() *TxnPairs { return &TxnPairs{} }

// Name implements whisper.Workload.
func (w *TxnPairs) Name() string { return "txnpairs" }

// PMO implements whisper.Workload.
func (w *TxnPairs) PMO() *pmo.PMO { return w.p }

// Profile implements whisper.Workload (nominal values; the crash harness
// does not simulate think time).
func (w *TxnPairs) Profile() whisper.Profile {
	return whisper.Profile{Parse: 100, IdleBase: 100, IdleSpread: 0, EstOpCycles: 5000}
}

// LogOID implements whisper.Recoverable.
func (w *TxnPairs) LogOID() pmo.OID { return w.logOID }

// Setup implements whisper.Workload.
func (w *TxnPairs) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, err := mgr.Create("crash.txnpairs", 1<<20, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		return err
	}
	w.p = p
	log, logOID, err := txn.NewLog(p, 16)
	if err != nil {
		return err
	}
	log.SetSink(ctx)
	w.log, w.logOID = log, logOID
	if w.a, err = p.Alloc(pairCount * 8); err != nil {
		return err
	}
	if w.b, err = p.Alloc(pairCount * 8); err != nil {
		return err
	}
	for i := uint64(0); i < pairCount; i++ {
		v := i*2 + 1
		if err := p.Write8(w.a.Offset()+i*8, v); err != nil {
			return err
		}
		if err := p.Write8(w.b.Offset()+i*8, v^pairMagic); err != nil {
			return err
		}
	}
	return nil
}

// Op implements whisper.Workload: rewrite one pair under the undo log.
func (w *TxnPairs) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	i := uint64(rng.Intn(pairCount))
	v := rng.Uint64() | 1 // nonzero
	ao := pmo.MakeOID(w.p.ID, w.a.Offset()+i*8)
	bo := pmo.MakeOID(w.p.ID, w.b.Offset()+i*8)
	if err := w.log.Begin(); err != nil {
		return err
	}
	if err := w.log.Write(ao, v); err != nil {
		w.log.Abort()
		return err
	}
	if err := ctx.Store(ao, v); err != nil {
		w.log.Abort()
		return err
	}
	if err := w.log.Write(bo, v^pairMagic); err != nil {
		w.log.Abort()
		return err
	}
	if err := ctx.Store(bo, v^pairMagic); err != nil {
		w.log.Abort()
		return err
	}
	return w.log.Commit()
}

// CheckInvariants implements whisper.Recoverable: every pair must agree.
func (w *TxnPairs) CheckInvariants(p *pmo.PMO) error {
	for i := uint64(0); i < pairCount; i++ {
		av, err := p.Read8(w.a.Offset() + i*8)
		if err != nil {
			return err
		}
		bv, err := p.Read8(w.b.Offset() + i*8)
		if err != nil {
			return err
		}
		if bv != av^pairMagic {
			return fmt.Errorf("crash: pair %d torn: a=%#x b=%#x", i, av, bv)
		}
	}
	return nil
}
