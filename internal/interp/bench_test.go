package interp

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/terpc"
)

// benchMachine compiles src under the scheme and returns a ready machine
// (legacy or linked) whose main can be invoked repeatedly.
func benchMachine(b *testing.B, src string, scheme params.Scheme, useLinked bool) *Machine {
	b.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		b.Fatalf("compile: %v", err)
	}
	if scheme != params.Unprotected {
		if _, err := terpc.Insert(prog, terpc.Options{
			EWThreshold:  params.Micros(params.DefaultEWMicros),
			TEWThreshold: params.Micros(params.DefaultTEWMicros),
		}); err != nil {
			b.Fatalf("insert: %v", err)
		}
	}
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
	rt := core.NewRuntime(params.NewConfig(scheme, params.DefaultEWMicros), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	var m *Machine
	if useLinked {
		l, err := ir.Link(prog)
		if err != nil {
			b.Fatalf("link: %v", err)
		}
		m, err = NewLinked(l, ctx)
		if err != nil {
			b.Fatal(err)
		}
	} else {
		m, err = New(prog, ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	// One benchmark run invokes main b.N times on one machine; lift the
	// per-machine step budget out of the way.
	m.MaxSteps = math.MaxUint64
	if scheme == params.Unprotected {
		for _, name := range prog.PMONames() {
			p, _ := m.PMO(name)
			if err := ctx.Attach(p, paging.ReadWrite); err != nil {
				b.Fatal(err)
			}
		}
	}
	return m
}

// alukernel is pure register arithmetic and control flow: it measures
// instruction dispatch with no memory-hierarchy model in the loop.
const aluKernel = `
func main() {
  var i; var x; var y;
  x = 1;
  y = 0;
  for (i = 0; i < 512; i = i + 1) {
    x = (x * 33 + i) % 65521;
    if (x % 3 == 0) { y = y + x; } else { y = y - 1; }
  }
  return y;
}
`

// pmKernel streams loads and stores through one PMO under the full
// protection path (TT: conditional attach/detach instrumentation).
const pmKernel = `
pmo a[256];

func main() {
  var i; var acc;
  for (i = 0; i < 256; i = i + 1) { a[i] = i * 3; }
  for (i = 0; i < 256; i = i + 1) { acc = acc + a[i]; }
  return acc;
}
`

func benchEngines(b *testing.B, src string, scheme params.Scheme) {
	for _, eng := range []struct {
		name   string
		linked bool
	}{{"legacy", false}, {"linked", true}} {
		b.Run(eng.name, func(b *testing.B) {
			m := benchMachine(b, src, scheme, eng.linked)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run("main"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExecALU measures pure instruction dispatch (no PM accesses)
// on both engines.
func BenchmarkExecALU(b *testing.B) {
	benchEngines(b, aluKernel, params.Unprotected)
}

// BenchmarkLoadStorePM measures the PMO load/store path — interpreter
// dispatch plus the runtime's full protection and memory-hierarchy
// model — on both engines under the TT scheme.
func BenchmarkLoadStorePM(b *testing.B) {
	benchEngines(b, pmKernel, params.TT)
}
