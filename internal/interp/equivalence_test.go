package interp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/terpc"
)

// genKernel emits a random but deterministic TPL program whose main
// returns a value derived from all its PMO state, so any protection-
// induced corruption or divergence shows up in the result.
func genKernel(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("pmo a[128];\npmo b[128];\n\nfunc main() {\n  var i; var x; var acc;\n")
	seed := r.Intn(1000)
	fmt.Fprintf(&b, "  for (i = 0; i < 128; i = i + 1) { a[i] = (i * %d) %% 251; }\n", 17+seed)
	stmts := 2 + r.Intn(5)
	for s := 0; s < stmts; s++ {
		switch r.Intn(4) {
		case 0:
			fmt.Fprintf(&b, "  for (i = 0; i < 128; i = i + 1) { b[i] = a[i] * %d + %d; }\n",
				1+r.Intn(7), r.Intn(100))
		case 1:
			fmt.Fprintf(&b, "  for (i = 1; i < 128; i = i + 1) { a[i] = a[i] + a[i - 1]; }\n")
		case 2:
			fmt.Fprintf(&b, "  for (i = 0; i < 128; i = i + 1) { if (a[i] %% %d == 0) { b[i %% 128] = b[i %% 128] + 1; } }\n",
				2+r.Intn(6))
		default:
			fmt.Fprintf(&b, "  compute(%d);\n", 100+r.Intn(20000))
		}
	}
	b.WriteString("  acc = 0;\n  for (i = 0; i < 128; i = i + 1) { acc = acc + a[i] * 3 + b[i]; }\n")
	b.WriteString("  return acc;\n}\n")
	return b.String()
}

// runProgram compiles src (optionally instrumenting it) and runs main
// under the scheme, returning the result value.
func runProgram(t *testing.T, src string, scheme params.Scheme, instrument bool) int64 {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	if instrument {
		if _, err := terpc.Insert(prog, terpc.Options{
			EWThreshold:  params.Micros(params.DefaultEWMicros),
			TEWThreshold: params.Micros(params.DefaultTEWMicros),
		}); err != nil {
			t.Fatalf("insert: %v\n%s", err, src)
		}
	}
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
	rt := core.NewRuntime(params.NewConfig(scheme, params.DefaultEWMicros), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	m, err := New(prog, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if scheme == params.Unprotected {
		for _, name := range prog.PMONames() {
			p, _ := m.PMO(name)
			if err := ctx.Attach(p, paging.ReadWrite); err != nil {
				t.Fatal(err)
			}
		}
	}
	v, err := m.Run("main")
	if err != nil {
		t.Fatalf("run (%v, instrumented=%v): %v\n%s", scheme, instrument, err, src)
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.Faults != 0 {
		t.Fatalf("faults = %d under %v\n%s", res.Counts.Faults, scheme, src)
	}
	return v
}

// TestProtectionPreservesResults: for random programs, the value computed
// under every protection scheme (with compiler insertion) equals the
// value computed unprotected — protection must never change semantics.
func TestProtectionPreservesResults(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		src := genKernel(r)
		want := runProgram(t, src, params.Unprotected, false)
		for _, scheme := range []params.Scheme{params.TT, params.TM, params.MM, params.PlusCond} {
			got := runProgram(t, src, scheme, true)
			if got != want {
				t.Fatalf("trial %d: %v computed %d, unprotected computed %d\n%s",
					trial, scheme, got, want, src)
			}
		}
	}
}

// TestProtectionTimingOrdering: on the same random program, TT must never
// be slower than TM (the architecture only removes work).
func TestProtectionTimingOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	timed := func(src string, scheme params.Scheme) uint64 {
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := terpc.Insert(prog, terpc.Options{
			EWThreshold:  params.Micros(params.DefaultEWMicros),
			TEWThreshold: params.Micros(params.DefaultTEWMicros),
		}); err != nil {
			t.Fatal(err)
		}
		mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
		rt := core.NewRuntime(params.NewConfig(scheme, params.DefaultEWMicros), mgr)
		ctx := rt.NewThread(sim.SingleThread())
		m, err := New(prog, ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run("main"); err != nil {
			t.Fatal(err)
		}
		return ctx.Now()
	}
	for trial := 0; trial < 10; trial++ {
		src := genKernel(r)
		tt := timed(src, params.TT)
		tm := timed(src, params.TM)
		if tt > tm {
			t.Fatalf("trial %d: TT (%d cycles) slower than TM (%d)\n%s", trial, tt, tm, src)
		}
	}
}

// TestOptimizerPreservesResults: optimizing before insertion must not
// change the computed value or break the insertion invariants.
func TestOptimizerPreservesResults(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 15; trial++ {
		src := genKernel(r)
		want := runProgram(t, src, params.Unprotected, false)

		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, fn := range prog.Funcs {
			ir.Optimize(fn)
		}
		if _, err := terpc.Insert(prog, terpc.Options{
			EWThreshold:  params.Micros(params.DefaultEWMicros),
			TEWThreshold: params.Micros(params.DefaultTEWMicros),
		}); err != nil {
			t.Fatalf("insert after optimize: %v\n%s", err, src)
		}
		mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
		rt := core.NewRuntime(params.NewConfig(params.TT, params.DefaultEWMicros), mgr)
		ctx := rt.NewThread(sim.SingleThread())
		m, err := New(prog, ctx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Run("main")
		if err != nil {
			t.Fatalf("optimized run: %v\n%s", err, src)
		}
		if got != want {
			t.Fatalf("trial %d: optimized computed %d, want %d\n%s", trial, got, want, src)
		}
	}
}
