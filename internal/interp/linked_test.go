package interp

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/lang"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/terpc"
)

// runOutcome captures everything observable about one interpretation run
// that the linked engine must reproduce exactly.
type runOutcome struct {
	value    int64
	cycles   uint64
	costs    sim.Accounts
	steps    uint64
	counters core.Counters
}

// runEngine compiles src (instrumenting unless the scheme is Unprotected),
// runs main under either the legacy or linked engine, and returns the
// outcome.
func runEngine(t *testing.T, src string, scheme params.Scheme, useLinked bool) runOutcome {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	if scheme != params.Unprotected {
		if _, err := terpc.Insert(prog, terpc.Options{
			EWThreshold:  params.Micros(params.DefaultEWMicros),
			TEWThreshold: params.Micros(params.DefaultTEWMicros),
		}); err != nil {
			t.Fatalf("insert: %v\n%s", err, src)
		}
	}
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
	rt := core.NewRuntime(params.NewConfig(scheme, params.DefaultEWMicros), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	var m *Machine
	if useLinked {
		l, err := ir.Link(prog)
		if err != nil {
			t.Fatalf("link: %v\n%s", err, src)
		}
		m, err = NewLinked(l, ctx)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		m, err = New(prog, ctx)
		if err != nil {
			t.Fatal(err)
		}
	}
	if scheme == params.Unprotected {
		for _, name := range prog.PMONames() {
			p, _ := m.PMO(name)
			if err := ctx.Attach(p, paging.ReadWrite); err != nil {
				t.Fatal(err)
			}
		}
	}
	v, err := m.Run("main")
	if err != nil {
		t.Fatalf("run (%v, linked=%v): %v\n%s", scheme, useLinked, err, src)
	}
	res := rt.Finish(ctx.Now())
	return runOutcome{
		value:    v,
		cycles:   ctx.Now(),
		costs:    ctx.Thread().Costs,
		steps:    m.Steps,
		counters: res.Counts,
	}
}

// TestLinkedMatchesLegacy: on random programs under every scheme, the
// linked engine must reproduce the legacy interpreter bit for bit — same
// value, same simulated clock, same per-account cycle tallies, same step
// count, same protection counters. This is the determinism contract of
// the hot-path engine.
func TestLinkedMatchesLegacy(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	schemes := []params.Scheme{
		params.Unprotected, params.MM, params.TM, params.TT, params.PlusCond,
	}
	for trial := 0; trial < 12; trial++ {
		src := genKernel(r)
		for _, scheme := range schemes {
			legacy := runEngine(t, src, scheme, false)
			linked := runEngine(t, src, scheme, true)
			if legacy != linked {
				t.Fatalf("trial %d scheme %v: linked diverged\nlegacy: %+v\nlinked: %+v\n%s",
					trial, scheme, legacy, linked, src)
			}
		}
	}
}

// TestLinkedErrorsMatchLegacy: runtime failures must carry the same error
// text in both engines (bounds violations, step exhaustion), so tooling
// that matches on messages behaves identically.
func TestLinkedErrorsMatchLegacy(t *testing.T) {
	runErr := func(src string, maxSteps uint64, useLinked bool) string {
		t.Helper()
		prog, err := lang.Compile(src)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
		rt := core.NewRuntime(params.NewConfig(params.Unprotected, params.DefaultEWMicros), mgr)
		ctx := rt.NewThread(sim.SingleThread())
		var m *Machine
		if useLinked {
			l, lerr := ir.Link(prog)
			if lerr != nil {
				t.Fatal(lerr)
			}
			m, err = NewLinked(l, ctx)
		} else {
			m, err = New(prog, ctx)
		}
		if err != nil {
			t.Fatal(err)
		}
		if maxSteps != 0 {
			m.MaxSteps = maxSteps
		}
		for _, name := range prog.PMONames() {
			p, _ := m.PMO(name)
			if err := ctx.Attach(p, paging.ReadWrite); err != nil {
				t.Fatal(err)
			}
		}
		_, err = m.Run("main")
		if err == nil {
			t.Fatalf("expected error (linked=%v)\n%s", useLinked, src)
		}
		return err.Error()
	}

	cases := []struct {
		name     string
		src      string
		maxSteps uint64
	}{
		{"bounds", "pmo a[4];\nfunc main() { var i; i = 9; a[i] = 1; return 0; }\n", 0},
		{"negative index", "pmo a[4];\nfunc main() { var i; i = 0 - 1; return a[i]; }\n", 0},
		{"steps", "pmo a[4];\nfunc main() { var i; for (i = 0; i < 1000; i = i + 1) { a[0] = i; } return 0; }\n", 50},
	}
	for _, tc := range cases {
		legacy := runErr(tc.src, tc.maxSteps, false)
		linked := runErr(tc.src, tc.maxSteps, true)
		if legacy != linked {
			t.Errorf("%s: error text diverged\nlegacy: %s\nlinked: %s", tc.name, legacy, linked)
		}
	}
}

// TestLinkedFramePoolReuse: nested and repeated calls must reuse pooled
// register files without leaking state between invocations (frames are
// zeroed on reuse, exactly like a fresh allocation).
func TestLinkedFramePoolReuse(t *testing.T) {
	src := `pmo a[8];
func leaf(x) { var tmp; tmp = x * 2; return tmp; }
func mid(x) { var acc; acc = leaf(x) + leaf(x + 1); return acc; }
func main() {
  var i; var acc;
  acc = 0;
  for (i = 0; i < 16; i = i + 1) { acc = acc + mid(i); }
  a[0] = acc;
  return acc;
}
`
	legacy := runEngine(t, src, params.Unprotected, false)
	linked := runEngine(t, src, params.Unprotected, true)
	if legacy != linked {
		t.Fatalf("frame pool diverged\nlegacy: %+v\nlinked: %+v", legacy, linked)
	}
}
