package interp

// The linked execution engine: runs the flat, pre-resolved program form
// produced by ir.Link. Three things make it fast relative to the legacy
// block interpreter while charging exactly the same simulated cycles:
//
//   - Symbol operands were resolved at link time, so LoadPM/StorePM/
//     LoadDRAM/StoreDRAM/Call/Attach/Detach index dense slot tables on the
//     machine instead of string-keyed maps.
//   - Block terminators are explicit pc jumps inside one flat code array,
//     so dispatch is a single bounds-checked slice index.
//   - Call frames come from a pooled stack: a finished call's register
//     file is zeroed and reused by the next call instead of allocating a
//     fresh []int64 per invocation.
//
// Determinism contract: for any program, the linked engine must produce
// the same results, the same Steps count and the same cycle charges as the
// legacy interpreter (linked_test.go enforces this over random programs;
// the runner-level equivalence test enforces it over whole experiments).

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/pmo"
)

// invokeLinked is the top-level entry: allocate (or reuse) a frame, bind
// arguments and execute.
func (m *Machine) invokeLinked(f *ir.LFunc, args []int64) (int64, error) {
	if m.depth >= MaxCallDepth {
		return 0, ErrDepth
	}
	m.depth++
	regs := m.getFrame(f.NumRegs)
	for i, p := range f.Params {
		if i < len(args) {
			regs[p] = args[i]
		}
	}
	v, err := m.execLinked(f, regs)
	m.putFrame(regs)
	m.depth--
	return v, err
}

// callLinked invokes a callee from inside the engine, copying argument
// registers straight from the caller's frame into the callee's (the
// legacy interpreter materializes an intermediate args slice; skipping it
// is observationally identical because the frames are distinct).
func (m *Machine) callLinked(f *ir.LFunc, caller []int64, argv []int32) (int64, error) {
	if m.depth >= MaxCallDepth {
		return 0, ErrDepth
	}
	m.depth++
	regs := m.getFrame(f.NumRegs)
	for i, p := range f.Params {
		if i < len(argv) {
			regs[p] = caller[argv[i]]
		}
	}
	v, err := m.execLinked(f, regs)
	m.putFrame(regs)
	m.depth--
	return v, err
}

// getFrame pops a pooled register file (zeroed, like a fresh make) or
// allocates one when the pool is empty or too small.
func (m *Machine) getFrame(n int) []int64 {
	if k := len(m.frames) - 1; k >= 0 {
		fr := m.frames[k]
		m.frames = m.frames[:k]
		if cap(fr) >= n {
			fr = fr[:n]
			for i := range fr {
				fr[i] = 0
			}
			return fr
		}
	}
	return make([]int64, n)
}

// putFrame returns a frame to the pool.
func (m *Machine) putFrame(fr []int64) {
	m.frames = append(m.frames, fr)
}

// execLinked is the dispatch loop. Cycle accounting mirrors the legacy
// interpreter instruction for instruction: every regular op counts one
// step against the budget and charges what its legacy case charges;
// terminators charge the one Compute cycle the legacy block loop charges
// and do not count as steps.
func (m *Machine) execLinked(f *ir.LFunc, regs []int64) (int64, error) {
	code := f.Code
	pc := f.EntryPC
	for {
		in := &code[pc]
		if in.Op < ir.LJmp {
			m.Steps++
			if m.Steps > m.MaxSteps {
				return 0, ErrSteps
			}
		}
		switch in.Op {
		case ir.Const:
			m.ctx.Compute(1)
			regs[in.Dst] = in.Imm
		case ir.Mov:
			m.ctx.Compute(1)
			regs[in.Dst] = regs[in.A]
		case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr,
			ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
			m.ctx.Compute(1)
			regs[in.Dst] = alu(in.Op, regs[in.A], regs[in.B])
		case ir.Compute:
			m.ctx.Compute(uint64(in.Imm))
		case ir.LoadPM:
			slot := in.Slot
			if slot < 0 {
				return 0, wrapLinked(f, in, fmt.Errorf("interp: unknown PMO %q", in.Sym))
			}
			idx := regs[in.A]
			if uint64(idx) >= uint64(m.elemTab[slot]) {
				return 0, wrapLinked(f, in, fmt.Errorf("%w: %s[%d] of %d", ErrBounds, in.Sym, idx, m.elemTab[slot]))
			}
			v, err := m.ctx.Load(pmo.MakeOID(m.pmoTab[slot].ID, pmo.DataStart+uint64(idx)*8))
			if err != nil {
				return 0, wrapLinked(f, in, err)
			}
			regs[in.Dst] = int64(v)
		case ir.StorePM:
			slot := in.Slot
			if slot < 0 {
				return 0, wrapLinked(f, in, fmt.Errorf("interp: unknown PMO %q", in.Sym))
			}
			idx := regs[in.A]
			if uint64(idx) >= uint64(m.elemTab[slot]) {
				return 0, wrapLinked(f, in, fmt.Errorf("%w: %s[%d] of %d", ErrBounds, in.Sym, idx, m.elemTab[slot]))
			}
			oid := pmo.MakeOID(m.pmoTab[slot].ID, pmo.DataStart+uint64(idx)*8)
			if err := m.ctx.Store(oid, uint64(regs[in.B])); err != nil {
				return 0, wrapLinked(f, in, err)
			}
		case ir.LoadDRAM:
			slot := in.Slot
			if slot < 0 {
				return 0, wrapLinked(f, in, fmt.Errorf("interp: unknown array %q", in.Sym))
			}
			arr := m.dramTab[slot]
			idx := regs[in.A]
			if uint64(idx) >= uint64(len(arr)) {
				return 0, wrapLinked(f, in, fmt.Errorf("%w: %s[%d] of %d", ErrBounds, in.Sym, idx, len(arr)))
			}
			m.ctx.DRAMAccess(m.dramBaseTab[slot]+uint64(idx)*8, 8)
			regs[in.Dst] = arr[idx]
		case ir.StoreDRAM:
			slot := in.Slot
			if slot < 0 {
				return 0, wrapLinked(f, in, fmt.Errorf("interp: unknown array %q", in.Sym))
			}
			arr := m.dramTab[slot]
			idx := regs[in.A]
			if uint64(idx) >= uint64(len(arr)) {
				return 0, wrapLinked(f, in, fmt.Errorf("%w: %s[%d] of %d", ErrBounds, in.Sym, idx, len(arr)))
			}
			m.ctx.DRAMAccess(m.dramBaseTab[slot]+uint64(idx)*8, 8)
			arr[idx] = regs[in.B]
		case ir.Call:
			if in.Slot < 0 {
				return 0, wrapLinked(f, in, fmt.Errorf("%w: %q", ErrNoFunc, in.Sym))
			}
			callee := m.linked.Funcs[in.Slot]
			m.ctx.Compute(2) // call/return overhead
			v, err := m.callLinked(callee, regs, in.Args)
			if err != nil {
				return 0, wrapLinked(f, in, err)
			}
			if in.Dst >= 0 {
				regs[in.Dst] = v
			}
		case ir.Attach:
			if in.Slot < 0 {
				return 0, wrapLinked(f, in, fmt.Errorf("interp: attach unknown PMO %q", in.Sym))
			}
			if err := m.ctx.Attach(m.pmoTab[in.Slot], permFromBits(in.Imm)); err != nil {
				return 0, wrapLinked(f, in, err)
			}
		case ir.Detach:
			if in.Slot < 0 {
				return 0, wrapLinked(f, in, fmt.Errorf("interp: detach unknown PMO %q", in.Sym))
			}
			if err := m.ctx.Detach(m.pmoTab[in.Slot]); err != nil {
				return 0, wrapLinked(f, in, err)
			}
		case ir.LJmp:
			m.ctx.Compute(1)
			pc = int(in.Slot)
			continue
		case ir.LBr:
			m.ctx.Compute(1)
			if regs[in.A] != 0 {
				pc = int(in.Slot)
			} else {
				pc = int(in.Targ)
			}
			continue
		case ir.LRet:
			m.ctx.Compute(1)
			if in.Dst >= 0 {
				return regs[in.Dst], nil
			}
			return 0, nil
		default:
			return 0, wrapLinked(f, in, fmt.Errorf("interp: bad opcode %v", in.Op))
		}
		pc++
	}
}

// wrapLinked matches the legacy interpreter's error context ("func bN:").
func wrapLinked(f *ir.LFunc, in *ir.LInstr, err error) error {
	return fmt.Errorf("%s b%d: %w", f.Name, in.Block, err)
}
