package interp

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lang"
	"repro/internal/nvm"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/terpc"
)

func newCtx(t *testing.T, scheme params.Scheme) *core.ThreadCtx {
	t.Helper()
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<32))
	rt := core.NewRuntime(params.NewConfig(scheme, params.DefaultEWMicros), mgr)
	return rt.NewThread(sim.SingleThread())
}

// compileTPL compiles source and runs the TERP insertion pass.
func compileTPL(t *testing.T, src string, insert bool) *Machine {
	t.Helper()
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if insert {
		if _, err := terpc.Insert(prog, terpc.Options{
			EWThreshold:  params.Micros(params.DefaultEWMicros),
			TEWThreshold: params.Micros(params.DefaultTEWMicros),
		}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := newCtx(t, params.TT)
	m, err := New(prog, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArithmeticEndToEnd(t *testing.T) {
	m := compileTPL(t, `
func main() {
  var s; var i;
  s = 0;
  for (i = 1; i <= 10; i = i + 1) { s = s + i; }
  return s;
}
`, false)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 55 {
		t.Fatalf("sum = %d", v)
	}
}

func TestFunctionCalls(t *testing.T) {
	m := compileTPL(t, `
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func main() { return fib(12); }
`, false)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 144 {
		t.Fatalf("fib(12) = %d", v)
	}
}

func TestPMOAccessRequiresInsertion(t *testing.T) {
	// Without the compiler pass, a PMO access has no attach and must
	// fault (segfault: the PMO was never mapped).
	m := compileTPL(t, `
pmo d[16];
func main() { d[0] = 1; return d[0]; }
`, false)
	_, err := m.Run("main")
	if !core.IsFault(err, core.SegFault) {
		t.Fatalf("uninstrumented PMO access: %v", err)
	}
}

func TestInstrumentedPMOProgramRuns(t *testing.T) {
	m := compileTPL(t, `
pmo d[64];
func main() {
  var i;
  for (i = 0; i < 64; i = i + 1) { d[i] = i * 2; }
  var s; s = 0;
  for (i = 0; i < 64; i = i + 1) { s = s + d[i]; }
  return s;
}
`, true)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 64*63 {
		t.Fatalf("sum = %d, want %d", v, 64*63)
	}
	res := m.ctx.Runtime().Finish(m.ctx.Now())
	if res.Counts.CondOps == 0 {
		t.Fatal("no conditional attach/detach executed")
	}
	if res.Counts.Faults != 0 {
		t.Fatalf("faults = %d", res.Counts.Faults)
	}
}

func TestPersistenceAcrossRuns(t *testing.T) {
	src := `
pmo store[16];
func set(v) { store[3] = v; return 0; }
func get() { return store[3]; }
`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := terpc.Insert(prog, terpc.Options{}); err != nil {
		t.Fatal(err)
	}
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
	rt1 := core.NewRuntime(params.NewConfig(params.TT, 40), mgr)
	m1, err := New(prog, rt1.NewThread(sim.SingleThread()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Run("set", 777); err != nil {
		t.Fatal(err)
	}
	// Second run, same manager (same NVM): the PMO is reopened.
	rt2 := core.NewRuntime(params.NewConfig(params.TT, 40), mgr)
	m2, err := New(prog, rt2.NewThread(sim.SingleThread()))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m2.Run("get")
	if err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Fatalf("persisted value = %d", v)
	}
}

func TestBoundsChecked(t *testing.T) {
	m := compileTPL(t, `
pmo d[4];
func main() { return d[100]; }
`, true)
	_, err := m.Run("main")
	if err == nil || !errors.Is(err, ErrBounds) {
		t.Fatalf("oob access: %v", err)
	}
	m2 := compileTPL(t, `
var v[4];
func main() { v[9] = 1; return 0; }
`, false)
	if _, err := m2.Run("main"); !errors.Is(err, ErrBounds) {
		t.Fatalf("oob dram: %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	m := compileTPL(t, `
func main() {
  var i;
  while (1) { i = i + 1; }
  return i;
}
`, false)
	m.MaxSteps = 10000
	if _, err := m.Run("main"); !errors.Is(err, ErrSteps) {
		t.Fatalf("runaway loop: %v", err)
	}
}

func TestCallDepthLimit(t *testing.T) {
	m := compileTPL(t, `
func r(n) { return r(n + 1); }
func main() { return r(0); }
`, false)
	if _, err := m.Run("main"); !errors.Is(err, ErrDepth) {
		t.Fatalf("infinite recursion: %v", err)
	}
}

func TestUnknownFunction(t *testing.T) {
	m := compileTPL(t, `func main() { return 0; }`, false)
	if _, err := m.Run("nope"); !errors.Is(err, ErrNoFunc) {
		t.Fatalf("missing function: %v", err)
	}
}

func TestDRAMSharedBetweenThreads(t *testing.T) {
	src := `
var shared[8];
func put(i, v) { shared[i] = v; return 0; }
func get(i) { return shared[i]; }
`
	prog, err := lang.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
	rt := core.NewRuntime(params.NewConfig(params.Unprotected, 40), mgr)
	m1, _ := New(prog, rt.NewThread(sim.SingleThread()))
	m2, _ := New(prog, rt.NewThread(sim.SingleThread()))
	m2.ShareDRAM(m1)
	if _, err := m1.Run("put", 2, 99); err != nil {
		t.Fatal(err)
	}
	v, err := m2.Run("get", 2)
	if err != nil || v != 99 {
		t.Fatalf("shared read = %d, %v", v, err)
	}
}

func TestTimeAdvancesWithWork(t *testing.T) {
	m := compileTPL(t, `
func main() {
  compute(100000);
  return 0;
}
`, false)
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if m.ctx.Now() < 100000 {
		t.Fatalf("clock = %d", m.ctx.Now())
	}
}

func TestErrorMentionsFunctionAndBlock(t *testing.T) {
	m := compileTPL(t, `
pmo d[4];
func main() { return d[100]; }
`, true)
	_, err := m.Run("main")
	if err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("error lacks location: %v", err)
	}
}

func TestBreakContinueSemantics(t *testing.T) {
	m := compileTPL(t, `
func main() {
  var i; var s;
  s = 0;
  for (i = 0; i < 100; i = i + 1) {
    if (i == 10) { break; }
    if (i % 2 == 0) { continue; }
    s = s + i;
  }
  return s;
}
`, false)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 3 + 5 + 7 + 9 = 25.
	if v != 25 {
		t.Fatalf("sum = %d, want 25", v)
	}
}

func TestContinueRunsPostStatement(t *testing.T) {
	// If continue skipped the post statement the loop would never end.
	m := compileTPL(t, `
func main() {
  var i; var n;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    n = n + 1;
  }
  return n;
}
`, false)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("n = %d, want 5", v)
	}
}

func TestBreakWithPMOAccessInstrumented(t *testing.T) {
	// A loop that exits early via break while holding a window: the
	// insertion must still keep every path balanced.
	m := compileTPL(t, `
pmo d[64];
func main() {
  var i; var s;
  for (i = 0; i < 64; i = i + 1) {
    d[i] = i;
    if (d[i] == 40) { break; }
    s = s + d[i];
  }
  return s;
}
`, true)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if v != 40*39/2 {
		t.Fatalf("sum = %d, want %d", v, 40*39/2)
	}
	res := m.ctx.Runtime().Finish(m.ctx.Now())
	if res.Counts.Faults != 0 {
		t.Fatalf("faults = %d", res.Counts.Faults)
	}
}
