// Package interp executes compiled IR programs on the TERP runtime: it
// creates one PMO per persistent array declaration (the paper's SPEC
// methodology allocates each large heap object as a PMO), dispatches
// instructions with their cycle costs, routes PMO loads and stores through
// the runtime's full protection path, and executes the attach/detach
// constructs the compiler pass inserted.
package interp

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/paging"
	"repro/internal/pmo"
)

// Errors of the interpreter.
var (
	// ErrNoFunc is returned when the entry function is missing.
	ErrNoFunc = errors.New("interp: function not found")
	// ErrBounds is returned for out-of-range array indexing.
	ErrBounds = errors.New("interp: index out of bounds")
	// ErrSteps is returned when the step budget is exhausted.
	ErrSteps = errors.New("interp: step budget exhausted")
	// ErrDepth is returned on call-stack overflow.
	ErrDepth = errors.New("interp: call depth exceeded")
)

// Machine executes one program on behalf of one simulated thread. A
// machine runs in one of two modes: the legacy block interpreter (New)
// resolves symbol operands through string-keyed maps on every memory
// instruction, while the linked engine (NewLinked) executes the
// pre-resolved flat form produced by ir.Link through dense slot tables and
// a pooled call-frame stack. Both modes execute the same instructions and
// charge identical simulated cycles; the legacy mode is kept as the
// reference the equivalence tests compare against.
type Machine struct {
	prog   *ir.Program
	linked *ir.Linked
	ctx    *core.ThreadCtx
	pmos   map[string]*pmo.PMO
	elems  map[string]int64
	// dram holds volatile array storage and synthetic base addresses.
	dram     map[string][]int64
	dramBase map[string]uint64

	// Slot tables for the linked engine, indexed by declaration order
	// (the slot space ir.Link resolves into). They mirror the maps above
	// and are re-derived whenever PMO or DRAM state is shared.
	pmoTab      []*pmo.PMO
	elemTab     []int64
	dramTab     [][]int64
	dramBaseTab []uint64

	// frames is the pooled call-frame stack: register files returned by
	// finished calls, reused by the next call instead of allocating.
	frames [][]int64

	// MaxSteps bounds execution (default 2e9).
	MaxSteps uint64
	// Steps counts executed instructions.
	Steps uint64

	depth int
}

// MaxCallDepth bounds recursion.
const MaxCallDepth = 256

// New prepares a machine: persistent arrays are created as PMOs in the
// runtime's manager (or reopened when they already exist, supporting
// cross-run persistence), volatile arrays are zero-initialized.
func New(prog *ir.Program, ctx *core.ThreadCtx) (*Machine, error) {
	m := &Machine{
		prog:     prog,
		ctx:      ctx,
		pmos:     make(map[string]*pmo.PMO),
		elems:    make(map[string]int64),
		dram:     make(map[string][]int64),
		dramBase: make(map[string]uint64),
		MaxSteps: 2_000_000_000,
	}
	mgr := ctx.Runtime().Manager()
	for _, d := range prog.PMOs {
		p, err := mgr.Open(d.Name)
		if errors.Is(err, pmo.ErrNotFound) {
			p, err = mgr.Create(d.Name, uint64(d.Elems)*8+pmo.DataStart, pmo.ModeRead|pmo.ModeWrite)
		}
		if err != nil {
			return nil, err
		}
		m.pmos[d.Name] = p
		m.elems[d.Name] = int64(d.Elems)
	}
	base := uint64(1) << 20
	for _, d := range prog.DRAMs {
		m.dram[d.Name] = make([]int64, d.Elems)
		m.dramBase[d.Name] = base
		base += uint64(d.Elems)*8 + 4096
	}
	m.pmoTab = make([]*pmo.PMO, len(prog.PMOs))
	m.elemTab = make([]int64, len(prog.PMOs))
	m.dramTab = make([][]int64, len(prog.DRAMs))
	m.dramBaseTab = make([]uint64, len(prog.DRAMs))
	m.reindex()
	return m, nil
}

// NewLinked prepares a machine that executes the linked program form on
// the zero-allocation access path. PMO and DRAM state is created exactly
// as New does (the linked form shares its program's declarations).
func NewLinked(l *ir.Linked, ctx *core.ThreadCtx) (*Machine, error) {
	m, err := New(l.Prog, ctx)
	if err != nil {
		return nil, err
	}
	m.linked = l
	return m, nil
}

// reindex refreshes the dense slot tables from the name-keyed state, in
// declaration order (the slot space the link pass resolves into).
func (m *Machine) reindex() {
	for i, d := range m.prog.PMOs {
		m.pmoTab[i] = m.pmos[d.Name]
		m.elemTab[i] = m.elems[d.Name]
	}
	for i, d := range m.prog.DRAMs {
		m.dramTab[i] = m.dram[d.Name]
		m.dramBaseTab[i] = m.dramBase[d.Name]
	}
}

// SharePMOs copies another machine's PMO handles (multi-threaded runs
// share the persistent arrays but keep private registers and volatile
// state private per thread unless shared explicitly).
func (m *Machine) SharePMOs(o *Machine) {
	for k, v := range o.pmos {
		m.pmos[k] = v
		m.elems[k] = o.elems[k]
	}
	m.reindex()
}

// ShareDRAM makes this machine alias another machine's volatile arrays
// (OpenMP-style shared memory between worker threads).
func (m *Machine) ShareDRAM(o *Machine) {
	for k, v := range o.dram {
		m.dram[k] = v
		m.dramBase[k] = o.dramBase[k]
	}
	m.reindex()
}

// PMO returns the PMO backing a persistent array.
func (m *Machine) PMO(name string) (*pmo.PMO, bool) {
	p, ok := m.pmos[name]
	return p, ok
}

// Run executes the named function with the given arguments and returns
// its result.
func (m *Machine) Run(fn string, args ...int64) (int64, error) {
	if m.linked != nil {
		f, ok := m.linked.Func(fn)
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNoFunc, fn)
		}
		return m.invokeLinked(f, args)
	}
	f, ok := m.prog.Funcs[fn]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoFunc, fn)
	}
	return m.call(f, args)
}

func (m *Machine) call(f *ir.Func, args []int64) (int64, error) {
	if m.depth >= MaxCallDepth {
		return 0, ErrDepth
	}
	m.depth++
	defer func() { m.depth-- }()

	regs := make([]int64, f.NumRegs)
	for i, p := range f.Params {
		if i < len(args) {
			regs[p] = args[i]
		}
	}
	b := f.Blocks[f.Entry]
	for {
		for _, in := range b.Instrs {
			m.Steps++
			if m.Steps > m.MaxSteps {
				return 0, ErrSteps
			}
			if err := m.exec(f, &in, regs); err != nil {
				return 0, fmt.Errorf("%s b%d: %w", f.Name, b.ID, err)
			}
		}
		m.ctx.Compute(1) // terminator
		switch b.Term {
		case ir.Ret:
			if b.Cond >= 0 {
				return regs[b.Cond], nil
			}
			return 0, nil
		case ir.Jmp:
			b = f.Blocks[b.Succs[0]]
		case ir.Br:
			if regs[b.Cond] != 0 {
				b = f.Blocks[b.Succs[0]]
			} else {
				b = f.Blocks[b.Succs[1]]
			}
		}
	}
}

func (m *Machine) exec(f *ir.Func, in *ir.Instr, regs []int64) error {
	switch in.Op {
	case ir.Const:
		m.ctx.Compute(1)
		regs[in.Dst] = in.Imm
	case ir.Mov:
		m.ctx.Compute(1)
		regs[in.Dst] = regs[in.A]
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr,
		ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
		m.ctx.Compute(1)
		regs[in.Dst] = alu(in.Op, regs[in.A], regs[in.B])
	case ir.Compute:
		m.ctx.Compute(uint64(in.Imm))
	case ir.LoadPM:
		oid, err := m.oid(in.Sym, regs[in.A])
		if err != nil {
			return err
		}
		v, err := m.ctx.Load(oid)
		if err != nil {
			return err
		}
		regs[in.Dst] = int64(v)
	case ir.StorePM:
		oid, err := m.oid(in.Sym, regs[in.A])
		if err != nil {
			return err
		}
		if err := m.ctx.Store(oid, uint64(regs[in.B])); err != nil {
			return err
		}
	case ir.LoadDRAM:
		arr, ok := m.dram[in.Sym]
		if !ok {
			return fmt.Errorf("interp: unknown array %q", in.Sym)
		}
		idx := regs[in.A]
		if idx < 0 || idx >= int64(len(arr)) {
			return fmt.Errorf("%w: %s[%d] of %d", ErrBounds, in.Sym, idx, len(arr))
		}
		m.ctx.DRAMAccess(m.dramBase[in.Sym]+uint64(idx)*8, 8)
		regs[in.Dst] = arr[idx]
	case ir.StoreDRAM:
		arr, ok := m.dram[in.Sym]
		if !ok {
			return fmt.Errorf("interp: unknown array %q", in.Sym)
		}
		idx := regs[in.A]
		if idx < 0 || idx >= int64(len(arr)) {
			return fmt.Errorf("%w: %s[%d] of %d", ErrBounds, in.Sym, idx, len(arr))
		}
		m.ctx.DRAMAccess(m.dramBase[in.Sym]+uint64(idx)*8, 8)
		arr[idx] = regs[in.B]
	case ir.Call:
		callee, ok := m.prog.Funcs[in.Sym]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoFunc, in.Sym)
		}
		args := make([]int64, len(in.Args))
		for i, r := range in.Args {
			args[i] = regs[r]
		}
		m.ctx.Compute(2) // call/return overhead
		v, err := m.call(callee, args)
		if err != nil {
			return err
		}
		if in.Dst >= 0 {
			regs[in.Dst] = v
		}
	case ir.Attach:
		p, ok := m.pmos[in.Sym]
		if !ok {
			return fmt.Errorf("interp: attach unknown PMO %q", in.Sym)
		}
		return m.ctx.Attach(p, permFromBits(in.Imm))
	case ir.Detach:
		p, ok := m.pmos[in.Sym]
		if !ok {
			return fmt.Errorf("interp: detach unknown PMO %q", in.Sym)
		}
		return m.ctx.Detach(p)
	default:
		return fmt.Errorf("interp: bad opcode %v", in.Op)
	}
	return nil
}

// oid translates an element index into the PMO object address.
func (m *Machine) oid(sym string, idx int64) (pmo.OID, error) {
	p, ok := m.pmos[sym]
	if !ok {
		return pmo.NilOID, fmt.Errorf("interp: unknown PMO %q", sym)
	}
	if idx < 0 || idx >= m.elems[sym] {
		return pmo.NilOID, fmt.Errorf("%w: %s[%d] of %d", ErrBounds, sym, idx, m.elems[sym])
	}
	return pmo.MakeOID(p.ID, pmo.DataStart+uint64(idx)*8), nil
}

func permFromBits(b int64) paging.Perm {
	var p paging.Perm
	if b&1 != 0 {
		p |= paging.PermRead
	}
	if b&2 != 0 {
		p |= paging.PermWrite
	}
	return p
}

func alu(op ir.Op, a, b int64) int64 {
	switch op {
	case ir.Add:
		return a + b
	case ir.Sub:
		return a - b
	case ir.Mul:
		return a * b
	case ir.Div:
		if b == 0 {
			return 0
		}
		return a / b
	case ir.Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case ir.And:
		return a & b
	case ir.Or:
		return a | b
	case ir.Xor:
		return a ^ b
	case ir.Shl:
		return a << (uint64(b) & 63)
	case ir.Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case ir.CmpEQ:
		return b2i(a == b)
	case ir.CmpNE:
		return b2i(a != b)
	case ir.CmpLT:
		return b2i(a < b)
	case ir.CmpLE:
		return b2i(a <= b)
	case ir.CmpGT:
		return b2i(a > b)
	case ir.CmpGE:
		return b2i(a >= b)
	}
	return 0
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
