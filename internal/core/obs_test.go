package core

import (
	"testing"

	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
)

// newObsEnv builds a runtime with observability enabled before the
// first thread exists (EnableObs must precede NewThread).
func newObsEnv(t *testing.T, scheme params.Scheme, cfg obs.Config) (*Runtime, *ThreadCtx, *pmo.PMO) {
	t.Helper()
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
	p, err := mgr.Create("test", 1<<20, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(params.NewConfig(scheme, params.DefaultEWMicros), mgr)
	rt.EnableObs(cfg)
	ctx := rt.NewThread(sim.SingleThread())
	return rt, ctx, p
}

// drive runs a small attach/store/load/detach workload.
func drive(t *testing.T, ctx *ThreadCtx, p *pmo.PMO) {
	t.Helper()
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := ctx.Store(o, uint64(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.Load(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
}

func TestEnableObsTraceCollectsAcrossCategories(t *testing.T) {
	rt, ctx, p := newObsEnv(t, params.TT, obs.Config{Trace: true})
	drive(t, ctx, p)
	rt.Finish(ctx.Now())

	rec := rt.ObsRecorder()
	if rec == nil {
		t.Fatal("no recorder")
	}
	ev := rec.Events()
	if len(ev) == 0 {
		t.Fatal("no events recorded")
	}
	cats := map[obs.Cat]int{}
	for _, e := range ev {
		cats[e.Cat]++
	}
	// A TT attach/detach run must at least exercise the protection
	// events (CatCore), the syscall spans (also CatCore), the exposure
	// windows (CatExpo) and the TLB walks (CatPaging).
	for _, c := range []obs.Cat{obs.CatCore, obs.CatExpo, obs.CatPaging} {
		if cats[c] == 0 {
			t.Errorf("no events in category %v (have %v)", c, cats)
		}
	}
	// Sync spans balance per thread: every Begin has a matching End.
	depth := map[int]int{}
	for _, e := range ev {
		switch e.Type {
		case obs.Begin:
			depth[e.Thread]++
		case obs.End:
			depth[e.Thread]--
			if depth[e.Thread] < 0 {
				t.Fatalf("End without Begin on thread %d at ts=%d", e.Thread, e.TS)
			}
		}
	}
	for th, d := range depth {
		if d != 0 {
			t.Errorf("thread %d: %d unclosed spans", th, d)
		}
	}
	// Async exposure-window spans balance too (Finish drains open ones).
	open := map[string]int{}
	for _, e := range ev {
		key := e.Name + "/" + string(rune(e.Arg))
		switch e.Type {
		case obs.AsyncBegin:
			open[key]++
		case obs.AsyncEnd:
			open[key]--
		}
	}
	for k, d := range open {
		if d != 0 {
			t.Errorf("async span %q unbalanced by %d", k, d)
		}
	}
}

func TestObsSnapshotMatchesRuntimeCounts(t *testing.T) {
	// MM: its detach path always performs the real detach with a TLB
	// shootdown (TT defers detaches to the sweep).
	rt, ctx, p := newObsEnv(t, params.MM, obs.Config{Metrics: true})
	drive(t, ctx, p)
	res := rt.Finish(ctx.Now())

	s := rt.ObsSnapshot()
	if s == nil {
		t.Fatal("no snapshot")
	}
	checks := map[string]uint64{
		"core/attach_syscalls": res.Counts.AttachSyscalls,
		"core/detach_syscalls": res.Counts.DetachSyscalls,
		"core/cond_ops":        res.Counts.CondOps,
		"core/faults":          res.Counts.Faults,
		"merr/checks":          rt.matrix.Checks,
	}
	for name, want := range checks {
		if got := s.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for a := sim.Base; a <= sim.Other; a++ {
		if got := s.Get("sim/cycles/" + a.String()); got != ctx.th.Costs[a] {
			t.Errorf("sim/cycles/%s = %d, want %d", a, got, ctx.th.Costs[a])
		}
	}
	// The detach path invalidates the TLB; the flush counter must show it.
	if s.Get("paging/tlb/flushes") == 0 {
		t.Error("detach did not record a TLB flush")
	}
	if s.Get("paging/tlb/misses") == 0 {
		t.Error("no TLB misses recorded")
	}
	// Charge histograms saw every charge: total observed cycles equals
	// the thread's cost tally.
	var histSum, costSum uint64
	for a := sim.Base; a <= sim.Other; a++ {
		if h := s.Hists["sim/charge/"+a.String()]; h != nil {
			histSum += h.Sum
		}
		costSum += ctx.th.Costs[a]
	}
	if histSum != costSum {
		t.Errorf("charge hist sum = %d, cost sum = %d", histSum, costSum)
	}
}

func TestObsSnapshotNilWhenMetricsOff(t *testing.T) {
	rt, ctx, p := newObsEnv(t, params.TT, obs.Config{Trace: true})
	drive(t, ctx, p)
	rt.Finish(ctx.Now())
	if s := rt.ObsSnapshot(); s != nil {
		t.Fatalf("snapshot with metrics off: %v", s)
	}
}

// TestObsDoesNotPerturbCharges is the "observer effect" guard: the same
// workload with and without full observability charges identical cycles.
func TestObsDoesNotPerturbCharges(t *testing.T) {
	run := func(cfg obs.Config) sim.Accounts {
		mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
		p, err := mgr.Create("test", 1<<20, pmo.ModeRead|pmo.ModeWrite)
		if err != nil {
			t.Fatal(err)
		}
		rt := NewRuntime(params.NewConfig(params.TT, params.DefaultEWMicros), mgr)
		rt.EnableObs(cfg)
		ctx := rt.NewThread(sim.SingleThread())
		drive(t, ctx, p)
		rt.Finish(ctx.Now())
		return ctx.th.Costs
	}
	plain := run(obs.Config{})
	full := run(obs.Config{Trace: true, Metrics: true})
	if plain != full {
		t.Fatalf("observability changed charges:\nplain: %v\nfull:  %v", plain, full)
	}
}
