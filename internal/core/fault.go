// Package core implements the TERP runtime — the paper's primary
// contribution assembled over the substrates: PMO attach/detach under a
// chosen semantics (Section IV), conditional attach/detach over the TERP
// hardware (Section V-B), thread permission control, exposure-window
// accounting, space-layout randomization, and the full load/store
// protection path (TLB, permission matrix, thread permission, caches).
package core

import (
	"errors"
	"fmt"

	"repro/internal/paging"
	"repro/internal/pmo"
)

// FaultKind classifies protection faults raised on loads and stores.
type FaultKind int

// The three PMO data states of Section VII-D produce three fault kinds.
const (
	// SegFault: the PMO is detached; the address is not mapped and the
	// MMU raises a segmentation fault. Even Spectre-class attacks fail
	// in this state (non-existent mapping).
	SegFault FaultKind = iota
	// PermFault: the mapping exists but the process-wide permission
	// matrix denies the requested access.
	PermFault
	// ThreadPermFault: the PMO is attached but the calling thread does
	// not hold thread-level permission (its TEW is closed).
	ThreadPermFault
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case SegFault:
		return "segmentation fault"
	case PermFault:
		return "permission matrix fault"
	case ThreadPermFault:
		return "thread permission fault"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is a protection fault on a PMO access.
type Fault struct {
	// Kind classifies the fault.
	Kind FaultKind
	// OID is the object the access targeted.
	OID pmo.OID
	// Want is the requested access right.
	Want paging.Perm
	// Thread is the faulting thread.
	Thread int
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("core: %s on %v (want %s, thread %d)", f.Kind, f.OID, f.Want, f.Thread)
}

// IsFault reports whether err is (or wraps) a protection fault of the
// given kind.
func IsFault(err error, k FaultKind) bool {
	var f *Fault
	return errors.As(err, &f) && f.Kind == k
}
