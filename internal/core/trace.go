package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/params"
)

// TraceKind classifies protection events recorded by the tracer.
type TraceKind int

// The protection events of one run.
const (
	// TraceRealAttach is a full attach system call.
	TraceRealAttach TraceKind = iota
	// TraceGrant is a conditional attach lowered to a thread grant.
	TraceGrant
	// TraceSilentNest is a nested attach/detach made silent.
	TraceSilentNest
	// TraceRealDetach is a full detach system call.
	TraceRealDetach
	// TraceRevoke is a conditional detach lowered to a thread revoke.
	TraceRevoke
	// TraceSelfDetach is a sweep-triggered detach (expired window).
	TraceSelfDetach
	// TraceRandomize is a space-layout randomization.
	TraceRandomize
	// TraceFault is a protection fault on an access.
	TraceFault
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceRealAttach:
		return "attach"
	case TraceGrant:
		return "grant"
	case TraceSilentNest:
		return "silent"
	case TraceRealDetach:
		return "detach"
	case TraceRevoke:
		return "revoke"
	case TraceSelfDetach:
		return "self-detach"
	case TraceRandomize:
		return "randomize"
	case TraceFault:
		return "FAULT"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// TraceEvent is one recorded protection event.
type TraceEvent struct {
	// Time is the event time in cycles.
	Time uint64
	// Thread is the acting thread (-1 for hardware-initiated events).
	Thread int
	// PMO is the affected PMO ID (0 when not applicable).
	PMO uint32
	// Kind classifies the event.
	Kind TraceKind
}

// String renders the event as a timeline line.
func (e TraceEvent) String() string {
	th := fmt.Sprintf("t%d", e.Thread)
	if e.Thread < 0 {
		th = "hw"
	}
	return fmt.Sprintf("%10.2fus %-3s pmo%-3d %s",
		params.ToMicros(e.Time), th, e.PMO, e.Kind)
}

// tracer is a bounded ring of protection events. A nil tracer costs one
// nil check per event site.
type tracer struct {
	ring  []TraceEvent
	next  int
	total uint64
}

// EnableTrace starts recording the last `keep` protection events.
func (r *Runtime) EnableTrace(keep int) {
	if keep <= 0 {
		keep = 256
	}
	r.trace = &tracer{ring: make([]TraceEvent, 0, keep)}
}

// TraceEvents returns the recorded events in time order and the total
// number of events observed (which may exceed the retained window).
func (r *Runtime) TraceEvents() ([]TraceEvent, uint64) {
	if r.trace == nil {
		return nil, 0
	}
	t := r.trace
	out := make([]TraceEvent, 0, len(t.ring))
	if len(t.ring) == cap(t.ring) {
		out = append(out, t.ring[t.next:]...)
	}
	out = append(out, t.ring[:t.next]...)
	return out, t.total
}

// emit records one event (no-op without EnableTrace/EnableObs). The
// protection-event thread convention (-1 = hardware) matches obs.HWThread,
// so events mirror directly onto the obs tracks.
func (r *Runtime) emit(time uint64, thread int, pmoID uint32, kind TraceKind) {
	if r.obs != nil {
		r.obs.Track(thread).Instant(time, obs.CatCore, kind.String(), int64(pmoID))
	}
	t := r.trace
	if t == nil {
		return
	}
	t.total++
	ev := TraceEvent{Time: time, Thread: thread, PMO: pmoID, Kind: kind}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		t.next = len(t.ring) % cap(t.ring)
		return
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % cap(t.ring)
}
