package core

import (
	"fmt"
	"math/rand"

	"repro/internal/expo"
	"repro/internal/merr"
	"repro/internal/mpk"
	"repro/internal/nvm"
	"repro/internal/obs"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/semantics"
	"repro/internal/sim"
	"repro/internal/terphw"
)

// Counters are the operation counts the evaluation reports (Tables III
// and IV): conditional attach/detach frequency, the fraction lowered to
// thread permission changes (Silent), and the system call totals.
type Counters struct {
	// CondOps counts executed conditional attach/detach instructions.
	CondOps uint64
	// SilentOps counts conditional ops that avoided a system call.
	SilentOps uint64
	// AttachSyscalls and DetachSyscalls count full system calls.
	AttachSyscalls, DetachSyscalls uint64
	// Randomizations counts space-layout re-randomizations.
	Randomizations uint64
	// Blocks counts Basic-semantics blocking waits.
	Blocks uint64
	// Faults counts protection faults raised on accesses.
	Faults uint64
}

// SilentPercent returns the share of conditional ops lowered to thread
// permission changes (the "Silent" column).
func (c Counters) SilentPercent() float64 {
	if c.CondOps == 0 {
		return 0
	}
	return 100 * float64(c.SilentOps) / float64(c.CondOps)
}

// UseLegacyAccessPath, when set before NewRuntime, disables the
// per-thread last-translation cache so every access resolves its PMO,
// mapping, matrix entry and protection domain through the full map-lookup
// path. The optimized and legacy paths charge identical simulated cycles
// and produce identical counters and events; the switch exists so the
// equivalence tests (and suspicious users) can compare whole runs.
var UseLegacyAccessPath = false

// Runtime is one protected process: the PMO attach/detach state machine
// for a chosen scheme plus all architectural structures it needs. A
// Runtime is driven by one or more ThreadCtx values; under the cooperative
// simulator only one thread executes at a time, so Runtime needs no locks.
type Runtime struct {
	Cfg params.Config

	// fastPath enables the per-thread last-translation cache (the
	// inverse of UseLegacyAccessPath, latched at construction).
	fastPath bool

	mgr     *pmo.Manager
	as      *paging.AddressSpace
	matrix  *merr.Matrix
	domains *mpk.Allocator
	cb      *terphw.Buffer
	policy  semantics.Policy
	states  map[uint32]*semantics.State
	perms   map[uint32]paging.Perm // requested process perm per PMO
	tracker *expo.Tracker
	l2      *nvm.Cache
	rng     *rand.Rand
	machine *sim.Machine
	threads []*ThreadCtx
	trace   *tracer
	user    pmo.Principal

	// Observability (nil / empty when off; see EnableObs).
	obs         *obs.Recorder
	obsCfg      obs.Config
	metrics     *obs.Snapshot
	chargeHists []*obs.Hist

	// Counts accumulates the operation counters.
	Counts Counters
}

// NewRuntime builds a runtime for one run over the PMO manager.
func NewRuntime(cfg params.Config, mgr *pmo.Manager) *Runtime {
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := &Runtime{
		Cfg:      cfg,
		fastPath: !UseLegacyAccessPath,
		mgr:      mgr,
		as:       paging.NewAddressSpace(rng),
		matrix:   merr.NewMatrix(),
		domains:  mpk.NewAllocator(),
		states:   make(map[uint32]*semantics.State),
		perms:    make(map[uint32]paging.Perm),
		tracker:  expo.NewTracker(),
		l2:       nvm.NewCache(params.L2Size, params.L2Ways, params.LineSize),
		rng:      rng,
	}
	switch cfg.Scheme {
	case params.BasicSem:
		r.policy = semantics.Basic{BlockOnConflict: true}
	case params.MM, params.Unprotected:
		// MM uses process-wide non-overlapping attach/detach pairs
		// inserted at EW granularity; plain Basic captures that.
		r.policy = semantics.Basic{}
	default:
		r.policy = semantics.EWConscious{L: cfg.EWTarget}
	}
	if cfg.UsesCircularBuffer() {
		r.cb = terphw.NewBuffer(cfg.EWTarget)
	}
	return r
}

// SetUser sets the principal the process runs as; attach then enforces
// the PMO's namespace mode (owner/other read-write bits). An empty
// principal (the default) runs unchecked, for callers that do not use the
// namespace permission layer.
func (r *Runtime) SetUser(u pmo.Principal) { r.user = u }

// User returns the current principal.
func (r *Runtime) User() pmo.Principal { return r.user }

// checkMode enforces the namespace permission of Section II at attach
// time: the requested mapping rights must be allowed by the PMO's mode
// for the current principal.
func (r *Runtime) checkMode(p *pmo.PMO, perm paging.Perm) error {
	if r.user == "" {
		return nil
	}
	var want pmo.Mode
	if perm.Allows(paging.PermRead) {
		want |= pmo.ModeRead
	}
	if perm.Allows(paging.PermWrite) {
		want |= pmo.ModeWrite
	}
	if !p.AllowsMode(r.user, want) {
		return fmt.Errorf("%w: attach %q as %q wants %s", pmo.ErrPermission, p.Name, r.user, perm)
	}
	return nil
}

// AttachMachine wires a multi-thread scheduler: the machine's tick hook
// drives the hardware timer sweep.
func (r *Runtime) AttachMachine(m *sim.Machine) {
	r.machine = m
	m.SetTick(func(now uint64) { r.sweep(now, nil) })
	if r.obs != nil {
		r.wireSwitchHook(m)
	}
}

// Manager returns the PMO manager the runtime operates on.
func (r *Runtime) Manager() *pmo.Manager { return r.mgr }

// AddressSpace exposes the process address space (attack simulations probe
// it directly).
func (r *Runtime) AddressSpace() *paging.AddressSpace { return r.as }

// Tracker exposes the exposure tracker.
func (r *Runtime) Tracker() *expo.Tracker { return r.tracker }

// state returns the semantics state for a PMO, creating it lazily.
func (r *Runtime) state(id uint32) *semantics.State {
	s := r.states[id]
	if s == nil {
		s = semantics.NewState()
		r.states[id] = s
	}
	return s
}

// NewThread creates an execution context bound to a simulated thread.
func (r *Runtime) NewThread(t *sim.Thread) *ThreadCtx {
	c := &ThreadCtx{
		rt:  r,
		th:  t,
		tlb: paging.NewTLB(),
		l1:  nvm.NewCache(params.L1DSize, params.L1DWays, params.LineSize),
	}
	r.wireThreadObs(c)
	r.threads = append(r.threads, c)
	return c
}

// ThreadCtx is one simulated thread executing under the runtime: its MPK
// permission registers, private TLB and L1 cache, and its clock.
type ThreadCtx struct {
	rt    *Runtime
	th    *sim.Thread
	regs  mpk.Registers
	tlb   *paging.TLB
	l1    *nvm.Cache
	obs   *obs.Track // nil when tracing is off
	trans transCache
}

// transCache is the per-thread last-translation cache: the resolved state
// of the most recent access, valid only while the address-space epoch is
// unchanged (every attach, detach and randomization bumps it — and every
// matrix or domain mutation co-occurs with one of those). The cached
// permission state is re-verified on every hit (merr.CheckFast for the
// process matrix, mpk.Registers.Allows for the thread domain), so a hit
// only skips the map lookups and the matrix search, never a check, a
// cycle charge, a counter or an event.
type transCache struct {
	valid bool
	epoch uint64
	pool  uint32
	p     *pmo.PMO
	m     *paging.Mapping
	e     *merr.MatrixEntry
	d     mpk.Domain
	dok   bool
}

// Thread returns the underlying simulated thread.
func (c *ThreadCtx) Thread() *sim.Thread { return c.th }

// Runtime returns the owning runtime.
func (c *ThreadCtx) Runtime() *Runtime { return c.rt }

// Compute charges n cycles of ordinary computation. On a single-thread
// runtime it also models the continuously running hardware timer: when
// the computation crosses an exposure-window deadline, the sweep fires at
// the deadline rather than at the end of the computation, so windows are
// closed (or randomized) on time even across long non-PM phases. Under a
// machine scheduler the tick hook provides this instead.
func (c *ThreadCtx) Compute(n uint64) {
	r := c.rt
	if r.machine != nil || r.cb == nil {
		c.th.Charge(sim.Base, n)
		return
	}
	for n > 0 {
		dl, ok := r.cb.NextDeadline()
		if !ok || dl >= c.th.Clock+n {
			break
		}
		if dl > c.th.Clock {
			step := dl - c.th.Clock
			c.th.Charge(sim.Base, step)
			n -= step
		}
		before := dl
		r.sweep(c.th.Clock, c.th)
		if nd, ok := r.cb.NextDeadline(); ok && nd <= before {
			// No progress (e.g. randomization disabled): stop
			// splitting and charge the remainder at once.
			break
		}
	}
	if n > 0 {
		c.th.Charge(sim.Base, n)
	}
}

// Now returns the thread-local time in cycles.
func (c *ThreadCtx) Now() uint64 { return c.th.Clock }

// --- attach / detach -----------------------------------------------------

// realAttach maps the PMO, installs the permission matrix entry, assigns a
// protection domain and opens the exposure window. The syscall cost is
// charged by the caller (schemes differ in what they charge).
func (r *Runtime) realAttach(p *pmo.PMO, perm paging.Perm, now uint64) error {
	_, err := r.as.Attach(p.ID, p.Size, r.mgr.Device(), p.DevOff, perm)
	if err != nil {
		return err
	}
	m, _ := r.as.Mapping(p.ID)
	r.matrix.Add(p.ID, m.Base, m.Size, perm)
	if _, err := r.domains.Assign(p.ID); err != nil {
		return err
	}
	r.perms[p.ID] = perm
	r.tracker.EWOpen(p.ID, now)
	r.emit(now, -1, p.ID, TraceRealAttach)
	return nil
}

// realDetach unmaps the PMO and tears down its entries. TLB shootdown
// cost is charged by the caller.
func (r *Runtime) realDetach(p *pmo.PMO, now uint64) error {
	if err := r.as.Detach(p.ID); err != nil {
		return err
	}
	_ = r.matrix.Remove(p.ID)
	r.domains.Release(p.ID)
	r.tracker.EWClose(p.ID, now)
	r.emit(now, -1, p.ID, TraceRealDetach)
	for _, tc := range r.threads {
		tc.tlb.Invalidate()
	}
	return nil
}

// randomize moves an attached PMO to a fresh random base, suspending all
// threads for the page-table update and TLB shootdown (Section V-B).
func (r *Runtime) randomize(id uint32, initiator *sim.Thread) {
	m, err := r.as.Randomize(id)
	if err != nil {
		return
	}
	_ = r.matrix.Relocate(id, m.Base)
	r.tracker.EWRandomized(id, initiatorClock(initiator, r))
	r.emit(initiatorClock(initiator, r), -1, id, TraceRandomize)
	r.Counts.Randomizations++
	cost := uint64(params.RandomizeCost + params.TLBInvalidate)
	if r.machine != nil {
		r.machine.ChargeAll(sim.Rand, cost)
	} else if initiator != nil {
		initiator.Charge(sim.Rand, cost)
	}
	for _, tc := range r.threads {
		tc.tlb.Invalidate()
		tc.l1.InvalidateAll()
	}
	r.l2.InvalidateAll()
}

func initiatorClock(t *sim.Thread, r *Runtime) uint64 {
	if t != nil {
		return t.Clock
	}
	if r.machine != nil {
		return r.machine.Now()
	}
	return 0
}

// sweep runs the circular-buffer timer sweep at global time now.
// Self-detaches charge the initiating context (hardware-triggered detach
// still consumes a syscall on some core); randomizations stall everyone.
func (r *Runtime) sweep(now uint64, t *sim.Thread) {
	if r.cb == nil {
		return
	}
	for _, act := range r.cb.Sweep(now) {
		p, err := r.mgr.Lookup(act.PMOID)
		if err != nil {
			continue
		}
		if act.Detach {
			if err := r.realDetach(p, now); err == nil {
				// Keep the semantics state in step with the
				// hardware-initiated detach.
				st := r.state(p.ID)
				st.Attached = false
				st.DetachDone = true
				r.emit(now, -1, p.ID, TraceSelfDetach)
				r.Counts.DetachSyscalls++
				cost := uint64(params.DetachSyscall + params.TLBInvalidate)
				if t != nil {
					t.Charge(sim.Detach, cost)
				} else if r.machine != nil {
					r.machine.ChargeAll(sim.Detach, cost/uint64(len(r.machine.Threads)))
				}
			}
		} else if r.Cfg.Randomize {
			r.randomize(act.PMOID, t)
		}
	}
}

// Attach performs the scheme's attach operation for the calling thread.
// Under MM it is the manually inserted process-wide attach; under the
// TERP schemes it is the compiler-inserted conditional attach (CONDAT).
func (c *ThreadCtx) Attach(p *pmo.PMO, perm paging.Perm) error {
	r := c.rt
	if err := r.checkMode(p, perm); err != nil {
		return err
	}
	switch r.Cfg.Scheme {
	case params.Unprotected:
		// Baseline: map once, free of charge, stay mapped.
		if !r.as.Attached(p.ID) {
			if err := r.realAttach(p, perm, c.th.Clock); err != nil {
				return err
			}
		}
		return nil
	case params.MM:
		return c.attachMM(p, perm)
	default:
		return c.condAttach(p, perm)
	}
}

// Detach performs the scheme's detach operation for the calling thread.
func (c *ThreadCtx) Detach(p *pmo.PMO) error {
	r := c.rt
	switch r.Cfg.Scheme {
	case params.Unprotected:
		return nil
	case params.MM:
		return c.detachMM(p)
	default:
		return c.condDetach(p)
	}
}

// attachMM is MERR's attach: a full system call that maps the PMO at a
// randomized base, under process-wide Basic semantics.
func (c *ThreadCtx) attachMM(p *pmo.PMO, perm paging.Perm) error {
	r := c.rt
	st := r.state(p.ID)
	act, err := r.policy.Attach(st, c.th.ID, c.th.Clock)
	if err != nil {
		return fmt.Errorf("MM attach %q: %w", p.Name, err)
	}
	if act != semantics.ActRealAttach {
		return fmt.Errorf("MM attach %q: unexpected action %v", p.Name, act)
	}
	c.syscall(sim.Attach, params.AttachSyscall, "attach-sys")
	if err := r.realAttach(p, perm, c.th.Clock); err != nil {
		return err
	}
	r.Counts.AttachSyscalls++
	semantics.CommitAttach(st, c.th.ID, c.th.Clock, act)
	c.th.Yield()
	return nil
}

// detachMM is MERR's detach: a full system call plus TLB shootdown.
func (c *ThreadCtx) detachMM(p *pmo.PMO) error {
	r := c.rt
	st := r.state(p.ID)
	act, err := r.policy.Detach(st, c.th.ID, c.th.Clock)
	if err != nil {
		return fmt.Errorf("MM detach %q: %w", p.Name, err)
	}
	c.syscall(sim.Detach, params.DetachSyscall+params.TLBInvalidate, "detach-sys")
	if err := r.realDetach(p, c.th.Clock); err != nil {
		return err
	}
	r.Counts.DetachSyscalls++
	semantics.CommitDetach(st, c.th.ID, c.th.Clock, act)
	c.th.Yield()
	return nil
}

// condAttach is the TERP conditional attach. Under TT it consults the
// circular buffer (Figure 7b); under TM and the Basic ablation every call
// is a full system call; under +Cond the EW-conscious lowering applies but
// without window combining.
func (c *ThreadCtx) condAttach(p *pmo.PMO, perm paging.Perm) error {
	r := c.rt
	r.Counts.CondOps++
	st := r.state(p.ID)

	// Basic-semantics ablation: block while another thread holds it.
	if r.Cfg.Scheme == params.BasicSem {
		for try := 0; ; try++ {
			act, err := r.policy.Attach(st, c.th.ID, c.th.Clock)
			if err != nil {
				return fmt.Errorf("basic attach %q: %w", p.Name, err)
			}
			if act == semantics.ActRealAttach {
				break
			}
			if try > 1<<22 {
				return fmt.Errorf("basic attach %q: deadlocked waiting for detach", p.Name)
			}
			// Blocked: wait a quantum and retry.
			r.Counts.Blocks++
			c.th.Charge(sim.Other, 200)
			c.th.Yield()
		}
		c.syscall(sim.Attach, params.AttachSyscall, "attach-sys")
		if err := r.realAttach(p, perm, c.th.Clock); err != nil {
			return err
		}
		r.Counts.AttachSyscalls++
		semantics.CommitAttach(st, c.th.ID, c.th.Clock, semantics.ActRealAttach)
		c.grantThread(p, perm)
		c.th.Yield()
		return nil
	}

	act, err := r.policy.Attach(st, c.th.ID, c.th.Clock)
	if err != nil {
		return fmt.Errorf("cond attach %q: %w", p.Name, err)
	}
	if act == semantics.ActSilent {
		// A nested pair within the thread: nothing reaches the
		// hardware; the instruction retires in the fast path.
		c.th.DirectCharge(sim.Cond, params.SilentCondCost)
		r.Counts.SilentOps++
		r.emit(c.th.Clock, c.th.ID, p.ID, TraceSilentNest)
		semantics.CommitAttach(st, c.th.ID, c.th.Clock, act)
		c.th.Yield()
		return nil
	}

	if r.cb != nil {
		// TT: the hardware decides; run the sweep first so expired
		// windows are closed before the new op (single-thread runs
		// have no machine tick).
		if r.machine == nil {
			r.sweep(c.th.Clock, c.th)
		}
		hwCase := r.cb.CondAttach(p.ID, c.th.Clock)
		switch hwCase {
		case terphw.CaseFirstAttach, terphw.CaseOverflow:
			c.syscall(sim.Attach, params.AttachSyscall, "attach-sys")
			if !r.as.Attached(p.ID) {
				if err := r.realAttach(p, perm, c.th.Clock); err != nil {
					return err
				}
			}
			r.Counts.AttachSyscalls++
		case terphw.CaseSubsequentAttach, terphw.CaseSilentAttach:
			c.th.DirectCharge(sim.Cond, params.SilentCondCost)
			r.Counts.SilentOps++
		}
		semantics.CommitAttach(st, c.th.ID, c.th.Clock, act)
		c.grantThread(p, perm)
		c.th.Yield()
		return nil
	}

	// TM / +Cond: software path.
	switch act {
	case semantics.ActRealAttach:
		c.syscall(sim.Attach, params.AttachSyscall, "attach-sys")
		if err := r.realAttach(p, perm, c.th.Clock); err != nil {
			return err
		}
		r.Counts.AttachSyscalls++
	case semantics.ActThreadGrant:
		if r.Cfg.CondIsSyscall() {
			// TM: the lowering itself is a system call.
			c.syscall(sim.Attach, params.AttachSyscall, "attach-sys")
			r.Counts.AttachSyscalls++
		} else {
			c.th.DirectCharge(sim.Cond, params.SilentCondCost)
			r.Counts.SilentOps++
		}
	}
	semantics.CommitAttach(st, c.th.ID, c.th.Clock, act)
	c.grantThread(p, perm)
	c.th.Yield()
	return nil
}

// condDetach is the TERP conditional detach (Figure 7c under TT).
func (c *ThreadCtx) condDetach(p *pmo.PMO) error {
	r := c.rt
	r.Counts.CondOps++
	st := r.state(p.ID)
	// The thread's window ends when the CONDDT begins executing; the
	// instruction's own cost is not exposure time.
	tewEnd := c.th.Clock

	if r.Cfg.Scheme == params.BasicSem {
		act, err := r.policy.Detach(st, c.th.ID, c.th.Clock)
		if err != nil {
			return fmt.Errorf("basic detach %q: %w", p.Name, err)
		}
		c.syscall(sim.Detach, params.DetachSyscall+params.TLBInvalidate, "detach-sys")
		if err := r.realDetach(p, c.th.Clock); err != nil {
			return err
		}
		r.Counts.DetachSyscalls++
		semantics.CommitDetach(st, c.th.ID, c.th.Clock, act)
		c.revokeThread(p, tewEnd)
		c.th.Yield()
		return nil
	}

	act, err := r.policy.Detach(st, c.th.ID, c.th.Clock)
	if err != nil {
		return fmt.Errorf("cond detach %q: %w", p.Name, err)
	}
	if act == semantics.ActSilent {
		c.th.DirectCharge(sim.Cond, params.SilentCondCost)
		r.Counts.SilentOps++
		semantics.CommitDetach(st, c.th.ID, c.th.Clock, act)
		c.th.Yield()
		return nil
	}

	if r.cb != nil {
		if r.machine == nil {
			r.sweep(c.th.Clock, c.th)
		}
		hwCase := r.cb.CondDetach(p.ID, c.th.Clock)
		switch hwCase {
		case terphw.CaseFullDetach:
			c.syscall(sim.Detach, params.DetachSyscall+params.TLBInvalidate, "detach-sys")
			if r.as.Attached(p.ID) {
				if err := r.realDetach(p, c.th.Clock); err != nil {
					return err
				}
			}
			r.Counts.DetachSyscalls++
			semantics.CommitDetach(st, c.th.ID, c.th.Clock, semantics.ActRealDetach)
		case terphw.CasePartialDetach, terphw.CaseDelayedDetach:
			c.th.DirectCharge(sim.Cond, params.SilentCondCost)
			r.Counts.SilentOps++
			semantics.CommitDetach(st, c.th.ID, c.th.Clock, semantics.ActThreadRevoke)
		case terphw.CaseOverflow:
			c.syscall(sim.Detach, params.DetachSyscall+params.TLBInvalidate, "detach-sys")
			if r.as.Attached(p.ID) && !st.OtherHolders(c.th.ID) {
				if err := r.realDetach(p, c.th.Clock); err != nil {
					return err
				}
				semantics.CommitDetach(st, c.th.ID, c.th.Clock, semantics.ActRealDetach)
			} else {
				semantics.CommitDetach(st, c.th.ID, c.th.Clock, semantics.ActThreadRevoke)
			}
			r.Counts.DetachSyscalls++
		}
		c.revokeThread(p, tewEnd)
		c.th.Yield()
		return nil
	}

	// TM / +Cond software path. +Cond has no window combining: a
	// last-holder detach is performed for real even before L.
	if r.Cfg.Scheme == params.PlusCond && act == semantics.ActThreadRevoke && !st.OtherHolders(c.th.ID) {
		act = semantics.ActRealDetach
	}
	switch act {
	case semantics.ActRealDetach:
		c.syscall(sim.Detach, params.DetachSyscall+params.TLBInvalidate, "detach-sys")
		if err := r.realDetach(p, c.th.Clock); err != nil {
			return err
		}
		r.Counts.DetachSyscalls++
	case semantics.ActThreadRevoke:
		if r.Cfg.CondIsSyscall() {
			c.syscall(sim.Detach, params.DetachSyscall, "detach-sys")
			r.Counts.DetachSyscalls++
		} else {
			c.th.DirectCharge(sim.Cond, params.SilentCondCost)
			r.Counts.SilentOps++
		}
	}
	semantics.CommitDetach(st, c.th.ID, c.th.Clock, act)
	c.revokeThread(p, tewEnd)
	c.th.Yield()
	return nil
}

// grantThread opens the calling thread's TEW on the PMO and widens the
// process-wide matrix entry if this grant requests rights the original
// attach did not.
func (c *ThreadCtx) grantThread(p *pmo.PMO, perm paging.Perm) {
	if c.rt.Cfg.TEWTarget == 0 {
		return
	}
	_ = c.rt.matrix.Upgrade(p.ID, perm)
	if d, ok := c.rt.domains.DomainOf(p.ID); ok {
		_ = c.regs.Grant(d, perm)
		c.rt.tracker.TEWOpen(c.th.ID, p.ID, c.th.Clock)
		c.rt.emit(c.th.Clock, c.th.ID, p.ID, TraceGrant)
	}
}

// revokeThread closes the calling thread's TEW on the PMO as of time at.
func (c *ThreadCtx) revokeThread(p *pmo.PMO, at uint64) {
	if c.rt.Cfg.TEWTarget == 0 {
		return
	}
	if d, ok := c.rt.domains.DomainOf(p.ID); ok {
		_ = c.regs.Revoke(d)
	}
	c.rt.tracker.TEWClose(c.th.ID, p.ID, at)
	c.rt.emit(at, c.th.ID, p.ID, TraceRevoke)
}

// --- loads and stores ----------------------------------------------------

// access runs the full protection and timing path for one PMO access.
//
// When the fast path is enabled, the map lookups of the resolution stage
// (PMO by pool, mapping by PMO, matrix row search, protection domain by
// PMO) are served from the thread's last-translation cache whenever the
// access hits the same PMO as the previous one and no attach, detach or
// randomization happened in between (address-space epoch check). Every
// simulated-cost element still executes on a hit — the TLB lookup, the
// matrix-check cycle and the re-verification of both permission layers,
// the cache-hierarchy walk — so the fast and legacy paths charge the same
// cycles, bump the same counters and emit the same events.
func (c *ThreadCtx) access(o pmo.OID, want paging.Perm, n int) (p *pmo.PMO, va uint64, err error) {
	r := c.rt
	var m *paging.Mapping
	var e *merr.MatrixEntry
	var d mpk.Domain
	var dok bool
	tc := &c.trans
	if r.fastPath && tc.valid && tc.pool == o.Pool() && tc.epoch == r.as.Epoch() {
		p, m, e, d, dok = tc.p, tc.m, tc.e, tc.d, tc.dok
		if o.Offset() >= p.Size {
			r.Counts.Faults++
			r.emit(c.th.Clock, c.th.ID, p.ID, TraceFault)
			return nil, 0, &Fault{Kind: SegFault, OID: o, Want: want, Thread: c.th.ID}
		}
	} else {
		p, err = r.mgr.Lookup(o.Pool())
		if err != nil {
			return nil, 0, err
		}
		var ok bool
		m, ok = r.as.Mapping(p.ID)
		if !ok || o.Offset() >= p.Size {
			r.Counts.Faults++
			r.emit(c.th.Clock, c.th.ID, p.ID, TraceFault)
			return nil, 0, &Fault{Kind: SegFault, OID: o, Want: want, Thread: c.th.ID}
		}
		d, dok = r.domains.DomainOf(p.ID)
		if r.fastPath {
			e, _ = r.matrix.Entry(p.ID)
			*tc = transCache{valid: true, epoch: r.as.Epoch(), pool: o.Pool(),
				p: p, m: m, e: e, d: d, dok: dok}
		}
	}
	va = m.Base + o.Offset()

	// The access is atomic with respect to the cooperative scheduler
	// (DirectCharge, with one yield at the end): a randomization cannot
	// move the mapping between translation and the permission checks,
	// matching hardware where all threads are suspended during a remap.
	defer c.th.Yield()

	// Address translation.
	c.th.DirectCharge(sim.Base, c.tlb.Lookup(va))

	if r.Cfg.Scheme != params.Unprotected {
		// Permission matrix check (1 cycle, after TLB). CheckFast verifies
		// the cached row; on any mismatch CheckAt redoes the full search
		// with identical counter and event effects.
		c.th.DirectCharge(sim.Other, params.PermMatrixCheck)
		if !r.fastPath || !r.matrix.CheckFast(e, va, want) {
			if _, ok := r.matrix.CheckAt(va, want, c.th.Clock); !ok {
				r.Counts.Faults++
				r.emit(c.th.Clock, c.th.ID, p.ID, TraceFault)
				return nil, 0, &Fault{Kind: PermFault, OID: o, Want: want, Thread: c.th.ID}
			}
		}
		// Thread permission check (TEW schemes only).
		if r.Cfg.TEWTarget != 0 {
			if !dok || !c.regs.Allows(d, want) {
				r.Counts.Faults++
				r.emit(c.th.Clock, c.th.ID, p.ID, TraceFault)
				return nil, 0, &Fault{Kind: ThreadPermFault, OID: o, Want: want, Thread: c.th.ID}
			}
		}
	}

	// Cache hierarchy and memory latency.
	lines := (int(va)%params.LineSize + n + params.LineSize - 1) / params.LineSize
	for i := 0; i < lines; i++ {
		la := va + uint64(i*params.LineSize)
		switch {
		case c.l1.Access(la):
			c.th.DirectCharge(sim.Base, params.L1Latency)
		case r.l2.Access(la):
			c.th.DirectCharge(sim.Base, params.L1Latency+params.L2Latency)
		default:
			c.th.DirectCharge(sim.Base, params.L1Latency+params.L2Latency+latency(m.Dev))
		}
	}
	return p, va, nil
}

func latency(d *nvm.Device) uint64 {
	if d.Kind() == nvm.NVM {
		return params.NVMLatency
	}
	return params.DRAMLatency
}

// Load reads an 8-byte word from the PMO object.
func (c *ThreadCtx) Load(o pmo.OID) (uint64, error) {
	p, _, err := c.access(o, paging.PermRead, 8)
	if err != nil {
		return 0, err
	}
	return p.Read8(o.Offset())
}

// Store writes an 8-byte word to the PMO object.
func (c *ThreadCtx) Store(o pmo.OID, v uint64) error {
	p, _, err := c.access(o, paging.PermWrite, 8)
	if err != nil {
		return err
	}
	return p.Write8(o.Offset(), v)
}

// LoadBytes reads n bytes starting at the object into b.
func (c *ThreadCtx) LoadBytes(o pmo.OID, b []byte) error {
	p, _, err := c.access(o, paging.PermRead, len(b))
	if err != nil {
		return err
	}
	return p.ReadAt(b, o.Offset())
}

// StoreBytes writes b starting at the object.
func (c *ThreadCtx) StoreBytes(o pmo.OID, b []byte) error {
	p, _, err := c.access(o, paging.PermWrite, len(b))
	if err != nil {
		return err
	}
	return p.WriteAt(b, o.Offset())
}

// DRAMAccess models one volatile memory access of n bytes at a synthetic
// address (stack/heap work outside PMOs), charged through the caches.
func (c *ThreadCtx) DRAMAccess(addr uint64, n int) {
	// Tag DRAM addresses into a disjoint region of the line space.
	const dramBias = uint64(1) << 62
	va := dramBias | addr
	lines := (int(va)%params.LineSize + n + params.LineSize - 1) / params.LineSize
	for i := 0; i < lines; i++ {
		la := va + uint64(i*params.LineSize)
		switch {
		case c.l1.Access(la):
			c.th.Charge(sim.Base, params.L1Latency)
		case c.rt.l2.Access(la):
			c.th.Charge(sim.Base, params.L1Latency+params.L2Latency)
		default:
			c.th.Charge(sim.Base, params.L1Latency+params.L2Latency+params.DRAMLatency)
		}
	}
}

// --- run results ----------------------------------------------------------

// Result is the outcome of one simulated run.
type Result struct {
	// Scheme is the protection configuration that ran.
	Scheme params.Scheme
	// Cycles is the end-of-run time (max over threads).
	Cycles uint64
	// Costs is the per-component cycle breakdown summed over threads.
	Costs sim.Accounts
	// Exposure is the EW/TEW summary.
	Exposure expo.Stats
	// Counts are the operation counters.
	Counts Counters
}

// CondFreqPerSec returns conditional ops per second of simulated time.
func (res Result) CondFreqPerSec() float64 {
	if res.Cycles == 0 {
		return 0
	}
	secs := float64(res.Cycles) / (params.CyclesPerMicro * 1e6)
	return float64(res.Counts.CondOps) / secs
}

// Finish closes open windows at end time and assembles the result for a
// single-threaded run on thread t.
func (r *Runtime) Finish(end uint64) Result {
	r.tracker.Finish(end)
	var costs sim.Accounts
	for _, tc := range r.threads {
		costs.Merge(&tc.th.Costs)
	}
	return Result{
		Scheme:   r.Cfg.Scheme,
		Cycles:   end,
		Costs:    costs,
		Exposure: r.tracker.Collect(end),
		Counts:   r.Counts,
	}
}

// LoadVA performs a load at an absolute virtual address — the attacker's
// view of memory in the security case studies. It walks the same
// protection path as Load but resolves the mapping from the address
// instead of an ObjectID, so a stale address learned before a
// randomization faults (or reads the wrong object) exactly as on the
// simulated hardware.
func (c *ThreadCtx) LoadVA(va uint64) (uint64, error) {
	p, off, err := c.resolveVA(va, paging.PermRead)
	if err != nil {
		return 0, err
	}
	return p.Read8(off)
}

// StoreVA performs a store at an absolute virtual address (see LoadVA).
func (c *ThreadCtx) StoreVA(va uint64, v uint64) error {
	p, off, err := c.resolveVA(va, paging.PermWrite)
	if err != nil {
		return err
	}
	return p.Write8(off, v)
}

// resolveVA translates and protection-checks an absolute address.
func (c *ThreadCtx) resolveVA(va uint64, want paging.Perm) (*pmo.PMO, uint64, error) {
	r := c.rt
	m, err := r.as.Lookup(va)
	if err != nil {
		r.Counts.Faults++
		return nil, 0, &Fault{Kind: SegFault, Want: want, Thread: c.th.ID}
	}
	c.th.Charge(sim.Base, c.tlb.Lookup(va))
	if r.Cfg.Scheme != params.Unprotected {
		c.th.Charge(sim.Other, params.PermMatrixCheck)
		if _, ok := r.matrix.CheckAt(va, want, c.th.Clock); !ok {
			r.Counts.Faults++
			return nil, 0, &Fault{Kind: PermFault, Want: want, Thread: c.th.ID}
		}
		if r.Cfg.TEWTarget != 0 {
			d, ok := r.domains.DomainOf(m.PMOID)
			if !ok || !c.regs.Allows(d, want) {
				r.Counts.Faults++
				return nil, 0, &Fault{Kind: ThreadPermFault, Want: want, Thread: c.th.ID}
			}
		}
	}
	switch {
	case c.l1.Access(va):
		c.th.Charge(sim.Base, params.L1Latency)
	case r.l2.Access(va):
		c.th.Charge(sim.Base, params.L1Latency+params.L2Latency)
	default:
		c.th.Charge(sim.Base, params.L1Latency+params.L2Latency+latency(m.Dev))
	}
	p, err := r.mgr.Lookup(m.PMOID)
	if err != nil {
		return nil, 0, err
	}
	return p, va - m.Base, nil
}

// MappingBase returns the current virtual base of an attached PMO — the
// information a memory-disclosure primitive leaks to the attacker.
func (r *Runtime) MappingBase(pmoID uint32) (uint64, bool) {
	m, ok := r.as.Mapping(pmoID)
	if !ok {
		return 0, false
	}
	return m.Base, true
}

// Sweep runs the hardware timer sweep at the thread's current time. The
// runtime runs sweeps automatically inside conditional operations and via
// the machine tick; callers with long quiet phases (the security case
// studies) invoke it explicitly to model the always-on hardware timer.
func (r *Runtime) Sweep(c *ThreadCtx) { r.sweep(c.th.Clock, c.th) }
