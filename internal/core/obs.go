package core

import (
	"repro/internal/obs"
	"repro/internal/sim"
)

// EnableObs turns on the observability layer for this runtime: with
// cfg.Trace a Recorder collects per-thread event streams from every
// component, and with cfg.Metrics a Snapshot accumulates counters and
// histograms. Call it before creating threads (and before AttachMachine,
// or wiring the scheduler hook is handled there); threads created earlier
// are not instrumented.
func (r *Runtime) EnableObs(cfg obs.Config) {
	r.obsCfg = cfg
	if cfg.Trace {
		r.obs = obs.NewRecorder(cfg.TraceCap)
		hw := r.obs.Track(obs.HWThread)
		if r.cb != nil {
			r.cb.Obs = hw
		}
		r.matrix.Obs = hw
		r.tracker.Obs = r.obs
		if r.machine != nil {
			r.wireSwitchHook(r.machine)
		}
	}
	if cfg.Metrics {
		r.metrics = obs.NewSnapshot()
		r.chargeHists = make([]*obs.Hist, int(sim.Other)+1)
		for a := sim.Base; a <= sim.Other; a++ {
			r.chargeHists[a] = r.metrics.Hist("sim/charge/" + a.String())
		}
	}
	if b := r.mgr.Device().PersistBuffer(); b != nil {
		if cfg.Trace {
			b.Obs = r.obs.Track(obs.HWThread)
			b.NowFn = r.globalNow
		}
		if cfg.Metrics {
			b.Occupancy = r.metrics.Hist("nvm/occupancy")
		}
	}
}

// ObsRecorder returns the event recorder (nil when tracing is off).
func (r *Runtime) ObsRecorder() *obs.Recorder { return r.obs }

// wireSwitchHook records scheduler context switches on the resumed
// thread's track.
func (r *Runtime) wireSwitchHook(m *sim.Machine) {
	rec := r.obs
	m.SwitchHook = func(ts uint64, thread int) {
		rec.Track(thread).Instant(ts, obs.CatSim, "switch-in", 0)
	}
}

// globalNow approximates current simulated time for events issued without
// a thread identity (the persist buffer is driven through the device).
func (r *Runtime) globalNow() uint64 {
	if r.machine != nil {
		return r.machine.Now()
	}
	if len(r.threads) > 0 {
		return r.threads[0].th.Clock
	}
	return 0
}

// wireThreadObs instruments a newly created thread context: its own event
// track, TLB walk events, and the per-account charge histograms.
func (r *Runtime) wireThreadObs(c *ThreadCtx) {
	if r.obs != nil {
		c.obs = r.obs.Track(c.th.ID)
		c.tlb.Obs = c.obs
		th := c.th
		c.tlb.Now = func() uint64 { return th.Clock }
	}
	if r.chargeHists != nil {
		hists := r.chargeHists
		c.th.ChargeHook = func(a sim.Account, n uint64) {
			hists[a].Observe(n)
		}
	}
}

// syscall charges a full system call on account a and records it as a
// synchronous span on the thread's track (nil track = no-op).
func (c *ThreadCtx) syscall(a sim.Account, cost uint64, name string) {
	from := c.th.Clock
	c.th.DirectCharge(a, cost)
	c.obs.Span(from, c.th.Clock, obs.CatCore, name, 0)
}

// ObsSnapshot assembles the end-of-run metrics snapshot from every
// component's counters plus the histograms accumulated during the run.
// It returns nil when metrics collection is off.
func (r *Runtime) ObsSnapshot() *obs.Snapshot {
	if r.metrics == nil {
		return nil
	}
	s := r.metrics
	var costs sim.Accounts
	var l1, l2, miss, flush uint64
	for _, tc := range r.threads {
		costs.Merge(&tc.th.Costs)
		l1 += tc.tlb.L1Hits
		l2 += tc.tlb.L2Hits
		miss += tc.tlb.Misses
		flush += tc.tlb.Flushes
	}
	for a := sim.Base; a <= sim.Other; a++ {
		s.Add("sim/cycles/"+a.String(), costs[a])
	}
	s.Add("core/cond_ops", r.Counts.CondOps)
	s.Add("core/silent_ops", r.Counts.SilentOps)
	s.Add("core/attach_syscalls", r.Counts.AttachSyscalls)
	s.Add("core/detach_syscalls", r.Counts.DetachSyscalls)
	s.Add("core/randomizations", r.Counts.Randomizations)
	s.Add("core/blocks", r.Counts.Blocks)
	s.Add("core/faults", r.Counts.Faults)
	s.Add("paging/tlb/l1_hits", l1)
	s.Add("paging/tlb/l2_hits", l2)
	s.Add("paging/tlb/misses", miss)
	s.Add("paging/tlb/flushes", flush)
	s.Add("merr/checks", r.matrix.Checks)
	s.Add("merr/denials", r.matrix.Denials)
	if r.cb != nil {
		s.Add("terphw/elided", r.cb.Elided)
		s.Add("terphw/self_detach", r.cb.SelfDetach)
		s.Add("terphw/sweep_rand", r.cb.SweepRand)
	}
	ew, tew := r.tracker.Counts()
	s.Add("expo/ew_closed", ew)
	s.Add("expo/tew_closed", tew)
	if b := r.mgr.Device().PersistBuffer(); b != nil {
		s.Add("nvm/flushes", b.Flushes())
		s.Add("nvm/fences", b.Fences())
		s.Add("nvm/drained_lines", b.DrainedLines())
	}
	if r.obs != nil {
		s.Add("obs/events", r.obs.Total())
		// Ring overflow is never silent: dropped events surface here and
		// the report layer flags any cell with a nonzero count.
		s.Add("obs/dropped", r.obs.Dropped())
	}
	return s
}
