package core

import (
	"testing"

	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
)

func newEnv(t *testing.T, scheme params.Scheme) (*Runtime, *ThreadCtx, *pmo.PMO) {
	t.Helper()
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
	p, err := mgr.Create("test", 1<<20, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(params.NewConfig(scheme, params.DefaultEWMicros), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	return rt, ctx, p
}

func TestUnprotectedBaseline(t *testing.T) {
	rt, ctx, p := newEnv(t, params.Unprotected)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(64)
	if err := ctx.Store(o, 42); err != nil {
		t.Fatal(err)
	}
	v, err := ctx.Load(o)
	if err != nil || v != 42 {
		t.Fatalf("load = %d, %v", v, err)
	}
	// No protection costs at all.
	if ctx.th.Costs[sim.Attach] != 0 || ctx.th.Costs[sim.Other] != 0 {
		t.Fatalf("baseline charged protection costs: %v", ctx.th.Costs)
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.AttachSyscalls != 0 {
		t.Fatal("baseline counted syscalls")
	}
}

func TestMMAttachDetachCosts(t *testing.T) {
	rt, ctx, p := newEnv(t, params.MM)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if ctx.th.Costs[sim.Attach] != params.AttachSyscall {
		t.Fatalf("attach cost = %d", ctx.th.Costs[sim.Attach])
	}
	o, _ := p.Alloc(64)
	if err := ctx.Store(o, 7); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	if ctx.th.Costs[sim.Detach] != params.DetachSyscall+params.TLBInvalidate {
		t.Fatalf("detach cost = %d", ctx.th.Costs[sim.Detach])
	}
	// Access after detach segfaults.
	if _, err := ctx.Load(o); !IsFault(err, SegFault) {
		t.Fatalf("post-detach load: %v", err)
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.AttachSyscalls != 1 || res.Counts.DetachSyscalls != 1 {
		t.Fatalf("counts = %+v", res.Counts)
	}
	if res.Exposure.EWCount != 1 {
		t.Fatalf("EW count = %d", res.Exposure.EWCount)
	}
}

func TestMMDoubleAttachFails(t *testing.T) {
	_, ctx, p := newEnv(t, params.MM)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Attach(p, paging.ReadWrite); err == nil {
		t.Fatal("MM double attach accepted")
	}
}

func TestMMRandomizesBaseAcrossAttaches(t *testing.T) {
	rt, ctx, p := newEnv(t, params.MM)
	bases := map[uint64]bool{}
	for i := 0; i < 6; i++ {
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			t.Fatal(err)
		}
		m, _ := rt.as.Mapping(p.ID)
		bases[m.Base] = true
		if err := ctx.Detach(p); err != nil {
			t.Fatal(err)
		}
	}
	if len(bases) < 4 {
		t.Fatalf("bases not randomized: %d distinct", len(bases))
	}
}

func TestTTSilentLowering(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	o, err := func() (pmo.OID, error) {
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			return 0, err
		}
		return p.Alloc(64)
	}()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Store(o, 1); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	// Second attach shortly after: the delayed detach is elided and
	// the attach is silent (Case 3).
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if v, err := ctx.Load(o); err != nil || v != 1 {
		t.Fatalf("load after silent attach = %d, %v", v, err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.AttachSyscalls != 1 {
		t.Fatalf("attach syscalls = %d, want 1 (second was silent)", res.Counts.AttachSyscalls)
	}
	if res.Counts.SilentOps < 2 {
		t.Fatalf("silent ops = %d", res.Counts.SilentOps)
	}
	if res.Counts.CondOps != 4 {
		t.Fatalf("cond ops = %d", res.Counts.CondOps)
	}
}

func TestTTThreadPermissionEnforced(t *testing.T) {
	_, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(64)
	if err := ctx.Store(o, 5); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	// PMO is still mapped (delayed detach) but the thread permission is
	// revoked: access must raise a thread permission fault, not a
	// segfault — exactly state 2 of Section VII-D.
	if _, err := ctx.Load(o); !IsFault(err, ThreadPermFault) {
		t.Fatalf("post-revoke load: %v", err)
	}
}

func TestTTReadOnlyGrant(t *testing.T) {
	_, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.PermRead); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(64)
	if _, err := ctx.Load(o); err != nil {
		t.Fatalf("read under read grant: %v", err)
	}
	if err := ctx.Store(o, 1); err == nil {
		t.Fatal("write under read-only grant accepted")
	}
}

func TestTTSelfDetachOnExpiredWindow(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	// Burn past the EW target; the inline sweep on the next op (or an
	// explicit sweep) must self-detach the delayed PMO.
	ctx.Compute(rt.Cfg.EWTarget + 2*params.SweepPeriod)
	rt.sweep(ctx.Now(), ctx.th)
	if rt.as.Attached(p.ID) {
		t.Fatal("expired delayed-detach PMO still mapped")
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.DetachSyscalls != 1 {
		t.Fatalf("detach syscalls = %d", res.Counts.DetachSyscalls)
	}
	// Exposure window must be bounded by EW target plus one sweep.
	limit := float64(rt.Cfg.EWTarget + 3*params.SweepPeriod)
	if res.Exposure.MaxEW > limit {
		t.Fatalf("max EW %f exceeds %f", res.Exposure.MaxEW, limit)
	}
}

func TestTTRandomizeWhenHeldPastEW(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	m, _ := rt.as.Mapping(p.ID)
	base := m.Base
	// Hold the PMO past the max EW; the sweep must randomize, not
	// detach (Figure 6c / partial combining).
	ctx.Compute(rt.Cfg.EWTarget + 2*params.SweepPeriod)
	rt.sweep(ctx.Now(), ctx.th)
	if !rt.as.Attached(p.ID) {
		t.Fatal("held PMO was detached")
	}
	m2, _ := rt.as.Mapping(p.ID)
	if m2.Base == base {
		t.Fatal("held PMO was not randomized")
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.Randomizations != 1 {
		t.Fatalf("randomizations = %d", res.Counts.Randomizations)
	}
	if res.Costs[sim.Rand] == 0 {
		t.Fatal("randomization cost not charged")
	}
	// An access still works after randomization (relocatable OIDs).
	o, _ := p.Alloc(8)
	if err := ctx.Store(o, 9); err != nil {
		t.Fatalf("store after randomize: %v", err)
	}
}

func TestTMEveryOpIsSyscall(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TM)
	for i := 0; i < 4; i++ {
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Detach(p); err != nil {
			t.Fatal(err)
		}
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.SilentOps != 0 {
		t.Fatalf("TM had silent ops: %d", res.Counts.SilentOps)
	}
	if res.Counts.AttachSyscalls+res.Counts.DetachSyscalls != 8 {
		t.Fatalf("syscalls = %d+%d, want 8",
			res.Counts.AttachSyscalls, res.Counts.DetachSyscalls)
	}
}

func TestPlusCondRealDetachOnLastHolder(t *testing.T) {
	rt, ctx, p := newEnv(t, params.PlusCond)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	// No window combining: the PMO must be unmapped immediately.
	if rt.as.Attached(p.ID) {
		t.Fatal("+Cond left PMO mapped after last-holder detach")
	}
	res := rt.Finish(ctx.Now())
	if res.Counts.DetachSyscalls != 1 {
		t.Fatalf("detach syscalls = %d", res.Counts.DetachSyscalls)
	}
}

func TestSchemeOverheadOrdering(t *testing.T) {
	// For the same op sequence the total cost must order TT < MM < TM
	// on an attach/detach-heavy loop — the headline result's shape.
	run := func(s params.Scheme) uint64 {
		_, ctx, p := newEnv(t, s)
		o := pmo.OID(0)
		for i := 0; i < 50; i++ {
			if err := ctx.Attach(p, paging.ReadWrite); err != nil {
				t.Fatal(err)
			}
			if o.IsNil() {
				o, _ = p.Alloc(64)
			}
			if err := ctx.Store(o, uint64(i)); err != nil {
				t.Fatal(err)
			}
			ctx.Compute(1000)
			if err := ctx.Detach(p); err != nil {
				t.Fatal(err)
			}
		}
		return ctx.Now()
	}
	tt, tm := run(params.TT), run(params.TM)
	if tt >= tm {
		t.Fatalf("TT (%d) not cheaper than TM (%d)", tt, tm)
	}
}

func TestMultiThreadSharingUnderTT(t *testing.T) {
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
	p, _ := mgr.Create("shared", 1<<20, pmo.ModeRead|pmo.ModeWrite)
	rt := NewRuntime(params.NewConfig(params.TT, params.DefaultEWMicros), mgr)
	m := sim.NewMachine(1, 200)
	rt.AttachMachine(m)
	o, _ := p.Alloc(64)

	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		i := i
		m.AddThread(func(th *sim.Thread) {
			ctx := rt.NewThread(th)
			for round := 0; round < 20 && errs[i] == nil; round++ {
				if err := ctx.Attach(p, paging.ReadWrite); err != nil {
					errs[i] = err
					return
				}
				if err := ctx.Store(o, uint64(i*100+round)); err != nil {
					errs[i] = err
					return
				}
				ctx.Compute(500)
				if err := ctx.Detach(p); err != nil {
					errs[i] = err
					return
				}
				ctx.Compute(1500)
			}
		})
	}
	end := m.Run()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
	}
	res := rt.Finish(end)
	// Concurrent attaches must have been lowered, not blocked/erred.
	if res.Counts.SilentOps == 0 {
		t.Fatal("no silent ops under concurrent sharing")
	}
	if res.Counts.AttachSyscalls >= res.Counts.CondOps/2 {
		t.Fatalf("too many real attaches: %d of %d cond ops",
			res.Counts.AttachSyscalls, res.Counts.CondOps)
	}
	if res.Exposure.TEWCount == 0 {
		t.Fatal("no TEWs recorded")
	}
}

func TestBasicSemanticsSerializesThreads(t *testing.T) {
	runScheme := func(s params.Scheme) uint64 {
		mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
		p, _ := mgr.Create("shared", 1<<20, pmo.ModeRead|pmo.ModeWrite)
		rt := NewRuntime(params.NewConfig(s, params.DefaultEWMicros), mgr)
		m := sim.NewMachine(1, 200)
		rt.AttachMachine(m)
		o, _ := p.Alloc(64)
		for i := 0; i < 4; i++ {
			m.AddThread(func(th *sim.Thread) {
				ctx := rt.NewThread(th)
				for round := 0; round < 10; round++ {
					if err := ctx.Attach(p, paging.ReadWrite); err != nil {
						panic(err)
					}
					if err := ctx.Store(o, 1); err != nil {
						panic(err)
					}
					ctx.Compute(5000)
					if err := ctx.Detach(p); err != nil {
						panic(err)
					}
				}
			})
		}
		return m.Run()
	}
	basic := runScheme(params.BasicSem)
	tt := runScheme(params.TT)
	if basic <= tt {
		t.Fatalf("basic semantics (%d) should be slower than TT (%d)", basic, tt)
	}
}

func TestAccessUnknownPool(t *testing.T) {
	_, ctx, _ := newEnv(t, params.TT)
	if _, err := ctx.Load(pmo.MakeOID(999, 64)); err == nil {
		t.Fatal("load from unknown pool accepted")
	}
}

func TestOutOfRangeOffsetSegfaults(t *testing.T) {
	_, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Load(pmo.MakeOID(p.ID, p.Size+8)); !IsFault(err, SegFault) {
		t.Fatalf("out-of-range load: %v", err)
	}
}

func TestFaultErrorText(t *testing.T) {
	f := &Fault{Kind: ThreadPermFault, OID: pmo.MakeOID(1, 8), Want: paging.PermWrite, Thread: 2}
	if f.Error() == "" {
		t.Fatal("empty error")
	}
	if !IsFault(f, ThreadPermFault) || IsFault(f, SegFault) {
		t.Fatal("IsFault misclassifies")
	}
	for k := SegFault; k <= ThreadPermFault; k++ {
		if k.String() == "" {
			t.Fatal("empty fault name")
		}
	}
}

func TestCountersSilentPercent(t *testing.T) {
	c := Counters{CondOps: 10, SilentOps: 9}
	if c.SilentPercent() != 90 {
		t.Fatalf("silent%% = %f", c.SilentPercent())
	}
	if (Counters{}).SilentPercent() != 0 {
		t.Fatal("zero ops should be 0%")
	}
}

func TestResultCondFreq(t *testing.T) {
	res := Result{Cycles: params.CyclesPerMicro * 1e6, Counts: Counters{CondOps: 500}}
	if got := res.CondFreqPerSec(); got != 500 {
		t.Fatalf("freq = %f", got)
	}
	if (Result{}).CondFreqPerSec() != 0 {
		t.Fatal("zero cycles should be 0")
	}
}

func TestLoadStoreBytes(t *testing.T) {
	_, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(128)
	msg := []byte("hello persistent world")
	if err := ctx.StoreBytes(o, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := ctx.LoadBytes(o, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("round trip: %q", got)
	}
}

func TestDRAMAccessChargesBase(t *testing.T) {
	_, ctx, _ := newEnv(t, params.TT)
	before := ctx.th.Costs[sim.Base]
	ctx.DRAMAccess(0x1000, 64)
	if ctx.th.Costs[sim.Base] <= before {
		t.Fatal("DRAM access free")
	}
}

func TestExposureWindowsBoundedUnderTT(t *testing.T) {
	// Long run with frequent op pairs: every closed EW must stay below
	// EW target + sweep slack.
	rt, ctx, p := newEnv(t, params.TT)
	o := pmo.OID(0)
	for i := 0; i < 400; i++ {
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			t.Fatal(err)
		}
		if o.IsNil() {
			o, _ = p.Alloc(64)
		}
		if err := ctx.Store(o, uint64(i)); err != nil {
			t.Fatal(err)
		}
		ctx.Compute(2000) // ~0.9us inside
		if err := ctx.Detach(p); err != nil {
			t.Fatal(err)
		}
		ctx.Compute(3000)
	}
	rt.sweep(ctx.Now()+2*params.SweepPeriod, ctx.th)
	res := rt.Finish(ctx.Now())
	limit := float64(rt.Cfg.EWTarget) + 3*float64(params.SweepPeriod)
	if res.Exposure.MaxEW > limit {
		t.Fatalf("max EW %.0f exceeds limit %.0f", res.Exposure.MaxEW, limit)
	}
	if res.Exposure.EWCount == 0 {
		t.Fatal("no EWs recorded")
	}
	// Nearly all conditional ops must be silent here.
	if res.Counts.SilentPercent() < 80 {
		t.Fatalf("silent%% = %.1f", res.Counts.SilentPercent())
	}
}

func TestTraceRecordsProtectionEvents(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	rt.EnableTrace(64)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(8)
	if err := ctx.Store(o, 1); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Load(o); !IsFault(err, ThreadPermFault) {
		t.Fatalf("expected fault, got %v", err)
	}
	events, total := rt.TraceEvents()
	if total == 0 || len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[TraceKind]bool{}
	for i, e := range events {
		kinds[e.Kind] = true
		if e.String() == "" {
			t.Fatal("empty event string")
		}
		if i > 0 && e.Time < events[i-1].Time {
			t.Fatal("events out of order")
		}
	}
	for _, want := range []TraceKind{TraceRealAttach, TraceGrant, TraceRevoke, TraceFault} {
		if !kinds[want] {
			t.Fatalf("missing %v in trace (have %v)", want, kinds)
		}
	}
}

func TestTraceRingBounded(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	rt.EnableTrace(8)
	for i := 0; i < 50; i++ {
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			t.Fatal(err)
		}
		if err := ctx.Detach(p); err != nil {
			t.Fatal(err)
		}
	}
	events, total := rt.TraceEvents()
	if len(events) != 8 {
		t.Fatalf("ring kept %d events", len(events))
	}
	if total < 100 {
		t.Fatalf("total = %d", total)
	}
	// The retained window is the most recent: its last event must be
	// the newest overall.
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatal("ring window out of order")
		}
	}
}

func TestTraceDisabledIsFree(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	events, total := rt.TraceEvents()
	if events != nil || total != 0 {
		t.Fatal("trace recorded without EnableTrace")
	}
}

func TestVAAccessPath(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	o, _ := p.Alloc(8)
	base, ok := rt.MappingBase(p.ID)
	if !ok {
		t.Fatal("no mapping base")
	}
	va := base + o.Offset()
	if err := ctx.StoreVA(va, 77); err != nil {
		t.Fatal(err)
	}
	v, err := ctx.LoadVA(va)
	if err != nil || v != 77 {
		t.Fatalf("LoadVA = %d, %v", v, err)
	}
	// The same cell reads back through the OID path.
	if v, err := ctx.Load(o); err != nil || v != 77 {
		t.Fatalf("Load = %d, %v", v, err)
	}
	// Unmapped addresses segfault.
	if _, err := ctx.LoadVA(0xdead0000); !IsFault(err, SegFault) {
		t.Fatalf("wild VA: %v", err)
	}
	// After detach the thread permission gates VA access too.
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	if err := ctx.StoreVA(va, 1); !IsFault(err, ThreadPermFault) {
		t.Fatalf("post-detach StoreVA: %v", err)
	}
	if _, ok := rt.MappingBase(999); ok {
		t.Fatal("MappingBase for unknown PMO")
	}
}

func TestRuntimeUserModeChecks(t *testing.T) {
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 1<<30))
	p, err := mgr.CreateAs("alice", "guarded", 1<<20, pmo.ModeRead|pmo.ModeWrite|pmo.ModeOtherRead)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(params.NewConfig(params.TT, 40), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	rt.SetUser("bob")
	if rt.User() != "bob" {
		t.Fatal("user not set")
	}
	if err := ctx.Attach(p, paging.ReadWrite); err == nil {
		t.Fatal("bob write-attached a world-read PMO")
	}
	if err := ctx.Attach(p, paging.PermRead); err != nil {
		t.Fatalf("bob read attach: %v", err)
	}
	if err := ctx.Detach(p); err != nil {
		t.Fatal(err)
	}
	rt.SetUser("alice")
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatalf("owner attach: %v", err)
	}
}

func TestRuntimeAccessors(t *testing.T) {
	rt, ctx, p := newEnv(t, params.TT)
	if rt.Manager() == nil || rt.AddressSpace() == nil || rt.Tracker() == nil {
		t.Fatal("nil accessor")
	}
	if ctx.Thread() == nil || ctx.Runtime() != rt {
		t.Fatal("thread accessors wrong")
	}
	if err := ctx.Attach(p, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	rt.Sweep(ctx) // exercised; nothing to expire yet
	if !rt.AddressSpace().Attached(p.ID) {
		t.Fatal("sweep detached a fresh window")
	}
}

func TestTraceKindStringsComplete(t *testing.T) {
	for k := TraceRealAttach; k <= TraceFault; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d empty", k)
		}
	}
	hw := TraceEvent{Time: 2200, Thread: -1, PMO: 3, Kind: TraceRandomize}
	if s := hw.String(); s == "" {
		t.Fatal("hardware event renders empty")
	}
}
