// Package sim provides the deterministic timing substrate of the TERP
// reproduction: simulated per-thread clocks, a cooperative scheduler that
// interleaves simulated threads in global time order, a seeded random
// number generator, and cost accounting broken down by overhead component
// (the attach/detach/rand/cond/other breakdown of Figures 9-11).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Account names one overhead component in the execution-time breakdown.
type Account int

// The overhead components of Figures 9, 10 and 11, plus Base, which is the
// time the unprotected workload itself consumes.
const (
	// Base is workload execution time that is not protection overhead.
	Base Account = iota
	// Attach is time spent in full attach() system calls.
	Attach
	// Detach is time spent in full detach() system calls.
	Detach
	// Rand is time spent in PMO space layout randomization (including
	// the TLB invalidations it triggers).
	Rand
	// Cond is time spent executing conditional attach/detach
	// instructions that were lowered to thread permission changes.
	Cond
	// Other is remaining protection overhead: permission matrix checks,
	// extra TLB costs, blocking on Basic-semantics contention.
	Other
	numAccounts
)

// String returns the label used in the paper's figures.
func (a Account) String() string {
	switch a {
	case Base:
		return "base"
	case Attach:
		return "attach"
	case Detach:
		return "detach"
	case Rand:
		return "rand"
	case Cond:
		return "cond"
	case Other:
		return "other"
	default:
		return fmt.Sprintf("account(%d)", int(a))
	}
}

// Accounts is a per-component cycle tally.
type Accounts [numAccounts]uint64

// Add charges n cycles to account a.
func (t *Accounts) Add(a Account, n uint64) { t[a] += n }

// Total returns the sum over all accounts.
func (t *Accounts) Total() uint64 {
	var s uint64
	for _, v := range t {
		s += v
	}
	return s
}

// Overhead returns the protection overhead relative to Base time:
// (total - base) / base. With no Base time recorded the ratio is
// undefined: it returns 0 for a fully empty tally, and NaN when other
// accounts carry cycles but Base does not — that shape means a
// miscredited run and must not be folded silently into rollups.
func (t *Accounts) Overhead() float64 {
	if t[Base] == 0 {
		if t.Total() == 0 {
			return 0
		}
		return math.NaN()
	}
	return float64(t.Total()-t[Base]) / float64(t[Base])
}

// Fraction returns account a's share of Base time (the per-component
// overhead bars of Figures 9-11 are stacked fractions of base time).
// Like Overhead, it returns NaN when Base is zero but account a is not,
// and 0 only when both are zero.
func (t *Accounts) Fraction(a Account) float64 {
	if t[Base] == 0 {
		if t[a] == 0 {
			return 0
		}
		return math.NaN()
	}
	return float64(t[a]) / float64(t[Base])
}

// Merge adds o into t.
func (t *Accounts) Merge(o *Accounts) {
	for i := range t {
		t[i] += o[i]
	}
}

// Thread is one simulated hardware thread. A Thread owns a local clock in
// cycles and a per-component cost account. Threads are advanced either
// directly (single-threaded runs) or by a Machine scheduler.
type Thread struct {
	// ID is the dense thread index within its Machine.
	ID int
	// Clock is the thread-local time in cycles.
	Clock uint64
	// Costs is the per-component cycle tally of this thread.
	Costs Accounts

	// ChargeHook, when set, observes every charge (account and cycle
	// count) before the clock advances. The observability layer uses it
	// to build per-account cycle histograms without sim importing it.
	ChargeHook func(a Account, n uint64)

	machine *Machine
	// yieldBudget counts cycles charged since the last scheduler yield;
	// the scheduler forces a yield every yieldQuantum cycles so that
	// thread interleavings track global time.
	yieldBudget uint64

	turn chan struct{}
	done bool
	body func(*Thread)
	err  error
}

// maxChargeStep bounds how far a machine-scheduled thread's clock may
// advance per scheduler interaction: one hardware-timer period (1 us at
// 2.2 GHz). Without this cap, a single long computation would leapfrog
// the global low-water mark by milliseconds and the tick-driven sweep
// could not close exposure windows on time.
const maxChargeStep = 2200

// Charge advances the thread clock by n cycles on account a. On
// machine-scheduled threads, long charges are split into timer-period
// steps so the scheduler (and the hardware sweep it drives) observes
// time passing at its real granularity.
func (t *Thread) Charge(a Account, n uint64) {
	if t.ChargeHook != nil {
		t.ChargeHook(a, n)
	}
	if t.machine == nil {
		t.Clock += n
		t.Costs.Add(a, n)
		return
	}
	for n > 0 {
		step := n
		if step > maxChargeStep {
			step = maxChargeStep
		}
		t.Clock += step
		t.Costs.Add(a, step)
		n -= step
		t.yieldBudget += step
		if t.yieldBudget >= t.machine.quantum {
			t.Yield()
		}
	}
}

// AdvanceTo moves the thread clock forward to at least cycle c, charging
// the waited time to account a. It is used for blocking (Basic semantics)
// and for global stalls (randomization suspends all threads).
func (t *Thread) AdvanceTo(c uint64, a Account) {
	if c > t.Clock {
		t.Charge(a, c-t.Clock)
	}
}

// Yield hands control back to the machine scheduler, which will resume
// this thread when it again holds the minimum clock. On threads that are
// not machine-scheduled it is a no-op.
func (t *Thread) Yield() {
	m := t.machine
	if m == nil {
		return
	}
	t.yieldBudget = 0
	m.park <- t
	<-t.turn
}

// Machine is a deterministic cooperative scheduler for simulated threads.
// It always resumes the runnable thread with the smallest local clock, so
// the interleaving of cross-thread events is a deterministic function of
// the per-thread cycle charges. Hardware "background" work (the circular
// buffer timer sweep) is driven by hooks invoked as global time advances.
type Machine struct {
	Threads []*Thread
	// Rand is the machine-wide deterministic random source.
	Rand *rand.Rand

	quantum uint64
	park    chan *Thread

	// tick is called with the new global low-water-mark time whenever
	// it advances; the TERP hardware uses it to run timer sweeps.
	tick func(now uint64)

	// SwitchHook, when set, observes every context switch: it is called
	// with the resumed thread's clock and ID each time the scheduler
	// hands the CPU to a different thread than last time.
	SwitchHook func(ts uint64, thread int)
	lastRun    int
}

// NewMachine creates a scheduler with the given random seed and yield
// quantum in cycles. A smaller quantum interleaves threads more finely at
// higher simulation cost; the default used by the runtime is 200 cycles.
func NewMachine(seed int64, quantum uint64) *Machine {
	if quantum == 0 {
		quantum = 200
	}
	return &Machine{
		Rand:    rand.New(rand.NewSource(seed)),
		quantum: quantum,
		park:    make(chan *Thread),
		lastRun: -1,
	}
}

// SetTick installs the global-time hook (at most one).
func (m *Machine) SetTick(f func(now uint64)) { m.tick = f }

// AddThread registers a simulated thread running body. Threads must all be
// added before Run is called.
func (m *Machine) AddThread(body func(*Thread)) *Thread {
	t := &Thread{
		ID:      len(m.Threads),
		machine: m,
		turn:    make(chan struct{}),
		body:    body,
	}
	m.Threads = append(m.Threads, t)
	return t
}

// Run executes all registered threads to completion under min-time
// scheduling and returns the final global time (the max of thread clocks).
// Any panic inside a thread body is re-raised on the caller.
func (m *Machine) Run() uint64 {
	live := len(m.Threads)
	if live == 0 {
		return 0
	}
	for _, t := range m.Threads {
		t := t
		go func() {
			defer func() {
				if r := recover(); r != nil {
					t.err = fmt.Errorf("sim thread %d: %v", t.ID, r)
				}
				t.done = true
				m.park <- t
			}()
			<-t.turn
			t.body(t)
		}()
	}
	// All threads start parked on their turn channel; wake the first.
	runnable := make([]*Thread, len(m.Threads))
	copy(runnable, m.Threads)
	var lastTick uint64
	for live > 0 {
		// Pick the runnable thread with the minimum clock; ties are
		// broken by thread ID for determinism.
		sort.Slice(runnable, func(i, j int) bool {
			if runnable[i].Clock != runnable[j].Clock {
				return runnable[i].Clock < runnable[j].Clock
			}
			return runnable[i].ID < runnable[j].ID
		})
		next := runnable[0]
		runnable = runnable[1:]
		if m.tick != nil && next.Clock > lastTick {
			lastTick = next.Clock
			m.tick(lastTick)
		}
		if m.SwitchHook != nil && next.ID != m.lastRun {
			m.SwitchHook(next.Clock, next.ID)
		}
		m.lastRun = next.ID
		next.turn <- struct{}{}
		parked := <-m.park
		if parked.done {
			live--
			if parked.err != nil {
				panic(parked.err)
			}
			continue
		}
		runnable = append(runnable, parked)
	}
	var end uint64
	for _, t := range m.Threads {
		if t.Clock > end {
			end = t.Clock
		}
	}
	return end
}

// Now returns the minimum clock across threads — the global simulated time
// up to which all events are final. With a single thread it is that
// thread's clock.
func (m *Machine) Now() uint64 {
	var now uint64
	first := true
	for _, t := range m.Threads {
		if !t.done && (first || t.Clock < now) {
			now = t.Clock
			first = false
		}
	}
	return now
}

// TotalCosts sums the cost accounts of every thread.
func (m *Machine) TotalCosts() Accounts {
	var a Accounts
	for _, t := range m.Threads {
		a.Merge(&t.Costs)
	}
	return a
}

// SingleThread returns a stand-alone thread that is not scheduler-managed,
// for single-threaded simulations where no interleaving is needed.
func SingleThread() *Thread { return &Thread{} }

// DirectCharge advances the thread clock without a scheduler yield. It is
// used by hardware-initiated work (sweep detaches, randomization stalls)
// applied to threads that are parked at the time.
func (t *Thread) DirectCharge(a Account, n uint64) {
	if t.ChargeHook != nil {
		t.ChargeHook(a, n)
	}
	t.Clock += n
	t.Costs.Add(a, n)
}

// ChargeAll charges n cycles on account a to every unfinished thread —
// the global suspension randomization requires (all threads stall while
// TLBs are shot down and the page table updated).
func (m *Machine) ChargeAll(a Account, n uint64) {
	for _, t := range m.Threads {
		if !t.done {
			t.DirectCharge(a, n)
		}
	}
}
