package sim

import (
	"math"
	"testing"
)

func TestAccountsTotalsAndOverhead(t *testing.T) {
	var a Accounts
	a.Add(Base, 1000)
	a.Add(Attach, 50)
	a.Add(Detach, 30)
	a.Add(Cond, 20)
	if a.Total() != 1100 {
		t.Fatalf("total = %d", a.Total())
	}
	if got := a.Overhead(); got != 0.1 {
		t.Fatalf("overhead = %f, want 0.1", got)
	}
	if got := a.Fraction(Attach); got != 0.05 {
		t.Fatalf("attach fraction = %f", got)
	}
}

func TestAccountsZeroBase(t *testing.T) {
	// A fully empty tally is a legitimate "nothing ran" state: ratios 0.
	var empty Accounts
	if empty.Overhead() != 0 || empty.Fraction(Attach) != 0 {
		t.Fatal("empty tally must report 0, not NaN")
	}
	// Zero Base with nonzero overhead accounts means a miscredited run;
	// the ratio is undefined and must surface as NaN, not a silent 0.
	var a Accounts
	a.Add(Attach, 10)
	if got := a.Overhead(); !math.IsNaN(got) {
		t.Fatalf("Overhead with zero base = %v, want NaN", got)
	}
	if got := a.Fraction(Attach); !math.IsNaN(got) {
		t.Fatalf("Fraction(Attach) with zero base = %v, want NaN", got)
	}
	// Accounts that are themselves zero still report 0.
	if got := a.Fraction(Detach); got != 0 {
		t.Fatalf("Fraction(Detach) = %v, want 0", got)
	}
}

func TestChargeHookObservesCharges(t *testing.T) {
	th := SingleThread()
	var seen []uint64
	th.ChargeHook = func(a Account, n uint64) {
		if a == Attach {
			seen = append(seen, n)
		}
	}
	th.Charge(Attach, 40)
	th.Charge(Base, 10)
	th.DirectCharge(Attach, 5)
	if len(seen) != 2 || seen[0] != 40 || seen[1] != 5 {
		t.Fatalf("hook saw %v, want [40 5]", seen)
	}
}

func TestSwitchHookFiresOnContextSwitch(t *testing.T) {
	m := NewMachine(1, 10)
	type sw struct {
		ts     uint64
		thread int
	}
	var switches []sw
	m.SwitchHook = func(ts uint64, thread int) {
		switches = append(switches, sw{ts, thread})
	}
	for i := 0; i < 2; i++ {
		m.AddThread(func(th *Thread) {
			for j := 0; j < 5; j++ {
				th.Charge(Base, 10)
			}
		})
	}
	m.Run()
	if len(switches) < 2 {
		t.Fatalf("expected several switches, got %v", switches)
	}
	if switches[0].thread != 0 || switches[0].ts != 0 {
		t.Fatalf("first switch = %+v, want thread 0 at cycle 0", switches[0])
	}
	for i := 1; i < len(switches); i++ {
		if switches[i].thread == switches[i-1].thread {
			t.Fatalf("consecutive switch events for same thread: %v", switches)
		}
		if switches[i].ts < switches[i-1].ts {
			t.Fatalf("switch timestamps not monotone: %v", switches)
		}
	}
}

func TestAccountsMerge(t *testing.T) {
	var a, b Accounts
	a.Add(Base, 10)
	b.Add(Base, 5)
	b.Add(Rand, 7)
	a.Merge(&b)
	if a[Base] != 15 || a[Rand] != 7 {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestAccountStrings(t *testing.T) {
	names := map[Account]string{Base: "base", Attach: "attach", Detach: "detach", Rand: "rand", Cond: "cond", Other: "other"}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestSingleThreadCharge(t *testing.T) {
	th := SingleThread()
	th.Charge(Base, 100)
	th.Charge(Attach, 50)
	if th.Clock != 150 {
		t.Fatalf("clock = %d", th.Clock)
	}
	th.AdvanceTo(200, Other)
	if th.Clock != 200 || th.Costs[Other] != 50 {
		t.Fatalf("advance: clock=%d other=%d", th.Clock, th.Costs[Other])
	}
	// AdvanceTo to the past is a no-op.
	th.AdvanceTo(100, Other)
	if th.Clock != 200 {
		t.Fatal("AdvanceTo moved clock backward")
	}
}

func TestMachineMinTimeOrdering(t *testing.T) {
	m := NewMachine(1, 10)
	var order []int
	// Thread 0 does two 100-cycle steps; thread 1 does one 50-cycle
	// step then one 200-cycle step. Min-time order of step starts:
	// t0@0, t1@0 (tie by id: t0 first), then t1@50, t0@100, t1@250...
	m.AddThread(func(th *Thread) {
		order = append(order, 0)
		th.Charge(Base, 100)
		order = append(order, 0)
		th.Charge(Base, 100)
	})
	m.AddThread(func(th *Thread) {
		order = append(order, 1)
		th.Charge(Base, 50)
		order = append(order, 1)
		th.Charge(Base, 200)
	})
	end := m.Run()
	if end != 250 {
		t.Fatalf("end = %d, want 250", end)
	}
	// Step starts in min-time order: t0@0, t1@0 (tie by ID), t1@50
	// (its clock 50 < t0's 100), then t0@100.
	want := []int{0, 1, 1, 0}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() []uint64 {
		m := NewMachine(42, 25)
		var ends []uint64
		for i := 0; i < 4; i++ {
			i := i
			m.AddThread(func(th *Thread) {
				for j := 0; j < 50; j++ {
					th.Charge(Base, uint64(10+i*3+j%7))
				}
				ends = append(ends, th.Clock)
			})
		}
		m.Run()
		return ends
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic: %v vs %v", a, b)
		}
	}
}

func TestMachineTickMonotone(t *testing.T) {
	m := NewMachine(1, 5)
	var ticks []uint64
	m.SetTick(func(now uint64) { ticks = append(ticks, now) })
	for i := 0; i < 3; i++ {
		m.AddThread(func(th *Thread) {
			for j := 0; j < 20; j++ {
				th.Charge(Base, 7)
			}
		})
	}
	m.Run()
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Fatalf("tick not strictly increasing at %d: %v", i, ticks)
		}
	}
	if len(ticks) == 0 {
		t.Fatal("tick hook never fired")
	}
}

func TestMachineTotalCosts(t *testing.T) {
	m := NewMachine(1, 100)
	m.AddThread(func(th *Thread) { th.Charge(Base, 10); th.Charge(Attach, 3) })
	m.AddThread(func(th *Thread) { th.Charge(Base, 20) })
	m.Run()
	c := m.TotalCosts()
	if c[Base] != 30 || c[Attach] != 3 {
		t.Fatalf("total costs = %v", c)
	}
}

func TestMachinePanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	m := NewMachine(1, 100)
	m.AddThread(func(th *Thread) { panic("boom") })
	m.Run()
}

func TestMachineEmptyRun(t *testing.T) {
	m := NewMachine(1, 100)
	if end := m.Run(); end != 0 {
		t.Fatalf("empty machine end = %d", end)
	}
}

func TestYieldQuantumForcesInterleaving(t *testing.T) {
	// With a tiny quantum, a thread that charges a lot must observe the
	// other thread's progress interleaved. We detect interleaving by
	// recording the global order of quantum-sized chunks.
	m := NewMachine(1, 10)
	var seq []int
	for i := 0; i < 2; i++ {
		i := i
		m.AddThread(func(th *Thread) {
			for j := 0; j < 10; j++ {
				th.Charge(Base, 10)
				seq = append(seq, i)
			}
		})
	}
	m.Run()
	// Pure "all of thread 0 then all of thread 1" would be a failure of
	// min-time scheduling given equal charges.
	switches := 0
	for i := 1; i < len(seq); i++ {
		if seq[i] != seq[i-1] {
			switches++
		}
	}
	if switches < 5 {
		t.Fatalf("threads did not interleave: %v", seq)
	}
}
