// Package terpc implements the TERP compiler support of Section V-A: the
// region-based static analysis that automatically inserts attach and
// detach constructs so that every PMO access is covered, pairs match and
// never overlap within a thread, and the longest execution time (LET) of
// each covered region stays under the exposure-window target.
//
// The pass follows Algorithm 1: it identifies basic blocks with PMO
// accesses, grows each into the largest enclosing code region whose LET is
// below the EW threshold (the PMO window flow graph, PMO-WFG), and then
// performs the localized path-sensitive insertion: with a thread exposure
// window configured it covers the PMO accesses inside each graph with
// TEW-sized subregions and brackets those with conditional attach/detach;
// with TEW disabled (the MERR baseline) it brackets each graph once.
//
// The package also provides Verify, which checks the safety invariants of
// an instrumented function: along every path each PMO access happens
// inside an attach-detach pair, pairs never overlap within the thread,
// and every path ends fully detached.
package terpc

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Options configures the insertion pass.
type Options struct {
	// EWThreshold is the region-growth bound in cycles (from the target
	// maximum exposure window).
	EWThreshold uint64
	// TEWThreshold is the conditional insertion granularity in cycles;
	// zero selects MERR-style single-level insertion.
	TEWThreshold uint64
	// MemCost is the conservative estimate for one memory access.
	MemCost uint64
	// InstrCost is the conservative estimate for one plain instruction.
	InstrCost uint64
}

// Defaults fills zero cost-model fields.
func (o Options) withDefaults() Options {
	if o.MemCost == 0 {
		o.MemCost = 40
	}
	if o.InstrCost == 0 {
		o.InstrCost = 1
	}
	if o.EWThreshold == 0 {
		o.EWThreshold = 88000 // 40us at 2.2GHz
	}
	return o
}

// FuncReport describes the insertion outcome for one function.
type FuncReport struct {
	// Func is the function name.
	Func string
	// Graphs is the number of PMO-WFG graphs formed.
	Graphs int
	// Attaches and Detaches count inserted constructs.
	Attaches, Detaches int
	// MaxRegionLET is the largest LET among chosen graphs.
	MaxRegionLET uint64
}

// Report summarizes a whole-program insertion.
type Report struct {
	// Funcs holds per-function reports for functions that got inserts.
	Funcs []FuncReport
	// FuncLET maps every function to its estimated LET.
	FuncLET map[string]uint64
}

// TotalInserted returns the total number of inserted constructs.
func (r *Report) TotalInserted() int {
	n := 0
	for _, f := range r.Funcs {
		n += f.Attaches + f.Detaches
	}
	return n
}

// recursiveLET is the LET assigned to call-graph cycles.
const recursiveLET = 1 << 30

// inserter carries whole-program state.
type inserter struct {
	prog *ir.Program
	opt  Options

	// accesses[fn][pmo] = true if fn (transitively) touches pmo.
	accesses map[string]map[string]bool
	// funcLET memoizes function LETs.
	funcLET map[string]uint64
	inLET   map[string]bool
}

// Insert runs the pass over the program in place and returns the report.
func Insert(prog *ir.Program, opt Options) (*Report, error) {
	ins := &inserter{
		prog:     prog,
		opt:      opt.withDefaults(),
		accesses: make(map[string]map[string]bool),
		funcLET:  make(map[string]uint64),
		inLET:    make(map[string]bool),
	}
	ins.computeAccessSets()
	rep := &Report{FuncLET: make(map[string]uint64)}
	names := make([]string, 0, len(prog.Funcs))
	for name := range prog.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.FuncLET[name] = ins.letOf(name)
	}
	for _, name := range names {
		fr, err := ins.instrument(prog.Funcs[name])
		if err != nil {
			return nil, err
		}
		if fr.Attaches+fr.Detaches > 0 {
			rep.Funcs = append(rep.Funcs, fr)
		}
	}
	return rep, nil
}

// computeAccessSets runs the transitive "which PMOs does each function
// touch" fixed point (the pointer-analysis stand-in of Algorithm 1: our
// IR names PMOs directly, so aliasing is resolved by construction).
func (ins *inserter) computeAccessSets() {
	for name, f := range ins.prog.Funcs {
		set := make(map[string]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.LoadPM || in.Op == ir.StorePM {
					set[in.Sym] = true
				}
			}
		}
		ins.accesses[name] = set
	}
	for changed := true; changed; {
		changed = false
		for name, f := range ins.prog.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op != ir.Call {
						continue
					}
					for pmo := range ins.accesses[in.Sym] {
						if !ins.accesses[name][pmo] {
							ins.accesses[name][pmo] = true
							changed = true
						}
					}
				}
			}
		}
	}
}

// blockCost is the conservative cost model of one block.
func (ins *inserter) blockCost(f *ir.Func) ir.BlockCost {
	return func(id int) uint64 {
		var c uint64
		for _, in := range f.Blocks[id].Instrs {
			switch in.Op {
			case ir.Compute:
				c += uint64(in.Imm)
			case ir.LoadPM, ir.StorePM, ir.LoadDRAM, ir.StoreDRAM:
				c += ins.opt.MemCost
			case ir.Call:
				c += ins.letOf(in.Sym)
			default:
				c += ins.opt.InstrCost
			}
		}
		c += ins.opt.InstrCost // terminator
		return c
	}
}

// letOf returns the function's LET, detecting call-graph cycles.
func (ins *inserter) letOf(name string) uint64 {
	if v, ok := ins.funcLET[name]; ok {
		return v
	}
	f, ok := ins.prog.Funcs[name]
	if !ok {
		return 0 // unknown callee: intrinsic, costed as plain instr
	}
	if ins.inLET[name] {
		return recursiveLET
	}
	ins.inLET[name] = true
	an := ir.Analyze(f)
	rs := ir.BuildRegions(f, an, ins.blockCost(f))
	ins.inLET[name] = false
	ins.funcLET[name] = rs.Root.LET
	return rs.Root.LET
}

// site is one insertion site: a covered subgraph bracketed by an attach
// at the header and a detach at the exit.
type site struct {
	region *ir.Region // nil for a degenerate single-block site
	block  int        // degenerate site block
	perm   int64      // 1 read, 3 read-write
}

// instrument runs Algorithm 1 on one function.
func (ins *inserter) instrument(f *ir.Func) (FuncReport, error) {
	fr := FuncReport{Func: f.Name}
	an := ir.Analyze(f)
	rs := ir.BuildRegions(f, an, ins.blockCost(f))

	// For every PMO accessed directly in this function, build the
	// PMO-WFG and insert.
	pmos := map[string]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.LoadPM || in.Op == ir.StorePM {
				pmos[in.Sym] = true
			}
		}
	}
	names := make([]string, 0, len(pmos))
	for n := range pmos {
		names = append(names, n)
	}
	sort.Strings(names)

	ed := newEditor(f, func(in *ir.Instr, pmo string) bool {
		return ins.accesses[in.Sym][pmo]
	})
	for _, pmo := range names {
		access, callTaint := ins.blockSets(f, pmo)
		graphs := cover(rs, access, callTaint, ins.opt.EWThreshold)
		fr.Graphs += len(graphs)
		for _, g := range graphs {
			if g.region != nil && g.region.LET > fr.MaxRegionLET {
				fr.MaxRegionLET = g.region.LET
			}
			if ins.opt.TEWThreshold == 0 {
				g.perm = permOf(f, g, access, pmo)
				ed.bracket(g, pmo)
				continue
			}
			// Localized path-sensitive insertion: cover the PMO
			// accesses inside the graph with TEW-sized
			// subregions.
			subs := coverWithin(rs, g, access, callTaint, ins.opt.TEWThreshold)
			for _, s := range subs {
				s.perm = permOf(f, s, access, pmo)
				ed.bracket(s, pmo)
			}
		}
	}
	fr.Attaches, fr.Detaches = ed.apply()
	if fr.Attaches != 0 || fr.Detaches != 0 {
		if err := Verify(f, ins.accesses); err != nil {
			return fr, fmt.Errorf("terpc: %s: %w", f.Name, err)
		}
	}
	return fr, nil
}

// blockSets returns the blocks directly accessing the PMO and the blocks
// tainted by calls to functions that access it (regions covering those
// would create intra-thread overlap with the callee's own windows).
func (ins *inserter) blockSets(f *ir.Func, pmo string) (access, callTaint map[int]bool) {
	access = map[int]bool{}
	callTaint = map[int]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.LoadPM, ir.StorePM:
				if in.Sym == pmo {
					access[b.ID] = true
				}
			case ir.Call:
				if ins.accesses[in.Sym][pmo] {
					callTaint[b.ID] = true
				}
			}
		}
	}
	return access, callTaint
}

// cover implements the PMO-WFG construction loop of Algorithm 1: for each
// unvisited access block, grow through the region chain while the
// next-level region's LET stays under the threshold and the region stays
// free of call-tainted blocks, then mark all covered access blocks
// visited.
func cover(rs *ir.Regions, access, callTaint map[int]bool, threshold uint64) []*site {
	return coverChains(rs, access, callTaint, threshold, nil)
}

// coverWithin restricts the cover to subregions of graph g.
func coverWithin(rs *ir.Regions, g *site, access, callTaint map[int]bool, threshold uint64) []*site {
	inner := map[int]bool{}
	if g.region != nil {
		for b := range access {
			if g.region.Blocks[b] {
				inner[b] = true
			}
		}
	} else {
		if access[g.block] {
			inner[g.block] = true
		}
	}
	var limit map[int]bool
	if g.region != nil {
		limit = g.region.Blocks
	} else {
		limit = map[int]bool{g.block: true}
	}
	return coverChains(rs, inner, callTaint, threshold, limit)
}

func coverChains(rs *ir.Regions, access, callTaint map[int]bool, threshold uint64, limit map[int]bool) []*site {
	unvisited := map[int]bool{}
	var order []int
	for b := range access {
		unvisited[b] = true
		order = append(order, b)
	}
	sort.Ints(order)
	claimed := map[int]bool{} // blocks already inside a chosen graph
	var out []*site
	for _, b := range order {
		if !unvisited[b] {
			continue
		}
		var chosen *ir.Region
		for _, r := range rs.ChainOf(b) {
			if r.LET >= threshold {
				break
			}
			if limit != nil && !containedIn(r.Blocks, limit) {
				break
			}
			if touches(r.Blocks, callTaint) {
				break
			}
			if overlapsPartially(r.Blocks, claimed) {
				// Growing further would interleave with an
				// already chosen graph's window.
				break
			}
			if r.Exit == -1 {
				chosen = r
				break
			}
			chosen = r
		}
		if chosen == nil {
			// Even the smallest region exceeds the threshold (or
			// is tainted): degenerate single-block site. The
			// hardware timer bounds any oversized window.
			out = append(out, &site{block: b})
			delete(unvisited, b)
			claimed[b] = true
			continue
		}
		s := &site{region: chosen}
		for a := range unvisited {
			if chosen.Blocks[a] {
				delete(unvisited, a)
			}
		}
		for blk := range chosen.Blocks {
			claimed[blk] = true
		}
		out = append(out, s)
	}
	return out
}

// overlapsPartially reports whether the candidate region intersects the
// blocks of a previously chosen graph; such a region is rejected because
// its window would interleave with the earlier graph's window.
func overlapsPartially(set, claimed map[int]bool) bool {
	for b := range claimed {
		if set[b] {
			return true
		}
	}
	return false
}

func containedIn(inner, outer map[int]bool) bool {
	for b := range inner {
		if !outer[b] {
			return false
		}
	}
	return true
}

func touches(blocks, taint map[int]bool) bool {
	for b := range taint {
		if blocks[b] {
			return true
		}
	}
	return false
}

// permOf computes the permission to request: read-write if any covered
// access stores to the PMO, else read-only (least privilege).
func permOf(f *ir.Func, s *site, access map[int]bool, pmo string) int64 {
	check := func(id int) bool {
		for _, in := range f.Blocks[id].Instrs {
			if in.Op == ir.StorePM && in.Sym == pmo {
				return true
			}
		}
		return false
	}
	if s.region == nil {
		if check(s.block) {
			return 3
		}
		return 1
	}
	for b := range s.region.Blocks {
		if access[b] && check(b) {
			return 3
		}
	}
	return 1
}
