package terpc

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

// straightLine builds a function with one block of PMO accesses.
func straightLine() *ir.Program {
	p := ir.NewProgram()
	p.PMOs = append(p.PMOs, ir.PMODecl{Name: "data", Elems: 1024})
	f := ir.NewFunc("main")
	b := f.NewBlock()
	addr := f.NewReg()
	v := f.NewReg()
	b.Emit(ir.Instr{Op: ir.Const, Dst: addr, Imm: 0})
	b.Emit(ir.Instr{Op: ir.LoadPM, Dst: v, A: addr, Sym: "data"})
	b.Emit(ir.Instr{Op: ir.StorePM, A: addr, B: v, Sym: "data"})
	b.Term, b.Cond = ir.Ret, -1
	p.Funcs["main"] = f
	return p
}

// loopProgram builds: entry -> loop{ pmo access + compute } -> exit.
func loopProgram(computePerIter int64, trips int) *ir.Program {
	p := ir.NewProgram()
	p.PMOs = append(p.PMOs, ir.PMODecl{Name: "grid", Elems: 4096})
	f := ir.NewFunc("main")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	i := f.NewReg()
	c := f.NewReg()
	v := f.NewReg()
	b0.Emit(ir.Instr{Op: ir.Const, Dst: i, Imm: 0})
	b0.Term, b0.Succs = ir.Jmp, []int{b1.ID}
	b1.Emit(ir.Instr{Op: ir.Const, Dst: c, Imm: 1})
	b1.Term, b1.Cond, b1.Succs = ir.Br, c, []int{b2.ID, b3.ID}
	b1.TripHint = trips
	b2.Emit(ir.Instr{Op: ir.LoadPM, Dst: v, A: i, Sym: "grid"})
	b2.Emit(ir.Instr{Op: ir.Compute, Imm: computePerIter})
	b2.Emit(ir.Instr{Op: ir.StorePM, A: i, B: v, Sym: "grid"})
	b2.Term, b2.Succs = ir.Jmp, []int{b1.ID}
	b3.Term, b3.Cond = ir.Ret, -1
	p.Funcs["main"] = f
	return p
}

func countOps(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

func TestStraightLineMERRInsertion(t *testing.T) {
	p := straightLine()
	rep, err := Insert(p, Options{EWThreshold: 88000})
	if err != nil {
		t.Fatal(err)
	}
	f := p.Funcs["main"]
	if countOps(f, ir.Attach) != 1 || countOps(f, ir.Detach) != 1 {
		t.Fatalf("inserted %d/%d, want 1/1\n%s",
			countOps(f, ir.Attach), countOps(f, ir.Detach), f)
	}
	if rep.TotalInserted() != 2 {
		t.Fatalf("report total = %d", rep.TotalInserted())
	}
	if err := Verify(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermissionLeastPrivilege(t *testing.T) {
	// Load-only program gets a read-only attach.
	p := ir.NewProgram()
	p.PMOs = append(p.PMOs, ir.PMODecl{Name: "ro", Elems: 16})
	f := ir.NewFunc("main")
	b := f.NewBlock()
	r := f.NewReg()
	b.Emit(ir.Instr{Op: ir.Const, Dst: r, Imm: 0})
	b.Emit(ir.Instr{Op: ir.LoadPM, Dst: r, A: r, Sym: "ro"})
	b.Term, b.Cond = ir.Ret, -1
	p.Funcs["main"] = f
	if _, err := Insert(p, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == ir.Attach && in.Imm != 1 {
			t.Fatalf("attach perm = %d, want read-only 1", in.Imm)
		}
	}
	// The store version gets read-write.
	p2 := straightLine()
	if _, err := Insert(p2, Options{}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range p2.Funcs["main"].Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.Attach {
				found = true
				if in.Imm != 3 {
					t.Fatalf("attach perm = %d, want rw 3", in.Imm)
				}
			}
		}
	}
	if !found {
		t.Fatal("no attach inserted")
	}
}

func TestLoopBodyInsertionWhenLoopTooLong(t *testing.T) {
	// Each iteration is ~2000 cycles; 1000 trips make the whole loop
	// ~2M cycles, far over an 88k EW threshold. The insertion must fall
	// inside the loop (per-iteration window), not around it.
	p := loopProgram(2000, 0)
	if _, err := Insert(p, Options{EWThreshold: 88000}); err != nil {
		t.Fatal(err)
	}
	f := p.Funcs["main"]
	// Attach must be inside the loop body (block 2) or its subchain,
	// not in the entry block.
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == ir.Attach {
			t.Fatalf("attach hoisted out of overlong loop\n%s", f)
		}
	}
	if err := Verify(f, nil); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	if countOps(f, ir.Attach) == 0 {
		t.Fatalf("no attach inserted\n%s", f)
	}
}

func TestShortLoopHoistedToOneWindow(t *testing.T) {
	// 10 trips x tiny body is far under the threshold: the whole loop
	// should form one window (attach before, detach after).
	p := loopProgram(10, 10)
	if _, err := Insert(p, Options{EWThreshold: 88000}); err != nil {
		t.Fatal(err)
	}
	f := p.Funcs["main"]
	if got := countOps(f, ir.Attach); got != 1 {
		t.Fatalf("attaches = %d, want 1 (hoisted)\n%s", got, f)
	}
	// The loop body itself must not attach per iteration.
	for _, in := range f.Blocks[2].Instrs {
		if in.Op == ir.Attach {
			t.Fatalf("attach inside short loop body\n%s", f)
		}
	}
	if err := Verify(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiamondPathSensitiveCoverage(t *testing.T) {
	// if/else where only one arm touches the PMO: both paths must stay
	// balanced and the access covered.
	p := ir.NewProgram()
	p.PMOs = append(p.PMOs, ir.PMODecl{Name: "d", Elems: 64})
	f := ir.NewFunc("main")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	c := f.NewReg()
	v := f.NewReg()
	b0.Emit(ir.Instr{Op: ir.Const, Dst: c, Imm: 1})
	b0.Term, b0.Cond, b0.Succs = ir.Br, c, []int{b1.ID, b2.ID}
	b1.Emit(ir.Instr{Op: ir.LoadPM, Dst: v, A: c, Sym: "d"})
	b1.Term, b1.Succs = ir.Jmp, []int{b3.ID}
	b2.Emit(ir.Instr{Op: ir.Compute, Imm: 5})
	b2.Term, b2.Succs = ir.Jmp, []int{b3.ID}
	b3.Term, b3.Cond = ir.Ret, -1
	p.Funcs["main"] = f
	if _, err := Insert(p, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := Verify(f, nil); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	if countOps(f, ir.Attach) == 0 {
		t.Fatal("access not covered")
	}
}

func TestTEWSubdivision(t *testing.T) {
	// A long straight region of several PMO-access blocks: with a TEW
	// threshold the pass must produce multiple small windows rather
	// than one big one.
	p := ir.NewProgram()
	p.PMOs = append(p.PMOs, ir.PMODecl{Name: "m", Elems: 1024})
	f := ir.NewFunc("main")
	n := 6
	blocks := make([]*ir.Block, n+1)
	for i := 0; i <= n; i++ {
		blocks[i] = f.NewBlock()
	}
	r := f.NewReg()
	for i := 0; i < n; i++ {
		blocks[i].Emit(ir.Instr{Op: ir.LoadPM, Dst: r, A: r, Sym: "m"})
		blocks[i].Emit(ir.Instr{Op: ir.Compute, Imm: 1500})
		blocks[i].Term, blocks[i].Succs = ir.Jmp, []int{blocks[i+1].ID}
	}
	blocks[n].Term, blocks[n].Cond = ir.Ret, -1
	p.Funcs["main"] = f

	// TEW threshold of ~2 blocks worth: expect >= 2 windows.
	if _, err := Insert(p, Options{EWThreshold: 1 << 30, TEWThreshold: 3500}); err != nil {
		t.Fatal(err)
	}
	if got := countOps(f, ir.Attach); got < 2 {
		t.Fatalf("TEW subdivision produced %d windows\n%s", got, f)
	}
	if err := Verify(f, nil); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	if countOps(f, ir.Attach) != countOps(f, ir.Detach) {
		t.Fatal("unbalanced insertion")
	}
}

func TestCalleeHandlesItsOwnPMOs(t *testing.T) {
	// main calls op() in a loop; op() accesses the PMO. The insertion
	// must instrument op(), and main must NOT wrap the calls (that
	// would overlap with the callee's windows within the thread).
	p := ir.NewProgram()
	p.PMOs = append(p.PMOs, ir.PMODecl{Name: "kv", Elems: 256})
	op := ir.NewFunc("op")
	ob := op.NewBlock()
	r := op.NewReg()
	ob.Emit(ir.Instr{Op: ir.Const, Dst: r, Imm: 8})
	ob.Emit(ir.Instr{Op: ir.StorePM, A: r, B: r, Sym: "kv"})
	ob.Term, ob.Cond = ir.Ret, -1
	p.Funcs["op"] = op

	main := ir.NewFunc("main")
	b0, b1, b2, b3 := main.NewBlock(), main.NewBlock(), main.NewBlock(), main.NewBlock()
	c := main.NewReg()
	b0.Term, b0.Succs = ir.Jmp, []int{b1.ID}
	b1.Emit(ir.Instr{Op: ir.Const, Dst: c, Imm: 1})
	b1.Term, b1.Cond, b1.Succs = ir.Br, c, []int{b2.ID, b3.ID}
	b2.Emit(ir.Instr{Op: ir.Call, Dst: c, Sym: "op"})
	b2.Term, b2.Succs = ir.Jmp, []int{b1.ID}
	b3.Term, b3.Cond = ir.Ret, -1
	p.Funcs["main"] = main

	rep, err := Insert(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if countOps(op, ir.Attach) != 1 {
		t.Fatalf("op not instrumented\n%s", op)
	}
	if countOps(main, ir.Attach) != 0 {
		t.Fatalf("main wrapped callee accesses\n%s", main)
	}
	if rep.FuncLET["op"] == 0 {
		t.Fatal("op LET missing")
	}
	if rep.FuncLET["main"] <= rep.FuncLET["op"] {
		t.Fatal("caller LET must include callee LET and loop trips")
	}
}

func TestMultiplePMOsIndependentWindows(t *testing.T) {
	p := ir.NewProgram()
	p.PMOs = append(p.PMOs, ir.PMODecl{Name: "a", Elems: 64}, ir.PMODecl{Name: "b", Elems: 64})
	f := ir.NewFunc("main")
	blk := f.NewBlock()
	r := f.NewReg()
	blk.Emit(ir.Instr{Op: ir.Const, Dst: r, Imm: 0})
	blk.Emit(ir.Instr{Op: ir.LoadPM, Dst: r, A: r, Sym: "a"})
	blk.Emit(ir.Instr{Op: ir.StorePM, A: r, B: r, Sym: "b"})
	blk.Term, blk.Cond = ir.Ret, -1
	p.Funcs["main"] = f
	if _, err := Insert(p, Options{}); err != nil {
		t.Fatal(err)
	}
	if countOps(f, ir.Attach) != 2 || countOps(f, ir.Detach) != 2 {
		t.Fatalf("per-PMO windows missing\n%s", f)
	}
	if err := Verify(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesUncovered(t *testing.T) {
	p := straightLine()
	f := p.Funcs["main"]
	if err := Verify(f, nil); err == nil || !strings.Contains(err.Error(), "uncovered") {
		t.Fatalf("uninstrumented function passed verify: %v", err)
	}
}

func TestVerifyCatchesOverlap(t *testing.T) {
	f := ir.NewFunc("bad")
	b := f.NewBlock()
	b.Emit(ir.Instr{Op: ir.Attach, Sym: "x", Imm: 3})
	b.Emit(ir.Instr{Op: ir.Attach, Sym: "x", Imm: 3})
	b.Term, b.Cond = ir.Ret, -1
	if err := Verify(f, nil); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlapping attach passed: %v", err)
	}
}

func TestVerifyCatchesLeakAtReturn(t *testing.T) {
	f := ir.NewFunc("bad")
	b := f.NewBlock()
	b.Emit(ir.Instr{Op: ir.Attach, Sym: "x", Imm: 3})
	b.Term, b.Cond = ir.Ret, -1
	if err := Verify(f, nil); err == nil || !strings.Contains(err.Error(), "still attached") {
		t.Fatalf("leaked attach passed: %v", err)
	}
}

func TestVerifyCatchesUnbalancedDetach(t *testing.T) {
	f := ir.NewFunc("bad")
	b := f.NewBlock()
	b.Emit(ir.Instr{Op: ir.Detach, Sym: "x"})
	b.Term, b.Cond = ir.Ret, -1
	if err := Verify(f, nil); err == nil {
		t.Fatal("stray detach passed")
	}
}

func TestVerifyCatchesCallNesting(t *testing.T) {
	f := ir.NewFunc("bad")
	b := f.NewBlock()
	b.Emit(ir.Instr{Op: ir.Attach, Sym: "x", Imm: 3})
	b.Emit(ir.Instr{Op: ir.Call, Sym: "op"})
	b.Emit(ir.Instr{Op: ir.Detach, Sym: "x"})
	b.Term, b.Cond = ir.Ret, -1
	callAccess := map[string]map[string]bool{"op": {"x": true}}
	if err := Verify(f, callAccess); err == nil || !strings.Contains(err.Error(), "nest") {
		t.Fatalf("call nesting passed: %v", err)
	}
}

func TestDeterministicInsertion(t *testing.T) {
	render := func() string {
		p := loopProgram(2000, 0)
		if _, err := Insert(p, Options{}); err != nil {
			t.Fatal(err)
		}
		return p.Funcs["main"].String()
	}
	if render() != render() {
		t.Fatal("insertion not deterministic")
	}
}
