package terpc

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// editor accumulates insertions against original instruction positions and
// applies them in one rebuild, so positions never shift mid-pass.
//
// Region-level attaches and detaches are placed on CFG *edges* (with edge
// splitting), not at the top of blocks: the region's exit block may have
// predecessors that never entered the region (it is often a join or a
// loop header), and a region whose header is a loop header has in-region
// back edges that must not re-execute the attach. Placing the constructs
// on the entry edges (pred outside region -> header) and exit edges
// (block inside region -> exit) is correct on every path.
type editor struct {
	f *ir.Func
	// tainted reports whether an instruction is a call into a function
	// that itself touches the PMO (degenerate sites must not wrap it).
	tainted func(in *ir.Instr, pmo string) bool
	// preds[b] lists predecessor block IDs (computed once).
	preds [][]int
	// edgeDetach and edgeAttach collect constructs per CFG edge; on a
	// shared edge the detaches of a finished region always precede the
	// attaches of a following one.
	edgeDetach map[[2]int][]ir.Instr
	edgeAttach map[[2]int][]ir.Instr
	// entryAttach prepends to the function entry block (root regions).
	entryAttach []ir.Instr
	// before and after insert around one original instruction index.
	before map[int]map[int][]ir.Instr
	after  map[int]map[int][]ir.Instr
	// atEnd appends ahead of the terminator (detach before Ret).
	atEnd map[int][]ir.Instr
}

func newEditor(f *ir.Func, tainted func(in *ir.Instr, pmo string) bool) *editor {
	if tainted == nil {
		tainted = func(*ir.Instr, string) bool { return false }
	}
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return &editor{
		f:          f,
		tainted:    tainted,
		preds:      preds,
		edgeDetach: map[[2]int][]ir.Instr{},
		edgeAttach: map[[2]int][]ir.Instr{},
		before:     map[int]map[int][]ir.Instr{},
		after:      map[int]map[int][]ir.Instr{},
		atEnd:      map[int][]ir.Instr{},
	}
}

// bracket inserts an attach/detach pair around the site for the PMO.
func (ed *editor) bracket(s *site, pmo string) {
	at := ir.Instr{Op: ir.Attach, Sym: pmo, Imm: s.perm}
	dt := ir.Instr{Op: ir.Detach, Sym: pmo}
	switch {
	case s.region == nil:
		// Degenerate single-block site: wrap each maximal run of the
		// block's instructions that accesses the PMO, breaking the run
		// at calls into functions that attach the PMO themselves
		// (wrapping those would nest windows within the thread).
		if ed.before[s.block] == nil {
			ed.before[s.block] = map[int][]ir.Instr{}
		}
		if ed.after[s.block] == nil {
			ed.after[s.block] = map[int][]ir.Instr{}
		}
		first, last := -1, -1
		flush := func() {
			if first < 0 {
				return
			}
			ed.before[s.block][first] = append(ed.before[s.block][first], at)
			ed.after[s.block][last] = append(ed.after[s.block][last], dt)
			first, last = -1, -1
		}
		for i := range ed.f.Blocks[s.block].Instrs {
			in := &ed.f.Blocks[s.block].Instrs[i]
			switch {
			case (in.Op == ir.LoadPM || in.Op == ir.StorePM) && in.Sym == pmo:
				if first < 0 {
					first = i
				}
				last = i
			case in.Op == ir.Call && ed.tainted(in, pmo):
				flush()
			}
		}
		flush()
	case s.region.Exit == -1:
		// Whole-function region: attach at entry (the entry block has
		// no predecessors by construction), detach at returns.
		ed.entryAttach = append(ed.entryAttach, at)
		for _, b := range ed.f.Blocks {
			if b.Term == ir.Ret && s.region.Blocks[b.ID] {
				ed.atEnd[b.ID] = append(ed.atEnd[b.ID], dt)
			}
		}
	default:
		// Attach on every entry edge: predecessor outside the region
		// (or function entry) -> header. In-region back edges to the
		// header (the region is a loop) must not re-attach.
		h := s.region.Header
		if h == ed.f.Entry {
			ed.entryAttach = append(ed.entryAttach, at)
		}
		for _, p := range ed.preds[h] {
			if !s.region.Blocks[p] {
				e := [2]int{p, h}
				ed.edgeAttach[e] = append(ed.edgeAttach[e], at)
			}
		}
		// Detach on every exit edge: block inside the region -> exit.
		x := s.region.Exit
		for _, p := range ed.preds[x] {
			if s.region.Blocks[p] {
				e := [2]int{p, x}
				ed.edgeDetach[e] = append(ed.edgeDetach[e], dt)
			}
		}
	}
}

// apply rebuilds every touched block, splits annotated edges, and returns
// (attaches, detaches).
func (ed *editor) apply() (attaches, detaches int) {
	count := func(list []ir.Instr) {
		for _, in := range list {
			if in.Op == ir.Attach {
				attaches++
			} else {
				detaches++
			}
		}
	}

	// In-block insertions first (indices refer to original positions).
	for _, b := range ed.f.Blocks {
		bi, ai := ed.before[b.ID], ed.after[b.ID]
		var pre []ir.Instr
		if b.ID == ed.f.Entry {
			pre = ed.entryAttach
		}
		end := ed.atEnd[b.ID]
		if len(bi)+len(ai)+len(pre)+len(end) == 0 {
			continue
		}
		out := make([]ir.Instr, 0, len(b.Instrs)+4)
		out = append(out, pre...)
		count(pre)
		for i, in := range b.Instrs {
			if bi != nil {
				out = append(out, bi[i]...)
				count(bi[i])
			}
			out = append(out, in)
			if ai != nil {
				out = append(out, ai[i]...)
				count(ai[i])
			}
		}
		out = append(out, end...)
		count(end)
		b.Instrs = out
	}

	// Edge splitting: one new block per annotated edge, carrying the
	// edge's detaches then attaches. Deterministic order.
	edges := map[[2]int]bool{}
	for e := range ed.edgeDetach {
		edges[e] = true
	}
	for e := range ed.edgeAttach {
		edges[e] = true
	}
	sorted := make([][2]int, 0, len(edges))
	for e := range edges {
		sorted = append(sorted, e)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	for _, e := range sorted {
		from, to := e[0], e[1]
		nb := ed.f.NewBlock()
		nb.Instrs = append(nb.Instrs, ed.edgeDetach[e]...)
		nb.Instrs = append(nb.Instrs, ed.edgeAttach[e]...)
		count(ed.edgeDetach[e])
		count(ed.edgeAttach[e])
		nb.Term, nb.Succs = ir.Jmp, []int{to}
		fb := ed.f.Blocks[from]
		for i, s := range fb.Succs {
			if s == to {
				fb.Succs[i] = nb.ID
			}
		}
	}
	if len(sorted) > 0 {
		if err := ed.f.Validate(); err != nil {
			panic(fmt.Sprintf("terpc: edge splitting broke %s: %v", ed.f.Name, err))
		}
	}
	return attaches, detaches
}

// Verify checks the insertion invariants of an instrumented function:
// every PMO access is covered by an attach, pairs match and never overlap
// within the thread, calls to PMO-accessing functions happen while this
// function holds no window on those PMOs, and every path ends detached.
// callAccess maps each function to the set of PMOs it transitively
// touches (nil disables call checking).
func Verify(f *ir.Func, callAccess map[string]map[string]bool) error {
	entryState := map[int]string{} // canonical attached-set per block
	var dfs func(b int, attached map[string]bool) error
	dfs = func(b int, attached map[string]bool) error {
		canon := canonState(attached)
		if prev, seen := entryState[b]; seen {
			if prev != canon {
				return fmt.Errorf("inconsistent attach state at b%d: %q vs %q", b, prev, canon)
			}
			return nil
		}
		entryState[b] = canon
		cur := map[string]bool{}
		for k := range attached {
			cur[k] = true
		}
		blk := f.Blocks[b]
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.Attach:
				if cur[in.Sym] {
					return fmt.Errorf("overlapping attach of %q in b%d", in.Sym, b)
				}
				cur[in.Sym] = true
			case ir.Detach:
				if !cur[in.Sym] {
					return fmt.Errorf("detach of unattached %q in b%d", in.Sym, b)
				}
				delete(cur, in.Sym)
			case ir.LoadPM, ir.StorePM:
				if !cur[in.Sym] {
					return fmt.Errorf("uncovered access to %q in b%d", in.Sym, b)
				}
			case ir.Call:
				if callAccess == nil {
					continue
				}
				for pmo := range callAccess[in.Sym] {
					if cur[pmo] {
						return fmt.Errorf("call to %q in b%d while %q attached (would nest)", in.Sym, b, pmo)
					}
				}
			}
		}
		if blk.Term == ir.Ret {
			if len(cur) != 0 {
				return fmt.Errorf("return in b%d with %q still attached", b, canonState(cur))
			}
			return nil
		}
		for _, s := range blk.Succs {
			if err := dfs(s, cur); err != nil {
				return err
			}
		}
		return nil
	}
	return dfs(f.Entry, map[string]bool{})
}

func canonState(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + ";"
	}
	return s
}
