package terpc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/lang"
)

// genProgram emits a random structured TPL program over two PMOs and one
// volatile array: random nesting of if/while/for with PMO reads and
// writes sprinkled everywhere. Every generated program is valid TPL.
func genProgram(r *rand.Rand) string {
	var b strings.Builder
	b.WriteString("pmo alpha[256];\npmo beta[256];\nvar scratch[64];\n\n")
	// A callee that touches a PMO: the caller must never wrap calls to
	// it inside its own windows (intra-thread nesting via calls).
	b.WriteString("func helper(k) {\n  var i; var j; var x;\n  x = k;\n")
	genBlock(r, &b, 0, -1) // budget<0: no calls, simple statements only
	b.WriteString("  return x + beta[k % 256];\n}\n\n")
	b.WriteString("func main() {\n  var i; var j; var x;\n")
	genBlock(r, &b, 0, 3)
	b.WriteString("  return x;\n}\n")
	return b.String()
}

func genBlock(r *rand.Rand, b *strings.Builder, depth, budget int) {
	n := 1 + r.Intn(4)
	for s := 0; s < n; s++ {
		pad := strings.Repeat("  ", depth+1)
		switch choice := r.Intn(8); {
		case choice < 3 || budget <= 0: // simple statement
			kinds := 5
			if budget < 0 {
				kinds = 4 // inside helper: no recursive calls
			}
			switch r.Intn(kinds) {
			case 0:
				fmt.Fprintf(b, "%sx = alpha[i %% 256] + 1;\n", pad)
			case 1:
				fmt.Fprintf(b, "%sbeta[j %% 256] = x * 3;\n", pad)
			case 2:
				fmt.Fprintf(b, "%sscratch[x %% 64] = i;\n", pad)
			case 4:
				fmt.Fprintf(b, "%sx = helper(x %% 256);\n", pad)
			default:
				fmt.Fprintf(b, "%scompute(%d);\n", pad, 10+r.Intn(5000))
			}
		case choice < 5: // if / if-else
			fmt.Fprintf(b, "%sif (x %% %d == 0) {\n", pad, 2+r.Intn(5))
			genBlock(r, b, depth+1, budget-1)
			if r.Intn(2) == 0 {
				fmt.Fprintf(b, "%s} else {\n", pad)
				genBlock(r, b, depth+1, budget-1)
			}
			fmt.Fprintf(b, "%s}\n", pad)
		case choice < 7: // bounded for loop, sometimes with early exits
			trips := 1 + r.Intn(64)
			fmt.Fprintf(b, "%sfor (i = 0; i < %d; i = i + 1) {\n", pad, trips)
			genBlock(r, b, depth+1, budget-1)
			switch r.Intn(4) {
			case 0:
				fmt.Fprintf(b, "%s  if (x %% 7 == 0) { break; }\n", pad)
			case 1:
				fmt.Fprintf(b, "%s  if (x %% 5 == 0) { continue; }\n", pad)
			}
			fmt.Fprintf(b, "%s}\n", pad)
		default: // while loop with a decreasing counter
			fmt.Fprintf(b, "%sj = %d;\n", pad, 1+r.Intn(32))
			fmt.Fprintf(b, "%swhile (j > 0) {\n", pad)
			genBlock(r, b, depth+1, budget-1)
			if r.Intn(4) == 0 {
				fmt.Fprintf(b, "%s  if (x %% 11 == 0) { break; }\n", pad)
			}
			fmt.Fprintf(b, "%s  j = j - 1;\n", pad)
			fmt.Fprintf(b, "%s}\n", pad)
		}
	}
}

// TestInsertionPropertyRandomPrograms: for any structured program, the
// insertion pass must produce a function that passes Verify (every PMO
// access covered, pairs balanced and non-overlapping, all paths end
// detached) at both MERR and TERP granularities.
func TestInsertionPropertyRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		src := genProgram(r)
		for _, opt := range []Options{
			{EWThreshold: 88000},                      // MERR single-level
			{EWThreshold: 88000, TEWThreshold: 4400},  // TERP two-level
			{EWThreshold: 352000, TEWThreshold: 1100}, // wide EW, tight TEW
		} {
			prog, err := lang.Compile(src)
			if err != nil {
				t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
			}
			if _, err := Insert(prog, opt); err != nil {
				t.Fatalf("trial %d (opt %+v): insert: %v\n%s", trial, opt, err, src)
			}
			// Insert already runs Verify on instrumented functions,
			// but re-verify explicitly to keep the property honest.
			for name, f := range prog.Funcs {
				if hasPMOAccess(f) {
					if err := Verify(f, nil); err != nil {
						t.Fatalf("trial %d: verify %s: %v\n%s", trial, name, err, f)
					}
				}
			}
		}
	}
}

func hasPMOAccess(f *ir.Func) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.LoadPM || in.Op == ir.StorePM {
				return true
			}
		}
	}
	return false
}

// TestInsertionPropertyCoverage: after insertion, scanning any path from
// entry must find an attach before the first access of each PMO — checked
// structurally by Verify; here we additionally assert that insertion
// never leaves a PMO-accessing program without any inserted constructs.
func TestInsertionPropertyCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		prog, err := lang.Compile(genProgram(r))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Insert(prog, Options{EWThreshold: 88000, TEWThreshold: 4400})
		if err != nil {
			t.Fatal(err)
		}
		main := prog.Funcs["main"]
		if hasPMOAccess(main) && rep.TotalInserted() == 0 {
			t.Fatalf("trial %d: accesses but no inserts\n%s", trial, main)
		}
	}
}
