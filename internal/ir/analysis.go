package ir

import "sort"

// Analysis bundles the control-flow facts the insertion pass consumes.
type Analysis struct {
	f *Func

	// Preds and Succs are the CFG edges (Succs copied from blocks).
	Preds, Succs [][]int
	// IDom and IPDom are immediate (post-)dominators, -1 at the roots.
	IDom, IPDom []int
	// RPO is a reverse postorder of reachable blocks.
	RPO []int
	// Loops are the natural loops, outermost-last.
	Loops []*Loop
	// LoopOf maps a block to its innermost containing loop (or nil).
	LoopOf []*Loop
}

// Loop is a natural loop.
type Loop struct {
	// Header is the loop header block.
	Header int
	// Blocks is the set of member block IDs.
	Blocks map[int]bool
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Trips is the trip-count estimate used in LET computation.
	Trips int
}

// DefaultTrips is the assumed iteration count for loops whose bounds are
// not statically known (the paper assumes a large number, e.g. 1k).
const DefaultTrips = 1000

// Analyze computes the full analysis bundle for a function.
func Analyze(f *Func) *Analysis {
	n := len(f.Blocks)
	a := &Analysis{
		f:      f,
		Preds:  make([][]int, n),
		Succs:  make([][]int, n),
		LoopOf: make([]*Loop, n),
	}
	for _, b := range f.Blocks {
		a.Succs[b.ID] = append([]int(nil), b.Succs...)
		for _, s := range b.Succs {
			a.Preds[s] = append(a.Preds[s], b.ID)
		}
	}
	a.RPO = reversePostorder(n, f.Entry, a.Succs)
	a.IDom = dominators(n, f.Entry, a.Preds, a.RPO)
	a.IPDom = postDominators(f, a)
	a.findLoops()
	return a
}

func reversePostorder(n, entry int, succs [][]int) []int {
	seen := make([]bool, n)
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range succs[b] {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	// Reverse.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// dominators is the Cooper-Harvey-Kennedy iterative algorithm.
func dominators(n, entry int, preds [][]int, rpo []int) []int {
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	order := make([]int, n) // rpo index per block
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}
	idom[entry] = entry
	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] == -1 {
					continue // unreachable or not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	idom[entry] = -1
	return idom
}

// postDominators computes immediate post-dominators over the reverse CFG
// with a virtual exit joining all Ret blocks.
func postDominators(f *Func, a *Analysis) []int {
	n := len(f.Blocks)
	virt := n // virtual exit node
	preds := make([][]int, n+1)
	succs := make([][]int, n+1)
	for _, b := range f.Blocks {
		// Reverse edges.
		for _, s := range b.Succs {
			succs[s] = append(succs[s], b.ID)
			preds[b.ID] = append(preds[b.ID], s)
		}
		if b.Term == Ret {
			succs[virt] = append(succs[virt], b.ID)
			preds[b.ID] = append(preds[b.ID], virt)
		}
	}
	rpo := reversePostorder(n+1, virt, succs)
	ipdom := dominators(n+1, virt, preds, rpo)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		d := ipdom[i]
		if d == virt {
			d = -1
		}
		out[i] = d
	}
	return out
}

// Dominates reports whether block a dominates block b.
func (an *Analysis) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = an.IDom[b]
	}
	return false
}

// PostDominates reports whether block a post-dominates block b.
func (an *Analysis) PostDominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = an.IPDom[b]
	}
	return false
}

// findLoops discovers natural loops from back edges (t -> h with h
// dominating t) and nests them.
func (an *Analysis) findLoops() {
	byHeader := make(map[int]*Loop)
	for _, b := range an.f.Blocks {
		for _, s := range b.Succs {
			if an.Dominates(s, b.ID) {
				// Back edge b -> s.
				l := byHeader[s]
				if l == nil {
					l = &Loop{Header: s, Blocks: map[int]bool{s: true}, Trips: DefaultTrips}
					if th := an.f.Blocks[s].TripHint; th > 0 {
						l.Trips = th
					}
					byHeader[s] = l
				}
				// Collect the loop body by backward walk from t.
				var stack []int
				if !l.Blocks[b.ID] {
					l.Blocks[b.ID] = true
					stack = append(stack, b.ID)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range an.Preds[x] {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	for _, l := range byHeader {
		an.Loops = append(an.Loops, l)
	}
	// Sort inner-first (smaller loops first) for nesting and LoopOf.
	sort.Slice(an.Loops, func(i, j int) bool {
		if len(an.Loops[i].Blocks) != len(an.Loops[j].Blocks) {
			return len(an.Loops[i].Blocks) < len(an.Loops[j].Blocks)
		}
		return an.Loops[i].Header < an.Loops[j].Header
	})
	for i, inner := range an.Loops {
		for _, b := range sortedKeys(inner.Blocks) {
			if an.LoopOf[b] == nil {
				an.LoopOf[b] = inner
			}
		}
		for j := i + 1; j < len(an.Loops); j++ {
			outer := an.Loops[j]
			if outer.Blocks[inner.Header] && outer != inner {
				inner.Parent = outer
				break
			}
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
