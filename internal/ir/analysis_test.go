package ir

import (
	"strings"
	"testing"
)

// diamond builds: b0 -> b1 / b2 -> b3 (classic if/else join).
func diamond() *Func {
	f := NewFunc("diamond")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	c := f.NewReg()
	b0.Emit(Instr{Op: Const, Dst: c, Imm: 1})
	b0.Term, b0.Cond, b0.Succs = Br, c, []int{b1.ID, b2.ID}
	b1.Term, b1.Succs = Jmp, []int{b3.ID}
	b2.Term, b2.Succs = Jmp, []int{b3.ID}
	b3.Term, b3.Cond = Ret, -1
	return f
}

// loopFunc builds: b0 -> b1(header) -> b2(body) -> b1; b1 -> b3(exit).
func loopFunc(trips int) *Func {
	f := NewFunc("loop")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	c := f.NewReg()
	b0.Term, b0.Succs = Jmp, []int{b1.ID}
	b1.Emit(Instr{Op: Const, Dst: c, Imm: 1})
	b1.Term, b1.Cond, b1.Succs = Br, c, []int{b2.ID, b3.ID}
	b1.TripHint = trips
	b2.Emit(Instr{Op: Compute, Imm: 10})
	b2.Term, b2.Succs = Jmp, []int{b1.ID}
	b3.Term, b3.Cond = Ret, -1
	return f
}

func TestValidate(t *testing.T) {
	f := diamond()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := NewFunc("bad")
	b := bad.NewBlock()
	b.Term, b.Succs = Jmp, []int{5}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range successor accepted")
	}
	bad2 := NewFunc("bad2")
	b2 := bad2.NewBlock()
	b2.Term, b2.Succs = Br, []int{0}
	if err := bad2.Validate(); err == nil {
		t.Fatal("br with one successor accepted")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := diamond()
	a := Analyze(f)
	if a.IDom[0] != -1 {
		t.Fatalf("entry idom = %d", a.IDom[0])
	}
	for _, b := range []int{1, 2, 3} {
		if a.IDom[b] != 0 {
			t.Fatalf("idom[%d] = %d, want 0", b, a.IDom[b])
		}
	}
	if !a.Dominates(0, 3) || a.Dominates(1, 3) {
		t.Fatal("dominance wrong on diamond")
	}
}

func TestPostDominatorsDiamond(t *testing.T) {
	f := diamond()
	a := Analyze(f)
	if !a.PostDominates(3, 0) || !a.PostDominates(3, 1) {
		t.Fatal("join must post-dominate all")
	}
	if a.PostDominates(1, 0) {
		t.Fatal("branch arm cannot post-dominate entry")
	}
}

func TestLoopDetection(t *testing.T) {
	f := loopFunc(0)
	a := Analyze(f)
	if len(a.Loops) != 1 {
		t.Fatalf("loops = %d", len(a.Loops))
	}
	l := a.Loops[0]
	if l.Header != 1 {
		t.Fatalf("header = %d", l.Header)
	}
	if !l.Blocks[1] || !l.Blocks[2] || l.Blocks[0] || l.Blocks[3] {
		t.Fatalf("loop blocks = %v", l.Blocks)
	}
	if l.Trips != DefaultTrips {
		t.Fatalf("trips = %d, want default %d", l.Trips, DefaultTrips)
	}
	if a.LoopOf[2] != l || a.LoopOf[0] != nil {
		t.Fatal("LoopOf wrong")
	}
}

func TestLoopTripHint(t *testing.T) {
	f := loopFunc(50)
	a := Analyze(f)
	if a.Loops[0].Trips != 50 {
		t.Fatalf("trips = %d", a.Loops[0].Trips)
	}
}

func TestNestedLoops(t *testing.T) {
	// b0 -> b1(outer hdr) -> b2(inner hdr) -> b3(inner body) -> b2;
	// b2 -> b4 -> b1; b1 -> b5(ret).
	f := NewFunc("nested")
	blocks := make([]*Block, 6)
	for i := range blocks {
		blocks[i] = f.NewBlock()
	}
	c := f.NewReg()
	blocks[0].Term, blocks[0].Succs = Jmp, []int{1}
	blocks[1].Emit(Instr{Op: Const, Dst: c, Imm: 1})
	blocks[1].Term, blocks[1].Cond, blocks[1].Succs = Br, c, []int{2, 5}
	blocks[2].Term, blocks[2].Cond, blocks[2].Succs = Br, c, []int{3, 4}
	blocks[3].Term, blocks[3].Succs = Jmp, []int{2}
	blocks[4].Term, blocks[4].Succs = Jmp, []int{1}
	blocks[5].Term, blocks[5].Cond = Ret, -1
	a := Analyze(f)
	if len(a.Loops) != 2 {
		t.Fatalf("loops = %d", len(a.Loops))
	}
	inner, outer := a.Loops[0], a.Loops[1]
	if len(inner.Blocks) > len(outer.Blocks) {
		inner, outer = outer, inner
	}
	if inner.Header != 2 || outer.Header != 1 {
		t.Fatalf("headers = %d, %d", inner.Header, outer.Header)
	}
	if inner.Parent != outer {
		t.Fatal("inner loop not nested in outer")
	}
	if a.LoopOf[3] != inner {
		t.Fatal("LoopOf[3] should be inner loop")
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	f := diamond()
	a := Analyze(f)
	if a.RPO[0] != 0 {
		t.Fatalf("rpo = %v", a.RPO)
	}
	if len(a.RPO) != 4 {
		t.Fatalf("rpo misses blocks: %v", a.RPO)
	}
	// The join must come after both arms.
	pos := map[int]int{}
	for i, b := range a.RPO {
		pos[b] = i
	}
	if pos[3] < pos[1] || pos[3] < pos[2] {
		t.Fatalf("join ordered before arms: %v", a.RPO)
	}
}

func TestUnreachableBlockIgnored(t *testing.T) {
	f := diamond()
	dead := f.NewBlock()
	dead.Term, dead.Cond = Ret, -1
	a := Analyze(f)
	if len(a.RPO) != 4 {
		t.Fatalf("unreachable block in RPO: %v", a.RPO)
	}
	if a.Dominates(0, dead.ID) {
		t.Fatal("entry dominates unreachable block")
	}
}

func unitCost(int) uint64 { return 1 }

func TestRegionsDiamond(t *testing.T) {
	f := diamond()
	a := Analyze(f)
	rs := BuildRegions(f, a, unitCost)
	if rs.Root == nil || rs.Root.Exit != -1 || rs.Root.Size() != 4 {
		t.Fatalf("root region wrong: %+v", rs.Root)
	}
	// The diamond (b0..b2, exit b3) must be found as a region.
	found := false
	for _, r := range rs.All {
		if r.Header == 0 && r.Exit == 3 && r.Size() == 3 {
			found = true
			// LET of the diamond: longest path b0 -> arm = 2.
			if r.LET != 2 {
				t.Fatalf("diamond LET = %d, want 2", r.LET)
			}
		}
	}
	if !found {
		t.Fatal("diamond region not found")
	}
	// Chains: block 1's smallest region is {1} with exit 3 or the
	// diamond; the chain must end at the root.
	chain := rs.ChainOf(1)
	if len(chain) == 0 || chain[len(chain)-1] != rs.Root {
		t.Fatalf("chain of b1: %d entries", len(chain))
	}
	for i := 1; i < len(chain); i++ {
		if chain[i].Size() < chain[i-1].Size() {
			t.Fatal("chain not sorted by size")
		}
	}
}

func TestRegionLETMultipliesLoopTrips(t *testing.T) {
	f := loopFunc(100)
	a := Analyze(f)
	// Body block b2 has Compute 10 plus 1-cycle const in header.
	rs := BuildRegions(f, a, func(b int) uint64 {
		var c uint64
		for _, in := range f.Blocks[b].Instrs {
			if in.Op == Compute {
				c += uint64(in.Imm)
			} else {
				c++
			}
		}
		return c
	})
	// The root region contains the loop: LET must scale with trips.
	if rs.Root.LET < 100*10 {
		t.Fatalf("root LET %d does not account for trips", rs.Root.LET)
	}
	// A region for the loop (header 1, exit 3) must exist and multiply.
	for _, r := range rs.All {
		if r.Header == 1 && r.Exit == 3 {
			if r.LET < 100*10 {
				t.Fatalf("loop region LET = %d", r.LET)
			}
			return
		}
	}
	t.Fatal("loop region not found")
}

func TestRegionParentNesting(t *testing.T) {
	f := loopFunc(10)
	a := Analyze(f)
	rs := BuildRegions(f, a, unitCost)
	for _, r := range rs.All {
		if r == rs.Root {
			if r.Parent != nil {
				t.Fatal("root has a parent")
			}
			continue
		}
		if r.Parent == nil {
			t.Fatalf("region (h=%d,x=%d) has no parent", r.Header, r.Exit)
		}
		if !containsAll(r.Parent.Blocks, r.Blocks) {
			t.Fatal("parent does not contain child")
		}
	}
}

func TestFuncString(t *testing.T) {
	f := loopFunc(3)
	f.Blocks[2].Emit(Instr{Op: LoadPM, Dst: 0, A: 0, Sym: "grid"})
	f.Blocks[2].Emit(Instr{Op: StorePM, A: 0, B: 0, Sym: "grid"})
	f.Blocks[2].Emit(Instr{Op: Attach, Sym: "grid", Imm: 3})
	f.Blocks[2].Emit(Instr{Op: Detach, Sym: "grid"})
	f.Blocks[2].Emit(Instr{Op: Call, Dst: 0, Sym: "f", Args: []int{0}})
	if s := f.String(); len(s) < 50 {
		t.Fatalf("dump too short: %q", s)
	}
}

func TestOpStrings(t *testing.T) {
	for o := Const; o <= Detach; o++ {
		if o.String() == "" {
			t.Fatalf("op %d empty", o)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	f := loopFunc(3)
	f.Blocks[2].Emit(Instr{Op: Attach, Sym: "g", Imm: 3})
	f.Blocks[2].Emit(Instr{Op: StorePM, A: 0, B: 0, Sym: "g"})
	f.Blocks[2].Emit(Instr{Op: Detach, Sym: "g"})
	dot := f.DOT()
	for _, want := range []string{"digraph", "attach g", "detach g", "storepm g", "trips=3", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Branch else-edges are dashed.
	if !strings.Contains(dot, "style=dashed") {
		t.Fatal("no dashed branch edge")
	}
}
