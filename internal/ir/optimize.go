package ir

// Optimize is the compiler's cleanup pipeline, run before region analysis
// and insertion: block-local constant folding, branch simplification
// (conditional branches on known constants become jumps), and
// unreachable-block elimination with ID compaction. Folding tightens the
// LET estimates the insertion pass works from; dead-block removal keeps
// the region enumeration small.

// OptStats reports what Optimize changed.
type OptStats struct {
	// Folded counts instructions replaced by constants.
	Folded int
	// Branches counts conditional branches turned into jumps.
	Branches int
	// RemovedBlocks counts unreachable blocks eliminated.
	RemovedBlocks int
}

// Optimize runs the pipeline on one function until it reaches a fixed
// point, returning cumulative statistics.
func Optimize(f *Func) OptStats {
	var total OptStats
	for {
		st := foldConstants(f)
		st.RemovedBlocks = removeUnreachable(f)
		total.Folded += st.Folded
		total.Branches += st.Branches
		total.RemovedBlocks += st.RemovedBlocks
		if st.Folded == 0 && st.Branches == 0 && st.RemovedBlocks == 0 {
			return total
		}
	}
}

// foldConstants does block-local constant propagation and folding, plus
// branch simplification when the condition register holds a known
// constant at the terminator.
func foldConstants(f *Func) OptStats {
	var st OptStats
	for _, b := range f.Blocks {
		known := map[int]int64{} // register -> constant value
		kill := func(dst int) { delete(known, dst) }
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case Const:
				known[in.Dst] = in.Imm
			case Mov:
				if v, ok := known[in.A]; ok {
					*in = Instr{Op: Const, Dst: in.Dst, Imm: v}
					known[in.Dst] = v
					st.Folded++
				} else {
					kill(in.Dst)
				}
			case Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
				CmpEQ, CmpNE, CmpLT, CmpLE, CmpGT, CmpGE:
				a, okA := known[in.A]
				bv, okB := known[in.B]
				if okA && okB {
					v := alu(in.Op, a, bv)
					*in = Instr{Op: Const, Dst: in.Dst, Imm: v}
					known[in.Dst] = v
					st.Folded++
				} else {
					kill(in.Dst)
				}
			case LoadPM, LoadDRAM, Call:
				kill(in.Dst)
			case StorePM, StoreDRAM, Compute, Attach, Detach:
				// No register effects.
			default:
				kill(in.Dst)
			}
		}
		if b.Term == Br {
			if v, ok := known[b.Cond]; ok {
				target := b.Succs[1]
				if v != 0 {
					target = b.Succs[0]
				}
				b.Term, b.Cond, b.Succs = Jmp, -1, []int{target}
				st.Branches++
			}
		}
	}
	return st
}

// alu mirrors the interpreter's integer semantics (div/mod by zero -> 0).
func alu(op Op, a, b int64) int64 {
	switch op {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		if b == 0 {
			return 0
		}
		return a / b
	case Mod:
		if b == 0 {
			return 0
		}
		return a % b
	case And:
		return a & b
	case Or:
		return a | b
	case Xor:
		return a ^ b
	case Shl:
		return a << (uint64(b) & 63)
	case Shr:
		return int64(uint64(a) >> (uint64(b) & 63))
	case CmpEQ:
		if a == b {
			return 1
		}
	case CmpNE:
		if a != b {
			return 1
		}
	case CmpLT:
		if a < b {
			return 1
		}
	case CmpLE:
		if a <= b {
			return 1
		}
	case CmpGT:
		if a > b {
			return 1
		}
	case CmpGE:
		if a >= b {
			return 1
		}
	}
	return 0
}

// removeUnreachable prunes blocks not reachable from the entry and
// compacts block IDs, remapping successors.
func removeUnreachable(f *Func) int {
	reachable := make([]bool, len(f.Blocks))
	stack := []int{f.Entry}
	reachable[f.Entry] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Blocks[b].Succs {
			if !reachable[s] {
				reachable[s] = true
				stack = append(stack, s)
			}
		}
	}
	removed := 0
	remap := make([]int, len(f.Blocks))
	var kept []*Block
	for i, b := range f.Blocks {
		if !reachable[i] {
			removed++
			remap[i] = -1
			continue
		}
		remap[i] = len(kept)
		kept = append(kept, b)
	}
	if removed == 0 {
		return 0
	}
	for _, b := range kept {
		b.ID = remap[b.ID]
		for j, s := range b.Succs {
			b.Succs[j] = remap[s]
		}
	}
	f.Blocks = kept
	f.Entry = remap[f.Entry]
	return removed
}
