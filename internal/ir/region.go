package ir

import "sort"

// Region is a single-entry single-exit code region (Section V-A): a
// header that dominates every block in the region and an exit block that
// post-dominates every block in it. Exit == -1 denotes the function-level
// region whose exit is the virtual exit node.
type Region struct {
	// Header is the region entry block.
	Header int
	// Exit is the region exit block (not a member), or -1.
	Exit int
	// Blocks is the member set (header included, exit excluded).
	Blocks map[int]bool
	// LET is the longest-execution-time estimate in cycles across all
	// paths of the region, with loops weighted by their trip counts.
	LET uint64
	// Parent is the smallest strictly containing region, or nil.
	Parent *Region
}

// Contains reports whether block b is a member.
func (r *Region) Contains(b int) bool { return r.Blocks[b] }

// Size returns the number of member blocks.
func (r *Region) Size() int { return len(r.Blocks) }

// Regions is the region hierarchy of one function.
type Regions struct {
	// All holds every region, smallest-first.
	All []*Region
	// Root is the whole-function region.
	Root *Region

	an     *Analysis
	cost   func(int) uint64
	chains [][]*Region // per block: enclosing regions smallest-first
}

// BlockCost is the signature of the per-block cost estimator (the
// conservative cycles-per-instruction model; the insertion pass supplies
// one that knows callee LETs).
type BlockCost func(blockID int) uint64

// BuildRegions enumerates the SESE regions of the function, estimates
// each region's LET, and links the containment hierarchy.
func BuildRegions(f *Func, an *Analysis, cost BlockCost) *Regions {
	rs := &Regions{an: an, cost: cost}
	n := len(f.Blocks)
	reachable := make([]bool, n)
	for _, b := range an.RPO {
		reachable[b] = true
	}

	seen := map[string]bool{}
	for h := 0; h < n; h++ {
		if !reachable[h] {
			continue
		}
		for x := 0; x < n; x++ {
			if x == h || !reachable[x] {
				continue
			}
			if !an.Dominates(h, x) || !an.PostDominates(x, h) {
				continue
			}
			blocks := rs.memberBlocks(h, x)
			if blocks == nil {
				continue
			}
			key := regionKey(blocks, x)
			if seen[key] {
				continue
			}
			seen[key] = true
			r := &Region{Header: h, Exit: x, Blocks: blocks}
			r.LET = rs.let(r)
			rs.All = append(rs.All, r)
		}
	}
	// Whole-function root region.
	root := &Region{Header: f.Entry, Exit: -1, Blocks: map[int]bool{}}
	for _, b := range an.RPO {
		root.Blocks[b] = true
	}
	root.LET = rs.let(root)
	rs.All = append(rs.All, root)
	rs.Root = root

	sort.Slice(rs.All, func(i, j int) bool {
		if rs.All[i].Size() != rs.All[j].Size() {
			return rs.All[i].Size() < rs.All[j].Size()
		}
		if rs.All[i].Header != rs.All[j].Header {
			return rs.All[i].Header < rs.All[j].Header
		}
		return rs.All[i].Exit < rs.All[j].Exit
	})
	// Parent = smallest strictly containing region.
	for i, r := range rs.All {
		for j := i + 1; j < len(rs.All); j++ {
			o := rs.All[j]
			if o.Size() <= r.Size() {
				continue
			}
			if containsAll(o.Blocks, r.Blocks) {
				r.Parent = o
				break
			}
		}
	}
	// Per-block chains.
	rs.chains = make([][]*Region, n)
	for _, r := range rs.All {
		for b := range r.Blocks {
			rs.chains[b] = append(rs.chains[b], r)
		}
	}
	return rs
}

// memberBlocks collects blocks reachable from h without passing x that h
// dominates and x post-dominates; it returns nil if any reached block
// escapes those conditions (not a valid region).
func (rs *Regions) memberBlocks(h, x int) map[int]bool {
	blocks := map[int]bool{h: true}
	stack := []int{h}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range rs.an.Succs[b] {
			if s == x || blocks[s] {
				continue
			}
			if !rs.an.Dominates(h, s) || !rs.an.PostDominates(x, s) {
				return nil
			}
			blocks[s] = true
			stack = append(stack, s)
		}
		if rs.an.f.Blocks[b].Term == Ret {
			// A return inside the candidate escapes the exit.
			return nil
		}
	}
	return blocks
}

func regionKey(blocks map[int]bool, exit int) string {
	ids := sortedKeys(blocks)
	key := make([]byte, 0, len(ids)*3+4)
	for _, id := range ids {
		key = append(key, byte(id), byte(id>>8), ',')
	}
	key = append(key, '|', byte(exit), byte(exit>>8))
	return string(key)
}

func containsAll(outer, inner map[int]bool) bool {
	for b := range inner {
		if !outer[b] {
			return false
		}
	}
	return true
}

// ChainOf returns the enclosing regions of a block, smallest-first. The
// insertion pass walks this chain as the "next-level region" lookup of
// Algorithm 1.
func (rs *Regions) ChainOf(b int) []*Region {
	if b < 0 || b >= len(rs.chains) {
		return nil
	}
	return rs.chains[b]
}

// let estimates the region's longest execution time: the longest weighted
// path from the header through forward (non-back) edges within the
// region, where each block's weight is its cost multiplied by the trip
// counts of all loops that contain it and are nested inside the region.
func (rs *Regions) let(r *Region) uint64 {
	an := rs.an
	// Topological order: RPO restricted to region, ignoring back edges.
	memo := make(map[int]uint64, len(r.Blocks))
	var longest uint64
	for _, b := range an.RPO {
		if !r.Blocks[b] {
			continue
		}
		var in uint64
		for _, p := range an.Preds[b] {
			if !r.Blocks[p] {
				continue
			}
			if an.Dominates(b, p) {
				continue // back edge
			}
			if memo[p] > in {
				in = memo[p]
			}
		}
		w := rs.cost(b) * rs.tripWeight(b, r)
		memo[b] = in + w
		if memo[b] > longest {
			longest = memo[b]
		}
	}
	return longest
}

// tripWeight multiplies the trip counts of all loops containing b whose
// headers lie inside the region: executing the region once executes those
// loop bodies Trips times each. A region nested strictly inside one
// iteration of a loop does not contain the loop header and is unaffected.
func (rs *Regions) tripWeight(b int, r *Region) uint64 {
	w := uint64(1)
	for l := rs.an.LoopOf[b]; l != nil; l = l.Parent {
		if !r.Blocks[l.Header] {
			break
		}
		w *= uint64(l.Trips)
		if w > 1<<40 {
			return 1 << 40 // saturate
		}
	}
	return w
}
