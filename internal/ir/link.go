package ir

import (
	"fmt"
	"sort"
)

// This file defines the linked program form the hot-path execution engine
// runs: a one-time link pass rewrites each Func into a flat, pre-resolved
// instruction stream in which every symbol operand (PMO name, DRAM array
// name, callee) has been replaced by a dense integer slot index, and block
// terminators have become explicit program-counter jumps. The interpreter
// then dispatches without a single map lookup per instruction.
//
// Linking is purely a representation change: the linked form executes the
// same instructions, charges the same simulated cycles and produces the
// same results as interpreting the block-structured Func directly (the
// interp package enforces this with a linked-vs-legacy equivalence test).

// Linked-form terminator opcodes. They live above every regular Op so the
// interpreter can split instruction handling from control transfer with a
// single compare (regular instructions count against the step budget,
// terminators charge one cycle like the legacy block terminators).
const (
	// LJmp is an unconditional jump to pc Slot.
	LJmp Op = 64 + iota
	// LBr branches to pc Slot when register A is nonzero, else pc Targ.
	LBr
	// LRet returns register Dst (or no value when Dst < 0).
	LRet
)

// LInstr is one linked instruction. Regular ops keep their Op value and
// register operands; symbol operands are pre-resolved into Slot:
//
//	LoadPM/StorePM/Attach/Detach  Slot = index into Program.PMOs
//	LoadDRAM/StoreDRAM            Slot = index into Program.DRAMs
//	Call                          Slot = index into Linked.Funcs
//	LJmp                          Slot = target pc
//	LBr                           Slot = taken pc, Targ = fallthrough pc
//
// A Slot of -1 marks a symbol that did not resolve at link time; executing
// such an instruction fails with the same error the legacy interpreter
// reports, so invalid-but-unreached code behaves identically.
type LInstr struct {
	// Op is the opcode (a regular Op, or LJmp/LBr/LRet).
	Op Op
	// Dst, A, B are register operands (see Instr).
	Dst, A, B int32
	// Slot is the pre-resolved symbol slot or branch target (see above).
	Slot int32
	// Targ is the fallthrough pc of LBr.
	Targ int32
	// Block is the source basic-block ID, kept for error messages.
	Block int32
	// Imm is the immediate operand.
	Imm int64
	// Sym is the original symbol, kept only for error messages.
	Sym string
	// Args are pre-narrowed argument registers for Call.
	Args []int32
}

// LFunc is one linked function: a flat code array addressed by pc.
type LFunc struct {
	// Name is the function's symbol.
	Name string
	// Code is the flattened instruction stream.
	Code []LInstr
	// EntryPC is the pc of the entry block's first instruction.
	EntryPC int
	// NumRegs is the register file size.
	NumRegs int
	// Params are the registers that receive arguments.
	Params []int
}

// Linked is a linked program: every function flattened and every symbol
// resolved to a slot. The slot spaces are the declaration orders of
// Prog.PMOs and Prog.DRAMs, and the name-sorted function order for calls,
// so a Linked program is a deterministic function of its Program.
type Linked struct {
	// Prog is the source program (declarations stay authoritative).
	Prog *Program
	// Funcs are the linked functions, sorted by name.
	Funcs []*LFunc
	// Index maps function name to its Funcs slot.
	Index map[string]int
}

// Link flattens and resolves every function of the program. The source
// program is not modified and may keep serving the legacy interpreter; one
// Linked result is read-only and may back any number of concurrent
// machines.
func Link(p *Program) (*Linked, error) {
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)

	l := &Linked{Prog: p, Index: make(map[string]int, len(names))}
	for i, name := range names {
		l.Index[name] = i
	}
	pmoSlot := make(map[string]int, len(p.PMOs))
	for i, d := range p.PMOs {
		pmoSlot[d.Name] = i
	}
	dramSlot := make(map[string]int, len(p.DRAMs))
	for i, d := range p.DRAMs {
		dramSlot[d.Name] = i
	}
	for _, name := range names {
		f := p.Funcs[name]
		if err := f.Validate(); err != nil {
			return nil, fmt.Errorf("ir: link: %w", err)
		}
		l.Funcs = append(l.Funcs, linkFunc(f, l.Index, pmoSlot, dramSlot))
	}
	return l, nil
}

// Func returns the linked function by name.
func (l *Linked) Func(name string) (*LFunc, bool) {
	i, ok := l.Index[name]
	if !ok {
		return nil, false
	}
	return l.Funcs[i], true
}

func linkFunc(f *Func, funcIdx map[string]int, pmoSlot, dramSlot map[string]int) *LFunc {
	// Block layout: blocks in ID order, each contributing its straight-line
	// instructions plus one terminator instruction.
	pcOf := make([]int, len(f.Blocks))
	pc := 0
	for i, b := range f.Blocks {
		pcOf[i] = pc
		pc += len(b.Instrs) + 1
	}
	lf := &LFunc{
		Name:    f.Name,
		Code:    make([]LInstr, 0, pc),
		EntryPC: pcOf[f.Entry],
		NumRegs: f.NumRegs,
		Params:  f.Params,
	}
	slotOf := func(table map[string]int, sym string) int32 {
		if s, ok := table[sym]; ok {
			return int32(s)
		}
		return -1
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			li := LInstr{
				Op:    in.Op,
				Dst:   int32(in.Dst),
				A:     int32(in.A),
				B:     int32(in.B),
				Imm:   in.Imm,
				Block: int32(b.ID),
			}
			switch in.Op {
			case LoadPM, StorePM, Attach, Detach:
				li.Slot, li.Sym = slotOf(pmoSlot, in.Sym), in.Sym
			case LoadDRAM, StoreDRAM:
				li.Slot, li.Sym = slotOf(dramSlot, in.Sym), in.Sym
			case Call:
				li.Slot, li.Sym = slotOf(funcIdx, in.Sym), in.Sym
				li.Args = make([]int32, len(in.Args))
				for j, r := range in.Args {
					li.Args[j] = int32(r)
				}
			}
			lf.Code = append(lf.Code, li)
		}
		term := LInstr{Block: int32(b.ID)}
		switch b.Term {
		case Jmp:
			term.Op, term.Slot = LJmp, int32(pcOf[b.Succs[0]])
		case Br:
			term.Op = LBr
			term.A = int32(b.Cond)
			term.Slot, term.Targ = int32(pcOf[b.Succs[0]]), int32(pcOf[b.Succs[1]])
		case Ret:
			term.Op, term.Dst = LRet, int32(b.Cond)
		}
		lf.Code = append(lf.Code, term)
	}
	return lf
}
