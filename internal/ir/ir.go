// Package ir defines the compiler intermediate representation of the TERP
// reproduction and the control-flow analyses the insertion pass needs:
// CFG construction, dominators and post-dominators, natural loops,
// single-entry single-exit code regions (the "classic code region
// analysis" of Algorithm 1), and longest-execution-time (LET) estimation
// with the paper's assumed trip count for statically unbounded loops.
//
// The IR is a register machine: each function owns an unbounded register
// file of 64-bit integers; basic blocks hold straight-line instructions
// and end in an explicit terminator.
package ir

import (
	"fmt"
	"strings"
)

// Op is an instruction opcode.
type Op int

// The instruction set.
const (
	// Const: Dst = Imm.
	Const Op = iota
	// Mov: Dst = A.
	Mov
	// Add, Sub, Mul, Div, Mod: Dst = A op B (Div/Mod by zero yields 0).
	Add
	Sub
	Mul
	Div
	Mod
	// And, Or, Xor, Shl, Shr: bitwise Dst = A op B.
	And
	Or
	Xor
	Shl
	Shr
	// CmpEQ..CmpGE: Dst = 1 if A op B else 0.
	CmpEQ
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
	// LoadPM: Dst = PMO[Sym] element at index A. Sym names the PMO.
	LoadPM
	// StorePM: PMO[Sym] element at index A = B.
	StorePM
	// LoadDRAM: Dst = element A of volatile array Sym.
	LoadDRAM
	// StoreDRAM: element A of volatile array Sym = B.
	StoreDRAM
	// Compute: Imm cycles of opaque computation (no register effects).
	Compute
	// Call: Dst = Sym(args in Args registers).
	Call
	// Attach: conditional/real attach of PMO Sym with Imm permission
	// bits (1 read, 2 write). Inserted by the compiler pass.
	Attach
	// Detach: conditional/real detach of PMO Sym. Inserted by the pass.
	Detach
)

// String names the opcode.
func (o Op) String() string {
	names := [...]string{"const", "mov", "add", "sub", "mul", "div", "mod",
		"and", "or", "xor", "shl", "shr",
		"cmpeq", "cmpne", "cmplt", "cmple", "cmpgt", "cmpge",
		"loadpm", "storepm", "loaddram", "storedram", "compute", "call",
		"attach", "detach"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction.
type Instr struct {
	// Op is the opcode.
	Op Op
	// Dst is the destination register (where meaningful).
	Dst int
	// A and B are source registers.
	A, B int
	// Imm is the immediate operand (Const value, Compute cycles,
	// Attach permission).
	Imm int64
	// Sym is the symbol operand: PMO name, DRAM array name, or callee.
	Sym string
	// Args are argument registers for Call.
	Args []int
}

// TermKind discriminates block terminators.
type TermKind int

// Terminators.
const (
	// Jmp: unconditional jump to Succs[0].
	Jmp TermKind = iota
	// Br: if Cond register != 0 go to Succs[0] else Succs[1].
	Br
	// Ret: return register Cond (or no value if Cond < 0).
	Ret
)

// Block is one basic block.
type Block struct {
	// ID is the block's index within its function.
	ID int
	// Instrs are the straight-line instructions.
	Instrs []Instr
	// Term is the terminator kind.
	Term TermKind
	// Cond is the branch condition register (Br) or return value
	// register (Ret; -1 for none).
	Cond int
	// Succs are successor block IDs (none for Ret).
	Succs []int
	// TripHint, when positive, is a static bound for the loop this
	// block heads; unbounded loops use DefaultTrips in LET estimation.
	TripHint int
}

// Func is one function.
type Func struct {
	// Name is the function's symbol.
	Name string
	// Blocks are the basic blocks; Blocks[i].ID == i.
	Blocks []*Block
	// Entry is the entry block ID.
	Entry int
	// NumRegs is the register file size.
	NumRegs int
	// Params are the registers that receive arguments.
	Params []int
}

// NewFunc creates an empty function.
func NewFunc(name string) *Func { return &Func{Name: name} }

// NewBlock appends a fresh block and returns it.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Cond: -1}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewReg allocates a fresh register.
func (f *Func) NewReg() int {
	r := f.NumRegs
	f.NumRegs++
	return r
}

// Emit appends an instruction to the block.
func (b *Block) Emit(in Instr) { b.Instrs = append(b.Instrs, in) }

// PMODecl declares a persistent array hosted in its own PMO.
type PMODecl struct {
	// Name is the PMO name (and the array symbol in TPL).
	Name string
	// Elems is the number of 8-byte elements.
	Elems int
}

// DRAMDecl declares a volatile global array.
type DRAMDecl struct {
	// Name is the array symbol.
	Name string
	// Elems is the number of 8-byte elements.
	Elems int
}

// Program is a compilation unit.
type Program struct {
	// Funcs maps function names to bodies.
	Funcs map[string]*Func
	// PMOs are the persistent arrays, each its own PMO.
	PMOs []PMODecl
	// DRAMs are the volatile global arrays.
	DRAMs []DRAMDecl
}

// NewProgram creates an empty program.
func NewProgram() *Program {
	return &Program{Funcs: make(map[string]*Func)}
}

// PMONames returns the declared PMO names in order.
func (p *Program) PMONames() []string {
	out := make([]string, len(p.PMOs))
	for i, d := range p.PMOs {
		out[i] = d.Name
	}
	return out
}

// Validate checks structural invariants: block IDs dense, successors in
// range, terminators consistent. It returns the first problem found.
func (f *Func) Validate() error {
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("ir: %s: block %d has ID %d", f.Name, i, b.ID)
		}
		switch b.Term {
		case Jmp:
			if len(b.Succs) != 1 {
				return fmt.Errorf("ir: %s: block %d jmp with %d succs", f.Name, i, len(b.Succs))
			}
		case Br:
			if len(b.Succs) != 2 {
				return fmt.Errorf("ir: %s: block %d br with %d succs", f.Name, i, len(b.Succs))
			}
		case Ret:
			if len(b.Succs) != 0 {
				return fmt.Errorf("ir: %s: block %d ret with succs", f.Name, i)
			}
		}
		for _, s := range b.Succs {
			if s < 0 || s >= len(f.Blocks) {
				return fmt.Errorf("ir: %s: block %d succ %d out of range", f.Name, i, s)
			}
		}
	}
	if f.Entry < 0 || f.Entry >= len(f.Blocks) {
		return fmt.Errorf("ir: %s: bad entry %d", f.Name, f.Entry)
	}
	return nil
}

// String renders the function for debugging and golden tests.
func (f *Func) String() string {
	s := fmt.Sprintf("func %s (regs=%d)\n", f.Name, f.NumRegs)
	for _, b := range f.Blocks {
		s += fmt.Sprintf("b%d:\n", b.ID)
		for _, in := range b.Instrs {
			switch in.Op {
			case Const:
				s += fmt.Sprintf("  r%d = const %d\n", in.Dst, in.Imm)
			case Compute:
				s += fmt.Sprintf("  compute %d\n", in.Imm)
			case LoadPM, LoadDRAM:
				s += fmt.Sprintf("  r%d = %s %s[r%d]\n", in.Dst, in.Op, in.Sym, in.A)
			case StorePM, StoreDRAM:
				s += fmt.Sprintf("  %s %s[r%d] = r%d\n", in.Op, in.Sym, in.A, in.B)
			case Call:
				s += fmt.Sprintf("  r%d = call %s %v\n", in.Dst, in.Sym, in.Args)
			case Attach:
				s += fmt.Sprintf("  attach %s perm=%d\n", in.Sym, in.Imm)
			case Detach:
				s += fmt.Sprintf("  detach %s\n", in.Sym)
			default:
				s += fmt.Sprintf("  r%d = %s r%d r%d\n", in.Dst, in.Op, in.A, in.B)
			}
		}
		switch b.Term {
		case Jmp:
			s += fmt.Sprintf("  jmp b%d\n", b.Succs[0])
		case Br:
			s += fmt.Sprintf("  br r%d b%d b%d\n", b.Cond, b.Succs[0], b.Succs[1])
		case Ret:
			s += fmt.Sprintf("  ret r%d\n", b.Cond)
		}
	}
	return s
}

// DOT renders the function's CFG in Graphviz format, with PMO accesses
// and inserted attach/detach constructs highlighted — handy for
// inspecting what the insertion pass did (`terpc -dot | dot -Tsvg`).
func (f *Func) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  node [shape=box, fontname=monospace];\n", f.Name)
	for _, blk := range f.Blocks {
		var label strings.Builder
		fmt.Fprintf(&label, "b%d", blk.ID)
		if blk.TripHint > 0 {
			fmt.Fprintf(&label, " (trips=%d)", blk.TripHint)
		}
		attrs := ""
		for _, in := range blk.Instrs {
			switch in.Op {
			case Attach:
				fmt.Fprintf(&label, "\\nattach %s", in.Sym)
				attrs = ", style=filled, fillcolor=lightblue"
			case Detach:
				fmt.Fprintf(&label, "\\ndetach %s", in.Sym)
				if attrs == "" {
					attrs = ", style=filled, fillcolor=lightyellow"
				}
			case LoadPM, StorePM:
				fmt.Fprintf(&label, "\\n%s %s", in.Op, in.Sym)
			}
		}
		fmt.Fprintf(&b, "  b%d [label=\"%s\"%s];\n", blk.ID, label.String(), attrs)
		for i, s := range blk.Succs {
			edge := ""
			if blk.Term == Br && i == 1 {
				edge = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  b%d -> b%d%s;\n", blk.ID, s, edge)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
