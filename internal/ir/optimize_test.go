package ir

import "testing"

func TestConstantFolding(t *testing.T) {
	f := NewFunc("fold")
	b := f.NewBlock()
	r1, r2, r3 := f.NewReg(), f.NewReg(), f.NewReg()
	b.Emit(Instr{Op: Const, Dst: r1, Imm: 6})
	b.Emit(Instr{Op: Const, Dst: r2, Imm: 7})
	b.Emit(Instr{Op: Mul, Dst: r3, A: r1, B: r2})
	b.Emit(Instr{Op: Mov, Dst: r1, A: r3})
	b.Term, b.Cond = Ret, r1
	st := Optimize(f)
	if st.Folded < 2 {
		t.Fatalf("folded = %d", st.Folded)
	}
	// The Mul must now be a Const 42.
	found := false
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == Const && in.Imm == 42 {
			found = true
		}
		if in.Op == Mul {
			t.Fatal("multiply not folded")
		}
	}
	if !found {
		t.Fatal("folded constant missing")
	}
}

func TestBranchSimplification(t *testing.T) {
	f := NewFunc("br")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	c := f.NewReg()
	b0.Emit(Instr{Op: Const, Dst: c, Imm: 1})
	b0.Term, b0.Cond, b0.Succs = Br, c, []int{b1.ID, b2.ID}
	b1.Term, b1.Cond = Ret, -1
	b2.Term, b2.Cond = Ret, -1
	st := Optimize(f)
	if st.Branches != 1 {
		t.Fatalf("branches = %d", st.Branches)
	}
	if f.Blocks[0].Term != Jmp {
		t.Fatal("branch not converted")
	}
	// The untaken arm becomes unreachable and is pruned.
	if st.RemovedBlocks != 1 || len(f.Blocks) != 2 {
		t.Fatalf("removed = %d, blocks = %d", st.RemovedBlocks, len(f.Blocks))
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFalseBranchTakesElse(t *testing.T) {
	f := NewFunc("br0")
	b0, b1, b2 := f.NewBlock(), f.NewBlock(), f.NewBlock()
	c := f.NewReg()
	b0.Emit(Instr{Op: Const, Dst: c, Imm: 0})
	b0.Term, b0.Cond, b0.Succs = Br, c, []int{b1.ID, b2.ID}
	b1.Emit(Instr{Op: Compute, Imm: 1})
	b1.Term, b1.Cond = Ret, -1
	b2.Emit(Instr{Op: Compute, Imm: 2})
	b2.Term, b2.Cond = Ret, -1
	Optimize(f)
	// Entry must jump to the else arm (original b2).
	tgt := f.Blocks[f.Entry].Succs[0]
	if f.Blocks[tgt].Instrs[0].Imm != 2 {
		t.Fatal("false branch took then-arm")
	}
}

func TestLoadsBlockFolding(t *testing.T) {
	f := NewFunc("load")
	b := f.NewBlock()
	r1, r2 := f.NewReg(), f.NewReg()
	b.Emit(Instr{Op: Const, Dst: r1, Imm: 3})
	b.Emit(Instr{Op: LoadPM, Dst: r1, A: r1, Sym: "p"}) // kills r1
	b.Emit(Instr{Op: Add, Dst: r2, A: r1, B: r1})
	b.Term, b.Cond = Ret, r2
	st := Optimize(f)
	if st.Folded != 0 {
		t.Fatalf("folded through a load: %d", st.Folded)
	}
}

func TestOptimizeFixedPoint(t *testing.T) {
	// const -> branch -> new constant path -> more folding: needs the
	// outer fixed-point loop.
	f := NewFunc("fix")
	b0, b1, b2, b3 := f.NewBlock(), f.NewBlock(), f.NewBlock(), f.NewBlock()
	c := f.NewReg()
	v := f.NewReg()
	b0.Emit(Instr{Op: Const, Dst: c, Imm: 1})
	b0.Term, b0.Cond, b0.Succs = Br, c, []int{b1.ID, b2.ID}
	b1.Emit(Instr{Op: Const, Dst: v, Imm: 5})
	b1.Emit(Instr{Op: Add, Dst: v, A: v, B: v})
	b1.Term, b1.Succs = Jmp, []int{b3.ID}
	b2.Term, b2.Succs = Jmp, []int{b3.ID}
	b3.Term, b3.Cond = Ret, v
	st := Optimize(f)
	if st.Folded == 0 || st.Branches == 0 || st.RemovedBlocks == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizePreservesAttachDetach(t *testing.T) {
	f := NewFunc("prot")
	b := f.NewBlock()
	r := f.NewReg()
	b.Emit(Instr{Op: Attach, Sym: "p", Imm: 3})
	b.Emit(Instr{Op: Const, Dst: r, Imm: 1})
	b.Emit(Instr{Op: StorePM, A: r, B: r, Sym: "p"})
	b.Emit(Instr{Op: Detach, Sym: "p"})
	b.Term, b.Cond = Ret, -1
	Optimize(f)
	ops := []Op{}
	for _, in := range f.Blocks[0].Instrs {
		ops = append(ops, in.Op)
	}
	hasAt, hasDt := false, false
	for _, o := range ops {
		if o == Attach {
			hasAt = true
		}
		if o == Detach {
			hasDt = true
		}
	}
	if !hasAt || !hasDt {
		t.Fatalf("protection ops lost: %v", ops)
	}
}
