package nvm

// The replayable persist-op trace. When enabled, the buffer records every
// store, flush and fence it observes, with enough information (offsets,
// lengths, store bytes) that a consumer can replay the run's persistency
// behavior without the device: the litmus oracle (internal/litmus)
// derives the specification-allowed crash-state set purely from this
// trace. Stores are trace-only — they are not persist events, never
// reach the event hook, and do not advance the flush+fence ordinal.

// StoreEvent marks a trace entry for a buffered write. It extends
// EventKind for TraceOp records only; stores never appear in the
// SetEventHook stream and never consume an Event.Index.
const StoreEvent EventKind = 2

// TraceOp is one entry of the replayable persist-op trace.
type TraceOp struct {
	// Kind is StoreEvent, FlushEvent or FenceEvent.
	Kind EventKind
	// Off and Len locate the affected byte range (stores and flushes;
	// zero for fences, which order the whole buffer).
	Off, Len uint64
	// Data holds the written bytes (stores only).
	Data []byte
	// Index is the persist-event ordinal (flushes and fences; stores
	// carry 0 — they have no position in the persist-event stream).
	Index uint64
}

// EnableTrace starts recording the replayable persist-op trace. It is
// meant for small litmus-style programs; traces grow with every store,
// so long workload runs should leave it off.
func (b *PersistBuffer) EnableTrace() { b.trace = make([]TraceOp, 0, 64) }

// TraceOps returns the recorded trace in program order.
func (b *PersistBuffer) TraceOps() []TraceOp { return b.trace }

// traceStore records a buffered write (no-op when tracing is off).
func (b *PersistBuffer) traceStore(off uint64, data []byte) {
	if b.trace == nil {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	b.trace = append(b.trace, TraceOp{Kind: StoreEvent, Off: off, Len: uint64(len(data)), Data: cp})
}

// traceOp records a flush or fence. It runs right after emit, so the
// event's ordinal is the counter's previous value.
func (b *PersistBuffer) traceOp(k EventKind, off, n uint64) {
	if b.trace == nil {
		return
	}
	b.trace = append(b.trace, TraceOp{Kind: k, Off: off, Len: n, Index: b.events - 1})
}
