package nvm

import "testing"

// BenchmarkCacheAccessHit measures the simulated-cache lookup on a
// hit-heavy pattern (a short ring that fits in the cache).
func BenchmarkCacheAccessHit(b *testing.B) {
	c := NewCache(32*1024, 8, 64)
	b.ReportAllocs()
	var a uint64
	for i := 0; i < b.N; i++ {
		c.Access(a)
		a = (a + 64) % (16 * 1024)
	}
}

// BenchmarkCacheAccessMiss measures the lookup on a miss-heavy pattern (a
// stride walk over a footprint far larger than the cache).
func BenchmarkCacheAccessMiss(b *testing.B) {
	c := NewCache(32*1024, 8, 64)
	b.ReportAllocs()
	var a uint64
	for i := 0; i < b.N; i++ {
		c.Access(a)
		a = (a + 4096 + 64) % (1 << 30)
	}
}

// BenchmarkDeviceRead8 measures the word read fast path.
func BenchmarkDeviceRead8(b *testing.B) {
	d := NewDevice(NVM, 1<<26)
	for off := uint64(0); off < 1<<20; off += 8 {
		if err := d.Write8(off, off); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var off uint64
	for i := 0; i < b.N; i++ {
		if _, err := d.Read8(off); err != nil {
			b.Fatal(err)
		}
		off = (off + 8) % (1 << 20)
	}
}

// BenchmarkDeviceWrite8 measures the word write fast path.
func BenchmarkDeviceWrite8(b *testing.B) {
	d := NewDevice(NVM, 1<<26)
	b.ReportAllocs()
	var off uint64
	for i := 0; i < b.N; i++ {
		if err := d.Write8(off, uint64(i)); err != nil {
			b.Fatal(err)
		}
		off = (off + 8) % (1 << 20)
	}
}
