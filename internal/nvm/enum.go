package nvm

import (
	"crypto/sha256"
	"fmt"
	"sort"
)

// Exhaustive crash-image enumeration. A crash at any instant leaves the
// durable image CrashImage materializes, parameterized by which in-flight
// writebacks drained before power failed — one image per subset. The
// stateless-model-checker-style litmus engine (internal/litmus) walks a
// program's persist events and unions these per-instant sets into the
// exact reachable-state set; the sampling injector (internal/crash) uses
// the same call to check that every image it samples is a member. Both
// go through CrashImage itself, so enumeration and sampling share one
// materialization path and cannot drift.

// MaxEnumLines caps the in-flight writeback count ForEachCrashImage will
// exhaustively enumerate (2^n images). Litmus programs stay far below
// it; workload-scale buffers that exceed it get an error instead of an
// exponential blowup.
const MaxEnumLines = 16

// ForEachCrashImage materializes every durable image reachable by a
// crash at this instant — one per subset of in-flight writebacks — and
// invokes fn with each. Images arrive in ascending drop-mask order over
// the sorted unfenced lines (AppendUnfenced), so the sequence is
// deterministic; fn returns false to stop early (membership checks).
// Each image is freshly materialized through CrashImage and may be
// retained by fn.
func (b *PersistBuffer) ForEachCrashImage(fn func(img map[uint64][]byte) bool) error {
	lines := b.AppendUnfenced(nil)
	if len(lines) > MaxEnumLines {
		return fmt.Errorf("nvm: %d in-flight writebacks exceed the %d-line enumeration cap", len(lines), MaxEnumLines)
	}
	pos := make(map[uint64]uint, len(lines))
	for i, ln := range lines {
		pos[ln] = uint(i)
	}
	for mask := uint64(0); mask < 1<<len(lines); mask++ {
		img := b.CrashImage(func(ln uint64) bool { return mask>>pos[ln]&1 == 1 })
		if !fn(img) {
			return nil
		}
	}
	return nil
}

// ImageHash returns a canonical digest of a crash image: pages are
// visited in ascending page-number order and all-zero pages are skipped,
// so two images differing only in materialized-but-untouched pages hash
// identically. The digest is byte-stable across runs, worker counts and
// map iteration orders — it is the dedup key for exhaustive state counts
// and the membership key for the injector cross-check.
func ImageHash(img map[uint64][]byte) [32]byte {
	pns := make([]uint64, 0, len(img))
	for pn, p := range img {
		if allZero(p) {
			continue
		}
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	h := sha256.New()
	var num [8]byte
	for _, pn := range pns {
		put64(num[:], pn)
		h.Write(num[:])
		h.Write(img[pn])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
