package nvm

// Cache is a set-associative cache model with LRU replacement, used for
// the simulated L1D and shared L2 of Table II. It tracks tags only (data
// lives in the devices); lookups report hit/miss so the memory hierarchy
// can charge the right latency.
type Cache struct {
	sets     []cacheSet
	setMask  uint64
	lineBits uint
	hits     uint64
	misses   uint64
}

type cacheSet struct {
	tags  []uint64 // tag | valid bit in bit 63 is avoided; use separate valid
	valid []bool
	lru   []uint64 // larger = more recent
	tick  uint64
}

// NewCache builds a cache of the given total size, associativity and line
// size (all in bytes; sizes must be powers of two).
func NewCache(size, ways, line int) *Cache {
	nsets := size / (ways * line)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{
		sets:    make([]cacheSet, nsets),
		setMask: uint64(nsets - 1),
	}
	for l := line; l > 1; l >>= 1 {
		c.lineBits++
	}
	for i := range c.sets {
		c.sets[i] = cacheSet{
			tags:  make([]uint64, ways),
			valid: make([]bool, ways),
			lru:   make([]uint64, ways),
		}
	}
	return c
}

// Access looks up address a, inserting the line on a miss, and reports
// whether it hit.
func (c *Cache) Access(a uint64) bool {
	lineAddr := a >> c.lineBits
	set := &c.sets[lineAddr&c.setMask]
	tag := lineAddr >> uint(popcountMask(c.setMask))
	set.tick++
	for i, t := range set.tags {
		if set.valid[i] && t == tag {
			set.lru[i] = set.tick
			c.hits++
			return true
		}
	}
	c.misses++
	// Fill: evict LRU way.
	victim := 0
	for i := range set.tags {
		if !set.valid[i] {
			victim = i
			break
		}
		if set.lru[i] < set.lru[victim] {
			victim = i
		}
	}
	set.tags[victim] = tag
	set.valid[victim] = true
	set.lru[victim] = set.tick
	return false
}

// InvalidateAll empties the cache (used on randomization remaps, which
// change the virtual placement of PMO lines in a virtually-indexed model).
func (c *Cache) InvalidateAll() {
	for i := range c.sets {
		for j := range c.sets[i].valid {
			c.sets[i].valid[j] = false
		}
	}
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns the hit fraction, or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

func popcountMask(m uint64) int {
	n := 0
	for m != 0 {
		n += int(m & 1)
		m >>= 1
	}
	return n
}
