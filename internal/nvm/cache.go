package nvm

// Cache is a set-associative cache model with LRU replacement, used for
// the simulated L1D and shared L2 of Table II (and, in internal/paging,
// for the two TLB levels). It tracks tags only (data lives in the
// devices); lookups report hit/miss so the memory hierarchy can charge
// the right latency.
//
// The representation is tuned for the simulator's hottest loop (every
// simulated memory access walks up to four of these models):
//
//   - A way is a 16-byte {tag, lru} pair and the ways of one set are
//     contiguous, so the tag scan of an 8-way set touches two cache
//     lines and the common most-recently-used probe touches one.
//   - Validity is one bit per way in a per-set header, so InvalidateAll
//     is a short sweep over the headers rather than over every way.
//   - The LRU clock is a single global tick. LRU only compares ticks
//     within one set, and a global monotone clock orders a set's
//     accesses exactly as a per-set clock would, so the victim choice —
//     and therefore every hit/miss outcome — is unchanged.
//
// Replacement semantics are exactly the classic model: hit updates LRU;
// miss fills the first invalid way, else the least-recently-used one
// (ties to the lowest index).
type Cache struct {
	ways []cway
	sets []cset

	nways    int
	setMask  uint64
	lineBits uint
	tagShift uint
	tick     uint64
	epoch    uint64
	hits     uint64
	misses   uint64
}

// cway is one cache way: the stored tag and its last-use tick.
type cway struct {
	tag uint64
	lru uint64
}

// cset is a set header: the most-recently-used way index, a validity
// bitmask over the set's ways, and the invalidation epoch the mask was
// last reset under (see InvalidateAll).
type cset struct {
	mru   int32
	valid uint32
	epoch uint64
}

// NewCache builds a cache of the given total size, associativity and line
// size (all in bytes; sizes must be powers of two, ways at most 32).
func NewCache(size, ways, line int) *Cache {
	if ways > 32 {
		panic("nvm: cache associativity above 32 not supported")
	}
	nsets := size / (ways * line)
	if nsets < 1 {
		nsets = 1
	}
	c := &Cache{
		ways:    make([]cway, nsets*ways),
		sets:    make([]cset, nsets),
		nways:   ways,
		setMask: uint64(nsets - 1),
	}
	for l := line; l > 1; l >>= 1 {
		c.lineBits++
	}
	c.tagShift = uint(popcountMask(c.setMask))
	return c
}

// Access looks up address a, inserting the line on a miss, and reports
// whether it hit.
func (c *Cache) Access(a uint64) bool {
	lineAddr := a >> c.lineBits
	set := int(lineAddr & c.setMask)
	tag := lineAddr >> c.tagShift
	c.tick++
	tick := c.tick
	s := &c.sets[set]
	base := set * c.nways
	if s.epoch != c.epoch {
		// A whole-cache invalidation happened since this set was last
		// touched: reset its validity mask lazily.
		s.epoch = c.epoch
		s.valid = 0
	}

	// Most-recently-used way first: consecutive accesses to one line are
	// the common case in the element loops the simulator runs.
	if m := int(s.mru); s.valid&(1<<uint(m)) != 0 {
		if w := &c.ways[base+m]; w.tag == tag {
			w.lru = tick
			c.hits++
			return true
		}
	}

	// One pass finds both a hit and the miss victim. Invalid ways scan
	// as LRU 0 (valid ticks start at 1) with first-invalid-wins, so the
	// victim is the first invalid way, else the least-recently-used one
	// (ties to the lowest index) — exactly the classic sweep's choice.
	ways := c.ways[base : base+c.nways]
	victim, vlru := 0, ^uint64(0)
	for i := range ways {
		if s.valid&(1<<uint(i)) == 0 {
			if vlru != 0 {
				victim, vlru = i, 0
			}
			continue
		}
		if ways[i].tag == tag {
			ways[i].lru = tick
			s.mru = int32(i)
			c.hits++
			return true
		}
		if ways[i].lru < vlru {
			victim, vlru = i, ways[i].lru
		}
	}
	ways[victim] = cway{tag: tag, lru: tick}
	s.valid |= 1 << uint(victim)
	s.mru = int32(victim)
	c.misses++
	return false
}

// InvalidateAll empties the cache (used on randomization remaps, which
// change the virtual placement of PMO lines in a virtually-indexed model).
// It is O(1): each set clears its validity mask lazily on its next access
// when it notices the cache epoch moved.
func (c *Cache) InvalidateAll() {
	c.epoch++
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns the hit fraction, or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	t := c.hits + c.misses
	if t == 0 {
		return 0
	}
	return float64(c.hits) / float64(t)
}

func popcountMask(m uint64) int {
	n := 0
	for m != 0 {
		n += int(m & 1)
		m >>= 1
	}
	return n
}
