package nvm

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDeviceReadWriteRoundTrip(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	msg := []byte("persistent memory object")
	if err := d.WriteAt(msg, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestDeviceCrossPageAccess(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	// Write spanning a page boundary.
	msg := make([]byte, 5000)
	for i := range msg {
		msg[i] = byte(i)
	}
	off := uint64(pageSize - 100)
	if err := d.WriteAt(msg, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := d.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("cross-page round trip mismatch")
	}
	if d.FootprintPages() < 2 {
		t.Fatalf("expected at least 2 materialized pages, got %d", d.FootprintPages())
	}
}

func TestDeviceUnwrittenReadsZero(t *testing.T) {
	d := NewDevice(DRAM, 1<<16)
	b := make([]byte, 64)
	b[0] = 0xff
	if err := d.ReadAt(b, 4096); err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, v)
		}
	}
}

func TestDeviceOutOfRange(t *testing.T) {
	d := NewDevice(NVM, 1024)
	if err := d.WriteAt([]byte{1}, 1024); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := d.ReadAt(make([]byte, 8), 1020); err == nil {
		t.Fatal("expected out-of-range error for straddling read")
	}
	if err := d.WriteAt([]byte{1}, ^uint64(0)); err == nil {
		t.Fatal("expected overflow to be rejected")
	}
}

func TestDeviceWord(t *testing.T) {
	d := NewDevice(NVM, 1<<16)
	if err := d.Write8(40, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := d.Read8(40)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("got %#x", v)
	}
}

func TestDeviceSnapshotRestore(t *testing.T) {
	d := NewDevice(NVM, 1<<16)
	d.Write8(0, 111)
	snap := d.Snapshot()
	d.Write8(0, 222)
	d.Write8(8192, 333)
	d.Restore(snap)
	if v, _ := d.Read8(0); v != 111 {
		t.Fatalf("restored value = %d, want 111", v)
	}
	if v, _ := d.Read8(8192); v != 0 {
		t.Fatalf("page written after snapshot should be gone, got %d", v)
	}
}

func TestDeviceZero(t *testing.T) {
	d := NewDevice(NVM, 1<<16)
	for off := uint64(0); off < 3*pageSize; off += 8 {
		d.Write8(off, off+1)
	}
	if err := d.Zero(100, 2*pageSize); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Read8(96); v == 0 {
		t.Fatal("byte before zero range was cleared")
	}
	if v, _ := d.Read8(104); v != 0 {
		t.Fatalf("zeroed word = %d", v)
	}
}

func TestDeviceCounters(t *testing.T) {
	d := NewDevice(NVM, 1<<16)
	d.Write8(0, 1)
	d.Read8(0)
	d.Read8(0)
	if d.Writes != 8 || d.Reads != 16 {
		t.Fatalf("counters = %d writes %d reads, want 8/16", d.Writes, d.Reads)
	}
}

// Property: arbitrary word writes at arbitrary aligned offsets read back.
func TestDeviceWordProperty(t *testing.T) {
	d := NewDevice(NVM, 1<<24)
	f := func(off uint32, v uint64) bool {
		o := uint64(off) % (1<<24 - 8)
		if err := d.Write8(o, v); err != nil {
			return false
		}
		got, err := d.Read8(o)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(32<<10, 8, 64)
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access should hit")
	}
	if !c.Access(63) {
		t.Fatal("same-line access should hit")
	}
	if c.Access(64) {
		t.Fatal("next line should miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 sets x 2 ways x 64B lines = 256 bytes.
	c := NewCache(256, 2, 64)
	// Fill set 0 with two lines: addresses 0 and 128 map to set 0.
	c.Access(0)
	c.Access(128)
	c.Access(0) // make 0 most-recent
	// A third line in set 0 must evict 128 (LRU).
	c.Access(256)
	if !c.Access(0) {
		t.Fatal("MRU line was evicted")
	}
	if c.Access(128) {
		t.Fatal("LRU line should have been evicted")
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := NewCache(1<<10, 4, 64)
	c.Access(0)
	c.InvalidateAll()
	if c.Access(0) {
		t.Fatal("access after invalidate should miss")
	}
}

func TestCacheHitRateOnLoop(t *testing.T) {
	c := NewCache(32<<10, 8, 64)
	// Working set that fits: expect high hit rate after warmup.
	for pass := 0; pass < 10; pass++ {
		for a := uint64(0); a < 16<<10; a += 64 {
			c.Access(a)
		}
	}
	if c.HitRate() < 0.85 {
		t.Fatalf("hit rate %f too low for fitting working set", c.HitRate())
	}
}

func TestCacheRandomizedNoCrash(t *testing.T) {
	c := NewCache(8<<10, 4, 64)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		c.Access(r.Uint64() % (1 << 40))
	}
	hits, misses := c.Stats()
	if hits+misses != 10000 {
		t.Fatalf("accesses lost: %d", hits+misses)
	}
}
