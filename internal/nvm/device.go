// Package nvm models the physical memory devices of the simulated machine:
// a byte-addressable persistent memory (NVM) device and a DRAM device.
// Storage is sparse (pages are materialized on first touch) so simulations
// can declare the paper's 1 GB PMOs without allocating 1 GB. The NVM
// device supports snapshot and restore, which the crash-consistency tests
// use to emulate power failure, and counts reads/writes for the
// wear-related statistics. An optional persist buffer (persist.go) models
// the volatile store path to persistent media: while enabled, writes only
// become durable once their cache line is flushed and a fence drains it,
// and CrashImage materializes the state a power failure would leave.
package nvm

import (
	"errors"
	"fmt"
)

// pageSize is the granularity of sparse storage allocation. It matches the
// virtual memory page size so device offsets and pages line up.
const pageSize = 4096

// Kind discriminates device technologies, which differ in access latency.
type Kind int

// Device technologies.
const (
	// DRAM is volatile memory (120-cycle latency in Table II).
	DRAM Kind = iota
	// NVM is persistent memory (360-cycle latency in Table II).
	NVM
)

// String returns the technology name.
func (k Kind) String() string {
	if k == DRAM {
		return "DRAM"
	}
	return "NVM"
}

// maxTablePages bounds the direct page-table representation: devices of
// up to this many pages (4 GB at 4 KB pages, an 8 MB pointer table) index
// their pages through a flat slice; larger devices fall back to the
// sparse map. Both are materialize-on-first-touch.
const maxTablePages = 1 << 20

// Device is one sparse byte-addressable memory device.
type Device struct {
	kind  Kind
	size  uint64
	pages map[uint64][]byte // sparse store (nil when table is in use)
	table [][]byte          // direct page table (nil for huge devices)
	// npages counts materialized pages under the table representation.
	npages int

	// lastPN/lastPage cache the most recently touched materialized page,
	// skipping the page-map lookup on the word fast paths. The cache is
	// dropped whenever a page can disappear (Zero, Restore); page
	// materialization only adds entries and never moves existing ones, so
	// a cached pointer otherwise stays valid.
	lastPN   uint64
	lastPage []byte

	// buf, when non-nil, is the volatile persist buffer: writes stay
	// volatile until flushed and fenced (see EnablePersistBuffer).
	buf *PersistBuffer

	// Reads and Writes count byte-granularity accesses.
	Reads, Writes uint64
}

// ErrOutOfRange is returned for accesses beyond the device size.
var ErrOutOfRange = errors.New("nvm: access out of device range")

// NewDevice creates a device of the given technology and byte size.
func NewDevice(kind Kind, size uint64) *Device {
	d := &Device{kind: kind, size: size}
	if n := (size + pageSize - 1) / pageSize; n <= maxTablePages {
		d.table = make([][]byte, n)
	} else {
		d.pages = make(map[uint64][]byte)
	}
	return d
}

// Kind returns the device technology.
func (d *Device) Kind() Kind { return d.kind }

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// Persistent reports whether the device retains contents across a crash.
func (d *Device) Persistent() bool { return d.kind == NVM }

// page returns the backing page for offset, materializing it if needed.
func (d *Device) page(off uint64, materialize bool) []byte {
	pn := off / pageSize
	if d.table != nil {
		p := d.table[pn]
		if p == nil && materialize {
			p = make([]byte, pageSize)
			d.table[pn] = p
			d.npages++
		}
		return p
	}
	p := d.pages[pn]
	if p == nil && materialize {
		p = make([]byte, pageSize)
		d.pages[pn] = p
	}
	return p
}

// pageFast is page() with the map lookup shortcut: table-backed devices
// already resolve in one indexed load, and map-backed devices go through
// the last-page cache first.
func (d *Device) pageFast(off uint64, materialize bool) []byte {
	pn := off / pageSize
	if d.table != nil {
		p := d.table[pn]
		if p == nil && materialize {
			p = make([]byte, pageSize)
			d.table[pn] = p
			d.npages++
		}
		return p
	}
	if d.lastPage != nil && pn == d.lastPN {
		return d.lastPage
	}
	p := d.pages[pn]
	if p == nil && materialize {
		p = make([]byte, pageSize)
		d.pages[pn] = p
	}
	if p != nil {
		d.lastPN, d.lastPage = pn, p
	}
	return p
}

func (d *Device) check(off uint64, n int) error {
	if n < 0 || off+uint64(n) > d.size || off+uint64(n) < off {
		return fmt.Errorf("%w: off=%d len=%d size=%d", ErrOutOfRange, off, n, d.size)
	}
	return nil
}

// ReadAt copies len(b) bytes starting at offset off into b.
func (d *Device) ReadAt(b []byte, off uint64) error {
	if err := d.check(off, len(b)); err != nil {
		return err
	}
	d.Reads += uint64(len(b))
	d.readRaw(b, off)
	return nil
}

// readRaw copies device bytes without touching the access counters (the
// persist buffer uses it to capture durable line content).
func (d *Device) readRaw(b []byte, off uint64) {
	for len(b) > 0 {
		in := off % pageSize
		n := pageSize - in
		if n > uint64(len(b)) {
			n = uint64(len(b))
		}
		if p := d.page(off, false); p != nil {
			copy(b[:n], p[in:in+n])
		} else {
			for i := range b[:n] {
				b[i] = 0
			}
		}
		b = b[n:]
		off += n
	}
}

// WriteAt copies b into the device starting at offset off.
func (d *Device) WriteAt(b []byte, off uint64) error {
	if err := d.check(off, len(b)); err != nil {
		return err
	}
	d.Writes += uint64(len(b))
	if d.buf != nil {
		d.buf.dirty(off, b)
	}
	for len(b) > 0 {
		in := off % pageSize
		n := pageSize - in
		if n > uint64(len(b)) {
			n = uint64(len(b))
		}
		p := d.page(off, true)
		copy(p[in:in+n], b[:n])
		b = b[n:]
		off += n
	}
	return nil
}

// Read8 reads a little-endian 64-bit word at off. Words contained in one
// page are served straight from the backing page (the common case: PMO
// element accesses are 8-byte aligned); page-straddling words take the
// general ReadAt path. Both paths count the same 8 read bytes.
func (d *Device) Read8(off uint64) (uint64, error) {
	if in := off % pageSize; in <= pageSize-8 {
		if err := d.check(off, 8); err != nil {
			return 0, err
		}
		d.Reads += 8
		p := d.pageFast(off, false)
		if p == nil {
			return 0, nil
		}
		return le64(p[in : in+8]), nil
	}
	var b [8]byte
	if err := d.ReadAt(b[:], off); err != nil {
		return 0, err
	}
	return le64(b[:]), nil
}

// Write8 writes a little-endian 64-bit word at off. Like Read8 it writes
// in-page words directly; with a persist buffer enabled it takes the
// general path, which routes the bytes through the volatile line model.
func (d *Device) Write8(off uint64, v uint64) error {
	if in := off % pageSize; in <= pageSize-8 && d.buf == nil {
		if err := d.check(off, 8); err != nil {
			return err
		}
		d.Writes += 8
		put64(d.pageFast(off, true)[in:in+8], v)
		return nil
	}
	var b [8]byte
	put64(b[:], v)
	return d.WriteAt(b[:], off)
}

// Zero clears n bytes starting at off, dropping whole pages when possible.
func (d *Device) Zero(off uint64, n uint64) error {
	if err := d.check(off, int(n)); err != nil {
		return err
	}
	d.lastPage = nil // whole pages may be dropped below
	var zeros []byte
	for n > 0 {
		in := off % pageSize
		m := pageSize - in
		if m > n {
			m = n
		}
		if d.buf != nil {
			if zeros == nil {
				zeros = make([]byte, pageSize)
			}
			d.buf.dirty(off, zeros[:m])
		}
		if in == 0 && m == pageSize {
			d.dropPage(off / pageSize)
		} else if p := d.page(off, false); p != nil {
			for i := in; i < in+m; i++ {
				p[i] = 0
			}
		}
		off += m
		n -= m
	}
	return nil
}

// dropPage discards a whole materialized page.
func (d *Device) dropPage(pn uint64) {
	if d.table != nil {
		if d.table[pn] != nil {
			d.table[pn] = nil
			d.npages--
		}
		return
	}
	delete(d.pages, pn)
}

// Snapshot captures the full device contents. Used to emulate the state
// that survives a crash (for NVM) in crash-consistency tests.
func (d *Device) Snapshot() map[uint64][]byte {
	s := make(map[uint64][]byte, d.FootprintPages())
	if d.table != nil {
		for pn, p := range d.table {
			if p == nil {
				continue
			}
			cp := make([]byte, pageSize)
			copy(cp, p)
			s[uint64(pn)] = cp
		}
		return s
	}
	for pn, p := range d.pages {
		cp := make([]byte, pageSize)
		copy(cp, p)
		s[pn] = cp
	}
	return s
}

// Restore replaces the device contents with a snapshot. It models a
// power cycle, so an enabled persist buffer empties: the restored bytes
// are durable and no volatile lines survive.
func (d *Device) Restore(s map[uint64][]byte) {
	d.lastPage = nil
	if d.table != nil {
		clear(d.table)
		d.npages = 0
		for pn, p := range s {
			cp := make([]byte, pageSize)
			copy(cp, p)
			d.table[pn] = cp
			d.npages++
		}
	} else {
		d.pages = make(map[uint64][]byte, len(s))
		for pn, p := range s {
			cp := make([]byte, pageSize)
			copy(cp, p)
			d.pages[pn] = cp
		}
	}
	if d.buf != nil {
		d.buf.reset()
	}
}

// FootprintPages returns the number of materialized pages.
func (d *Device) FootprintPages() int {
	if d.table != nil {
		return d.npages
	}
	return len(d.pages)
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
