package nvm

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// DefaultLineSize is the persistence granularity of the buffer model: one
// cache line, matching the clwb/clflushopt granularity of real hardware.
const DefaultLineSize = 64

// EventKind discriminates persist events observed by the buffer.
type EventKind int

// Persist event kinds.
const (
	// FlushEvent is a cache-line writeback request (clwb).
	FlushEvent EventKind = iota
	// FenceEvent is a persist barrier (sfence) draining prior flushes.
	FenceEvent
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case FlushEvent:
		return "flush"
	case FenceEvent:
		return "fence"
	default:
		return "store" // StoreEvent (trace-only, see trace.go)
	}
}

// Event is one persist operation issued against the device. Index is the
// event's ordinal in the global flush+fence stream, so a crash injector
// can name "the k-th persist event of the run" deterministically.
type Event struct {
	// Kind is the operation.
	Kind EventKind
	// Index is the global event ordinal (flushes and fences share one
	// counter).
	Index uint64
}

// lineState tracks one cache line held in the volatile store buffer.
type lineState struct {
	// durable is the line's content as the persistent medium last saw it
	// (captured before the first buffered write dirtied the line).
	durable []byte
	// wb is the content of the line's in-flight writeback — the bytes a
	// Flush captured — or nil when no writeback is outstanding. A store
	// after the flush dirties the cache copy but does NOT cancel the
	// writeback: clwb/clflushopt is ordered against same-line stores, so
	// the issued writeback still carries wb to the medium at the next
	// fence. (The pre-litmus model cleared the flush on re-dirty, which
	// the Px86 oracle flagged as a model bug: it let a fenced value
	// vanish while later stores persisted.)
	wb []byte
}

// PersistBuffer is a volatile, line-granular store buffer layered over a
// Device. While enabled, writes land in the device's pages (the cache
// view, which loads observe) but are NOT considered durable until a
// writeback of their line (Flush) drains at an ordering fence (Fence).
// CrashImage materializes the durable state at any instant: the cache
// view with every dirty line reverted to its last-durable content, and —
// under relaxed persist ordering — an adversarial subset of
// flushed-but-unfenced lines reverted as well.
//
// The buffer is a semantic model, not a timing model: flush and fence
// cycle costs remain the caller's business (internal/txn charges them via
// its CostSink exactly as before).
type PersistBuffer struct {
	dev  *Device
	line uint64

	pending map[uint64]*lineState // line number -> buffered state

	events  uint64
	flushes uint64
	fences  uint64
	drained uint64
	hook    func(Event)
	trace   []TraceOp // replayable persist-op log (nil = off; trace.go)

	// Obs, when set, records flush/fence/drain events as instants; NowFn
	// supplies the issuing thread's simulated clock. Occupancy, when set,
	// samples the buffered-line count at every persist event.
	Obs       *obs.Track
	NowFn     func() uint64
	Occupancy *obs.Hist
}

// EnablePersistBuffer layers a persist buffer with the given line size
// (0 selects DefaultLineSize) over the device. Content written before
// enabling is treated as already durable. The line size must be a power
// of two no larger than a page.
func (d *Device) EnablePersistBuffer(lineSize uint64) *PersistBuffer {
	if lineSize == 0 {
		lineSize = DefaultLineSize
	}
	if lineSize&(lineSize-1) != 0 || lineSize > pageSize {
		panic(fmt.Sprintf("nvm: persist-buffer line size %d must be a power of two <= %d", lineSize, pageSize))
	}
	b := &PersistBuffer{dev: d, line: lineSize, pending: make(map[uint64]*lineState)}
	d.buf = b
	return b
}

// PersistBuffer returns the enabled buffer, or nil when writes are
// modeled as immediately durable.
func (d *Device) PersistBuffer() *PersistBuffer { return d.buf }

// Flush issues a writeback for every line overlapping [off, off+n) — a
// no-op without an enabled buffer.
func (d *Device) Flush(off, n uint64) {
	if d.buf != nil && n > 0 {
		d.buf.flush(off, n)
	}
}

// Fence drains all issued writebacks (persist barrier) — a no-op without
// an enabled buffer.
func (d *Device) Fence() {
	if d.buf != nil {
		d.buf.fence()
	}
}

// CrashImage returns the durable contents at this instant (see
// PersistBuffer.CrashImage). Without a buffer every write is durable and
// the image equals Snapshot.
func (d *Device) CrashImage(dropFlushed func(line uint64) bool) map[uint64][]byte {
	if d.buf == nil {
		return d.Snapshot()
	}
	return d.buf.CrashImage(dropFlushed)
}

// SetEventHook registers h to observe every persist event. The hook runs
// at event entry — before a flush marks lines or a fence drains them —
// so a crash captured from the hook models power failing just before the
// event takes effect.
func (b *PersistBuffer) SetEventHook(h func(Event)) { b.hook = h }

// LineSize returns the buffer's persistence granularity.
func (b *PersistBuffer) LineSize() uint64 { return b.line }

// Events returns the number of persist events (flushes + fences) issued.
func (b *PersistBuffer) Events() uint64 { return b.events }

// Flushes returns the number of Flush calls.
func (b *PersistBuffer) Flushes() uint64 { return b.flushes }

// Fences returns the number of Fence calls.
func (b *PersistBuffer) Fences() uint64 { return b.fences }

// DrainedLines returns the number of lines made durable by fences.
func (b *PersistBuffer) DrainedLines() uint64 { return b.drained }

// PendingLines returns the number of buffered (not yet durable) lines.
func (b *PersistBuffer) PendingLines() int { return len(b.pending) }

// UnfencedFlushedLines returns the sorted line numbers that were flushed
// but have not yet reached a fence — the lines a relaxed-ordering crash
// may or may not retain.
func (b *PersistBuffer) UnfencedFlushedLines() []uint64 {
	return b.AppendUnfenced(nil)
}

// AppendUnfenced appends the line numbers with an in-flight writeback
// (flushed, not yet fenced) to dst in ascending order and returns the
// extended slice. Passing a reused dst[:0] makes repeated calls
// allocation-stable, which the exhaustive enumerator relies on inside
// its per-event loop; the order is the same order CrashImage consults
// the drop callback in, so a bitmask over this slice addresses drop
// decisions deterministically.
func (b *PersistBuffer) AppendUnfenced(dst []uint64) []uint64 {
	start := len(dst)
	for ln, st := range b.pending {
		if st.wb != nil {
			dst = append(dst, ln)
		}
	}
	// Insertion sort: the set is small and sort.Slice's closure would
	// allocate, defeating the reused-dst contract.
	tail := dst[start:]
	for i := 1; i < len(tail); i++ {
		for j := i; j > 0 && tail[j] < tail[j-1]; j-- {
			tail[j], tail[j-1] = tail[j-1], tail[j]
		}
	}
	return dst
}

// dirty records an impending write of data at off, capturing the durable
// content of every newly-dirtied line first. A "silent store" — bytes
// identical to the line's current content — does not dirty a clean line
// (the store changes nothing durable-visible); this keeps the
// mirror-write idiom of the workloads (log write + charged runtime store
// of the same value) from permanently pinning lines in the buffer. A
// store to a line with an in-flight writeback leaves that writeback
// untouched: flushes are ordered against same-line stores, so the next
// fence still drains the captured bytes.
func (b *PersistBuffer) dirty(off uint64, data []byte) {
	n := uint64(len(data))
	if n == 0 {
		return
	}
	b.traceStore(off, data)
	first := off / b.line
	last := (off + n - 1) / b.line
	for ln := first; ln <= last; ln++ {
		if b.pending[ln] != nil {
			continue // durable copy and any in-flight writeback stand
		}
		lineStart := ln * b.line
		lo, hi := lineStart, lineStart+b.line
		if off > lo {
			lo = off
		}
		if off+n < hi {
			hi = off + n
		}
		seg := data[lo-off : hi-off]
		cur := make([]byte, b.line)
		b.dev.readRaw(cur, lineStart)
		if bytesEqual(seg, cur[lo-lineStart:hi-lineStart]) {
			continue // silent store to a clean line
		}
		b.pending[ln] = &lineState{durable: cur}
	}
}

// flush issues a writeback for every line overlapping [off, off+n),
// capturing each line's content at this instant. Re-flushing a line
// replaces its in-flight capture with the newer content.
func (b *PersistBuffer) flush(off, n uint64) {
	b.emit(FlushEvent)
	b.traceOp(FlushEvent, off, n)
	b.flushes++
	first := off / b.line
	last := (off + n - 1) / b.line
	for ln := first; ln <= last; ln++ {
		if st := b.pending[ln]; st != nil {
			if st.wb == nil {
				st.wb = make([]byte, b.line)
			}
			b.dev.readRaw(st.wb, ln*b.line)
		}
	}
}

// fence drains every in-flight writeback: the bytes each flush captured
// become durable. A line whose cache copy was re-dirtied after the flush
// stays pending (its newer content is still volatile), but its durable
// content advances to the writeback — the flush was issued and a persist
// barrier completes it, whatever stores came later.
func (b *PersistBuffer) fence() {
	b.emit(FenceEvent)
	b.traceOp(FenceEvent, 0, 0)
	b.fences++
	var n uint64
	for ln, st := range b.pending {
		if st.wb == nil {
			continue
		}
		cur := make([]byte, b.line)
		b.dev.readRaw(cur, ln*b.line)
		if bytesEqual(cur, st.wb) {
			delete(b.pending, ln) // cache copy matches the medium: clean
		} else {
			st.durable, st.wb = st.wb, nil // still dirty past the drain
		}
		b.drained++
		n++
	}
	if n > 0 {
		b.Obs.Instant(b.now(), obs.CatNVM, "drain", int64(n))
	}
}

func (b *PersistBuffer) emit(k EventKind) {
	if b.hook != nil {
		b.hook(Event{Kind: k, Index: b.events})
	}
	if b.Occupancy != nil {
		b.Occupancy.Observe(uint64(len(b.pending)))
	}
	b.Obs.Instant(b.now(), obs.CatNVM, k.String(), int64(len(b.pending)))
	b.events++
}

// now returns the issuing thread's simulated clock, or 0 when no clock
// source is wired (events still order correctly by Seq within a track).
func (b *PersistBuffer) now() uint64 {
	if b.NowFn != nil {
		return b.NowFn()
	}
	return 0
}

// reset empties the buffer (a power cycle loses the volatile lines).
func (b *PersistBuffer) reset() {
	b.pending = make(map[uint64]*lineState)
}

// CrashImage materializes the post-crash durable state: the device's
// current pages with every dirty, unflushed line reverted to its durable
// content. dropFlushed, when non-nil, is consulted (in ascending line
// order, so seeded decisions are deterministic) for each line with an
// in-flight writeback; returning true reverts that line to its durable
// content, modeling relaxed persist ordering where the writeback had not
// drained when power failed, while returning false lands the bytes the
// flush captured (which may be older than the cache copy if the line
// was re-dirtied after the flush). A nil dropFlushed retains every
// in-flight writeback (strict drain-on-flush ordering).
//
// This is the single materialization path: the sampling injector
// (internal/crash) and the exhaustive enumerator (ForEachCrashImage,
// internal/litmus) both land here, so the two cannot drift.
func (b *PersistBuffer) CrashImage(dropFlushed func(line uint64) bool) map[uint64][]byte {
	img := b.dev.Snapshot()
	lines := make([]uint64, 0, len(b.pending))
	for ln := range b.pending {
		lines = append(lines, ln)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, ln := range lines {
		st := b.pending[ln]
		content := st.durable
		if st.wb != nil && (dropFlushed == nil || !dropFlushed(ln)) {
			content = st.wb
		}
		off := ln * b.line
		pn := off / pageSize
		p := img[pn]
		if p == nil {
			p = make([]byte, pageSize)
			img[pn] = p
		}
		in := off % pageSize
		copy(p[in:in+b.line], content)
	}
	return img
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
