package nvm

import (
	"testing"

	"repro/internal/obs"
)

func img8(t *testing.T, img map[uint64][]byte, off uint64) uint64 {
	t.Helper()
	d := NewDevice(NVM, 1<<20)
	d.Restore(img)
	v, err := d.Read8(off)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPersistBufferUnflushedWritesAreNotDurable(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.Write8(0, 1) // pre-buffer content is durable
	d.EnablePersistBuffer(64)
	d.Write8(0, 2)
	if v, _ := d.Read8(0); v != 2 {
		t.Fatalf("cache view = %d, want the newest value 2", v)
	}
	if v := img8(t, d.CrashImage(nil), 0); v != 1 {
		t.Fatalf("durable view = %d, want pre-buffer 1", v)
	}
}

func TestPersistBufferFlushAloneIsNotDurable(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	d.Write8(128, 7)
	d.Flush(128, 8)
	if v := img8(t, d.CrashImage(nil), 128); v != 7 {
		// Strict model: a retained flush is durable when not dropped.
		t.Fatalf("flushed line dropped under nil policy: %d", v)
	}
	// Under adversarial ordering the unfenced flush may be dropped.
	if v := img8(t, d.CrashImage(func(uint64) bool { return true }), 128); v != 0 {
		t.Fatalf("dropped flushed line still durable: %d", v)
	}
	if got := b.UnfencedFlushedLines(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("unfenced flushed lines = %v, want [2]", got)
	}
}

func TestPersistBufferFenceDrains(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	d.Write8(0, 42)
	d.Flush(0, 8)
	d.Fence()
	if b.PendingLines() != 0 {
		t.Fatalf("pending lines after fence = %d", b.PendingLines())
	}
	// Even an adversarial crash keeps fenced data.
	if v := img8(t, d.CrashImage(func(uint64) bool { return true }), 0); v != 42 {
		t.Fatalf("fenced write lost: %d", v)
	}
	if b.DrainedLines() != 1 || b.Flushes() != 1 || b.Fences() != 1 {
		t.Fatalf("stats = drained %d flushes %d fences %d", b.DrainedLines(), b.Flushes(), b.Fences())
	}
}

// TestPersistBufferRedirtyKeepsWritebackInFlight is the regression test
// for the model bug the litmus oracle found: a store to a line after its
// flush used to cancel the in-flight writeback entirely, so a fence
// could complete while the flushed value silently vanished — letting
// later persists land with the earlier, fence-ordered value lost, which
// Px86 forbids (clwb/clflushopt is ordered against same-line stores).
// The writeback must drain the bytes the flush captured; the newer store
// stays volatile until its own flush.
func TestPersistBufferRedirtyKeepsWritebackInFlight(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.EnablePersistBuffer(64)
	d.Write8(0, 1)
	d.Flush(0, 8)
	d.Write8(0, 2) // different bytes: the cache copy is dirty again
	d.Fence()      // ...but the issued writeback of 1 still drains
	if v := img8(t, d.CrashImage(nil), 0); v != 1 {
		t.Fatalf("fence lost the in-flight writeback: durable = %d, want 1", v)
	}
	if v, _ := d.Read8(0); v != 2 {
		t.Fatalf("cache view = %d, want 2", v)
	}
	// The newer value becomes durable only via its own flush+fence.
	d.Flush(0, 8)
	d.Fence()
	if v := img8(t, d.CrashImage(nil), 0); v != 2 {
		t.Fatalf("second flush+fence did not drain: durable = %d", v)
	}
}

// TestPersistBufferRedirtiedWritebackMayStillDrop checks the relaxed
// side: before the fence the re-dirtied line's image is either the
// pre-flush durable value (writeback not drained) or the flush capture —
// never the newer volatile store.
func TestPersistBufferRedirtiedWritebackMayStillDrop(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.EnablePersistBuffer(64)
	d.Write8(0, 1)
	d.Flush(0, 8)
	d.Write8(0, 2)
	if v := img8(t, d.CrashImage(nil), 0); v != 1 {
		t.Fatalf("kept writeback = %d, want the flush capture 1", v)
	}
	if v := img8(t, d.CrashImage(func(uint64) bool { return true }), 0); v != 0 {
		t.Fatalf("dropped writeback = %d, want pre-flush 0", v)
	}
}

func TestPersistBufferSilentStoreKeepsFlushInFlight(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.EnablePersistBuffer(64)
	d.Write8(0, 9)
	d.Flush(0, 8)
	d.Write8(0, 9) // identical bytes: writeback stays in flight
	d.Fence()
	if v := img8(t, d.CrashImage(nil), 0); v != 9 {
		t.Fatalf("silent store blocked the drain: durable = %d", v)
	}
}

func TestPersistBufferEventHookOrderAndIndices(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	var got []Event
	b.SetEventHook(func(e Event) { got = append(got, e) })
	d.Write8(0, 1)
	d.Flush(0, 8)
	d.Fence()
	d.Flush(64, 8)
	want := []Event{{FlushEvent, 0}, {FenceEvent, 1}, {FlushEvent, 2}}
	if len(got) != len(want) {
		t.Fatalf("events = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, got[i], want[i])
		}
	}
	if b.Events() != 3 {
		t.Fatalf("Events() = %d", b.Events())
	}
}

func TestPersistBufferHookSeesPreEventState(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	d.Write8(0, 5)
	d.Flush(0, 8)
	var durableAtFence uint64
	b.SetEventHook(func(e Event) {
		if e.Kind == FenceEvent {
			durableAtFence = img8(t, d.CrashImage(func(uint64) bool { return true }), 0)
		}
	})
	d.Fence()
	if durableAtFence != 0 {
		t.Fatalf("crash at fence entry saw post-fence state: %d", durableAtFence)
	}
}

func TestPersistBufferLineGranularity(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.EnablePersistBuffer(64)
	d.Write8(0, 1)  // line 0
	d.Write8(64, 2) // line 1
	d.Flush(0, 8)   // only line 0
	d.Fence()
	img := d.CrashImage(nil)
	if v := img8(t, img, 0); v != 1 {
		t.Fatalf("line 0 = %d", v)
	}
	if v := img8(t, img, 64); v != 0 {
		t.Fatalf("line 1 leaked to durability: %d", v)
	}
}

func TestPersistBufferZeroIsBuffered(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.Write8(0, 77)
	d.EnablePersistBuffer(64)
	if err := d.Zero(0, pageSize); err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Read8(0); v != 0 {
		t.Fatalf("cache view after Zero = %d", v)
	}
	if v := img8(t, d.CrashImage(nil), 0); v != 77 {
		t.Fatalf("unflushed Zero became durable: %d", v)
	}
}

func TestPersistBufferRestoreClears(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.Write8(0, 1)
	snap := d.Snapshot()
	b := d.EnablePersistBuffer(64)
	d.Write8(0, 2)
	d.Restore(snap)
	if b.PendingLines() != 0 {
		t.Fatalf("pending lines survived power cycle: %d", b.PendingLines())
	}
	if v := img8(t, d.CrashImage(nil), 0); v != 1 {
		t.Fatalf("restored durable view = %d", v)
	}
}

func TestPersistBufferBadLineSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("line size 48 accepted")
		}
	}()
	NewDevice(NVM, 1<<20).EnablePersistBuffer(48)
}

// Satellite: Snapshot must be a deep copy — mutating the device after
// Snapshot must not alter the snapshot, and mutating the snapshot must
// not alter the device (nor a device later restored from it).
func TestSnapshotIsDeepCopy(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.Write8(0, 10)
	d.Write8(pageSize, 20)
	snap := d.Snapshot()

	// Device mutations must not leak into the snapshot.
	d.Write8(0, 11)
	if v := snap[0][0]; v != 10 {
		t.Fatalf("snapshot byte changed with the device: %d", v)
	}

	// Snapshot mutations must not leak into the device...
	snap[0][0] = 0xff
	if v, _ := d.Read8(0); v != 11 {
		t.Fatalf("device byte changed with the snapshot: %d", v)
	}

	// ...and Restore must copy again, isolating the restored device from
	// later snapshot mutations.
	d2 := NewDevice(NVM, 1<<20)
	d2.Restore(snap)
	snap[1][0] = 0xee
	if v, _ := d2.Read8(pageSize); v != 20 {
		t.Fatalf("restored device aliases the snapshot: %d", v)
	}
	if v, _ := d2.Read8(0); v != 0xff {
		t.Fatalf("restore lost snapshot content: %d", v)
	}
}

// TestPersistEventStreamFenceOrdered checks the per-stream ordering
// contract the crash injector and the observability layer both rely on:
// event indices are strictly increasing, and every line that becomes
// durable had its flush issued before the draining fence — no fence may
// drain a line whose flush appears later in the stream.
func TestPersistEventStreamFenceOrdered(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	var stream []Event
	b.SetEventHook(func(e Event) { stream = append(stream, e) })

	// Interleave writes, flushes and fences across three lines.
	d.Write8(0, 1)
	d.Flush(0, 8)
	d.Write8(64, 2)
	d.Fence() // drains line 0 only; line 1 is dirty and unflushed
	d.Flush(64, 8)
	d.Write8(128, 3)
	d.Flush(128, 8)
	d.Fence() // drains lines 1 and 2

	last := int64(-1)
	for i, e := range stream {
		if int64(e.Index) <= last {
			t.Fatalf("event %d: index %d not strictly increasing after %d", i, e.Index, last)
		}
		last = int64(e.Index)
	}
	// Each fence's drains are justified by earlier flushes: replay the
	// stream counting flushed-not-yet-fenced lines.
	if b.DrainedLines() != 3 {
		t.Fatalf("drained = %d, want 3", b.DrainedLines())
	}
	kinds := make([]EventKind, len(stream))
	for i, e := range stream {
		kinds[i] = e.Kind
	}
	want := []EventKind{FlushEvent, FenceEvent, FlushEvent, FlushEvent, FenceEvent}
	if len(kinds) != len(want) {
		t.Fatalf("stream = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("stream[%d] = %v, want %v (full: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

// TestPersistBufferObsEvents wires the obs track and occupancy histogram
// and checks flush/fence/drain instants carry the simulated clock and
// the pending-line occupancy is sampled per event.
func TestPersistBufferObsEvents(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	rec := obs.NewRecorder(0)
	var clock uint64
	b.Obs = rec.Track(obs.HWThread)
	b.NowFn = func() uint64 { return clock }
	occ := &obs.Hist{}
	b.Occupancy = occ

	clock = 10
	d.Write8(0, 1)
	d.Flush(0, 8)
	clock = 20
	d.Fence()

	ev := rec.Events()
	var names []string
	for _, e := range ev {
		names = append(names, e.Name)
	}
	want := []string{"flush", "fence", "drain"}
	if len(names) != len(want) {
		t.Fatalf("obs events = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("obs events = %v, want %v", names, want)
		}
	}
	if ev[0].TS != 10 || ev[1].TS != 20 || ev[2].TS != 20 {
		t.Fatalf("timestamps = %d %d %d", ev[0].TS, ev[1].TS, ev[2].TS)
	}
	if ev[2].Arg != 1 {
		t.Fatalf("drain count = %d, want 1", ev[2].Arg)
	}
	// Occupancy sampled at both persist events: 1 pending line each time.
	if occ.Count != 2 || occ.Max != 1 {
		t.Fatalf("occupancy hist: count=%d max=%d", occ.Count, occ.Max)
	}
}
