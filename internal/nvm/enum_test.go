package nvm

import (
	"bytes"
	"reflect"
	"testing"
)

// TestCrashImagePartialLineStraddle covers stores that straddle a line
// boundary: each overlapped line persists independently, so a crash can
// tear the store — one half durable, the other reverted.
func TestCrashImagePartialLineStraddle(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	d.EnablePersistBuffer(64)
	// 8 bytes at offset 60: bytes 60-63 land in line 0, 64-67 in line 1.
	var v uint64 = 0x1111222233334444
	d.Write8(60, v)
	d.Flush(60, 8)

	read8 := func(img map[uint64][]byte, off uint64) uint64 {
		t.Helper()
		r := NewDevice(NVM, 1<<20)
		r.Restore(img)
		got, err := r.Read8(off)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	// Keep line 0's writeback, drop line 1's: the low half persists.
	img := d.CrashImage(func(ln uint64) bool { return ln == 1 })
	if got := read8(img, 60); got != v&0xffffffff {
		t.Fatalf("torn straddle low half = %#x, want %#x", got, v&0xffffffff)
	}
	// Keep line 1's, drop line 0's: the high half persists.
	img = d.CrashImage(func(ln uint64) bool { return ln == 0 })
	if got := read8(img, 60); got != v&^uint64(0xffffffff) {
		t.Fatalf("torn straddle high half = %#x, want %#x", got, v&^uint64(0xffffffff))
	}
	// Fence makes the whole store durable.
	d.Fence()
	if got := read8(d.CrashImage(func(uint64) bool { return true }), 60); got != v {
		t.Fatalf("fenced straddle = %#x, want %#x", got, v)
	}
}

// TestCrashImageDropCallbackOrdering pins the documented contract the
// enumerator's bitmask addressing relies on: the drop callback is
// consulted exactly once per in-flight writeback, in ascending line
// order, matching AppendUnfenced.
func TestCrashImageDropCallbackOrdering(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	// Dirty and flush lines 5, 1, 9 (insertion order scrambled), plus a
	// dirty-unflushed line 3 that must not be consulted.
	for _, ln := range []uint64{5, 1, 9} {
		d.Write8(ln*64, ln+1)
		d.Flush(ln*64, 8)
	}
	d.Write8(3*64, 7)

	var consulted []uint64
	d.CrashImage(func(ln uint64) bool {
		consulted = append(consulted, ln)
		return false
	})
	want := []uint64{1, 5, 9}
	if !reflect.DeepEqual(consulted, want) {
		t.Fatalf("drop callback order = %v, want %v", consulted, want)
	}
	if got := b.AppendUnfenced(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("AppendUnfenced = %v, want %v", got, want)
	}
}

// TestAppendUnfencedIsAllocationStable reuses one backing slice across
// calls and checks both the sort order and that no per-call allocation
// is needed once capacity exists.
func TestAppendUnfencedIsAllocationStable(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	for _, ln := range []uint64{8, 2, 4} {
		d.Write8(ln*64, 1)
		d.Flush(ln*64, 8)
	}
	buf := make([]uint64, 0, 8)
	got := b.AppendUnfenced(buf)
	if !reflect.DeepEqual(got, []uint64{2, 4, 8}) {
		t.Fatalf("sorted lines = %v", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = b.AppendUnfenced(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendUnfenced allocates %v per call with reused dst", allocs)
	}
	// Appending after existing content must not disturb the prefix.
	pre := []uint64{99}
	got = b.AppendUnfenced(pre)
	if !reflect.DeepEqual(got, []uint64{99, 2, 4, 8}) {
		t.Fatalf("append-with-prefix = %v", got)
	}
}

// TestForEachCrashImageEnumeratesAllSubsets checks the exhaustive walk:
// with k in-flight writebacks there are exactly 2^k images, they are
// pairwise distinct when the lines hold distinct dirty values, and the
// all-kept image equals CrashImage(nil).
func TestForEachCrashImageEnumeratesAllSubsets(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	for _, ln := range []uint64{0, 1, 2} {
		d.Write8(ln*64, ln+10)
		d.Flush(ln*64, 8)
	}
	seen := make(map[[32]byte]bool)
	n := 0
	if err := b.ForEachCrashImage(func(img map[uint64][]byte) bool {
		seen[ImageHash(img)] = true
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 8 || len(seen) != 8 {
		t.Fatalf("enumerated %d images, %d distinct; want 8/8", n, len(seen))
	}
	if !seen[ImageHash(d.CrashImage(nil))] {
		t.Fatal("strict (all-kept) image missing from the enumeration")
	}
	// Early exit stops the walk.
	n = 0
	if err := b.ForEachCrashImage(func(map[uint64][]byte) bool { n++; return n < 3 }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early exit visited %d images, want 3", n)
	}
}

// TestForEachCrashImageCapsLineCount rejects exponential blowups.
func TestForEachCrashImageCapsLineCount(t *testing.T) {
	d := NewDevice(NVM, 1<<24)
	b := d.EnablePersistBuffer(64)
	for ln := uint64(0); ln <= MaxEnumLines; ln++ {
		d.Write8(ln*64, ln+1)
		d.Flush(ln*64, 8)
	}
	if err := b.ForEachCrashImage(func(map[uint64][]byte) bool { return true }); err == nil {
		t.Fatalf("%d writebacks accepted beyond the %d-line cap", MaxEnumLines+1, MaxEnumLines)
	}
}

// TestImageHashNormalizesZeroPages: an image with an explicit all-zero
// page hashes like one where that page was never materialized, and page
// content/number both feed the digest.
func TestImageHashNormalizesZeroPages(t *testing.T) {
	a := map[uint64][]byte{1: make([]byte, pageSize)}
	if ImageHash(a) != ImageHash(map[uint64][]byte{}) {
		t.Fatal("all-zero page changed the hash")
	}
	p := make([]byte, pageSize)
	p[5] = 1
	h1 := ImageHash(map[uint64][]byte{1: p})
	h2 := ImageHash(map[uint64][]byte{2: p})
	if h1 == h2 {
		t.Fatal("page number not part of the hash")
	}
	q := make([]byte, pageSize)
	q[6] = 1
	if ImageHash(map[uint64][]byte{1: p}) == ImageHash(map[uint64][]byte{1: q}) {
		t.Fatal("page content not part of the hash")
	}
}

// TestTraceRecordsReplayableOps checks the persist-op log: stores carry
// their bytes, flushes/fences carry their persist ordinals, and entries
// appear in program order.
func TestTraceRecordsReplayableOps(t *testing.T) {
	d := NewDevice(NVM, 1<<20)
	b := d.EnablePersistBuffer(64)
	b.EnableTrace()
	d.Write8(0, 0x0102030405060708)
	d.Flush(0, 8)
	d.Fence()
	d.Write8(64, 1)

	ops := b.TraceOps()
	if len(ops) != 4 {
		t.Fatalf("trace length = %d, want 4 (%v)", len(ops), ops)
	}
	if ops[0].Kind != StoreEvent || ops[0].Off != 0 || ops[0].Len != 8 {
		t.Fatalf("store op = %+v", ops[0])
	}
	if !bytes.Equal(ops[0].Data, []byte{8, 7, 6, 5, 4, 3, 2, 1}) {
		t.Fatalf("store bytes = %v", ops[0].Data)
	}
	if ops[1].Kind != FlushEvent || ops[1].Index != 0 {
		t.Fatalf("flush op = %+v", ops[1])
	}
	if ops[2].Kind != FenceEvent || ops[2].Index != 1 {
		t.Fatalf("fence op = %+v", ops[2])
	}
	if ops[3].Kind != StoreEvent || ops[3].Off != 64 {
		t.Fatalf("second store op = %+v", ops[3])
	}
	// The trace data is a copy, not an alias of the caller's buffer.
	ops[0].Data[0] = 0xff
	if v, _ := d.Read8(0); v != 0x0102030405060708 {
		t.Fatal("trace aliases device bytes")
	}
}
