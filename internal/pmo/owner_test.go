package pmo

import (
	"errors"
	"testing"

	"repro/internal/nvm"
)

func TestOwnershipChecks(t *testing.T) {
	m := newMgr()
	p, err := m.CreateAs("alice", "secrets", 1<<16, ModeRead|ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner() != "alice" {
		t.Fatalf("owner = %q", p.Owner())
	}
	// Owner may open and attach rw; others may not.
	if _, err := m.OpenAs("alice", "secrets"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.OpenAs("bob", "secrets"); !errors.Is(err, ErrPermission) {
		t.Fatalf("bob open: %v", err)
	}
	if !p.AllowsMode("alice", ModeRead|ModeWrite) {
		t.Fatal("owner denied rw")
	}
	if p.AllowsMode("bob", ModeRead) {
		t.Fatal("stranger allowed read")
	}
	// Root bypasses everything.
	if _, err := m.OpenAs(Root, "secrets"); err != nil {
		t.Fatal(err)
	}
	if !p.AllowsMode(Root, ModeRead|ModeWrite) {
		t.Fatal("root denied")
	}
}

func TestOtherModeBits(t *testing.T) {
	m := newMgr()
	p, _ := m.CreateAs("alice", "pub", 1<<16, ModeRead|ModeWrite|ModeOtherRead)
	if _, err := m.OpenAs("bob", "pub"); err != nil {
		t.Fatalf("world-readable open: %v", err)
	}
	if !p.AllowsMode("bob", ModeRead) {
		t.Fatal("bob denied read on world-readable PMO")
	}
	if p.AllowsMode("bob", ModeWrite) {
		t.Fatal("bob allowed write without ModeOtherWrite")
	}
	if err := p.Chmod("alice", ModeRead|ModeWrite|ModeOtherRead|ModeOtherWrite); err != nil {
		t.Fatal(err)
	}
	if !p.AllowsMode("bob", ModeWrite) {
		t.Fatal("bob denied write after chmod")
	}
	if err := p.Chmod("bob", ModeRead); !errors.Is(err, ErrPermission) {
		t.Fatalf("bob chmod: %v", err)
	}
}

func TestChown(t *testing.T) {
	m := newMgr()
	p, _ := m.CreateAs("alice", "x", 1<<16, ModeRead|ModeWrite)
	if err := p.Chown("bob", "bob"); !errors.Is(err, ErrPermission) {
		t.Fatalf("theft allowed: %v", err)
	}
	if err := p.Chown("alice", "bob"); err != nil {
		t.Fatal(err)
	}
	if p.Owner() != "bob" {
		t.Fatal("chown did not take")
	}
	if err := p.Chown(Root, "carol"); err != nil {
		t.Fatal(err)
	}
}

func TestOwnershipPersistsAcrossReboot(t *testing.T) {
	dev := nvm.NewDevice(nvm.NVM, 1<<26)
	m := NewManager(dev)
	p, err := m.CreateAs("alice", "durable", 1<<16, ModeRead|ModeWrite|ModeOtherRead)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	// Simulate reboot: fresh manager over the same device.
	m2 := NewManager(dev)
	q, err := m2.OpenAs("alice", "durable")
	if err != nil {
		t.Fatal(err)
	}
	if q.Owner() != "alice" {
		t.Fatalf("owner after reboot = %q", q.Owner())
	}
	if q.Mode&ModeOtherRead == 0 {
		t.Fatal("mode bits lost across reboot")
	}
	if _, err := m2.OpenAs("eve", "durable"); err != nil {
		t.Fatalf("world-readable lost: %v", err)
	}
	if q.AllowsMode("eve", ModeWrite) {
		t.Fatal("write leaked to others after reboot")
	}
}

func TestDestroy(t *testing.T) {
	m := newMgr()
	p, _ := m.CreateAs("alice", "doomed", 1<<16, ModeRead|ModeWrite)
	o, _ := p.Alloc(8)
	p.Write8(o.Offset(), 0xdead)
	if err := m.Destroy("bob", "doomed"); !errors.Is(err, ErrPermission) {
		t.Fatalf("bob destroy: %v", err)
	}
	if err := m.Destroy("alice", "doomed"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open("doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("destroyed PMO still opens: %v", err)
	}
	if err := m.Destroy(Root, "doomed"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double destroy: %v", err)
	}
	// Contents were shredded at the device level.
	if v, _ := m.Device().Read8(p.DevOff + o.Offset()); v != 0 {
		t.Fatalf("destroyed contents readable: %#x", v)
	}
	// The name is reusable.
	if _, err := m.CreateAs("carol", "doomed", 1<<16, ModeRead); err != nil {
		t.Fatal(err)
	}
}

func TestDestroySurvivesReboot(t *testing.T) {
	dev := nvm.NewDevice(nvm.NVM, 1<<26)
	m := NewManager(dev)
	m.CreateAs("alice", "a", 1<<16, ModeRead|ModeWrite)
	m.CreateAs("alice", "b", 1<<16, ModeRead|ModeWrite)
	if err := m.Destroy("alice", "a"); err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(dev)
	if _, err := m2.Open("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("destroyed PMO resurrected after reboot")
	}
	if _, err := m2.Open("b"); err != nil {
		t.Fatalf("surviving PMO lost: %v", err)
	}
}

func TestAnonymousPMOsAreOpen(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("legacy", 1<<16, ModeRead|ModeWrite)
	if !p.AllowsOpen("anyone") || !p.AllowsMode("anyone", ModeRead|ModeWrite) {
		t.Fatal("ownerless PMOs must stay permissive for legacy callers")
	}
}
