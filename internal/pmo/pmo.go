// Package pmo implements persistent memory objects (PMOs) — the
// abstraction of Table I of the paper. A PMO is a named, permissioned
// container for pointer-rich persistent data structures, hosted directly
// on the simulated NVM device without file backing. The package provides
// the pool API of Table I: create, open, close, destroy, pmalloc, pfree
// and ObjectID translation. Attach and detach are provided by the runtime
// (internal/core), which layers address-space mapping, permission and
// exposure-window semantics on top of this package's metadata.
//
// Relocatability: pointers stored inside PMOs are ObjectIDs — a (pool,
// offset) pair — rather than virtual addresses, so a PMO can be attached
// at a different randomized address on every attach (Section II).
package pmo

import (
	"errors"
	"fmt"

	"repro/internal/nvm"
)

// Errors returned by the manager.
var (
	// ErrExists is returned when creating a PMO whose name is taken.
	ErrExists = errors.New("pmo: name already exists")
	// ErrNotFound is returned when opening an unknown PMO.
	ErrNotFound = errors.New("pmo: not found")
	// ErrNoMemory is returned when pmalloc cannot satisfy a request.
	ErrNoMemory = errors.New("pmo: out of persistent memory")
	// ErrBadOID is returned for malformed or out-of-range ObjectIDs.
	ErrBadOID = errors.New("pmo: bad object id")
	// ErrClosed is returned when operating on a closed PMO handle.
	ErrClosed = errors.New("pmo: closed")
)

// OID is a relocatable persistent pointer: a 64-bit value holding the pool
// ID in the top 16 bits and the byte offset within the PMO in the low 48.
type OID uint64

// NilOID is the persistent null pointer.
const NilOID OID = 0

// MakeOID builds an OID from a pool ID and an offset.
func MakeOID(pool uint32, off uint64) OID {
	return OID(uint64(pool)<<48 | off&(1<<48-1))
}

// Pool returns the pool (PMO) ID part of the OID.
func (o OID) Pool() uint32 { return uint32(o >> 48) }

// Offset returns the intra-PMO byte offset part of the OID.
func (o OID) Offset() uint64 { return uint64(o) & (1<<48 - 1) }

// IsNil reports whether the OID is the persistent null pointer.
func (o OID) IsNil() bool { return o == NilOID }

// String renders the OID as pool:offset.
func (o OID) String() string {
	return fmt.Sprintf("%d:%#x", o.Pool(), o.Offset())
}

// Persistent header layout. The header occupies the first HeaderSize bytes
// of every PMO; the region after it notionally holds the embedded
// page-table subtree of Figure 1a, and user data starts at DataStart.
const (
	magicValue = 0x31304f4d50 // "PMO01"

	offMagic    = 0
	offSize     = 8
	offFreeHead = 16
	offBrk      = 24
	offAllocs   = 32
	offRoot     = 40

	// HeaderSize is the size of the PMO metadata header.
	HeaderSize = 64
	// SubtreeSize is the space reserved for the embedded page-table
	// subtree (Figure 1a): a page of upper-level entries.
	SubtreeSize = 4032
	// DataStart is the offset of the first allocatable byte.
	DataStart = HeaderSize + SubtreeSize

	// blockHeader is the per-allocation bookkeeping prefix.
	blockHeader = 8
	// minBlock is the smallest split remainder worth keeping.
	minBlock = blockHeader + 16
)

// Mode is the PMO permission mode, following file-style owner permission.
type Mode uint8

// Mode bits.
const (
	// ModeRead permits the owner to attach for reading.
	ModeRead Mode = 1 << iota
	// ModeWrite permits the owner to attach for writing.
	ModeWrite
	// ModeOtherRead permits non-owners to attach for reading.
	ModeOtherRead
	// ModeOtherWrite permits non-owners to attach for writing.
	ModeOtherWrite
)

// PMO is one persistent memory object: the manager-side metadata plus a
// handle for allocation calls. Data content lives on the NVM device.
type PMO struct {
	// ID is the pool ID, unique within the manager.
	ID uint32
	// Name is the namespace name of the PMO.
	Name string
	// Size is the PMO capacity in bytes (header included).
	Size uint64
	// Mode is the owner permission mode.
	Mode Mode
	// DevOff is the byte offset of the PMO within the NVM device.
	DevOff uint64

	mgr    *Manager
	owner  Principal
	closed bool
}

// Superblock layout: the manager persists its namespace at the start of
// the device so PMOs can be located again across process restarts and
// system reboots (the "system naming" property of Section II). Entry i
// lives at superEntry0 + i*superEntrySize.
const (
	superMagic     = 0x5245505553424c4b // "SUPRSBLK"-ish tag
	superOffMagic  = 0
	superOffCount  = 8
	superOffBrk    = 16
	superEntry0    = 64
	superEntrySize = 96
	superNameMax   = 36
	superOwnerMax  = 16
	// superSize reserves the namespace region; PMO space follows.
	superSize = 64 << 10
)

// Manager owns the PMO namespace and carves PMOs out of one NVM device.
// The namespace is persisted in a superblock on the device, so a Manager
// built over a device that already holds one resumes the existing
// namespace (reboot support).
type Manager struct {
	dev    *nvm.Device
	byName map[string]*PMO
	byID   map[uint32]*PMO
	nextID uint32
	brk    uint64 // device-space bump pointer
}

// NewManager creates a manager over the given NVM device, loading the
// persisted namespace if the device holds one.
func NewManager(dev *nvm.Device) *Manager {
	m := &Manager{
		dev:    dev,
		byName: make(map[string]*PMO),
		byID:   make(map[uint32]*PMO),
		nextID: 1,
		brk:    superSize,
	}
	if magic, err := dev.Read8(superOffMagic); err == nil && magic == superMagic {
		m.loadSuper()
	} else {
		_ = dev.Write8(superOffMagic, superMagic)
		_ = dev.Write8(superOffCount, 0)
		_ = dev.Write8(superOffBrk, m.brk)
	}
	return m
}

// loadSuper rebuilds the namespace from the superblock.
func (m *Manager) loadSuper() {
	count, _ := m.dev.Read8(superOffCount)
	m.brk, _ = m.dev.Read8(superOffBrk)
	if m.brk < superSize {
		m.brk = superSize
	}
	for i := uint64(0); i < count; i++ {
		base := uint64(superEntry0 + i*superEntrySize)
		var nameBuf [superNameMax]byte
		nameLen, _ := m.dev.Read8(base)
		_ = m.dev.ReadAt(nameBuf[:], base+8)
		idSize, _ := m.dev.Read8(base + 8 + superNameMax)
		devOff, _ := m.dev.Read8(base + 16 + superNameMax)
		modeOwnerLen, _ := m.dev.Read8(base + 24 + superNameMax)
		var ownerBuf [superOwnerMax]byte
		_ = m.dev.ReadAt(ownerBuf[:], base+32+superNameMax)
		if nameLen == 0 || nameLen > superNameMax {
			continue
		}
		ownerLen := modeOwnerLen >> 8
		if ownerLen > superOwnerMax {
			ownerLen = 0
		}
		p := &PMO{
			ID:     uint32(idSize >> 48),
			Size:   idSize & (1<<48 - 1),
			Name:   string(nameBuf[:nameLen]),
			Mode:   Mode(modeOwnerLen),
			DevOff: devOff,
			owner:  Principal(ownerBuf[:ownerLen]),
			mgr:    m,
		}
		m.byName[p.Name] = p
		m.byID[p.ID] = p
		if p.ID >= m.nextID {
			m.nextID = p.ID + 1
		}
	}
}

// persistEntry appends the PMO to the superblock.
func (m *Manager) persistEntry(p *PMO) error {
	count, err := m.dev.Read8(superOffCount)
	if err != nil {
		return err
	}
	base := uint64(superEntry0 + count*superEntrySize)
	if base+superEntrySize > superSize {
		return fmt.Errorf("pmo: namespace full (%d entries)", count)
	}
	name := []byte(p.Name)
	if len(name) > superNameMax {
		return fmt.Errorf("pmo: name %q too long (max %d)", p.Name, superNameMax)
	}
	if err := m.dev.Write8(base, uint64(len(name))); err != nil {
		return err
	}
	var buf [superNameMax]byte
	copy(buf[:], name)
	if err := m.dev.WriteAt(buf[:], base+8); err != nil {
		return err
	}
	if err := m.dev.Write8(base+8+superNameMax, uint64(p.ID)<<48|p.Size); err != nil {
		return err
	}
	if err := m.dev.Write8(base+16+superNameMax, p.DevOff); err != nil {
		return err
	}
	owner := []byte(p.owner)
	if len(owner) > superOwnerMax {
		return fmt.Errorf("pmo: owner %q too long (max %d)", p.owner, superOwnerMax)
	}
	if err := m.dev.Write8(base+24+superNameMax, uint64(p.Mode)|uint64(len(owner))<<8); err != nil {
		return err
	}
	var obuf [superOwnerMax]byte
	copy(obuf[:], owner)
	if err := m.dev.WriteAt(obuf[:], base+32+superNameMax); err != nil {
		return err
	}
	if err := m.dev.Write8(superOffCount, count+1); err != nil {
		return err
	}
	return m.dev.Write8(superOffBrk, m.brk)
}

// Device returns the backing NVM device.
func (m *Manager) Device() *nvm.Device { return m.dev }

// Create makes a new PMO with the given name, size and mode; the calling
// process is the owner (Table I: PMO_create).
func (m *Manager) Create(name string, size uint64, mode Mode) (*PMO, error) {
	if _, ok := m.byName[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if size < DataStart+minBlock {
		size = DataStart + minBlock
	}
	// Round to page multiple so embedded subtrees cover whole pages.
	size = (size + 4095) &^ 4095
	if m.brk+size > m.dev.Size() {
		return nil, fmt.Errorf("%w: device full creating %q", ErrNoMemory, name)
	}
	p := &PMO{
		ID:     m.nextID,
		Name:   name,
		Size:   size,
		Mode:   mode,
		DevOff: m.brk,
		mgr:    m,
	}
	m.nextID++
	m.brk += size
	m.byName[name] = p
	m.byID[p.ID] = p
	if err := m.persistEntry(p); err != nil {
		return nil, err
	}
	// Initialize the persistent header.
	p.write8(offMagic, magicValue)
	p.write8(offSize, size)
	p.write8(offFreeHead, 0)
	p.write8(offBrk, DataStart)
	p.write8(offAllocs, 0)
	p.write8(offRoot, 0)
	return p, nil
}

// Open reopens a previously created PMO by name (Table I: PMO_open).
func (m *Manager) Open(name string) (*PMO, error) {
	p, ok := m.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if p.read8(offMagic) != magicValue {
		return nil, fmt.Errorf("pmo: %q corrupt header", name)
	}
	p.closed = false
	return p, nil
}

// Lookup returns the PMO with the given pool ID.
func (m *Manager) Lookup(id uint32) (*PMO, error) {
	p, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return p, nil
}

// Names returns all PMO names (for tooling).
func (m *Manager) Names() []string {
	out := make([]string, 0, len(m.byName))
	for n := range m.byName {
		out = append(out, n)
	}
	return out
}

// Close closes a handle (Table I: PMO_close). Contents persist.
func (p *PMO) Close() { p.closed = true }

// Closed reports whether the handle was closed.
func (p *PMO) Closed() bool { return p.closed }

// helpers for header/word access via the device
func (p *PMO) read8(off uint64) uint64 {
	v, err := p.mgr.dev.Read8(p.DevOff + off)
	if err != nil {
		panic(err) // header offsets are always in range
	}
	return v
}

func (p *PMO) write8(off uint64, v uint64) {
	if err := p.mgr.dev.Write8(p.DevOff+off, v); err != nil {
		panic(err)
	}
}

// ReadAt reads raw PMO bytes (bypassing protection; used by the runtime,
// the allocator and recovery code).
func (p *PMO) ReadAt(b []byte, off uint64) error {
	if off+uint64(len(b)) > p.Size {
		return fmt.Errorf("%w: read at %#x len %d", ErrBadOID, off, len(b))
	}
	return p.mgr.dev.ReadAt(b, p.DevOff+off)
}

// WriteAt writes raw PMO bytes.
func (p *PMO) WriteAt(b []byte, off uint64) error {
	if off+uint64(len(b)) > p.Size {
		return fmt.Errorf("%w: write at %#x len %d", ErrBadOID, off, len(b))
	}
	return p.mgr.dev.WriteAt(b, p.DevOff+off)
}

// Flush issues a cache-line writeback toward the backing device's
// persist buffer for the PMO byte range [off, off+n). Without a buffer
// (the default), writes are modeled as immediately durable and Flush is
// a no-op, so callers can issue the real persistence protocol
// unconditionally.
func (p *PMO) Flush(off, n uint64) { p.mgr.dev.Flush(p.DevOff+off, n) }

// Fence is a persist barrier: it drains every writeback issued by Flush
// (no-op without a persist buffer).
func (p *PMO) Fence() { p.mgr.dev.Fence() }

// Read8 reads a 64-bit word at the PMO offset.
func (p *PMO) Read8(off uint64) (uint64, error) {
	if off+8 > p.Size {
		return 0, fmt.Errorf("%w: read8 at %#x", ErrBadOID, off)
	}
	return p.mgr.dev.Read8(p.DevOff + off)
}

// Write8 writes a 64-bit word at the PMO offset.
func (p *PMO) Write8(off uint64, v uint64) error {
	if off+8 > p.Size {
		return fmt.Errorf("%w: write8 at %#x", ErrBadOID, off)
	}
	return p.mgr.dev.Write8(p.DevOff+off, v)
}

// SetRoot records the application root object of the PMO, so a process
// reopening the PMO across runs can find its data structure.
func (p *PMO) SetRoot(o OID) { p.write8(offRoot, uint64(o)) }

// Root returns the recorded application root object.
func (p *PMO) Root() OID { return OID(p.read8(offRoot)) }

// AllocCount returns the number of live allocations.
func (p *PMO) AllocCount() uint64 { return p.read8(offAllocs) }

// Alloc allocates size bytes of persistent data in the PMO and returns the
// OID of the first byte (Table I: pmalloc). The allocator is an
// address-ordered first-fit free list with coalescing, with all metadata
// kept inside the PMO so it survives process restarts.
func (p *PMO) Alloc(size uint64) (OID, error) {
	if p.closed {
		return NilOID, ErrClosed
	}
	if size == 0 {
		size = 8
	}
	size = (size + 7) &^ 7 // 8-byte alignment
	need := size + blockHeader

	// First-fit scan of the free list.
	var prev uint64
	cur := p.read8(offFreeHead)
	for cur != 0 {
		bsize := p.read8(cur)
		next := p.read8(cur + 8)
		if bsize >= need {
			if bsize-need >= minBlock {
				// Split: the tail remains free.
				rest := cur + need
				p.write8(rest, bsize-need)
				p.write8(rest+8, next)
				p.Flush(rest, 16)
				p.relinkFree(prev, rest)
				p.write8(cur, need)
			} else {
				p.relinkFree(prev, next)
				// keep block's existing size
			}
			p.Flush(cur, blockHeader)
			p.write8(offAllocs, p.read8(offAllocs)+1)
			p.Flush(0, HeaderSize)
			return MakeOID(p.ID, cur+blockHeader), nil
		}
		prev, cur = cur, next
	}

	// Bump allocation at the end of used space.
	brk := p.read8(offBrk)
	if brk+need > p.Size {
		return NilOID, fmt.Errorf("%w: pmo %q alloc %d", ErrNoMemory, p.Name, size)
	}
	p.write8(brk, need)
	p.Flush(brk, blockHeader)
	p.write8(offBrk, brk+need)
	p.write8(offAllocs, p.read8(offAllocs)+1)
	p.Flush(0, HeaderSize)
	return MakeOID(p.ID, brk+blockHeader), nil
}

func (p *PMO) relinkFree(prev, next uint64) {
	if prev == 0 {
		p.write8(offFreeHead, next)
		p.Flush(offFreeHead, 8)
	} else {
		p.write8(prev+8, next)
		p.Flush(prev+8, 8)
	}
}

// Free releases persistent data pointed to by the OID (Table I: pfree).
// Adjacent free blocks are coalesced.
func (p *PMO) Free(o OID) error {
	if p.closed {
		return ErrClosed
	}
	if o.Pool() != p.ID {
		return fmt.Errorf("%w: %v not in pool %d", ErrBadOID, o, p.ID)
	}
	blk := o.Offset() - blockHeader
	if blk < DataStart || blk >= p.read8(offBrk) {
		return fmt.Errorf("%w: free %v", ErrBadOID, o)
	}
	bsize := p.read8(blk)
	if bsize < blockHeader || blk+bsize > p.read8(offBrk) {
		return fmt.Errorf("%w: free %v (corrupt block)", ErrBadOID, o)
	}

	// Address-ordered insert with coalescing.
	var prev uint64
	cur := p.read8(offFreeHead)
	for cur != 0 && cur < blk {
		prev, cur = cur, p.read8(cur+8)
	}
	if cur == blk {
		return fmt.Errorf("%w: double free %v", ErrBadOID, o)
	}
	// Link blk between prev and cur.
	p.write8(blk+8, cur)
	p.relinkFree(prev, blk)
	// Coalesce forward.
	if cur != 0 && blk+bsize == cur {
		p.write8(blk, bsize+p.read8(cur))
		p.write8(blk+8, p.read8(cur+8))
		bsize = p.read8(blk)
	}
	// Coalesce backward.
	if prev != 0 && prev+p.read8(prev) == blk {
		p.write8(prev, p.read8(prev)+bsize)
		p.write8(prev+8, p.read8(blk+8))
		p.Flush(prev, 16)
	}
	p.Flush(blk, 16)
	p.write8(offAllocs, p.read8(offAllocs)-1)
	p.Flush(0, HeaderSize)
	return nil
}

// CheckConsistency validates the PMO's persistent metadata as found on
// the device: header magic and size, the bump pointer, and the free list
// (in-range, address-ordered, non-overlapping, acyclic, sane sizes). The
// crash-injection verifier runs it on every post-crash image; it reads
// through the raw device path so it works on a freshly reopened PMO.
func (p *PMO) CheckConsistency() error {
	magic, err := p.Read8(offMagic)
	if err != nil {
		return err
	}
	if magic != magicValue {
		return fmt.Errorf("pmo: %q bad header magic %#x", p.Name, magic)
	}
	size, err := p.Read8(offSize)
	if err != nil {
		return err
	}
	if size != p.Size {
		return fmt.Errorf("pmo: %q header size %d != namespace size %d", p.Name, size, p.Size)
	}
	brk, err := p.Read8(offBrk)
	if err != nil {
		return err
	}
	if brk < DataStart || brk > p.Size {
		return fmt.Errorf("pmo: %q bump pointer %#x outside [%#x, %#x]", p.Name, brk, uint64(DataStart), p.Size)
	}
	// Walk the free list. Block count is bounded by the smallest legal
	// block, which also bounds a cycle.
	maxBlocks := (brk-DataStart)/(blockHeader+8) + 1
	var prevEnd uint64
	cur, err := p.Read8(offFreeHead)
	if err != nil {
		return err
	}
	for steps := uint64(0); cur != 0; steps++ {
		if steps > maxBlocks {
			return fmt.Errorf("pmo: %q free list cycle after %d blocks", p.Name, steps)
		}
		if cur < DataStart || cur+blockHeader > brk {
			return fmt.Errorf("pmo: %q free block %#x out of range", p.Name, cur)
		}
		if cur < prevEnd {
			return fmt.Errorf("pmo: %q free list unordered or overlapping at %#x", p.Name, cur)
		}
		bsize, err := p.Read8(cur)
		if err != nil {
			return err
		}
		if bsize < blockHeader+8 || cur+bsize > brk {
			return fmt.Errorf("pmo: %q free block %#x has bad size %d", p.Name, cur, bsize)
		}
		prevEnd = cur + bsize
		if cur, err = p.Read8(cur + 8); err != nil {
			return err
		}
	}
	return nil
}

// UsableSize returns the payload size of the allocation at o.
func (p *PMO) UsableSize(o OID) (uint64, error) {
	if o.Pool() != p.ID {
		return 0, fmt.Errorf("%w: %v not in pool %d", ErrBadOID, o, p.ID)
	}
	blk := o.Offset() - blockHeader
	if blk < DataStart || blk+blockHeader > p.Size {
		return 0, fmt.Errorf("%w: size of %v", ErrBadOID, o)
	}
	return p.read8(blk) - blockHeader, nil
}

// FreeBytes returns the total bytes on the free list plus untouched tail
// space (for fragmentation diagnostics and tests).
func (p *PMO) FreeBytes() uint64 {
	total := p.Size - p.read8(offBrk)
	for cur := p.read8(offFreeHead); cur != 0; cur = p.read8(cur + 8) {
		total += p.read8(cur)
	}
	return total
}
