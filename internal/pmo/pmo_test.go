package pmo

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nvm"
)

func newMgr() *Manager {
	return NewManager(nvm.NewDevice(nvm.NVM, 1<<28))
}

func TestOIDEncoding(t *testing.T) {
	o := MakeOID(513, 0xabcdef)
	if o.Pool() != 513 || o.Offset() != 0xabcdef {
		t.Fatalf("round trip failed: pool=%d off=%#x", o.Pool(), o.Offset())
	}
	if !NilOID.IsNil() || o.IsNil() {
		t.Fatal("nil detection wrong")
	}
	if o.String() == "" {
		t.Fatal("String empty")
	}
}

func TestOIDProperty(t *testing.T) {
	f := func(pool uint16, off uint64) bool {
		off &= 1<<48 - 1
		o := MakeOID(uint32(pool), off)
		return o.Pool() == uint32(pool) && o.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCreateOpenClose(t *testing.T) {
	m := newMgr()
	p, err := m.Create("kv", 1<<20, ModeRead|ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID == 0 || p.Size < 1<<20 {
		t.Fatalf("bad pmo: %+v", p)
	}
	if _, err := m.Create("kv", 1<<20, ModeRead); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	p.Close()
	if !p.Closed() {
		t.Fatal("close did not mark handle")
	}
	q, err := m.Open("kv")
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != p.ID || q.Closed() {
		t.Fatal("open returned wrong or closed pmo")
	}
	if _, err := m.Open("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open missing: %v", err)
	}
	if got, err := m.Lookup(p.ID); err != nil || got != p {
		t.Fatal("lookup by id failed")
	}
}

func TestAllocFreeReuse(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("a", 1<<20, ModeRead|ModeWrite)
	o1, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 {
		t.Fatal("allocations alias")
	}
	if sz, _ := p.UsableSize(o1); sz < 100 {
		t.Fatalf("usable size %d < 100", sz)
	}
	if err := p.Free(o1); err != nil {
		t.Fatal(err)
	}
	o3, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// First-fit should reuse the freed region.
	if o3.Offset() != o1.Offset() {
		t.Fatalf("free space not reused: %v vs %v", o3, o1)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("a", 1<<20, ModeWrite)
	o, _ := p.Alloc(64)
	if err := p.Free(o); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(o); !errors.Is(err, ErrBadOID) {
		t.Fatalf("double free: %v", err)
	}
}

func TestFreeForeignOIDRejected(t *testing.T) {
	m := newMgr()
	p1, _ := m.Create("a", 1<<20, ModeWrite)
	p2, _ := m.Create("b", 1<<20, ModeWrite)
	o, _ := p2.Alloc(64)
	if err := p1.Free(o); !errors.Is(err, ErrBadOID) {
		t.Fatalf("cross-pool free: %v", err)
	}
}

func TestCoalescing(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("a", 1<<20, ModeWrite)
	var oids []OID
	for i := 0; i < 4; i++ {
		o, err := p.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		oids = append(oids, o)
	}
	for _, o := range oids {
		if err := p.Free(o); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing all four adjacent blocks they must coalesce enough
	// to satisfy one allocation of the combined size.
	big, err := p.Alloc(4 * 64)
	if err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
	if big.Offset() != oids[0].Offset() {
		t.Fatalf("coalesced block not at start: %v vs %v", big, oids[0])
	}
}

func TestOutOfMemory(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("small", 8<<10, ModeWrite)
	if _, err := p.Alloc(1 << 20); !errors.Is(err, ErrNoMemory) {
		t.Fatalf("oversized alloc: %v", err)
	}
}

func TestAllocOnClosedHandle(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("a", 1<<20, ModeWrite)
	p.Close()
	if _, err := p.Alloc(8); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc on closed: %v", err)
	}
	if err := p.Free(MakeOID(p.ID, DataStart+8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("free on closed: %v", err)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dev := nvm.NewDevice(nvm.NVM, 1<<24)
	m := NewManager(dev)
	p, _ := m.Create("store", 1<<20, ModeWrite)
	o, _ := p.Alloc(32)
	if err := p.Write8(o.Offset(), 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	p.SetRoot(o)
	p.Close()

	q, err := m.Open("store")
	if err != nil {
		t.Fatal(err)
	}
	root := q.Root()
	if root != o {
		t.Fatalf("root = %v, want %v", root, o)
	}
	v, err := q.Read8(root.Offset())
	if err != nil || v != 0x1122334455667788 {
		t.Fatalf("persisted value = %#x, err %v", v, err)
	}
}

func TestReadWriteBounds(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("a", 64<<10, ModeWrite)
	if err := p.Write8(p.Size-4, 1); err == nil {
		t.Fatal("straddling write accepted")
	}
	if _, err := p.Read8(p.Size); err == nil {
		t.Fatal("out-of-pmo read accepted")
	}
	if err := p.WriteAt(make([]byte, 16), p.Size-8); err == nil {
		t.Fatal("out-of-pmo WriteAt accepted")
	}
}

func TestAllocCountTracking(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("a", 1<<20, ModeWrite)
	o1, _ := p.Alloc(8)
	o2, _ := p.Alloc(8)
	if p.AllocCount() != 2 {
		t.Fatalf("count = %d", p.AllocCount())
	}
	p.Free(o1)
	p.Free(o2)
	if p.AllocCount() != 0 {
		t.Fatalf("count = %d after frees", p.AllocCount())
	}
}

// Property: a random workload of allocations and frees never corrupts the
// allocator, never returns overlapping live blocks, and data written to a
// block always reads back.
func TestAllocatorPropertyWorkload(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("prop", 1<<22, ModeWrite)
	r := rand.New(rand.NewSource(11))
	type live struct {
		o    OID
		size uint64
		tag  uint64
	}
	var blocks []live
	for step := 0; step < 3000; step++ {
		if len(blocks) == 0 || r.Intn(100) < 60 {
			size := uint64(8 + r.Intn(512))
			o, err := p.Alloc(size)
			if errors.Is(err, ErrNoMemory) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			// Overlap check against all live blocks.
			for _, b := range blocks {
				if o.Offset() < b.o.Offset()+b.size && b.o.Offset() < o.Offset()+size {
					t.Fatalf("overlap: new [%#x,%d) with [%#x,%d)", o.Offset(), size, b.o.Offset(), b.size)
				}
			}
			tag := r.Uint64()
			if err := p.Write8(o.Offset(), tag); err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, live{o, size, tag})
		} else {
			i := r.Intn(len(blocks))
			b := blocks[i]
			if v, err := p.Read8(b.o.Offset()); err != nil || v != b.tag {
				t.Fatalf("tag mismatch: %#x != %#x (%v)", v, b.tag, err)
			}
			if err := p.Free(b.o); err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks[:i], blocks[i+1:]...)
		}
	}
	if p.AllocCount() != uint64(len(blocks)) {
		t.Fatalf("alloc count %d != live %d", p.AllocCount(), len(blocks))
	}
}

func TestFreeBytesMonotonicity(t *testing.T) {
	m := newMgr()
	p, _ := m.Create("a", 1<<20, ModeWrite)
	before := p.FreeBytes()
	o, _ := p.Alloc(1024)
	during := p.FreeBytes()
	p.Free(o)
	after := p.FreeBytes()
	if during >= before {
		t.Fatalf("alloc did not consume space: %d >= %d", during, before)
	}
	if after != before {
		t.Fatalf("free did not restore space: %d != %d", after, before)
	}
}

func TestCheckConsistency(t *testing.T) {
	m := newMgr()
	p, err := m.Create("cons", 1<<20, ModeRead|ModeWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckConsistency(); err != nil {
		t.Fatalf("fresh PMO inconsistent: %v", err)
	}
	// A worked allocator (allocs, frees, coalescing) stays consistent.
	r := rand.New(rand.NewSource(5))
	var live []OID
	for i := 0; i < 400; i++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			k := r.Intn(len(live))
			if err := p.Free(live[k]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:k], live[k+1:]...)
		} else {
			o, err := p.Alloc(uint64(8 + r.Intn(256)))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, o)
		}
		if err := p.CheckConsistency(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func TestCheckConsistencyDetectsCorruption(t *testing.T) {
	cases := []struct {
		name  string
		smash func(p *PMO)
	}{
		{"magic", func(p *PMO) { p.write8(offMagic, 0xbad) }},
		{"size", func(p *PMO) { p.write8(offSize, p.Size/2) }},
		{"brk-low", func(p *PMO) { p.write8(offBrk, 8) }},
		{"brk-high", func(p *PMO) { p.write8(offBrk, p.Size+8) }},
		{"free-out-of-range", func(p *PMO) { p.write8(offFreeHead, p.Size) }},
		{"free-cycle", func(p *PMO) {
			o, _ := p.Alloc(32)
			p.Free(o)
			blk := o.Offset() - blockHeader
			p.write8(blk+8, blk) // self-loop
		}},
		{"free-bad-size", func(p *PMO) {
			o, _ := p.Alloc(32)
			p.Free(o)
			p.write8(o.Offset()-blockHeader, 1)
		}},
	}
	for _, tc := range cases {
		m := newMgr()
		p, err := m.Create("smash-"+tc.name, 1<<20, ModeRead|ModeWrite)
		if err != nil {
			t.Fatal(err)
		}
		tc.smash(p)
		if err := p.CheckConsistency(); err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
		}
	}
}
