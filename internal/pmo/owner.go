package pmo

import (
	"errors"
	"fmt"
)

// This file implements the namespace permission side of the PMO model
// (Section II: "PMOs can be managed by the OS similar to files in terms
// of namespace and permission"). Each PMO records an owner and a mode;
// opening and attaching are checked against the calling principal. The
// TERP poset's upper levels (permission on users, permission on user
// groups — Figure 2) are built from these checks: they reduce the set of
// principals for which the PMO is ever accessible at all.

// Principal identifies a user for namespace permission checks.
type Principal string

// Root is the superuser principal, allowed everything.
const Root Principal = "root"

// ErrPermission is returned when a principal lacks rights on a PMO.
var ErrPermission = errors.New("pmo: permission denied")

// Owner returns the PMO's owning principal.
func (p *PMO) Owner() Principal { return p.owner }

// AllowsOpen reports whether the principal may open the PMO at all.
func (p *PMO) AllowsOpen(who Principal) bool {
	if who == Root || p.owner == "" {
		return true
	}
	if who == p.owner {
		return p.Mode&(ModeRead|ModeWrite) != 0
	}
	return p.Mode&ModeOtherRead != 0
}

// AllowsMode reports whether the principal may attach with the requested
// rights (read and/or write bits of Mode).
func (p *PMO) AllowsMode(who Principal, want Mode) bool {
	if who == Root || p.owner == "" {
		return true
	}
	var have Mode
	if who == p.owner {
		have = p.Mode & (ModeRead | ModeWrite)
	} else {
		if p.Mode&ModeOtherRead != 0 {
			have |= ModeRead
		}
		if p.Mode&ModeOtherWrite != 0 {
			have |= ModeWrite
		}
	}
	return have&want == want
}

// Chown transfers ownership (owner or Root only).
func (p *PMO) Chown(who Principal, newOwner Principal) error {
	if who != Root && who != p.owner {
		return fmt.Errorf("%w: chown %q by %q", ErrPermission, p.Name, who)
	}
	p.owner = newOwner
	return nil
}

// Chmod changes the mode bits (owner or Root only).
func (p *PMO) Chmod(who Principal, mode Mode) error {
	if who != Root && who != p.owner {
		return fmt.Errorf("%w: chmod %q by %q", ErrPermission, p.Name, who)
	}
	p.Mode = mode
	return nil
}

// CreateAs makes a new PMO owned by the given principal.
func (m *Manager) CreateAs(who Principal, name string, size uint64, mode Mode) (*PMO, error) {
	p, err := m.Create(name, size, mode)
	if err != nil {
		return nil, err
	}
	p.owner = who
	// Re-persist the entry so the ownership survives reboots.
	if err := m.rewriteSuper(); err != nil {
		return nil, err
	}
	return p, nil
}

// OpenAs reopens a PMO with a namespace permission check.
func (m *Manager) OpenAs(who Principal, name string) (*PMO, error) {
	p, err := m.Open(name)
	if err != nil {
		return nil, err
	}
	if !p.AllowsOpen(who) {
		return nil, fmt.Errorf("%w: open %q by %q", ErrPermission, name, who)
	}
	return p, nil
}

// Destroy removes a PMO from the namespace and zeroes its contents (the
// persistent equivalent of unlink + shred). Only the owner or Root may
// destroy. The device space is not reclaimed by the bump allocator; the
// name becomes available again.
func (m *Manager) Destroy(who Principal, name string) error {
	p, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if who != Root && p.owner != "" && who != p.owner {
		return fmt.Errorf("%w: destroy %q by %q", ErrPermission, name, who)
	}
	if err := m.dev.Zero(p.DevOff, p.Size); err != nil {
		return err
	}
	delete(m.byName, name)
	delete(m.byID, p.ID)
	p.closed = true
	return m.rewriteSuper()
}

// rewriteSuper rewrites the whole superblock from the in-memory namespace
// (used after Destroy, which removes entries).
func (m *Manager) rewriteSuper() error {
	if err := m.dev.Write8(superOffCount, 0); err != nil {
		return err
	}
	for _, p := range m.byID {
		if err := m.persistEntry(p); err != nil {
			return err
		}
	}
	return m.dev.Write8(superOffBrk, m.brk)
}
