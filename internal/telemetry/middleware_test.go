package telemetry

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// muxRoute is the resolver the service uses: the mux pattern when one
// matches, else empty (which the middleware maps to UnmatchedRoute).
func muxRoute(mux *http.ServeMux) func(*http.Request) string {
	return func(r *http.Request) string {
		_, pattern := mux.Handler(r)
		return pattern
	}
}

// TestMiddlewareCardinalityBounded: 50 distinct job IDs and 50 garbage
// paths mint exactly two route label values — the pattern and
// "unmatched" — never per-URL series.
func TestMiddlewareCardinalityBounded(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(m.Middleware(mux, muxRoute(mux), nil))
	defer srv.Close()

	for i := 0; i < 50; i++ {
		for _, path := range []string{
			fmt.Sprintf("/v1/jobs/job-%04d", i),
			fmt.Sprintf("/no/such/route/%d", i),
		} {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
	}

	routes := map[string]bool{}
	m.Latency.Each(func(labels []string, h *Histogram) {
		routes[labels[0]] = true
		if h.Count() != 50 {
			t.Errorf("route %q observed %d requests, want 50", labels[0], h.Count())
		}
	})
	if len(routes) != 2 || !routes["GET /v1/jobs/{id}"] || !routes[UnmatchedRoute] {
		t.Errorf("route label set = %v, want exactly {GET /v1/jobs/{id}, %s}", routes, UnmatchedRoute)
	}
	if got := m.Requests.With(UnmatchedRoute, "GET", "404").Value(); got != 50 {
		t.Errorf("unmatched 404 count = %d, want 50", got)
	}
	if v := m.InFlight.Value(); v != 0 {
		t.Errorf("in-flight gauge = %d after all requests done, want 0", v)
	}
}

// TestMiddlewareAccessLogAgreement: the access-log callback receives
// the same route, status, byte count and a duration consistent with
// what the histogram observed.
func TestMiddlewareAccessLogAgreement(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte("hello world")) //nolint:errcheck
	})

	var mu sync.Mutex
	type logged struct {
		route   string
		status  int
		bytes   int
		elapsed time.Duration
	}
	var got []logged
	log := func(r *http.Request, route string, status, bytes int, elapsed time.Duration) {
		mu.Lock()
		got = append(got, logged{route, status, bytes, elapsed})
		mu.Unlock()
	}
	srv := httptest.NewServer(m.Middleware(mux, muxRoute(mux), log))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("access log called %d times, want 1", len(got))
	}
	l := got[0]
	if l.route != "POST /v1/jobs" || l.status != http.StatusAccepted || l.bytes != len("hello world") {
		t.Errorf("logged %+v, want route POST /v1/jobs status 202 bytes 11", l)
	}
	if l.elapsed <= 0 {
		t.Errorf("logged elapsed = %v, want > 0", l.elapsed)
	}
	if c := m.Requests.With("POST /v1/jobs", "POST", "202").Value(); c != 1 {
		t.Errorf("requests counter = %d, want 1", c)
	}
	if h := m.Latency.With("POST /v1/jobs"); h.Count() != 1 {
		t.Errorf("latency histogram count = %d, want 1", h.Count())
	}
}

// TestMeteredWriterFlusher: the metering wrapper forwards Flush so SSE
// streaming keeps working behind the middleware.
func TestMeteredWriterFlusher(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "t_")
	flushed := false
	h := m.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Error("wrapped writer does not implement http.Flusher")
			return
		}
		fmt.Fprint(w, "event: ping\n\n")
		f.Flush()
		flushed = true
	}), nil, nil)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/abc/events", nil))
	if !flushed {
		t.Fatal("handler never flushed")
	}
	if !rec.Flushed {
		t.Error("Flush did not reach the underlying writer")
	}
	// nil route resolver: everything lands on UnmatchedRoute.
	if c := m.Requests.With(UnmatchedRoute, "GET", "200").Value(); c != 1 {
		t.Errorf("unmatched counter = %d, want 1", c)
	}
}
