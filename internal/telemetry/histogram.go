package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bounds in seconds: 250µs to 30s,
// roughly ×2–2.5 per step. They cover both HTTP round-trips and whole
// job runs.
var DefBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket histogram of float64 samples with an
// atomic Observe: one bucket increment, a CAS-loop float sum, and a
// count. Bucket i counts samples v <= bounds[i] (Prometheus `le`
// semantics); the final implicit bucket is +Inf.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be sorted")
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// First bound >= v is the owning bucket; past the end is +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	h.count.Add(1)
}

// ObserveSince records the elapsed wall time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf). Callers must
// not mutate the slice.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Cumulative returns the cumulative per-bucket counts (including +Inf
// last) and the total. The snapshot is not atomic across buckets —
// concurrent observes may straddle it — but each bucket is, and totals
// are monotonic.
func (h *Histogram) Cumulative() ([]uint64, uint64) {
	cum := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
		cum[i] = total
	}
	return cum, total
}

// Quantile estimates the q-th quantile (0..1) by linear interpolation
// within the owning bucket. The degenerate inputs are pinned (and
// tested) rather than left to fall out of the loop:
//
//   - no samples: returns 0, whatever q is;
//   - q outside [0, 1]: clamped to the nearest valid quantile;
//   - q == 0: reported as the rank of the first sample, so an
//     all-mass-in-one-bucket histogram answers consistently for
//     every q instead of special-casing the leading empty buckets;
//   - all mass in the +Inf overflow bucket: the samples carry no
//     upper bound, so the best point estimate is the last finite
//     bound (0 when the histogram has no finite buckets at all).
func (h *Histogram) Quantile(q float64) float64 {
	cum, total := h.Cumulative()
	if total == 0 {
		return 0
	}
	if len(h.bounds) == 0 {
		// Only the implicit +Inf bucket exists: no finite bound to
		// clamp to.
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := math.Max(q*float64(total), 1)
	for i, c := range cum {
		if float64(c) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: the best point estimate is the last bound.
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		prev := uint64(0)
		if i > 0 {
			prev = cum[i-1]
		}
		inBucket := float64(c - prev)
		if inBucket == 0 {
			return h.bounds[i]
		}
		frac := (rank - float64(prev)) / inBucket
		return lo + frac*(h.bounds[i]-lo)
	}
	return h.bounds[len(h.bounds)-1]
}
