package telemetry

import (
	"net/http"
	"strconv"
	"time"
)

// HTTPMetrics is the standard request-path metric set: per-route/
// method/status counts, per-route latency histograms, and an in-flight
// gauge. Route labels must be mux patterns, never raw URLs, so
// cardinality stays bounded by the route table.
type HTTPMetrics struct {
	Requests *CounterVec   // labels: route, method, status
	Latency  *HistogramVec // labels: route
	InFlight *Gauge
}

// NewHTTPMetrics registers the request-path metric set under prefix.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec(prefix+"http_requests_total",
			"Requests served, by route pattern, method and status code.",
			"route", "method", "status"),
		Latency: r.HistogramVec(prefix+"http_request_seconds",
			"Wall-clock request latency by route pattern.", nil, "route"),
		InFlight: r.Gauge(prefix+"http_inflight_requests",
			"Requests currently being served."),
	}
}

// UnmatchedRoute is the route label for requests no pattern matched, so
// scans and typos share one series instead of minting new ones.
const UnmatchedRoute = "unmatched"

// AccessLog receives one completed request with exactly the values the
// metrics observed — the structured log line and the latency histogram
// always agree.
type AccessLog func(r *http.Request, route string, status, bytes int, elapsed time.Duration)

// Middleware instruments next: it resolves the route label via route
// (typically mux.Handler; empty results become UnmatchedRoute), times
// the request, feeds the counters and histogram, and finally calls log
// (when non-nil) with the same measurements. The wrapped writer keeps
// http.Flusher working so SSE streams flush through it.
func (m *HTTPMetrics) Middleware(next http.Handler, route func(*http.Request) string, log AccessLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := ""
		if route != nil {
			rt = route(r)
		}
		if rt == "" {
			rt = UnmatchedRoute
		}
		mw := &meteredWriter{ResponseWriter: w}
		m.InFlight.Inc()
		start := time.Now()
		next.ServeHTTP(mw, r)
		elapsed := time.Since(start)
		m.InFlight.Dec()
		status := mw.status
		if status == 0 {
			status = http.StatusOK
		}
		m.Requests.With(rt, r.Method, strconv.Itoa(status)).Inc()
		m.Latency.With(rt).Observe(elapsed.Seconds())
		if log != nil {
			log(r, rt, status, mw.bytes, elapsed)
		}
	})
}

// meteredWriter records the response status and byte count while
// keeping Flush available for streaming handlers.
type meteredWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *meteredWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *meteredWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func (w *meteredWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController passthrough.
func (w *meteredWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
