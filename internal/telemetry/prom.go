package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by
// label values, histograms as cumulative _bucket/_sum/_count series.
// Func-backed metrics are sampled here.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, key := range f.sortedKeys() {
			f.mu.RLock()
			m := f.children[key]
			f.mu.RUnlock()
			if err := writeChild(w, f, splitKey(key), m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, values []string, m any) error {
	switch m := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, ""), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, ""), m.Value())
		return err
	case *Histogram:
		cum, total := m.Cumulative()
		for i, bound := range m.Bounds() {
			le := formatFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, labelString(f.labels, values, le), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, labelString(f.labels, values, "+Inf"), cum[len(cum)-1]); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, labelString(f.labels, values, ""), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, labelString(f.labels, values, ""), total)
		return err
	}
	return fmt.Errorf("telemetry: unknown metric type %T", m)
}

// labelString renders {k="v",...}; le, when non-empty, is appended as
// the histogram bucket bound label. Empty label sets render as "".
func labelString(names, values []string, le string) string {
	if len(names) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// formatFloat renders a float the way Prometheus clients expect:
// shortest representation that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot is the registry's state as a JSON-friendly document (the
// telemetry section of /v1/stats). Families and children are sorted, so
// the *structure* is deterministic even though the wall-clock values
// are not.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family's state.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Kind    string           `json:"kind"`
	Help    string           `json:"help,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one child series. Counters and gauges fill Value;
// histograms fill Count/Sum and the latency quantile estimates.
type MetricSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	P50    float64           `json:"p50,omitempty"`
	P90    float64           `json:"p90,omitempty"`
	P99    float64           `json:"p99,omitempty"`
}

// Snapshot captures every family (sampling func-backed metrics).
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	for _, f := range r.sortedFamilies() {
		fs := FamilySnapshot{Name: f.name, Kind: f.kind.String(), Help: f.help}
		if f.fn != nil {
			fs.Metrics = append(fs.Metrics, MetricSnapshot{Value: f.fn()})
		} else {
			for _, key := range f.sortedKeys() {
				f.mu.RLock()
				m := f.children[key]
				f.mu.RUnlock()
				ms := MetricSnapshot{Labels: labelMap(f.labels, splitKey(key))}
				switch m := m.(type) {
				case *Counter:
					ms.Value = float64(m.Value())
				case *Gauge:
					ms.Value = float64(m.Value())
				case *Histogram:
					ms.Count = m.Count()
					ms.Sum = m.Sum()
					ms.P50 = m.Quantile(0.50)
					ms.P90 = m.Quantile(0.90)
					ms.P99 = m.Quantile(0.99)
				}
				fs.Metrics = append(fs.Metrics, ms)
			}
		}
		s.Families = append(s.Families, fs)
	}
	return s
}

func labelMap(names, values []string) map[string]string {
	if len(names) == 0 {
		return nil
	}
	m := make(map[string]string, len(names))
	for i, n := range names {
		m[n] = values[i]
	}
	return m
}
