package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden: the exposition renders counters, gauges and
// histograms in sorted order with escaped label values — the exact
// bytes a Prometheus scraper parses.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	req := r.CounterVec("test_requests_total", "Requests.", "route", "status")
	req.With("/v1/jobs", "200").Add(3)
	req.With("a\"b\\c\nd", "500").Inc()
	r.Gauge("test_inflight", "In flight.").Set(2)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.5, 4})
	h.Observe(0.25)
	h.Observe(0.5) // boundary: le is inclusive
	h.Observe(8)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_inflight In flight.
# TYPE test_inflight gauge
test_inflight 2
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.5"} 2
test_latency_seconds_bucket{le="4"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 8.75
test_latency_seconds_count 3
# HELP test_requests_total Requests.
# TYPE test_requests_total counter
test_requests_total{route="/v1/jobs",status="200"} 3
test_requests_total{route="a\"b\\c\nd",status="500"} 1
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestHistogramBucketBoundaries: samples land in the first bucket whose
// upper bound is >= the value (Prometheus le semantics), beyond the
// last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0, 1, 1.0001, 2, 5, 5.0001, 100} {
		h.Observe(v)
	}
	cum, total := h.Cumulative()
	if total != 7 {
		t.Fatalf("total = %d, want 7", total)
	}
	// le=1: {0, 1}; le=2: +{1.0001, 2}; le=5: +{5}; +Inf: +{5.0001, 100}.
	want := []uint64{2, 4, 5, 7}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
}

// TestHistogramQuantile: interpolated quantiles are monotonic, inside
// the observed range, and exact at bucket edges for uniform fill.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 30, 40})
	for v := 1; v <= 40; v++ {
		h.Observe(float64(v))
	}
	if q := h.Quantile(0.5); q < 15 || q > 25 {
		t.Errorf("p50 = %v, want ~20", q)
	}
	if q50, q99 := h.Quantile(0.5), h.Quantile(0.99); q99 < q50 {
		t.Errorf("quantiles not monotonic: p50=%v p99=%v", q50, q99)
	}
	if q := h.Quantile(1); q > 40 {
		t.Errorf("p100 = %v beyond last bound", q)
	}
	empty := newHistogram(DefBuckets)
	if q := empty.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

// TestHistogramQuantileEdges pins the documented degenerate cases:
// empty histograms, out-of-range q, every sample in the +Inf overflow
// bucket, and a histogram with no finite buckets at all.
func TestHistogramQuantileEdges(t *testing.T) {
	empty := newHistogram([]float64{1, 2})
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Every sample beyond the last bound: the overflow bucket has no
	// upper edge, so the estimate clamps to the last finite bound —
	// for every q, including 0 and the clamped out-of-range ones.
	over := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{10, 20, 30} {
		over.Observe(v)
	}
	for _, q := range []float64{-3, 0, 0.5, 0.99, 1, 7} {
		if got := over.Quantile(q); got != 4 {
			t.Errorf("overflow-only Quantile(%v) = %v, want last bound 4", q, got)
		}
	}

	// No finite buckets at all (explicit empty bounds): nothing to
	// clamp to; 0 documents "no information" instead of panicking.
	unbounded := newHistogram([]float64{})
	unbounded.Observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		if got := unbounded.Quantile(q); got != 0 {
			t.Errorf("unbounded Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Out-of-range q clamps to the [min, max] estimates.
	h := newHistogram([]float64{10, 20})
	for v := 1; v <= 20; v++ {
		h.Observe(float64(v))
	}
	if lo, hi := h.Quantile(-5), h.Quantile(5); lo != h.Quantile(0) || hi != h.Quantile(1) {
		t.Errorf("clamp: Quantile(-5)=%v Quantile(0)=%v Quantile(5)=%v Quantile(1)=%v",
			lo, h.Quantile(0), hi, h.Quantile(1))
	}
}

// TestConcurrentObserve: counters, gauges and histograms stay exact
// under concurrent writers (run with -race in CI).
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", []float64{1, 4, 16, 64})
	vec := r.CounterVec("v_total", "", "k")

	const workers, perWorker = 8, 1000
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i % 100)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 100))
				vec.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
	if h.Count() != workers*perWorker {
		t.Errorf("hist count = %d, want %d", h.Count(), workers*perWorker)
	}
	if got, want := h.Sum(), float64(workers)*wantSum; got != want {
		t.Errorf("hist sum = %v, want %v", got, want)
	}
	if vec.With("a").Value() != workers*perWorker {
		t.Errorf("vec counter = %d, want %d", vec.With("a").Value(), workers*perWorker)
	}
}

// TestSnapshotJSON: the JSON snapshot is sorted, carries labels, and
// fills histogram quantiles.
func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("z_total", "", "tenant").With("acme").Add(7)
	r.Gauge("a_gauge", "").Set(-3)
	h := r.Histogram("m_seconds", "", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(2)

	s := r.Snapshot()
	if len(s.Families) != 3 {
		t.Fatalf("families = %d, want 3", len(s.Families))
	}
	if s.Families[0].Name != "a_gauge" || s.Families[2].Name != "z_total" {
		t.Fatalf("families not sorted: %v, %v", s.Families[0].Name, s.Families[2].Name)
	}
	if v := s.Families[0].Metrics[0].Value; v != -3 {
		t.Errorf("gauge value = %v, want -3", v)
	}
	hist := s.Families[1].Metrics[0]
	if hist.Count != 2 || hist.Sum != 2.5 || hist.P99 == 0 {
		t.Errorf("hist snapshot = %+v, want count 2 sum 2.5 p99 > 0", hist)
	}
	if lbl := s.Families[2].Metrics[0].Labels["tenant"]; lbl != "acme" {
		t.Errorf("labels = %v, want tenant=acme", s.Families[2].Metrics[0].Labels)
	}
	// The document must marshal deterministically (sorted structure).
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(r.Snapshot())
	if !bytes.Equal(b1, b2) {
		t.Error("snapshot JSON not stable across captures of identical state")
	}
}

// TestRegistrationIdempotent: re-registering a name returns the same
// metric; a different shape panics.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "")
	c1.Add(5)
	if c2 := r.Counter("x_total", ""); c2.Value() != 5 {
		t.Errorf("re-registration did not return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// TestFuncMetrics: func-backed series are sampled at export time.
func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	r.GaugeFunc("fn_gauge", "", func() float64 { return v })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fn_gauge 1.5") {
		t.Errorf("exposition missing sampled func gauge:\n%s", buf.String())
	}
	v = 2
	buf.Reset()
	r.WritePrometheus(&buf) //nolint:errcheck
	if !strings.Contains(buf.String(), "fn_gauge 2") {
		t.Errorf("func gauge not resampled:\n%s", buf.String())
	}
}

// TestRegisterRuntime: the runtime gauges register and export sane
// values (goroutines >= 1).
func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r, "t_")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"t_go_goroutines", "t_go_heap_alloc_bytes", "t_go_gc_runs_total"} {
		if !strings.Contains(out, name+" ") {
			t.Errorf("exposition missing %s", name)
		}
	}
	if strings.Contains(out, "t_go_goroutines 0\n") {
		t.Error("goroutine gauge reads 0")
	}
}
