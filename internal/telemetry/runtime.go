package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// memReader caches runtime.ReadMemStats samples so one scrape touching
// several gauges pays for a single stop-the-world read.
type memReader struct {
	mu   sync.Mutex
	at   time.Time
	stat runtime.MemStats
}

func (m *memReader) read() *runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&m.stat)
		m.at = time.Now()
	}
	return &m.stat
}

// RegisterRuntime registers Go runtime gauges (goroutines, heap, GC)
// under the given prefix, sampled at scrape time.
func RegisterRuntime(r *Registry, prefix string) {
	mr := &memReader{}
	r.GaugeFunc(prefix+"go_goroutines", "Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(prefix+"go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(mr.read().HeapAlloc) })
	r.GaugeFunc(prefix+"go_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(mr.read().HeapObjects) })
	r.GaugeFunc(prefix+"go_sys_bytes", "Total bytes obtained from the OS.",
		func() float64 { return float64(mr.read().Sys) })
	r.CounterFunc(prefix+"go_gc_runs_total", "Completed GC cycles.",
		func() float64 { return float64(mr.read().NumGC) })
	r.CounterFunc(prefix+"go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(mr.read().PauseTotalNs) / 1e9 })
}
