// Package telemetry is the host-side, wall-clock observability layer
// for the service stack: a zero-dependency registry of counters, gauges
// and fixed-bucket histograms with atomic hot paths, exported in
// Prometheus text exposition format and as a deterministic JSON
// snapshot.
//
// It is deliberately parallel to internal/obs: obs measures *simulated
// cycles* inside a run and is byte-deterministic; telemetry measures
// *wall-clock* behavior of the process serving those runs (request
// latency, queue depth, worker utilization) and is inherently
// nondeterministic. The two never mix — telemetry observes the service,
// it is never an input to a simulation, so grids stay byte-identical
// with telemetry enabled or disabled.
//
// Naming convention: metrics are prometheus-style snake_case with a
// subsystem prefix ("terpd_") and a unit suffix ("_seconds", "_bytes",
// "_total" for monotonic counters). Label values must come from bounded
// sets (route patterns, job states, tenant names) — never raw URLs or
// IDs — so series cardinality stays bounded.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous int64 value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// labelSep joins label values into child-map keys; label values never
// contain it.
const labelSep = "\x1f"

// family is one named metric family: a scalar metric, a func-backed
// scalar, or a set of labeled children.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string  // label names (nil for scalars)
	bounds []float64 // histogram upper bounds

	fn func() float64 // func-backed scalar (sampled at export)

	mu       sync.RWMutex
	children map[string]any // labelSep-joined values -> *Counter|*Gauge|*Histogram
}

// child returns (creating on first use) the labeled child metric.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	f.mu.RLock()
	m := f.children[key]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m = f.children[key]; m != nil {
		return m
	}
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindGauge:
		m = &Gauge{}
	default:
		m = newHistogram(f.bounds)
	}
	f.children[key] = m
	return m
}

// sortedKeys returns the child keys in sorted order (deterministic
// export).
func (f *family) sortedKeys() []string {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Registry holds metric families. Registration is idempotent by name;
// re-registering a name with a different shape panics (programmer
// error). The zero value is not usable — call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the named family, creating it on first use.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) || (f.fn == nil) != (fn == nil) {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different metric shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels: labels, bounds: bounds, fn: fn,
		children: make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil, nil).child(nil).(*Counter)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil, nil).child(nil).(*Gauge)
}

// Histogram registers (or finds) an unlabeled histogram with the given
// upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, kindHistogram, nil, bounds, nil).child(nil).(*Histogram)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil, nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil, nil)}
}

// HistogramVec registers (or finds) a labeled histogram family with the
// given upper bounds (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, bounds, nil)}
}

// GaugeFunc registers a gauge whose value is sampled by fn at export
// time (runtime stats, pool occupancy).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// CounterFunc registers a counter whose value is sampled by fn at
// export time; fn must be monotonic.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil, fn)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the child counter for the label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// Each visits every child in sorted label order.
func (v *CounterVec) Each(fn func(labels []string, c *Counter)) {
	for _, key := range v.f.sortedKeys() {
		v.f.mu.RLock()
		c := v.f.children[key].(*Counter)
		v.f.mu.RUnlock()
		fn(splitKey(key), c)
	}
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// Each visits every child in sorted label order.
func (v *GaugeVec) Each(fn func(labels []string, g *Gauge)) {
	for _, key := range v.f.sortedKeys() {
		v.f.mu.RLock()
		g := v.f.children[key].(*Gauge)
		v.f.mu.RUnlock()
		fn(splitKey(key), g)
	}
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// Each visits every child in sorted label order.
func (v *HistogramVec) Each(fn func(labels []string, h *Histogram)) {
	for _, key := range v.f.sortedKeys() {
		v.f.mu.RLock()
		h := v.f.children[key].(*Histogram)
		v.f.mu.RUnlock()
		fn(splitKey(key), h)
	}
}

func splitKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, labelSep)
}

// sortedFamilies returns the families sorted by name.
func (r *Registry) sortedFamilies() []*family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
