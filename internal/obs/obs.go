// Package obs is the deterministic tracing and metrics layer of the
// repository: a near-zero-cost-when-disabled event recorder plus a
// registry of named counters and histograms, threaded through the whole
// simulation stack (sim, terphw, merr, paging, nvm, expo, core).
//
// Determinism contract: every event is keyed by the *simulated* cycle
// clock, never wall time, and every cell of an experiment owns its own
// Recorder, so traces and metrics are byte-identical across `-parallel`
// levels and across hosts. Within one cell the cooperative scheduler
// serializes all simulated threads, so the recorder needs no locks; the
// per-thread sequence number preserves intra-thread order when events
// from different threads share a cycle.
//
// Disabled-path cost: components hold a possibly-nil *Track and call its
// emit methods unconditionally — a nil receiver returns immediately, so
// a disabled run pays one nil check per event site and allocates nothing.
package obs

import (
	"fmt"
	"sort"
)

// HWThread is the pseudo-thread ID used for hardware-initiated events
// (timer sweeps, process-wide window transitions, permission matrix).
const HWThread = -1

// Type classifies an event's role in the trace.
type Type uint8

// Event types. Span events (Begin/End) must nest per thread; async spans
// (AsyncBegin/AsyncEnd) may overlap and are paired by Arg.
const (
	// Begin opens a synchronous span on the emitting thread's track.
	Begin Type = iota
	// End closes the most recent open synchronous span.
	End
	// AsyncBegin opens an overlappable span paired by Arg.
	AsyncBegin
	// AsyncEnd closes the async span with the same Name and Arg.
	AsyncEnd
	// Instant is a point event.
	Instant
)

// String names the event type.
func (t Type) String() string {
	switch t {
	case Begin:
		return "begin"
	case End:
		return "end"
	case AsyncBegin:
		return "async-begin"
	case AsyncEnd:
		return "async-end"
	case Instant:
		return "instant"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// Cat names the component an event came from.
type Cat uint8

// Event categories, one per instrumented component.
const (
	// CatSim is the scheduler/clock substrate (thread switches).
	CatSim Cat = iota
	// CatHW is the TERP circular buffer (conditional ops, sweeps).
	CatHW
	// CatMERR is the permission matrix (denials).
	CatMERR
	// CatPaging is the TLB/page-walk layer.
	CatPaging
	// CatNVM is the persist buffer (flush/fence/drain).
	CatNVM
	// CatExpo is the exposure tracker (EW/TEW windows).
	CatExpo
	// CatCore is the runtime's attach/detach state machine.
	CatCore
	// CatAttack is the security-analysis layer (dead-time samples, probe
	// attempts and hits).
	CatAttack
)

// String names the category.
func (c Cat) String() string {
	switch c {
	case CatSim:
		return "sim"
	case CatHW:
		return "terphw"
	case CatMERR:
		return "merr"
	case CatPaging:
		return "paging"
	case CatNVM:
		return "nvm"
	case CatExpo:
		return "expo"
	case CatCore:
		return "core"
	case CatAttack:
		return "attack"
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// Event is one recorded trace event.
type Event struct {
	// TS is the event time in simulated cycles.
	TS uint64 `json:"ts"`
	// Thread is the emitting simulated thread (HWThread for hardware).
	Thread int `json:"thread"`
	// Seq is the event's ordinal within its thread's stream; it breaks
	// ties deterministically when events share a cycle.
	Seq uint64 `json:"seq"`
	// Type is the event role (span begin/end, async pair, instant).
	Type Type `json:"type"`
	// Cat is the emitting component.
	Cat Cat `json:"cat"`
	// Name labels the event; Names must be stable across runs.
	Name string `json:"name"`
	// Arg carries the event detail (PMO ID, case, occupancy); async
	// spans are paired by it.
	Arg int64 `json:"arg"`
}

// String renders the event as a timeline line (cycles, not wall time).
func (e Event) String() string {
	th := fmt.Sprintf("t%d", e.Thread)
	if e.Thread == HWThread {
		th = "hw"
	}
	return fmt.Sprintf("%12d %-3s %-7s %-12s %-12s %d",
		e.TS, th, e.Cat, e.Type, e.Name, e.Arg)
}

// Config selects what a run records. The JSON tags are part of the
// experiment-spec wire format (it embeds a Config), so renaming them is
// a wire-version bump.
type Config struct {
	// Trace enables the event recorder.
	Trace bool `json:"trace,omitempty"`
	// Metrics enables counter/histogram collection.
	Metrics bool `json:"metrics,omitempty"`
	// TraceCap bounds the retained events per thread track (a ring of
	// the most recent events); 0 selects DefaultTraceCap.
	TraceCap int `json:"traceCap,omitempty"`
}

// Enabled reports whether any collection is on.
func (c Config) Enabled() bool { return c.Trace || c.Metrics }

// DefaultTraceCap is the default per-thread ring capacity.
const DefaultTraceCap = 1 << 16

// Track is one thread's (or the hardware's) bounded event stream. All
// emit methods are safe on a nil receiver, which is the disabled path.
type Track struct {
	thread  int
	cap     int
	ring    []Event
	next    int
	seq     uint64
	total   uint64
	dropped uint64
}

// Begin opens a synchronous span.
func (t *Track) Begin(ts uint64, cat Cat, name string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{TS: ts, Type: Begin, Cat: cat, Name: name, Arg: arg})
}

// End closes the innermost open synchronous span.
func (t *Track) End(ts uint64, cat Cat, name string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{TS: ts, Type: End, Cat: cat, Name: name, Arg: arg})
}

// Span records a complete synchronous span [from, to].
func (t *Track) Span(from, to uint64, cat Cat, name string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{TS: from, Type: Begin, Cat: cat, Name: name, Arg: arg})
	t.emit(Event{TS: to, Type: End, Cat: cat, Name: name, Arg: arg})
}

// AsyncBegin opens an overlappable span paired by arg.
func (t *Track) AsyncBegin(ts uint64, cat Cat, name string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{TS: ts, Type: AsyncBegin, Cat: cat, Name: name, Arg: arg})
}

// AsyncEnd closes the async span opened with the same name and arg.
func (t *Track) AsyncEnd(ts uint64, cat Cat, name string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{TS: ts, Type: AsyncEnd, Cat: cat, Name: name, Arg: arg})
}

// Instant records a point event.
func (t *Track) Instant(ts uint64, cat Cat, name string, arg int64) {
	if t == nil {
		return
	}
	t.emit(Event{TS: ts, Type: Instant, Cat: cat, Name: name, Arg: arg})
}

func (t *Track) emit(e Event) {
	e.Thread = t.thread
	e.Seq = t.seq
	t.seq++
	t.total++
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, e)
		t.next = len(t.ring) % t.cap
		return
	}
	// Ring overflow: the oldest event is overwritten. The loss is
	// accounted, never silent — Dropped feeds the metrics snapshot
	// ("obs/dropped") and the report flags affected cells.
	t.dropped++
	t.ring[t.next] = e
	t.next = (t.next + 1) % t.cap
}

// Dropped returns how many of this track's events fell out of the ring.
func (t *Track) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Total returns the number of events observed (retained or not).
func (t *Track) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total
}

// events returns the retained events in emit order.
func (t *Track) events() []Event {
	out := make([]Event, 0, len(t.ring))
	if len(t.ring) == t.cap {
		out = append(out, t.ring[t.next:]...)
	} else {
		return append(out, t.ring[:t.next]...)
	}
	return append(out, t.ring[:t.next]...)
}

// Recorder owns the per-thread tracks of one simulation cell.
type Recorder struct {
	cap    int
	tracks map[int]*Track
	order  []int // track creation order (deterministic under the sim)
}

// NewRecorder creates a recorder with the given per-thread ring capacity
// (0 selects DefaultTraceCap).
func NewRecorder(traceCap int) *Recorder {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	return &Recorder{cap: traceCap, tracks: make(map[int]*Track)}
}

// Track returns the track for a simulated thread ID (HWThread for
// hardware events), creating it on first use. A nil recorder returns a
// nil track, whose emit methods are no-ops.
func (r *Recorder) Track(thread int) *Track {
	if r == nil {
		return nil
	}
	t := r.tracks[thread]
	if t == nil {
		t = &Track{thread: thread, cap: r.cap}
		r.tracks[thread] = t
		r.order = append(r.order, thread)
	}
	return t
}

// Total returns the number of events observed across all tracks.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, t := range r.tracks {
		n += t.total
	}
	return n
}

// Dropped returns how many events fell out of the rings.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, t := range r.tracks {
		n += t.dropped
	}
	return n
}

// Events returns every retained event merged into one deterministic
// stream: ordered by cycle, then thread ID (hardware first), then the
// per-thread sequence number.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for _, id := range sortedInts(r.order) {
		out = append(out, r.tracks[id].events()...)
	}
	sortEvents(out)
	return out
}

func sortedInts(in []int) []int {
	out := append([]int(nil), in...)
	sort.Ints(out)
	return out
}

// sortEvents orders by (TS, Thread, Seq).
func sortEvents(ev []Event) {
	sort.Slice(ev, func(i, j int) bool {
		if ev[i].TS != ev[j].TS {
			return ev[i].TS < ev[j].TS
		}
		if ev[i].Thread != ev[j].Thread {
			return ev[i].Thread < ev[j].Thread
		}
		return ev[i].Seq < ev[j].Seq
	})
}
