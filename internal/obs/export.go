package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/params"
)

// chromeEvent is one Chrome-trace / Perfetto JSON event. Field order is
// fixed by the struct so the exported bytes are deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	ID   *int64            `json:"id,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object form of the Chrome trace format, which
// both chrome://tracing and Perfetto load.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the cells' event streams as Chrome trace JSON
// (loadable in Perfetto / chrome://tracing). Each cell becomes one
// process (pid = enumeration index) and each simulated thread one track
// within it; timestamps are simulated cycles converted to microseconds,
// so the output is byte-identical across hosts and worker counts.
func WriteChromeTrace(w io.Writer, cells []CellTrace) error {
	return WriteChromeTraceWall(w, cells, "", nil)
}

// WallSpan is one wall-clock phase on the host-side track: a span when
// End > Start, an instant when they coincide. Offsets are relative to
// the track's origin (typically job submission).
type WallSpan struct {
	// Name is the phase label ("queued", "run", "serve").
	Name string
	// Start and End are wall-clock offsets from the track origin.
	Start, End time.Duration
}

// WriteChromeTraceWall writes the cells' simulated-cycle tracks plus,
// when spans are given, one extra process carrying the host wall-clock
// job lifecycle — so a single Perfetto view shows simulated time and
// real time side by side. The wall track is informational and
// host-dependent; the sim-cycle tracks keep their deterministic bytes
// (WriteChromeTrace is exactly this call with no wall track).
func WriteChromeTraceWall(w io.Writer, cells []CellTrace, wallTrack string, spans []WallSpan) error {
	var out chromeTrace
	out.DisplayTimeUnit = "ns"
	for pid, cell := range cells {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Cat: "__metadata", Ph: "M", Pid: pid,
			Args: map[string]string{"name": cell.Name},
		})
		threads := map[int]bool{}
		for _, e := range cell.Events {
			if !threads[e.Thread] {
				threads[e.Thread] = true
				name := fmt.Sprintf("t%d", e.Thread)
				if e.Thread == HWThread {
					name = "hw"
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Cat: "__metadata", Ph: "M",
					Pid: pid, Tid: e.Thread + 1,
					Args: map[string]string{"name": name},
				})
			}
			ce := chromeEvent{
				Name: e.Name,
				Cat:  e.Cat.String(),
				TS:   float64(e.TS) / params.CyclesPerMicro,
				Pid:  pid,
				Tid:  e.Thread + 1,
			}
			switch e.Type {
			case Begin:
				ce.Ph = "B"
			case End:
				ce.Ph = "E"
			case AsyncBegin:
				ce.Ph = "b"
				id := e.Arg
				ce.ID = &id
			case AsyncEnd:
				ce.Ph = "e"
				id := e.Arg
				ce.ID = &id
			case Instant:
				ce.Ph = "i"
				ce.S = "t"
			}
			if e.Type != AsyncBegin && e.Type != AsyncEnd {
				ce.Args = map[string]string{"arg": itoa64(e.Arg)}
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	if len(spans) > 0 {
		pid := len(cells)
		if wallTrack == "" {
			wallTrack = "wall-clock"
		}
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "process_name", Cat: "__metadata", Ph: "M", Pid: pid,
				Args: map[string]string{"name": wallTrack},
			},
			chromeEvent{
				Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: pid, Tid: 1,
				Args: map[string]string{"name": "host"},
			})
		for _, sp := range spans {
			start := float64(sp.Start.Nanoseconds()) / 1e3
			end := float64(sp.End.Nanoseconds()) / 1e3
			if sp.End <= sp.Start {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: sp.Name, Cat: "wall", Ph: "i", TS: start, Pid: pid, Tid: 1, S: "t",
				})
				continue
			}
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{Name: sp.Name, Cat: "wall", Ph: "B", TS: start, Pid: pid, Tid: 1},
				chromeEvent{Name: sp.Name, Cat: "wall", Ph: "E", TS: end, Pid: pid, Tid: 1})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

func itoa64(v int64) string {
	if v < 0 {
		return "-" + itoa(uint64(-v))
	}
	return itoa(uint64(v))
}

// FormatMetrics renders a snapshot as an aligned two-column counter
// table followed by histogram summaries.
func FormatMetrics(s *Snapshot) string {
	if s == nil {
		return "(no metrics)\n"
	}
	var b strings.Builder
	width := 0
	for _, name := range s.Names() {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "  %-*s %12d\n", width, name, s.Counters[name])
	}
	for _, name := range s.HistNames() {
		h := s.Hists[name]
		fmt.Fprintf(&b, "  %s: n=%d mean=%.1f max=%d\n", name, h.Count, h.Mean(), h.Max)
	}
	return b.String()
}

// rollupNode is one level of the flamegraph-style rollup tree.
type rollupNode struct {
	total    uint64
	children map[string]*rollupNode
}

func (n *rollupNode) child(name string) *rollupNode {
	if n.children == nil {
		n.children = make(map[string]*rollupNode)
	}
	c := n.children[name]
	if c == nil {
		c = &rollupNode{}
		n.children[name] = c
	}
	return c
}

// FormatRollup renders the counters whose names start with prefix as a
// plain-text flamegraph-style rollup: slash-separated name segments form
// a tree, siblings sort by weight, and each line shows its share of the
// root with a proportional bar. With prefix "sim/cycles" this is the
// per-Account rollup of one run's cycle budget.
func FormatRollup(s *Snapshot, prefix string) string {
	root := &rollupNode{}
	for name, v := range s.Counters {
		if prefix != "" && !strings.HasPrefix(name, prefix+"/") && name != prefix {
			continue
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(name, prefix), "/")
		n := root
		n.total += v
		if rest != "" {
			for _, seg := range strings.Split(rest, "/") {
				n = n.child(seg)
				n.total += v
			}
		}
	}
	if root.total == 0 {
		return fmt.Sprintf("  (no %q counters)\n", prefix)
	}
	var b strings.Builder
	label := prefix
	if label == "" {
		label = "all"
	}
	fmt.Fprintf(&b, "  %-28s %14d 100.0%% %s\n", label, root.total, bar(1, 40))
	writeRollup(&b, root, root.total, "  ")
	return b.String()
}

func writeRollup(b *strings.Builder, n *rollupNode, rootTotal uint64, indent string) {
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	// Heaviest first; ties break by name for determinism.
	sort.Slice(names, func(i, j int) bool {
		ci, cj := n.children[names[i]], n.children[names[j]]
		if ci.total != cj.total {
			return ci.total > cj.total
		}
		return names[i] < names[j]
	})
	for _, name := range names {
		c := n.children[name]
		frac := float64(c.total) / float64(rootTotal)
		fmt.Fprintf(b, "%s%-*s %14d %5.1f%% %s\n",
			indent+"  ", 28-len(indent), name, c.total, 100*frac, bar(frac, 40))
		writeRollup(b, c, rootTotal, indent+"  ")
	}
}

func bar(frac float64, width int) string {
	n := int(frac*float64(width) + 0.5)
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}
