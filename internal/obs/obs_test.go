package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestNilTrackIsNoOp(t *testing.T) {
	var tr *Track
	tr.Begin(1, CatSim, "x", 0)
	tr.End(2, CatSim, "x", 0)
	tr.Span(3, 4, CatSim, "x", 0)
	tr.AsyncBegin(5, CatExpo, "x", 1)
	tr.AsyncEnd(6, CatExpo, "x", 1)
	tr.Instant(7, CatHW, "x", 0)
	if tr.Total() != 0 {
		t.Fatalf("nil track total = %d", tr.Total())
	}
	var r *Recorder
	if r.Track(0) != nil {
		t.Fatal("nil recorder must hand out nil tracks")
	}
	if r.Events() != nil || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder must report empty")
	}
}

func TestTrackRingEviction(t *testing.T) {
	r := NewRecorder(4)
	tr := r.Track(0)
	for i := 0; i < 10; i++ {
		tr.Instant(uint64(i), CatSim, "e", int64(i))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	// The ring keeps the most recent events in emit order.
	for i, e := range ev {
		if want := uint64(6 + i); e.TS != want || e.Seq != want {
			t.Fatalf("event %d = ts %d seq %d, want %d", i, e.TS, e.Seq, want)
		}
	}
}

func TestRecorderMergeOrdering(t *testing.T) {
	r := NewRecorder(0)
	hw := r.Track(HWThread)
	t1 := r.Track(1)
	t0 := r.Track(0)
	// Interleave emits across threads with shared cycles.
	t1.Instant(100, CatSim, "a", 0)
	t0.Instant(100, CatSim, "b", 0)
	hw.Instant(100, CatHW, "c", 0)
	t0.Instant(50, CatSim, "d", 0)
	t0.Instant(100, CatSim, "e", 0)
	ev := r.Events()
	got := make([]string, len(ev))
	for i, e := range ev {
		got[i] = fmt.Sprintf("%d/%d/%s", e.TS, e.Thread, e.Name)
	}
	// Sorted by TS, then thread (hw = -1 first), then per-thread seq.
	want := []string{"50/0/d", "100/-1/c", "100/0/b", "100/0/e", "100/1/a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("merged order = %v, want %v", got, want)
	}
	if r.Total() != 5 || r.Dropped() != 0 {
		t.Fatalf("total=%d dropped=%d", r.Total(), r.Dropped())
	}
}

func TestEventString(t *testing.T) {
	e := Event{TS: 42, Thread: HWThread, Type: Instant, Cat: CatHW, Name: "sweep", Arg: 7}
	s := e.String()
	for _, want := range []string{"42", "hw", "terphw", "instant", "sweep", "7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Event.String() = %q missing %q", s, want)
		}
	}
}

func TestHistBuckets(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 2, 3, 4, 7, 8, 1024} {
		h.Observe(v)
	}
	if h.Count != 8 || h.Sum != 1049 || h.Max != 1024 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count, h.Sum, h.Max)
	}
	// bit-length buckets: 0→b0, 1→b1, {2,3}→b2, {4,7}→b3, 8→b4, 1024→b11
	want := []uint64{1, 1, 2, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	if fmt.Sprint(h.Buckets) != fmt.Sprint(want) {
		t.Fatalf("buckets = %v, want %v", h.Buckets, want)
	}
	if got := h.Mean(); got != 1049.0/8 {
		t.Fatalf("mean = %v", got)
	}
	var empty Hist
	if empty.Mean() != 0 {
		t.Fatal("empty hist mean must be 0")
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	a.Observe(3)
	b.Observe(100)
	b.Observe(0)
	a.Merge(&b)
	if a.Count != 3 || a.Sum != 103 || a.Max != 100 {
		t.Fatalf("merged count=%d sum=%d max=%d", a.Count, a.Sum, a.Max)
	}
	var c Hist
	c.Observe(3)
	c.Observe(100)
	c.Observe(0)
	if fmt.Sprint(a.Buckets) != fmt.Sprint(c.Buckets) {
		t.Fatalf("merge buckets %v != direct %v", a.Buckets, c.Buckets)
	}
}

func TestBucketLabel(t *testing.T) {
	cases := map[int]string{0: "0", 1: "1", 2: "2-3", 3: "4-7", 4: "8-15"}
	for i, want := range cases {
		if got := BucketLabel(i); got != want {
			t.Fatalf("BucketLabel(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestSnapshotAddSkipsZero(t *testing.T) {
	s := NewSnapshot()
	s.Add("a", 0)
	if len(s.Counters) != 0 {
		t.Fatal("Add(0) must not materialize a counter")
	}
	s.Add("a", 2)
	s.Add("a", 3)
	if s.Get("a") != 5 || s.Get("missing") != 0 {
		t.Fatalf("a=%d missing=%d", s.Get("a"), s.Get("missing"))
	}
}

func TestSnapshotMergeDeterministicJSON(t *testing.T) {
	build := func(order []int) *Snapshot {
		total := NewSnapshot()
		parts := []*Snapshot{NewSnapshot(), NewSnapshot(), NewSnapshot()}
		parts[0].Add("x/a", 1)
		parts[0].Hist("h").Observe(4)
		parts[1].Add("x/b", 2)
		parts[1].Add("x/a", 10)
		parts[2].Hist("h").Observe(9)
		for _, i := range order {
			total.Merge(parts[i])
		}
		return total
	}
	a, _ := json.Marshal(build([]int{0, 1, 2}))
	b, _ := json.Marshal(build([]int{2, 0, 1}))
	if !bytes.Equal(a, b) {
		t.Fatalf("merge order changed JSON:\n%s\n%s", a, b)
	}
	s := build([]int{0, 1, 2})
	if got := fmt.Sprint(s.Names()); got != "[x/a x/b]" {
		t.Fatalf("Names() = %s", got)
	}
	if got := fmt.Sprint(s.HistNames()); got != "[h]" {
		t.Fatalf("HistNames() = %s", got)
	}
	s.Merge(nil) // must not panic
}

func TestFormatMetrics(t *testing.T) {
	if got := FormatMetrics(nil); got != "(no metrics)\n" {
		t.Fatalf("nil metrics = %q", got)
	}
	s := NewSnapshot()
	s.Add("sim/cycles/base", 100)
	s.Hist("nvm/occupancy").Observe(8)
	out := FormatMetrics(s)
	if !strings.Contains(out, "sim/cycles/base") || !strings.Contains(out, "100") {
		t.Fatalf("missing counter row:\n%s", out)
	}
	if !strings.Contains(out, "nvm/occupancy") || !strings.Contains(out, "n=1") {
		t.Fatalf("missing hist row:\n%s", out)
	}
}

func TestFormatRollup(t *testing.T) {
	s := NewSnapshot()
	s.Add("sim/cycles/base", 60)
	s.Add("sim/cycles/attach", 30)
	s.Add("sim/cycles/tlb", 10)
	s.Add("other/thing", 999)
	out := FormatRollup(s, "sim/cycles")
	if strings.Contains(out, "other") {
		t.Fatalf("rollup leaked foreign prefix:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Fatalf("missing root line:\n%s", out)
	}
	// Heaviest child first.
	bi, ai := strings.Index(out, "base"), strings.Index(out, "attach")
	if bi < 0 || ai < 0 || bi > ai {
		t.Fatalf("children not weight-sorted:\n%s", out)
	}
	if !strings.Contains(out, "60.0%") || !strings.Contains(out, "30.0%") {
		t.Fatalf("missing percentages:\n%s", out)
	}
	if got := FormatRollup(NewSnapshot(), "sim/cycles"); !strings.Contains(got, "no") {
		t.Fatalf("empty rollup = %q", got)
	}
}

// TestChromeTraceSchema is the acceptance-criteria schema test: the
// exported document must be valid Chrome trace JSON (the format Perfetto
// and chrome://tracing load) — required keys present, phases in the
// allowed set, sync spans balanced per track, async spans paired by id.
func TestChromeTraceSchema(t *testing.T) {
	r := NewRecorder(0)
	hw := r.Track(HWThread)
	t0 := r.Track(0)
	t0.Begin(10, CatCore, "attach-syscall", 3)
	t0.Instant(12, CatPaging, "tlb-walk", 0x40)
	t0.End(20, CatCore, "attach-syscall", 3)
	hw.AsyncBegin(5, CatExpo, "ew", 3)
	t0.AsyncBegin(11, CatExpo, "tew", 3|1<<32)
	t0.AsyncEnd(25, CatExpo, "tew", 3|1<<32)
	hw.AsyncEnd(30, CatExpo, "ew", 3)
	hw.Instant(30, CatHW, "sweep-detach", 3)

	var buf bytes.Buffer
	cells := []CellTrace{{Name: "whisper/echo", Events: r.Events()}}
	if err := WriteChromeTrace(&buf, cells); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	allowed := map[string]bool{"B": true, "E": true, "b": true, "e": true, "i": true, "M": true}
	depth := map[string]int{}          // per (pid,tid) sync-span nesting
	async := map[string]int{}          // per (name,id) open async spans
	sawProcName, sawThreadName := false, false
	lastTS := map[string]float64{}
	for i, e := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, e)
			}
		}
		ph := e["ph"].(string)
		if !allowed[ph] {
			t.Fatalf("event %d has phase %q outside allowed set", i, ph)
		}
		track := fmt.Sprint(e["pid"], "/", e["tid"])
		switch ph {
		case "M":
			switch e["name"] {
			case "process_name":
				sawProcName = true
			case "thread_name":
				sawThreadName = true
			}
			continue
		case "B":
			depth[track]++
		case "E":
			depth[track]--
			if depth[track] < 0 {
				t.Fatalf("event %d: E without B on track %s", i, track)
			}
		case "b":
			async[fmt.Sprint(e["name"], "#", e["id"])]++
		case "e":
			k := fmt.Sprint(e["name"], "#", e["id"])
			async[k]--
			if async[k] < 0 {
				t.Fatalf("event %d: async end without begin for %s", i, k)
			}
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			t.Fatalf("event %d missing numeric ts", i)
		}
		if ts < lastTS[track] {
			t.Fatalf("event %d: ts %v < previous %v on track %s", i, ts, lastTS[track], track)
		}
		lastTS[track] = ts
	}
	for track, d := range depth {
		if d != 0 {
			t.Fatalf("track %s has %d unbalanced sync spans", track, d)
		}
	}
	for k, n := range async {
		if n != 0 {
			t.Fatalf("async span %s has %d unmatched begins", k, n)
		}
	}
	if !sawProcName || !sawThreadName {
		t.Fatal("missing process_name/thread_name metadata events")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRecorder(0)
		r.Track(1).Instant(7, CatSim, "a", 1)
		r.Track(HWThread).Instant(7, CatHW, "b", 2)
		r.Track(0).Span(1, 9, CatCore, "c", 3)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, []CellTrace{{Name: "x", Events: r.Events()}}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := build(), build(); !bytes.Equal(a, b) {
		t.Fatalf("trace export not deterministic:\n%s\n%s", a, b)
	}
}
