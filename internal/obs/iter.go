package obs

import "sort"

// Window is one closed span reconstructed from an event stream: a
// synchronous Begin/End pair on one thread, or an AsyncBegin/AsyncEnd
// pair matched by (category, name, arg). The analysis layer
// (internal/report) consumes windows instead of raw events so it never
// re-implements span pairing.
type Window struct {
	// Cat and Name identify the span.
	Cat  Cat    `json:"cat"`
	Name string `json:"name"`
	// Thread is the thread the span began on (HWThread for hardware).
	Thread int `json:"thread"`
	// Arg is the span detail (PMO ID for "ew" windows).
	Arg int64 `json:"arg"`
	// Start and End are the span bounds in simulated cycles.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
}

// Cycles returns the window length.
func (w Window) Cycles() uint64 { return w.End - w.Start }

// InstantEvent is one point event extracted from a stream.
type InstantEvent struct {
	// Cat and Name identify the instant.
	Cat  Cat    `json:"cat"`
	Name string `json:"name"`
	// Thread is the emitting thread.
	Thread int `json:"thread"`
	// Arg is the event detail (dead-time cycles for "deadtime").
	Arg int64 `json:"arg"`
	// TS is the event time in simulated cycles.
	TS uint64 `json:"ts"`
}

// asyncKey pairs AsyncBegin/AsyncEnd events.
type asyncKey struct {
	cat  Cat
	name string
	arg  int64
}

// Windows reconstructs every closed span of an event stream. Events must
// be in the deterministic merged order Recorder.Events returns.
// Synchronous spans pair through a per-thread stack (they nest);
// async spans pair FIFO by (cat, name, arg) since overlapping windows of
// the same key close in open order (the expo tracker never overlaps the
// same key). Spans still open at the end of the stream are dropped — the
// components close everything at Finish, so an unclosed span means the
// stream was truncated by the ring. The result is sorted by
// (Start, End, Thread, Cat, Name, Arg).
func Windows(events []Event) []Window {
	var out []Window
	syncStacks := make(map[int][]Event)
	asyncOpen := make(map[asyncKey][]Event)
	for _, e := range events {
		switch e.Type {
		case Begin:
			syncStacks[e.Thread] = append(syncStacks[e.Thread], e)
		case End:
			stack := syncStacks[e.Thread]
			if len(stack) == 0 {
				continue // truncated stream: End without Begin
			}
			b := stack[len(stack)-1]
			syncStacks[e.Thread] = stack[:len(stack)-1]
			out = append(out, Window{
				Cat: b.Cat, Name: b.Name, Thread: b.Thread, Arg: b.Arg,
				Start: b.TS, End: e.TS,
			})
		case AsyncBegin:
			k := asyncKey{e.Cat, e.Name, e.Arg}
			asyncOpen[k] = append(asyncOpen[k], e)
		case AsyncEnd:
			k := asyncKey{e.Cat, e.Name, e.Arg}
			open := asyncOpen[k]
			if len(open) == 0 {
				continue
			}
			b := open[0]
			asyncOpen[k] = open[1:]
			out = append(out, Window{
				Cat: b.Cat, Name: b.Name, Thread: b.Thread, Arg: b.Arg,
				Start: b.TS, End: e.TS,
			})
		}
	}
	sortWindows(out)
	return out
}

func sortWindows(ws []Window) {
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Arg < b.Arg
	})
}

// Instants extracts the point events of a stream, preserving its order.
func Instants(events []Event) []InstantEvent {
	var out []InstantEvent
	for _, e := range events {
		if e.Type != Instant {
			continue
		}
		out = append(out, InstantEvent{
			Cat: e.Cat, Name: e.Name, Thread: e.Thread, Arg: e.Arg, TS: e.TS,
		})
	}
	return out
}

// FilterWindows returns the windows matching category cat and, when name
// is non-empty, the given name.
func FilterWindows(ws []Window, cat Cat, name string) []Window {
	var out []Window
	for _, w := range ws {
		if w.Cat == cat && (name == "" || w.Name == name) {
			out = append(out, w)
		}
	}
	return out
}

// FilterInstants returns the instants matching category cat and, when
// name is non-empty, the given name.
func FilterInstants(ins []InstantEvent, cat Cat, name string) []InstantEvent {
	var out []InstantEvent
	for _, e := range ins {
		if e.Cat == cat && (name == "" || e.Name == name) {
			out = append(out, e)
		}
	}
	return out
}
