package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestChromeTraceWallTrack: with wall spans given, the export carries
// one extra process after the cells, holding B/E spans (and "i"
// instants for zero-width phases) on a "host" thread — and the
// sim-cycle events stay byte-for-byte what WriteChromeTrace emits.
func TestChromeTraceWallTrack(t *testing.T) {
	r := NewRecorder(0)
	r.Track(0).Span(1, 9, CatCore, "c", 3)
	cells := []CellTrace{{Name: "x", Events: r.Events()}}

	var plain, wall bytes.Buffer
	if err := WriteChromeTrace(&plain, cells); err != nil {
		t.Fatal(err)
	}
	spans := []WallSpan{
		{Name: "queued", Start: 0, End: 2 * time.Millisecond},
		{Name: "run", Start: 2 * time.Millisecond, End: 10 * time.Millisecond},
		{Name: "serve", Start: 15 * time.Millisecond, End: 15 * time.Millisecond},
	}
	if err := WriteChromeTraceWall(&wall, cells, "wall-clock (host)", spans); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(wall.Bytes(), &doc); err != nil {
		t.Fatalf("wall trace is not valid JSON: %v", err)
	}

	wallPid := float64(len(cells))
	var simEvents, wallEvents []map[string]any
	for _, e := range doc.TraceEvents {
		if e["pid"].(float64) == wallPid {
			wallEvents = append(wallEvents, e)
		} else {
			simEvents = append(simEvents, e)
		}
	}

	// Sim events are the exact prefix: the wall track is purely additive.
	var plainDoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(plain.Bytes(), &plainDoc); err != nil {
		t.Fatal(err)
	}
	if len(simEvents) != len(plainDoc.TraceEvents) {
		t.Fatalf("sim events changed: %d with wall track, %d without", len(simEvents), len(plainDoc.TraceEvents))
	}

	// The wall process is named and phase-complete.
	byPhase := map[string][]string{}
	sawProcName := false
	for _, e := range wallEvents {
		name := e["name"].(string)
		ph := e["ph"].(string)
		if ph == "M" {
			if name == "process_name" {
				sawProcName = true
				if got := e["args"].(map[string]any)["name"]; got != "wall-clock (host)" {
					t.Errorf("wall process name = %v, want wall-clock (host)", got)
				}
			}
			continue
		}
		if e["cat"] != "wall" {
			t.Errorf("wall event %q has cat %v, want wall", name, e["cat"])
		}
		byPhase[ph] = append(byPhase[ph], name)
	}
	if !sawProcName {
		t.Error("wall track missing process_name metadata")
	}
	if len(byPhase["B"]) != 2 || len(byPhase["E"]) != 2 {
		t.Errorf("wall spans B/E = %v/%v, want queued+run as B/E pairs", byPhase["B"], byPhase["E"])
	}
	if len(byPhase["i"]) != 1 || byPhase["i"][0] != "serve" {
		t.Errorf("wall instants = %v, want [serve]", byPhase["i"])
	}
	// Timestamps are the offsets in microseconds.
	for _, e := range wallEvents {
		if e["name"] == "run" && e["ph"] == "E" {
			if ts := e["ts"].(float64); ts != 10_000 {
				t.Errorf("run end ts = %v µs, want 10000", ts)
			}
		}
	}
}

// TestChromeTraceWallNilSpans: no spans means no extra process — the
// bytes equal the plain export, preserving trace determinism.
func TestChromeTraceWallNilSpans(t *testing.T) {
	r := NewRecorder(0)
	r.Track(0).Instant(7, CatSim, "a", 1)
	cells := []CellTrace{{Name: "x", Events: r.Events()}}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, cells); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceWall(&b, cells, "ignored", nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("nil-span wall export differs from WriteChromeTrace")
	}
}
