package obs

import (
	"reflect"
	"testing"
)

func TestWindowsPairsSyncSpans(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Track(0)
	// Nested sync spans: outer [10,50], inner [20,30].
	tr.Begin(10, CatSim, "outer", 1)
	tr.Begin(20, CatSim, "inner", 2)
	tr.End(30, CatSim, "inner", 2)
	tr.End(50, CatSim, "outer", 1)

	ws := Windows(r.Events())
	want := []Window{
		{Cat: CatSim, Name: "outer", Thread: 0, Arg: 1, Start: 10, End: 50},
		{Cat: CatSim, Name: "inner", Thread: 0, Arg: 2, Start: 20, End: 30},
	}
	if !reflect.DeepEqual(ws, want) {
		t.Fatalf("windows = %+v, want %+v", ws, want)
	}
	if got := ws[0].Cycles(); got != 40 {
		t.Fatalf("Cycles() = %d, want 40", got)
	}
}

func TestWindowsPairsAsyncByKeyAndKeepsBeginThread(t *testing.T) {
	r := NewRecorder(0)
	hw := r.Track(HWThread)
	// Two windows of the same key overlap FIFO; the end for arg=7 comes
	// from a different track but still pairs by (cat, name, arg).
	hw.AsyncBegin(100, CatExpo, "ew", 7)
	hw.AsyncBegin(150, CatExpo, "ew", 8)
	r.Track(3).AsyncEnd(200, CatExpo, "ew", 7)
	hw.AsyncEnd(300, CatExpo, "ew", 8)

	ws := Windows(r.Events())
	want := []Window{
		{Cat: CatExpo, Name: "ew", Thread: HWThread, Arg: 7, Start: 100, End: 200},
		{Cat: CatExpo, Name: "ew", Thread: HWThread, Arg: 8, Start: 150, End: 300},
	}
	if !reflect.DeepEqual(ws, want) {
		t.Fatalf("windows = %+v, want %+v", ws, want)
	}
}

func TestWindowsDropsUnclosedSpans(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Track(0)
	tr.Begin(10, CatSim, "open", 0)
	tr.AsyncBegin(20, CatExpo, "ew", 1)
	tr.End(15, CatSim, "stray-end-wrong-order", 0) // closes "open"
	tr.AsyncEnd(30, CatExpo, "never-begun", 2)     // no matching begin

	ws := Windows(r.Events())
	if len(ws) != 1 || ws[0].Name != "open" {
		t.Fatalf("windows = %+v, want only the closed sync span", ws)
	}
}

func TestInstantsAndFilters(t *testing.T) {
	r := NewRecorder(0)
	tr := r.Track(2)
	tr.Instant(5, CatAttack, "probe", 1)
	tr.Begin(6, CatSim, "span", 0)
	tr.End(7, CatSim, "span", 0)
	tr.Instant(8, CatAttack, "deadtime", 42)

	ins := Instants(r.Events())
	if len(ins) != 2 {
		t.Fatalf("instants = %+v, want 2", ins)
	}
	if ins[0].Name != "probe" || ins[0].TS != 5 || ins[0].Thread != 2 {
		t.Fatalf("first instant = %+v", ins[0])
	}
	if got := FilterInstants(ins, CatAttack, "deadtime"); len(got) != 1 || got[0].Arg != 42 {
		t.Fatalf("FilterInstants(deadtime) = %+v", got)
	}
	ws := Windows(r.Events())
	if got := FilterWindows(ws, CatSim, "span"); len(got) != 1 {
		t.Fatalf("FilterWindows(span) = %+v", got)
	}
	if got := FilterWindows(ws, CatExpo, ""); len(got) != 0 {
		t.Fatalf("FilterWindows(expo) = %+v, want none", got)
	}
}

func TestTrackDroppedCountsRingOverflow(t *testing.T) {
	r := NewRecorder(4)
	tr := r.Track(0)
	for i := 0; i < 10; i++ {
		tr.Instant(uint64(i), CatSim, "e", int64(i))
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("Track.Dropped() = %d, want 6", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Recorder.Dropped() = %d, want 6", got)
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Recorder.Total() = %d, want 10", got)
	}
}
