package obs

import (
	"math/bits"
	"sort"
)

// Hist is a power-of-two-bucketed histogram of uint64 samples: bucket i
// counts samples whose bit length is i (bucket 0 counts zeros, bucket 1
// counts 1, bucket 2 counts 2-3, bucket 3 counts 4-7, ...). Buckets are
// trimmed to the highest nonzero index so the JSON encoding is compact
// and stable.
type Hist struct {
	// Count, Sum and Max summarize all samples.
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	// Buckets holds the per-bit-length counts.
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	b := bits.Len64(v)
	for len(h.Buckets) <= b {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[b]++
}

// Mean returns the average sample, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Merge adds o's samples into h.
func (h *Hist) Merge(o *Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for len(h.Buckets) < len(o.Buckets) {
		h.Buckets = append(h.Buckets, 0)
	}
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
}

// BucketLabel renders the value range of bucket i.
func BucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	lo := uint64(1) << (i - 1)
	hi := uint64(1)<<i - 1
	if lo == hi {
		return itoa(lo)
	}
	return itoa(lo) + "-" + itoa(hi)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Snapshot is a deterministic set of named counters and histograms.
// Names are slash-separated paths (e.g. "sim/cycles/attach"); the JSON
// encoding sorts map keys, so two snapshots built from the same
// simulation marshal to identical bytes.
type Snapshot struct {
	// Counters maps metric name to value; zero-valued counters are
	// omitted (Add skips them) to keep cell rows compact.
	Counters map[string]uint64 `json:"counters,omitempty"`
	// Hists maps histogram name to its buckets.
	Hists map[string]*Hist `json:"hists,omitempty"`
}

// NewSnapshot creates an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{Counters: make(map[string]uint64)}
}

// Add adds n to the named counter (no-op for n == 0, so absent and
// never-incremented counters are indistinguishable).
func (s *Snapshot) Add(name string, n uint64) {
	if n == 0 {
		return
	}
	if s.Counters == nil {
		s.Counters = make(map[string]uint64)
	}
	s.Counters[name] += n
}

// Get returns the named counter's value (0 when absent).
func (s *Snapshot) Get(name string) uint64 { return s.Counters[name] }

// Hist returns the named histogram, creating it on first use.
func (s *Snapshot) Hist(name string) *Hist {
	if s.Hists == nil {
		s.Hists = make(map[string]*Hist)
	}
	h := s.Hists[name]
	if h == nil {
		h = &Hist{}
		s.Hists[name] = h
	}
	return h
}

// Merge folds o into s (counter sums, histogram merges). Merging cells
// in enumeration order yields the same totals at any worker count
// because every operation is commutative and associative on integers.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	for k, v := range o.Counters {
		s.Add(k, v)
	}
	for k, h := range o.Hists {
		s.Hist(k).Merge(h)
	}
}

// Names returns the sorted counter names.
func (s *Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// HistNames returns the sorted histogram names.
func (s *Snapshot) HistNames() []string {
	names := make([]string, 0, len(s.Hists))
	for k := range s.Hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CellObs is one experiment cell's observability payload: its metrics
// snapshot and (when tracing) its retained event stream. Events are
// excluded from the Grid JSON — traces are exported separately via
// WriteChromeTrace — but TraceEvents records how many were observed.
type CellObs struct {
	// Cell is the cell's display name (Cell.Name()).
	Cell string `json:"cell"`
	// Metrics is the cell's counter/histogram snapshot (nil when
	// metrics collection was off).
	Metrics *Snapshot `json:"metrics,omitempty"`
	// TraceEvents and TraceDropped count observed and evicted trace
	// events (zero when tracing was off).
	TraceEvents  uint64 `json:"traceEvents,omitempty"`
	TraceDropped uint64 `json:"traceDropped,omitempty"`
	// Events is the retained trace (not marshaled with the Grid).
	Events []Event `json:"-"`
}

// CellTrace names one cell's event stream for the trace exporters.
type CellTrace struct {
	// Name is the cell's display name.
	Name string
	// Events is the merged deterministic event stream.
	Events []Event
}
