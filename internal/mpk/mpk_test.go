package mpk

import (
	"errors"
	"testing"

	"repro/internal/paging"
)

func TestAssignReleaseRecycle(t *testing.T) {
	a := NewAllocator()
	d1, err := a.Assign(10)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Assign(20)
	if err != nil {
		t.Fatal(err)
	}
	if d1 == d2 {
		t.Fatal("distinct PMOs share a domain")
	}
	// Re-assign returns the same domain.
	if d, _ := a.Assign(10); d != d1 {
		t.Fatal("re-assign changed domain")
	}
	if a.InUse() != 2 {
		t.Fatalf("in use = %d", a.InUse())
	}
	a.Release(10)
	if _, ok := a.DomainOf(10); ok {
		t.Fatal("released domain still mapped")
	}
	d3, err := a.Assign(30)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != d1 {
		t.Fatalf("released domain not recycled: got %d want %d", d3, d1)
	}
}

func TestDomainExhaustion(t *testing.T) {
	a := NewAllocator()
	for i := uint32(1); i < NumDomains; i++ {
		if _, err := a.Assign(i); err != nil {
			t.Fatalf("assign %d: %v", i, err)
		}
	}
	if _, err := a.Assign(999); !errors.Is(err, ErrNoDomains) {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	// Domain 0 must never be handed out.
	for i := uint32(1); i < NumDomains; i++ {
		if d, _ := a.DomainOf(i); d == 0 {
			t.Fatal("domain 0 was allocated")
		}
	}
}

func TestRegistersDenyByDefault(t *testing.T) {
	var r Registers
	if r.Allows(1, paging.PermRead) {
		t.Fatal("zero-value registers must deny")
	}
}

func TestGrantRevoke(t *testing.T) {
	var r Registers
	if err := r.Grant(3, paging.PermRead); err != nil {
		t.Fatal(err)
	}
	if !r.Allows(3, paging.PermRead) {
		t.Fatal("grant did not take effect")
	}
	if r.Allows(3, paging.PermWrite) {
		t.Fatal("read grant allowed write")
	}
	if err := r.Grant(3, paging.ReadWrite); err != nil {
		t.Fatal(err)
	}
	if !r.Allows(3, paging.PermWrite) {
		t.Fatal("upgrade to rw failed")
	}
	if err := r.Revoke(3); err != nil {
		t.Fatal(err)
	}
	if r.Allows(3, paging.PermRead) {
		t.Fatal("revoke did not take effect")
	}
}

func TestRegistersBounds(t *testing.T) {
	var r Registers
	if err := r.Grant(0, paging.PermRead); err == nil {
		t.Fatal("grant on reserved domain 0 accepted")
	}
	if err := r.Grant(NumDomains, paging.PermRead); err == nil {
		t.Fatal("grant past range accepted")
	}
	if err := r.Revoke(-1); err == nil {
		t.Fatal("revoke on negative domain accepted")
	}
	if r.Allows(NoDomain, paging.PermRead) {
		t.Fatal("NoDomain must deny")
	}
	if r.Perm(NumDomains+1) != 0 {
		t.Fatal("out-of-range Perm must be empty")
	}
}

func TestClear(t *testing.T) {
	var r Registers
	r.Grant(1, paging.ReadWrite)
	r.Grant(5, paging.PermRead)
	r.Clear()
	if r.Allows(1, paging.PermRead) || r.Allows(5, paging.PermRead) {
		t.Fatal("clear left grants behind")
	}
}

func TestPerThreadIsolation(t *testing.T) {
	// Two threads' register files are independent: the TEW concept.
	var t1, t2 Registers
	t1.Grant(2, paging.ReadWrite)
	if t2.Allows(2, paging.PermRead) {
		t.Fatal("grant leaked across threads")
	}
}
