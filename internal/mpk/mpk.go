// Package mpk models Intel MPK-style intra-process isolation: protection
// domains (protection keys) assigned to attached PMOs and per-thread
// permission registers (PKRU-like) that grant or revoke a thread's access
// to a domain without kernel involvement. TERP's thread exposure windows
// (TEWs) are implemented as grants and revokes on these registers; the
// cycle cost of a change (params.SilentCondCost, which includes the memory
// fences of a real WRPKRU) is charged by the runtime.
package mpk

import (
	"errors"
	"fmt"

	"repro/internal/paging"
)

// NumDomains is the number of hardware protection keys (Intel MPK has 16).
const NumDomains = 16

// Domain is a protection key index.
type Domain int

// NoDomain marks a PMO with no assigned key.
const NoDomain Domain = -1

// Errors returned by the allocator and registers.
var (
	// ErrNoDomains is returned when all protection keys are in use.
	ErrNoDomains = errors.New("mpk: out of protection domains")
	// ErrNotAllocated is returned when using an unallocated domain.
	ErrNotAllocated = errors.New("mpk: domain not allocated")
)

// Allocator hands out protection domains to attached PMOs, one per PMO,
// and recycles them on detach (Section V-B: "each attached PMO is assigned
// its own protection domain").
type Allocator struct {
	owner [NumDomains]uint32 // PMO ID or 0
	byPMO map[uint32]Domain
}

// NewAllocator creates an empty domain allocator. Domain 0 is reserved
// (like MPK's default key) and never handed out.
func NewAllocator() *Allocator {
	return &Allocator{byPMO: make(map[uint32]Domain)}
}

// Assign allocates a domain for the PMO, or returns its existing one.
func (a *Allocator) Assign(pmoID uint32) (Domain, error) {
	if d, ok := a.byPMO[pmoID]; ok {
		return d, nil
	}
	for d := 1; d < NumDomains; d++ {
		if a.owner[d] == 0 {
			a.owner[d] = pmoID
			a.byPMO[pmoID] = Domain(d)
			return Domain(d), nil
		}
	}
	return NoDomain, ErrNoDomains
}

// Release returns the PMO's domain to the free pool (on full detach).
func (a *Allocator) Release(pmoID uint32) {
	if d, ok := a.byPMO[pmoID]; ok {
		a.owner[d] = 0
		delete(a.byPMO, pmoID)
	}
}

// DomainOf returns the domain currently assigned to the PMO.
func (a *Allocator) DomainOf(pmoID uint32) (Domain, bool) {
	d, ok := a.byPMO[pmoID]
	return d, ok
}

// InUse returns the number of allocated domains.
func (a *Allocator) InUse() int { return len(a.byPMO) }

// Registers is one thread's permission register file: the access rights
// the thread holds for each protection domain. The zero value denies
// everything, which is the secure default.
type Registers struct {
	perm [NumDomains]paging.Perm
}

// Grant opens the thread's access to the domain with the given rights.
func (r *Registers) Grant(d Domain, p paging.Perm) error {
	if d <= 0 || int(d) >= NumDomains {
		return fmt.Errorf("%w: %d", ErrNotAllocated, d)
	}
	r.perm[d] = p
	return nil
}

// Revoke closes the thread's access to the domain.
func (r *Registers) Revoke(d Domain) error {
	if d <= 0 || int(d) >= NumDomains {
		return fmt.Errorf("%w: %d", ErrNotAllocated, d)
	}
	r.perm[d] = 0
	return nil
}

// Allows reports whether the thread's rights on the domain include want.
func (r *Registers) Allows(d Domain, want paging.Perm) bool {
	if d <= 0 || int(d) >= NumDomains {
		return false
	}
	return r.perm[d].Allows(want)
}

// Perm returns the thread's current rights on the domain.
func (r *Registers) Perm(d Domain) paging.Perm {
	if d <= 0 || int(d) >= NumDomains {
		return 0
	}
	return r.perm[d]
}

// Clear revokes every domain (used at thread teardown).
func (r *Registers) Clear() {
	for i := range r.perm {
		r.perm[i] = 0
	}
}
