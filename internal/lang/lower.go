package lang

import (
	"fmt"

	"repro/internal/ir"
)

// Compile parses and lowers TPL source to an IR program (without
// attach/detach insertion — run terpc.Insert on the result).
func Compile(src string) (*ir.Program, error) {
	f, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(f)
}

// Lower converts a parsed file into IR.
func Lower(f *File) (*ir.Program, error) {
	prog := ir.NewProgram()
	kinds := map[string]string{} // name -> "pmo" | "dram" | "func"
	for _, d := range f.PMOs {
		if kinds[d.Name] != "" {
			return nil, errf(d.Line, "duplicate declaration %q", d.Name)
		}
		kinds[d.Name] = "pmo"
		prog.PMOs = append(prog.PMOs, ir.PMODecl{Name: d.Name, Elems: d.Elems})
	}
	for _, d := range f.Vars {
		if kinds[d.Name] != "" {
			return nil, errf(d.Line, "duplicate declaration %q", d.Name)
		}
		kinds[d.Name] = "dram"
		prog.DRAMs = append(prog.DRAMs, ir.DRAMDecl{Name: d.Name, Elems: d.Elems})
	}
	for _, fd := range f.Funcs {
		if kinds[fd.Name] != "" {
			return nil, errf(fd.Line, "duplicate declaration %q", fd.Name)
		}
		kinds[fd.Name] = "func"
	}
	for _, fd := range f.Funcs {
		fn, err := lowerFunc(fd, kinds)
		if err != nil {
			return nil, err
		}
		prog.Funcs[fd.Name] = fn
	}
	return prog, nil
}

type lowerer struct {
	f     *ir.Func
	cur   *ir.Block
	vars  map[string]int // local name -> register
	kinds map[string]string
	// loop targets for break/continue (innermost last). continueTo is
	// the block that runs the post statement (or the header).
	breakTo    []int
	continueTo []int
}

func lowerFunc(fd *FuncDecl, kinds map[string]string) (*ir.Func, error) {
	lw := &lowerer{
		f:     ir.NewFunc(fd.Name),
		vars:  map[string]int{},
		kinds: kinds,
	}
	lw.cur = lw.f.NewBlock()
	lw.f.Entry = lw.cur.ID
	for _, p := range fd.Params {
		r := lw.f.NewReg()
		lw.vars[p] = r
		lw.f.Params = append(lw.f.Params, r)
	}
	if err := lw.stmts(fd.Body); err != nil {
		return nil, err
	}
	// Fall-off-the-end return.
	if lw.cur != nil {
		lw.cur.Term, lw.cur.Cond = ir.Ret, -1
	}
	if err := lw.f.Validate(); err != nil {
		return nil, err
	}
	return lw.f, nil
}

func (lw *lowerer) emit(in ir.Instr) { lw.cur.Emit(in) }

func (lw *lowerer) stmts(list []Stmt) error {
	for _, s := range list {
		if lw.cur == nil {
			// Unreachable code after return: tolerate and drop.
			return nil
		}
		if err := lw.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (lw *lowerer) stmt(s Stmt) error {
	switch st := s.(type) {
	case *VarStmt:
		if _, exists := lw.vars[st.Name]; exists {
			return errf(st.Line, "redeclared variable %q", st.Name)
		}
		r := lw.f.NewReg()
		lw.vars[st.Name] = r
		if st.Init != nil {
			v, err := lw.expr(st.Init)
			if err != nil {
				return err
			}
			lw.emit(ir.Instr{Op: ir.Mov, Dst: r, A: v})
		} else {
			lw.emit(ir.Instr{Op: ir.Const, Dst: r, Imm: 0})
		}
	case *AssignStmt:
		return lw.assign(st)
	case *IfStmt:
		cond, err := lw.expr(st.Cond)
		if err != nil {
			return err
		}
		head := lw.cur
		thenB := lw.f.NewBlock()
		var elseB *ir.Block
		join := lw.f.NewBlock()
		head.Term, head.Cond = ir.Br, cond
		if st.Else != nil {
			elseB = lw.f.NewBlock()
			head.Succs = []int{thenB.ID, elseB.ID}
		} else {
			head.Succs = []int{thenB.ID, join.ID}
		}
		lw.cur = thenB
		if err := lw.stmts(st.Then); err != nil {
			return err
		}
		if lw.cur != nil {
			lw.cur.Term, lw.cur.Succs = ir.Jmp, []int{join.ID}
		}
		if elseB != nil {
			lw.cur = elseB
			if err := lw.stmts(st.Else); err != nil {
				return err
			}
			if lw.cur != nil {
				lw.cur.Term, lw.cur.Succs = ir.Jmp, []int{join.ID}
			}
		}
		lw.cur = join
	case *WhileStmt:
		return lw.loop(nil, st.Cond, nil, st.Body, 0)
	case *ForStmt:
		trips := tripEstimate(st)
		return lw.loop(st.Init, st.Cond, st.Post, st.Body, trips)
	case *ReturnStmt:
		r := -1
		if st.Value != nil {
			v, err := lw.expr(st.Value)
			if err != nil {
				return err
			}
			r = v
		}
		lw.cur.Term, lw.cur.Cond = ir.Ret, r
		lw.cur = nil
	case *BreakStmt:
		if len(lw.breakTo) == 0 {
			return errf(st.Line, "break outside loop")
		}
		lw.cur.Term, lw.cur.Succs = ir.Jmp, []int{lw.breakTo[len(lw.breakTo)-1]}
		lw.cur = nil
	case *ContinueStmt:
		if len(lw.continueTo) == 0 {
			return errf(st.Line, "continue outside loop")
		}
		lw.cur.Term, lw.cur.Succs = ir.Jmp, []int{lw.continueTo[len(lw.continueTo)-1]}
		lw.cur = nil
	case *ComputeStmt:
		lw.emit(ir.Instr{Op: ir.Compute, Imm: st.Cycles})
	case *ExprStmt:
		_, err := lw.expr(st.X)
		return err
	default:
		return fmt.Errorf("tpl: unknown statement %T", s)
	}
	return nil
}

func (lw *lowerer) loop(init *AssignStmt, cond Expr, post *AssignStmt, body []Stmt, trips int) error {
	if init != nil {
		if err := lw.assign(init); err != nil {
			return err
		}
	}
	pre := lw.cur
	header := lw.f.NewBlock()
	header.TripHint = trips
	pre.Term, pre.Succs = ir.Jmp, []int{header.ID}

	lw.cur = header
	c, err := lw.expr(cond)
	if err != nil {
		return err
	}
	bodyB := lw.f.NewBlock()
	exit := lw.f.NewBlock()
	header.Term, header.Cond, header.Succs = ir.Br, c, []int{bodyB.ID, exit.ID}

	// continue jumps to a dedicated latch block that runs the post
	// statement before re-entering the header; break jumps to the exit.
	latch := lw.f.NewBlock()
	lw.breakTo = append(lw.breakTo, exit.ID)
	lw.continueTo = append(lw.continueTo, latch.ID)

	lw.cur = bodyB
	if err := lw.stmts(body); err != nil {
		return err
	}
	if lw.cur != nil {
		lw.cur.Term, lw.cur.Succs = ir.Jmp, []int{latch.ID}
	}
	lw.cur = latch
	if post != nil {
		if err := lw.assign(post); err != nil {
			return err
		}
	}
	lw.cur.Term, lw.cur.Succs = ir.Jmp, []int{header.ID}

	lw.breakTo = lw.breakTo[:len(lw.breakTo)-1]
	lw.continueTo = lw.continueTo[:len(lw.continueTo)-1]
	lw.cur = exit
	return nil
}

// tripEstimate recognizes for (i = C0; i < C1; i = i + C2) and returns
// the static trip count, or 0 (unknown).
func tripEstimate(st *ForStmt) int {
	if st.Init == nil || st.Post == nil || st.Init.Index != nil || st.Post.Index != nil {
		return 0
	}
	i := st.Init.Name
	if st.Post.Name != i {
		return 0
	}
	c0, ok := st.Init.Value.(*IntLit)
	if !ok {
		return 0
	}
	cmp, ok := st.Cond.(*BinExpr)
	if !ok || (cmp.Op != "<" && cmp.Op != "<=") {
		return 0
	}
	lhs, ok := cmp.L.(*Ident)
	if !ok || lhs.Name != i {
		return 0
	}
	c1, ok := cmp.R.(*IntLit)
	if !ok {
		return 0
	}
	add, ok := st.Post.Value.(*BinExpr)
	if !ok || add.Op != "+" {
		return 0
	}
	al, ok := add.L.(*Ident)
	if !ok || al.Name != i {
		return 0
	}
	c2, ok := add.R.(*IntLit)
	if !ok || c2.Val <= 0 {
		return 0
	}
	span := c1.Val - c0.Val
	if cmp.Op == "<=" {
		span++
	}
	if span <= 0 {
		return 0
	}
	n := (span + c2.Val - 1) / c2.Val
	if n > 1<<30 {
		return 0
	}
	return int(n)
}

func (lw *lowerer) assign(st *AssignStmt) error {
	v, err := lw.expr(st.Value)
	if err != nil {
		return err
	}
	if st.Index == nil {
		r, ok := lw.vars[st.Name]
		if !ok {
			return errf(st.Line, "undeclared variable %q", st.Name)
		}
		lw.emit(ir.Instr{Op: ir.Mov, Dst: r, A: v})
		return nil
	}
	idx, err := lw.expr(st.Index)
	if err != nil {
		return err
	}
	switch lw.kinds[st.Name] {
	case "pmo":
		lw.emit(ir.Instr{Op: ir.StorePM, A: idx, B: v, Sym: st.Name})
	case "dram":
		lw.emit(ir.Instr{Op: ir.StoreDRAM, A: idx, B: v, Sym: st.Name})
	default:
		return errf(st.Line, "unknown array %q", st.Name)
	}
	return nil
}

var binOps = map[string]ir.Op{
	"+": ir.Add, "-": ir.Sub, "*": ir.Mul, "/": ir.Div, "%": ir.Mod,
	"&": ir.And, "|": ir.Or, "^": ir.Xor, "<<": ir.Shl, ">>": ir.Shr,
	"==": ir.CmpEQ, "!=": ir.CmpNE, "<": ir.CmpLT, "<=": ir.CmpLE,
	">": ir.CmpGT, ">=": ir.CmpGE,
}

func (lw *lowerer) expr(e Expr) (int, error) {
	switch x := e.(type) {
	case *IntLit:
		r := lw.f.NewReg()
		lw.emit(ir.Instr{Op: ir.Const, Dst: r, Imm: x.Val})
		return r, nil
	case *Ident:
		r, ok := lw.vars[x.Name]
		if !ok {
			return 0, errf(x.Line, "undeclared variable %q", x.Name)
		}
		return r, nil
	case *IndexExpr:
		idx, err := lw.expr(x.Index)
		if err != nil {
			return 0, err
		}
		r := lw.f.NewReg()
		switch lw.kinds[x.Name] {
		case "pmo":
			lw.emit(ir.Instr{Op: ir.LoadPM, Dst: r, A: idx, Sym: x.Name})
		case "dram":
			lw.emit(ir.Instr{Op: ir.LoadDRAM, Dst: r, A: idx, Sym: x.Name})
		default:
			return 0, errf(x.Line, "unknown array %q", x.Name)
		}
		return r, nil
	case *CallExpr:
		if lw.kinds[x.Name] != "func" {
			return 0, errf(x.Line, "call of non-function %q", x.Name)
		}
		var args []int
		for _, a := range x.Args {
			r, err := lw.expr(a)
			if err != nil {
				return 0, err
			}
			args = append(args, r)
		}
		r := lw.f.NewReg()
		lw.emit(ir.Instr{Op: ir.Call, Dst: r, Sym: x.Name, Args: args})
		return r, nil
	case *BinExpr:
		l, err := lw.expr(x.L)
		if err != nil {
			return 0, err
		}
		r, err := lw.expr(x.R)
		if err != nil {
			return 0, err
		}
		dst := lw.f.NewReg()
		switch x.Op {
		case "&&", "||":
			// Normalize both sides to 0/1 then combine bitwise.
			// TPL's logical operators are not short-circuiting.
			zl, zr := lw.f.NewReg(), lw.f.NewReg()
			zero := lw.f.NewReg()
			lw.emit(ir.Instr{Op: ir.Const, Dst: zero, Imm: 0})
			lw.emit(ir.Instr{Op: ir.CmpNE, Dst: zl, A: l, B: zero})
			lw.emit(ir.Instr{Op: ir.CmpNE, Dst: zr, A: r, B: zero})
			if x.Op == "&&" {
				lw.emit(ir.Instr{Op: ir.And, Dst: dst, A: zl, B: zr})
			} else {
				lw.emit(ir.Instr{Op: ir.Or, Dst: dst, A: zl, B: zr})
			}
		default:
			op, ok := binOps[x.Op]
			if !ok {
				return 0, errf(x.Line, "unknown operator %q", x.Op)
			}
			lw.emit(ir.Instr{Op: op, Dst: dst, A: l, B: r})
		}
		return dst, nil
	case *UnExpr:
		v, err := lw.expr(x.X)
		if err != nil {
			return 0, err
		}
		dst := lw.f.NewReg()
		zero := lw.f.NewReg()
		lw.emit(ir.Instr{Op: ir.Const, Dst: zero, Imm: 0})
		if x.Op == "-" {
			lw.emit(ir.Instr{Op: ir.Sub, Dst: dst, A: zero, B: v})
		} else {
			lw.emit(ir.Instr{Op: ir.CmpEQ, Dst: dst, A: v, B: zero})
		}
		return dst, nil
	default:
		return 0, fmt.Errorf("tpl: unknown expression %T", e)
	}
}
