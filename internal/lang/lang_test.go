package lang

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestParseDeclarations(t *testing.T) {
	f, err := Parse(`
pmo grid[1024];
var tmp[64];
func main() { return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.PMOs) != 1 || f.PMOs[0].Name != "grid" || f.PMOs[0].Elems != 1024 {
		t.Fatalf("pmos = %+v", f.PMOs)
	}
	if len(f.Vars) != 1 || f.Vars[0].Elems != 64 {
		t.Fatalf("vars = %+v", f.Vars)
	}
	if len(f.Funcs) != 1 || f.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %+v", f.Funcs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`pmo x[0];`,                // non-positive size
		`pmo x[10]`,                // missing semicolon
		`func f( {`,                // bad params
		`func f() { var; }`,        // missing name
		`func f() { x = ; }`,       // missing expr
		`func f() { if x { } }`,    // missing parens
		`func f() { compute(n); }`, // non-literal compute
		`bogus`,                    // unknown top-level
		`func f() { @ }`,           // bad character
		`func f() { return 1; `,    // unterminated block
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("accepted invalid source %q", src)
		}
	}
}

func TestErrorHasLine(t *testing.T) {
	_, err := Parse("pmo ok[4];\nfunc f() {\n  y = 1;\n}")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Compile("pmo ok[4];\nfunc f() {\n  y = 1;\n}")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-3 error, got %v", err)
	}
}

func TestLowerSimpleFunction(t *testing.T) {
	prog, err := Compile(`
pmo data[128];
func main() {
  var i;
  i = 3;
  data[i] = data[i] + 10;
  return data[i];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.Funcs["main"]
	if f == nil {
		t.Fatal("main missing")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	loads, stores := 0, 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.LoadPM:
				loads++
			case ir.StorePM:
				stores++
			}
		}
	}
	if loads != 2 || stores != 1 {
		t.Fatalf("loads/stores = %d/%d", loads, stores)
	}
}

func TestLowerControlFlow(t *testing.T) {
	prog, err := Compile(`
func abs(x) {
  if (x < 0) { return 0 - x; }
  return x;
}
func main() {
  var s; var i;
  s = 0;
  for (i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
  }
  while (s > 100) { s = s - 100; }
  return abs(s);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range prog.Funcs {
		if err := f.Validate(); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
}

func TestForTripHint(t *testing.T) {
	prog, err := Compile(`
func main() {
  var i; var s;
  for (i = 0; i < 500; i = i + 1) { s = s + i; }
  return s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range prog.Funcs["main"].Blocks {
		if b.TripHint == 500 {
			found = true
		}
	}
	if !found {
		t.Fatal("trip hint 500 not recorded")
	}
}

func TestForTripHintStride(t *testing.T) {
	prog, err := Compile(`
func main() {
  var i;
  for (i = 10; i <= 100; i = i + 10) { }
  return i;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range prog.Funcs["main"].Blocks {
		if b.TripHint == 10 {
			found = true
		}
	}
	if !found {
		t.Fatal("strided trip hint not recorded")
	}
}

func TestWhileHasNoTripHint(t *testing.T) {
	prog, err := Compile(`
func main() {
  var i;
  while (i < 10) { i = i + 1; }
  return i;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range prog.Funcs["main"].Blocks {
		if b.TripHint != 0 {
			t.Fatal("while loop must have no static trip hint")
		}
	}
}

func TestDuplicateDeclarationsRejected(t *testing.T) {
	for _, src := range []string{
		"pmo a[4];\npmo a[4];\nfunc main() { return 0; }",
		"pmo a[4];\nvar a[4];\nfunc main() { return 0; }",
		"pmo main[4];\nfunc main() { return 0; }",
	} {
		if _, err := Compile(src); err == nil {
			t.Fatalf("accepted duplicate: %q", src)
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []string{
		"func main() { return x; }",               // undeclared var
		"func main() { var a; var a; return 0; }", // redeclared
		"func main() { a[0] = 1; return 0; }",     // unknown array
		"func main() { return zzz(1); }",          // unknown function
		"func main() { return nothere[0]; }",      // unknown array read
	}
	for _, src := range cases {
		if _, err := Compile(src); err == nil {
			t.Fatalf("accepted semantic error: %q", src)
		}
	}
}

func TestUnreachableAfterReturnTolerated(t *testing.T) {
	prog, err := Compile(`
func main() {
  return 1;
  return 2;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Funcs["main"].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCommentsAndOperators(t *testing.T) {
	prog, err := Compile(`
// kernel with every operator
func main() {
  var a; var b;
  a = 6; b = 3;
  a = a + b - 1 * 2 / 1 % 5;
  a = (a << 2) >> 1;
  a = a & 7 | 1 ^ 2;
  b = (a == 5) + (a != 5) + (a < 5) + (a <= 5) + (a > 5) + (a >= 5);
  b = (a && b) + (a || b) + (!a) + (-a);
  return b;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Funcs["main"].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakContinueLowering(t *testing.T) {
	prog, err := Compile(`
func main() {
  var i; var s;
  for (i = 0; i < 100; i = i + 1) {
    if (i == 10) { break; }
    if (i % 2 == 0) { continue; }
    s = s + i;
  }
  return s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Funcs["main"].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBreakOutsideLoopRejected(t *testing.T) {
	for _, src := range []string{
		"func main() { break; return 0; }",
		"func main() { continue; return 0; }",
		"func main() { if (1) { break; } return 0; }",
	} {
		if _, err := Compile(src); err == nil {
			t.Fatalf("accepted %q", src)
		}
	}
}

func TestNestedBreakTargetsInnerLoop(t *testing.T) {
	prog, err := Compile(`
func main() {
  var i; var j; var s;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 100; j = j + 1) {
      if (j == 2) { break; }
      s = s + 1;
    }
  }
  return s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Funcs["main"].Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestParserRobustness throws random byte soup and random mutations of a
// valid program at the parser: it must return an error or a File, never
// panic.
func TestParserRobustness(t *testing.T) {
	valid := `
pmo data[64];
func main() {
  var i;
  for (i = 0; i < 64; i = i + 1) { data[i] = i; }
  return data[7];
}
`
	r := rand.New(rand.NewSource(13))
	defer func() {
		if rec := recover(); rec != nil {
			t.Fatalf("parser panicked: %v", rec)
		}
	}()
	// Random byte soup.
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(200)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(128))
		}
		_, _ = Parse(string(b))
		_, _ = Compile(string(b))
	}
	// Mutations of the valid program: deletions, swaps, insertions.
	for trial := 0; trial < 300; trial++ {
		b := []byte(valid)
		switch r.Intn(3) {
		case 0:
			i := r.Intn(len(b))
			b = append(b[:i], b[i+1:]...)
		case 1:
			i, j := r.Intn(len(b)), r.Intn(len(b))
			b[i], b[j] = b[j], b[i]
		default:
			i := r.Intn(len(b))
			b = append(b[:i], append([]byte{byte(33 + r.Intn(90))}, b[i:]...)...)
		}
		_, _ = Compile(string(b))
	}
}
