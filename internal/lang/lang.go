// Package lang implements TPL, the small C-like language the SPEC-style
// kernels of this reproduction are written in. TPL is the stand-in for
// the C/OpenMP sources the paper compiles with its LLVM pass: programs
// declare persistent arrays (each hosted in its own PMO, matching the
// paper's "each heap object larger than 128KB is a PMO" methodology) and
// volatile arrays, and define integer functions with if/while/for control
// flow. The compiler pipeline is Parse (this package) -> Lower (to
// internal/ir) -> terpc.Insert (attach/detach insertion) -> interp.
//
// Grammar (informal):
//
//	program  := { "pmo" IDENT "[" INT "]" ";"
//	            | "var" IDENT "[" INT "]" ";"
//	            | "func" IDENT "(" [params] ")" block }
//	stmt     := "var" IDENT ["=" expr] ";"
//	            | IDENT "=" expr ";" | IDENT "[" expr "]" "=" expr ";"
//	            | "if" "(" expr ")" block ["else" block]
//	            | "while" "(" expr ")" block
//	            | "for" "(" simple ";" expr ";" simple ")" block
//	            | "return" [expr] ";" | "compute" "(" INT ")" ";"
//	            | "break" ";" | "continue" ";"
//	            | expr ";"
//
// Expressions are 64-bit integers with the usual arithmetic, comparison,
// bitwise and (non-short-circuit) logical operators.
package lang

import (
	"fmt"
	"strconv"
)

// --- tokens ---------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokInt
	tokIdent
	tokPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	val  int64
	line int
}

// Error is a positioned compile error.
type Error struct {
	// Line is the 1-based source line.
	Line int
	// Msg describes the problem.
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("tpl: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the source.
func lex(src string) ([]token, error) {
	var toks []token
	line := 1
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9') {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, errf(line, "bad integer %q", src[i:j])
			}
			toks = append(toks, token{tokInt, src[i:j], v, line})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], 0, line})
			i = j
		default:
			// Two-character operators first.
			if i+1 < n {
				two := src[i : i+2]
				switch two {
				case "==", "!=", "<=", ">=", "&&", "||", "<<", ">>":
					toks = append(toks, token{tokPunct, two, 0, line})
					i += 2
					continue
				}
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^',
				'(', ')', '{', '}', '[', ']', ';', ',':
				toks = append(toks, token{tokPunct, string(c), 0, line})
				i++
			default:
				return nil, errf(line, "unexpected character %q", string(c))
			}
		}
	}
	toks = append(toks, token{tokEOF, "", 0, line})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

// --- AST ------------------------------------------------------------------

// File is a parsed TPL source file.
type File struct {
	// PMOs are the persistent array declarations.
	PMOs []ArrayDecl
	// Vars are the volatile global arrays.
	Vars []ArrayDecl
	// Funcs are the function definitions, in source order.
	Funcs []*FuncDecl
}

// ArrayDecl is a top-level array declaration.
type ArrayDecl struct {
	// Name is the array identifier.
	Name string
	// Elems is the element count.
	Elems int
	// Line is the declaration's source line.
	Line int
}

// FuncDecl is a function definition.
type FuncDecl struct {
	// Name is the function identifier.
	Name string
	// Params are the parameter names.
	Params []string
	// Body is the function body.
	Body []Stmt
	// Line is the definition's source line.
	Line int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// VarStmt declares a local variable with an optional initializer.
type VarStmt struct {
	Name string
	Init Expr // may be nil
	Line int
}

// AssignStmt assigns to a variable or an array element.
type AssignStmt struct {
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
	Line  int
}

// IfStmt is a conditional.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
	Line int
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body []Stmt
	Line int
}

// ForStmt is a C-style for loop; Init and Post are assignments.
type ForStmt struct {
	Init *AssignStmt // may be nil
	Cond Expr
	Post *AssignStmt // may be nil
	Body []Stmt
	Line int
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	Value Expr // may be nil
	Line  int
}

// ComputeStmt charges a constant number of cycles of opaque work.
type ComputeStmt struct {
	Cycles int64
	Line   int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct {
	Line int
}

// ContinueStmt jumps to the innermost loop's next iteration.
type ContinueStmt struct {
	Line int
}

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*VarStmt) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ComputeStmt) stmtNode()  {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct {
	Val  int64
	Line int
}

// Ident references a local variable or parameter.
type Ident struct {
	Name string
	Line int
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Name  string
	Index Expr
	Line  int
}

// CallExpr calls a function.
type CallExpr struct {
	Name string
	Args []Expr
	Line int
}

// BinExpr is a binary operation; Op is the source operator text.
type BinExpr struct {
	Op   string
	L, R Expr
	Line int
}

// UnExpr is unary minus or logical not.
type UnExpr struct {
	Op   string
	X    Expr
	Line int
}

func (*IntLit) exprNode()    {}
func (*Ident) exprNode()     {}
func (*IndexExpr) exprNode() {}
func (*CallExpr) exprNode()  {}
func (*BinExpr) exprNode()   {}
func (*UnExpr) exprNode()    {}

// --- parser ---------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

// Parse parses TPL source into a File.
func Parse(src string) (*File, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.cur().kind != tokEOF {
		t := p.cur()
		switch {
		case p.isIdent("pmo"):
			d, err := p.arrayDecl()
			if err != nil {
				return nil, err
			}
			f.PMOs = append(f.PMOs, d)
		case p.isIdent("var"):
			d, err := p.arrayDecl()
			if err != nil {
				return nil, err
			}
			f.Vars = append(f.Vars, d)
		case p.isIdent("func"):
			fn, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		default:
			return nil, errf(t.line, "expected pmo, var or func, got %q", t.text)
		}
	}
	return f, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) isIdent(s string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) expectPunct(s string) error {
	if !p.isPunct(s) {
		return errf(p.cur().line, "expected %q, got %q", s, p.cur().text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, int, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", t.line, errf(t.line, "expected identifier, got %q", t.text)
	}
	p.next()
	return t.text, t.line, nil
}

func (p *parser) arrayDecl() (ArrayDecl, error) {
	p.next() // pmo | var
	name, line, err := p.expectIdent()
	if err != nil {
		return ArrayDecl{}, err
	}
	if err := p.expectPunct("["); err != nil {
		return ArrayDecl{}, err
	}
	t := p.cur()
	if t.kind != tokInt || t.val <= 0 {
		return ArrayDecl{}, errf(t.line, "array size must be a positive integer")
	}
	p.next()
	if err := p.expectPunct("]"); err != nil {
		return ArrayDecl{}, err
	}
	if err := p.expectPunct(";"); err != nil {
		return ArrayDecl{}, err
	}
	return ArrayDecl{Name: name, Elems: int(t.val), Line: line}, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	p.next() // func
	name, line, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []string
	for !p.isPunct(")") {
		pn, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		params = append(params, pn)
		if p.isPunct(",") {
			p.next()
		}
	}
	p.next() // )
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name, Params: params, Body: body, Line: line}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.isPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, errf(p.cur().line, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.next() // }
	return out, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.isIdent("var"):
		p.next()
		name, line, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.isPunct("=") {
			p.next()
			init, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		return &VarStmt{Name: name, Init: init, Line: line}, p.expectPunct(";")
	case p.isIdent("if"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.isIdent("else") {
			p.next()
			if p.isIdent("if") {
				s, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{s}
			} else {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els, Line: t.line}, nil
	case p.isIdent("while"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Line: t.line}, nil
	case p.isIdent("for"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var init, post *AssignStmt
		if !p.isPunct(";") {
			s, err := p.simpleAssign()
			if err != nil {
				return nil, err
			}
			init = s
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			s, err := p.simpleAssign()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body, Line: t.line}, nil
	case p.isIdent("return"):
		p.next()
		if p.isPunct(";") {
			p.next()
			return &ReturnStmt{Line: t.line}, nil
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: v, Line: t.line}, p.expectPunct(";")
	case p.isIdent("break"):
		p.next()
		return &BreakStmt{Line: t.line}, p.expectPunct(";")
	case p.isIdent("continue"):
		p.next()
		return &ContinueStmt{Line: t.line}, p.expectPunct(";")
	case p.isIdent("compute"):
		p.next()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		c := p.cur()
		if c.kind != tokInt || c.val < 0 {
			return nil, errf(c.line, "compute() needs a non-negative integer literal")
		}
		p.next()
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &ComputeStmt{Cycles: c.val, Line: t.line}, p.expectPunct(";")
	case t.kind == tokIdent:
		// assignment or call statement
		if p.toks[p.pos+1].kind == tokPunct {
			switch p.toks[p.pos+1].text {
			case "=", "[":
				s, err := p.simpleAssign()
				if err != nil {
					return nil, err
				}
				return s, p.expectPunct(";")
			}
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ExprStmt{X: e, Line: t.line}, p.expectPunct(";")
	default:
		return nil, errf(t.line, "unexpected token %q", t.text)
	}
}

// simpleAssign parses IDENT = expr or IDENT [ expr ] = expr without the
// trailing semicolon (shared by statements and for-loop clauses).
func (p *parser) simpleAssign() (*AssignStmt, error) {
	name, line, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var idx Expr
	if p.isPunct("[") {
		p.next()
		idx, err = p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	v, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{Name: name, Index: idx, Value: v, Line: line}, nil
}

// --- expressions (precedence climbing) -------------------------------------

var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4, "|": 4, "^": 4,
	"*": 5, "/": 5, "%": 5, "&": 5, "<<": 5, ">>": 5,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, L: lhs, R: rhs, Line: t.line}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: t.text, X: x, Line: t.line}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.next()
		return &IntLit{Val: t.val, Line: t.line}, nil
	case t.kind == tokIdent:
		p.next()
		switch {
		case p.isPunct("("):
			p.next()
			var args []Expr
			for !p.isPunct(")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.isPunct(",") {
					p.next()
				}
			}
			p.next()
			return &CallExpr{Name: t.text, Args: args, Line: t.line}, nil
		case p.isPunct("["):
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.text, Index: idx, Line: t.line}, nil
		default:
			return &Ident{Name: t.text, Line: t.line}, nil
		}
	case p.isPunct("("):
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	default:
		return nil, errf(t.line, "unexpected token %q in expression", t.text)
	}
}
