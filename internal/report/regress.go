package report

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Verdict is the machine-readable outcome of a baseline comparison.
type Verdict string

// The three comparison outcomes. CI gates on Regressed.
const (
	// Pass: every gated metric is within tolerance of the baseline.
	Pass Verdict = "pass"
	// Improved: at least one gated metric moved significantly in the
	// good direction and none regressed.
	Improved Verdict = "improved"
	// Regressed: at least one gated metric moved significantly in the
	// bad direction.
	Regressed Verdict = "regressed"
)

// BenchCell is one cell's metrics as stored in a BENCH_*.json grid.
type BenchCell struct {
	Cell    string        `json:"cell"`
	Metrics *obs.Snapshot `json:"metrics"`
}

// BenchObs is the observability payload of one stored grid.
type BenchObs struct {
	Cells  []BenchCell   `json:"cells"`
	Totals *obs.Snapshot `json:"totals"`
}

// BenchGrid is the slice of a stored grid the regression tracker reads:
// the experiment name and its metrics. All other payload fields are
// ignored, so the format tolerates grids from any experiment.
type BenchGrid struct {
	Name string    `json:"name"`
	Obs  *BenchObs `json:"obs"`
}

// ParseBench parses a BENCH_*.json document (the `terpbench -json`
// output: an array of grids).
func ParseBench(data []byte) ([]BenchGrid, error) {
	var out []BenchGrid
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("report: parsing bench document: %w", err)
	}
	return out, nil
}

// RegressOpts tunes the baseline comparison.
type RegressOpts struct {
	// TolerancePct is the relative drift (percent of the baseline total)
	// a gated metric may move without triggering a verdict; 0 selects
	// 2%. The simulation is deterministic, so any drift at all is a code
	// change — the tolerance only keeps hair-trigger noise metrics from
	// gating CI.
	TolerancePct float64
	// Z is the confidence z-score for the per-cell delta interval; 0
	// selects 1.96 (~95%).
	Z float64
	// GateWallClock additionally gates the wall-clock metrics of go-bench
	// grids (perf/ns_op and friends, see ParseGoBench). Off by default:
	// wall time is machine-dependent, so it only gates where the runner
	// hardware is controlled.
	GateWallClock bool
}

func (o RegressOpts) withDefaults() RegressOpts {
	if o.TolerancePct == 0 {
		o.TolerancePct = 2
	}
	if o.Z == 0 {
		o.Z = 1.96
	}
	return o
}

// MetricDelta is one metric's baseline-vs-current comparison.
type MetricDelta struct {
	// Experiment and Name identify the metric.
	Experiment string `json:"experiment"`
	Name       string `json:"name"`
	// Base and Cur are the merged totals on each side.
	Base uint64 `json:"base"`
	Cur  uint64 `json:"cur"`
	// DeltaPct is the relative change of the total in percent
	// (null when the baseline total is 0).
	DeltaPct Ratio `json:"deltaPct"`
	// MeanRelPct and CIHalfPct are the mean per-cell relative delta and
	// its confidence half-width in percent, over the N cells present on
	// both sides (the per-cell values are the samples the interval is
	// computed from).
	MeanRelPct Ratio `json:"meanRelPct"`
	CIHalfPct  Ratio `json:"ciHalfPct"`
	N          int   `json:"n"`
	// Gated marks metrics the verdict gates on (cycle accounts, where
	// higher is worse); ungated metrics are informational.
	Gated bool `json:"gated"`
	// Verdict is pass/improved/regressed for gated metrics, "info" for
	// the rest.
	Verdict string `json:"verdict"`
}

// Regression is the full baseline comparison.
type Regression struct {
	// Verdict is the overall outcome (the worst per-metric verdict).
	Verdict Verdict `json:"verdict"`
	// TolerancePct and Z echo the comparison parameters.
	TolerancePct float64 `json:"tolerancePct"`
	Z            float64 `json:"z"`
	// Metrics holds every compared metric, gated first, then by
	// (experiment, name).
	Metrics []MetricDelta `json:"metrics"`
}

// gatedMetric reports whether drift in the metric should gate CI: the
// cycle accounts are the paper's overhead currency, and more cycles is
// strictly worse. Wall-clock metrics (perf/*, where more is also worse)
// gate only when the comparison opts in.
func gatedMetric(name string, opt RegressOpts) bool {
	if strings.HasPrefix(name, "sim/cycles/") {
		return true
	}
	return opt.GateWallClock && strings.HasPrefix(name, "perf/")
}

// Compare runs the regression analysis of current against baseline.
// Grids pair by experiment name; within a pair, every counter present on
// either side is compared: totals for the headline delta, and matched
// per-cell values (paired by cell name) for the confidence interval. It
// returns nil when the documents share no experiment.
func Compare(current, baseline []BenchGrid, opt RegressOpts) *Regression {
	opt = opt.withDefaults()
	baseByName := make(map[string]BenchGrid)
	for _, g := range baseline {
		baseByName[g.Name] = g
	}
	out := &Regression{Verdict: Pass, TolerancePct: opt.TolerancePct, Z: opt.Z}
	matched := false
	for _, cur := range current {
		base, ok := baseByName[cur.Name]
		if !ok || cur.Obs == nil || base.Obs == nil {
			continue
		}
		matched = true
		out.Metrics = append(out.Metrics, compareGrids(cur, base, opt)...)
	}
	if !matched {
		return nil
	}
	for _, m := range out.Metrics {
		switch m.Verdict {
		case string(Regressed):
			out.Verdict = Regressed
		case string(Improved):
			if out.Verdict == Pass {
				out.Verdict = Improved
			}
		}
	}
	// Gated metrics lead, then lexical (experiment, name): the order is a
	// deterministic function of the inputs.
	sortMetricDeltas(out.Metrics)
	return out
}

func compareGrids(cur, base BenchGrid, opt RegressOpts) []MetricDelta {
	var out []MetricDelta
	baseCells := make(map[string]*obs.Snapshot)
	for _, c := range base.Obs.Cells {
		baseCells[c.Cell] = c.Metrics
	}
	for _, name := range sortedCounterNames(cur.Obs.Totals, base.Obs.Totals) {
		d := MetricDelta{
			Experiment: cur.Name,
			Name:       name,
			Base:       base.Obs.Totals.Get(name),
			Cur:        cur.Obs.Totals.Get(name),
			Gated:      gatedMetric(name, opt),
		}
		if d.Base > 0 {
			d.DeltaPct = Ratio(100 * (float64(d.Cur) - float64(d.Base)) / float64(d.Base))
		} else {
			d.DeltaPct = Ratio(math.NaN())
		}
		// Per-cell paired relative deltas feed the confidence interval.
		var rel []float64
		for _, c := range cur.Obs.Cells {
			bm, ok := baseCells[c.Cell]
			if !ok || bm == nil || c.Metrics == nil {
				continue
			}
			bv := bm.Get(name)
			if bv == 0 {
				continue
			}
			cv := c.Metrics.Get(name)
			rel = append(rel, 100*(float64(cv)-float64(bv))/float64(bv))
		}
		d.N = len(rel)
		if len(rel) > 0 {
			mean, half := stats.MeanCI(rel, opt.Z)
			d.MeanRelPct, d.CIHalfPct = Ratio(mean), Ratio(half)
		} else {
			d.MeanRelPct, d.CIHalfPct = Ratio(math.NaN()), Ratio(math.NaN())
		}
		d.Verdict = metricVerdict(d, opt)
		out = append(out, d)
	}
	return out
}

// metricVerdict classifies one metric. A gated metric regresses when its
// total drifts beyond tolerance in the bad direction AND the per-cell
// confidence interval excludes zero (or no per-cell pairing exists, in
// which case the deterministic totals speak for themselves).
func metricVerdict(d MetricDelta, opt RegressOpts) string {
	if !d.Gated {
		return "info"
	}
	delta := float64(d.DeltaPct)
	if math.IsNaN(delta) {
		// Baseline total was zero: a metric appearing from nowhere is a
		// regression (new cycles charged), disappearing-to-zero is
		// handled by the delta path below.
		if d.Cur > d.Base {
			return string(Regressed)
		}
		return string(Pass)
	}
	if math.Abs(delta) <= opt.TolerancePct {
		return string(Pass)
	}
	if d.N >= 2 {
		mean, half := float64(d.MeanRelPct), float64(d.CIHalfPct)
		if math.Abs(mean) <= half {
			return string(Pass) // interval includes zero: not significant
		}
	}
	if delta > 0 {
		return string(Regressed)
	}
	return string(Improved)
}

func sortMetricDeltas(ms []MetricDelta) {
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.Gated != b.Gated {
			return a.Gated
		}
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		return a.Name < b.Name
	})
}

// VerdictJSON renders the regression as indented JSON (the
// machine-readable artifact CI stores and gates on).
func (r *Regression) VerdictJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ExitCode maps the verdict to a process exit code: 0 for pass and
// improved, 3 for regressed (distinct from 1, which commands use for
// operational errors).
func (r *Regression) ExitCode() int {
	if r != nil && r.Verdict == Regressed {
		return 3
	}
	return 0
}
