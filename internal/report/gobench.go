package report

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// GoBenchGridName is the experiment name ParseGoBench stores wall-clock
// benchmark results under. Regression comparison pairs grids by name, so
// go-bench baselines only ever compare against other go-bench runs.
const GoBenchGridName = "perf"

// goBenchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkExecALU/linked-8   14601   82868 ns/op   0 B/op   0 allocs/op
//
// The trailing -N is the GOMAXPROCS suffix; it is stripped from the cell
// name so baselines compare across machines with different core counts.
var goBenchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.+)$`)

// ParseGoBench parses `go test -bench` text output into a single-element
// BenchGrid document named "perf", one cell per benchmark with the
// counters perf/ns_op, perf/bytes_op and perf/allocs_op (ns/op rounded to
// the nearest nanosecond). The result feeds the same Compare machinery as
// the simulated-cycle grids; wall-clock metrics stay informational unless
// RegressOpts.GateWallClock is set.
func ParseGoBench(data []byte) ([]BenchGrid, error) {
	bo := &BenchObs{Totals: obs.NewSnapshot()}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := goBenchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		s := obs.NewSnapshot()
		if err := parseBenchFields(m[2], s); err != nil {
			return nil, fmt.Errorf("report: parsing bench line %q: %w", line, err)
		}
		bo.Cells = append(bo.Cells, BenchCell{Cell: m[1], Metrics: s})
		bo.Totals.Merge(s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("report: reading bench output: %w", err)
	}
	if len(bo.Cells) == 0 {
		return nil, fmt.Errorf("report: no benchmark result lines found")
	}
	return []BenchGrid{{Name: GoBenchGridName, Obs: bo}}, nil
}

// parseBenchFields consumes the "<value> <unit>" pairs after the
// iteration count.
func parseBenchFields(fields string, s *obs.Snapshot) error {
	parts := strings.Fields(fields)
	for i := 0; i+1 < len(parts); i += 2 {
		v, err := strconv.ParseFloat(parts[i], 64)
		if err != nil {
			return fmt.Errorf("value %q: %w", parts[i], err)
		}
		var name string
		switch parts[i+1] {
		case "ns/op":
			name = "perf/ns_op"
		case "B/op":
			name = "perf/bytes_op"
		case "allocs/op":
			name = "perf/allocs_op"
		default:
			continue // MB/s and custom units are not tracked
		}
		s.Add(name, uint64(math.Round(v)))
	}
	return nil
}
