package report

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// Text renders the report for a terminal: the same exposure percentiles,
// overhead accounts and regression verdict as the HTML document, in the
// repository's aligned-table style.
func Text(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	if r.Regression != nil {
		fmt.Fprintf(&b, "\nRegression vs baseline: %s (tolerance %.1f%%, z=%.2f)\n",
			strings.ToUpper(string(r.Regression.Verdict)), r.Regression.TolerancePct, r.Regression.Z)
		t := stats.NewTable("metric", "exp", "baseline", "current", "delta%", "cell mean±CI", "n", "verdict")
		for _, m := range r.Regression.Metrics {
			delta, ci := "n/a", "n/a"
			if m.DeltaPct.Valid() {
				delta = fmt.Sprintf("%+.2f", float64(m.DeltaPct))
			}
			if m.MeanRelPct.Valid() && m.CIHalfPct.Valid() {
				ci = fmt.Sprintf("%+.2f±%.2f", float64(m.MeanRelPct), float64(m.CIHalfPct))
			}
			t.AddRow(m.Name, m.Experiment, m.Base, m.Cur, delta, ci, m.N, m.Verdict)
		}
		b.WriteString(t.String())
	}
	for _, e := range r.Experiments {
		fmt.Fprintf(&b, "\n== %s", e.Name)
		if e.Opts != "" {
			fmt.Fprintf(&b, " (%s)", e.Opts)
		}
		b.WriteString(" ==\n")
		for _, d := range e.Dropped {
			fmt.Fprintf(&b, "WARNING: cell %s dropped %d/%d trace events (ring overflow)\n",
				d.Cell, d.Dropped, d.Total)
		}
		if e.Exposure != nil {
			t := stats.NewTable("config", "cells", "EW n", "PMOs", "EW mean(us)", "p50", "p90", "p99", "max", "TEW n", "TEW mean(us)")
			for _, g := range e.Exposure.Groups {
				t.AddRow(g.Label, g.Cells, g.EW.Count, g.EW.PMOs,
					fmt.Sprintf("%.2f", g.EW.MeanMicros),
					fmt.Sprintf("%.2f", g.EW.P50),
					fmt.Sprintf("%.2f", g.EW.P90),
					fmt.Sprintf("%.2f", g.EW.P99),
					fmt.Sprintf("%.2f", g.EW.MaxMicros),
					g.TEW.Count, fmt.Sprintf("%.2f", g.TEW.MeanMicros))
			}
			b.WriteString("exposure windows:\n" + t.String())
		}
		if e.Attack != nil {
			a := e.Attack
			if a.DeadTimes > 0 {
				fmt.Fprintf(&b, "attack: %d dead-time samples, mean %.1fus, %.1f%% >= %.0fus TEW target\n",
					a.DeadTimes, a.DeadStats.MeanMicros, a.AtLeastTEWPct, a.TEWTargetMicros)
			}
			if a.Probes > 0 {
				fmt.Fprintf(&b, "attack: %d probes / %d windows, %d in-window, %d hits (%d in-window)\n",
					a.Probes, a.Windows, a.ProbesInWindow, a.ProbeHits, a.HitsInWindow)
			}
		}
		if e.Overhead != nil {
			t := stats.NewTable("config", "cells", "base", "attach", "detach", "rand", "cond", "other", "overhead%")
			for _, row := range e.Overhead.Rows {
				ov := "n/a"
				if row.Overhead.Valid() {
					ov = fmt.Sprintf("%.2f", 100*float64(row.Overhead))
				}
				t.AddRow(row.Label, row.Cells, row.Base, row.Attach, row.Detach,
					row.Rand, row.Cond, row.Other, ov)
			}
			b.WriteString("cycle-overhead breakdown:\n" + t.String())
		}
	}
	return b.String()
}
