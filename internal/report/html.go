package report

import (
	"fmt"
	"strings"
)

// reportCSS is the report's inline stylesheet — the document embeds
// everything it needs (styles, charts) so it opens anywhere offline.
const reportCSS = `
body { font: 14px/1.5 -apple-system, "Segoe UI", Roboto, sans-serif;
       color: #1a1a1a; margin: 2rem auto; max-width: 72rem; padding: 0 1rem; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #4269d0; padding-bottom: .3rem; }
h2 { font-size: 1.2rem; margin-top: 2rem; border-bottom: 1px solid #ddd; }
h3 { font-size: 1rem; margin-top: 1.2rem; }
table { border-collapse: collapse; margin: .8rem 0; }
th, td { border: 1px solid #ddd; padding: .25rem .6rem; text-align: right; }
th { background: #f5f7fa; }
td:first-child, th:first-child { text-align: left; }
.warn { background: #fff3cd; border: 1px solid #ffe08a; padding: .6rem .8rem;
        border-radius: 4px; margin: .8rem 0; }
.pass { color: #2e7d32; font-weight: 600; }
.improved { color: #1565c0; font-weight: 600; }
.regressed { color: #c62828; font-weight: 600; }
.info { color: #666; }
.muted { color: #666; font-size: .85rem; }
svg { background: #fff; border: 1px solid #eee; margin: .4rem 0; }
`

// HTML renders the report as one self-contained document: inline CSS,
// inline SVG charts, no scripts, no external assets, nothing derived
// from wall time — byte-identical for identical inputs.
func HTML(r *Report) []byte {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", escape(r.Title))
	b.WriteString("<style>" + reportCSS + "</style>\n</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", escape(r.Title))

	if r.Regression != nil {
		htmlRegression(&b, r.Regression)
	}
	for _, e := range r.Experiments {
		htmlExperiment(&b, e)
	}
	b.WriteString("</body>\n</html>\n")
	return []byte(b.String())
}

func htmlExperiment(b *strings.Builder, e ExperimentReport) {
	fmt.Fprintf(b, "<h2>Experiment: %s</h2>\n", escape(e.Name))
	if e.Opts != "" {
		fmt.Fprintf(b, "<p class=\"muted\">%s</p>\n", escape(e.Opts))
	}
	for _, d := range e.Dropped {
		fmt.Fprintf(b,
			"<div class=\"warn\">cell <code>%s</code> dropped %d of %d trace events to ring overflow; its exposure sections undercount windows. Raise the trace capacity to capture everything.</div>\n",
			escape(d.Cell), d.Dropped, d.Total)
	}
	if e.Exposure != nil {
		htmlExposure(b, e.Exposure)
	}
	if e.Attack != nil {
		htmlAttack(b, e.Attack)
	}
	if e.Overhead != nil {
		htmlOverhead(b, e.Overhead)
	}
	if e.Exposure == nil && e.Attack == nil && e.Overhead == nil {
		b.WriteString("<p class=\"muted\">no observability payload (run with tracing/metrics enabled).</p>\n")
	}
}

func htmlExposure(b *strings.Builder, x *ExposureReport) {
	b.WriteString("<h3>Exposure windows</h3>\n")
	b.WriteString("<table>\n<tr><th>config</th><th>cells</th><th>EW count</th><th>PMOs</th><th>EW mean (us)</th><th>p50</th><th>p90</th><th>p99</th><th>max</th><th>TEW count</th><th>TEW mean (us)</th><th>TEW p99</th></tr>\n")
	for _, g := range x.Groups {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%d</td><td>%.2f</td><td>%.2f</td></tr>\n",
			escape(g.Label), g.Cells, g.EW.Count, g.EW.PMOs,
			g.EW.MeanMicros, g.EW.P50, g.EW.P90, g.EW.P99, g.EW.MaxMicros,
			g.TEW.Count, g.TEW.MeanMicros, g.TEW.P99)
	}
	b.WriteString("</table>\n")

	var series []cdfSeries
	for _, g := range x.Groups {
		if len(g.EW.CDF) > 0 {
			series = append(series, cdfSeries{label: g.Label, points: g.EW.CDF})
		}
	}
	if len(series) > 0 {
		b.WriteString("<p class=\"muted\">Exposure-duration CDF (per closed EW window; lower-left is better — shorter windows, reached sooner).</p>\n")
		b.WriteString(svgCDF("exposure-duration CDF", "window length (us)", series))
	}
	for _, g := range x.Groups {
		if len(g.Timelines) == 0 {
			continue
		}
		fmt.Fprintf(b, "<h3>Per-PMO exposure timeline — %s</h3>\n", escape(g.Label))
		if g.TimelinePMOs > len(g.Timelines) {
			fmt.Fprintf(b, "<p class=\"muted\">showing %d of %d PMOs.</p>\n", len(g.Timelines), g.TimelinePMOs)
		}
		for _, tl := range g.Timelines {
			if tl.TruncatedFrom > 0 {
				fmt.Fprintf(b, "<p class=\"muted\">pmo %d: showing %d of %d windows.</p>\n",
					tl.PMO, len(tl.Spans), tl.TruncatedFrom)
			}
		}
		b.WriteString(svgTimelines(g))
	}
}

func htmlAttack(b *strings.Builder, a *AttackReport) {
	b.WriteString("<h3>Attack observability</h3>\n")
	if a.DeadTimes > 0 {
		fmt.Fprintf(b,
			"<p>%d dead-time samples; mean %.1f us, p50 %.1f us, max %.1f us. <b>%.1f%%</b> of dead times are &ge; the %.0f us TEW target — the surface a TEW of that length leaves reachable.</p>\n",
			a.DeadTimes, a.DeadStats.MeanMicros, a.DeadStats.P50, a.DeadStats.MaxMicros,
			a.AtLeastTEWPct, a.TEWTargetMicros)
		if len(a.DeadStats.CDF) > 0 {
			b.WriteString(svgCDF("dead-time CDF", "dead time (us)",
				[]cdfSeries{{label: "dead time", points: a.DeadStats.CDF}}))
		}
	}
	if a.Probes > 0 {
		fmt.Fprintf(b,
			"<p>%d probes across %d exposure windows: %d inside an open window, %d hits (%d inside a window). A probe can only succeed while a window is open — hits outside a window would falsify the model.</p>\n",
			a.Probes, a.Windows, a.ProbesInWindow, a.ProbeHits, a.HitsInWindow)
	}
}

func htmlOverhead(b *strings.Builder, o *OverheadReport) {
	b.WriteString("<h3>Cycle-overhead breakdown (component accounts)</h3>\n")
	b.WriteString("<table>\n<tr><th>config</th><th>cells</th><th>base</th><th>attach</th><th>detach</th><th>rand</th><th>cond</th><th>other</th><th>overhead</th></tr>\n")
	for _, r := range o.Rows {
		ov := "n/a"
		if r.Overhead.Valid() {
			ov = fmt.Sprintf("%.2f%%", 100*float64(r.Overhead))
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
			escape(r.Label), r.Cells, r.Base, r.Attach, r.Detach, r.Rand, r.Cond, r.Other, ov)
	}
	b.WriteString("</table>\n")
	b.WriteString(svgOverheadBars(o.Rows))
}

func htmlRegression(b *strings.Builder, reg *Regression) {
	b.WriteString("<h2>Benchmark regression vs baseline</h2>\n")
	fmt.Fprintf(b, "<p>Verdict: <span class=\"%s\">%s</span> <span class=\"muted\">(tolerance %.1f%%, z=%.2f; gated metrics are the sim/cycles accounts — more cycles is worse)</span></p>\n",
		reg.Verdict, strings.ToUpper(string(reg.Verdict)), reg.TolerancePct, reg.Z)
	b.WriteString("<table>\n<tr><th>metric</th><th>experiment</th><th>baseline</th><th>current</th><th>delta</th><th>per-cell mean &plusmn; CI</th><th>n</th><th>verdict</th></tr>\n")
	for _, m := range reg.Metrics {
		delta := "n/a"
		if m.DeltaPct.Valid() {
			delta = fmt.Sprintf("%+.2f%%", float64(m.DeltaPct))
		}
		ci := "n/a"
		if m.MeanRelPct.Valid() && m.CIHalfPct.Valid() {
			ci = fmt.Sprintf("%+.2f%% &plusmn; %.2f%%", float64(m.MeanRelPct), float64(m.CIHalfPct))
		}
		cls := m.Verdict
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%d</td><td class=\"%s\">%s</td></tr>\n",
			escape(m.Name), escape(m.Experiment), m.Base, m.Cur, delta, ci, m.N, cls, m.Verdict)
	}
	b.WriteString("</table>\n")
}
