package report

import (
	"strings"
	"testing"
)

func TestBarChart(t *testing.T) {
	svg := BarChart("queue depth", "j", []string{"acme", "ze<br>ta"}, []float64{3, 0})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>\n") {
		t.Fatalf("not a self-contained SVG: %q", svg)
	}
	for _, want := range []string{"queue depth", "acme", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	if strings.Contains(svg, "<br>") {
		t.Error("label not escaped")
	}
	if !strings.Contains(svg, "ze&lt;br&gt;ta") {
		t.Error("escaped label missing")
	}
	if c := strings.Count(svg, "<rect"); c != 2 {
		t.Errorf("bars = %d, want 2", c)
	}
}

func TestBarChartEmptyAndMismatched(t *testing.T) {
	if got := BarChart("t", "", nil, nil); got != "" {
		t.Errorf("empty input rendered %q", got)
	}
	if got := BarChart("t", "", []string{"a"}, []float64{1, 2}); got != "" {
		t.Errorf("mismatched input rendered %q", got)
	}
}

func TestBarChartAllZero(t *testing.T) {
	svg := BarChart("idle", "", []string{"a", "b"}, []float64{0, 0})
	if !strings.Contains(svg, "<rect") {
		t.Fatal("zero-valued chart missing bars")
	}
	if strings.Contains(svg, "NaN") {
		t.Fatal("zero max produced NaN geometry")
	}
}
