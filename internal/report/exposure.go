package report

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/params"
	"repro/internal/stats"
)

// CDFPoint is one point of an empirical duration CDF: Frac of the
// samples are <= Micros.
type CDFPoint struct {
	Micros float64 `json:"micros"`
	Frac   float64 `json:"frac"`
}

// Span is one exposure interval of a PMO timeline, in microseconds from
// run start.
type Span struct {
	StartMicros float64 `json:"start"`
	EndMicros   float64 `json:"end"`
}

// PMOTimeline is one PMO's exposure timeline within one cell.
type PMOTimeline struct {
	// Cell is the owning cell; PMO the object the windows belong to.
	Cell string `json:"cell"`
	PMO  int64  `json:"pmo"`
	// Spans are the exposure intervals (possibly truncated, see
	// TruncatedFrom).
	Spans []Span `json:"spans"`
	// TruncatedFrom is the real span count when len(Spans) was capped;
	// 0 means nothing was dropped.
	TruncatedFrom int `json:"truncatedFrom,omitempty"`
}

// ExposureGroup summarizes the exposure windows of one configuration
// label (e.g. "MM(40us)" vs "TT(40us)" — the MERR vs TERP comparison).
type ExposureGroup struct {
	// Label is the configuration; Cells how many cells contributed.
	Label string `json:"label"`
	Cells int    `json:"cells"`
	// EW summarizes process-level exposure windows, TEW thread-level
	// ones.
	EW  WindowStats `json:"ew"`
	TEW WindowStats `json:"tew"`
	// Timelines holds per-PMO exposure timelines (bounded, see
	// Options.MaxTimelinePMOs).
	Timelines []PMOTimeline `json:"timelines,omitempty"`
	// TimelinePMOs is the real distinct-PMO count when Timelines was
	// capped; 0 means nothing was dropped.
	TimelinePMOs int `json:"timelinePMOs,omitempty"`
}

// WindowStats are the duration statistics of one window population.
type WindowStats struct {
	// Count is the number of closed windows; PMOs the distinct objects.
	Count int `json:"count"`
	PMOs  int `json:"pmos"`
	// MeanMicros, P50..MaxMicros are duration percentiles in us.
	MeanMicros float64 `json:"mean"`
	P50        float64 `json:"p50"`
	P90        float64 `json:"p90"`
	P99        float64 `json:"p99"`
	MaxMicros  float64 `json:"max"`
	// CDF is the (downsampled) duration CDF.
	CDF []CDFPoint `json:"cdf,omitempty"`
}

// ExposureReport is one experiment's exposure analysis.
type ExposureReport struct {
	// Groups holds one entry per configuration label, in first-seen
	// (enumeration) order.
	Groups []ExposureGroup `json:"groups"`
}

// maxCDFPoints bounds the rendered CDF resolution.
const maxCDFPoints = 64

// analyzeExposure reconstructs exposure windows from every cell's trace
// and groups them by configuration label. It returns nil when no cell
// carries expo events.
func analyzeExposure(e Experiment, opt Options) *ExposureReport {
	type acc struct {
		cells    int
		ew, tew  []float64 // durations in us
		ewPMOs   map[int64]bool
		tewPMOs  map[int64]bool
		timeline []PMOTimeline
		tlPMOs   int
	}
	var order []string
	groups := make(map[string]*acc)

	for _, c := range e.Cells {
		if len(c.Events) == 0 {
			continue
		}
		ws := obs.Windows(c.Events)
		ews := obs.FilterWindows(ws, obs.CatExpo, "ew")
		tews := obs.FilterWindows(ws, obs.CatExpo, "tew")
		if len(ews) == 0 && len(tews) == 0 {
			continue
		}
		label := c.Label()
		g := groups[label]
		if g == nil {
			g = &acc{ewPMOs: make(map[int64]bool), tewPMOs: make(map[int64]bool)}
			groups[label] = g
			order = append(order, label)
		}
		g.cells++
		for _, w := range ews {
			g.ew = append(g.ew, params.ToMicros(w.Cycles()))
			g.ewPMOs[w.Arg] = true
		}
		for _, w := range tews {
			g.tew = append(g.tew, params.ToMicros(w.Cycles()))
			// tew args fold the thread into the high bits; mask it off so
			// PMO counting matches the ew side.
			g.tewPMOs[w.Arg&0xffffffff] = true
		}
		// Timelines come from the group's first contributing cell, capped
		// at MaxTimelinePMOs objects; the cap is recorded, never silent.
		if g.timeline == nil && len(ews) > 0 {
			g.timeline, g.tlPMOs = buildTimelines(c.Name, ews, opt)
		}
	}
	if len(order) == 0 {
		return nil
	}
	out := &ExposureReport{}
	for _, label := range order {
		g := groups[label]
		eg := ExposureGroup{
			Label:     label,
			Cells:     g.cells,
			EW:        windowStats(g.ew, len(g.ewPMOs)),
			TEW:       windowStats(g.tew, len(g.tewPMOs)),
			Timelines: g.timeline,
		}
		if g.tlPMOs > len(g.timeline) {
			eg.TimelinePMOs = g.tlPMOs
		}
		out.Groups = append(out.Groups, eg)
	}
	return out
}

// windowStats folds a duration population into its summary + CDF.
func windowStats(durs []float64, pmos int) WindowStats {
	st := WindowStats{Count: len(durs), PMOs: pmos}
	if len(durs) == 0 {
		return st
	}
	st.MeanMicros = stats.Mean(durs)
	st.P50 = stats.Percentile(durs, 50)
	st.P90 = stats.Percentile(durs, 90)
	st.P99 = stats.Percentile(durs, 99)
	st.MaxMicros = stats.Percentile(durs, 100)
	st.CDF = buildCDF(durs)
	return st
}

// buildCDF returns the empirical CDF of durs, downsampled to at most
// maxCDFPoints evenly spaced quantiles (always keeping the max).
func buildCDF(durs []float64) []CDFPoint {
	n := len(durs)
	if n == 0 {
		return nil
	}
	sorted := append([]float64(nil), durs...)
	sort.Float64s(sorted)
	step := 1
	if n > maxCDFPoints {
		step = (n + maxCDFPoints - 1) / maxCDFPoints
	}
	var out []CDFPoint
	for i := step - 1; i < n; i += step {
		out = append(out, CDFPoint{Micros: sorted[i], Frac: float64(i+1) / float64(n)})
	}
	if last := out[len(out)-1]; last.Frac != 1 {
		out = append(out, CDFPoint{Micros: sorted[n-1], Frac: 1})
	}
	return out
}

// buildTimelines converts one cell's EW windows into per-PMO timelines.
// It returns the (bounded) timelines plus the real distinct-PMO count.
func buildTimelines(cell string, ews []obs.Window, opt Options) ([]PMOTimeline, int) {
	var order []int64
	byPMO := make(map[int64][]Span)
	counts := make(map[int64]int)
	for _, w := range ews {
		if _, seen := byPMO[w.Arg]; !seen {
			order = append(order, w.Arg)
			byPMO[w.Arg] = nil
		}
		counts[w.Arg]++
		if len(byPMO[w.Arg]) < opt.MaxTimelineSpans {
			byPMO[w.Arg] = append(byPMO[w.Arg], Span{
				StartMicros: params.ToMicros(w.Start),
				EndMicros:   params.ToMicros(w.End),
			})
		}
	}
	total := len(order)
	if len(order) > opt.MaxTimelinePMOs {
		order = order[:opt.MaxTimelinePMOs]
	}
	var out []PMOTimeline
	for _, pmo := range order {
		tl := PMOTimeline{Cell: cell, PMO: pmo, Spans: byPMO[pmo]}
		if counts[pmo] > len(tl.Spans) {
			tl.TruncatedFrom = counts[pmo]
		}
		out = append(out, tl)
	}
	return out, total
}

// AttackReport correlates the attack layer's obs instants with exposure
// windows: dead-time samples against the TEW target (the attack surface
// of Section VII-A) and probe attempts/hits against open EW windows
// (attack-success observability — a probe can only succeed while a
// window is open).
type AttackReport struct {
	// DeadTimes counts dead-time samples; DeadStats summarizes them.
	DeadTimes int         `json:"deadTimes"`
	DeadStats WindowStats `json:"deadStats"`
	// AtLeastTEWPct is the share of dead times >= the TEW target — the
	// surface a TEW of that length still leaves reachable.
	AtLeastTEWPct float64 `json:"atLeastTEWPct"`
	// TEWTargetMicros is the target the surface was measured against.
	TEWTargetMicros float64 `json:"tewTargetMicros"`
	// Probes and ProbeHits count attack probes and successful ones;
	// HitsInWindow counts hits that landed inside an open EW window
	// (the model predicts all of them).
	Probes       int `json:"probes,omitempty"`
	ProbeHits    int `json:"probeHits,omitempty"`
	HitsInWindow int `json:"hitsInWindow,omitempty"`
	// ProbesInWindow counts all probes that landed inside open windows.
	ProbesInWindow int `json:"probesInWindow,omitempty"`
	// Windows is the EW window count seen alongside the probes.
	Windows int `json:"windows,omitempty"`
}

// analyzeAttack scans every cell for CatAttack instants. It returns nil
// when the experiment recorded none.
func analyzeAttack(e Experiment, opt Options) *AttackReport {
	var dead []float64
	probes, hits, hitsIn, probesIn, windows := 0, 0, 0, 0, 0
	for _, c := range e.Cells {
		if len(c.Events) == 0 {
			continue
		}
		ins := obs.Instants(c.Events)
		att := obs.FilterInstants(ins, obs.CatAttack, "")
		if len(att) == 0 {
			continue
		}
		ews := obs.FilterWindows(obs.Windows(c.Events), obs.CatExpo, "ew")
		windows += len(ews)
		for _, in := range att {
			switch in.Name {
			case "deadtime":
				dead = append(dead, params.ToMicros(uint64(in.Arg)))
			case "probe":
				probes++
				if inWindow(ews, in.TS) {
					probesIn++
				}
			case "probe-hit":
				hits++
				if inWindow(ews, in.TS) {
					hitsIn++
				}
			}
		}
	}
	if len(dead) == 0 && probes == 0 && hits == 0 {
		return nil
	}
	out := &AttackReport{
		DeadTimes:       len(dead),
		DeadStats:       windowStats(dead, 0),
		TEWTargetMicros: opt.TEWTargetMicros,
		Probes:          probes,
		ProbeHits:       hits,
		HitsInWindow:    hitsIn,
		ProbesInWindow:  probesIn,
		Windows:         windows,
	}
	if len(dead) > 0 {
		atLeast := 0
		for _, d := range dead {
			if d >= opt.TEWTargetMicros {
				atLeast++
			}
		}
		out.AtLeastTEWPct = 100 * float64(atLeast) / float64(len(dead))
	}
	return out
}

// inWindow reports whether ts falls inside any window (windows are
// sorted by start; half-open [Start, End)).
func inWindow(ws []obs.Window, ts uint64) bool {
	for _, w := range ws {
		if w.Start > ts {
			return false
		}
		if ts < w.End {
			return true
		}
	}
	return false
}
