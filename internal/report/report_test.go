package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/params"
)

// us converts microseconds to simulated cycles for event timestamps.
func us(m float64) uint64 { return uint64(m * params.CyclesPerMicro) }

// expoCell builds a synthetic cell whose trace holds EW windows (PMO ids
// and [start, end) bounds in us) plus optional TEW windows.
func expoCell(name string, ews [][3]float64) Cell {
	rec := obs.NewRecorder(1 << 12)
	hw := rec.Track(obs.HWThread)
	for _, w := range ews {
		pmo := int64(w[0])
		hw.AsyncBegin(us(w[1]), obs.CatExpo, "ew", pmo)
		hw.AsyncEnd(us(w[2]), obs.CatExpo, "ew", pmo)
	}
	return Cell{Name: name, Events: rec.Events(), TraceEvents: rec.Total()}
}

func TestRatioMarshalsNaNAsNull(t *testing.T) {
	// The guard exists because encoding/json rejects NaN outright — the
	// sentinel from sim.Accounts.Overhead() would otherwise abort every
	// JSON export that embeds it.
	if _, err := json.Marshal(math.NaN()); err == nil {
		t.Fatal("expected encoding/json to reject raw NaN; the Ratio guard would be pointless")
	}
	buf, err := json.Marshal(struct {
		A Ratio `json:"a"`
		B Ratio `json:"b"`
		C Ratio `json:"c"`
	}{Ratio(math.NaN()), Ratio(math.Inf(1)), Ratio(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(buf), `{"a":null,"b":null,"c":1.5}`; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
	var back struct {
		A Ratio `json:"a"`
		C Ratio `json:"c"`
	}
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.A.Valid() {
		t.Fatalf("null should unmarshal to an invalid Ratio, got %v", float64(back.A))
	}
	if float64(back.C) != 1.5 {
		t.Fatalf("C = %v, want 1.5", float64(back.C))
	}
}

func TestOverheadRowNaNSurvivesJSONExport(t *testing.T) {
	// A cell with non-base cycles but Base == 0 carries the NaN sentinel;
	// the report must still marshal (nulls in place of the ratios).
	s := obs.NewSnapshot()
	s.Add("sim/cycles/attach", 100)
	e := Experiment{Name: "x", Cells: []Cell{{Name: "x/c/MM", Metrics: s}}}
	r := Build(Input{Title: "t", Experiments: []Experiment{e}}, Options{})
	o := r.Experiments[0].Overhead
	if o == nil || len(o.Rows) != 2 {
		t.Fatalf("overhead = %+v, want MM + total rows", o)
	}
	if o.Rows[0].Overhead.Valid() {
		t.Fatal("Base==0 must keep the NaN sentinel, not a number")
	}
	buf, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("report with NaN sentinel failed to marshal: %v", err)
	}
	if !strings.Contains(string(buf), `"overhead":null`) {
		t.Fatalf("marshal should render the sentinel as null: %s", buf)
	}
}

func TestAnalyzeExposureGroupsAndStats(t *testing.T) {
	// Two MM cells and one TT cell: grouping is by label, first seen first.
	in := Input{Title: "t", Experiments: []Experiment{{
		Name: "exp",
		Cells: []Cell{
			expoCell("exp/a/MM", [][3]float64{{0, 0, 10}, {0, 20, 30}, {1, 5, 25}}),
			expoCell("exp/b/MM", [][3]float64{{0, 0, 10}}),
			expoCell("exp/a/TT", [][3]float64{{0, 0, 2}, {1, 4, 6}}),
		},
	}}}
	r := Build(in, Options{})
	x := r.Experiments[0].Exposure
	if x == nil || len(x.Groups) != 2 {
		t.Fatalf("exposure = %+v, want MM and TT groups", x)
	}
	mm, tt := x.Groups[0], x.Groups[1]
	if mm.Label != "MM" || tt.Label != "TT" {
		t.Fatalf("labels = %s, %s (first-seen order broken)", mm.Label, tt.Label)
	}
	if mm.Cells != 2 || mm.EW.Count != 4 || mm.EW.PMOs != 2 {
		t.Fatalf("MM = %+v, want 2 cells, 4 windows, 2 PMOs", mm)
	}
	if mm.EW.MeanMicros != 12.5 || mm.EW.MaxMicros != 20 {
		t.Fatalf("MM mean/max = %v/%v, want 12.5/20", mm.EW.MeanMicros, mm.EW.MaxMicros)
	}
	if tt.EW.Count != 2 || tt.EW.MeanMicros != 2 {
		t.Fatalf("TT = %+v, want 2 windows of 2us", tt.EW)
	}
	// Timelines come from the group's first cell: PMO 0 has 2 spans.
	if len(mm.Timelines) != 2 || mm.Timelines[0].PMO != 0 || len(mm.Timelines[0].Spans) != 2 {
		t.Fatalf("MM timelines = %+v", mm.Timelines)
	}
	if mm.Timelines[0].Spans[0].StartMicros != 0 || mm.Timelines[0].Spans[0].EndMicros != 10 {
		t.Fatalf("span = %+v, want [0,10]us", mm.Timelines[0].Spans[0])
	}
}

func TestTimelineCapsAreReportedNotSilent(t *testing.T) {
	var ews [][3]float64
	for pmo := 0; pmo < 5; pmo++ {
		for s := 0; s < 4; s++ {
			start := float64(pmo*100 + s*10)
			ews = append(ews, [3]float64{float64(pmo), start, start + 5})
		}
	}
	in := Input{Experiments: []Experiment{{
		Name:  "exp",
		Cells: []Cell{expoCell("exp/a/MM", ews)},
	}}}
	r := Build(in, Options{MaxTimelinePMOs: 2, MaxTimelineSpans: 3})
	g := r.Experiments[0].Exposure.Groups[0]
	if len(g.Timelines) != 2 || g.TimelinePMOs != 5 {
		t.Fatalf("timelines = %d shown, TimelinePMOs = %d; want 2 shown of 5", len(g.Timelines), g.TimelinePMOs)
	}
	tl := g.Timelines[0]
	if len(tl.Spans) != 3 || tl.TruncatedFrom != 4 {
		t.Fatalf("spans = %d, TruncatedFrom = %d; want 3 of 4", len(tl.Spans), tl.TruncatedFrom)
	}
}

func TestBuildCDFDownsamples(t *testing.T) {
	durs := make([]float64, 1000)
	for i := range durs {
		durs[i] = float64(i + 1)
	}
	cdf := buildCDF(durs)
	if len(cdf) > maxCDFPoints+1 {
		t.Fatalf("CDF has %d points, want <= %d", len(cdf), maxCDFPoints+1)
	}
	last := cdf[len(cdf)-1]
	if last.Frac != 1 || last.Micros != 1000 {
		t.Fatalf("last point = %+v, want the max at frac 1", last)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Micros < cdf[i-1].Micros || cdf[i].Frac < cdf[i-1].Frac {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, cdf[i-1], cdf[i])
		}
	}
}

func TestAnalyzeAttackCorrelation(t *testing.T) {
	rec := obs.NewRecorder(1 << 12)
	hw := rec.Track(obs.HWThread)
	att := rec.Track(0)
	// One EW window [10, 20)us; probes inside and outside; a hit inside.
	hw.AsyncBegin(us(10), obs.CatExpo, "ew", 0)
	att.Instant(us(12), obs.CatAttack, "probe", 0)
	att.Instant(us(15), obs.CatAttack, "probe", 1)
	att.Instant(us(15), obs.CatAttack, "probe-hit", 1)
	hw.AsyncEnd(us(20), obs.CatExpo, "ew", 0)
	att.Instant(us(25), obs.CatAttack, "probe", 2) // after the window closed
	// Dead-time samples: 1us and 5us against a 2us target.
	att.Instant(us(30), obs.CatAttack, "deadtime", int64(us(1)))
	att.Instant(us(31), obs.CatAttack, "deadtime", int64(us(5)))

	in := Input{Experiments: []Experiment{{
		Name:  "exp",
		Cells: []Cell{{Name: "exp/mc", Events: rec.Events()}},
	}}}
	a := Build(in, Options{TEWTargetMicros: 2}).Experiments[0].Attack
	if a == nil {
		t.Fatal("no attack report")
	}
	if a.Probes != 3 || a.ProbesInWindow != 2 {
		t.Fatalf("probes = %d (%d in-window), want 3 (2)", a.Probes, a.ProbesInWindow)
	}
	if a.ProbeHits != 1 || a.HitsInWindow != 1 || a.Windows != 1 {
		t.Fatalf("hits = %d (%d in-window), windows = %d", a.ProbeHits, a.HitsInWindow, a.Windows)
	}
	if a.DeadTimes != 2 || a.AtLeastTEWPct != 50 {
		t.Fatalf("deadtimes = %d, atLeast = %v%%, want 2 and 50%%", a.DeadTimes, a.AtLeastTEWPct)
	}
}

func TestDroppedCellsFlagged(t *testing.T) {
	in := Input{Experiments: []Experiment{{
		Name: "exp",
		Cells: []Cell{
			{Name: "exp/ok", TraceEvents: 10},
			{Name: "exp/lossy", TraceEvents: 100, TraceDropped: 40},
		},
	}}}
	r := Build(in, Options{})
	d := r.Experiments[0].Dropped
	if len(d) != 1 || d[0].Cell != "exp/lossy" || d[0].Dropped != 40 {
		t.Fatalf("dropped = %+v, want only the lossy cell", d)
	}
	if !strings.Contains(string(HTML(r)), "dropped 40 of 100") {
		t.Fatal("HTML report must surface the overflow warning")
	}
}

// benchDoc builds a one-experiment bench document with the given per-cell
// counter values for one metric.
func benchDoc(metric string, cells map[string]uint64) []BenchGrid {
	obsDoc := &BenchObs{Totals: obs.NewSnapshot()}
	// Deterministic cell order for the test: sortedCounterNames handles
	// metrics, but cells pair by name so order is irrelevant here.
	for _, name := range []string{"a", "b", "c", "d"} {
		v, ok := cells[name]
		if !ok {
			continue
		}
		s := obs.NewSnapshot()
		s.Add(metric, v)
		obsDoc.Cells = append(obsDoc.Cells, BenchCell{Cell: name, Metrics: s})
		obsDoc.Totals.Add(metric, v)
	}
	return []BenchGrid{{Name: "exp", Obs: obsDoc}}
}

func TestCompareVerdicts(t *testing.T) {
	base := benchDoc("sim/cycles/base", map[string]uint64{"a": 1000, "b": 1000, "c": 1000, "d": 1000})

	same := Compare(benchDoc("sim/cycles/base", map[string]uint64{"a": 1000, "b": 1000, "c": 1000, "d": 1000}), base, RegressOpts{})
	if same.Verdict != Pass || same.ExitCode() != 0 {
		t.Fatalf("identical runs = %s (exit %d), want pass 0", same.Verdict, same.ExitCode())
	}

	worse := Compare(benchDoc("sim/cycles/base", map[string]uint64{"a": 1100, "b": 1100, "c": 1100, "d": 1100}), base, RegressOpts{})
	if worse.Verdict != Regressed || worse.ExitCode() != 3 {
		t.Fatalf("+10%% cycles = %s (exit %d), want regressed 3", worse.Verdict, worse.ExitCode())
	}

	better := Compare(benchDoc("sim/cycles/base", map[string]uint64{"a": 900, "b": 900, "c": 900, "d": 900}), base, RegressOpts{})
	if better.Verdict != Improved || better.ExitCode() != 0 {
		t.Fatalf("-10%% cycles = %s (exit %d), want improved 0", better.Verdict, better.ExitCode())
	}

	// Within tolerance: 1% drift passes at the default 2%.
	near := Compare(benchDoc("sim/cycles/base", map[string]uint64{"a": 1010, "b": 1010, "c": 1010, "d": 1010}), base, RegressOpts{})
	if near.Verdict != Pass {
		t.Fatalf("+1%% cycles = %s, want pass within tolerance", near.Verdict)
	}

	// Ungated metrics never flip the verdict.
	ub := benchDoc("expo/ew_closed", map[string]uint64{"a": 100})
	uc := benchDoc("expo/ew_closed", map[string]uint64{"a": 900})
	ung := Compare(uc, ub, RegressOpts{})
	if ung.Verdict != Pass || ung.Metrics[0].Verdict != "info" {
		t.Fatalf("ungated drift = %s/%s, want pass/info", ung.Verdict, ung.Metrics[0].Verdict)
	}

	// No shared experiment: nothing to compare.
	other := []BenchGrid{{Name: "elsewhere", Obs: &BenchObs{Totals: obs.NewSnapshot()}}}
	if got := Compare(other, base, RegressOpts{}); got != nil {
		t.Fatalf("disjoint docs = %+v, want nil", got)
	}
}

func TestCompareGatesNewMetricFromZeroBase(t *testing.T) {
	base := benchDoc("sim/cycles/rand", map[string]uint64{"a": 0})
	cur := benchDoc("sim/cycles/rand", map[string]uint64{"a": 500})
	r := Compare(cur, base, RegressOpts{})
	if r.Verdict != Regressed {
		t.Fatalf("cycles appearing from zero = %s, want regressed", r.Verdict)
	}
	if r.Metrics[0].DeltaPct.Valid() {
		t.Fatal("delta vs zero base must carry the NaN sentinel")
	}
}

func TestCompareInsignificantCellNoise(t *testing.T) {
	// Total drifts past tolerance but per-cell deltas straddle zero with a
	// wide interval — the CI includes zero, so the verdict stays pass.
	base := benchDoc("sim/cycles/base", map[string]uint64{"a": 1000, "b": 1000, "c": 1000, "d": 1000})
	cur := benchDoc("sim/cycles/base", map[string]uint64{"a": 1500, "b": 600, "c": 1400, "d": 700})
	r := Compare(cur, base, RegressOpts{})
	if r.Metrics[0].N != 4 {
		t.Fatalf("n = %d, want 4 paired cells", r.Metrics[0].N)
	}
	if r.Verdict != Pass {
		t.Fatalf("noise straddling zero = %s, want pass", r.Verdict)
	}
}

func TestVerdictJSONRoundTrips(t *testing.T) {
	base := benchDoc("sim/cycles/base", map[string]uint64{"a": 1000})
	cur := benchDoc("sim/cycles/base", map[string]uint64{"a": 2000})
	r := Compare(cur, base, RegressOpts{})
	buf, err := r.VerdictJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Regression
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Verdict != Regressed || len(back.Metrics) != len(r.Metrics) {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestParseBenchRejectsGarbage(t *testing.T) {
	if _, err := ParseBench([]byte("{not json")); err == nil {
		t.Fatal("expected a parse error")
	}
	grids, err := ParseBench([]byte(`[{"name":"exp","obs":{"cells":[],"totals":{}}}]`))
	if err != nil || len(grids) != 1 || grids[0].Name != "exp" {
		t.Fatalf("parse = %+v, %v", grids, err)
	}
}
