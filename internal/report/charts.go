package report

import (
	"fmt"
	"strings"
)

// BarChart renders a horizontal bar chart as self-contained inline SVG
// in the report house style — one row per label, value annotated at the
// bar end. It is exported for the service dashboard, which reuses the
// report chart idiom for live host telemetry (queue depths, per-tenant
// throughput). Empty input renders an empty string.
func BarChart(title, unit string, labels []string, values []float64) string {
	if len(labels) == 0 || len(labels) != len(values) {
		return ""
	}
	var maxV float64
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	rowH, gap := 18.0, 6.0
	labelW := 140.0
	titleH := 18.0
	h := marginT + titleH + float64(len(labels))*(rowH+gap) + marginB/2
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" role="img" aria-label="%s">`,
		coord(chartW), coord(h), coord(chartW), coord(h), escape(title))
	b.WriteByte('\n')
	fmt.Fprintf(&b, `<text x="%s" y="%s" font-size="12" fill="#333">%s</text>`,
		coord(marginL), coord(marginT+4), escape(title))
	b.WriteByte('\n')
	barW := chartW - labelW - marginR - 70 // room for the value annotation
	for i, v := range values {
		y := marginT + titleH + float64(i)*(rowH+gap)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" %s>%s</text>`,
			coord(labelW-8), coord(y+rowH/2+4), tickTextStyle, escape(labels[i]))
		w := barW * v / maxV
		if v > 0 && w < 0.5 {
			w = 0.5 // keep tiny nonzero values visible
		}
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`,
			coord(labelW), coord(y), coord(w), coord(rowH), seriesColor(i))
		fmt.Fprintf(&b, `<text x="%s" y="%s" %s>%s%s</text>`,
			coord(labelW+w+6), coord(y+rowH/2+4), tickTextStyle, axisLabel(v), escape(unit))
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	return b.String()
}
