package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
)

func series(metric string, vals ...float64) TrendSeries {
	s := TrendSeries{Experiment: "table3", SpecHash: "abc123", Metric: metric}
	for i, v := range vals {
		s.Points = append(s.Points, TrendPoint{Run: i, Value: v})
	}
	return s
}

func TestTrendVerdicts(t *testing.T) {
	flat := Trend([]TrendSeries{series("sim/cycles/app", 100, 100, 100, 100, 100, 100)}, TrendOpts{})
	if flat.Verdict != Pass || flat.ExitCode() != 0 {
		t.Fatalf("flat series = %s (exit %d), want pass 0", flat.Verdict, flat.ExitCode())
	}

	// Trailing window jumps 30% above a tight base history.
	up := Trend([]TrendSeries{series("sim/cycles/app", 100, 100, 100, 100, 130, 130, 130)}, TrendOpts{})
	if up.Verdict != Regressed || up.ExitCode() != 3 {
		t.Fatalf("regressing series = %s (exit %d), want regressed 3", up.Verdict, up.ExitCode())
	}
	st := up.Series[0]
	if !st.Gated || st.Verdict != string(Regressed) {
		t.Fatalf("series trend = %+v, want gated regressed", st)
	}
	if math.Abs(float64(st.DeltaPct)-30) > 1e-9 {
		t.Fatalf("delta = %v%%, want 30%%", float64(st.DeltaPct))
	}
	if st.ChangePoint != 4 {
		t.Fatalf("change point = %d, want 4 (where the level shifts)", st.ChangePoint)
	}

	down := Trend([]TrendSeries{series("sim/cycles/app", 130, 130, 130, 130, 100, 100, 100)}, TrendOpts{})
	if down.Verdict != Improved || down.ExitCode() != 0 {
		t.Fatalf("improving series = %s (exit %d), want improved 0", down.Verdict, down.ExitCode())
	}

	short := Trend([]TrendSeries{series("sim/cycles/app", 100, 130)}, TrendOpts{})
	if short.Verdict != Pass || short.Series[0].Verdict != "insufficient" {
		t.Fatalf("2-run series = %s/%s, want pass/insufficient", short.Verdict, short.Series[0].Verdict)
	}
	if short.Series[0].BaseMean.Valid() {
		t.Fatal("insufficient series must carry NaN rollups")
	}

	// Ungated metrics report info and never flip the verdict.
	info := Trend([]TrendSeries{series("expo/tt/tew_us/mean", 1, 1, 1, 1, 99, 99, 99)}, TrendOpts{})
	if info.Verdict != Pass || info.Series[0].Verdict != "info" {
		t.Fatalf("ungated drift = %s/%s, want pass/info", info.Verdict, info.Series[0].Verdict)
	}

	// Drift within tolerance passes.
	near := Trend([]TrendSeries{series("sim/cycles/app", 100, 100, 100, 100, 101, 101, 101)}, TrendOpts{})
	if near.Verdict != Pass {
		t.Fatalf("1%% drift = %s, want pass within tolerance", near.Verdict)
	}

	// A noisy base whose CI swallows the shift passes too.
	noisy := Trend([]TrendSeries{series("sim/cycles/app", 60, 140, 70, 130, 110, 110, 110)}, TrendOpts{})
	if noisy.Verdict != Pass {
		t.Fatalf("shift inside base noise = %s, want pass", noisy.Verdict)
	}
}

func TestTrendWorstVerdictWinsAndOrdering(t *testing.T) {
	tr := Trend([]TrendSeries{
		series("expo/tt/ter/mean", 1, 1, 1, 1, 1, 1),
		series("sim/cycles/app", 130, 130, 130, 130, 100, 100, 100),
		series("sim/cycles/flush", 100, 100, 100, 100, 130, 130, 130),
	}, TrendOpts{})
	if tr.Verdict != Regressed {
		t.Fatalf("verdict = %s, want the worst (regressed) to win", tr.Verdict)
	}
	// Gated series lead, then (experiment, metric).
	if !tr.Series[0].Gated || !tr.Series[1].Gated || tr.Series[2].Gated {
		t.Fatalf("gated-first ordering broken: %+v", tr.Series)
	}
	if tr.Series[0].Metric != "sim/cycles/app" || tr.Series[1].Metric != "sim/cycles/flush" {
		t.Fatalf("lexical ordering broken: %s, %s", tr.Series[0].Metric, tr.Series[1].Metric)
	}
	// The report marshals and renders.
	if _, err := json.Marshal(tr); err != nil {
		t.Fatal(err)
	}
	text := tr.Text()
	if !strings.Contains(text, "regressed") || !strings.Contains(text, "sim/cycles/flush") {
		t.Fatalf("text rendering missing content:\n%s", text)
	}
}

func TestTrendWindowOption(t *testing.T) {
	// Window 1 over 6 runs: only the last run is "current".
	vals := []float64{100, 100, 100, 100, 100, 130}
	tr := Trend([]TrendSeries{series("sim/cycles/app", vals...)}, TrendOpts{Window: 1, MinRuns: 5})
	if tr.Verdict != Regressed {
		t.Fatalf("window-1 spike = %s, want regressed", tr.Verdict)
	}
	// The default window 3 dilutes the same spike below significance...
	tr = Trend([]TrendSeries{series("sim/cycles/app", vals...)}, TrendOpts{})
	if tr.Series[0].Verdict == string(Regressed) {
		// mean(100,100,130)=110 vs mean(100,100,100)=100 → 10% drift on a
		// zero-variance base: still regressed. Accept either gate outcome
		// but the window arithmetic must hold.
		t.Logf("window-3 verdict: %s", tr.Series[0].Verdict)
	}
	if float64(tr.Series[0].CurMean) != 110 {
		t.Fatalf("window-3 current mean = %v, want 110", float64(tr.Series[0].CurMean))
	}
}

func TestChangePoint(t *testing.T) {
	if cp := changePoint([]float64{100, 100, 100, 200, 200, 200}, 2); cp != 3 {
		t.Fatalf("change point = %d, want 3", cp)
	}
	if cp := changePoint([]float64{100, 100, 100, 100}, 2); cp != -1 {
		t.Fatalf("flat series change point = %d, want -1", cp)
	}
	if cp := changePoint([]float64{100, 200, 100}, 2); cp != -1 {
		t.Fatalf("3-point series change point = %d, want -1 (too short)", cp)
	}
	if cp := changePoint([]float64{0, 0, 0, 0, 0}, 2); cp != -1 {
		t.Fatalf("all-zero series change point = %d, want -1", cp)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty series should render nothing")
	}
	svg := Sparkline([]float64{1, 5, 3, 8, 2})
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "<polyline") || !strings.Contains(svg, "<circle") {
		t.Fatalf("sparkline missing elements: %s", svg)
	}
	if svg != Sparkline([]float64{1, 5, 3, 8, 2}) {
		t.Fatal("sparkline bytes must be deterministic")
	}
	// Flat and single-point series still render valid glyphs.
	if s := Sparkline([]float64{7, 7, 7}); !strings.Contains(s, "<polyline") {
		t.Fatalf("flat series: %s", s)
	}
	if s := Sparkline([]float64{7}); !strings.Contains(s, "<circle") {
		t.Fatalf("single point: %s", s)
	}
}

// mismatchedDoc builds a one-experiment document with the given cells,
// all carrying one metric at the given per-cell values.
func mismatchedDoc(cells map[string]uint64) []BenchGrid {
	obsDoc := &BenchObs{Totals: obs.NewSnapshot()}
	names := make([]string, 0, len(cells))
	for n := range cells {
		names = append(names, n)
	}
	// Insertion order must not matter; sort for test determinism only.
	for _, name := range sortedKeys(names) {
		s := obs.NewSnapshot()
		s.Add("sim/cycles/base", cells[name])
		obsDoc.Cells = append(obsDoc.Cells, BenchCell{Cell: name, Metrics: s})
		obsDoc.Totals.Add("sim/cycles/base", cells[name])
	}
	return []BenchGrid{{Name: "exp", Obs: obsDoc}}
}

func sortedKeys(names []string) []string {
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func TestCompareMismatchedCellSets(t *testing.T) {
	// Baseline has cells a,b,c; current has b,c,d: only b,c pair for the
	// confidence interval, but the totals still compare.
	base := mismatchedDoc(map[string]uint64{"a": 1000, "b": 1000, "c": 1000})
	cur := mismatchedDoc(map[string]uint64{"b": 1000, "c": 1000, "d": 1000})
	r := Compare(cur, base, RegressOpts{})
	if r == nil {
		t.Fatal("shared experiment must compare")
	}
	m := r.Metrics[0]
	if m.N != 2 {
		t.Fatalf("paired cells = %d, want 2 (only b and c exist on both sides)", m.N)
	}
	if m.Base != 3000 || m.Cur != 3000 {
		t.Fatalf("totals = %d vs %d, want 3000 vs 3000", m.Base, m.Cur)
	}
	if m.Verdict != string(Pass) {
		t.Fatalf("equal totals over mismatched cells = %s, want pass", m.Verdict)
	}

	// A new cell adds 33% total cycles but every paired cell is
	// unchanged, so the per-cell interval includes zero and the verdict
	// stays pass — pairing dominates totals when both exist.
	grown := mismatchedDoc(map[string]uint64{"a": 1000, "b": 1000, "c": 1000, "d": 1000})
	r = Compare(grown, base, RegressOpts{})
	if r.Verdict != Pass || r.Metrics[0].N != 3 {
		t.Fatalf("new cell with unchanged pairs = %s (n=%d), want pass over 3 pairs",
			r.Verdict, r.Metrics[0].N)
	}

	// Fully disjoint cell sets: no pairs at all, totals still speak.
	left := mismatchedDoc(map[string]uint64{"a": 1000})
	right := mismatchedDoc(map[string]uint64{"z": 2000})
	r = Compare(right, left, RegressOpts{})
	if r.Metrics[0].N != 0 {
		t.Fatalf("disjoint cells paired %d, want 0", r.Metrics[0].N)
	}
	if r.Verdict != Regressed {
		t.Fatalf("disjoint +100%% total = %s, want regressed", r.Verdict)
	}
	if r.Metrics[0].MeanRelPct.Valid() {
		t.Fatal("no pairing must carry the NaN sentinel for the cell mean")
	}
}

func TestCellCycleDeltasUnionOfCells(t *testing.T) {
	mk := func(cells map[string]uint64) *BenchObs {
		return mismatchedDoc(cells)[0].Obs
	}
	base := mk(map[string]uint64{"a": 100, "b": 200})
	cur := mk(map[string]uint64{"b": 220, "c": 50})
	ds := CellCycleDeltas(cur, base)
	if len(ds) != 3 {
		t.Fatalf("got %d deltas, want the 3-cell union", len(ds))
	}
	if ds[0].Cell != "a" || ds[1].Cell != "b" || ds[2].Cell != "c" {
		t.Fatalf("cells not sorted: %+v", ds)
	}
	// a: base-only. b: both. c: current-only.
	if ds[0].Base != 100 || ds[0].Cur != 0 || float64(ds[0].DeltaPct) != -100 {
		t.Fatalf("base-only cell = %+v", ds[0])
	}
	if ds[1].Base != 200 || ds[1].Cur != 220 || math.Abs(float64(ds[1].DeltaPct)-10) > 1e-9 {
		t.Fatalf("paired cell = %+v", ds[1])
	}
	if ds[2].Base != 0 || ds[2].Cur != 50 || ds[2].DeltaPct.Valid() {
		t.Fatalf("current-only cell = %+v, want NaN delta", ds[2])
	}
	if CellCycleDeltas(nil, nil) != nil {
		t.Fatal("nil obs on both sides should return nil")
	}
	// Marshals with nulls in place of NaN.
	buf, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), "null") {
		t.Fatalf("NaN delta should marshal as null: %s", buf)
	}
}
