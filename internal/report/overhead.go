package report

import (
	"encoding/json"
	"math"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Ratio is a float64 that is safe to marshal: encoding/json errors on
// NaN and ±Inf, and sim.Accounts deliberately returns NaN from
// Overhead/Fraction when Base == 0 (a miscredited run must not fold
// silently into rollups). Ratio preserves that sentinel as JSON null so
// export paths never crash on it and readers can tell "undefined" from
// "zero".
type Ratio float64

// MarshalJSON renders NaN and ±Inf as null.
func (r Ratio) MarshalJSON() ([]byte, error) {
	f := float64(r)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(f)
}

// UnmarshalJSON accepts null as NaN.
func (r *Ratio) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*r = Ratio(math.NaN())
		return nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(string(data)), 64)
	if err != nil {
		return err
	}
	*r = Ratio(f)
	return nil
}

// Valid reports whether the ratio is a defined number.
func (r Ratio) Valid() bool {
	f := float64(r)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// OverheadRow is one configuration's cycle-account breakdown — the
// paper's base/attach/detach/rand/cond/other component accounts summed
// over the label's cells, with each protection component as a fraction
// of base time (the stacked bars of Figures 9-11).
type OverheadRow struct {
	// Label is the configuration; Cells how many cells contributed.
	Label string `json:"label"`
	Cells int    `json:"cells"`
	// Base..Other are cycles per component account.
	Base   uint64 `json:"base"`
	Attach uint64 `json:"attach"`
	Detach uint64 `json:"detach"`
	Rand   uint64 `json:"rand"`
	Cond   uint64 `json:"cond"`
	Other  uint64 `json:"other"`
	// Overhead is (total-base)/base; the component fractions divide by
	// base. All carry sim.Accounts' NaN sentinel as null when Base == 0.
	Overhead   Ratio `json:"overhead"`
	AttachFrac Ratio `json:"attachFrac"`
	DetachFrac Ratio `json:"detachFrac"`
	RandFrac   Ratio `json:"randFrac"`
	CondFrac   Ratio `json:"condFrac"`
	OtherFrac  Ratio `json:"otherFrac"`
}

// OverheadReport is one experiment's cycle-overhead breakdown.
type OverheadReport struct {
	// Rows holds one entry per configuration label in first-seen order,
	// then a "total" row over all of them.
	Rows []OverheadRow `json:"rows"`
}

// accountsOf rebuilds a sim.Accounts from a snapshot's "sim/cycles/*"
// counters.
func accountsOf(s *obs.Snapshot) sim.Accounts {
	var a sim.Accounts
	if s == nil {
		return a
	}
	for acct := sim.Base; acct <= sim.Other; acct++ {
		a.Add(acct, s.Get("sim/cycles/"+acct.String()))
	}
	return a
}

// rowOf folds an Accounts into a row, routing the NaN sentinel through
// Ratio instead of letting it reach encoding/json.
func rowOf(label string, cells int, a sim.Accounts) OverheadRow {
	return OverheadRow{
		Label:  label,
		Cells:  cells,
		Base:   a[sim.Base],
		Attach: a[sim.Attach],
		Detach: a[sim.Detach],
		Rand:   a[sim.Rand],
		Cond:   a[sim.Cond],
		Other:  a[sim.Other],

		Overhead:   Ratio(a.Overhead()),
		AttachFrac: Ratio(a.Fraction(sim.Attach)),
		DetachFrac: Ratio(a.Fraction(sim.Detach)),
		RandFrac:   Ratio(a.Fraction(sim.Rand)),
		CondFrac:   Ratio(a.Fraction(sim.Cond)),
		OtherFrac:  Ratio(a.Fraction(sim.Other)),
	}
}

// analyzeOverhead builds the component-account breakdown from per-cell
// metrics, grouped by configuration label in first-seen order. It
// returns nil when no cell carries cycle counters.
func analyzeOverhead(e Experiment) *OverheadReport {
	type acc struct {
		cells int
		a     sim.Accounts
	}
	var order []string
	groups := make(map[string]*acc)
	var total sim.Accounts
	cells := 0
	for _, c := range e.Cells {
		a := accountsOf(c.Metrics)
		if a.Total() == 0 {
			continue // no cycle counters (metrics off, or a crash cell)
		}
		label := c.Label()
		g := groups[label]
		if g == nil {
			g = &acc{}
			groups[label] = g
			order = append(order, label)
		}
		g.cells++
		g.a.Merge(&a)
		total.Merge(&a)
		cells++
	}
	if len(order) == 0 {
		return nil
	}
	out := &OverheadReport{}
	for _, label := range order {
		g := groups[label]
		out.Rows = append(out.Rows, rowOf(label, g.cells, g.a))
	}
	out.Rows = append(out.Rows, rowOf("total", cells, total))
	return out
}
