package report

import (
	"fmt"
	"math"
	"strings"
)

// The SVG helpers render the report's charts as self-contained inline
// SVG — no scripts, no external assets — with fixed-precision coordinate
// formatting so the bytes are deterministic.

// palette is the fixed series color cycle.
var palette = []string{
	"#4269d0", "#efb118", "#ff725c", "#6cc5b0",
	"#3ca951", "#ff8ab7", "#a463f2", "#97bbf5",
}

func seriesColor(i int) string { return palette[i%len(palette)] }

// coord formats an SVG coordinate.
func coord(v float64) string { return fmt.Sprintf("%.2f", v) }

// axisLabel formats an axis tick value compactly.
func axisLabel(v float64) string {
	a := math.Abs(v)
	switch {
	case a != 0 && a < 0.01:
		return fmt.Sprintf("%.1e", v)
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// chart geometry shared by the plots.
const (
	chartW, chartH             = 640.0, 280.0
	marginL, marginR           = 60.0, 16.0
	marginT, marginB           = 16.0, 40.0
	plotW                      = chartW - marginL - marginR
	plotH                      = chartH - marginT - marginB
	axisStyle                  = `stroke="#999" stroke-width="1"`
	tickTextStyle              = `font-size="10" fill="#555"`
	gridStyle                  = `stroke="#eee" stroke-width="1"`
	timelineRowH, timelineGapH = 16.0, 6.0
)

// cdfSeries is one line of a CDF chart.
type cdfSeries struct {
	label  string
	points []CDFPoint
}

// svgCDF renders a multi-series duration-CDF chart. The x axis is
// microseconds (log10 when the data spans more than two decades),
// the y axis the cumulative fraction.
func svgCDF(title, xLabel string, series []cdfSeries) string {
	var minX, maxX float64
	first := true
	for _, s := range series {
		for _, p := range s.points {
			if p.Micros <= 0 {
				continue
			}
			if first || p.Micros < minX {
				minX = p.Micros
			}
			if first || p.Micros > maxX {
				maxX = p.Micros
			}
			first = false
		}
	}
	if first {
		return ""
	}
	logScale := maxX/minX > 100
	if maxX == minX {
		maxX = minX + 1
	}
	xpos := func(v float64) float64 {
		if logScale {
			return marginL + plotW*(math.Log10(v)-math.Log10(minX))/(math.Log10(maxX)-math.Log10(minX))
		}
		return marginL + plotW*(v-minX)/(maxX-minX)
	}
	ypos := func(frac float64) float64 { return marginT + plotH*(1-frac) }

	var b strings.Builder
	openSVG(&b, title)
	// Horizontal grid + y ticks at 0/25/50/75/100%.
	for i := 0; i <= 4; i++ {
		frac := float64(i) / 4
		y := ypos(frac)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" %s/>`,
			coord(marginL), coord(y), coord(chartW-marginR), coord(y), gridStyle)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" %s>%d%%</text>`,
			coord(marginL-6), coord(y+3), tickTextStyle, i*25)
		b.WriteByte('\n')
	}
	// X ticks: 5 evenly spaced positions.
	for i := 0; i <= 4; i++ {
		t := float64(i) / 4
		var v float64
		if logScale {
			v = math.Pow(10, math.Log10(minX)+t*(math.Log10(maxX)-math.Log10(minX)))
		} else {
			v = minX + t*(maxX-minX)
		}
		x := xpos(v)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" %s/>`,
			coord(x), coord(marginT+plotH), coord(x), coord(marginT+plotH+4), axisStyle)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" %s>%s</text>`,
			coord(x), coord(marginT+plotH+16), tickTextStyle, axisLabel(v))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" %s>%s</text>`,
		coord(marginL+plotW/2), coord(chartH-6), tickTextStyle, escape(xLabel))
	b.WriteByte('\n')
	// Axes.
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" %s/>`,
		coord(marginL), coord(marginT), coord(marginL), coord(marginT+plotH), axisStyle)
	fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" %s/>`,
		coord(marginL), coord(marginT+plotH), coord(chartW-marginR), coord(marginT+plotH), axisStyle)
	b.WriteByte('\n')
	// Series as step lines.
	for i, s := range series {
		var pts []string
		prevY := ypos(0)
		for _, p := range s.points {
			if p.Micros <= 0 {
				continue
			}
			x := xpos(p.Micros)
			pts = append(pts, coord(x)+","+coord(prevY), coord(x)+","+coord(ypos(p.Frac)))
			prevY = ypos(p.Frac)
		}
		if len(pts) == 0 {
			continue
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`,
			seriesColor(i), strings.Join(pts, " "))
		b.WriteByte('\n')
		// Legend swatch.
		lx, ly := marginL+10, marginT+10+float64(i)*16
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="10" height="10" fill="%s"/>`,
			coord(lx), coord(ly-8), seriesColor(i))
		fmt.Fprintf(&b, `<text x="%s" y="%s" %s>%s</text>`,
			coord(lx+14), coord(ly+1), tickTextStyle, escape(s.label))
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// overheadComponent pairs a bar segment with its color.
type overheadComponent struct {
	name string
	frac func(OverheadRow) Ratio
}

var overheadComponents = []overheadComponent{
	{"attach", func(r OverheadRow) Ratio { return r.AttachFrac }},
	{"detach", func(r OverheadRow) Ratio { return r.DetachFrac }},
	{"rand", func(r OverheadRow) Ratio { return r.RandFrac }},
	{"cond", func(r OverheadRow) Ratio { return r.CondFrac }},
	{"other", func(r OverheadRow) Ratio { return r.OtherFrac }},
}

// svgOverheadBars renders the component-account breakdown as horizontal
// stacked bars (one per configuration), each segment a component's share
// of base time. Rows with the NaN sentinel (Base == 0) render as "n/a".
func svgOverheadBars(rows []OverheadRow) string {
	if len(rows) == 0 {
		return ""
	}
	var maxOv float64
	for _, r := range rows {
		if r.Overhead.Valid() && float64(r.Overhead) > maxOv {
			maxOv = float64(r.Overhead)
		}
	}
	if maxOv == 0 {
		maxOv = 1
	}
	rowH, gap := 22.0, 8.0
	labelW := 120.0
	legendH := 22.0
	h := marginT + legendH + float64(len(rows))*(rowH+gap) + marginB
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" role="img" aria-label="%s">`,
		coord(chartW), coord(h), coord(chartW), coord(h), escape("overhead breakdown"))
	b.WriteByte('\n')
	// Legend.
	lx := labelW
	for i, comp := range overheadComponents {
		fmt.Fprintf(&b, `<rect x="%s" y="%s" width="10" height="10" fill="%s"/>`,
			coord(lx), coord(marginT), seriesColor(i))
		fmt.Fprintf(&b, `<text x="%s" y="%s" %s>%s</text>`,
			coord(lx+14), coord(marginT+9), tickTextStyle, comp.name)
		lx += 70
	}
	b.WriteByte('\n')
	barW := chartW - labelW - marginR - 70 // room for the % annotation
	for i, r := range rows {
		y := marginT + legendH + float64(i)*(rowH+gap)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" %s>%s</text>`,
			coord(labelW-8), coord(y+rowH/2+4), tickTextStyle, escape(r.Label))
		if !r.Overhead.Valid() {
			fmt.Fprintf(&b, `<text x="%s" y="%s" %s>n/a (no base cycles)</text>`,
				coord(labelW), coord(y+rowH/2+4), tickTextStyle)
			b.WriteByte('\n')
			continue
		}
		x := labelW
		for ci, comp := range overheadComponents {
			f := float64(comp.frac(r))
			if !comp.frac(r).Valid() || f <= 0 {
				continue
			}
			w := barW * f / maxOv
			fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s"/>`,
				coord(x), coord(y), coord(w), coord(rowH), seriesColor(ci))
			x += w
		}
		fmt.Fprintf(&b, `<text x="%s" y="%s" %s>%.2f%%</text>`,
			coord(x+6), coord(y+rowH/2+4), tickTextStyle, 100*float64(r.Overhead))
		b.WriteByte('\n')
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// svgTimelines renders one configuration's per-PMO exposure timelines:
// one row per PMO, a rect per exposure window.
func svgTimelines(g ExposureGroup) string {
	if len(g.Timelines) == 0 {
		return ""
	}
	var maxT float64
	for _, tl := range g.Timelines {
		for _, s := range tl.Spans {
			if s.EndMicros > maxT {
				maxT = s.EndMicros
			}
		}
	}
	if maxT == 0 {
		return ""
	}
	labelW := 90.0
	h := marginT + float64(len(g.Timelines))*(timelineRowH+timelineGapH) + marginB
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" role="img" aria-label="%s">`,
		coord(chartW), coord(h), coord(chartW), coord(h), escape("exposure timeline "+g.Label))
	b.WriteByte('\n')
	spanW := chartW - labelW - marginR
	for i, tl := range g.Timelines {
		y := marginT + float64(i)*(timelineRowH+timelineGapH)
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="end" %s>pmo %d</text>`,
			coord(labelW-8), coord(y+timelineRowH/2+4), tickTextStyle, tl.PMO)
		fmt.Fprintf(&b, `<line x1="%s" y1="%s" x2="%s" y2="%s" %s/>`,
			coord(labelW), coord(y+timelineRowH/2), coord(labelW+spanW), coord(y+timelineRowH/2), gridStyle)
		for _, s := range tl.Spans {
			x := labelW + spanW*s.StartMicros/maxT
			w := spanW * (s.EndMicros - s.StartMicros) / maxT
			if w < 0.5 {
				w = 0.5 // keep sub-pixel windows visible
			}
			fmt.Fprintf(&b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s" fill-opacity="0.8"/>`,
				coord(x), coord(y), coord(w), coord(timelineRowH), seriesColor(0))
		}
		b.WriteByte('\n')
	}
	// Time axis labels.
	for i := 0; i <= 4; i++ {
		t := maxT * float64(i) / 4
		x := labelW + spanW*float64(i)/4
		fmt.Fprintf(&b, `<text x="%s" y="%s" text-anchor="middle" %s>%s us</text>`,
			coord(x), coord(h-10), tickTextStyle, axisLabel(t))
	}
	b.WriteString("\n</svg>\n")
	return b.String()
}

// openSVG writes the standard chart envelope.
func openSVG(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s" role="img" aria-label="%s">`,
		coord(chartW), coord(chartH), coord(chartW), coord(chartH), escape(title))
	b.WriteByte('\n')
}

// escape escapes text for SVG/HTML attribute and element content.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
