package report

import (
	"strings"
	"testing"
)

const goBenchSample = `goos: linux
goarch: amd64
pkg: repro/internal/interp
cpu: AMD EPYC 7B13
BenchmarkExecALU/legacy-8         	    8848	    133503 ns/op	     176 B/op	       1 allocs/op
BenchmarkExecALU/linked-8         	   14601	     82868 ns/op	       0 B/op	       0 allocs/op
BenchmarkTLBHit-8                 	201163182	         5.974 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/interp	4.612s
`

func TestParseGoBench(t *testing.T) {
	grids, err := ParseGoBench([]byte(goBenchSample))
	if err != nil {
		t.Fatal(err)
	}
	if len(grids) != 1 || grids[0].Name != GoBenchGridName {
		t.Fatalf("grids = %+v, want one grid named %q", grids, GoBenchGridName)
	}
	cells := grids[0].Obs.Cells
	if len(cells) != 3 {
		t.Fatalf("parsed %d cells, want 3", len(cells))
	}
	// The -8 GOMAXPROCS suffix must be stripped from every cell name.
	for _, c := range cells {
		if strings.HasSuffix(c.Cell, "-8") {
			t.Errorf("cell %q retains the GOMAXPROCS suffix", c.Cell)
		}
	}
	byName := make(map[string]BenchCell)
	for _, c := range cells {
		byName[c.Cell] = c
	}
	linked, ok := byName["BenchmarkExecALU/linked"]
	if !ok {
		t.Fatalf("missing linked cell; have %v", cells)
	}
	if got := linked.Metrics.Get("perf/ns_op"); got != 82868 {
		t.Errorf("linked ns_op = %d, want 82868", got)
	}
	if got := linked.Metrics.Get("perf/allocs_op"); got != 0 {
		t.Errorf("linked allocs_op = %d, want 0", got)
	}
	// Fractional ns/op rounds to the nearest integer nanosecond.
	if got := byName["BenchmarkTLBHit"].Metrics.Get("perf/ns_op"); got != 6 {
		t.Errorf("TLB ns_op = %d, want 6 (rounded from 5.974)", got)
	}
	// Totals merge every cell.
	if got := grids[0].Obs.Totals.Get("perf/bytes_op"); got != 176 {
		t.Errorf("total bytes_op = %d, want 176", got)
	}
}

func TestParseGoBenchRejectsEmpty(t *testing.T) {
	if _, err := ParseGoBench([]byte("PASS\nok  \trepro/internal/interp\t0.1s\n")); err == nil {
		t.Fatal("want error for output with no benchmark lines")
	}
}

// TestGateWallClock: perf/* metrics are informational by default and gate
// only when GateWallClock is set — a +50% ns/op drift must flip the
// verdict exactly then.
func TestGateWallClock(t *testing.T) {
	base := benchDoc("perf/ns_op", map[string]uint64{"a": 1000, "b": 1000, "c": 1000, "d": 1000})
	cur := benchDoc("perf/ns_op", map[string]uint64{"a": 1500, "b": 1500, "c": 1500, "d": 1500})

	off := Compare(cur, base, RegressOpts{})
	if off.Verdict != Pass || off.Metrics[0].Verdict != "info" {
		t.Fatalf("ungated wall-clock drift = %s/%s, want pass/info", off.Verdict, off.Metrics[0].Verdict)
	}

	on := Compare(cur, base, RegressOpts{GateWallClock: true})
	if on.Verdict != Regressed || on.ExitCode() != 3 {
		t.Fatalf("gated wall-clock drift = %s (exit %d), want regressed 3", on.Verdict, on.ExitCode())
	}

	// Simulated cycle accounts gate regardless of the wall-clock switch.
	cb := benchDoc("sim/cycles/total", map[string]uint64{"a": 1000})
	cc := benchDoc("sim/cycles/total", map[string]uint64{"a": 1500})
	if r := Compare(cc, cb, RegressOpts{}); r.Verdict != Regressed {
		t.Fatalf("cycle drift without wall-clock gating = %s, want regressed", r.Verdict)
	}
}
