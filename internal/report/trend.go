package report

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Trend analytics over the run ledger: per-metric time series keyed by
// spec hash, a trailing-window regression test reusing the baseline
// gate's tolerance/CI rules, and a simple mean-split change-point
// locator. The ledger layer builds TrendSeries from records; this file
// never reads files, so the report package stays import-cycle-free
// (terp imports report; ledger imports both).

// TrendPoint is one run's value of one metric (Run is the 0-based
// position within the series' spec-hash group, in append order).
type TrendPoint struct {
	Run   int     `json:"run"`
	Value float64 `json:"value"`
}

// TrendSeries is one metric's history under one spec identity.
type TrendSeries struct {
	Experiment string       `json:"experiment"`
	SpecHash   string       `json:"specHash,omitempty"`
	Metric     string       `json:"metric"`
	Points     []TrendPoint `json:"points"`
}

// TrendOpts tunes the trend gate.
type TrendOpts struct {
	// Window is the trailing run count compared against the prior
	// history; 0 selects 3.
	Window int
	// MinRuns is the history length below which a series reports
	// "insufficient" instead of gating; 0 selects 5.
	MinRuns int
	// TolerancePct and Z mirror RegressOpts: relative drift allowed
	// before gating (0 selects 2) and the CI z-score (0 selects 1.96).
	TolerancePct float64
	Z            float64
}

func (o TrendOpts) withDefaults() TrendOpts {
	if o.Window <= 0 {
		o.Window = 3
	}
	if o.MinRuns <= 0 {
		o.MinRuns = 5
	}
	if o.MinRuns <= o.Window {
		// The base window needs at least one run outside the trailing
		// window.
		o.MinRuns = o.Window + 1
	}
	if o.TolerancePct == 0 {
		o.TolerancePct = 2
	}
	if o.Z == 0 {
		o.Z = 1.96
	}
	return o
}

// SeriesTrend is one series' analyzed trend.
type SeriesTrend struct {
	Experiment string `json:"experiment"`
	SpecHash   string `json:"specHash,omitempty"`
	Metric     string `json:"metric"`
	// N is the series length; Gated marks metrics the verdict gates on
	// (the sim cycle accounts — same rule as the baseline gate).
	N     int  `json:"n"`
	Gated bool `json:"gated"`
	// First and Last are the endpoints (sparkline anchors).
	First float64 `json:"first"`
	Last  float64 `json:"last"`
	// BaseMean is the mean of the runs before the trailing window,
	// CurMean the mean of the window, DeltaPct their relative change
	// (null when the base mean is 0) and CIHalfPct the confidence
	// half-width of the base runs in percent of the base mean.
	BaseMean  Ratio `json:"baseMean"`
	CurMean   Ratio `json:"curMean"`
	DeltaPct  Ratio `json:"deltaPct"`
	CIHalfPct Ratio `json:"ciHalfPct"`
	// ChangePoint is the run index where a mean split explains the
	// largest shift beyond tolerance, -1 when the series is stable.
	ChangePoint int `json:"changePoint"`
	// Verdict is pass/improved/regressed for gated series, "info" for
	// ungated ones, "insufficient" below MinRuns.
	Verdict string `json:"verdict"`
}

// TrendReport is the full trend analysis (the GET /v1/history/trend
// body and the `terpreport -trend` verdict document).
type TrendReport struct {
	// Verdict is the worst gated series verdict (Pass when nothing
	// gated or everything is stable/insufficient).
	Verdict Verdict `json:"verdict"`
	// Window, MinRuns, TolerancePct and Z echo the parameters.
	Window       int     `json:"window"`
	MinRuns      int     `json:"minRuns"`
	TolerancePct float64 `json:"tolerancePct"`
	Z            float64 `json:"z"`
	// Series holds every analyzed series, gated first, then by
	// (experiment, metric, spec hash).
	Series []SeriesTrend `json:"series"`
}

// Trend analyzes each series against its own history: the trailing
// Window runs against everything before them, tolerance and CI rules
// as in Compare. Deterministic for a given input.
func Trend(series []TrendSeries, opt TrendOpts) *TrendReport {
	opt = opt.withDefaults()
	out := &TrendReport{
		Verdict: Pass,
		Window:  opt.Window, MinRuns: opt.MinRuns,
		TolerancePct: opt.TolerancePct, Z: opt.Z,
	}
	for _, s := range series {
		st := trendOne(s, opt)
		out.Series = append(out.Series, st)
		switch st.Verdict {
		case string(Regressed):
			out.Verdict = Regressed
		case string(Improved):
			if out.Verdict == Pass {
				out.Verdict = Improved
			}
		}
	}
	sort.SliceStable(out.Series, func(i, j int) bool {
		a, b := out.Series[i], out.Series[j]
		if a.Gated != b.Gated {
			return a.Gated
		}
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Metric != b.Metric {
			return a.Metric < b.Metric
		}
		return a.SpecHash < b.SpecHash
	})
	return out
}

func trendOne(s TrendSeries, opt TrendOpts) SeriesTrend {
	vals := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vals[i] = p.Value
	}
	st := SeriesTrend{
		Experiment: s.Experiment, SpecHash: s.SpecHash, Metric: s.Metric,
		N:           len(vals),
		Gated:       gatedMetric(s.Metric, RegressOpts{}),
		ChangePoint: -1,
	}
	nan := Ratio(math.NaN())
	st.BaseMean, st.CurMean, st.DeltaPct, st.CIHalfPct = nan, nan, nan, nan
	if len(vals) > 0 {
		st.First, st.Last = vals[0], vals[len(vals)-1]
	}
	if st.N < opt.MinRuns {
		st.Verdict = "insufficient"
		return st
	}
	base, cur := vals[:st.N-opt.Window], vals[st.N-opt.Window:]
	baseMean, half := stats.MeanCI(base, opt.Z)
	curMean := stats.Mean(cur)
	st.BaseMean, st.CurMean = Ratio(baseMean), Ratio(curMean)
	if baseMean != 0 {
		st.DeltaPct = Ratio(100 * (curMean - baseMean) / baseMean)
		st.CIHalfPct = Ratio(100 * half / math.Abs(baseMean))
	}
	st.ChangePoint = changePoint(vals, opt.TolerancePct)
	st.Verdict = trendVerdict(st, baseMean, curMean, half, opt)
	return st
}

// trendVerdict classifies one series, mirroring metricVerdict: gated
// series regress when the trailing window drifts beyond tolerance in
// the bad direction and outside the base window's confidence interval.
func trendVerdict(st SeriesTrend, baseMean, curMean, half float64, opt TrendOpts) string {
	if !st.Gated {
		return "info"
	}
	if baseMean == 0 {
		if curMean > 0 {
			return string(Regressed) // cycles appearing from nowhere
		}
		return string(Pass)
	}
	delta := float64(st.DeltaPct)
	if math.Abs(delta) <= opt.TolerancePct {
		return string(Pass)
	}
	if math.Abs(curMean-baseMean) <= half {
		return string(Pass) // within the base history's own noise
	}
	if delta > 0 {
		return string(Regressed)
	}
	return string(Improved)
}

// changePoint locates the split index k (2 <= k <= n-2) maximizing the
// mean shift |mean(v[k:]) - mean(v[:k])|, returning -1 when the best
// shift stays within tolerancePct of the overall mean — i.e. the
// series is flat enough that no split explains anything.
func changePoint(vals []float64, tolerancePct float64) int {
	if len(vals) < 4 {
		return -1
	}
	overall := stats.Mean(vals)
	best, bestShift := -1, 0.0
	for k := 2; k <= len(vals)-2; k++ {
		shift := math.Abs(stats.Mean(vals[k:]) - stats.Mean(vals[:k]))
		if shift > bestShift {
			best, bestShift = k, shift
		}
	}
	if overall == 0 || 100*bestShift/math.Abs(overall) <= tolerancePct {
		return -1
	}
	return best
}

// ExitCode maps the trend verdict to a process exit code, matching
// Regression.ExitCode: 0 for pass/improved, 3 for regressed.
func (t *TrendReport) ExitCode() int {
	if t != nil && t.Verdict == Regressed {
		return 3
	}
	return 0
}

// Text renders the trend report as an aligned table.
func (t *TrendReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trend verdict: %s (window %d, min runs %d, tolerance %.3g%%)\n",
		t.Verdict, t.Window, t.MinRuns, t.TolerancePct)
	tab := stats.NewTable("experiment", "metric", "n", "base", "current", "delta%", "verdict")
	for _, s := range t.Series {
		tab.AddRow(s.Experiment, s.Metric, fmt.Sprintf("%d", s.N),
			fmtTrendVal(float64(s.BaseMean)), fmtTrendVal(float64(s.CurMean)),
			fmtTrendVal(float64(s.DeltaPct)), s.Verdict)
	}
	b.WriteString(tab.String())
	return b.String()
}

func fmtTrendVal(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// Sparkline renders a value series as a tiny inline SVG polyline
// (120x28) with the last point marked — the dashboard's and compare
// panel's at-a-glance trend glyph. Deterministic bytes for a given
// series; empty input renders nothing.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	const w, h, pad = 120.0, 28.0, 3.0
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	span := hi - lo
	if span == 0 {
		span = 1 // flat series draws a centered line
		lo -= 0.5
	}
	x := func(i int) float64 {
		if len(values) == 1 {
			return w / 2
		}
		return pad + (w-2*pad)*float64(i)/float64(len(values)-1)
	}
	y := func(v float64) float64 {
		return pad + (h-2*pad)*(1-(v-lo)/span)
	}
	var pts []string
	for i, v := range values {
		pts = append(pts, coord(x(i))+","+coord(y(v)))
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f" role="img">`, w, h, w, h)
	fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`,
		strings.Join(pts, " "), seriesColor(0))
	last := len(values) - 1
	fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2" fill="%s"/>`,
		coord(x(last)), coord(y(values[last])), seriesColor(2))
	b.WriteString(`</svg>`)
	return b.String()
}

// CellDelta is one cell's total-sim-cycle comparison between two
// grids (the /v1/compare per-cell table).
type CellDelta struct {
	Cell string `json:"cell"`
	// Base and Cur sum the cell's sim/cycles/* accounts on each side
	// (0 when the cell exists on only one side).
	Base uint64 `json:"base"`
	Cur  uint64 `json:"cur"`
	// DeltaPct is the relative change (null when Base is 0).
	DeltaPct Ratio `json:"deltaPct"`
}

// CellCycleDeltas compares per-cell total sim cycles across the union
// of both grids' cells, sorted by cell name. Cells present on only
// one side appear with the other side at 0.
func CellCycleDeltas(cur, base *BenchObs) []CellDelta {
	if cur == nil && base == nil {
		return nil
	}
	cycles := func(o *BenchObs) map[string]uint64 {
		out := map[string]uint64{}
		if o == nil {
			return out
		}
		for _, c := range o.Cells {
			if c.Metrics == nil {
				continue
			}
			var total uint64
			for _, name := range c.Metrics.Names() {
				if strings.HasPrefix(name, "sim/cycles/") {
					total += c.Metrics.Get(name)
				}
			}
			out[c.Cell] = total
		}
		return out
	}
	cm, bm := cycles(cur), cycles(base)
	names := make([]string, 0, len(cm)+len(bm))
	seen := map[string]bool{}
	for n := range cm {
		names = append(names, n)
		seen[n] = true
	}
	for n := range bm {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []CellDelta
	for _, n := range names {
		d := CellDelta{Cell: n, Base: bm[n], Cur: cm[n], DeltaPct: Ratio(math.NaN())}
		if d.Base > 0 {
			d.DeltaPct = Ratio(100 * (float64(d.Cur) - float64(d.Base)) / float64(d.Base))
		}
		out = append(out, d)
	}
	return out
}
