package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenReport builds a small fully-populated report from synthetic
// events: exposure groups with timelines and CDFs, attack correlation,
// an overhead table with a NaN-sentinel row, a ring-overflow warning and
// a regression section — every HTML/SVG render path in one document.
func goldenReport() *Report {
	mm := expoCell("exp/whisper/MM", [][3]float64{
		{0, 0, 10}, {0, 20, 35}, {1, 5, 25}, {2, 40, 48},
	})
	mmMetrics := obs.NewSnapshot()
	mmMetrics.Add("sim/cycles/base", 100_000)
	mmMetrics.Add("sim/cycles/attach", 9_000)
	mmMetrics.Add("sim/cycles/detach", 6_000)
	mm.Metrics = mmMetrics

	tt := expoCell("exp/whisper/TT", [][3]float64{
		{0, 0, 2}, {1, 6, 8}, {2, 41, 43},
	})
	ttMetrics := obs.NewSnapshot()
	ttMetrics.Add("sim/cycles/base", 100_000)
	ttMetrics.Add("sim/cycles/attach", 4_000)
	ttMetrics.Add("sim/cycles/rand", 1_500)
	ttMetrics.Add("sim/cycles/cond", 500)
	tt.Metrics = ttMetrics

	// A cell with protection cycles but no base: exercises the NaN
	// sentinel ("n/a" bar) without crashing the JSON or SVG paths.
	orphanMetrics := obs.NewSnapshot()
	orphanMetrics.Add("sim/cycles/attach", 2_000)
	orphan := Cell{Name: "exp/whisper/XX", Metrics: orphanMetrics}

	rec := obs.NewRecorder(1 << 12)
	hw := rec.Track(obs.HWThread)
	att := rec.Track(0)
	hw.AsyncBegin(us(10), obs.CatExpo, "ew", 0)
	att.Instant(us(12), obs.CatAttack, "probe", 0)
	att.Instant(us(15), obs.CatAttack, "probe", 1)
	att.Instant(us(15), obs.CatAttack, "probe-hit", 1)
	hw.AsyncEnd(us(20), obs.CatExpo, "ew", 0)
	att.Instant(us(30), obs.CatAttack, "deadtime", int64(us(1)))
	att.Instant(us(31), obs.CatAttack, "deadtime", int64(us(5)))
	mc := Cell{Name: "exp/probe/mc", Events: rec.Events(),
		TraceEvents: rec.Total() + 7, TraceDropped: 7}

	in := Input{
		Title: "golden report",
		Experiments: []Experiment{
			{Name: "exp", Opts: "ops=100 seed=1", Cells: []Cell{mm, tt, orphan, mc}},
			{Name: "empty"},
		},
	}
	r := Build(in, Options{TEWTargetMicros: 2})
	r.Regression = Compare(
		benchDoc("sim/cycles/base", map[string]uint64{"a": 1100, "b": 1100}),
		benchDoc("sim/cycles/base", map[string]uint64{"a": 1000, "b": 1000}),
		RegressOpts{})
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden file; inspect the diff and rerun with -update if intended.\ngot %d bytes, want %d", name, len(got), len(want))
	}
}

func TestGoldenHTML(t *testing.T) {
	r := goldenReport()
	checkGolden(t, "report_golden.html", HTML(r))
	// Two builds over the same input must render identical bytes.
	if !bytes.Equal(HTML(r), HTML(goldenReport())) {
		t.Fatal("HTML render is not deterministic")
	}
}

func TestGoldenText(t *testing.T) {
	checkGolden(t, "report_golden.txt", []byte(Text(goldenReport())))
}

func TestGoldenSVGSections(t *testing.T) {
	r := goldenReport()
	html := string(HTML(r))
	for _, want := range []string{
		"<svg", "exposure-duration CDF", "dead-time CDF",
		"overhead", "timeline",
	} {
		if !bytes.Contains([]byte(html), []byte(want)) {
			t.Fatalf("HTML missing %q section", want)
		}
	}
}
