// Package report is the analysis layer over the observability subsystem:
// it consumes per-cell metrics snapshots and event streams (internal/obs)
// and produces the paper-style artifacts of the evaluation — per-PMO
// exposure timelines, exposure-duration CDFs and percentiles for MERR vs
// TERP, attack-correlation statistics (probe hits vs open exposure
// windows, dead-time surface vs the TEW target), and a cycle-overhead
// breakdown matching the paper's component accounts — plus benchmark
// regression tracking against a committed BENCH_*.json baseline.
//
// Determinism contract: the package inherits obs's guarantees — every
// input value is keyed by simulated cycles and merged in enumeration
// order — and adds none of its own nondeterminism: no wall time, no map
// iteration without sorting, fixed-precision float rendering. Two runs of
// the same spec produce byte-identical text, HTML and verdict JSON at
// every -parallel level.
package report

import (
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/params"
)

// Cell is one experiment cell's observability payload as the analyzer
// consumes it (a thin mirror of obs.CellObs with the trace attached).
type Cell struct {
	// Name is the cell's display name ("table3/echo/MM(40us)").
	Name string
	// Metrics is the cell's counter/histogram snapshot (nil when metrics
	// collection was off).
	Metrics *obs.Snapshot
	// Events is the cell's retained trace (nil when tracing was off).
	Events []obs.Event
	// TraceEvents and TraceDropped count observed and ring-evicted trace
	// events.
	TraceEvents, TraceDropped uint64
}

// Label returns the cell's configuration label — the last segment of the
// slash-separated cell name ("MM(40us)").
func (c Cell) Label() string {
	if i := strings.LastIndexByte(c.Name, '/'); i >= 0 {
		return c.Name[i+1:]
	}
	return c.Name
}

// Experiment is one experiment's observability payload.
type Experiment struct {
	// Name is the experiment ("table3"); Opts a rendered options line.
	Name, Opts string
	// Cells holds the per-cell payloads in enumeration order.
	Cells []Cell
	// Totals is the deterministic merge of all cell metrics (nil when
	// metrics were off).
	Totals *obs.Snapshot
}

// Input is everything one report is built from.
type Input struct {
	// Title heads the report (e.g. the command line that produced it,
	// minus anything nondeterministic).
	Title string
	// Experiments in run order.
	Experiments []Experiment
}

// Options tunes the analysis.
type Options struct {
	// TEWTargetMicros is the thread-exposure-window target the dead-time
	// surface is measured against; 0 selects the paper's 2 us.
	TEWTargetMicros float64
	// MaxTimelinePMOs bounds the per-PMO timelines rendered per
	// configuration; 0 selects 8. The bound is reported, never silent.
	MaxTimelinePMOs int
	// MaxTimelineSpans bounds the spans rendered per timeline; 0
	// selects 120.
	MaxTimelineSpans int
}

func (o Options) withDefaults() Options {
	if o.TEWTargetMicros == 0 {
		o.TEWTargetMicros = params.DefaultTEWMicros
	}
	if o.MaxTimelinePMOs == 0 {
		o.MaxTimelinePMOs = 8
	}
	if o.MaxTimelineSpans == 0 {
		o.MaxTimelineSpans = 120
	}
	return o
}

// Report is the finished analysis.
type Report struct {
	// Title heads the report.
	Title string `json:"title"`
	// Experiments holds one section per experiment, in run order.
	Experiments []ExperimentReport `json:"experiments"`
	// Regression is the baseline comparison (nil when none was run).
	Regression *Regression `json:"regression,omitempty"`
}

// ExperimentReport is one experiment's analysis section.
type ExperimentReport struct {
	// Name and Opts identify the experiment.
	Name string `json:"name"`
	Opts string `json:"opts,omitempty"`
	// Exposure is the window analysis (nil without expo trace events).
	Exposure *ExposureReport `json:"exposure,omitempty"`
	// Attack is the attack-observability analysis (nil without attack
	// instants).
	Attack *AttackReport `json:"attack,omitempty"`
	// Overhead is the cycle-account breakdown (nil without metrics).
	Overhead *OverheadReport `json:"overhead,omitempty"`
	// Dropped flags cells whose trace rings overflowed; their exposure
	// sections may undercount windows.
	Dropped []DroppedCell `json:"dropped,omitempty"`
}

// DroppedCell flags one cell that lost trace events to ring overflow.
type DroppedCell struct {
	// Cell is the cell name; Dropped and Total its loss and event count.
	Cell    string `json:"cell"`
	Dropped uint64 `json:"dropped"`
	Total   uint64 `json:"total"`
}

// Build runs the full analysis over the input.
func Build(in Input, opt Options) *Report {
	opt = opt.withDefaults()
	r := &Report{Title: in.Title}
	for _, e := range in.Experiments {
		er := ExperimentReport{Name: e.Name, Opts: e.Opts}
		er.Exposure = analyzeExposure(e, opt)
		er.Attack = analyzeAttack(e, opt)
		er.Overhead = analyzeOverhead(e)
		for _, c := range e.Cells {
			if c.TraceDropped > 0 {
				er.Dropped = append(er.Dropped, DroppedCell{
					Cell: c.Name, Dropped: c.TraceDropped, Total: c.TraceEvents,
				})
			}
		}
		r.Experiments = append(r.Experiments, er)
	}
	return r
}

// sortedCounterNames returns the union of counter names across snapshots,
// sorted.
func sortedCounterNames(snaps ...*obs.Snapshot) []string {
	seen := make(map[string]bool)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for k := range s.Counters {
			seen[k] = true
		}
	}
	names := make([]string, 0, len(seen))
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
