package whisper

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
)

// RunOpts configures a measured run.
type RunOpts struct {
	// Ops is the number of operations (the paper runs 100K).
	Ops int
	// Seed seeds workload randomness (defaults to the config seed).
	Seed int64
	// OnRuntime, when set, is called with the freshly built runtime
	// before the run (tracing, inspection).
	OnRuntime func(*core.Runtime)
	// Interrupt, when set, is polled every interruptStride operations;
	// a non-nil return aborts the run with that error. The poll only
	// observes — a run that completes is byte-identical whether or not
	// Interrupt was set.
	Interrupt func() error
}

// interruptStride is how many operations run between Interrupt polls.
const interruptStride = 1024

// DefaultOps is the paper's operation count.
const DefaultOps = 100_000

// unprotCfg is the configuration used for load phases.
func unprotCfg() params.Config {
	return params.NewConfig(params.Unprotected, params.DefaultEWMicros)
}

// newLoadThread returns a throwaway thread for load phases.
func newLoadThread() *sim.Thread { return sim.SingleThread() }

// Run executes one WHISPER workload under the given protection
// configuration on a fresh simulated machine and returns the result.
//
// Insertion strategies follow Section VI:
//   - Unprotected: attach once; no protection operations.
//   - MM: manual MERR bracketing — the "programmer" sizes batches of
//     operations from a conservative static estimate so each bracketed
//     section targets (and in practice under-fills) the EW target; think
//     time falls outside the bracket.
//   - TERP schemes (TM, TT, ablations): the compiler's insertion wraps
//     each operation's PM section in a conditional attach/detach pair
//     (TEW granularity); window combining is then the architecture's job.
func Run(cfg params.Config, mk func() Workload, opts RunOpts) (core.Result, error) {
	if opts.Ops == 0 {
		opts.Ops = DefaultOps
	}
	seed := opts.Seed
	if seed == 0 {
		seed = cfg.Seed
	}
	w := mk()

	dev := nvm.NewDevice(nvm.NVM, 2*pmoSize)
	mgr := pmo.NewManager(dev)
	rt := core.NewRuntime(cfg, mgr)
	if opts.OnRuntime != nil {
		opts.OnRuntime(rt)
	}
	ctx := rt.NewThread(sim.SingleThread())
	rng := rand.New(rand.NewSource(seed))

	if err := w.Setup(mgr, ctx, rng); err != nil {
		return core.Result{}, fmt.Errorf("whisper %s setup: %w", w.Name(), err)
	}
	// Setup must not count: reset the clock's costs by measuring from a
	// fresh thread context.
	start := ctx.Now()

	prof := w.Profile()
	p := w.PMO()
	idle := func() {
		ctx.Compute(prof.IdleBase + uint64(rng.Int63n(int64(prof.IdleSpread+1))))
	}
	interrupted := func(i int) error {
		if opts.Interrupt == nil || i%interruptStride != 0 {
			return nil
		}
		return opts.Interrupt()
	}

	switch cfg.Scheme {
	case params.Unprotected:
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			return core.Result{}, err
		}
		for i := 0; i < opts.Ops; i++ {
			if err := interrupted(i); err != nil {
				return core.Result{}, err
			}
			ctx.Compute(prof.Parse)
			if err := w.Op(ctx, rng); err != nil {
				return core.Result{}, fmt.Errorf("%s op %d: %w", w.Name(), i, err)
			}
			idle()
		}
	case params.MM:
		batch := int(cfg.EWTarget / prof.EstOpCycles)
		if batch < 1 {
			batch = 1
		}
		for i := 0; i < opts.Ops; {
			if opts.Interrupt != nil {
				if err := opts.Interrupt(); err != nil {
					return core.Result{}, err
				}
			}
			if err := ctx.Attach(p, paging.ReadWrite); err != nil {
				return core.Result{}, err
			}
			for k := 0; k < batch && i < opts.Ops; k++ {
				ctx.Compute(prof.Parse)
				if err := w.Op(ctx, rng); err != nil {
					return core.Result{}, fmt.Errorf("%s op %d: %w", w.Name(), i, err)
				}
				i++
			}
			if err := ctx.Detach(p); err != nil {
				return core.Result{}, err
			}
			for k := 0; k < batch; k++ {
				idle()
			}
		}
	default:
		// TERP insertion: conditional attach/detach around each op's
		// PM section; parse and idle run outside the window.
		for i := 0; i < opts.Ops; i++ {
			if err := interrupted(i); err != nil {
				return core.Result{}, err
			}
			ctx.Compute(prof.Parse)
			if err := ctx.Attach(p, paging.ReadWrite); err != nil {
				return core.Result{}, err
			}
			if err := w.Op(ctx, rng); err != nil {
				return core.Result{}, fmt.Errorf("%s op %d: %w", w.Name(), i, err)
			}
			if err := ctx.Detach(p); err != nil {
				return core.Result{}, err
			}
			idle()
		}
	}
	res := rt.Finish(ctx.Now())
	res.Cycles = ctx.Now() - start
	return res, nil
}

// Overhead runs the workload under cfg and under the unprotected baseline
// with identical op streams and returns the relative execution-time
// overhead plus both results.
func Overhead(cfg params.Config, mk func() Workload, opts RunOpts) (float64, core.Result, core.Result, error) {
	base, err := Run(params.Config{Scheme: params.Unprotected, Seed: cfg.Seed, EWTarget: cfg.EWTarget}, mk, opts)
	if err != nil {
		return 0, core.Result{}, core.Result{}, err
	}
	prot, err := Run(cfg, mk, opts)
	if err != nil {
		return 0, core.Result{}, core.Result{}, err
	}
	ov := float64(prot.Cycles)/float64(base.Cycles) - 1
	return ov, prot, base, nil
}
