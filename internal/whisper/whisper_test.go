package whisper

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/nvm"
	"repro/internal/paging"
	"repro/internal/params"
	"repro/internal/pmo"
	"repro/internal/sim"
	"repro/internal/txn"
)

const testOps = 1500

func runOne(t *testing.T, scheme params.Scheme, mk func() Workload) core.Result {
	t.Helper()
	cfg := params.NewConfig(scheme, params.DefaultEWMicros)
	res, err := Run(cfg, mk, RunOpts{Ops: testOps})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllWorkloadsRunUnderTT(t *testing.T) {
	for _, mk := range All() {
		mk := mk
		name := mk().Name()
		t.Run(name, func(t *testing.T) {
			res := runOne(t, params.TT, mk)
			if res.Counts.Faults != 0 {
				t.Fatalf("faults = %d", res.Counts.Faults)
			}
			if res.Counts.CondOps != 2*testOps {
				t.Fatalf("cond ops = %d, want %d", res.Counts.CondOps, 2*testOps)
			}
			if res.Exposure.EWCount == 0 {
				t.Fatal("no exposure windows")
			}
		})
	}
}

func TestTTSilentFractionHigh(t *testing.T) {
	res := runOne(t, params.TT, func() Workload { return NewHashmap() })
	if res.Counts.SilentPercent() < 70 {
		t.Fatalf("silent%% = %.1f, want most ops silent", res.Counts.SilentPercent())
	}
}

func TestTTExposureWindowNearTarget(t *testing.T) {
	res := runOne(t, params.TT, func() Workload { return NewRedis() })
	target := params.ToMicros(params.Micros(params.DefaultEWMicros))
	avg := params.ToMicros(uint64(res.Exposure.AvgEW))
	max := params.ToMicros(uint64(res.Exposure.MaxEW))
	// Stable windows near the target: avg within [50%, 120%], max
	// bounded by target plus sweep and idle slack.
	if avg < 0.5*target || avg > 1.2*target {
		t.Fatalf("avg EW %.1fus vs target %.1fus", avg, target)
	}
	if max > 1.5*target {
		t.Fatalf("max EW %.1fus vs target %.1fus", max, target)
	}
}

func TestTTThreadExposureTiny(t *testing.T) {
	res := runOne(t, params.TT, func() Workload { return NewHashmap() })
	if res.Exposure.TEWCount == 0 {
		t.Fatal("no TEWs")
	}
	avgTEW := params.ToMicros(uint64(res.Exposure.AvgTEW))
	if avgTEW > params.DefaultTEWMicros*2 {
		t.Fatalf("avg TEW %.2fus exceeds target x2", avgTEW)
	}
	if res.Exposure.TER >= res.Exposure.ER {
		t.Fatalf("TER %.3f should be far below ER %.3f", res.Exposure.TER, res.Exposure.ER)
	}
}

func TestMMWindowsUnstableAndBelowTarget(t *testing.T) {
	res := runOne(t, params.MM, func() Workload { return NewHashmap() })
	target := float64(params.Micros(params.DefaultEWMicros))
	if res.Exposure.AvgEW >= target {
		t.Fatalf("MM avg EW %.0f should sit below target %.0f", res.Exposure.AvgEW, target)
	}
	if res.Exposure.TEWCount != 0 {
		t.Fatal("MM must not record TEWs")
	}
	if res.Counts.SilentOps != 0 {
		t.Fatal("MM has no conditional ops")
	}
}

func TestOverheadOrderingTTvsMMvsTM(t *testing.T) {
	mk := func() Workload { return NewHashmap() }
	ovTT, _, _, err := Overhead(params.NewConfig(params.TT, 40), mk, RunOpts{Ops: testOps})
	if err != nil {
		t.Fatal(err)
	}
	ovMM, _, _, err := Overhead(params.NewConfig(params.MM, 40), mk, RunOpts{Ops: testOps})
	if err != nil {
		t.Fatal(err)
	}
	ovTM, _, _, err := Overhead(params.NewConfig(params.TM, 40), mk, RunOpts{Ops: testOps})
	if err != nil {
		t.Fatal(err)
	}
	if !(ovTT < ovMM && ovMM < ovTM) {
		t.Fatalf("overhead ordering TT(%.3f) < MM(%.3f) < TM(%.3f) violated", ovTT, ovMM, ovTM)
	}
	if ovTT < 0 || ovTT > 0.5 {
		t.Fatalf("TT overhead %.3f out of plausible range", ovTT)
	}
}

func TestLargerEWLowersOverhead(t *testing.T) {
	mk := func() Workload { return NewYCSB() }
	ov40, _, _, err := Overhead(params.NewConfig(params.TT, 40), mk, RunOpts{Ops: testOps})
	if err != nil {
		t.Fatal(err)
	}
	ov160, _, _, err := Overhead(params.NewConfig(params.TT, 160), mk, RunOpts{Ops: testOps})
	if err != nil {
		t.Fatal(err)
	}
	if ov160 > ov40+0.005 {
		t.Fatalf("overhead did not drop with larger EW: 40us=%.4f 160us=%.4f", ov40, ov160)
	}
}

func TestDeterministicRuns(t *testing.T) {
	mk := func() Workload { return NewTPCC() }
	a, err := Run(params.NewConfig(params.TT, 40), mk, RunOpts{Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(params.NewConfig(params.TT, 40), mk, RunOpts{Ops: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Counts != b.Counts {
		t.Fatalf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"echo", "ycsb", "tpcc", "ctree", "hashmap", "redis"} {
		mk, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if mk().Name() != name {
			t.Fatalf("ByName(%q) returned %q", name, mk().Name())
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestHashCorrectness(t *testing.T) {
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 2*pmoSize))
	rt := core.NewRuntime(unprotCfg(), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	p, log, _, err := setupCommon(mgr, "t", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Attach(p, 3); err != nil {
		t.Fatal(err)
	}
	h, err := NewHash(p, 1<<10, log)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		k := uint64(r.Intn(300)) + 1
		v := r.Uint64()
		if err := h.Put(ctx, k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for k, v := range want {
		got, ok, err := h.Get(ctx, k)
		if err != nil || !ok || got != v {
			t.Fatalf("get %d = %d,%v,%v want %d", k, got, ok, err, v)
		}
	}
	if _, ok, _ := h.Get(ctx, 999999); ok {
		t.Fatal("missing key found")
	}
}

func TestTreeCorrectness(t *testing.T) {
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 2*pmoSize))
	rt := core.NewRuntime(unprotCfg(), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	p, log, _, err := setupCommon(mgr, "t", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Attach(p, 3); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTree(p, log)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{}
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 400; i++ {
		k := uint64(r.Intn(200)) + 1
		v := r.Uint64()
		if err := tr.Insert(ctx, k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for k, v := range want {
		got, ok, err := tr.Lookup(ctx, k)
		if err != nil || !ok || got != v {
			t.Fatalf("lookup %d = %d,%v,%v want %d", k, got, ok, err, v)
		}
	}
	if _, ok, _ := tr.Lookup(ctx, 5000); ok {
		t.Fatal("missing key found")
	}
}

func TestHashRejectsBadCapacity(t *testing.T) {
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 2*pmoSize))
	rt := core.NewRuntime(unprotCfg(), mgr)
	ctx := rt.NewThread(sim.SingleThread())
	p, log, _, err := setupCommon(mgr, "t", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHash(p, 100, log); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
}

// TestCrashInjectionDuringPuts crashes the machine at random points in a
// stream of transactional puts and checks that recovery always leaves the
// table consistent: every committed key still reads its committed value
// and no torn entry survives.
func TestCrashInjectionDuringPuts(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		dev := nvm.NewDevice(nvm.NVM, 2*pmoSize)
		mgr := pmo.NewManager(dev)
		rt := core.NewRuntime(unprotCfg(), mgr)
		ctx := rt.NewThread(sim.SingleThread())
		p, err := mgr.Create("crash", 1<<22, pmo.ModeRead|pmo.ModeWrite)
		if err != nil {
			t.Fatal(err)
		}
		log, logOID, err := txn.NewLog(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		log.SetSink(ctx)
		if err := ctx.Attach(p, paging.ReadWrite); err != nil {
			t.Fatal(err)
		}
		h, err := NewHash(p, 1<<10, log)
		if err != nil {
			t.Fatal(err)
		}
		committed := map[uint64]uint64{}
		crashAfter := r.Intn(40)
		for i := 0; i <= crashAfter; i++ {
			k := uint64(r.Intn(100)) + 1
			v := r.Uint64()
			if i == crashAfter {
				// Begin the transaction but crash before commit:
				// log the key write only, leaving a torn state
				// that recovery must undo.
				if err := log.Begin(); err != nil {
					t.Fatal(err)
				}
				slot := h.slot(mix(k))
				if err := log.Write(slot, k); err != nil {
					t.Fatal(err)
				}
				break
			}
			if err := h.Put(ctx, k, v); err != nil {
				t.Fatal(err)
			}
			committed[k] = v
		}

		// Crash: volatile state gone, NVM intact. Recover the log.
		log2, err := txn.OpenLog(p, logOID, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := log2.Recover(); err != nil {
			t.Fatal(err)
		}
		h2 := &Hash{p: p, base: h.base, cap: h.cap, log: log2}
		for k, v := range committed {
			got, ok, err := h2.Get(ctx, k)
			if err != nil || !ok || got != v {
				t.Fatalf("trial %d: committed key %d = %d,%v,%v want %d",
					trial, k, got, ok, err, v)
			}
		}
	}
}

func TestWorkloadCharacterDifferences(t *testing.T) {
	// The six workloads must be genuinely different programs, visible
	// in their exposure characters: redis (read-mostly, busy) runs more
	// ops per unit time than tpcc (multi-write transactions), and
	// write-heavy workloads make more attach requests with write
	// permission (observable through higher persistence cost).
	results := map[string]core.Result{}
	for _, mk := range All() {
		w := mk()
		res, err := Run(params.NewConfig(params.TT, 40), mk, RunOpts{Ops: 800})
		if err != nil {
			t.Fatal(err)
		}
		results[w.Name()] = res
	}
	if results["redis"].CondFreqPerSec() <= results["tpcc"].CondFreqPerSec() {
		t.Fatalf("redis (%f/s) should issue ops faster than tpcc (%f/s)",
			results["redis"].CondFreqPerSec(), results["tpcc"].CondFreqPerSec())
	}
	// All six must produce distinct cycle counts (not clones).
	seen := map[uint64]string{}
	for name, res := range results {
		if prev, dup := seen[res.Cycles]; dup {
			t.Fatalf("%s and %s have identical cycle counts", name, prev)
		}
		seen[res.Cycles] = name
	}
}

// setupWorkload runs a workload's Setup on a fresh machine and returns
// the pieces the audit tests need.
func setupWorkload(t *testing.T, mk func() Workload) (Recoverable, *pmo.Manager) {
	t.Helper()
	mgr := pmo.NewManager(nvm.NewDevice(nvm.NVM, 2*pmoSize))
	ctx := core.NewRuntime(unprotCfg(), mgr).NewThread(sim.SingleThread())
	w := mk()
	if err := w.Setup(mgr, ctx, rand.New(rand.NewSource(9))); err != nil {
		t.Fatal(err)
	}
	r, ok := w.(Recoverable)
	if !ok {
		t.Fatalf("%s does not implement Recoverable", w.Name())
	}
	return r, mgr
}

func TestAllWorkloadsAreRecoverable(t *testing.T) {
	for _, mk := range All() {
		mk := mk
		t.Run(mk().Name(), func(t *testing.T) {
			w, _ := setupWorkload(t, mk)
			if w.LogOID().IsNil() {
				t.Fatal("nil log OID")
			}
			if _, err := txn.OpenLog(w.PMO(), w.LogOID(), LogCapacity); err != nil {
				t.Fatalf("log not openable at its OID: %v", err)
			}
			if err := w.CheckInvariants(w.PMO()); err != nil {
				t.Fatalf("fresh workload fails its own invariants: %v", err)
			}
		})
	}
}

func TestHashAuditDetectsCorruption(t *testing.T) {
	w, _ := setupWorkload(t, func() Workload { return NewHashmap() })
	hm := w.(*Hashmap)
	p := hm.PMO()
	// Plant an out-of-range key in the first empty slot.
	for s := uint64(0); s < hm.h.cap; s++ {
		k, _ := p.Read8(hm.h.base + s*16)
		if k == 0 {
			p.Write8(hm.h.base+s*16, hm.keys+999)
			break
		}
	}
	if err := w.CheckInvariants(p); err == nil {
		t.Fatal("out-of-range key not detected")
	}
}

func TestHashAuditDetectsTornChain(t *testing.T) {
	w, _ := setupWorkload(t, func() Workload { return NewHashmap() })
	hm := w.(*Hashmap)
	p := hm.PMO()
	// Find a key displaced from its home slot and tear a hole at its
	// home, making it unreachable by probing.
	for s := uint64(0); s < hm.h.cap; s++ {
		k, _ := p.Read8(hm.h.base + s*16)
		home := mix(k) & (hm.h.cap - 1)
		if k != 0 && home != s {
			p.Write8(hm.h.base+home*16, 0)
			if err := w.CheckInvariants(p); err == nil {
				t.Fatal("torn probe chain not detected")
			}
			return
		}
	}
	t.Skip("no displaced key in the preload")
}

func TestTreeAuditDetectsCorruption(t *testing.T) {
	w, _ := setupWorkload(t, func() Workload { return NewCtree() })
	ct := w.(*Ctree)
	p := ct.PMO()
	rootRaw, _ := p.Read8(ct.t.root.Offset())
	root := pmo.OID(rootRaw)
	// Point the root's left child back at the root: cycle + BST breach.
	if err := p.Write8(root.Offset()+nodeLeft, uint64(root)); err != nil {
		t.Fatal(err)
	}
	if err := w.CheckInvariants(p); err == nil {
		t.Fatal("tree cycle not detected")
	}
}

func TestTPCCAuditDetectsCorruption(t *testing.T) {
	w, _ := setupWorkload(t, func() Workload { return NewTPCC() })
	tp := w.(*TPCC)
	p := tp.PMO()
	p.Write8(tp.orders.Offset()+8, 99) // district out of range
	if err := w.CheckInvariants(p); err == nil {
		t.Fatal("bad district not detected")
	}
}
