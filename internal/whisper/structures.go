// Package whisper implements the six WHISPER-style persistent-memory
// workloads of the paper's single-PMO evaluation (Section VI): the
// key-value stores Echo and Redis, the YCSB database workload, the TPCC
// transaction benchmark, and the ctree and hashmap data structures. Each
// workload keeps its data in one PMO, accesses it through the protected
// runtime (so every load/store passes the TLB, permission matrix and
// thread-permission checks and is charged its cycle costs), and uses the
// undo log of internal/txn for crash-consistent updates.
//
// The package also provides the measurement driver that applies the
// paper's insertion strategies: manual MERR-style bracketing at exposure
// window granularity (MM), and per-operation conditional attach/detach
// (the TERP compiler's insertion, for TM/TT and the ablations).
package whisper

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pmo"
	"repro/internal/txn"
)

// Hash is an open-addressing persistent hash table with linear probing,
// stored inside a PMO. Slot layout: [key(8) | value(8)]; key 0 is empty.
// All measured accesses go through the thread context.
type Hash struct {
	p    *pmo.PMO
	base uint64 // offset of slot array
	cap  uint64 // number of slots (power of two)
	log  *txn.Log
}

// NewHash allocates a hash table with the given power-of-two capacity.
func NewHash(p *pmo.PMO, capacity uint64, log *txn.Log) (*Hash, error) {
	if capacity == 0 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("whisper: capacity %d not a power of two", capacity)
	}
	oid, err := p.Alloc(capacity * 16)
	if err != nil {
		return nil, err
	}
	return &Hash{p: p, base: oid.Offset(), cap: capacity, log: log}, nil
}

func (h *Hash) slot(i uint64) pmo.OID {
	return pmo.MakeOID(h.p.ID, h.base+(i&(h.cap-1))*16)
}

func mix(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

// Get looks a key up through the protected runtime, returning its value.
func (h *Hash) Get(ctx *core.ThreadCtx, key uint64) (uint64, bool, error) {
	if key == 0 {
		return 0, false, nil
	}
	i := mix(key)
	for probe := uint64(0); probe < h.cap; probe++ {
		so := h.slot(i + probe)
		k, err := ctx.Load(so)
		if err != nil {
			return 0, false, err
		}
		if k == key {
			v, err := ctx.Load(pmo.MakeOID(h.p.ID, so.Offset()+8))
			return v, err == nil, err
		}
		if k == 0 {
			return 0, false, nil
		}
	}
	return 0, false, nil
}

// Put inserts or updates a key transactionally.
func (h *Hash) Put(ctx *core.ThreadCtx, key, value uint64) error {
	if key == 0 {
		return fmt.Errorf("whisper: zero key")
	}
	i := mix(key)
	for probe := uint64(0); probe < h.cap; probe++ {
		so := h.slot(i + probe)
		k, err := ctx.Load(so)
		if err != nil {
			return err
		}
		if k == key || k == 0 {
			if err := h.log.Begin(); err != nil {
				return err
			}
			vo := pmo.MakeOID(h.p.ID, so.Offset()+8)
			if k == 0 {
				if err := h.log.Write(so, key); err != nil {
					h.log.Abort()
					return err
				}
				// Mirror the logged write through the runtime
				// so timing and protection are charged.
				if err := ctx.Store(so, key); err != nil {
					h.log.Abort()
					return err
				}
			}
			if err := h.log.Write(vo, value); err != nil {
				h.log.Abort()
				return err
			}
			if err := ctx.Store(vo, value); err != nil {
				h.log.Abort()
				return err
			}
			return h.log.Commit()
		}
	}
	return fmt.Errorf("whisper: hash full")
}

// Audit validates the table's durable state in a reopened PMO p: every
// occupied slot holds a key in [1, maxKey] that is reachable by linear
// probing from its home slot (no holes torn into probe chains, no
// duplicates). val, when non-nil, additionally validates each occupied
// slot's value.
func (h *Hash) Audit(p *pmo.PMO, maxKey uint64, val func(key, v uint64) error) error {
	for s := uint64(0); s < h.cap; s++ {
		off := h.base + s*16
		k, err := p.Read8(off)
		if err != nil {
			return err
		}
		if k == 0 {
			continue
		}
		if k > maxKey {
			return fmt.Errorf("whisper: hash slot %d key %d out of range", s, k)
		}
		if val != nil {
			v, err := p.Read8(off + 8)
			if err != nil {
				return err
			}
			if err := val(k, v); err != nil {
				return err
			}
		}
		reachable := false
		for probe := uint64(0); probe < h.cap; probe++ {
			i := (mix(k) + probe) & (h.cap - 1)
			if i == s {
				reachable = true
				break
			}
			kk, err := p.Read8(h.base + i*16)
			if err != nil {
				return err
			}
			if kk == 0 {
				return fmt.Errorf("whisper: hash key %d at slot %d hidden behind empty slot %d", k, s, i)
			}
			if kk == k {
				return fmt.Errorf("whisper: hash key %d duplicated at slots %d and %d", k, i, s)
			}
		}
		if !reachable {
			return fmt.Errorf("whisper: hash key %d at slot %d unreachable", k, s)
		}
	}
	return nil
}

// Tree is a persistent unbalanced binary search tree (the paper's ctree
// stand-in). Node layout: [key | value | left | right], children stored
// as OIDs.
type Tree struct {
	p    *pmo.PMO
	root pmo.OID // OID of a root-pointer cell
	log  *txn.Log
}

// NewTree allocates the tree's root pointer cell.
func NewTree(p *pmo.PMO, log *txn.Log) (*Tree, error) {
	cell, err := p.Alloc(8)
	if err != nil {
		return nil, err
	}
	if err := p.Write8(cell.Offset(), 0); err != nil {
		return nil, err
	}
	return &Tree{p: p, root: cell, log: log}, nil
}

const (
	nodeKey   = 0
	nodeVal   = 8
	nodeLeft  = 16
	nodeRight = 24
	nodeSize  = 32
)

func field(n pmo.OID, off uint64) pmo.OID {
	return pmo.MakeOID(n.Pool(), n.Offset()+off)
}

// Insert adds or updates a key transactionally; allocation of new nodes
// charges a fixed allocator cost to the context.
func (t *Tree) Insert(ctx *core.ThreadCtx, key, value uint64) error {
	if err := t.log.Begin(); err != nil {
		return err
	}
	link := t.root
	for {
		raw, err := ctx.Load(link)
		if err != nil {
			t.log.Abort()
			return err
		}
		n := pmo.OID(raw)
		if n.IsNil() {
			node, err := t.p.Alloc(nodeSize)
			if err != nil {
				t.log.Abort()
				return err
			}
			ctx.Compute(200) // allocator cost
			// Initialize the fresh node (not yet linked, so plain
			// stores are crash-safe), then link it via the log.
			if err := ctx.Store(field(node, nodeKey), key); err != nil {
				t.log.Abort()
				return err
			}
			if err := ctx.Store(field(node, nodeVal), value); err != nil {
				t.log.Abort()
				return err
			}
			if err := ctx.Store(field(node, nodeLeft), 0); err != nil {
				t.log.Abort()
				return err
			}
			if err := ctx.Store(field(node, nodeRight), 0); err != nil {
				t.log.Abort()
				return err
			}
			// The node's content must be durable before the link to it
			// is: issue its writebacks now so the fences inside the
			// logged link write drain them first. Semantic only — the
			// runtime store above already charged the cycle costs.
			t.p.Flush(node.Offset(), nodeSize)
			if err := t.log.Write(link, uint64(node)); err != nil {
				t.log.Abort()
				return err
			}
			if err := ctx.Store(link, uint64(node)); err != nil {
				t.log.Abort()
				return err
			}
			return t.log.Commit()
		}
		k, err := ctx.Load(field(n, nodeKey))
		if err != nil {
			t.log.Abort()
			return err
		}
		switch {
		case key == k:
			vo := field(n, nodeVal)
			if err := t.log.Write(vo, value); err != nil {
				t.log.Abort()
				return err
			}
			if err := ctx.Store(vo, value); err != nil {
				t.log.Abort()
				return err
			}
			return t.log.Commit()
		case key < k:
			link = field(n, nodeLeft)
		default:
			link = field(n, nodeRight)
		}
	}
}

// Audit validates the tree's durable state in a reopened PMO p: a
// well-formed binary search tree over keys in [1, maxKey], with node
// OIDs inside the PMO and no cycles (bounded by maxKey nodes, since keys
// are unique).
func (t *Tree) Audit(p *pmo.PMO, maxKey uint64) error {
	type frame struct {
		n      pmo.OID
		lo, hi uint64 // exclusive key bounds
	}
	rootRaw, err := p.Read8(t.root.Offset())
	if err != nil {
		return err
	}
	stack := []frame{{pmo.OID(rootRaw), 0, ^uint64(0)}}
	visited := uint64(0)
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.n.IsNil() {
			continue
		}
		if visited++; visited > maxKey {
			return fmt.Errorf("whisper: tree has over %d nodes — cycle or corruption", maxKey)
		}
		if f.n.Pool() != t.root.Pool() || f.n.Offset()+nodeSize > p.Size {
			return fmt.Errorf("whisper: tree node %v outside the PMO", f.n)
		}
		k, err := p.Read8(f.n.Offset() + nodeKey)
		if err != nil {
			return err
		}
		if k == 0 || k > maxKey {
			return fmt.Errorf("whisper: tree key %d out of range", k)
		}
		if k <= f.lo || k >= f.hi {
			return fmt.Errorf("whisper: tree key %d violates BST bounds (%d, %d)", k, f.lo, f.hi)
		}
		left, err := p.Read8(f.n.Offset() + nodeLeft)
		if err != nil {
			return err
		}
		right, err := p.Read8(f.n.Offset() + nodeRight)
		if err != nil {
			return err
		}
		stack = append(stack, frame{pmo.OID(left), f.lo, k}, frame{pmo.OID(right), k, f.hi})
	}
	return nil
}

// Lookup finds a key.
func (t *Tree) Lookup(ctx *core.ThreadCtx, key uint64) (uint64, bool, error) {
	raw, err := ctx.Load(t.root)
	if err != nil {
		return 0, false, err
	}
	n := pmo.OID(raw)
	for !n.IsNil() {
		k, err := ctx.Load(field(n, nodeKey))
		if err != nil {
			return 0, false, err
		}
		switch {
		case key == k:
			v, err := ctx.Load(field(n, nodeVal))
			return v, err == nil, err
		case key < k:
			raw, err = ctx.Load(field(n, nodeLeft))
		default:
			raw, err = ctx.Load(field(n, nodeRight))
		}
		if err != nil {
			return 0, false, err
		}
		n = pmo.OID(raw)
	}
	return 0, false, nil
}
