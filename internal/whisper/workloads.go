package whisper

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/paging"
	"repro/internal/pmo"
	"repro/internal/txn"
)

// Workload is one WHISPER benchmark: a persistent application whose
// operations the driver measures under a protection scheme. Setup runs
// unprotected (the load phase is not measured); Op performs one
// transaction's PM accesses through the context and assumes the driver
// attached the PMO.
type Workload interface {
	// Name is the benchmark name used in the tables.
	Name() string
	// Setup creates the PMO and initial data in the manager.
	Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error
	// Op performs one operation's PM accesses.
	Op(ctx *core.ThreadCtx, rng *rand.Rand) error
	// PMO returns the workload's (single) PMO.
	PMO() *pmo.PMO
	// Profile returns the workload's timing profile.
	Profile() Profile
}

// Profile describes an operation's non-PM work, which shapes exposure
// rates: Parse cycles run inside the request (before the PM section) and
// IdleBase/IdleSpread cycles of think time follow each operation.
type Profile struct {
	// Parse is per-op request parsing work in cycles.
	Parse uint64
	// IdleBase and IdleSpread give the uniform think time between ops.
	IdleBase, IdleSpread uint64
	// EstOpCycles is the programmer's conservative static estimate of
	// one operation's duration, used by the MM insertion to size its
	// manual batches (conservative estimates under-fill the window,
	// which is why MM's measured EWs sit well below the target).
	EstOpCycles uint64
}

// pmoSize is the default PMO size; the paper uses 1 GB.
const pmoSize = 1 << 30

// setupCommon creates the PMO and an undo log inside it.
func setupCommon(mgr *pmo.Manager, name string, ctx *core.ThreadCtx) (*pmo.PMO, *txn.Log, error) {
	p, err := mgr.Create(name, pmoSize, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		return nil, nil, err
	}
	log, _, err := txn.NewLog(p, 64)
	if err != nil {
		return nil, nil, err
	}
	log.SetSink(ctx)
	return p, log, nil
}

// --- hashmap ---------------------------------------------------------------

// Hashmap is the WHISPER hashmap benchmark: uniform 50/50 get/put over a
// persistent open-addressing table.
type Hashmap struct {
	p    *pmo.PMO
	h    *Hash
	keys uint64
}

// NewHashmap returns the benchmark with the default key range.
func NewHashmap() *Hashmap { return &Hashmap{keys: 1 << 16} }

// Name implements Workload.
func (w *Hashmap) Name() string { return "hashmap" }

// PMO implements Workload.
func (w *Hashmap) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Hashmap) Profile() Profile {
	return Profile{Parse: 4000, IdleBase: 11000, IdleSpread: 7000, EstOpCycles: 25000}
}

// Setup implements Workload.
func (w *Hashmap) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p = p
	w.h, err = NewHash(p, 1<<17, log)
	if err != nil {
		return err
	}
	// Preload half the keys directly (unmeasured load phase).
	for k := uint64(1); k <= w.keys/2; k++ {
		if err := w.preload(k, k*3); err != nil {
			return err
		}
	}
	return nil
}

// preload inserts without the runtime (load phase).
func (w *Hashmap) preload(key, val uint64) error {
	i := mix(key)
	for probe := uint64(0); ; probe++ {
		so := w.h.slot(i + probe)
		k, err := w.p.Read8(so.Offset())
		if err != nil {
			return err
		}
		if k == 0 || k == key {
			if err := w.p.Write8(so.Offset(), key); err != nil {
				return err
			}
			return w.p.Write8(so.Offset()+8, val)
		}
	}
}

// Op implements Workload.
func (w *Hashmap) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(2) == 0 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	return w.h.Put(ctx, key, rng.Uint64())
}

// --- ctree -----------------------------------------------------------------

// Ctree is the WHISPER crit-bit tree benchmark analog: mixed
// insert/lookup over a persistent binary search tree.
type Ctree struct {
	p    *pmo.PMO
	t    *Tree
	keys uint64
}

// NewCtree returns the benchmark.
func NewCtree() *Ctree { return &Ctree{keys: 1 << 14} }

// Name implements Workload.
func (w *Ctree) Name() string { return "ctree" }

// PMO implements Workload.
func (w *Ctree) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Ctree) Profile() Profile {
	return Profile{Parse: 4500, IdleBase: 12000, IdleSpread: 7000, EstOpCycles: 28000}
}

// Setup implements Workload.
func (w *Ctree) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p = p
	w.t, err = NewTree(p, log)
	if err != nil {
		return err
	}
	// Preload keys in shuffled order through an unprotected context so
	// the tree is reasonably balanced (load phase, not measured).
	load := core.NewRuntime(unprotCfg(), mgr).NewThread(newLoadThread())
	if err := load.Attach(p, paging.ReadWrite); err != nil {
		return err
	}
	perm := rng.Perm(int(w.keys / 2))
	for _, k := range perm {
		if err := w.t.Insert(load, uint64(k)+1, uint64(k)); err != nil {
			return err
		}
	}
	return nil
}

// Op implements Workload.
func (w *Ctree) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(2) == 0 {
		_, _, err := w.t.Lookup(ctx, key)
		return err
	}
	return w.t.Insert(ctx, key, key^0xabcdef)
}

// --- echo ------------------------------------------------------------------

// Echo models the Echo versioned key-value store: puts append a record to
// a persistent log and update the index; gets read through the index.
type Echo struct {
	p      *pmo.PMO
	h      *Hash
	logOff pmo.OID // append-only record area cursor cell
	keys   uint64
}

// NewEcho returns the benchmark.
func NewEcho() *Echo { return &Echo{keys: 1 << 15} }

// Name implements Workload.
func (w *Echo) Name() string { return "echo" }

// PMO implements Workload.
func (w *Echo) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Echo) Profile() Profile {
	return Profile{Parse: 5000, IdleBase: 14000, IdleSpread: 9000, EstOpCycles: 30000}
}

// Setup implements Workload.
func (w *Echo) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p = p
	w.h, err = NewHash(p, 1<<16, log)
	if err != nil {
		return err
	}
	area, err := p.Alloc(uint64(w.keys) * 8 * 8)
	if err != nil {
		return err
	}
	cur, err := p.Alloc(16)
	if err != nil {
		return err
	}
	if err := p.Write8(cur.Offset(), uint64(area)); err != nil {
		return err
	}
	if err := p.Write8(cur.Offset()+8, 0); err != nil { // version counter
		return err
	}
	w.logOff = cur
	return nil
}

// Op implements Workload.
func (w *Echo) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(100) < 40 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	// Versioned put: bump the version, append (key,version,value) to
	// the record area, point the index at the record.
	verCell := pmo.MakeOID(w.p.ID, w.logOff.Offset()+8)
	ver, err := ctx.Load(verCell)
	if err != nil {
		return err
	}
	ver++
	if err := ctx.Store(verCell, ver); err != nil {
		return err
	}
	areaRaw, err := ctx.Load(w.logOff)
	if err != nil {
		return err
	}
	area := pmo.OID(areaRaw)
	// Records are 24 bytes in a ring over the allocated area.
	nrecs := uint64(w.keys) * 8 * 8 / 24
	rec := pmo.MakeOID(w.p.ID, area.Offset()+(ver%nrecs)*24)
	if err := ctx.Store(rec, key); err != nil {
		return err
	}
	if err := ctx.Store(pmo.MakeOID(w.p.ID, rec.Offset()+8), ver); err != nil {
		return err
	}
	if err := ctx.Store(pmo.MakeOID(w.p.ID, rec.Offset()+16), rng.Uint64()); err != nil {
		return err
	}
	return w.h.Put(ctx, key, uint64(rec))
}

// --- redis -----------------------------------------------------------------

// Redis models a Redis-like store: GET-heavy traffic with SET and
// list-push updates.
type Redis struct {
	p    *pmo.PMO
	h    *Hash
	keys uint64
}

// NewRedis returns the benchmark.
func NewRedis() *Redis { return &Redis{keys: 1 << 16} }

// Name implements Workload.
func (w *Redis) Name() string { return "redis" }

// PMO implements Workload.
func (w *Redis) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Redis) Profile() Profile {
	// Redis ops are light and frequent: short idle gaps keep the PMO
	// window busy (the paper reports Redis with the highest ER).
	return Profile{Parse: 1500, IdleBase: 3500, IdleSpread: 2500, EstOpCycles: 12000}
}

// Setup implements Workload.
func (w *Redis) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p = p
	w.h, err = NewHash(p, 1<<17, log)
	if err != nil {
		return err
	}
	for k := uint64(1); k <= w.keys/4; k++ {
		hm := &Hashmap{p: p, h: w.h}
		if err := hm.preload(k, k); err != nil {
			return err
		}
	}
	return nil
}

// Op implements Workload.
func (w *Redis) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(100) < 80 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	return w.h.Put(ctx, key, rng.Uint64())
}

// --- ycsb ------------------------------------------------------------------

// YCSB models workload B (95% reads, 5% updates) with a Zipf-like skew.
type YCSB struct {
	p    *pmo.PMO
	h    *Hash
	zipf *rand.Zipf
	keys uint64
}

// NewYCSB returns the benchmark.
func NewYCSB() *YCSB { return &YCSB{keys: 1 << 16} }

// Name implements Workload.
func (w *YCSB) Name() string { return "ycsb" }

// PMO implements Workload.
func (w *YCSB) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *YCSB) Profile() Profile {
	return Profile{Parse: 4000, IdleBase: 11000, IdleSpread: 7000, EstOpCycles: 25000}
}

// Setup implements Workload.
func (w *YCSB) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p = p
	w.h, err = NewHash(p, 1<<17, log)
	if err != nil {
		return err
	}
	w.zipf = rand.NewZipf(rng, 1.1, 1, w.keys-1)
	for k := uint64(1); k <= w.keys/2; k++ {
		hm := &Hashmap{p: p, h: w.h}
		if err := hm.preload(k, k); err != nil {
			return err
		}
	}
	return nil
}

// Op implements Workload.
func (w *YCSB) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := w.zipf.Uint64() + 1
	if rng.Intn(100) < 95 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	return w.h.Put(ctx, key, rng.Uint64())
}

// --- tpcc ------------------------------------------------------------------

// TPCC models the new-order transaction: read a district row, advance its
// order counter, insert an order and its order lines — all under one undo
// transaction.
type TPCC struct {
	p         *pmo.PMO
	log       *txn.Log
	districts pmo.OID // [nextOID x 10]
	orders    pmo.OID // ring of order records
	lines     pmo.OID // ring of order lines
	nOrders   uint64
}

// NewTPCC returns the benchmark.
func NewTPCC() *TPCC { return &TPCC{nOrders: 1 << 14} }

// Name implements Workload.
func (w *TPCC) Name() string { return "tpcc" }

// PMO implements Workload.
func (w *TPCC) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *TPCC) Profile() Profile {
	return Profile{Parse: 6000, IdleBase: 12000, IdleSpread: 8000, EstOpCycles: 35000}
}

// Setup implements Workload.
func (w *TPCC) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p, w.log = p, log
	if w.districts, err = p.Alloc(10 * 8); err != nil {
		return err
	}
	if w.orders, err = p.Alloc(w.nOrders * 24); err != nil {
		return err
	}
	if w.lines, err = p.Alloc(w.nOrders * 15 * 16); err != nil {
		return err
	}
	return nil
}

// Op implements Workload.
func (w *TPCC) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	district := uint64(rng.Intn(10))
	dCell := pmo.MakeOID(w.p.ID, w.districts.Offset()+district*8)
	if err := w.log.Begin(); err != nil {
		return err
	}
	next, err := ctx.Load(dCell)
	if err != nil {
		w.log.Abort()
		return err
	}
	next++
	if err := w.log.Write(dCell, next); err != nil {
		w.log.Abort()
		return err
	}
	if err := ctx.Store(dCell, next); err != nil {
		w.log.Abort()
		return err
	}
	// Insert the order record.
	slot := next % w.nOrders
	rec := pmo.MakeOID(w.p.ID, w.orders.Offset()+slot*24)
	for i, v := range []uint64{next, district, uint64(rng.Intn(3000))} {
		if err := ctx.Store(pmo.MakeOID(w.p.ID, rec.Offset()+uint64(i)*8), v); err != nil {
			w.log.Abort()
			return err
		}
	}
	// Insert 5-15 order lines.
	n := 5 + rng.Intn(11)
	for l := 0; l < n; l++ {
		lo := pmo.MakeOID(w.p.ID, w.lines.Offset()+(slot*15+uint64(l))*16)
		if err := ctx.Store(lo, uint64(rng.Intn(100000))); err != nil {
			w.log.Abort()
			return err
		}
		if err := ctx.Store(pmo.MakeOID(w.p.ID, lo.Offset()+8), uint64(l)); err != nil {
			w.log.Abort()
			return err
		}
	}
	return w.log.Commit()
}

// All returns constructors for the six WHISPER benchmarks in the paper's
// table order.
func All() []func() Workload {
	return []func() Workload{
		func() Workload { return NewEcho() },
		func() Workload { return NewYCSB() },
		func() Workload { return NewTPCC() },
		func() Workload { return NewCtree() },
		func() Workload { return NewHashmap() },
		func() Workload { return NewRedis() },
	}
}

// ByName returns the named workload constructor.
func ByName(name string) (func() Workload, error) {
	for _, mk := range All() {
		if mk().Name() == name {
			return mk, nil
		}
	}
	return nil, fmt.Errorf("whisper: unknown workload %q", name)
}
