package whisper

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/paging"
	"repro/internal/pmo"
	"repro/internal/txn"
)

// Workload is one WHISPER benchmark: a persistent application whose
// operations the driver measures under a protection scheme. Setup runs
// unprotected (the load phase is not measured); Op performs one
// transaction's PM accesses through the context and assumes the driver
// attached the PMO.
type Workload interface {
	// Name is the benchmark name used in the tables.
	Name() string
	// Setup creates the PMO and initial data in the manager.
	Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error
	// Op performs one operation's PM accesses.
	Op(ctx *core.ThreadCtx, rng *rand.Rand) error
	// PMO returns the workload's (single) PMO.
	PMO() *pmo.PMO
	// Profile returns the workload's timing profile.
	Profile() Profile
}

// Profile describes an operation's non-PM work, which shapes exposure
// rates: Parse cycles run inside the request (before the PM section) and
// IdleBase/IdleSpread cycles of think time follow each operation.
type Profile struct {
	// Parse is per-op request parsing work in cycles.
	Parse uint64
	// IdleBase and IdleSpread give the uniform think time between ops.
	IdleBase, IdleSpread uint64
	// EstOpCycles is the programmer's conservative static estimate of
	// one operation's duration, used by the MM insertion to size its
	// manual batches (conservative estimates under-fill the window,
	// which is why MM's measured EWs sit well below the target).
	EstOpCycles uint64
}

// Recoverable is implemented by workloads that can be crash-tested: they
// expose where their undo log lives and can audit their durable
// structures in a reopened (possibly crash-recovered) PMO.
type Recoverable interface {
	Workload
	// LogOID returns the OID of the workload's undo log inside its PMO.
	LogOID() pmo.OID
	// CheckInvariants audits the workload's structures in p — a PMO
	// reopened from a post-crash image after log recovery — returning an
	// error describing the first violated invariant.
	CheckInvariants(p *pmo.PMO) error
}

// pmoSize is the default PMO size; the paper uses 1 GB.
const pmoSize = 1 << 30

// LogCapacity is the record capacity of every workload's undo log (a
// transaction touches at most a handful of words).
const LogCapacity = 64

// setupCommon creates the PMO and an undo log inside it, returning the
// log's OID so crash recovery can find it again.
func setupCommon(mgr *pmo.Manager, name string, ctx *core.ThreadCtx) (*pmo.PMO, *txn.Log, pmo.OID, error) {
	p, err := mgr.Create(name, pmoSize, pmo.ModeRead|pmo.ModeWrite)
	if err != nil {
		return nil, nil, pmo.NilOID, err
	}
	log, logOID, err := txn.NewLog(p, LogCapacity)
	if err != nil {
		return nil, nil, pmo.NilOID, err
	}
	log.SetSink(ctx)
	return p, log, logOID, nil
}

// --- hashmap ---------------------------------------------------------------

// Hashmap is the WHISPER hashmap benchmark: uniform 50/50 get/put over a
// persistent open-addressing table.
type Hashmap struct {
	p      *pmo.PMO
	h      *Hash
	logOID pmo.OID
	keys   uint64
}

// NewHashmap returns the benchmark with the default key range.
func NewHashmap() *Hashmap { return &Hashmap{keys: 1 << 16} }

// Name implements Workload.
func (w *Hashmap) Name() string { return "hashmap" }

// PMO implements Workload.
func (w *Hashmap) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Hashmap) Profile() Profile {
	return Profile{Parse: 4000, IdleBase: 11000, IdleSpread: 7000, EstOpCycles: 25000}
}

// Setup implements Workload.
func (w *Hashmap) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, logOID, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p, w.logOID = p, logOID
	w.h, err = NewHash(p, 1<<17, log)
	if err != nil {
		return err
	}
	// Preload half the keys directly (unmeasured load phase).
	for k := uint64(1); k <= w.keys/2; k++ {
		if err := w.preload(k, k*3); err != nil {
			return err
		}
	}
	return nil
}

// preload inserts without the runtime (load phase).
func (w *Hashmap) preload(key, val uint64) error {
	i := mix(key)
	for probe := uint64(0); ; probe++ {
		so := w.h.slot(i + probe)
		k, err := w.p.Read8(so.Offset())
		if err != nil {
			return err
		}
		if k == 0 || k == key {
			if err := w.p.Write8(so.Offset(), key); err != nil {
				return err
			}
			return w.p.Write8(so.Offset()+8, val)
		}
	}
}

// LogOID implements Recoverable.
func (w *Hashmap) LogOID() pmo.OID { return w.logOID }

// CheckInvariants implements Recoverable: every occupied slot holds an
// in-range key, reachable by probing from its home slot, with no
// duplicates; empty slots carry no value.
func (w *Hashmap) CheckInvariants(p *pmo.PMO) error {
	return w.h.Audit(p, w.keys, nil)
}

// Op implements Workload.
func (w *Hashmap) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(2) == 0 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	return w.h.Put(ctx, key, rng.Uint64())
}

// --- ctree -----------------------------------------------------------------

// Ctree is the WHISPER crit-bit tree benchmark analog: mixed
// insert/lookup over a persistent binary search tree.
type Ctree struct {
	p      *pmo.PMO
	t      *Tree
	logOID pmo.OID
	keys   uint64
}

// NewCtree returns the benchmark.
func NewCtree() *Ctree { return &Ctree{keys: 1 << 14} }

// Name implements Workload.
func (w *Ctree) Name() string { return "ctree" }

// PMO implements Workload.
func (w *Ctree) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Ctree) Profile() Profile {
	return Profile{Parse: 4500, IdleBase: 12000, IdleSpread: 7000, EstOpCycles: 28000}
}

// Setup implements Workload.
func (w *Ctree) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, logOID, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p, w.logOID = p, logOID
	w.t, err = NewTree(p, log)
	if err != nil {
		return err
	}
	// Preload keys in shuffled order through an unprotected context so
	// the tree is reasonably balanced (load phase, not measured).
	load := core.NewRuntime(unprotCfg(), mgr).NewThread(newLoadThread())
	if err := load.Attach(p, paging.ReadWrite); err != nil {
		return err
	}
	perm := rng.Perm(int(w.keys / 2))
	for _, k := range perm {
		if err := w.t.Insert(load, uint64(k)+1, uint64(k)); err != nil {
			return err
		}
	}
	return nil
}

// LogOID implements Recoverable.
func (w *Ctree) LogOID() pmo.OID { return w.logOID }

// CheckInvariants implements Recoverable: the tree is a well-formed BST
// over in-range keys with no cycles.
func (w *Ctree) CheckInvariants(p *pmo.PMO) error {
	return w.t.Audit(p, w.keys)
}

// Op implements Workload.
func (w *Ctree) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(2) == 0 {
		_, _, err := w.t.Lookup(ctx, key)
		return err
	}
	return w.t.Insert(ctx, key, key^0xabcdef)
}

// --- echo ------------------------------------------------------------------

// Echo models the Echo versioned key-value store: puts append a record to
// a persistent log and update the index; gets read through the index.
type Echo struct {
	p      *pmo.PMO
	h      *Hash
	logOff pmo.OID // append-only record area cursor cell
	logOID pmo.OID
	keys   uint64
}

// NewEcho returns the benchmark.
func NewEcho() *Echo { return &Echo{keys: 1 << 15} }

// Name implements Workload.
func (w *Echo) Name() string { return "echo" }

// PMO implements Workload.
func (w *Echo) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Echo) Profile() Profile {
	return Profile{Parse: 5000, IdleBase: 14000, IdleSpread: 9000, EstOpCycles: 30000}
}

// Setup implements Workload.
func (w *Echo) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, logOID, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p, w.logOID = p, logOID
	w.h, err = NewHash(p, 1<<16, log)
	if err != nil {
		return err
	}
	area, err := p.Alloc(uint64(w.keys) * 8 * 8)
	if err != nil {
		return err
	}
	cur, err := p.Alloc(16)
	if err != nil {
		return err
	}
	if err := p.Write8(cur.Offset(), uint64(area)); err != nil {
		return err
	}
	if err := p.Write8(cur.Offset()+8, 0); err != nil { // version counter
		return err
	}
	w.logOff = cur
	return nil
}

// LogOID implements Recoverable.
func (w *Echo) LogOID() pmo.OID { return w.logOID }

// CheckInvariants implements Recoverable: records carry in-range keys and
// versions no newer than the counter plus the one op that may have been
// in flight; the index maps keys to aligned record slots.
func (w *Echo) CheckInvariants(p *pmo.PMO) error {
	areaRaw, err := p.Read8(w.logOff.Offset())
	if err != nil {
		return err
	}
	area := pmo.OID(areaRaw).Offset()
	ver, err := p.Read8(w.logOff.Offset() + 8)
	if err != nil {
		return err
	}
	nrecs := uint64(w.keys) * 8 * 8 / 24
	for r := uint64(0); r < nrecs; r++ {
		off := area + r*24
		key, err := p.Read8(off)
		if err != nil {
			return err
		}
		if key == 0 {
			continue
		}
		if key > w.keys {
			return fmt.Errorf("whisper: echo record %d key %d out of range", r, key)
		}
		rv, err := p.Read8(off + 8)
		if err != nil {
			return err
		}
		if rv > ver+1 {
			return fmt.Errorf("whisper: echo record %d version %d ahead of counter %d", r, rv, ver)
		}
	}
	return w.h.Audit(p, w.keys, func(key, v uint64) error {
		ro := pmo.OID(v).Offset()
		if ro < area || ro >= area+nrecs*24 || (ro-area)%24 != 0 {
			return fmt.Errorf("whisper: echo index key %d points at bad record offset %d", key, ro)
		}
		return nil
	})
}

// Op implements Workload.
func (w *Echo) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(100) < 40 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	// Versioned put: bump the version, append (key,version,value) to
	// the record area, point the index at the record.
	verCell := pmo.MakeOID(w.p.ID, w.logOff.Offset()+8)
	ver, err := ctx.Load(verCell)
	if err != nil {
		return err
	}
	ver++
	if err := ctx.Store(verCell, ver); err != nil {
		return err
	}
	// The counter and record are plain (unlogged) stores: issue their
	// writebacks so the fences inside the index update drain them —
	// semantic only, cycle costs were charged by the stores.
	w.p.Flush(verCell.Offset(), 8)
	areaRaw, err := ctx.Load(w.logOff)
	if err != nil {
		return err
	}
	area := pmo.OID(areaRaw)
	// Records are 24 bytes in a ring over the allocated area.
	nrecs := uint64(w.keys) * 8 * 8 / 24
	rec := pmo.MakeOID(w.p.ID, area.Offset()+(ver%nrecs)*24)
	if err := ctx.Store(rec, key); err != nil {
		return err
	}
	if err := ctx.Store(pmo.MakeOID(w.p.ID, rec.Offset()+8), ver); err != nil {
		return err
	}
	if err := ctx.Store(pmo.MakeOID(w.p.ID, rec.Offset()+16), rng.Uint64()); err != nil {
		return err
	}
	w.p.Flush(rec.Offset(), 24)
	return w.h.Put(ctx, key, uint64(rec))
}

// --- redis -----------------------------------------------------------------

// Redis models a Redis-like store: GET-heavy traffic with SET and
// list-push updates.
type Redis struct {
	p      *pmo.PMO
	h      *Hash
	logOID pmo.OID
	keys   uint64
}

// NewRedis returns the benchmark.
func NewRedis() *Redis { return &Redis{keys: 1 << 16} }

// Name implements Workload.
func (w *Redis) Name() string { return "redis" }

// PMO implements Workload.
func (w *Redis) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *Redis) Profile() Profile {
	// Redis ops are light and frequent: short idle gaps keep the PMO
	// window busy (the paper reports Redis with the highest ER).
	return Profile{Parse: 1500, IdleBase: 3500, IdleSpread: 2500, EstOpCycles: 12000}
}

// Setup implements Workload.
func (w *Redis) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, logOID, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p, w.logOID = p, logOID
	w.h, err = NewHash(p, 1<<17, log)
	if err != nil {
		return err
	}
	for k := uint64(1); k <= w.keys/4; k++ {
		hm := &Hashmap{p: p, h: w.h}
		if err := hm.preload(k, k); err != nil {
			return err
		}
	}
	return nil
}

// LogOID implements Recoverable.
func (w *Redis) LogOID() pmo.OID { return w.logOID }

// CheckInvariants implements Recoverable.
func (w *Redis) CheckInvariants(p *pmo.PMO) error {
	return w.h.Audit(p, w.keys, nil)
}

// Op implements Workload.
func (w *Redis) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := uint64(rng.Int63n(int64(w.keys))) + 1
	if rng.Intn(100) < 80 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	return w.h.Put(ctx, key, rng.Uint64())
}

// --- ycsb ------------------------------------------------------------------

// YCSB models workload B (95% reads, 5% updates) with a Zipf-like skew.
type YCSB struct {
	p      *pmo.PMO
	h      *Hash
	zipf   *rand.Zipf
	logOID pmo.OID
	keys   uint64
}

// NewYCSB returns the benchmark.
func NewYCSB() *YCSB { return &YCSB{keys: 1 << 16} }

// Name implements Workload.
func (w *YCSB) Name() string { return "ycsb" }

// PMO implements Workload.
func (w *YCSB) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *YCSB) Profile() Profile {
	return Profile{Parse: 4000, IdleBase: 11000, IdleSpread: 7000, EstOpCycles: 25000}
}

// Setup implements Workload.
func (w *YCSB) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, logOID, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p, w.logOID = p, logOID
	w.h, err = NewHash(p, 1<<17, log)
	if err != nil {
		return err
	}
	w.zipf = rand.NewZipf(rng, 1.1, 1, w.keys-1)
	for k := uint64(1); k <= w.keys/2; k++ {
		hm := &Hashmap{p: p, h: w.h}
		if err := hm.preload(k, k); err != nil {
			return err
		}
	}
	return nil
}

// LogOID implements Recoverable.
func (w *YCSB) LogOID() pmo.OID { return w.logOID }

// CheckInvariants implements Recoverable.
func (w *YCSB) CheckInvariants(p *pmo.PMO) error {
	return w.h.Audit(p, w.keys, nil)
}

// Op implements Workload.
func (w *YCSB) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	key := w.zipf.Uint64() + 1
	if rng.Intn(100) < 95 {
		_, _, err := w.h.Get(ctx, key)
		return err
	}
	return w.h.Put(ctx, key, rng.Uint64())
}

// --- tpcc ------------------------------------------------------------------

// TPCC models the new-order transaction: read a district row, advance its
// order counter, insert an order and its order lines — all under one undo
// transaction.
type TPCC struct {
	p         *pmo.PMO
	log       *txn.Log
	logOID    pmo.OID
	districts pmo.OID // [nextOID x 10]
	orders    pmo.OID // ring of order records
	lines     pmo.OID // ring of order lines
	nOrders   uint64
}

// NewTPCC returns the benchmark.
func NewTPCC() *TPCC { return &TPCC{nOrders: 1 << 14} }

// Name implements Workload.
func (w *TPCC) Name() string { return "tpcc" }

// PMO implements Workload.
func (w *TPCC) PMO() *pmo.PMO { return w.p }

// Profile implements Workload.
func (w *TPCC) Profile() Profile {
	return Profile{Parse: 6000, IdleBase: 12000, IdleSpread: 8000, EstOpCycles: 35000}
}

// Setup implements Workload.
func (w *TPCC) Setup(mgr *pmo.Manager, ctx *core.ThreadCtx, rng *rand.Rand) error {
	p, log, logOID, err := setupCommon(mgr, "whisper."+w.Name(), ctx)
	if err != nil {
		return err
	}
	w.p, w.log, w.logOID = p, log, logOID
	if w.districts, err = p.Alloc(10 * 8); err != nil {
		return err
	}
	if w.orders, err = p.Alloc(w.nOrders * 24); err != nil {
		return err
	}
	if w.lines, err = p.Alloc(w.nOrders * 15 * 16); err != nil {
		return err
	}
	return nil
}

// LogOID implements Recoverable.
func (w *TPCC) LogOID() pmo.OID { return w.logOID }

// CheckInvariants implements Recoverable: every order record and order
// line stays inside its write domain — a torn multi-word insert would
// leave the counter pointing at a slot whose fields never held such
// values.
func (w *TPCC) CheckInvariants(p *pmo.PMO) error {
	for i := uint64(0); i < w.nOrders; i++ {
		off := w.orders.Offset() + i*24
		district, err := p.Read8(off + 8)
		if err != nil {
			return err
		}
		if district >= 10 {
			return fmt.Errorf("whisper: tpcc order %d district %d out of range", i, district)
		}
		cust, err := p.Read8(off + 16)
		if err != nil {
			return err
		}
		if cust >= 3000 {
			return fmt.Errorf("whisper: tpcc order %d customer %d out of range", i, cust)
		}
	}
	for j := uint64(0); j < w.nOrders*15; j++ {
		lineNo, err := p.Read8(w.lines.Offset() + j*16 + 8)
		if err != nil {
			return err
		}
		if lineNo >= 15 {
			return fmt.Errorf("whisper: tpcc line %d number %d out of range", j, lineNo)
		}
	}
	return nil
}

// Op implements Workload.
func (w *TPCC) Op(ctx *core.ThreadCtx, rng *rand.Rand) error {
	district := uint64(rng.Intn(10))
	dCell := pmo.MakeOID(w.p.ID, w.districts.Offset()+district*8)
	if err := w.log.Begin(); err != nil {
		return err
	}
	next, err := ctx.Load(dCell)
	if err != nil {
		w.log.Abort()
		return err
	}
	next++
	if err := w.log.Write(dCell, next); err != nil {
		w.log.Abort()
		return err
	}
	if err := ctx.Store(dCell, next); err != nil {
		w.log.Abort()
		return err
	}
	// Insert the order record.
	slot := next % w.nOrders
	rec := pmo.MakeOID(w.p.ID, w.orders.Offset()+slot*24)
	for i, v := range []uint64{next, district, uint64(rng.Intn(3000))} {
		if err := ctx.Store(pmo.MakeOID(w.p.ID, rec.Offset()+uint64(i)*8), v); err != nil {
			w.log.Abort()
			return err
		}
	}
	// Order record and lines are plain stores: issue their writebacks so
	// Commit's fence drains them before truncating the log (semantic
	// only; the stores charged their own cycle costs).
	w.p.Flush(rec.Offset(), 24)
	// Insert 5-15 order lines.
	n := 5 + rng.Intn(11)
	for l := 0; l < n; l++ {
		lo := pmo.MakeOID(w.p.ID, w.lines.Offset()+(slot*15+uint64(l))*16)
		if err := ctx.Store(lo, uint64(rng.Intn(100000))); err != nil {
			w.log.Abort()
			return err
		}
		if err := ctx.Store(pmo.MakeOID(w.p.ID, lo.Offset()+8), uint64(l)); err != nil {
			w.log.Abort()
			return err
		}
		w.p.Flush(lo.Offset(), 16)
	}
	return w.log.Commit()
}

// All returns constructors for the six WHISPER benchmarks in the paper's
// table order.
func All() []func() Workload {
	return []func() Workload{
		func() Workload { return NewEcho() },
		func() Workload { return NewYCSB() },
		func() Workload { return NewTPCC() },
		func() Workload { return NewCtree() },
		func() Workload { return NewHashmap() },
		func() Workload { return NewRedis() },
	}
}

// ByName returns the named workload constructor.
func ByName(name string) (func() Workload, error) {
	for _, mk := range All() {
		if mk().Name() == name {
			return mk, nil
		}
	}
	return nil, fmt.Errorf("whisper: unknown workload %q", name)
}
