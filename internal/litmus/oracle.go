package litmus

import (
	"fmt"

	"repro/internal/nvm"
)

// The declarative Px86-style persistency oracle. It never consults the
// persist-buffer model's internals: its only input is the replayable
// persist-op trace (stores with their bytes, flushes, fences) recorded
// by internal/nvm, from which it computes the sets of post-crash images
// the *specification* allows. The spec is the Px86 discipline of Raad et
// al. restricted to a single thread:
//
//   1. Per-line prefix order. Stores to one cache line persist in the
//      order they were issued, and each store persists atomically, so a
//      line's durable content is always the content after some prefix
//      of its stores — including prefixes the program never flushed
//      (hardware may evict a dirty line at any time).
//
//   2. Fence ordering. A flush captures its line's content; a fence
//      orders every earlier flush before every later persist. So if any
//      store issued after the fence is durable in the crash image, every
//      line flushed before the fence must be durable at least at its
//      captured content. Nothing else is guaranteed: a fence by itself
//      does not make data durable (a crash can lose everything), it only
//      constrains which *combinations* survive.
//
// The oracle computes two image sets. images() is the full spec: every
// per-line version assignment satisfying both rules, eviction persists
// included. noEvictImages() is the spec with spontaneous evictions
// removed — lines persist only through explicit flushes, where flushes
// separated by a fence or targeting the same line are ordered and
// unfenced cross-line flushes may persist in any order (clflushopt), so
// the persisted flushes at a crash form exactly the downward-closed
// subsets of that partial order. The model (no evictions) must stay
// inside noEvictImages(); the gap between the two sets is what only an
// eviction can reach.
type oracle struct {
	lines int
	// versions[l] is line l's content history: versions[l][0] is the
	// initial (all-zero) content, versions[l][k] the content after its
	// k-th store.
	versions [][][]byte
	// flushes records every flush in trace order.
	flushes []flushRec
	// rules are the fence-ordering implications of rule 2.
	rules []rule
}

// flushRec is one recorded flush: the line it captured, the line's
// version at capture time, and the epoch (fences issued before it).
type flushRec struct {
	line, ver, epoch int
}

// rule encodes "if line s reached version sv, line f reached at least
// version fv": a flush of f capturing fv, a fence, then s's sv-th store.
type rule struct {
	f, fv int
	s, sv int
}

// newOracle replays the trace, building every line's version history,
// the flush records and the fence-ordering rules.
func newOracle(trace []nvm.TraceOp, lines int) *oracle {
	o := &oracle{lines: lines}
	cur := make([][]byte, lines)
	o.versions = make([][][]byte, lines)
	for l := 0; l < lines; l++ {
		cur[l] = make([]byte, LineSize)
		o.versions[l] = [][]byte{append([]byte(nil), cur[l]...)}
	}

	fences := 0
	for _, op := range trace {
		switch op.Kind {
		case nvm.StoreEvent:
			first := op.Off / LineSize
			last := (op.Off + op.Len - 1) / LineSize
			for ln := first; ln <= last; ln++ {
				l := int(ln)
				lo, hi := ln*LineSize, (ln+1)*LineSize
				if op.Off > lo {
					lo = op.Off
				}
				if op.Off+op.Len < hi {
					hi = op.Off + op.Len
				}
				copy(cur[l][lo-ln*LineSize:], op.Data[lo-op.Off:hi-op.Off])
				o.versions[l] = append(o.versions[l], append([]byte(nil), cur[l]...))
				sv := len(o.versions[l]) - 1
				// Rule 2, RHS side: this store is "after" every flush from
				// an earlier (fence-closed) epoch.
				for _, f := range o.flushes {
					if f.epoch >= fences {
						continue // not yet fenced; no ordering
					}
					if f.line == l && sv >= f.ver {
						continue // same line: prefix order already implies it
					}
					o.rules = append(o.rules, rule{f: f.line, fv: f.ver, s: l, sv: sv})
				}
			}
		case nvm.FlushEvent:
			first := op.Off / LineSize
			last := (op.Off + op.Len - 1) / LineSize
			for ln := first; ln <= last; ln++ {
				l := int(ln)
				o.flushes = append(o.flushes, flushRec{line: l, ver: len(o.versions[l]) - 1, epoch: fences})
			}
		case nvm.FenceEvent:
			fences++
		}
	}
	return o
}

// images enumerates every spec-allowed post-crash window: all per-line
// version assignments filtered by the fence-ordering rules, materialized
// and deduped by window bytes.
func (o *oracle) images() map[string]bool {
	out := make(map[string]bool)
	v := make([]int, o.lines)
	for {
		if o.allowed(v) {
			out[o.window(v)] = true
		}
		// Odometer over the per-line version counts.
		l := 0
		for ; l < o.lines; l++ {
			v[l]++
			if v[l] < len(o.versions[l]) {
				break
			}
			v[l] = 0
		}
		if l == o.lines {
			return out
		}
	}
}

// maxFlushEnum caps noEvictImages' 2^flushes walk.
const maxFlushEnum = 16

// noEvictImages enumerates the no-eviction spec set: every
// downward-closed subset of flushes under the persist partial order
// (same line, or separated by a fence), each line durable at its latest
// persisted capture.
func (o *oracle) noEvictImages() (map[string]bool, error) {
	n := len(o.flushes)
	if n > maxFlushEnum {
		return nil, fmt.Errorf("litmus: %d flushes exceed the %d-flush spec-enumeration cap", n, maxFlushEnum)
	}
	// before[i] is the bitmask of flushes ordered before flush i.
	before := make([]uint32, n)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if o.flushes[j].epoch < o.flushes[i].epoch || o.flushes[j].line == o.flushes[i].line {
				before[i] |= 1 << j
			}
		}
	}
	out := make(map[string]bool)
	v := make([]int, o.lines)
	for mask := uint32(0); mask < 1<<n; mask++ {
		closed := true
		for i := 0; i < n && closed; i++ {
			if mask>>i&1 == 1 && before[i]&^mask != 0 {
				closed = false
			}
		}
		if !closed {
			continue
		}
		for l := range v {
			v[l] = 0
		}
		for i := 0; i < n; i++ { // ascending: later same-line captures win
			if mask>>i&1 == 1 {
				v[o.flushes[i].line] = o.flushes[i].ver
			}
		}
		out[o.window(v)] = true
	}
	return out, nil
}

// allowed checks the fence-ordering rules for one assignment.
func (o *oracle) allowed(v []int) bool {
	for _, r := range o.rules {
		if v[r.s] >= r.sv && v[r.f] < r.fv {
			return false
		}
	}
	return true
}

// window materializes an assignment's image bytes.
func (o *oracle) window(v []int) string {
	b := make([]byte, o.lines*LineSize)
	for l := 0; l < o.lines; l++ {
		copy(b[l*LineSize:], o.versions[l][v[l]])
	}
	return string(b)
}
