package litmus

import (
	"fmt"
	"math/rand"
)

// The seedable litmus-program generator. Programs are small by design:
// the enumerator's cost is (persist events) x 2^(in-flight writebacks),
// and the oracle's is the per-line version product, so a handful of
// lines and a dozen ops already cover the interesting interleavings
// (unfenced flush sets, publication chains, straddling stores, same-line
// overwrites) while keeping exhaustive enumeration instant.

// Generation bounds.
const (
	genMinLines = 2
	genMaxLines = 4
	genMinOps   = 4
	genMaxOps   = 12
)

// Generate returns n deterministic litmus programs derived from seed:
// the same (seed, n) always yields byte-identical programs, and programs
// i < m of Generate(seed, m) equal those of Generate(seed, n) for m < n,
// so a suite can be windowed across cells without reseeding.
func Generate(seed int64, n int) []Program {
	rng := rand.New(rand.NewSource(seed))
	progs := make([]Program, 0, n)
	for i := 0; i < n; i++ {
		progs = append(progs, genProgram(rng, fmt.Sprintf("gen/%d/%02d", seed, i)))
	}
	return progs
}

// scramble spreads a small counter over all eight value bytes (odd
// multiplier, so distinct counters stay distinct): straddling stores
// then write nonzero bytes into both halves, and no generated store is
// ever silent.
func scramble(v uint64) uint64 { return v * 0x9e3779b97f4a7c15 }

// genProgram builds one random program. Values are a scrambled
// per-program counter so every store is distinct (never silent) and
// window images stay unambiguous; op kinds are weighted toward stores
// with enough flushes and fences to grow and drain writeback sets.
func genProgram(rng *rand.Rand, name string) Program {
	lines := genMinLines + rng.Intn(genMaxLines-genMinLines+1)
	nops := genMinOps + rng.Intn(genMaxOps-genMinOps+1)
	p := Program{Name: name, Lines: lines}
	val := uint64(1)
	for len(p.Ops) < nops {
		switch k := rng.Intn(10); {
		case k < 5 || len(p.Ops) == 0: // store first, then ~50%
			line := rng.Intn(lines)
			if k == 0 && lines >= 2 {
				// A line-straddling 8-byte store across a random
				// interior boundary.
				b := 1 + rng.Intn(lines-1)
				p.Ops = append(p.Ops, StAt(uint64(b)*LineSize-4, 8, scramble(val)))
			} else {
				p.Ops = append(p.Ops, St(line, scramble(val)))
			}
			val++
		case k < 8: // ~30% flushes
			line := rng.Intn(lines)
			if k == 7 {
				// Flush a multi-line span.
				span := uint64(1+rng.Intn(lines-line)) * LineSize
				p.Ops = append(p.Ops, FlAt(uint64(line)*LineSize, span))
			} else {
				p.Ops = append(p.Ops, Fl(line))
			}
		default: // ~20% fences
			p.Ops = append(p.Ops, Sf())
		}
	}
	return p
}
