package litmus

import (
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/nvm"
)

// TestNamedExpectCounts runs every hand-written litmus shape and checks
// the enumerated model-state count against its hand-derived expectation,
// with zero non-allowlisted divergences.
func TestNamedExpectCounts(t *testing.T) {
	progs := Named()
	if len(progs) < 8 {
		t.Fatalf("named suite has %d programs, want >= 8", len(progs))
	}
	for _, p := range progs {
		res, err := RunProgram(p, DefaultAllowlist())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if res.ModelStates != p.Expect {
			t.Errorf("%s: enumerated %d model states, hand-derived %d", p.Name, res.ModelStates, p.Expect)
		}
		if res.ModelOnly != 0 {
			t.Errorf("%s: %d spec-forbidden model states (model bug): %v", p.Name, res.ModelOnly, res.Diverged)
		}
		if res.Violations != 0 {
			t.Errorf("%s: %d violations: %+v", p.Name, res.Violations, res.Diverged)
		}
		if res.SpecStates < res.NoEvictStates || res.NoEvictStates < res.ModelStates {
			t.Errorf("%s: want model (%d) <= no-evict spec (%d) <= full spec (%d)",
				p.Name, res.ModelStates, res.NoEvictStates, res.SpecStates)
		}
		if p.Name == "named/reflush-replace" && res.WbReplace != 1 {
			t.Errorf("%s: %d wb-replace divergences, want exactly 1 (A1+B1)", p.Name, res.WbReplace)
		}
	}
}

// TestOracleForbidsBrokenPublication pins the oracle's teeth directly:
// for the redirty-flush trace, the image with the flag durable but line
// A still initial violates fence ordering and must be outside the spec
// set. (The pre-fix persist buffer produced exactly this image by
// cancelling the in-flight writeback on re-dirty.)
func TestOracleForbidsBrokenPublication(t *testing.T) {
	dev := nvm.NewDevice(nvm.NVM, devSize)
	buf := dev.EnablePersistBuffer(LineSize)
	buf.EnableTrace()
	for _, op := range []Op{St(0, 1), Fl(0), St(0, 2), Sf(), St(1, 3), Fl(1), Sf()} {
		switch op.Kind {
		case OpStore:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], op.Val)
			if err := dev.WriteAt(b[:op.Len], op.Off); err != nil {
				t.Fatal(err)
			}
		case OpFlush:
			dev.Flush(op.Off, op.Len)
		case OpFence:
			dev.Fence()
		}
	}
	o := newOracle(buf.TraceOps(), 2)
	spec := o.images()

	forbidden := make([]byte, 2*LineSize)
	binary.LittleEndian.PutUint64(forbidden[LineSize:], 3) // flag durable, A initial
	if spec[string(forbidden)] {
		t.Fatal("oracle allows the fence-violating image (flag durable, data lost)")
	}
	allowed := make([]byte, 2*LineSize)
	binary.LittleEndian.PutUint64(allowed[:], 1)
	binary.LittleEndian.PutUint64(allowed[LineSize:], 3)
	if !spec[string(allowed)] {
		t.Fatal("oracle rejects the fence-respecting image (data and flag durable)")
	}
}

// TestGenerateDeterministicAndPrefixStable checks seed reproducibility:
// the same (seed, n) yields byte-identical programs, different seeds
// differ, and shorter runs are prefixes of longer ones.
func TestGenerateDeterministicAndPrefixStable(t *testing.T) {
	a, b := Generate(7, 6), Generate(7, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate(7, 6) not reproducible")
	}
	if pre := Generate(7, 3); !reflect.DeepEqual(pre, a[:3]) {
		t.Fatal("Generate(7, 3) is not a prefix of Generate(7, 6)")
	}
	if c := Generate(8, 6); reflect.DeepEqual(a, c) {
		t.Fatal("distinct seeds generated identical suites")
	}
	for _, p := range a {
		if p.Lines < genMinLines || p.Lines > genMaxLines {
			t.Fatalf("%s: %d lines outside [%d,%d]", p.Name, p.Lines, genMinLines, genMaxLines)
		}
		if len(p.Ops) < genMinOps || len(p.Ops) > genMaxOps {
			t.Fatalf("%s: %d ops outside [%d,%d]", p.Name, len(p.Ops), genMinOps, genMaxOps)
		}
		if p.Ops[0].Kind != OpStore {
			t.Fatalf("%s: first op %v, want a store", p.Name, p.Ops[0].Kind)
		}
	}
}

// TestGeneratedSuitesHaveNoViolations sweeps several seeds through the
// full engine: the model must stay inside the no-eviction spec set (no
// model-only states), every spec-only divergence must classify as an
// allowlisted class, and reports must be deterministic across runs.
func TestGeneratedSuitesHaveNoViolations(t *testing.T) {
	seeds := []int64{1, 2, 3, 11, 42}
	n := 12
	if testing.Short() {
		seeds, n = seeds[:2], 6
	}
	for _, seed := range seeds {
		rep, err := RunSuite("gen", Generate(seed, n), DefaultAllowlist())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.ModelOnly != 0 {
			t.Errorf("seed %d: %d spec-forbidden model states (model bug)", seed, rep.ModelOnly)
		}
		if rep.Violations != 0 {
			for _, r := range rep.Results {
				if r.Violations > 0 {
					t.Errorf("seed %d %s: %d violations: %+v", seed, r.Program, r.Violations, r.Diverged)
				}
			}
		}
		again, err := RunSuite("gen", Generate(seed, n), DefaultAllowlist())
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if !reflect.DeepEqual(rep, again) {
			t.Errorf("seed %d: report not deterministic across runs", seed)
		}
	}
}

// TestRunProgramValidation rejects out-of-window and oversized ops.
func TestRunProgramValidation(t *testing.T) {
	if _, err := RunProgram(Program{Name: "bad", Lines: 1, Ops: []Op{St(1, 1)}}, nil); err == nil {
		t.Fatal("out-of-window store accepted")
	}
	if _, err := RunProgram(Program{Name: "bad", Lines: 1, Ops: []Op{StAt(0, 16, 1)}}, nil); err == nil {
		t.Fatal("16-byte store accepted")
	}
	if _, err := RunProgram(Program{Name: "bad", Lines: 0}, nil); err == nil {
		t.Fatal("zero-line window accepted")
	}
}
